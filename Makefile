# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench bench-core race distributed fuzz-wire soak soak-short sched-soak chaos-dist obs-fleet dag serve-smoke results results-ext faults chaos metrics cover fmt vet lint examples

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

# Static analysis: vet always; staticcheck when installed (CI installs it,
# see .github/workflows/ci.yml).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	go test ./...

# Skip the paper-scale regression runs.
test-short:
	go test -short ./...

# The substrates with real concurrency: goroutines (realtime), OS
# processes over TCP (distnet), and the multi-run scheduler on top (sched).
race:
	go test -race ./internal/realtime/... ./internal/distnet/... ./internal/sched/...

# Multi-process loopback smoke: a real coordinator plus one OS process per
# node over 127.0.0.1, race-checked.
distributed:
	go test -race -run 'TestLoopback|TestFourNode' -timeout 120s ./internal/distnet/

# Fuzz the wire codec: truncated/corrupt/oversized frames must error,
# never panic.
fuzz-wire:
	go test -run '^$$' -fuzz FuzzFrameDecode -fuzztime 30s ./internal/distnet/

bench: bench-core
	go test -bench=. -benchmem ./...

# Engine iteration + app-kernel + wire-plane micro-benchmarks, recorded as
# a machine-readable baseline (ns/op, allocs/op) in BENCH_core.json. The
# run fails if any benchmark's allocs/op regresses above the committed
# baseline; Soak* series already in the file are preserved.
bench-core:
	go test -run '^$$' -bench 'EngineIteration|ComputeKernel|LoopbackRoundTrip|LinkThroughput|WireInstrumentation|PipelineStage' -benchmem \
		./internal/core ./internal/apps/... ./internal/distnet ./internal/pipeline \
		| go run ./cmd/benchjson -baseline BENCH_core.json -o BENCH_core.json
	@echo "wrote BENCH_core.json"

# Wire-plane soak: 64 real OS processes under chaos (duplicates + delay
# spikes), recording throughput / latency-percentile / allocs-per-message
# series into BENCH_core.json.
soak:
	go run ./cmd/specsoak -procs 64 -iters 150 -chaos -o BENCH_core.json

# CI-sized soak: 16 processes, no baseline write — a pass/fail scale check.
soak-short:
	go run ./cmd/specsoak -procs 16 -iters 80 -chaos

# Scheduler soak: a batch job plus an arrival stream at two priorities on
# one pool — gates on >=1 preemption, custody resume, and per-job
# convergence, and records SchedWait* / SchedPreemptions series.
sched-soak:
	go run ./cmd/specsoak -jobs 6 -pool 4 -iters 120 -o BENCH_core.json

# Distributed chaos gate: a real 4-process fleet under supervision, two
# seeded SIGKILLs mid-run. Victims respawn with bumped epochs, reclaim
# their ranks, restore from coordinator custody, and the final field must
# converge on the fault-free baseline. Exits non-zero on any divergence.
chaos-dist:
	go run ./cmd/specsoak -procs 4 -iters 2500 -kill 2 -kill-seed 7

# Fleet observability gate: a real 4-process cluster with the aggregated
# metrics plane and cross-process tracing on. -selfcheck fails the run if
# the merged exposition drops a rank or collides series; the trace merge
# fails if any node's journal went missing.
obs-fleet:
	go run ./cmd/speccoord -spawn -procs 4 -iters 120 -obs-push-ms 50 \
		-selfcheck -trace-out /tmp/fleet-trace.json -timeout 120s
	@echo "wrote /tmp/fleet-trace.json"

# Task-DAG smoke: a 4-process streaming pipeline over distnet (one stage
# per OS process), exact regime — the run fails unless every stage's final
# state is bit-identical to the lockstep serial reference.
dag:
	go run ./cmd/speccoord -spawn -procs 4 -app pipeline -iters 60 -fw 1 \
		-exact -verify 0 -timeout 120s

# Service smoke: a real speccoord -serve scheduler driven over HTTP with
# specsubmit — 3 jobs at 2 priorities on a 4-rank pool, at least one
# preemption with custody resume, clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

# Regenerate the canonical paper reproduction (results_full.txt).
results:
	go run ./cmd/specbench -exp all > results_full.txt

# Regenerate the extension studies (results_ext.txt).
results-ext:
	go run ./cmd/specbench -exp ext -chart=false > results_ext.txt

# Fault-injection study: loss, delay spikes, straggler (quick configuration).
faults:
	go run ./cmd/specbench -quick -faults

# Chaos soak: seeded random processor crashes with checkpoint/rejoin
# recovery across every application. Exits non-zero on any soak failure.
chaos:
	go run ./cmd/specbench -quick -crash -chart=false

# Fault study with instrumentation: dumps a Prometheus snapshot to
# metrics.prom. specbench re-parses the written file itself and exits
# non-zero if the exposition is broken, so this target doubles as a check.
metrics:
	go run ./cmd/specbench -quick -faults -chart=false -metrics metrics.prom
	@echo "wrote metrics.prom"

cover:
	go test -cover ./...

fmt:
	gofmt -w .

examples:
	go run ./examples/quickstart
	go run ./examples/nbody
	go run ./examples/heatspec
	go run ./examples/jacobi
	go run ./examples/pagerank
	go run ./examples/realtime
	go run ./examples/pipeline
