// Command speccoord coordinates one distributed speculative run: it waits
// for the configured number of specnode processes to join, assigns ranks,
// distributes the run configuration, releases the start barrier, and
// collects per-node results (plus checkpoint snapshots when enabled).
//
// Usage:
//
//	speccoord [-addr host:port] [-app heat|jacobi|pipeline] [-procs P] [-iters N]
//	          [-fw W] [-theta θ] [-rows R] [-cols C] [-n N] [-tol T]
//	          [-width W] [-place r0,r1,...] [-exact] [-verify ε]
//	          [-checkpoint K] [-deadline s] [-crash-overrun K] [-delta] [-nobatch]
//	          [-spawn] [-max-respawns R] [-custody-dir DIR]
//	          [-node-timeout d] [-rejoin-wait d] [-http] [-timeout d]
//	          [-fleet host:port] [-job name] [-trace-out file] [-selfcheck] [-hold d]
//
// With -spawn, speccoord launches the P node processes itself on
// 127.0.0.1 (re-executing its own binary in node mode) — a whole
// multi-process run from one command:
//
//	speccoord -spawn -procs 4 -app heat -iters 200
//
// Without -spawn it prints its address and waits for externally started
// specnodes (same machine or remote).
//
// Crash tolerance: with -spawn every node runs under a supervisor — a
// child that dies (kill -9 included) is relaunched with a bumped
// incarnation epoch and capped exponential backoff, reclaims its old rank
// from the coordinator, restores from checkpoint custody, and rejoins the
// mesh; -max-respawns bounds the budget. Child stdout/stderr is prefixed
// with "[node N]" and a child that ultimately fails makes speccoord itself
// exit non-zero. -custody-dir makes checkpoint custody durable: per-rank
// blobs are persisted there (atomic replace, CRC-sealed), and a restarted
// speccoord on the same directory resumes the previous incarnation's
// custody instead of losing the run's checkpoints. -node-timeout vacates a
// node whose control connection goes silent; -rejoin-wait bounds how long
// a vacated rank may stay unclaimed before the run fails.
//
// The fleet plane: -fleet serves ONE aggregated Prometheus endpoint for the
// whole run (every node's series re-labelled with job/node) plus a /fleet
// JSON status view; nodes push snapshots to the coordinator over their
// existing control connection, so there is a single scrape target no matter
// how many processes the run spans. -trace-out merges the per-node run
// journals into one time-aligned Chrome/Perfetto trace in which a
// speculation's predict/send/deliver/check spans from different OS
// processes appear as one linked flow.
//
// Service mode: -serve runs a long-lived multi-run scheduler instead of a
// single coordinator — jobs are submitted over HTTP (cmd/specsubmit),
// queued by priority, sharded across a -pool of ranks, quota-limited per
// tenant, and preemptible to checkpoint custody. SIGTERM drains to the
// -custody-dir / -state-dir so a restarted service resumes the queue:
//
//	speccoord -serve -pool 8 -custody-dir /var/lib/specomp/custody \
//	          -state-dir /var/lib/specomp/state -max-tenant-ranks 6
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	nethttp "net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"specomp/internal/checkpoint"
	"specomp/internal/distnet"
	"specomp/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "coordinator listen address")
		app       = flag.String("app", "heat", "application: heat, jacobi or pipeline")
		procs     = flag.Int("procs", 4, "number of node processes")
		iters     = flag.Int("iters", 200, "maximum iterations")
		fw        = flag.Int("fw", 2, "forward speculation window")
		bw        = flag.Int("bw", 0, "backward window (0 = predictor default)")
		theta     = flag.Float64("theta", 1e-3, "speculation acceptance threshold θ")
		rows      = flag.Int("rows", 48, "heat grid rows")
		cols      = flag.Int("cols", 32, "heat grid columns")
		n         = flag.Int("n", 64, "jacobi system size")
		tol       = flag.Float64("tol", 0, "jacobi convergence tolerance (0 = run all iterations)")
		seed      = flag.Int64("seed", 1, "problem seed (jacobi, pipeline)")
		width     = flag.Int("width", 16, "pipeline per-stage row width")
		place     = flag.String("place", "", "pipeline stage placement: comma-separated rank per stage (default identity)")
		exact     = flag.Bool("exact", false, "pipeline: zero every stage tolerance (an FW=1 run is then bit-identical to serial)")
		verify    = flag.Float64("verify", -1, "pipeline: after the run, compare finals against the serial reference within this envelope (negative = off)")
		ckpt      = flag.Int("checkpoint", 0, "checkpoint every K iterations (0 = off)")
		deadline  = flag.Float64("deadline", 0, "per-iteration wall-clock deadline in seconds (0 = off; enables graceful degradation and crash bridging)")
		crashOver = flag.Int("crash-overrun", 0, "extra speculative iterations past a dead peer (0 = engine default)")
		delta     = flag.Bool("delta", false, "enable the delta codec on batch frames")
		nobatch   = flag.Bool("nobatch", false, "disable frame batching (per-message wire baseline)")
		spawn     = flag.Bool("spawn", false, "launch the node processes locally, each under a supervisor")
		respawns  = flag.Int("max-respawns", 3, "how many times a crashed spawned node is relaunched before giving up")
		custody   = flag.String("custody-dir", "", "persist checkpoint custody here (atomic per-rank files); a restarted coordinator resumes it")
		nodeTO    = flag.Duration("node-timeout", 10*time.Second, "vacate a node whose control connection is silent this long (negative = off)")
		rejoinW   = flag.Duration("rejoin-wait", 30*time.Second, "fail the run if a vacated rank stays unclaimed this long")
		http      = flag.Bool("http", false, "spawned nodes serve /metrics and /journal on ephemeral ports")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall run timeout")
		jsonOut   = flag.Bool("json", false, "print the reports as JSON instead of a table")
		fleetAddr = flag.String("fleet", "127.0.0.1:0", "aggregated fleet /metrics + /fleet listen address (empty = off)")
		job       = flag.String("job", "", "job label on aggregated fleet metrics (default: the app name)")
		traceOut  = flag.String("trace-out", "", "write the merged cross-process speculation trace (Chrome JSON) here")
		selfcheck = flag.Bool("selfcheck", false, "after the run, validate the aggregated exposition (all ranks present, no duplicate series)")
		obsPush   = flag.Int("obs-push-ms", 0, "metrics push period in ms (0 = 500ms default, negative = off)")
		hold      = flag.Duration("hold", 0, "keep the fleet endpoint up this long after the run (for scraping)")

		// Service mode: a long-running multi-run scheduler (see serve.go).
		serve        = flag.Bool("serve", false, "run as a multi-run scheduler service instead of one coordinator")
		serveAddr    = flag.String("serve-addr", "127.0.0.1:0", "scheduler HTTP listen address (with -serve)")
		pool         = flag.Int("pool", 8, "scheduler node-pool capacity in ranks (with -serve)")
		stateDir     = flag.String("state-dir", "", "persist the scheduler's pending queue here across restarts (with -serve)")
		tenantJobs   = flag.Int("max-tenant-jobs", 0, "per-tenant active job quota, 0 = unlimited (with -serve)")
		tenantRanks  = flag.Int("max-tenant-ranks", 0, "per-tenant active rank quota, 0 = unlimited (with -serve)")
		evictGrace   = flag.Duration("evict-grace", 10*time.Second, "how long a preemption waits for full custody coverage (with -serve)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for running jobs to evict (with -serve)")

		// Node mode, used by -spawn to re-execute this binary as a specnode.
		join  = flag.String("join", "", "internal: run as a node against this coordinator")
		epoch = flag.Int("epoch", 0, "internal: incarnation epoch of this node process")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "speccoord ", log.Ltime|log.Lmicroseconds)

	if *join != "" {
		httpAddr := ""
		if *http {
			httpAddr = "127.0.0.1:0"
		}
		res, err := distnet.RunNode(distnet.NodeConfig{
			Coord:    *join,
			HTTPAddr: httpAddr,
			Epoch:    *epoch,
			Logf:     func(format string, args ...any) { logger.Printf(format, args...) },
		})
		if err != nil {
			logger.Fatalf("node: %v", err)
		}
		logger.Printf("node rank %d (epoch %d) finished after %v", res.Rank, *epoch, res.Wall)
		return
	}

	if *serve {
		runServe(serveOpts{
			addr: *serveAddr, pool: *pool,
			custodyDir: *custody, stateDir: *stateDir,
			tenantJobs: *tenantJobs, tenantRanks: *tenantRanks,
			maxRespawns: *respawns, runTimeout: *timeout,
			evictGrace: *evictGrace, drainTimeout: *drainTimeout,
			nodeTimeout: *nodeTO, rejoinWait: *rejoinW,
		}, logger)
		return
	}

	spec := distnet.RunSpec{
		App: *app, Procs: *procs, MaxIter: *iters, FW: *fw, BW: *bw,
		Theta: *theta, Rows: *rows, Cols: *cols, N: *n, Tol: *tol,
		Width: *width, Exact: *exact,
		Seed: *seed, CheckpointEvery: *ckpt,
		Deadline: *deadline, MaxCrashOverrun: *crashOver,
		Wire:      distnet.WireSpec{Delta: *delta, NoBatch: *nobatch},
		Job:       *job,
		ObsPushMS: *obsPush,
		Trace:     *traceOut != "",
	}
	if *place != "" {
		for _, part := range strings.Split(*place, ",") {
			r, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				logger.Fatalf("-place: %v", err)
			}
			spec.Placement = append(spec.Placement, r)
		}
	}

	// Durable custody: checkpoint blobs survive the coordinator process.
	var store *checkpoint.FileStore
	if *custody != "" {
		var err error
		if store, err = checkpoint.NewFileStore(*custody); err != nil {
			logger.Fatalf("%v", err)
		}
	}

	// The fleet metrics plane: one aggregated endpoint for the whole run.
	var fleet *distnet.FleetObs
	if *fleetAddr != "" || *selfcheck {
		fleet = distnet.NewFleetObs(*job)
	}
	if fleet != nil && *fleetAddr != "" {
		ln, err := net.Listen("tcp", *fleetAddr)
		if err != nil {
			logger.Fatalf("fleet listener: %v", err)
		}
		defer ln.Close()
		go func() { _ = nethttp.Serve(ln, fleet.Handler()) }()
		fmt.Printf("fleet metrics on http://%s/metrics (status: /fleet)\n", ln.Addr())
	}

	cfg := distnet.CoordConfig{
		Addr: *addr, Spec: spec, Timeout: *timeout, Fleet: fleet,
		NodeTimeout: *nodeTO, RejoinWait: *rejoinW,
		Logf: func(format string, args ...any) { logger.Printf(format, args...) },
	}
	if store != nil {
		cfg.Custody = store
	}
	coord, err := distnet.NewCoordinator(cfg)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	fmt.Printf("coordinator listening on %s (waiting for %d nodes)\n", coord.Addr(), coord.Spec().Procs)

	// With -spawn every node slot runs under a supervisor: a child that
	// dies is relaunched with a bumped epoch (the rejoin credential) until
	// the respawn budget runs out; its output is line-prefixed so the
	// interleaved fleet stays readable.
	var (
		sups     []*distnet.Supervisor
		prefixes []*distnet.PrefixWriter
	)
	if *spawn {
		self, err := os.Executable()
		if err != nil {
			self = os.Args[0]
		}
		for i := 0; i < coord.Spec().Procs; i++ {
			pw := distnet.NewPrefixWriter(os.Stderr, fmt.Sprintf("[node %d] ", i))
			sup, err := distnet.Supervise(distnet.SuperviseConfig{
				Start: func(epoch int) (*exec.Cmd, error) {
					args := []string{"-join", coord.Addr(), "-epoch", strconv.Itoa(epoch)}
					if *http {
						args = append(args, "-http")
					}
					cmd := exec.Command(self, args...)
					cmd.Stdout = pw
					cmd.Stderr = pw
					return cmd, nil
				},
				MaxRespawns: *respawns,
				Logf:        logger.Printf,
			})
			if err != nil {
				logger.Fatalf("spawning node %d: %v", i, err)
			}
			sups = append(sups, sup)
			prefixes = append(prefixes, pw)
		}
		logger.Printf("spawned %d supervised local node processes (respawn budget %d each)", len(sups), *respawns)
	}

	reports, err := coord.Wait()
	if err != nil {
		for _, sup := range sups {
			sup.Stop()
		}
		logger.Fatalf("%v", err)
	}
	// The run succeeded; the children exit on the shutdown broadcast. A
	// child outcome that is not a clean exit — a launch failure or a node
	// that kept dying past its budget — is this process's failure too.
	childFailed := false
	for i, sup := range sups {
		if werr := sup.Wait(); werr != nil {
			logger.Printf("node %d: %v", i, werr)
			childFailed = true
		}
	}
	for _, pw := range prefixes {
		_ = pw.Flush()
	}
	if st := coord.Stats(); st.Vacated > 0 || st.CustodyRestores > 0 {
		logger.Printf("crash tolerance: %d vacated, %d rejoined, %d custody saves, %d custody restores",
			st.Vacated, st.Rejoins, st.CustodySaves, st.CustodyRestores)
	}
	if store != nil {
		if werr := store.Err(); werr != nil {
			logger.Printf("warning: custody writes degraded: %v", werr)
		}
		// The run completed: its custody has served its purpose, and leaving
		// final-iteration checkpoints behind would poison the next run
		// started on this directory.
		if werr := store.Clear(); werr != nil {
			logger.Printf("warning: %v", werr)
		} else {
			logger.Printf("custody cleared (run complete)")
		}
	}

	if *selfcheck {
		if err := fleet.SelfCheck(coord.Spec().Procs); err != nil {
			logger.Fatalf("fleet selfcheck: %v", err)
		}
		logger.Printf("fleet selfcheck passed: %d ranks aggregated, no duplicate series", coord.Spec().Procs)
	}
	if *verify >= 0 {
		if err := distnet.VerifyPipeline(coord.Spec(), reports, *verify); err != nil {
			logger.Fatalf("verify: %v", err)
		}
		logger.Printf("verify passed: all %d stages within %g of the serial reference", coord.Spec().Procs, *verify)
	}
	if *traceOut != "" {
		journals := distnet.FleetJournals(reports)
		if len(journals) < coord.Spec().Procs {
			logger.Fatalf("trace merge: only %d/%d nodes shipped a journal", len(journals), coord.Spec().Procs)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Fatalf("trace-out: %v", err)
		}
		if err := trace.WriteFleetTrace(f, journals); err != nil {
			logger.Fatalf("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			logger.Fatalf("trace-out: %v", err)
		}
		logger.Printf("wrote merged trace of %d processes to %s (load in ui.perfetto.dev)", len(journals), *traceOut)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			logger.Fatalf("%v", err)
		}
	} else {
		fmt.Printf("%-4s %-21s %-9s %5s %6s %6s %5s %7s %8s %9s %10s\n",
			"rank", "addr", "converged", "epoch", "iters", "specs", "bad", "repairs", "wall", "msgs", "bytes")
		for _, r := range reports {
			fmt.Printf("%-4d %-21s %-9v %5d %6d %6d %5d %7d %7.3fs %9d %10d\n",
				r.Rank, r.Addr, r.Converged, r.Epoch, r.Iters, r.SpecsMade, r.SpecsBad,
				r.Repairs, r.WallSec, r.MsgsSent, r.BytesSent)
			if r.Epoch > 0 {
				fmt.Printf("     └─ respawned incarnation: %d checkpoint restore(s) from custody\n", r.Restores)
			}
			if r.HTTP != "" {
				fmt.Printf("     └─ served http://%s/metrics and /journal during the run\n", r.HTTP)
			}
		}
	}

	if *hold > 0 && fleet != nil && *fleetAddr != "" {
		logger.Printf("holding the fleet endpoint open for %v", *hold)
		time.Sleep(*hold)
	}
	if childFailed {
		os.Exit(1)
	}
}
