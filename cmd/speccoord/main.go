// Command speccoord coordinates one distributed speculative run: it waits
// for the configured number of specnode processes to join, assigns ranks,
// distributes the run configuration, releases the start barrier, and
// collects per-node results (plus checkpoint snapshots when enabled).
//
// Usage:
//
//	speccoord [-addr host:port] [-app heat|jacobi] [-procs P] [-iters N]
//	          [-fw W] [-theta θ] [-rows R] [-cols C] [-n N] [-tol T]
//	          [-checkpoint K] [-delta] [-nobatch] [-spawn] [-http] [-timeout d]
//	          [-fleet host:port] [-job name] [-trace-out file] [-selfcheck] [-hold d]
//
// With -spawn, speccoord launches the P node processes itself on
// 127.0.0.1 (re-executing its own binary in node mode) — a whole
// multi-process run from one command:
//
//	speccoord -spawn -procs 4 -app heat -iters 200
//
// Without -spawn it prints its address and waits for externally started
// specnodes (same machine or remote).
//
// The fleet plane: -fleet serves ONE aggregated Prometheus endpoint for the
// whole run (every node's series re-labelled with job/node) plus a /fleet
// JSON status view; nodes push snapshots to the coordinator over their
// existing control connection, so there is a single scrape target no matter
// how many processes the run spans. -trace-out merges the per-node run
// journals into one time-aligned Chrome/Perfetto trace in which a
// speculation's predict/send/deliver/check spans from different OS
// processes appear as one linked flow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	nethttp "net/http"
	"os"
	"os/exec"
	"time"

	"specomp/internal/distnet"
	"specomp/internal/trace"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "coordinator listen address")
		app       = flag.String("app", "heat", "application: heat or jacobi")
		procs     = flag.Int("procs", 4, "number of node processes")
		iters     = flag.Int("iters", 200, "maximum iterations")
		fw        = flag.Int("fw", 2, "forward speculation window")
		bw        = flag.Int("bw", 0, "backward window (0 = predictor default)")
		theta     = flag.Float64("theta", 1e-3, "speculation acceptance threshold θ")
		rows      = flag.Int("rows", 48, "heat grid rows")
		cols      = flag.Int("cols", 32, "heat grid columns")
		n         = flag.Int("n", 64, "jacobi system size")
		tol       = flag.Float64("tol", 0, "jacobi convergence tolerance (0 = run all iterations)")
		seed      = flag.Int64("seed", 1, "problem seed (jacobi)")
		ckpt      = flag.Int("checkpoint", 0, "checkpoint every K iterations (0 = off)")
		delta     = flag.Bool("delta", false, "enable the delta codec on batch frames")
		nobatch   = flag.Bool("nobatch", false, "disable frame batching (per-message wire baseline)")
		spawn     = flag.Bool("spawn", false, "launch the node processes locally")
		http      = flag.Bool("http", false, "spawned nodes serve /metrics and /journal on ephemeral ports")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall run timeout")
		jsonOut   = flag.Bool("json", false, "print the reports as JSON instead of a table")
		fleetAddr = flag.String("fleet", "127.0.0.1:0", "aggregated fleet /metrics + /fleet listen address (empty = off)")
		job       = flag.String("job", "", "job label on aggregated fleet metrics (default: the app name)")
		traceOut  = flag.String("trace-out", "", "write the merged cross-process speculation trace (Chrome JSON) here")
		selfcheck = flag.Bool("selfcheck", false, "after the run, validate the aggregated exposition (all ranks present, no duplicate series)")
		obsPush   = flag.Int("obs-push-ms", 0, "metrics push period in ms (0 = 500ms default, negative = off)")
		hold      = flag.Duration("hold", 0, "keep the fleet endpoint up this long after the run (for scraping)")

		// Node mode, used by -spawn to re-execute this binary as a specnode.
		join = flag.String("join", "", "internal: run as a node against this coordinator")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "speccoord ", log.Ltime|log.Lmicroseconds)

	if *join != "" {
		httpAddr := ""
		if *http {
			httpAddr = "127.0.0.1:0"
		}
		res, err := distnet.RunNode(distnet.NodeConfig{
			Coord:    *join,
			HTTPAddr: httpAddr,
			Logf:     func(format string, args ...any) { logger.Printf(format, args...) },
		})
		if err != nil {
			logger.Fatalf("node: %v", err)
		}
		logger.Printf("node rank %d finished after %v", res.Rank, res.Wall)
		return
	}

	spec := distnet.RunSpec{
		App: *app, Procs: *procs, MaxIter: *iters, FW: *fw, BW: *bw,
		Theta: *theta, Rows: *rows, Cols: *cols, N: *n, Tol: *tol,
		Seed: *seed, CheckpointEvery: *ckpt,
		Wire:      distnet.WireSpec{Delta: *delta, NoBatch: *nobatch},
		Job:       *job,
		ObsPushMS: *obsPush,
		Trace:     *traceOut != "",
	}

	// The fleet metrics plane: one aggregated endpoint for the whole run.
	var fleet *distnet.FleetObs
	if *fleetAddr != "" || *selfcheck {
		fleet = distnet.NewFleetObs(*job)
	}
	if fleet != nil && *fleetAddr != "" {
		ln, err := net.Listen("tcp", *fleetAddr)
		if err != nil {
			logger.Fatalf("fleet listener: %v", err)
		}
		defer ln.Close()
		go func() { _ = nethttp.Serve(ln, fleet.Handler()) }()
		fmt.Printf("fleet metrics on http://%s/metrics (status: /fleet)\n", ln.Addr())
	}

	coord, err := distnet.NewCoordinator(distnet.CoordConfig{
		Addr: *addr, Spec: spec, Timeout: *timeout, Fleet: fleet,
		Logf: func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	fmt.Printf("coordinator listening on %s (waiting for %d nodes)\n", coord.Addr(), coord.Spec().Procs)

	var nodes []*exec.Cmd
	if *spawn {
		self, err := os.Executable()
		if err != nil {
			self = os.Args[0]
		}
		for i := 0; i < coord.Spec().Procs; i++ {
			args := []string{"-join", coord.Addr()}
			if *http {
				args = append(args, "-http")
			}
			cmd := exec.Command(self, args...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				logger.Fatalf("spawning node %d: %v", i, err)
			}
			nodes = append(nodes, cmd)
		}
		logger.Printf("spawned %d local node processes", len(nodes))
	}

	reports, err := coord.Wait()
	for _, cmd := range nodes {
		_ = cmd.Wait()
	}
	if err != nil {
		logger.Fatalf("%v", err)
	}

	if *selfcheck {
		if err := fleet.SelfCheck(coord.Spec().Procs); err != nil {
			logger.Fatalf("fleet selfcheck: %v", err)
		}
		logger.Printf("fleet selfcheck passed: %d ranks aggregated, no duplicate series", coord.Spec().Procs)
	}
	if *traceOut != "" {
		journals := distnet.FleetJournals(reports)
		if len(journals) < coord.Spec().Procs {
			logger.Fatalf("trace merge: only %d/%d nodes shipped a journal", len(journals), coord.Spec().Procs)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Fatalf("trace-out: %v", err)
		}
		if err := trace.WriteFleetTrace(f, journals); err != nil {
			logger.Fatalf("trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			logger.Fatalf("trace-out: %v", err)
		}
		logger.Printf("wrote merged trace of %d processes to %s (load in ui.perfetto.dev)", len(journals), *traceOut)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			logger.Fatalf("%v", err)
		}
	} else {
		fmt.Printf("%-4s %-21s %-9s %6s %6s %5s %7s %8s %9s %10s\n",
			"rank", "addr", "converged", "iters", "specs", "bad", "repairs", "wall", "msgs", "bytes")
		for _, r := range reports {
			fmt.Printf("%-4d %-21s %-9v %6d %6d %5d %7d %7.3fs %9d %10d\n",
				r.Rank, r.Addr, r.Converged, r.Iters, r.SpecsMade, r.SpecsBad,
				r.Repairs, r.WallSec, r.MsgsSent, r.BytesSent)
			if r.HTTP != "" {
				fmt.Printf("     └─ served http://%s/metrics and /journal during the run\n", r.HTTP)
			}
		}
	}

	if *hold > 0 && fleet != nil && *fleetAddr != "" {
		logger.Printf("holding the fleet endpoint open for %v", *hold)
		time.Sleep(*hold)
	}
}
