// Command timeline renders the paper's Figure 2 and Figure 4 execution
// timelines: two processors exchanging messages over a slow channel, with
// and without speculative computation, and under a transient delay with
// forward windows 0, 1 and 2.
//
// Usage:
//
//	timeline [-fig 2|4]
package main

import (
	"flag"
	"fmt"
	"log"

	"specomp/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 2, "figure to render (2 or 4)")
	flag.Parse()

	var (
		rep experiments.Report
		err error
	)
	switch *fig {
	case 2:
		rep, err = experiments.Figure2()
	case 4:
		rep, err = experiments.Figure4()
	default:
		log.Fatalf("unknown figure %d (want 2 or 4)", *fig)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.String())
}
