// Command timeline renders the paper's Figure 2 and Figure 4 execution
// timelines: two processors exchanging messages over a slow channel, with
// and without speculative computation, and under a transient delay with
// forward windows 0, 1 and 2.
//
// With -trace-out the same runs are also exported as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing, one
// process track per scenario.
//
// Usage:
//
//	timeline [-fig 2|4] [-trace-out file.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"specomp/internal/experiments"
	"specomp/internal/trace"
)

func main() {
	fig := flag.Int("fig", 2, "figure to render (2 or 4)")
	traceOut := flag.String("trace-out", "", "also write the runs as Chrome trace-event JSON to this file")
	flag.Parse()

	var (
		rep  experiments.Report
		recs []trace.NamedRecorder
		err  error
	)
	switch *fig {
	case 2:
		rep, recs, err = experiments.Figure2Traced()
	case 4:
		rep, recs, err = experiments.Figure4Traced()
	default:
		log.Fatalf("unknown figure %d (want 2 or 4)", *fig)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.String())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChromeTrace(f, recs...); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote Chrome trace (%d tracks) to %s — open in ui.perfetto.dev\n", len(recs), *traceOut)
	}
}
