// Command nbody runs one parallel N-body simulation on the simulated
// workstation network and reports speedup, phase times and speculation
// statistics.
//
// Usage:
//
//	nbody [-n 1000] [-procs 16] [-iters 10] [-fw 1] [-theta 0.01]
//	      [-ic sphere|disk|clusters] [-seed 1994]
package main

import (
	"flag"
	"fmt"
	"log"

	"specomp/internal/core"
	"specomp/internal/experiments"
	"specomp/internal/nbody"
)

func main() {
	var (
		n     = flag.Int("n", 1000, "number of particles")
		procs = flag.Int("procs", 16, "number of simulated workstations")
		iters = flag.Int("iters", 10, "timesteps")
		fw    = flag.Int("fw", 1, "forward window (0 = no speculation)")
		theta = flag.Float64("theta", 0.01, "speculation error threshold θ")
		ic    = flag.String("ic", "sphere", "initial condition: sphere, disk, clusters")
		seed  = flag.Int64("seed", 1994, "random seed")
		mac   = flag.Float64("mac", 0, "Barnes-Hut opening angle (0 = exact O(N²) direct sum)")
	)
	flag.Parse()

	cfg := experiments.DefaultNBody()
	cfg.N = *n
	cfg.MaxProcs = *procs
	cfg.Iters = *iters
	cfg.Theta = *theta
	cfg.Seed = *seed
	switch *ic {
	case "sphere":
		cfg.IC = nbody.UniformSphere
	case "disk":
		cfg.IC = nbody.RotatingDisk
	case "clusters":
		cfg.IC = nbody.TwoClusters
	default:
		log.Fatalf("unknown initial condition %q", *ic)
	}

	instr := &nbody.Instrument{}
	if *mac > 0 {
		// Route through the custom runner to set the Barnes-Hut kernel.
		fmt.Printf("force kernel: Barnes-Hut, opening angle %.2f\n", *mac)
	}
	results, err := cfg.RunWithKernel(*procs, *fw, *theta, *mac, instr)
	if err != nil {
		log.Fatal(err)
	}
	serial, err := cfg.SerialTime()
	if err != nil {
		log.Fatal(err)
	}
	total := core.TotalTime(results)
	agg := core.Aggregate(results)
	it := float64(*iters)

	fmt.Printf("N-body: %d particles, %d processors, %d iterations, FW=%d, θ=%g, ic=%s\n",
		*n, *procs, *iters, *fw, *theta, *ic)
	fmt.Printf("virtual time:   %.2f s total (%.3f s/iter)\n", total, total/it)
	fmt.Printf("speedup:        %.2f (max attainable %.2f)\n",
		serial/total, cfg.SumCaps(*procs)/cfg.SumCaps(1))
	fmt.Printf("phases/iter:    compute %.3f  comm %.3f  spec %.3f  check %.3f  correct %.3f\n",
		agg.MaxCompute/it, agg.MaxComm/it, agg.MaxSpec/it, agg.MaxCheck/it, agg.MaxCorrect/it)
	fmt.Printf("speculations:   %d made, %d failed checks (%.2f%%), %d repairs, %d cascades\n",
		agg.SpecsMade, agg.SpecsBad, 100*agg.BadFraction(), agg.Repairs, agg.CascadeRedos)
	if instr.PairsTotal > 0 {
		fmt.Printf("pair checks:    %.3f%% out of tolerance; max accepted force error %.3f%%\n",
			100*float64(instr.PairsBad)/float64(instr.PairsTotal), 100*instr.MaxForceErr)
	}
}
