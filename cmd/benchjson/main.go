// Command benchjson converts `go test -bench` output on stdin into a JSON
// record of ns/op and allocs/op per benchmark, so CI and the repo can pin a
// machine-readable performance baseline (BENCH_core.json) without external
// tooling.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_core.json
//
// With -o, series already in the output file that this run did not produce
// (e.g. the soak harness's Soak* series) are kept; matching series are
// replaced. With -baseline, any parsed benchmark whose allocs/op exceeds
// the same series in the baseline file fails the run (exit 1) before
// anything is written — the allocation-regression gate of `make bench-core`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"specomp/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "output file (default stdout); existing series are merged, not clobbered")
	baseline := flag.String("baseline", "", "fail if any benchmark's allocs/op regresses above this report")
	flag.Parse()

	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	if *baseline != "" {
		base, err := benchfmt.Load(*baseline)
		switch {
		case os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "benchjson: no baseline at %s yet; skipping regression check\n", *baseline)
		case err != nil:
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		default:
			if regs := rep.CompareAllocs(&base); len(regs) > 0 {
				fmt.Fprintln(os.Stderr, "benchjson: allocs/op regressions vs", *baseline)
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "  ", r)
				}
				os.Exit(1)
			}
		}
	}

	if *out == "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(buf, '\n'))
		return
	}

	final := rep
	if prev, err := benchfmt.Load(*out); err == nil {
		prev.GOOS, prev.GOARCH, prev.CPU = rep.GOOS, rep.GOARCH, rep.CPU
		prev.Merge(rep.Benchmarks...)
		final = prev
	}
	if err := final.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
