// Command benchjson converts `go test -bench` output on stdin into a JSON
// record of ns/op and allocs/op per benchmark, so CI and the repo can pin a
// machine-readable performance baseline (BENCH_core.json) without external
// tooling.
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var rep Report
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Pkg: pkg, Name: m[1]}
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
