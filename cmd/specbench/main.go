// Command specbench regenerates every table and figure of the paper's
// evaluation. By default it runs the full paper-scale configuration
// (N=1000 particles, 16 simulated workstations); -quick switches to the
// scaled-down test configuration.
//
// Usage:
//
//	specbench [-exp all|fig2|fig4|fig5|fig6|fig8|table2|table3|fig9] [-quick]
//	          [-n particles] [-iters n] [-procs p] [-theta θ]
//	          [-csv dir] [-metrics file]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"specomp/internal/experiments"
	"specomp/internal/obs"
)

func main() {
	var (
		exp = flag.String("exp", "all",
			"experiment id: all, ext, or any of fig2, fig4, fig5, fig6, fig8, table2, table3, fig9, ext-fw, ext-bw, ext-async, ext-load, ext-topo, ext-faults, ext-chaos, ext-dag")
		quick   = flag.Bool("quick", false, "use the scaled-down configuration")
		fault   = flag.Bool("faults", false, "shorthand for -exp ext-faults: run under an unreliable network")
		crash   = flag.Bool("crash", false, "shorthand for -exp ext-chaos: the crash/restart chaos soak")
		dag     = flag.Bool("dag", false, "shorthand for -exp ext-dag: task-DAG and pipeline experiments")
		n       = flag.Int("n", 0, "override particle count")
		iters   = flag.Int("iters", 0, "override iteration count")
		procs   = flag.Int("procs", 0, "override machine-set size")
		theta   = flag.Float64("theta", 0, "override speculation threshold θ")
		chart   = flag.Bool("chart", true, "render figure series as ASCII charts")
		csvDir  = flag.String("csv", "", "also write each experiment's series to <dir>/<id>.csv")
		metrics = flag.String("metrics", "", "instrument all runs and write a Prometheus text dump to this file")
	)
	flag.Parse()

	cfg := experiments.DefaultNBody()
	if *quick {
		cfg = experiments.QuickNBody()
	}
	// One registry shared by every requested experiment keeps the dump a
	// single valid exposition; per-experiment deltas go into each report.
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *iters > 0 {
		cfg.Iters = *iters
	}
	if *procs > 0 {
		cfg.MaxProcs = *procs
	}
	if *theta > 0 {
		cfg.Theta = *theta
	}

	ids := strings.Split(*exp, ",")
	switch *exp {
	case "all":
		ids = []string{"fig2", "fig4", "fig5", "fig6", "fig8", "table2", "table3", "fig9"}
	case "ext":
		ids = []string{"ext-fw", "ext-bw", "ext-async", "ext-load", "ext-topo", "ext-apps", "ext-faults", "ext-dag"}
	}
	if *fault {
		ids = []string{"ext-faults"}
	}
	if *crash {
		ids = []string{"ext-chaos"}
	}
	if *dag {
		ids = []string{"ext-dag"}
	}
	failed := false
	for _, id := range ids {
		var before map[string]float64
		if reg != nil {
			before = reg.Totals()
		}
		rep, err := run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "specbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if reg != nil {
			rep.Metrics = obs.DeltaLines(before, reg.Totals())
		}
		if len(rep.Failures) > 0 {
			failed = true
		}
		fmt.Println(rep.String())
		if *chart && len(rep.Series) > 0 {
			fmt.Println(rep.Chart(72, 18))
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "specbench: %v\n", err)
				os.Exit(1)
			}
			path := fmt.Sprintf("%s/%s.csv", *csvDir, rep.ID)
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "specbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if reg != nil {
		if err := writeMetrics(*metrics, reg); err != nil {
			fmt.Fprintf(os.Stderr, "specbench: %v\n", err)
			os.Exit(1)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "specbench: one or more experiments reported failures")
		os.Exit(1)
	}
}

// writeMetrics dumps the registry in Prometheus text exposition format and
// re-parses the written file as a self-check, so a broken exposition fails
// the run instead of silently producing an unusable dump.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteProm(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	rf, err := os.Open(path)
	if err != nil {
		return err
	}
	defer rf.Close()
	samples, err := obs.ParseProm(rf)
	if err != nil {
		return fmt.Errorf("metrics self-check: %s does not parse: %w", path, err)
	}
	if len(samples) == 0 {
		return fmt.Errorf("metrics self-check: %s is empty", path)
	}
	return nil
}

func run(id string, cfg experiments.NBodyConfig) (experiments.Report, error) {
	switch id {
	case "fig2":
		return experiments.Figure2()
	case "fig4":
		return experiments.Figure4()
	case "fig5":
		return experiments.Figure5(), nil
	case "fig6":
		return experiments.Figure6(), nil
	case "fig8":
		return experiments.Figure8(cfg)
	case "table2":
		rep, _, err := experiments.Table2(cfg)
		return rep, err
	case "table3":
		rep, _, err := experiments.Table3(cfg)
		return rep, err
	case "fig9":
		return experiments.Figure9(cfg)
	case "ext-fw":
		return experiments.ExtForwardWindows(cfg)
	case "ext-bw":
		return experiments.ExtPredictors(cfg)
	case "ext-async":
		return experiments.ExtBaselines(cfg)
	case "ext-load":
		return experiments.ExtLoad(cfg)
	case "ext-topo":
		return experiments.ExtTopology(cfg)
	case "ext-apps":
		return experiments.ExtApps(cfg)
	case "ext-faults":
		return experiments.ExtFaults(cfg)
	case "ext-chaos":
		return experiments.ExtChaos(cfg)
	case "ext-dag":
		return experiments.ExtDAG(cfg)
	default:
		return experiments.Report{}, fmt.Errorf("unknown experiment %q", id)
	}
}
