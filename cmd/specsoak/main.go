// Command specsoak soaks the distnet wire plane at paper-exceeding scale:
// one coordinator plus P node processes (default 64) on 127.0.0.1, each a
// real OS process re-executed from this binary, optionally under chaos
// (loss-free duplicates and sender-side delay spikes). It records the
// throughput measures the batching work is judged by — aggregate message
// rate, delivery-latency percentiles, and whole-process allocations per
// message — as Soak* series in the repo's benchmark baseline.
//
// Usage:
//
//	specsoak [-procs 64] [-iters 150] [-chaos] [-delta] [-nobatch]
//	         [-kill N] [-kill-seed S] [-journal-dir DIR]
//	         [-jobs N] [-pool R]
//	         [-o BENCH_core.json] [-timeout 5m]
//
// With -o, the soak series are merged into the existing report (other
// series are kept); without it the summary only prints. The coordinator
// aggregates every node's metrics snapshots (the fleet plane), so the soak
// also records fleet-level wire series — mean batch occupancy and delta
// compression ratio — that no single process can see. -journal-dir makes
// every node stream its run journal to a size-capped JSONL file there.
//
// The kill soak: -kill N runs the fleet twice — once fault-free to record
// the baseline field and wall time, then again under a seeded
// faults.CrashSchedule that SIGKILLs N live node processes mid-run. Every
// node runs under a supervisor, so each victim respawns with a bumped
// epoch, reclaims its rank, restores from coordinator custody, and the
// final field is asserted to converge on the fault-free baseline (and the
// serial reference) within the speculation tolerance. specsoak exits
// non-zero when convergence fails — this is the chaos gate CI runs.
// Throughput series are never recorded from a kill run.
//
// The scheduler soak: -jobs N drives the multi-run scheduler (the
// speccoord -serve machinery, in-process) with a long batch job plus a
// stream of arrivals at two priorities on a -pool of ranks, asserts that
// preemption-to-custody and resume actually happened, gates every job on
// its serial reference, and records queue-wait percentiles and the
// preemption count as Sched* series (see cmd/specsoak/sched.go).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"time"

	"specomp/internal/apps/heat"
	"specomp/internal/benchfmt"
	"specomp/internal/distnet"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
)

// chaosModel is the soak's fault stack: loss-free (drops would only shift
// work to the engine's repair path; the soak targets the wire plane), but
// duplicate-heavy and spiky enough that batches ship under reordering
// pressure the whole run.
func chaosModel() netmodel.Model {
	return faults.Duplicate{
		Prob: 0.15,
		Inner: faults.DelaySpikes{
			Prob: 0.25, ExtraMin: 0.0005, ExtraMax: 0.003,
			Inner: netmodel.Fixed{D: 0.0001},
		},
	}
}

// fleetRun is one coordinator + P node processes driven to completion.
type fleetRun struct {
	reports []distnet.NodeReport
	fleet   *distnet.FleetObs
	stats   distnet.CoordStats
	// respawns sums supervisor relaunches across the fleet (kill runs only).
	respawns int
}

// runFleet executes one whole multi-process run. With a kill schedule the
// nodes run supervised and a killer goroutine SIGKILLs the scheduled slots
// at their wall-clock offsets; without one the nodes are plain children.
func runFleet(logger *log.Logger, self string, spec distnet.RunSpec, timeout time.Duration,
	chaos bool, jdir string, jmax int64, kills faults.CrashSchedule) (*fleetRun, error) {

	fleet := distnet.NewFleetObs(spec.Job)
	coord, err := distnet.NewCoordinator(distnet.CoordConfig{Spec: spec, Timeout: timeout, Fleet: fleet})
	if err != nil {
		return nil, err
	}
	spec = coord.Spec()

	nodeArgs := func(slot, epoch int) []string {
		args := []string{"-join", coord.Addr(), "-epoch", strconv.Itoa(epoch)}
		if chaos {
			args = append(args, "-seed", strconv.Itoa(1000+slot))
		}
		if len(kills) > 0 {
			// Tight heartbeats so survivors detect the victim and bridge on
			// speculation well inside the downtime window.
			args = append(args, "-hb-ms", "500")
		}
		if jdir != "" {
			args = append(args, "-journal-dir", jdir, "-journal-max", strconv.FormatInt(jmax, 10))
		}
		return args
	}

	var (
		plain []*exec.Cmd
		sups  []*distnet.Supervisor
	)
	if len(kills) == 0 {
		for i := 0; i < spec.Procs; i++ {
			cmd := exec.Command(self, nodeArgs(i, 0)...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, fmt.Errorf("spawning node %d: %v", i, err)
			}
			plain = append(plain, cmd)
		}
	} else {
		for i := 0; i < spec.Procs; i++ {
			slot := i
			sup, err := distnet.Supervise(distnet.SuperviseConfig{
				Start: func(epoch int) (*exec.Cmd, error) {
					cmd := exec.Command(self, nodeArgs(slot, epoch)...)
					cmd.Stdout = os.Stderr
					cmd.Stderr = os.Stderr
					return cmd, nil
				},
				Logf: logger.Printf,
			})
			if err != nil {
				return nil, err
			}
			sups = append(sups, sup)
		}
		// The killer: SIGKILL each scheduled slot at its wall-clock offset
		// from spawn. The schedule's Downtime is advisory here — a real
		// process's outage is the supervisor's detect + backoff + relaunch
		// + rejoin latency.
		start := time.Now()
		go func() {
			for _, ev := range kills {
				time.Sleep(time.Until(start.Add(time.Duration(ev.At * float64(time.Second)))))
				logger.Printf("kill schedule: SIGKILL slot %d at +%.2fs", ev.Proc, time.Since(start).Seconds())
				sups[ev.Proc].Kill()
			}
		}()
	}

	reports, err := coord.Wait()
	for _, sup := range sups {
		// The run's verdict is the coordinator's; stop the supervisors so a
		// child killed after its result is not pointlessly relaunched.
		sup.Stop()
	}
	for _, cmd := range plain {
		_ = cmd.Wait()
	}
	run := &fleetRun{fleet: fleet, stats: coord.Stats()}
	for _, sup := range sups {
		if werr := sup.Wait(); werr != nil {
			logger.Printf("warning: supervisor latched %v", werr)
		}
		run.respawns += sup.Respawns()
	}
	if err != nil {
		return nil, err
	}
	run.reports = reports
	return run, nil
}

func main() {
	var (
		procs    = flag.Int("procs", 64, "number of node processes")
		iters    = flag.Int("iters", 150, "iterations per node")
		fw       = flag.Int("fw", 2, "forward speculation window")
		theta    = flag.Float64("theta", 1e-3, "speculation acceptance threshold θ")
		chaos    = flag.Bool("chaos", false, "inject duplicates and delay spikes on every node's send path")
		delta    = flag.Bool("delta", false, "enable the delta codec on batch frames")
		nobatch  = flag.Bool("nobatch", false, "disable frame batching (per-message baseline)")
		kill     = flag.Int("kill", 0, "SIGKILL this many live nodes mid-run on a seeded schedule and gate on convergence")
		killSeed = flag.Int64("kill-seed", 1, "seed of the kill schedule")
		ckpt     = flag.Int("checkpoint", 5, "checkpoint every K iterations during a kill run")
		deadline = flag.Float64("deadline", 0.25, "per-iteration wall-clock deadline (s) during a kill run")
		jobs     = flag.Int("jobs", 0, "scheduler soak: submit this many jobs (2 priorities) to an in-process scheduler and gate on preemption + per-job convergence")
		pool     = flag.Int("pool", 4, "scheduler soak: node-pool capacity in ranks")
		out      = flag.String("o", "", "merge Soak*/Sched* series into this benchfmt report (e.g. BENCH_core.json)")
		timeout  = flag.Duration("timeout", 5*time.Minute, "overall run timeout")
		jdir     = flag.String("journal-dir", "", "stream each node's run journal to node-R.jsonl under this directory")
		jmax     = flag.Int64("journal-max", 64<<20, "per-node journal size cap in bytes before rotation")

		// Node mode, used internally to re-execute this binary as one rank.
		join  = flag.String("join", "", "internal: run as a node against this coordinator")
		seed  = flag.Int64("seed", 0, "internal: chaos seed for this node (0 = no chaos)")
		epoch = flag.Int("epoch", 0, "internal: incarnation epoch of this node process")
		hbms  = flag.Int("hb-ms", 0, "internal: heartbeat staleness window in ms (0 = default)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "specsoak ", log.Ltime|log.Lmicroseconds)

	if *join != "" {
		cfg := distnet.NodeConfig{Coord: *join, Epoch: *epoch, JournalDir: *jdir, JournalMaxBytes: *jmax}
		if *seed != 0 {
			cfg.Faults = chaosModel()
			cfg.FaultSeed = *seed
		}
		if *hbms > 0 {
			cfg.HeartbeatTimeout = time.Duration(*hbms) * time.Millisecond
		}
		if _, err := distnet.RunNode(cfg); err != nil {
			logger.Fatalf("node: %v", err)
		}
		return
	}

	spec := distnet.RunSpec{
		App: "heat", Procs: *procs, MaxIter: *iters, FW: *fw, Theta: *theta,
		// Two grid rows per rank keeps every rank a real participant with
		// boundary traffic both ways at any P; the floor keeps small-P runs
		// from degenerating into trivial strips.
		Rows: max(2*(*procs), 64), Cols: 32,
		Wire: distnet.WireSpec{Delta: *delta, NoBatch: *nobatch},
		Job:  "soak",
	}
	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}

	if *jobs > 0 {
		runSchedSoak(logger, self, *pool, *jobs, *iters, *timeout, *out)
		return
	}

	if *kill > 0 {
		// Crash tolerance is judged against the fault-free answer, so a kill
		// run needs checkpoints to restore from and a deadline so survivors
		// bridge the outage on speculation instead of blocking.
		spec.CheckpointEvery = *ckpt
		spec.Deadline = *deadline
		spec.MaxCrashOverrun = 8
		runKillSoak(logger, self, spec, *timeout, *chaos, *jdir, *jmax, *kill, *killSeed)
		return
	}

	run, err := runFleet(logger, self, spec, *timeout, *chaos, *jdir, *jmax, nil)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	reports, fleet := run.reports, run.fleet

	// Every rank must have run the full schedule: a node that silently
	// stalled or shed iterations voids the soak.
	failed := false
	for _, r := range reports {
		if r.Iters != spec.MaxIter {
			logger.Printf("FAIL: rank %d ran %d/%d iterations", r.Rank, r.Iters, spec.MaxIter)
			failed = true
		}
		if r.MsgsRecvd == 0 || r.FramesSent == 0 {
			logger.Printf("FAIL: rank %d reported no wire traffic (%d msgs in, %d frames out)",
				r.Rank, r.MsgsRecvd, r.FramesSent)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}

	var (
		totalMsgs, totalFrames int
		maxWall, p99Worst      float64
		p50s, allocs           []float64
	)
	for _, r := range reports {
		totalMsgs += r.MsgsRecvd
		totalFrames += r.FramesSent
		maxWall = max(maxWall, r.WallSec)
		p99Worst = max(p99Worst, r.LatP99Sec)
		p50s = append(p50s, r.LatP50Sec)
		allocs = append(allocs, r.AllocsPerMsg)
	}
	sort.Float64s(p50s)
	p50Median := p50s[len(p50s)/2]
	allocMean := 0.0
	for _, a := range allocs {
		allocMean += a
	}
	allocMean /= float64(len(allocs))
	msgsPerFrame := float64(totalMsgs) / float64(totalFrames)

	fmt.Printf("soak P=%d iters=%d: %d msgs in %d frames (%.1f msgs/frame)\n",
		spec.Procs, spec.MaxIter, totalMsgs, totalFrames, msgsPerFrame)
	fmt.Printf("  rate      %.0f msgs/sec aggregate (slowest node %.3fs wall)\n",
		float64(totalMsgs)/maxWall, maxWall)
	fmt.Printf("  delivery  p50 %.0fµs (median rank)   p99 %.0fµs (worst rank)\n",
		p50Median*1e6, p99Worst*1e6)
	fmt.Printf("  allocs    %.1f per message (whole process, mean rank)\n", allocMean)

	// Fleet-level wire series from the aggregated metrics plane: mean batch
	// occupancy (msgs per flushed batch) and delta compression ratio across
	// every node's final snapshot — numbers no single process can report.
	batchMean, deltaMean := 0.0, 0.0
	tot, err := fleet.Totals()
	if err != nil {
		logger.Printf("fleet totals unavailable: %v", err)
	} else {
		if c := tot[distnet.MetricBatchOccupancy+"_count"]; c > 0 {
			batchMean = tot[distnet.MetricBatchOccupancy+"_sum"] / c
			fmt.Printf("  fleet     %.1f msgs/batch mean occupancy (%d nodes aggregated)\n",
				batchMean, len(fleet.Ranks()))
		}
		if c := tot[distnet.MetricDeltaRatio+"_count"]; c > 0 {
			deltaMean = tot[distnet.MetricDeltaRatio+"_sum"] / c
			fmt.Printf("  fleet     %.2f delta compression ratio mean (coded/raw bytes)\n", deltaMean)
		}
	}

	if *out == "" {
		return
	}
	suffix := fmt.Sprintf("/P%d", spec.Procs)
	series := []benchfmt.Result{
		// ns_per_op = wall nanoseconds per delivered message across the whole
		// mesh: the aggregate-throughput series (lower is faster).
		{Pkg: "specomp/cmd/specsoak", Name: "SoakMsgRate" + suffix,
			Iters: int64(totalMsgs), NsPerOp: 1e9 * maxWall / float64(totalMsgs)},
		{Pkg: "specomp/cmd/specsoak", Name: "SoakDeliveryP50" + suffix,
			Iters: int64(totalMsgs), NsPerOp: 1e9 * p50Median},
		{Pkg: "specomp/cmd/specsoak", Name: "SoakDeliveryP99" + suffix,
			Iters: int64(totalMsgs), NsPerOp: 1e9 * p99Worst},
		{Pkg: "specomp/cmd/specsoak", Name: "SoakAllocsPerMsg" + suffix,
			Iters: int64(totalMsgs), AllocsPerOp: int64(allocMean + 0.5)},
	}
	if batchMean > 0 {
		// ns_per_op holds the raw mean (msgs per flushed batch) — a synthetic
		// series under the shared schema, like the rate series above.
		series = append(series, benchfmt.Result{Pkg: "specomp/cmd/specsoak",
			Name: "SoakBatchOccupancy" + suffix, Iters: int64(totalFrames), NsPerOp: batchMean})
	}
	if deltaMean > 0 {
		series = append(series, benchfmt.Result{Pkg: "specomp/cmd/specsoak",
			Name: "SoakDeltaRatio" + suffix, Iters: int64(totalFrames), NsPerOp: deltaMean})
	}
	rep, err := benchfmt.Load(*out)
	if err != nil && !os.IsNotExist(err) {
		logger.Fatalf("%v", err)
	}
	rep.Merge(series...)
	if err := rep.Save(*out); err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Printf("merged %d Soak* series into %s", len(series), *out)
}

// convergeTol is the speculation tolerance every substrate's heat runs are
// judged by (the same bound the distnet and simulator tests use).
const convergeTol = 0.5

// runKillSoak runs the fault-free baseline, then the same fleet under a
// seeded SIGKILL schedule, and gates on the crashed run converging to the
// baseline. Exits the process non-zero on any failed assertion.
func runKillSoak(logger *log.Logger, self string, spec distnet.RunSpec, timeout time.Duration,
	chaos bool, jdir string, jmax int64, kills int, killSeed int64) {

	logger.Printf("kill soak: fault-free baseline first (P=%d, %d iters)", spec.Procs, spec.MaxIter)
	base, err := runFleet(logger, self, spec, timeout, chaos, jdir, jmax, nil)
	if err != nil {
		logger.Fatalf("baseline run: %v", err)
	}
	baseField, err := distnet.AssembleHeat(spec, base.reports)
	if err != nil {
		logger.Fatalf("baseline run: %v", err)
	}
	baseWall := 0.0
	for _, r := range base.reports {
		baseWall = max(baseWall, r.WallSec)
	}

	// The schedule spreads the kills over the meat of the run, scaled to the
	// measured baseline wall time; the floor keeps a kill from landing while
	// the mesh is still assembling. The crashed run only ever takes longer
	// than the baseline, so the window stays mid-run.
	from := max(0.15*baseWall, 0.5)
	until := max(0.65*baseWall, from+0.5)
	sched := faults.Chaos(killSeed, spec.Procs, kills, from, until, 0.2, 0.5)
	for _, ev := range sched {
		logger.Printf("kill schedule: slot %d at +%.2fs", ev.Proc, ev.At)
	}

	logger.Printf("kill soak: crash run under supervision (%d scheduled SIGKILLs, seed %d)", len(sched), killSeed)
	crash, err := runFleet(logger, self, spec, timeout, chaos, jdir, jmax, sched)
	if err != nil {
		logger.Fatalf("crash run did not survive the kill schedule: %v", err)
	}
	crashField, err := distnet.AssembleHeat(spec, crash.reports)
	if err != nil {
		logger.Fatalf("crash run: %v", err)
	}

	revived := 0
	for _, r := range crash.reports {
		if r.Epoch > 0 {
			revived++
		}
	}
	fmt.Printf("kill soak P=%d iters=%d: %d SIGKILLs, %d respawns, %d ranks vacated, %d rejoined, %d revived results\n",
		spec.Procs, spec.MaxIter, len(sched), crash.respawns, crash.stats.Vacated, crash.stats.Rejoins, revived)

	failed := false
	if crash.respawns < len(sched) {
		// A kill that fired after a node's clean exit triggers no respawn;
		// every kill that hit a live node must have.
		logger.Printf("note: %d respawns for %d scheduled kills (some kills landed after node completion)",
			crash.respawns, len(sched))
	}
	if crash.stats.Rejoins < crash.stats.Vacated {
		logger.Printf("FAIL: %d vacated ranks but only %d rejoins", crash.stats.Vacated, crash.stats.Rejoins)
		failed = true
	}
	for _, r := range crash.reports {
		if r.Iters != spec.MaxIter {
			logger.Printf("FAIL: rank %d ran %d/%d iterations", r.Rank, r.Iters, spec.MaxIter)
			failed = true
		}
	}

	// The gate: the crashed fleet lands on the fault-free answer.
	serial := heat.DefaultGrid(spec.Rows, spec.Cols).SerialRun(spec.MaxIter)
	dBase := heat.MaxDiff(crashField, baseField)
	dSerial := heat.MaxDiff(crashField, serial)
	fmt.Printf("  convergence  max|Δ| vs fault-free baseline %.4g, vs serial reference %.4g (tolerance %g)\n",
		dBase, dSerial, convergeTol)
	if dBase > convergeTol {
		logger.Printf("FAIL: crashed run deviates %g from the fault-free baseline", dBase)
		failed = true
	}
	if dSerial > convergeTol {
		logger.Printf("FAIL: crashed run deviates %g from the serial reference", dSerial)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	logger.Printf("kill soak passed: crash-tolerant run converged on the fault-free baseline")
}
