// Command specsoak soaks the distnet wire plane at paper-exceeding scale:
// one coordinator plus P node processes (default 64) on 127.0.0.1, each a
// real OS process re-executed from this binary, optionally under chaos
// (loss-free duplicates and sender-side delay spikes). It records the
// throughput measures the batching work is judged by — aggregate message
// rate, delivery-latency percentiles, and whole-process allocations per
// message — as Soak* series in the repo's benchmark baseline.
//
// Usage:
//
//	specsoak [-procs 64] [-iters 150] [-chaos] [-delta] [-nobatch]
//	         [-journal-dir DIR] [-o BENCH_core.json] [-timeout 5m]
//
// With -o, the soak series are merged into the existing report (other
// series are kept); without it the summary only prints. The coordinator
// aggregates every node's metrics snapshots (the fleet plane), so the soak
// also records fleet-level wire series — mean batch occupancy and delta
// compression ratio — that no single process can see. -journal-dir makes
// every node stream its run journal to a size-capped JSONL file there.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"time"

	"specomp/internal/benchfmt"
	"specomp/internal/distnet"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
)

// chaosModel is the soak's fault stack: loss-free (drops would only shift
// work to the engine's repair path; the soak targets the wire plane), but
// duplicate-heavy and spiky enough that batches ship under reordering
// pressure the whole run.
func chaosModel() netmodel.Model {
	return faults.Duplicate{
		Prob: 0.15,
		Inner: faults.DelaySpikes{
			Prob: 0.25, ExtraMin: 0.0005, ExtraMax: 0.003,
			Inner: netmodel.Fixed{D: 0.0001},
		},
	}
}

func main() {
	var (
		procs   = flag.Int("procs", 64, "number of node processes")
		iters   = flag.Int("iters", 150, "iterations per node")
		fw      = flag.Int("fw", 2, "forward speculation window")
		theta   = flag.Float64("theta", 1e-3, "speculation acceptance threshold θ")
		chaos   = flag.Bool("chaos", false, "inject duplicates and delay spikes on every node's send path")
		delta   = flag.Bool("delta", false, "enable the delta codec on batch frames")
		nobatch = flag.Bool("nobatch", false, "disable frame batching (per-message baseline)")
		out     = flag.String("o", "", "merge Soak* series into this benchfmt report (e.g. BENCH_core.json)")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall run timeout")
		jdir    = flag.String("journal-dir", "", "stream each node's run journal to node-R.jsonl under this directory")
		jmax    = flag.Int64("journal-max", 64<<20, "per-node journal size cap in bytes before rotation")

		// Node mode, used internally to re-execute this binary as one rank.
		join = flag.String("join", "", "internal: run as a node against this coordinator")
		seed = flag.Int64("seed", 0, "internal: chaos seed for this node (0 = no chaos)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "specsoak ", log.Ltime|log.Lmicroseconds)

	if *join != "" {
		cfg := distnet.NodeConfig{Coord: *join, JournalDir: *jdir, JournalMaxBytes: *jmax}
		if *seed != 0 {
			cfg.Faults = chaosModel()
			cfg.FaultSeed = *seed
		}
		if _, err := distnet.RunNode(cfg); err != nil {
			logger.Fatalf("node: %v", err)
		}
		return
	}

	spec := distnet.RunSpec{
		App: "heat", Procs: *procs, MaxIter: *iters, FW: *fw, Theta: *theta,
		// Two grid rows per rank keeps every rank a real participant with
		// boundary traffic both ways at any P; the floor keeps small-P runs
		// from degenerating into trivial strips.
		Rows: max(2*(*procs), 64), Cols: 32,
		Wire: distnet.WireSpec{Delta: *delta, NoBatch: *nobatch},
		Job:  "soak",
	}
	fleet := distnet.NewFleetObs("soak")
	coord, err := distnet.NewCoordinator(distnet.CoordConfig{Spec: spec, Timeout: *timeout, Fleet: fleet})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	spec = coord.Spec()
	logger.Printf("soaking %d processes × %d iters (chaos=%v delta=%v nobatch=%v) via %s",
		spec.Procs, spec.MaxIter, *chaos, *delta, *nobatch, coord.Addr())

	self, err := os.Executable()
	if err != nil {
		self = os.Args[0]
	}
	nodes := make([]*exec.Cmd, 0, spec.Procs)
	for i := 0; i < spec.Procs; i++ {
		args := []string{"-join", coord.Addr()}
		if *chaos {
			args = append(args, "-seed", strconv.Itoa(1000+i))
		}
		if *jdir != "" {
			args = append(args, "-journal-dir", *jdir, "-journal-max", strconv.FormatInt(*jmax, 10))
		}
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			logger.Fatalf("spawning node %d: %v", i, err)
		}
		nodes = append(nodes, cmd)
	}

	reports, err := coord.Wait()
	for _, cmd := range nodes {
		_ = cmd.Wait()
	}
	if err != nil {
		logger.Fatalf("%v", err)
	}

	// Every rank must have run the full schedule: a node that silently
	// stalled or shed iterations voids the soak.
	failed := false
	for _, r := range reports {
		if r.Iters != spec.MaxIter {
			logger.Printf("FAIL: rank %d ran %d/%d iterations", r.Rank, r.Iters, spec.MaxIter)
			failed = true
		}
		if r.MsgsRecvd == 0 || r.FramesSent == 0 {
			logger.Printf("FAIL: rank %d reported no wire traffic (%d msgs in, %d frames out)",
				r.Rank, r.MsgsRecvd, r.FramesSent)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}

	var (
		totalMsgs, totalFrames int
		maxWall, p99Worst      float64
		p50s, allocs           []float64
	)
	for _, r := range reports {
		totalMsgs += r.MsgsRecvd
		totalFrames += r.FramesSent
		maxWall = max(maxWall, r.WallSec)
		p99Worst = max(p99Worst, r.LatP99Sec)
		p50s = append(p50s, r.LatP50Sec)
		allocs = append(allocs, r.AllocsPerMsg)
	}
	sort.Float64s(p50s)
	p50Median := p50s[len(p50s)/2]
	allocMean := 0.0
	for _, a := range allocs {
		allocMean += a
	}
	allocMean /= float64(len(allocs))
	msgsPerFrame := float64(totalMsgs) / float64(totalFrames)

	fmt.Printf("soak P=%d iters=%d: %d msgs in %d frames (%.1f msgs/frame)\n",
		spec.Procs, spec.MaxIter, totalMsgs, totalFrames, msgsPerFrame)
	fmt.Printf("  rate      %.0f msgs/sec aggregate (slowest node %.3fs wall)\n",
		float64(totalMsgs)/maxWall, maxWall)
	fmt.Printf("  delivery  p50 %.0fµs (median rank)   p99 %.0fµs (worst rank)\n",
		p50Median*1e6, p99Worst*1e6)
	fmt.Printf("  allocs    %.1f per message (whole process, mean rank)\n", allocMean)

	// Fleet-level wire series from the aggregated metrics plane: mean batch
	// occupancy (msgs per flushed batch) and delta compression ratio across
	// every node's final snapshot — numbers no single process can report.
	batchMean, deltaMean := 0.0, 0.0
	tot, err := fleet.Totals()
	if err != nil {
		logger.Printf("fleet totals unavailable: %v", err)
	} else {
		if c := tot[distnet.MetricBatchOccupancy+"_count"]; c > 0 {
			batchMean = tot[distnet.MetricBatchOccupancy+"_sum"] / c
			fmt.Printf("  fleet     %.1f msgs/batch mean occupancy (%d nodes aggregated)\n",
				batchMean, len(fleet.Ranks()))
		}
		if c := tot[distnet.MetricDeltaRatio+"_count"]; c > 0 {
			deltaMean = tot[distnet.MetricDeltaRatio+"_sum"] / c
			fmt.Printf("  fleet     %.2f delta compression ratio mean (coded/raw bytes)\n", deltaMean)
		}
	}

	if *out == "" {
		return
	}
	suffix := fmt.Sprintf("/P%d", spec.Procs)
	series := []benchfmt.Result{
		// ns_per_op = wall nanoseconds per delivered message across the whole
		// mesh: the aggregate-throughput series (lower is faster).
		{Pkg: "specomp/cmd/specsoak", Name: "SoakMsgRate" + suffix,
			Iters: int64(totalMsgs), NsPerOp: 1e9 * maxWall / float64(totalMsgs)},
		{Pkg: "specomp/cmd/specsoak", Name: "SoakDeliveryP50" + suffix,
			Iters: int64(totalMsgs), NsPerOp: 1e9 * p50Median},
		{Pkg: "specomp/cmd/specsoak", Name: "SoakDeliveryP99" + suffix,
			Iters: int64(totalMsgs), NsPerOp: 1e9 * p99Worst},
		{Pkg: "specomp/cmd/specsoak", Name: "SoakAllocsPerMsg" + suffix,
			Iters: int64(totalMsgs), AllocsPerOp: int64(allocMean + 0.5)},
	}
	if batchMean > 0 {
		// ns_per_op holds the raw mean (msgs per flushed batch) — a synthetic
		// series under the shared schema, like the rate series above.
		series = append(series, benchfmt.Result{Pkg: "specomp/cmd/specsoak",
			Name: "SoakBatchOccupancy" + suffix, Iters: int64(totalFrames), NsPerOp: batchMean})
	}
	if deltaMean > 0 {
		series = append(series, benchfmt.Result{Pkg: "specomp/cmd/specsoak",
			Name: "SoakDeltaRatio" + suffix, Iters: int64(totalFrames), NsPerOp: deltaMean})
	}
	rep, err := benchfmt.Load(*out)
	if err != nil && !os.IsNotExist(err) {
		logger.Fatalf("%v", err)
	}
	rep.Merge(series...)
	if err := rep.Save(*out); err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Printf("merged %d Soak* series into %s", len(series), *out)
}
