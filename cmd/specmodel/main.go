// Command specmodel evaluates the §4 empirical performance model for a
// configurable system and prints speedup tables with and without
// speculation, including the forward-window and stochastic-communication
// extensions.
//
// Usage:
//
//	specmodel [-n 1000] [-procs 16] [-ratio 10] [-k 0.02]
//	          [-fspec 0.00017] [-fcheck 0.00086] [-commscale 1.0]
//	          [-fw 3] [-jitter 0.3]
//
// fspec and fcheck are fractions of f_comp per variable; commscale scales
// the baseline t_comm(p) (1.0 = the paper's t_comm(16) = t_comp(16)).
package main

import (
	"flag"
	"fmt"

	"specomp/internal/perfmodel"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "number of variables")
		procs     = flag.Int("procs", 16, "number of processors")
		ratio     = flag.Float64("ratio", 10, "capacity ratio M_1/M_p")
		k         = flag.Float64("k", 0.02, "recomputation fraction")
		fspec     = flag.Float64("fspec", 12.0/70000, "f_spec as a fraction of f_comp")
		fcheck    = flag.Float64("fcheck", 24.0/70000, "f_check as a fraction of f_comp")
		commscale = flag.Float64("commscale", 1.0, "t_comm scale factor")
		fw        = flag.Int("fw", 3, "max forward window for the FW table")
		jitter    = flag.Float64("jitter", 0.3, "communication jitter fraction for the stochastic estimate")
	)
	flag.Parse()

	caps := perfmodel.LinearCaps(*procs, 10, *ratio)
	base := perfmodel.LinearTComm(*n, 1, caps, *procs)
	m := perfmodel.Params{
		N: *n, FComp: 1, FSpec: *fspec, FCheck: *fcheck,
		Caps: caps,
		TComm: func(p int) float64 {
			return *commscale * base(p)
		},
		K: *k,
	}
	if err := m.Validate(); err != nil {
		fmt.Println("invalid parameters:", err)
		return
	}

	fmt.Printf("§4 model: N=%d, p<=%d, M1/Mp=%.1f, k=%.1f%%, f_spec=%g·f_comp, f_check=%g·f_comp\n\n",
		*n, *procs, *ratio, *k*100, *fspec, *fcheck)
	fmt.Printf("%-4s %10s %10s %10s %10s %12s\n", "p", "no-spec", "spec", "max", "gain%", "masked-frac")
	for p := 1; p <= *procs; p++ {
		sn := m.SpeedupNoSpec(p)
		ss := m.SpeedupSpec(p)
		fmt.Printf("%-4d %10.3f %10.3f %10.3f %10.1f %12.3f\n",
			p, sn, ss, m.SpeedupMax(p), 100*(ss/sn-1), m.MaskedFraction(p, 1))
	}

	fmt.Printf("\nforward-window extension at p=%d:\n", *procs)
	fmt.Printf("%-4s %12s %12s\n", "FW", "speedup", "masked-frac")
	for w := 1; w <= *fw; w++ {
		fmt.Printf("%-4d %12.3f %12.3f\n",
			w, m.SpeedupSpecFW(*procs, w), m.MaskedFraction(*procs, w))
	}

	if *jitter > 0 {
		det := m.SpecTime(*procs)
		st := m.SpecTimeStochastic(*procs, *jitter, 5000, 1)
		fmt.Printf("\nstochastic communication (±%.0f%% jitter): per-iteration time %.4f vs deterministic %.4f (+%.1f%%)\n",
			*jitter*100, st, det, 100*(st/det-1))
	}
}
