// Command specsubmit is the client for a speccoord -serve scheduler: it
// submits runs as jobs, watches them, and inspects the queue.
//
// Usage:
//
//	specsubmit -server http://127.0.0.1:7077 \
//	    [-app heat|jacobi|pipeline] [-procs P] [-iters N] [-fw W] [-theta θ]
//	    [-rows R] [-cols C] [-n N] [-tol T] [-width W] [-seed S] [-exact]
//	    [-checkpoint K] [-priority P] [-tenant T] [-name NAME] [-wait]
//
//	specsubmit -server URL -status job-0003        one job's status
//	specsubmit -server URL -watch  job-0003        poll until terminal
//	specsubmit -server URL -cancel job-0003        cancel (running or queued)
//	specsubmit -server URL -queue                  queue + pool occupancy
//	specsubmit -server URL -list                   every job the service knows
//
// The default operation is submit; -wait makes it block until the job
// reaches a terminal state and exit non-zero unless that state is "done".
// A preempted job is not terminal — it is queued work with custody — so
// -wait rides through preemptions and reports the eventual outcome.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"specomp/internal/distnet"
	"specomp/internal/sched"
)

func main() {
	var (
		server = flag.String("server", "http://127.0.0.1:7077", "scheduler base URL (speccoord -serve)")

		status = flag.String("status", "", "print this job's status and exit")
		watch  = flag.String("watch", "", "poll this job until it reaches a terminal state")
		cancel = flag.String("cancel", "", "cancel this job")
		queue  = flag.Bool("queue", false, "print the queue and pool occupancy")
		list   = flag.Bool("list", false, "print every job the scheduler knows")
		poll   = flag.Duration("poll", 500*time.Millisecond, "poll period for -watch/-wait")

		name     = flag.String("name", "", "human label for the job (default: the app name)")
		tenant   = flag.String("tenant", "", "tenant the job is accounted to (default \"default\")")
		priority = flag.Int("priority", 0, "queue priority; higher runs first and may preempt lower")
		wait     = flag.Bool("wait", false, "after submitting, block until the job finishes")

		app   = flag.String("app", "heat", "application: heat, jacobi or pipeline")
		procs = flag.Int("procs", 4, "ranks the job claims from the pool")
		iters = flag.Int("iters", 200, "maximum iterations")
		fw    = flag.Int("fw", 2, "forward speculation window")
		bw    = flag.Int("bw", 0, "backward window (0 = predictor default)")
		theta = flag.Float64("theta", 1e-3, "speculation acceptance threshold θ")
		rows  = flag.Int("rows", 48, "heat grid rows")
		cols  = flag.Int("cols", 32, "heat grid columns")
		n     = flag.Int("n", 64, "jacobi system size")
		tol   = flag.Float64("tol", 0, "jacobi convergence tolerance (0 = run all iterations)")
		width = flag.Int("width", 16, "pipeline per-stage row width")
		exact = flag.Bool("exact", false, "pipeline: zero every stage tolerance")
		seed  = flag.Int64("seed", 1, "problem seed (jacobi, pipeline)")
		ckpt  = flag.Int("checkpoint", 0, "checkpoint every K iterations (0 = scheduler default; preemption needs checkpoints)")
	)
	flag.Parse()
	c := client{base: *server}

	switch {
	case *status != "":
		var st sched.JobStatus
		c.call("GET", "/jobs/"+*status, nil, &st)
		printJob(st)
	case *watch != "":
		st := c.waitTerminal(*watch, *poll)
		printJob(st)
		if st.State != sched.StateDone {
			os.Exit(1)
		}
	case *cancel != "":
		var st sched.JobStatus
		c.call("DELETE", "/jobs/"+*cancel, nil, &st)
		printJob(st)
	case *queue:
		var q sched.QueueStatus
		c.call("GET", "/queue", nil, &q)
		printQueue(q)
	case *list:
		var jobs []sched.JobStatus
		c.call("GET", "/jobs", nil, &jobs)
		for _, st := range jobs {
			printJob(st)
		}
	default:
		req := sched.JobSpec{
			Name: *name, Tenant: *tenant, Priority: *priority,
			Spec: distnet.RunSpec{
				App: *app, Procs: *procs, MaxIter: *iters, FW: *fw, BW: *bw,
				Theta: *theta, Rows: *rows, Cols: *cols, N: *n, Tol: *tol,
				Width: *width, Exact: *exact, Seed: *seed, CheckpointEvery: *ckpt,
			},
		}
		var st sched.JobStatus
		c.call("POST", "/jobs", req, &st)
		printJob(st)
		if *wait {
			st = c.waitTerminal(st.ID, *poll)
			printJob(st)
			if st.State != sched.StateDone {
				os.Exit(1)
			}
		}
	}
}

type client struct{ base string }

// call performs one API request, decodes the response into out, and exits
// with the server's error message on a non-2xx status.
func (c client) call(method, path string, body, out any) {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			fatal("%v", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		fatal("%v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal("%v", err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal("%v", err)
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(blob, &eb) == nil && eb.Error != "" {
			fatal("%s %s: %s (%s)", method, path, eb.Error, resp.Status)
		}
		fatal("%s %s: %s", method, path, resp.Status)
	}
	if out != nil {
		if err := json.Unmarshal(blob, out); err != nil {
			fatal("decoding %s %s response: %v", method, path, err)
		}
	}
}

// waitTerminal polls one job until it leaves the scheduler's active states.
func (c client) waitTerminal(id string, poll time.Duration) sched.JobStatus {
	last := sched.JobState("")
	for {
		var st sched.JobStatus
		c.call("GET", "/jobs/"+id, nil, &st)
		if st.State != last {
			fmt.Fprintf(os.Stderr, "specsubmit: %s is %s\n", id, st.State)
			last = st.State
		}
		switch st.State {
		case sched.StateDone, sched.StateFailed, sched.StateCanceled:
			return st
		}
		time.Sleep(poll)
	}
}

func printJob(st sched.JobStatus) {
	line := fmt.Sprintf("%-9s %-10s %-12s tenant=%s priority=%d procs=%d wait=%.3fs",
		st.ID, st.State, st.Name, st.Tenant, st.Priority, st.Procs, st.WaitSec)
	if st.Preemptions > 0 {
		line += fmt.Sprintf(" preemptions=%d", st.Preemptions)
	}
	if st.Restores > 0 {
		line += fmt.Sprintf(" restores=%d", st.Restores)
	}
	if st.Error != "" {
		line += " error=" + st.Error
	}
	fmt.Println(line)
	for _, r := range st.Reports {
		fmt.Printf("  rank %d: converged=%v iters=%d specs=%d/%d wall=%.3fs\n",
			r.Rank, r.Converged, r.Iters, r.SpecsMade-r.SpecsBad, r.SpecsMade, r.WallSec)
	}
}

func printQueue(q sched.QueueStatus) {
	fmt.Printf("pool: %d/%d ranks free", q.FreeRanks, q.TotalRanks)
	if q.Draining {
		fmt.Printf(" (draining)")
	}
	fmt.Println()
	fmt.Printf("running: %d\n", len(q.Running))
	for _, st := range q.Running {
		printJob(st)
	}
	fmt.Printf("pending: %d\n", len(q.Pending))
	for _, st := range q.Pending {
		printJob(st)
	}
	for tenant, u := range q.Tenants {
		fmt.Printf("tenant %s: %d jobs, %d ranks", tenant, u.Jobs, u.Ranks)
		if u.MaxJobs > 0 || u.MaxRanks > 0 {
			fmt.Printf(" (quota: %d jobs, %d ranks)", u.MaxJobs, u.MaxRanks)
		}
		fmt.Println()
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "specsubmit: "+format+"\n", args...)
	os.Exit(1)
}
