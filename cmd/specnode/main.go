// Command specnode runs one processor of a distributed speculative run: it
// joins the coordinator, receives its rank and run configuration, builds
// the peer mesh over TCP, drives the engine, and reports its result back.
//
// Usage:
//
//	specnode -coord host:port [-listen addr] [-http addr] [-epoch n]
//
// Start one specnode per processor (on one machine or many) against a
// speccoord; ranks are assigned in arrival order. -http serves live
// /metrics and /journal for this node during the run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"specomp/internal/distnet"
)

func main() {
	var (
		coord  = flag.String("coord", "", "coordinator address (required)")
		listen = flag.String("listen", "127.0.0.1:0", "peer listen address")
		http   = flag.String("http", "", "serve /metrics and /journal on this address (e.g. 127.0.0.1:0)")
		epoch  = flag.Int("epoch", 0, "incarnation epoch (0 on first launch; bump when relaunching a crashed node)")
	)
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "specnode: -coord is required")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "specnode ", log.Ltime|log.Lmicroseconds)
	res, err := distnet.RunNode(distnet.NodeConfig{
		Coord:    *coord,
		Listen:   *listen,
		HTTPAddr: *http,
		Epoch:    *epoch,
		Logf:     func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Printf("rank %d finished: converged=%v iters=%d specs=%d bad=%d repairs=%d wall=%v",
		res.Rank, res.Result.Converged, res.Result.Stats.Iters,
		res.Result.Stats.SpecsMade, res.Result.Stats.SpecsBad,
		res.Result.Stats.Repairs, res.Wall)
}
