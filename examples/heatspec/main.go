// Heat-diffusion example: a 2-D plate with a hot top edge and cold bottom
// edge, decomposed into strips over four simulated workstations. Shows that
// ghost-strip speculation masks network latency while the field still
// converges to the analytic steady state.
package main

import (
	"fmt"
	"log"

	"specomp/internal/apps/heat"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func run(g heat.Grid, fw, iters int) (float64, [][]float64) {
	const procs = 4
	machines := cluster.UniformMachines(procs, 50_000)
	caps := make([]float64, procs)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(g.Rows, caps)
	blocks := make([][2]int, procs)
	lo := 0
	for i, c := range counts {
		blocks[i] = [2]int{lo, lo + c}
		lo += c
	}
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.02}},
		core.Config{FW: fw, MaxIter: iters},
		func(p *cluster.Proc) core.App { return heat.NewApp(g, blocks, p.ID(), 1e-3) },
	)
	if err != nil {
		log.Fatal(err)
	}
	field := make([][]float64, g.Rows)
	for k, res := range results {
		blo, bhi := blocks[k][0], blocks[k][1]
		for r := blo; r < bhi; r++ {
			field[r] = res.Final[(r-blo)*g.Cols : (r-blo+1)*g.Cols]
		}
	}
	return core.TotalTime(results), field
}

func main() {
	g := heat.DefaultGrid(32, 16)
	const iters = 3000

	tBlock, _ := run(g, 0, iters)
	tSpec, field := run(g, 1, iters)

	fmt.Printf("2-D heat diffusion, %dx%d grid, %d iterations on 4 workstations\n", g.Rows, g.Cols, iters)
	fmt.Printf("blocking:    %8.1f s virtual time\n", tBlock)
	fmt.Printf("speculative: %8.1f s virtual time (%.1f%% faster)\n\n",
		tSpec, 100*(tBlock-tSpec)/tBlock)

	dev := heat.MaxDiff(field, g.SteadyState())
	fmt.Printf("max deviation from analytic steady state: %.3f degrees\n\n", dev)

	fmt.Println("temperature profile down the plate (column 8):")
	for r := 0; r < g.Rows; r += 4 {
		bar := int(field[r][8] / 2)
		fmt.Printf("row %2d %6.1f° %s\n", r, field[r][8], bars(bar))
	}
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
