// Jacobi example: solve a dense diagonally dominant linear system on a
// heterogeneous simulated cluster, comparing the blocking and speculative
// engines. Because Jacobi is a contraction, speculation's bounded errors
// wash out and both runs converge to the same solution.
package main

import (
	"fmt"
	"log"

	"specomp/internal/apps/jacobi"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func main() {
	const (
		n     = 120
		procs = 6
		iters = 40
	)
	prob := jacobi.NewDiagonallyDominant(n, 7)
	machines := cluster.LinearMachines(procs, 20_000, 5)
	caps := make([]float64, procs)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	blocks := jacobi.BlocksFromCounts(partition.Proportional(n, caps))

	run := func(fw int) (float64, []float64) {
		results, err := core.RunCluster(
			cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.4}},
			core.Config{FW: fw, MaxIter: iters},
			func(p *cluster.Proc) core.App { return jacobi.NewApp(prob, blocks, p.ID(), 1e-4) },
		)
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, n)
		for k, r := range results {
			copy(x[blocks[k][0]:blocks[k][1]], r.Final)
		}
		return core.TotalTime(results), x
	}

	fmt.Printf("Jacobi: %d unknowns, %d workstations (capacities 5:1), %d sweeps\n\n", n, procs, iters)
	tBlock, xBlock := run(0)
	tSpec, xSpec := run(1)
	fmt.Printf("%-12s %10s %14s %14s\n", "mode", "time(s)", "residual", "error vs x*")
	fmt.Printf("%-12s %10.2f %14.3e %14.3e\n", "blocking", tBlock, prob.Residual(xBlock), prob.ErrorNorm(xBlock))
	fmt.Printf("%-12s %10.2f %14.3e %14.3e\n", "speculative", tSpec, prob.Residual(xSpec), prob.ErrorNorm(xSpec))
	fmt.Printf("\nspeculation saved %.1f%% of virtual time\n", 100*(tBlock-tSpec)/tBlock)
}
