// PageRank example: an honest demonstration of the BOUNDARY of speculative
// computation. The paper warns (§5): "unless variables can be predicted
// reasonably well, there is no gain with this method" — and PageRank under
// power iteration is exactly such a workload. Each vertex's rank trajectory
// mixes many spectral modes of comparable size, so history extrapolation
// errs on the order of the per-sweep change itself (measured ≈1.5× for
// linear extrapolation).
//
// The example runs three modes on the same problem and reports the outcome:
//
//   - blocking (FW=0): the classical algorithm;
//   - speculation with a strict progress-relative check (θ=0.3): almost
//     every check fails, every sweep pays a repair — slower, values exact;
//   - bounded staleness (zero-order speculation, θ=1.1): checks pass but
//     stale-by-one data slows the contraction, needing ~3x the sweeps.
//
// Speculation loses in both configurations — and the error-checking
// machinery is precisely what tells you so while keeping the answer
// correct. Compare examples/nbody, where speculation wins by 25%+.
package main

import (
	"fmt"
	"log"

	"specomp/internal/apps/pagerank"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func main() {
	const (
		vertices = 300
		procs    = 6
		maxIter  = 400
	)
	g := pagerank.NewRandomGraph(vertices, 5, 42)
	g.Dangle(15)
	prob := pagerank.NewProblem(g, 0.85)

	machines := cluster.LinearMachines(procs, 10_000, 4)
	caps := make([]float64, procs)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	blocks := pagerank.BlocksFromCounts(partition.Proportional(vertices, caps))

	run := func(fw int, theta, alpha float64) (float64, int, []float64, core.AggregateStats) {
		results, err := core.RunCluster(
			cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.1}},
			core.Config{FW: fw, MaxIter: maxIter},
			func(p *cluster.Proc) core.App {
				app := pagerank.NewApp(prob, blocks, p.ID(), theta)
				app.SpecAlpha = alpha
				app.Tol = 1e-7
				return app
			})
		if err != nil {
			log.Fatal(err)
		}
		rank := make([]float64, vertices)
		for k, r := range results {
			copy(rank[blocks[k][0]:blocks[k][1]], r.Final)
		}
		return core.TotalTime(results), results[0].Stats.Iters, rank, core.Aggregate(results)
	}

	exact := prob.SerialSolve(300)
	fmt.Printf("PageRank: %d vertices (%d dangling), %d workstations — a workload\n", vertices, 15, procs)
	fmt.Printf("where speculation does NOT pay (unpredictable per-vertex trends)\n\n")
	fmt.Printf("%-28s %9s %7s %12s %10s\n", "mode", "time(s)", "sweeps", "L1 vs exact", "bad-specs")

	tB, itB, rB, _ := run(0, 0.3, 1)
	fmt.Printf("%-28s %9.1f %7d %12.2e %10s\n", "blocking (FW=0)", tB, itB, pagerank.L1Diff(rB, exact), "-")

	tS, itS, rS, aggS := run(1, 0.3, 1)
	fmt.Printf("%-28s %9.1f %7d %12.2e %9d\n", "speculative, strict θ=0.3", tS, itS, pagerank.L1Diff(rS, exact), aggS.SpecsBad)

	tL, itL, rL, aggL := run(1, 1.1, 0)
	fmt.Printf("%-28s %9.1f %7d %12.2e %9d\n", "bounded staleness θ=1.1", tL, itL, pagerank.L1Diff(rL, exact), aggL.SpecsBad)

	fmt.Printf("\nrank mass: %.9f (should be 1)\n", pagerank.Sum(rL))
	fmt.Println("\ntakeaway: the checks caught the bad predictions (strict mode repairs")
	fmt.Println("every sweep; lazy mode converges slowly) — the answer stays correct,")
	fmt.Println("but masking buys nothing when values cannot be predicted (§5).")
}
