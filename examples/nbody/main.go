// N-body example: reproduce the paper's headline experiment at reduced
// scale — a rotating-disk galaxy of 240 particles on 8 simulated
// workstations — and show how the forward window trades communication time
// against speculation overhead.
package main

import (
	"fmt"
	"log"

	"specomp/internal/core"
	"specomp/internal/experiments"
	"specomp/internal/nbody"
)

func main() {
	cfg := experiments.QuickNBody()
	base := cfg.N
	cfg.N = 240
	cfg.Iters = 10
	cfg.IC = nbody.RotatingDisk
	// Rescale capacities for the larger N (compute grows as N²) and shrink
	// the timestep: disk orbits near the central mass move fast, and
	// velocity extrapolation needs Δt well below the orbital timescale.
	cfg.FastestOps *= float64(cfg.N*cfg.N) / float64(base*base)
	cfg.Dt = 0.012

	serial, err := cfg.SerialTime()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk galaxy: %d particles, %d workstations (capacities 10:1), %d steps\n",
		cfg.N, cfg.MaxProcs, cfg.Iters)
	fmt.Printf("fastest single workstation: %.1f s of virtual time\n\n", serial)
	fmt.Printf("%-4s %10s %10s %12s %12s %12s\n", "FW", "time(s)", "speedup", "comm/iter", "check/iter", "bad-specs")

	for _, fw := range []int{0, 1, 2, 3} {
		instr := &nbody.Instrument{}
		results, err := cfg.Run(cfg.MaxProcs, fw, cfg.Theta, instr)
		if err != nil {
			log.Fatal(err)
		}
		total := core.TotalTime(results)
		agg := core.Aggregate(results)
		it := float64(cfg.Iters)
		fmt.Printf("%-4d %10.2f %10.2f %12.3f %12.3f %11d\n",
			fw, total, serial/total, agg.MaxComm/it, agg.MaxCheck/it, agg.SpecsBad)
	}
	fmt.Printf("\nmax attainable speedup: %.2f\n", cfg.SumCaps(cfg.MaxProcs)/cfg.SumCaps(1))
}
