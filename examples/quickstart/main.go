// Quickstart: run a tiny synchronous iterative application on a simulated
// heterogeneous cluster, first blocking (the classical algorithm of the
// paper's Figure 1), then with speculative computation (Figure 3), and
// compare the virtual execution times.
//
// The application is a globally coupled map: each processor owns one
// variable x_j, updated as a blend of its own logistic step and the mean of
// everyone else's. It is the smallest possible member of the synchronous
// iterative class the paper targets.
package main

import (
	"fmt"
	"log"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
)

// app implements core.App for the coupled map.
type app struct {
	pid, p int
}

func (a *app) InitLocal() []float64 {
	return []float64{0.2 + 0.6*float64(a.pid)/float64(a.p)}
}

func (a *app) Compute(view [][]float64, t int) []float64 {
	// r = 2.8 gives smooth convergence to a fixed point — the "relatively
	// slow changing trend" regime where §3.2 says speculation excels.
	f := func(x float64) float64 { return 2.8 * x * (1 - x) }
	sum := 0.0
	for _, part := range view {
		sum += f(part[0])
	}
	mean := sum / float64(len(view))
	x := view[a.pid][0]
	return []float64{0.7*f(x) + 0.3*mean}
}

func (a *app) ComputeOps() float64 { return 2000 } // 2 s at 1000 ops/s

func (a *app) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(0.02, 1, pred, act) // 2% tolerance
}

func (a *app) RepairOps(r core.CheckResult) float64 { return 2000 }

func run(fw int) (float64, core.AggregateStats) {
	const procs = 4
	results, err := core.RunCluster(
		cluster.Config{
			Machines: cluster.UniformMachines(procs, 1000),
			Net:      netmodel.Fixed{D: 1.5}, // latency comparable to compute
		},
		core.Config{FW: fw, MaxIter: 20},
		func(p *cluster.Proc) core.App { return &app{pid: p.ID(), p: p.P()} },
	)
	if err != nil {
		log.Fatal(err)
	}
	return core.TotalTime(results), core.Aggregate(results)
}

func main() {
	tBlock, _ := run(0)
	tSpec, agg := run(1)
	fmt.Printf("blocking (FW=0):    %6.2f s of virtual time\n", tBlock)
	fmt.Printf("speculative (FW=1): %6.2f s of virtual time\n", tSpec)
	fmt.Printf("improvement:        %6.1f %%\n", 100*(tBlock-tSpec)/tBlock)
	fmt.Printf("speculations: %d made, %d failed checks, %d repairs\n",
		agg.SpecsMade, agg.SpecsBad, agg.Repairs)
}
