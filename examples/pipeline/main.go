// Pipeline example: a 3-stage streaming pipeline (source → filter →
// aggregate) built on the engine's dependency-graph support. Each stage
// runs on its own processor and depends only on the stage upstream of it,
// so the dependency graph is a chain instead of the all-to-all exchange of
// the other examples. The expensive source paces the pipeline; the cheap
// downstream stages speculate on the next upstream row (using the engine's
// predictors) to overlap the link latency, and repair — cascading the fix
// downstream — when a prediction misses the stage's tolerance.
//
// A feed-forward chain already pipelines under blocking execution (stage s
// works on tick t while stage s+1 works on tick t-1), so speculation can
// only trim the per-hop latency offsets, not the source-paced cadence: the
// end-to-end win is modest, but the stages' idle time waiting on upstream
// rows collapses. With zero tolerance at FW=1 every broadcast is validated
// or repaired before it is sent, so the speculative run matches
// pipeline.Serial, the lockstep reference, bit-exactly. (Cyclic dependency
// graphs — mutually coupled ranks, like internal/apps/stencilreduce or the
// other examples — pay the link latency every tick when blocking, which is
// where speculation's large per-tick gains come from; see `specbench -dag`.)
package main

import (
	"fmt"
	"log"
	"math"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/pipeline"
)

const (
	width = 16
	iters = 40
	delay = 0.3
	seed  = 42
)

func run(g *pipeline.Graph, fw int) (float64, []core.Result) {
	results, err := core.RunCluster(
		cluster.Config{
			Machines: cluster.UniformMachines(g.Stages(), 1000),
			Net:      netmodel.Fixed{D: delay},
			Seed:     1,
		},
		core.Config{FW: fw, MaxIter: iters},
		func(p *cluster.Proc) core.App { return g.App(p.ID()) },
	)
	if err != nil {
		log.Fatal(err)
	}
	return core.TotalTime(results), results
}

func commWait(results []core.Result) float64 {
	total := 0.0
	for _, r := range results {
		total += r.Stats.CommTime
	}
	return total
}

func main() {
	g := pipeline.ThreeStage(width, seed).SetUniformTol(0)
	want := g.Serial(iters)
	fmt.Printf("3-stage pipeline, width %d, %d ticks, %.1f s per-hop latency\n\n", width, iters, delay)

	tBlock, rBlock := run(g, 0)
	tSpec, results := run(g, 1)
	fmt.Printf("blocking (FW=0):    %6.2f s virtual time, %6.2f s idle on upstream rows\n",
		tBlock, commWait(rBlock))
	fmt.Printf("speculative (FW=1): %6.2f s virtual time, %6.2f s idle on upstream rows\n",
		tSpec, commWait(results))
	fmt.Printf("idle time hidden:   %6.1f %%\n\n", 100*(commWait(rBlock)-commWait(results))/commWait(rBlock))

	worst := 0.0
	for s, r := range results {
		for i, v := range r.Final {
			if d := math.Abs(v - want[s][i]); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("max |speculative - serial| over all stages: %g (bit-exact at FW=1, zero tolerance)\n\n", worst)
	for s, r := range results {
		fmt.Printf("stage %d (%-9s): %2d speculations, %2d repairs, %2d cascade redos\n",
			s, g.Stage(s).Name, r.Stats.SpecsMade, r.Stats.Repairs, r.Stats.CascadeRedos)
	}
	fmt.Printf("\nfinal aggregate row (mean, rms, max, L1): %.4f %.4f %.4f %.4f\n",
		results[2].Final[0], results[2].Final[1], results[2].Final[2], results[2].Final[3])
}
