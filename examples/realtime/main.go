// Realtime example: the same speculative-computation machinery running on
// REAL goroutines and channels with injected wall-clock message latency —
// no simulator involved. Four workers iterate a coupled map; speculation
// overlaps the (real) 10 ms link latency with (real) compute time.
package main

import (
	"fmt"
	"log"
	"time"

	"specomp/internal/core"
	"specomp/internal/realtime"
)

// app is a smooth coupled map (see examples/quickstart) with ~4 ms of real
// computation per iteration.
type app struct {
	pid, p int
}

func (a *app) InitLocal() []float64 {
	return []float64{0.3 + 0.4*float64(a.pid)/float64(a.p)}
}

func (a *app) Compute(view [][]float64, t int) []float64 {
	f := func(x float64) float64 { return 2.7 * x * (1 - x) }
	time.Sleep(4 * time.Millisecond) // stand-in for real numerical work
	sum := 0.0
	for _, part := range view {
		sum += f(part[0])
	}
	mean := sum / float64(len(view))
	x := view[a.pid][0]
	return []float64{0.8*f(x) + 0.2*mean}
}

func (a *app) ComputeOps() float64 { return 1 }

func (a *app) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(0.02, 1, pred, act)
}

func (a *app) RepairOps(r core.CheckResult) float64 { return 1 }

func main() {
	const (
		procs = 4
		iters = 50
		delay = 10 * time.Millisecond
	)
	run := func(fw int) (time.Duration, []realtime.Result) {
		results, err := realtime.Run(
			realtime.Config{Procs: procs, MaxIter: iters, FW: fw, Delay: delay},
			func(pid, p int) core.App { return &app{pid: pid, p: p} })
		if err != nil {
			log.Fatal(err)
		}
		worst := time.Duration(0)
		for _, r := range results {
			if r.Elapsed > worst {
				worst = r.Elapsed
			}
		}
		return worst, results
	}

	fmt.Printf("%d goroutines, %d iterations, %v injected link latency\n\n", procs, iters, delay)
	tBlock, _ := run(0)
	tSpec, results := run(1)
	fmt.Printf("blocking (FW=0):    %8.1f ms wall clock\n", float64(tBlock.Microseconds())/1000)
	fmt.Printf("speculative (FW=1): %8.1f ms wall clock (%.0f%% faster)\n\n",
		float64(tSpec.Microseconds())/1000, 100*float64(tBlock-tSpec)/float64(tBlock))
	made, bad := 0, 0
	for _, r := range results {
		made += r.SpecsMade
		bad += r.SpecsBad
	}
	fmt.Printf("speculations: %d made, %d rejected\n", made, bad)
	fmt.Printf("final values: ")
	for _, r := range results {
		fmt.Printf("%.6f ", r.Final[0])
	}
	fmt.Println()
}
