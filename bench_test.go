// Package specomp_test benchmarks regenerate every table and figure of the
// paper (at the scaled-down Quick configuration; use cmd/specbench for the
// full N=1000, p=16 runs) and measure the ablations called out in DESIGN.md.
//
// Each benchmark reports, in addition to wall-clock ns/op, the *virtual*
// simulated seconds of the run ("simsec") — the quantity the paper's tables
// are made of — and, where meaningful, the speculative-vs-blocking gain.
package specomp_test

import (
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/experiments"
	"specomp/internal/nbody"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
	"specomp/internal/perfmodel"
	"specomp/internal/predict"
	"specomp/internal/realtime"
)

// BenchmarkFigure2 regenerates the blocking vs speculation-good vs
// speculation-bad timelines (paper Figure 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		tot := rep.SeriesByName("totals")
		b.ReportMetric(tot.Y[0], "nospec-simsec")
		b.ReportMetric(tot.Y[1], "specgood-simsec")
		b.ReportMetric(tot.Y[2], "specbad-simsec")
	}
}

// BenchmarkFigure4 regenerates the transient-delay forward-window study
// (paper Figure 4).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		tot := rep.SeriesByName("total-time")
		b.ReportMetric(tot.Y[0], "fw0-simsec")
		b.ReportMetric(tot.Y[2], "fw2-simsec")
	}
}

// BenchmarkFigure5 evaluates the §4 model speedup curves (paper Figure 5).
func BenchmarkFigure5(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure5()
		s, n := rep.SeriesByName("spec"), rep.SeriesByName("no-spec")
		gain = s.Y[len(s.Y)-1] / n.Y[len(n.Y)-1]
	}
	b.ReportMetric(gain, "spec/nospec@16")
}

// BenchmarkFigure6 evaluates the recomputation-sensitivity curve (paper
// Figure 6).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure6()
		if len(rep.Series) != 2 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFigure8 regenerates the measured N-body speedup curves (paper
// Figure 8) at the Quick scale.
func BenchmarkFigure8(b *testing.B) {
	cfg := experiments.QuickNBody()
	var gain float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fw1 := rep.SeriesByName("FW=1")
		fw0 := rep.SeriesByName("FW=0")
		gain = fw1.Y[len(fw1.Y)-1] / fw0.Y[len(fw0.Y)-1]
	}
	b.ReportMetric(gain, "spec/nospec@maxp")
}

// BenchmarkTable2 regenerates the per-phase iteration breakdown (paper
// Table 2) at the Quick scale.
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.QuickNBody()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Total, "fw0-simsec/iter")
	b.ReportMetric(rows[1].Total, "fw1-simsec/iter")
	b.ReportMetric(rows[2].Total, "fw2-simsec/iter")
}

// BenchmarkTable3 regenerates the θ sensitivity study (paper Table 3) at the
// Quick scale.
func BenchmarkTable3(b *testing.B) {
	cfg := experiments.QuickNBody()
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].IncorrectPct, "incorrect%@0.01")
	b.ReportMetric(rows[2].MaxForceErr, "forceerr%@0.01")
}

// BenchmarkFigure9 regenerates the model-vs-measured overlay (paper
// Figure 9) at the Quick scale.
func BenchmarkFigure9(b *testing.B) {
	cfg := experiments.QuickNBody()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// nbodyOnce runs a single Quick N-body simulation and returns its virtual
// time, for the ablation benchmarks.
func nbodyOnce(b *testing.B, mutate func(*core.Config), appWrap func(core.App) core.App) float64 {
	b.Helper()
	cfg := experiments.QuickNBody()
	ms := cluster.LinearMachines(cfg.MaxProcs, cfg.FastestOps, cfg.CapRatio)
	caps := make([]float64, len(ms))
	for i, m := range ms {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(cfg.N, caps)
	blocks := nbody.SplitParticles(nbody.UniformSphere(cfg.N, cfg.Seed), counts)
	sim := nbody.DefaultSim()
	sim.Dt = cfg.Dt
	ecfg := core.Config{FW: 1, MaxIter: cfg.Iters}
	if mutate != nil {
		mutate(&ecfg)
	}
	results, err := core.RunCluster(
		cluster.Config{
			Machines: ms,
			Net: &netmodel.SharedBus{
				Overhead:     cfg.BusOverhead,
				BytesPerSec:  cfg.BusBandwidth,
				HostOverhead: cfg.HostOverhead,
			},
			Seed: cfg.Seed,
		},
		ecfg,
		func(p *cluster.Proc) core.App {
			var app core.App = nbody.NewApp(sim, blocks[p.ID()], cfg.N, p.ID(), cfg.Theta, nil)
			if appWrap != nil {
				app = appWrap(app)
			}
			return app
		})
	if err != nil {
		b.Fatal(err)
	}
	return core.TotalTime(results)
}

// BenchmarkAblationHoldSends compares speculative sends (default) against
// the HoldSends mode that only transmits validated values (DESIGN.md §5).
func BenchmarkAblationHoldSends(b *testing.B) {
	var free, held float64
	for i := 0; i < b.N; i++ {
		free = nbodyOnce(b, func(c *core.Config) { c.FW = 2 }, nil)
		held = nbodyOnce(b, func(c *core.Config) { c.FW = 2; c.HoldSends = true }, nil)
	}
	b.ReportMetric(free, "free-simsec")
	b.ReportMetric(held, "held-simsec")
}

// fullRecomputeApp overrides the N-body incremental repair with the model's
// full k·N_i·f_comp recomputation charge.
type fullRecomputeApp struct{ core.App }

func (a fullRecomputeApp) RepairOps(r core.CheckResult) float64 {
	if r.Total == 0 {
		return 0
	}
	inner := a.App.(*nbody.App)
	return float64(r.Bad) / float64(r.Total) * inner.ComputeOps()
}

// BenchmarkAblationCorrectVsRecompute compares the N-body per-pair
// incremental correction function (core.Corrector) against full
// recomputation charged at the model's fraction-of-a-sweep rate.
func BenchmarkAblationCorrectVsRecompute(b *testing.B) {
	var incr, full float64
	for i := 0; i < b.N; i++ {
		incr = nbodyOnce(b, nil, func(app core.App) core.App {
			return nbody.WithCorrection{App: app.(*nbody.App)}
		})
		full = nbodyOnce(b, nil, func(app core.App) core.App { return fullRecomputeApp{app} })
	}
	b.ReportMetric(incr, "correct-simsec")
	b.ReportMetric(full, "recompute-simsec")
}

// BenchmarkAblationPredictors compares generic speculation functions on the
// same workload by suppressing the N-body app's built-in velocity
// speculation (a Speculator-hiding wrapper), isolating predictor quality.
func BenchmarkAblationPredictors(b *testing.B) {
	for _, p := range []predict.Predictor{
		predict.ZeroOrder{},
		predict.Linear{},
		predict.Polynomial{Order: 2},
	} {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			var vt float64
			for i := 0; i < b.N; i++ {
				vt = nbodyOnce(b,
					func(c *core.Config) { c.Predictor = p },
					func(app core.App) core.App { return noSpeculator{app} })
			}
			b.ReportMetric(vt, "simsec")
		})
	}
}

// noSpeculator hides the app's Speculator implementation so the engine
// falls back to the configured generic predictor.
type noSpeculator struct{ core.App }

// BenchmarkAsyncVsSpec compares the asynchronous-iterations baseline with
// speculative computation on the Quick N-body workload.
func BenchmarkAsyncVsSpec(b *testing.B) {
	cfg := experiments.QuickNBody()
	var tS, tA float64
	for i := 0; i < b.N; i++ {
		rep, err := experiments.ExtBaselines(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s := rep.SeriesByName("total-simsec")
		tS, tA = s.Y[1], s.Y[2]
	}
	b.ReportMetric(tS, "spec-simsec")
	b.ReportMetric(tA, "async-simsec")
}

// BenchmarkBarnesHutEngine compares the direct O(N²) force kernel against
// the Barnes-Hut O(N log N) kernel inside the speculative engine.
func BenchmarkBarnesHutEngine(b *testing.B) {
	var direct, bh float64
	for i := 0; i < b.N; i++ {
		direct = nbodyOnce(b, nil, nil)
		bh = nbodyOnce(b, nil, func(app core.App) core.App {
			app.(*nbody.App).MAC = 0.5
			return app
		})
	}
	b.ReportMetric(direct, "direct-simsec")
	b.ReportMetric(bh, "bh-simsec")
}

// BenchmarkRealtime measures the wall-clock runtime's overhead per
// iteration with zero injected latency (pure engine cost on goroutines).
func BenchmarkRealtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := realtime.Run(realtime.Config{Procs: 4, MaxIter: 30, FW: 1},
			func(pid, procs int) core.App { return benchToy{pid: pid} })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfModel measures the cost of a full model sweep.
func BenchmarkPerfModel(b *testing.B) {
	m := perfmodel.NBodyRatioParams()
	for i := 0; i < b.N; i++ {
		for p := 1; p <= 16; p++ {
			_ = m.SpecTime(p)
			_ = m.NoSpecTime(p)
		}
	}
}

// BenchmarkEngineOverhead measures raw engine throughput: iterations per
// second of a minimal app on a fast network (wall-clock cost of the DES and
// engine bookkeeping, independent of any paper table).
func BenchmarkEngineOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := core.RunCluster(
			cluster.Config{
				Machines: cluster.UniformMachines(4, 1e6),
				Net:      netmodel.Fixed{D: 1e-4},
			},
			core.Config{FW: 1, MaxIter: 50},
			func(p *cluster.Proc) core.App { return benchToy{pid: p.ID()} })
		if err != nil {
			b.Fatal(err)
		}
	}
}

type benchToy struct{ pid int }

func (a benchToy) InitLocal() []float64 { return []float64{1} }

func (a benchToy) Compute(view [][]float64, t int) []float64 {
	s := 0.0
	for _, v := range view {
		s += v[0]
	}
	return []float64{s / float64(len(view))}
}

func (a benchToy) ComputeOps() float64 { return 100 }

func (a benchToy) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(0.01, 1, pred, act)
}

func (a benchToy) RepairOps(r core.CheckResult) float64 { return 100 }
