#!/usr/bin/env sh
# serve-smoke: boot a real speccoord -serve scheduler, drive it with
# specsubmit the way a user would, and assert the service-level contract:
# three jobs at two priorities on a 4-rank pool, at least one preemption
# (the urgent job evicts the batch fleet to custody), every job ends done,
# and the server drains cleanly on SIGTERM.
#
# Everything runs on 127.0.0.1 with throwaway state under mktemp; the
# script is self-contained and exits non-zero on any broken assertion.
set -eu

WORK=$(mktemp -d /tmp/serve-smoke-XXXXXX)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

say() { echo "serve-smoke: $*"; }

say "building speccoord + specsubmit into $WORK"
go build -o "$WORK/speccoord" ./cmd/speccoord
go build -o "$WORK/specsubmit" ./cmd/specsubmit

"$WORK/speccoord" -serve -serve-addr 127.0.0.1:0 -pool 4 \
    -custody-dir "$WORK/custody" -state-dir "$WORK/state" \
    -timeout 120s >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

# The server prints its bound address once the listener is up; poll the
# log for it (serve-addr :0 means the kernel picked the port).
URL=""
i=0
while [ -z "$URL" ]; do
    URL=$(sed -n 's/.*scheduler listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$WORK/server.log" | head -1)
    [ -n "$URL" ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        say "FAIL: server never came up"; cat "$WORK/server.log"; exit 1
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || { say "FAIL: server exited early"; cat "$WORK/server.log"; exit 1; }
    sleep 0.1
done
say "server up at $URL (pool 4)"

# timeout(1) needs a real binary, not a shell function, so spell the
# client invocation out.
SUB="$WORK/specsubmit"
sub() { "$SUB" -server "$URL" "$@"; }

# Job 1: the batch run — whole pool, low priority, long enough to still be
# mid-run when the urgent job lands, checkpointing so eviction has custody.
BATCH=$(sub -name batch -priority 1 -procs 4 -iters 900 -checkpoint 5 | awk 'NR==1{print $1}')
say "submitted batch job $BATCH (priority 1, procs 4)"

# Job 2: same priority, queues behind the batch job.
BONUS=$(sub -name bonus -priority 1 -procs 2 -iters 120 | awk 'NR==1{print $1}')
say "submitted bonus job $BONUS (priority 1, procs 2)"

# Preemption needs the batch fleet running with full custody coverage
# before the urgent job arrives: wait for all four snapshot files.
i=0
while :; do
    n=$(ls "$WORK/custody/$BATCH/"proc-*.ckpt 2>/dev/null | wc -l)
    [ "$n" -ge 4 ] && break
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        say "FAIL: batch custody never covered the pool ($n/4)"; cat "$WORK/server.log"; exit 1
    fi
    sleep 0.1
done
say "batch custody covers 4/4 ranks; submitting the preemptor"

# Job 3: urgent — higher priority on a full pool, so it must evict the
# batch job. -wait exits non-zero unless the job ends done.
timeout 120 "$SUB" -server "$URL" -name urgent -priority 9 -procs 2 -iters 120 -wait \
    || { say "FAIL: urgent job did not finish"; cat "$WORK/server.log"; exit 1; }
say "urgent job done"

# The batch job must resume from custody and still finish; its status line
# records the evict/resume cycle.
BATCH_OUT=$(timeout 180 "$SUB" -server "$URL" -watch "$BATCH") \
    || { say "FAIL: batch job did not finish"; cat "$WORK/server.log"; exit 1; }
echo "$BATCH_OUT" | grep -q "preemptions=" \
    || { say "FAIL: batch job was never preempted"; echo "$BATCH_OUT"; exit 1; }
echo "$BATCH_OUT" | grep -q "restores=" \
    || { say "FAIL: batch job resumed without custody restores"; echo "$BATCH_OUT"; exit 1; }
say "batch job done after preemption + custody resume"

timeout 120 "$SUB" -server "$URL" -watch "$BONUS" >/dev/null \
    || { say "FAIL: bonus job did not finish"; cat "$WORK/server.log"; exit 1; }
say "bonus job done"

# Graceful shutdown: SIGTERM drains (nothing left running) and exits 0.
kill -TERM "$SERVER_PID"
i=0
while kill -0 "$SERVER_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 150 ]; then
        say "FAIL: server did not exit after SIGTERM"; cat "$WORK/server.log"; exit 1
    fi
    sleep 0.1
done
SERVER_PID=""
say "PASS: 3 jobs, 2 priorities, >=1 preemption, clean drain"
