module specomp

go 1.22
