// Package specomp is a Go implementation of speculative computation for
// synchronous iterative algorithms, after Govindan & Franklin,
// "Speculative Computation: Overcoming Communication Delays in Parallel
// Algorithms" (WUCS-94-3, 1994).
//
// Synchronous iterative algorithms (iterative linear solvers, explicit PDE
// stencils, particle simulations) exchange every processor's partition every
// iteration and wait for all of it before computing. Speculative computation
// removes the wait: message contents that have not arrived are predicted
// from their history, computation proceeds on the predictions, and arriving
// messages are checked against an error threshold — accepted (the latency
// was masked by useful work) or repaired.
//
// This package is the public facade over the implementation packages:
//
//   - Applications implement App (plus optionally Speculator, Publisher,
//     Stopper) and run on a deterministic simulated workstation network via
//     RunCluster, or on real goroutines via the realtime runtime.
//   - The simulated network (machines, capacities, delay models) comes from
//     internal/cluster and internal/netmodel; speculation functions from
//     internal/predict; the §4 performance model from internal/perfmodel.
//
// See README.md for a walkthrough and EXPERIMENTS.md for the reproduction
// of every table and figure in the paper.
package specomp

import (
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/predict"
)

// App is one processor's view of a synchronous iterative application.
// See core.App for the full contract.
type App = core.App

// CheckResult reports the outcome of validating one speculated message.
type CheckResult = core.CheckResult

// Speculator is the optional domain-specific speculation extension.
type Speculator = core.Speculator

// Publisher is the optional broadcast-projection extension.
type Publisher = core.Publisher

// Stopper is the optional distributed-convergence-termination extension.
type Stopper = core.Stopper

// EngineConfig parameterizes the speculative engine (forward and backward
// windows, predictor, iteration count).
type EngineConfig = core.Config

// ClusterConfig describes the simulated workstation network.
type ClusterConfig = cluster.Config

// Machine is one simulated workstation (name + capacity in ops/s).
type Machine = cluster.Machine

// Proc is a running simulated processor, passed to app factories.
type Proc = cluster.Proc

// Result is one processor's outcome.
type Result = core.Result

// Stats aggregates one processor's speculation behaviour.
type Stats = core.Stats

// Factory builds one processor's App.
type Factory = core.Factory

// NetModel computes per-message network delays.
type NetModel = netmodel.Model

// Predictor is a generic speculation function.
type Predictor = predict.Predictor

// RunCluster builds the simulated cluster and executes the application on
// every processor. See core.RunCluster.
func RunCluster(cc ClusterConfig, cfg EngineConfig, factory Factory) ([]Result, error) {
	return core.RunCluster(cc, cfg, factory)
}

// RunAsyncCluster executes the asynchronous-iterations baseline.
func RunAsyncCluster(cc ClusterConfig, cfg core.AsyncConfig, factory Factory) ([]Result, error) {
	return core.RunAsyncCluster(cc, cfg, factory)
}

// TotalTime returns a run's wall (virtual) time: the last processor finish.
func TotalTime(results []Result) float64 { return core.TotalTime(results) }

// Aggregate combines per-processor stats.
func Aggregate(results []Result) core.AggregateStats { return core.Aggregate(results) }

// RelErrCheck is the stock element-wise relative-error check.
func RelErrCheck(threshold, opsPerElem float64, predicted, actual []float64) CheckResult {
	return core.RelErrCheck(threshold, opsPerElem, predicted, actual)
}

// LinearMachines builds capacities declining linearly fastest→fastest/ratio.
func LinearMachines(p int, fastest, ratio float64) []Machine {
	return cluster.LinearMachines(p, fastest, ratio)
}

// UniformMachines builds p identical machines.
func UniformMachines(p int, ops float64) []Machine { return cluster.UniformMachines(p, ops) }

// FixedNet is a constant point-to-point latency network.
func FixedNet(d float64) NetModel { return netmodel.Fixed{D: d} }

// SharedBusNet is an Ethernet-like serialized shared medium.
func SharedBusNet(overhead, bytesPerSec, hostOverhead float64) NetModel {
	return &netmodel.SharedBus{Overhead: overhead, BytesPerSec: bytesPerSec, HostOverhead: hostOverhead}
}

// LinearPredictor extrapolates along the last two snapshots (the generic
// analogue of the paper's velocity speculation).
func LinearPredictor() Predictor { return predict.Linear{} }

// ZeroOrderPredictor holds the last value.
func ZeroOrderPredictor() Predictor { return predict.ZeroOrder{} }
