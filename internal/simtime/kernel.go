// Package simtime provides a deterministic discrete-event simulation kernel.
//
// Simulated processes are ordinary goroutines that interact with a virtual
// clock through blocking primitives (Sleep, Park). At any instant exactly one
// goroutine — either the kernel or a single resumed process — is running, so
// all kernel state is accessed without locks and runs are fully
// deterministic for a given seed and spawn order.
//
// The kernel is the substrate on which internal/cluster builds a simulated
// heterogeneous workstation network (the paper's PVM testbed).
package simtime

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// ErrDeadlock is returned by Run when no events remain but live processes
// are still parked waiting to be unblocked.
var ErrDeadlock = errors.New("simtime: deadlock")

// ErrHorizon is returned by Run when the next event lies beyond the
// configured time horizon.
var ErrHorizon = errors.New("simtime: horizon reached")

// Config parameterizes a Kernel.
type Config struct {
	// Seed seeds the kernel's deterministic random source.
	Seed int64
	// Horizon, if positive, stops the simulation once the virtual clock
	// would pass this time.
	Horizon float64
}

// procState tracks where a process is in its lifecycle.
type procState int

const (
	stateReady   procState = iota // has a pending resume event
	stateRunning                  // currently executing
	stateParked                   // waiting for Unblock
	stateDone                     // body returned or panicked
)

// Proc is a simulated process. Its methods must only be called from within
// the process's own body function.
type Proc struct {
	k     *Kernel
	id    int
	name  string
	state procState
	run   chan struct{}
	panic any // non-nil if the body panicked
}

// ID returns the process's kernel-assigned identifier (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time in seconds.
func (p *Proc) Now() float64 { return p.k.now }

// Rand returns the kernel's deterministic random source.
func (p *Proc) Rand() *rand.Rand { return p.k.rng }

// Kernel owns the virtual clock and event queue.
type Kernel struct {
	now   float64
	queue eventQueue
	seq   uint64
	procs []*Proc
	live  int // procs not yet done
	rng   *rand.Rand
	// park is the rendezvous: a resumed process signals on park when it
	// blocks again or finishes, returning control to the kernel.
	park    chan struct{}
	horizon float64
	stopped bool
	failure error
}

// NewKernel creates a kernel with the given configuration.
func NewKernel(cfg Config) *Kernel {
	return &Kernel{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		park:    make(chan struct{}),
		horizon: cfg.Horizon,
	}
}

// Now returns the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Spawn registers a new process whose body starts at the current virtual
// time. The body runs in its own goroutine but is scheduled cooperatively by
// the kernel. Spawn may be called before Run or from a running process.
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		k:     k,
		id:    len(k.procs),
		name:  name,
		state: stateReady,
		run:   make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.run
		defer func() {
			if r := recover(); r != nil {
				p.panic = r
			}
			p.state = stateDone
			k.live--
			k.park <- struct{}{}
		}()
		body(p)
	}()
	k.at(k.now, func() { k.resume(p) })
	return p
}

// Schedule runs fn on the kernel after delay seconds of virtual time.
// fn executes in kernel context: it may deliver messages and Unblock parked
// processes, but must not block.
func (k *Kernel) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic("simtime: negative delay")
	}
	k.at(k.now+delay, fn)
}

// Unblock makes a parked process runnable at the current virtual time.
// It panics if the process is not parked.
func (k *Kernel) Unblock(p *Proc) {
	if p.state != stateParked {
		panic(fmt.Sprintf("simtime: Unblock(%s): process not parked (state %d)", p.name, p.state))
	}
	p.state = stateReady
	k.at(k.now, func() { k.resume(p) })
}

// Fail aborts the run; Run returns err after the current event completes.
func (k *Kernel) Fail(err error) {
	k.stopped = true
	if k.failure == nil {
		k.failure = err
	}
}

// at enqueues fn at absolute virtual time t.
func (k *Kernel) at(t float64, fn func()) {
	k.seq++
	k.queue.push(&event{t: t, seq: k.seq, fn: fn})
}

// resume hands control to p and waits until it parks again or finishes.
func (k *Kernel) resume(p *Proc) {
	if p.state == stateDone {
		return
	}
	p.state = stateRunning
	p.run <- struct{}{}
	<-k.park
	if p.panic != nil && k.failure == nil {
		k.stopped = true
		k.failure = fmt.Errorf("simtime: process %q panicked: %v", p.name, p.panic)
	}
}

// Run drives the simulation until all processes finish, a deadlock is
// detected, the horizon is reached, or Fail is called. Events scheduled
// beyond the last process's completion (e.g. retransmission timers of a
// reliable transport) are dropped — the simulation is over.
func (k *Kernel) Run() error {
	for !k.stopped {
		if k.live == 0 && len(k.procs) > 0 {
			return nil
		}
		ev := k.queue.pop()
		if ev == nil {
			if k.live == 0 {
				return nil
			}
			return fmt.Errorf("%w: %d process(es) parked forever: %s",
				ErrDeadlock, k.live, strings.Join(k.parkedNames(), ", "))
		}
		if k.horizon > 0 && ev.t > k.horizon {
			k.now = k.horizon
			return fmt.Errorf("%w at t=%g", ErrHorizon, k.horizon)
		}
		if ev.t < k.now {
			return fmt.Errorf("simtime: event time %g before now %g", ev.t, k.now)
		}
		k.now = ev.t
		ev.fn()
	}
	return k.failure
}

func (k *Kernel) parkedNames() []string {
	var names []string
	for _, p := range k.procs {
		if p.state == stateParked {
			names = append(names, p.name)
		}
	}
	return names
}

// yield parks the calling process and returns control to the kernel,
// blocking until the kernel resumes it.
func (p *Proc) yield() {
	p.k.park <- struct{}{}
	<-p.run
}

// Sleep advances the process's local time by d seconds of virtual time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic("simtime: negative sleep")
	}
	if d == 0 {
		return
	}
	p.state = stateReady
	p.k.at(p.k.now+d, func() { p.k.resume(p) })
	p.yield()
}

// Park blocks the process until another event calls Kernel.Unblock on it.
func (p *Proc) Park() {
	p.state = stateParked
	p.yield()
}
