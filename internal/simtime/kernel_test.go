package simtime

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSingleProcessAdvancesClock(t *testing.T) {
	k := NewKernel(Config{})
	var at []float64
	k.Spawn("a", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(1.5)
		at = append(at, p.Now())
		p.Sleep(0.25)
		at = append(at, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 1.75}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("at[%d] = %g, want %g", i, at[i], want[i])
		}
	}
	if k.Now() != 1.75 {
		t.Errorf("final Now = %g, want 1.75", k.Now())
	}
}

func TestZeroSleepIsNoop(t *testing.T) {
	k := NewKernel(Config{})
	k.Spawn("a", func(p *Proc) {
		p.Sleep(0)
		if p.Now() != 0 {
			t.Errorf("Now = %g after zero sleep", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavingIsDeterministicAndTimeOrdered(t *testing.T) {
	run := func() []string {
		k := NewKernel(Config{Seed: 7})
		var order []string
		k.Spawn("a", func(p *Proc) {
			p.Sleep(2)
			order = append(order, "a2")
			p.Sleep(2)
			order = append(order, "a4")
		})
		k.Spawn("b", func(p *Proc) {
			p.Sleep(1)
			order = append(order, "b1")
			p.Sleep(2)
			order = append(order, "b3")
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := []string{"b1", "a2", "b3", "a4"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order = %v, want %v", trial, got, want)
			}
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	k := NewKernel(Config{})
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Sleep(1)
			order = append(order, name)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Errorf("tie order = %v, want [x y z]", order)
	}
}

func TestParkUnblock(t *testing.T) {
	k := NewKernel(Config{})
	var woke float64
	var waiter *Proc
	waiter = k.Spawn("waiter", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(3)
		p.k.Unblock(waiter)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3 {
		t.Errorf("woke at %g, want 3", woke)
	}
}

func TestScheduleClosureEvent(t *testing.T) {
	k := NewKernel(Config{})
	var hits []float64
	k.Spawn("a", func(p *Proc) {
		p.k.Schedule(5, func() { hits = append(hits, p.k.Now()) })
		p.k.Schedule(2, func() { hits = append(hits, p.k.Now()) })
		p.Sleep(10)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 5 {
		t.Errorf("hits = %v, want [2 5]", hits)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel(Config{})
	k.Spawn("stuck", func(p *Proc) { p.Park() })
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestHorizonStopsRun(t *testing.T) {
	k := NewKernel(Config{Horizon: 5})
	k.Spawn("long", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(1)
		}
	})
	err := k.Run()
	if !errors.Is(err, ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
	if k.Now() != 5 {
		t.Errorf("Now = %g, want 5", k.Now())
	}
}

func TestProcessPanicSurfacesAsError(t *testing.T) {
	k := NewKernel(Config{})
	k.Spawn("boom", func(p *Proc) {
		p.Sleep(1)
		panic("kaboom")
	})
	err := k.Run()
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	k := NewKernel(Config{})
	var childTime float64 = -1
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(2)
		p.k.Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childTime = c.Now()
		})
		p.Sleep(5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 3 {
		t.Errorf("childTime = %g, want 3", childTime)
	}
}

func TestFailAborts(t *testing.T) {
	k := NewKernel(Config{})
	sentinel := errors.New("sentinel")
	k.Spawn("a", func(p *Proc) {
		p.Sleep(1)
		p.k.Fail(sentinel)
		p.Sleep(100) // should never complete
	})
	err := k.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if k.Now() > 1 {
		t.Errorf("clock advanced past Fail: %g", k.Now())
	}
}

func TestManyProcessesCompleteInTimeOrder(t *testing.T) {
	k := NewKernel(Config{Seed: 42})
	const n = 50
	type fin struct {
		id int
		t  float64
	}
	var fins []fin
	for i := 0; i < n; i++ {
		i := i
		d := float64((i*37)%n) * 0.1
		k.Spawn("p", func(p *Proc) {
			p.Sleep(d)
			fins = append(fins, fin{i, p.Now()})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fins) != n {
		t.Fatalf("finished %d, want %d", len(fins), n)
	}
	if !sort.SliceIsSorted(fins, func(a, b int) bool { return fins[a].t < fins[b].t }) {
		// equal times allowed; check non-decreasing
		for i := 1; i < len(fins); i++ {
			if fins[i].t < fins[i-1].t {
				t.Fatalf("completion times not monotone at %d: %v < %v", i, fins[i].t, fins[i-1].t)
			}
		}
	}
}

// Property: the virtual clock observed by a process after a series of sleeps
// equals the prefix sum of the sleep durations, regardless of other load.
func TestClockEqualsPrefixSumProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		k := NewKernel(Config{})
		// Background noise process.
		k.Spawn("noise", func(p *Proc) {
			for i := 0; i < 5; i++ {
				p.Sleep(0.3)
			}
		})
		ok := true
		k.Spawn("subject", func(p *Proc) {
			sum := 0.0
			for _, r := range raw {
				d := float64(r) / 16.0
				p.Sleep(d)
				sum += d
				if math.Abs(p.Now()-sum) > 1e-9 {
					ok = false
				}
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	times := []float64{5, 1, 3, 1, 2}
	for i, tt := range times {
		i := i
		_ = i
		q.push(&event{t: tt, seq: uint64(i)})
	}
	if q.len() != 5 {
		t.Fatalf("len = %d", q.len())
	}
	var got []float64
	var seqAtT1 []uint64
	for {
		ev := q.pop()
		if ev == nil {
			break
		}
		got = append(got, ev.t)
		if ev.t == 1 {
			seqAtT1 = append(seqAtT1, ev.seq)
		}
	}
	want := []float64{1, 1, 2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if len(seqAtT1) != 2 || seqAtT1[0] > seqAtT1[1] {
		t.Errorf("tie not broken by seq: %v", seqAtT1)
	}
}
