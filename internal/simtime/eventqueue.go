package simtime

import "container/heap"

// event is a scheduled callback. Ties on t are broken by insertion order
// (seq) so runs are deterministic.
type event struct {
	t   float64
	seq uint64
	fn  func()
}

// eventQueue is a min-heap of events ordered by (t, seq).
type eventQueue struct {
	items eventHeap
}

func (q *eventQueue) push(ev *event) { heap.Push(&q.items, ev) }

// pop removes and returns the earliest event, or nil if the queue is empty.
func (q *eventQueue) pop() *event {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(&q.items).(*event)
}

func (q *eventQueue) len() int { return len(q.items) }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
