package experiments

import (
	"fmt"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/nbody"
	"specomp/internal/partition"
)

// ExtLoad studies the effect of background CPU load on speculative
// computation. The paper's testbed machines were timeshared ("the
// background load on timeshared processors may slow down the computation
// phase"), and §3.2 argues larger forward windows ride through such
// transient slowdowns. This experiment runs the N-body workload with
// bursty background load and compares FW = 0, 1, 2.
func ExtLoad(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-load",
		Title: fmt.Sprintf("bursty background CPU load, p=%d, N=%d (extension)", cfg.MaxProcs, cfg.N),
	}
	run := func(fw int, load cluster.LoadModel) (float64, error) {
		ms := cfg.machines()[:cfg.MaxProcs]
		caps := make([]float64, len(ms))
		for i, m := range ms {
			caps[i] = m.Ops
		}
		counts := partition.Proportional(cfg.N, caps)
		ic := cfg.IC
		if ic == nil {
			ic = nbody.UniformSphere
		}
		blocks := nbody.SplitParticles(ic(cfg.N, cfg.Seed), counts)
		sim := nbody.DefaultSim()
		if cfg.Dt > 0 {
			sim.Dt = cfg.Dt
		}
		results, err := core.RunCluster(
			cluster.Config{Machines: ms, Net: cfg.net(), Seed: cfg.Seed, Load: load},
			core.Config{FW: fw, MaxIter: cfg.Iters},
			func(pr *cluster.Proc) core.App {
				return nbody.NewApp(sim, blocks[pr.ID()], cfg.N, pr.ID(), cfg.Theta, nil)
			})
		if err != nil {
			return 0, err
		}
		return core.TotalTime(results), nil
	}

	burst := cluster.BurstyLoad{Prob: 0.1, Slowdown: 2.5}
	quiet := Series{Name: "unloaded"}
	loaded := Series{Name: "bursty-load"}
	for _, fw := range []int{0, 1, 2} {
		tq, err := run(fw, nil)
		if err != nil {
			return rep, err
		}
		tl, err := run(fw, burst)
		if err != nil {
			return rep, err
		}
		quiet.X = append(quiet.X, float64(fw))
		quiet.Y = append(quiet.Y, tq)
		loaded.X = append(loaded.X, float64(fw))
		loaded.Y = append(loaded.Y, tl)
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("FW=%d: unloaded %8.2f s, bursty load %8.2f s (+%.0f%%)",
				fw, tq, tl, 100*(tl/tq-1)))
	}
	rep.Series = []Series{quiet, loaded}
	relBlock := loaded.Y[0] / quiet.Y[0]
	relSpec := loaded.Y[1] / quiet.Y[1]
	verdict := "the speculative run's critical path is already compute-bound, so load hits it at least as hard"
	if relSpec < relBlock {
		verdict = "speculation's latency masking also absorbs part of the compute-side transients"
	}
	rep.Lines = append(rep.Lines, fmt.Sprintf(
		"load inflates blocking by %.0f%%, speculative by %.0f%% — %s; speculation still wins under load",
		100*(relBlock-1), 100*(relSpec-1), verdict))
	return rep, nil
}
