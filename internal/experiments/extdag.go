package experiments

import (
	"fmt"
	"math"

	"specomp/internal/apps/stencilreduce"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/pipeline"
)

// ExtDAG exercises the engine's dependency-graph generalisation: instead of
// the paper's all-to-all exchange, each rank speculates only along its
// declared in-edges. Three task graphs are measured blocking vs speculative
// and validated against their serial references:
//
//   - a 3-stage streaming pipeline (chain DAG): feed-forward graphs already
//     pipeline when blocking, so the gain column reports the idle time the
//     stages spend waiting on upstream rows, which speculation collapses;
//   - a 6-hop retrieval-style chain, same structure but deeper;
//   - the stencil+reduce composition (cyclic worker adjacency + fan-in
//     reduce): mutually coupled ranks pay the link latency every tick when
//     blocking, so here the gain column is end-to-end virtual time.
//
// A final case re-runs the pipeline with per-edge faults injected on one
// DAG edge only, checking that repairs localise to the faulty edge's
// consumer and the finals still land inside the tolerance envelope.
func ExtDAG(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-dag",
		Title: "speculative task DAGs and pipelines (extension)",
	}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("%-14s %-12s %12s %12s %8s", "graph", "metric", "blocking", "spec", "gain%"))
	gains := Series{Name: "gain%"}
	record := func(i int, name, metric string, tb, ts float64) {
		gain := 100 * (tb - ts) / tb
		gains.X = append(gains.X, float64(i))
		gains.Y = append(gains.Y, gain)
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("%-14s %-12s %12.2f %12.2f %7.1f%%", name, metric, tb, ts, gain))
	}

	// Case 1+2: feed-forward pipelines. Metric: total idle time on upstream
	// rows (CommTime), the cost speculation exists to hide in a chain.
	type chainCase struct {
		name  string
		graph *pipeline.Graph
		iters int
	}
	chains := []chainCase{
		{"pipeline3", pipeline.ThreeStage(16, 42), 40},
		{"chain6", pipeline.Chain(6, 16, 42), 40},
	}
	for i, c := range chains {
		want := c.graph.Serial(c.iters)
		run := func(fw int) ([]core.Result, error) {
			return core.RunCluster(
				cluster.Config{
					Machines: cluster.UniformMachines(c.graph.Stages(), 1000),
					Net:      netmodel.Fixed{D: 0.3},
					Seed:     1,
				},
				core.Config{FW: fw, MaxIter: c.iters},
				func(p *cluster.Proc) core.App { return c.graph.App(p.ID()) })
		}
		rb, err := run(0)
		if err != nil {
			return rep, err
		}
		rs, err := run(2)
		if err != nil {
			return rep, err
		}
		record(i, c.name, "idle(s)", totalComm(rb), totalComm(rs))
		if d := dagDrift(rs, want, nil); d > 0.05 {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("%s drifted %.3g from serial (envelope 0.05)", c.name, d))
		}
		if core.Aggregate(rs).SpecsMade == 0 {
			rep.Failures = append(rep.Failures, c.name+": no speculation along the chain edges")
		}
	}

	// Case 3: stencil+reduce — cyclic adjacency, end-to-end virtual time.
	{
		sc := stencilreduce.Default(32, 4)
		const iters = 40
		wantField, wantStats := sc.SerialRun(iters)
		run := func(fw int) ([]core.Result, error) {
			return core.RunCluster(
				cluster.Config{
					Machines: cluster.UniformMachines(sc.Procs(), 1000),
					Net:      netmodel.Fixed{D: 0.2},
					Seed:     5,
				},
				core.Config{FW: fw, MaxIter: iters},
				func(p *cluster.Proc) core.App { return stencilreduce.NewApp(sc, p.ID()) })
		}
		rb, err := run(0)
		if err != nil {
			return rep, err
		}
		rs, err := run(2)
		if err != nil {
			return rep, err
		}
		record(2, "stencilreduce", "total(s)", core.TotalTime(rb), core.TotalTime(rs))
		field := make([]float64, 0, sc.Cells)
		for w := 0; w < sc.Workers; w++ {
			field = append(field, rs[w].Final...)
		}
		if d := maxAbsDiff(field, wantField); d > 0.15 {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("stencilreduce field drifted %.3g from serial (envelope 0.15)", d))
		}
		if d := maxAbsDiff(rs[sc.Reducer()].Final, wantStats); d > 0.15 {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("stencilreduce stats drifted %.3g from serial (envelope 0.15)", d))
		}
	}

	// Case 4: per-edge faults. Drop/duplicate frames on the source→filter
	// edge only; repairs must show up at the filter (the faulty edge's
	// consumer) and the pipeline must still land inside the envelope.
	{
		g := pipeline.ThreeStage(16, 42)
		const iters = 40
		want := g.Serial(iters)
		results, err := core.RunCluster(
			cluster.Config{
				Machines: cluster.UniformMachines(g.Stages(), 1000),
				Net: faults.EdgeFaults{
					Clean: netmodel.Fixed{D: 0.3},
					Faulty: faults.Drop{
						Prob:  0.15,
						Inner: faults.Duplicate{Prob: 0.1, Inner: netmodel.Fixed{D: 0.3}},
					},
					Edges: []faults.Edge{{From: 0, To: 1}},
				},
				Reliable:     true,
				RetryTimeout: 0.9,
				Seed:         23,
			},
			core.Config{FW: 2, MaxIter: iters},
			func(p *cluster.Proc) core.App { return g.App(p.ID()) })
		if err != nil {
			return rep, err
		}
		rep.Lines = append(rep.Lines, fmt.Sprintf(
			"per-edge faults on source→filter: filter repairs=%d dups-dropped=%d, source retries=%d, drift=%.3g",
			results[1].Stats.Repairs, results[1].Stats.Net.DupsDropped, results[0].Stats.Net.Retries,
			dagDrift(results, want, nil)))
		if results[0].Stats.Net.Retries == 0 {
			rep.Failures = append(rep.Failures, "edge faults never triggered a retransmit on the faulty edge")
		}
		if d := dagDrift(results, want, nil); d > 0.05 {
			rep.Failures = append(rep.Failures,
				fmt.Sprintf("faulty-edge pipeline drifted %.3g from serial (envelope 0.05)", d))
		}
	}

	rep.Series = []Series{gains}
	return rep, nil
}

// totalComm sums the time every rank spent idle waiting on messages.
func totalComm(results []core.Result) float64 {
	total := 0.0
	for _, r := range results {
		total += r.Stats.CommTime
	}
	return total
}

// dagDrift returns the worst |final - want| over all stages; place maps
// stage→rank (nil = identity).
func dagDrift(results []core.Result, want [][]float64, place []int) float64 {
	worst := 0.0
	for s := range want {
		rank := s
		if place != nil {
			rank = place[s]
		}
		if d := maxAbsDiff(results[rank].Final, want[s]); d > worst {
			worst = d
		}
	}
	return worst
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
