package experiments

import (
	"strings"
	"testing"

	"specomp/internal/core"
	"specomp/internal/obs"
)

// TestNBodyObsWiring checks that a registry hung on the config is populated
// by runs launched through it, and that DeltaLines produces the snapshot
// shape specbench -metrics prints.
func TestNBodyObsWiring(t *testing.T) {
	cfg := QuickNBody()
	cfg.N = 40
	cfg.Iters = 2
	cfg.Obs = obs.NewRegistry()

	before := cfg.Obs.Totals()
	results, err := cfg.Run(2, 1, cfg.Theta, nil)
	if err != nil {
		t.Fatal(err)
	}
	made := 0
	for _, r := range results {
		made += r.Stats.SpecsMade
	}
	after := cfg.Obs.Totals()
	if got := after[core.MetricSpecsMade] - before[core.MetricSpecsMade]; int(got) != made {
		t.Errorf("registry specs_made delta = %g, engine stats say %d", got, made)
	}
	lines := obs.DeltaLines(before, after)
	if len(lines) == 0 {
		t.Fatal("no metric deltas from an instrumented run")
	}
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, core.MetricIterations+" ") {
			found = true
		}
	}
	if !found {
		t.Errorf("delta lines missing %s: %v", core.MetricIterations, lines)
	}

	rep := Report{ID: "x", Title: "t", Metrics: lines}
	if !strings.Contains(rep.String(), "metrics:") {
		t.Error("Report.String does not render the metrics snapshot")
	}
}

// TestTracedFiguresExposeRecorders pins the recorder contract timeline
// -trace-out depends on.
func TestTracedFiguresExposeRecorders(t *testing.T) {
	_, recs, err := Figure4Traced()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("Figure4Traced returned %d recorders, want 3 (FW=0,1,2)", len(recs))
	}
	for _, nr := range recs {
		if nr.Rec == nil || len(nr.Rec.Spans) == 0 {
			t.Errorf("recorder %q is empty", nr.Name)
		}
		if !strings.HasPrefix(nr.Name, "fig4 FW=") {
			t.Errorf("unexpected track name %q", nr.Name)
		}
	}
}
