package experiments

import (
	"fmt"

	"specomp/internal/perfmodel"
)

// Figure5 reproduces the paper's Figure 5: model-predicted speedup versus
// number of processors (N = 1000, 16 linearly varying capacities with
// M_1 = 10·M_16, k = 2%, t_comm linear in p and equal to the 16-processor
// computation time), with and without speculation, against the maximum
// attainable speedup.
//
// Primary series use the N-body-derived per-variable cost ratios (the paper
// says its chosen parameters are "close to the measured values for the
// N-body simulation example"); a secondary series evaluates the literal
// "f_comp = 100·f_spec = 50·f_check" statement, under which eq. 9 is
// dominated by the slowest processor's checking overhead — see
// EXPERIMENTS.md for the discussion of this internal inconsistency.
func Figure5() Report {
	rep := Report{
		ID:    "fig5",
		Title: "model speedup vs processors (k=2%)",
	}
	m := perfmodel.NBodyRatioParams()
	lit := perfmodel.Section4Params()
	noSpec := Series{Name: "no-spec"}
	spec := Series{Name: "spec"}
	maxS := Series{Name: "max"}
	specLit := Series{Name: "spec-literal"}
	for p := 1; p <= len(m.Caps); p++ {
		x := float64(p)
		noSpec.X, noSpec.Y = append(noSpec.X, x), append(noSpec.Y, m.SpeedupNoSpec(p))
		spec.X, spec.Y = append(spec.X, x), append(spec.Y, m.SpeedupSpec(p))
		maxS.X, maxS.Y = append(maxS.X, x), append(maxS.Y, m.SpeedupMax(p))
		specLit.X, specLit.Y = append(specLit.X, x), append(specLit.Y, lit.SpeedupSpec(p))
	}
	rep.Series = []Series{noSpec, spec, maxS, specLit}

	peakP, peak := 1, 0.0
	for i, y := range noSpec.Y {
		if y > peak {
			peak, peakP = y, i+1
		}
	}
	last := len(noSpec.Y) - 1
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("no-spec speedup peaks at p=%d then declines (paper: ~10)", peakP),
		fmt.Sprintf("at p=16: spec %.2f vs no-spec %.2f (gain %.0f%%), max %.2f",
			spec.Y[last], noSpec.Y[last], 100*(spec.Y[last]/noSpec.Y[last]-1), maxS.Y[last]),
	)
	return rep
}
