package experiments

import (
	"fmt"

	"specomp/internal/core"
)

// Table2Row holds the per-iteration phase times of one forward-window
// setting, matching the paper's Table 2 columns.
type Table2Row struct {
	FW          int
	Computation float64
	Comm        float64
	Speculation float64
	Check       float64
	Correct     float64
	Total       float64
}

// Table2 reproduces the paper's Table 2: average per-iteration time spent in
// each phase on the critical (last-finishing) processor of a full-size run,
// for forward windows 0, 1 and 2.
func Table2(cfg NBodyConfig) (Report, []Table2Row, error) {
	rep := Report{
		ID:    "table2",
		Title: fmt.Sprintf("measured per-iteration phase times, p=%d, N=%d", cfg.MaxProcs, cfg.N),
	}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("%-3s %12s %12s %12s %10s %10s %10s",
			"FW", "compute(s)", "comm(s)", "spec(s)", "check(s)", "correct(s)", "total(s)"))
	var rows []Table2Row
	for _, fw := range []int{0, 1, 2} {
		results, err := cfg.Run(cfg.MaxProcs, fw, cfg.Theta, nil)
		if err != nil {
			return rep, nil, err
		}
		agg := core.Aggregate(results)
		it := float64(cfg.Iters)
		row := Table2Row{
			FW:          fw,
			Computation: agg.MaxCompute / it,
			Comm:        agg.MaxComm / it,
			Speculation: agg.MaxSpec / it,
			Check:       agg.MaxCheck / it,
			Correct:     agg.MaxCorrect / it,
			Total:       agg.Total / it,
		}
		rows = append(rows, row)
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("%-3d %12.3f %12.3f %12.3f %10.3f %10.3f %10.3f",
				row.FW, row.Computation, row.Comm, row.Speculation, row.Check, row.Correct, row.Total))
	}
	rep.Lines = append(rep.Lines,
		"paper (16 procs, 1000 particles): FW=0: 5.83/4.73/0/0 → 10.56; FW=1: 5.85/1.43/0.2/1.02 → 8.52; FW=2: 5.82/0.22/0.3/1.5 → 7.79")
	return rep, rows, nil
}
