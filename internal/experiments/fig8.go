package experiments

import (
	"fmt"

	"specomp/internal/core"
)

// Figure8 reproduces the paper's Figure 8: measured N-body speedup versus
// number of processors for forward windows 0, 1 and 2 (θ = 0.01), together
// with the maximum attainable speedup Σ M_i / M_1. Speedups are relative to
// the fastest single processor, exactly as the paper defines them.
func Figure8(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "fig8",
		Title: fmt.Sprintf("N-body speedup vs processors (N=%d, θ=%g, FW=0/1/2)", cfg.N, cfg.Theta),
	}
	serial, err := cfg.SerialTime()
	if err != nil {
		return rep, err
	}
	windows := []int{0, 1, 2}
	series := make([]Series, len(windows)+1)
	for wi, fw := range windows {
		series[wi].Name = fmt.Sprintf("FW=%d", fw)
	}
	series[len(windows)].Name = "max"
	for p := 1; p <= cfg.MaxProcs; p++ {
		for wi, fw := range windows {
			results, err := cfg.Run(p, fw, cfg.Theta, nil)
			if err != nil {
				return rep, err
			}
			s := serial / core.TotalTime(results)
			series[wi].X = append(series[wi].X, float64(p))
			series[wi].Y = append(series[wi].Y, s)
		}
		series[len(windows)].X = append(series[len(windows)].X, float64(p))
		series[len(windows)].Y = append(series[len(windows)].Y, cfg.SumCaps(p)/cfg.SumCaps(1))
	}
	rep.Series = series
	last := len(series[0].Y) - 1
	gain1 := series[1].Y[last]/series[0].Y[last] - 1
	gain2 := series[2].Y[last]/series[0].Y[last] - 1
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("serial time on P1: %.2f s (%d iterations)", serial, cfg.Iters),
		fmt.Sprintf("at p=%d: FW=1 gains %.1f%%, FW=2 gains %.1f%% over no speculation (paper: up to 34%%)",
			cfg.MaxProcs, gain1*100, gain2*100),
		fmt.Sprintf("FW=2 speedup is %.0f%% of the maximum attainable (paper: within 20%%)",
			100*series[2].Y[last]/series[3].Y[last]),
	)
	return rep, nil
}
