package experiments

import (
	"fmt"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/nbody"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
	"specomp/internal/partition"
)

// NBodyConfig parameterizes the §5 testbed simulation: a heterogeneous
// workstation network on a shared Ethernet-like bus running the O(N²)
// N-body application.
//
// The default calibration reproduces the scale of the paper's Table 2
// (16 processors, 1000 particles: compute ≈ 5.8 s/iter, blocked
// communication ≈ 4.7 s/iter at FW=0): capacities are "effective ops/s" as
// the paper measured per machine, declining linearly with M_1 = 10·M_16;
// the bus charges a per-message overhead (PVM protocol cost) plus
// 10 Mb/s transfer time, and messages serialize on the shared medium.
type NBodyConfig struct {
	N        int     // particles
	Iters    int     // timesteps per run
	MaxProcs int     // size of the machine set (paper: 16)
	Theta    float64 // eq.-11 threshold θ
	Seed     int64

	FastestOps float64 // M_1, effective ops/s
	CapRatio   float64 // M_1 / M_p

	BusOverhead  float64 // per-message bus occupancy, seconds
	BusBandwidth float64 // bytes per second
	HostOverhead float64 // per-message end-host latency, seconds

	// JitterFrac scales each delay by U[1−f, 1+f] (background traffic).
	JitterFrac float64
	// SpikeProb/SpikeMin/SpikeMax add occasional large extra delays — the
	// transient excesses that make forward windows > 1 worthwhile.
	SpikeProb, SpikeMin, SpikeMax float64

	// Dt is the simulation timestep Δt. Speculation error grows as a·Δt²,
	// so Δt controls the recomputation rate k at a given θ.
	Dt float64

	// IC generates the initial particles (defaults to UniformSphere).
	IC func(n int, seed int64) []nbody.Particle

	// Obs, when non-nil, instruments every run launched through this config
	// (engine and transport metrics accumulate into the shared registry).
	Obs *obs.Registry
}

// DefaultNBody is the full paper-scale configuration.
func DefaultNBody() NBodyConfig {
	return NBodyConfig{
		N:        1000,
		Iters:    10,
		MaxProcs: 16,
		Theta:    0.01,
		Seed:     1994,

		FastestOps: 1.364e6,
		CapRatio:   10,

		BusOverhead:  0.012,
		BusBandwidth: 1.25e6, // 10 Mb/s Ethernet
		HostOverhead: 0.002,

		JitterFrac: 0.3,
		SpikeProb:  0.005,
		SpikeMin:   2.0,
		SpikeMax:   8.0,

		Dt: 0.06,

		IC: nbody.UniformSphere,
	}
}

// QuickNBody is a scaled-down configuration for tests. The regime of the
// full setup is preserved: per-iteration compute stays ≈ 5.8 s, blocked
// communication at the largest processor count stays ≈ 45% of the
// no-speculation iteration time, and checking overhead stays well below the
// maskable communication.
func QuickNBody() NBodyConfig {
	cfg := DefaultNBody()
	cfg.N = 160
	cfg.Iters = 8
	cfg.MaxProcs = 8
	// Scale capacity with N² so per-iteration compute time stays ~5.8 s
	// (MaxProcs halves, so ΣM needs the extra factor of 2).
	full := DefaultNBody()
	scale := float64(cfg.N*cfg.N) / float64(full.N*full.N)
	cfg.FastestOps = full.FastestOps * scale * 2
	// With only p(p−1)=56 messages per iteration, a larger per-message
	// overhead keeps communication at the full setup's ~45% share.
	cfg.BusOverhead = 0.045
	return cfg
}

// machines returns the full ordered machine set; a p-processor run uses the
// fastest p machines, exactly as the paper's ordered set P.
func (cfg NBodyConfig) machines() []cluster.Machine {
	return cluster.LinearMachines(cfg.MaxProcs, cfg.FastestOps, cfg.CapRatio)
}

// net builds a fresh shared-bus network model (stateful; one per run),
// wrapped with jitter and occasional heavy-tailed spikes.
func (cfg NBodyConfig) net() netmodel.Model {
	var m netmodel.Model = &netmodel.SharedBus{
		Overhead:     cfg.BusOverhead,
		BytesPerSec:  cfg.BusBandwidth,
		HostOverhead: cfg.HostOverhead,
	}
	if cfg.JitterFrac > 0 {
		m = netmodel.Jitter{Inner: m, Frac: cfg.JitterFrac}
	}
	if cfg.SpikeProb > 0 {
		m = netmodel.RandomSpikes{Inner: m, Prob: cfg.SpikeProb, ExtraMin: cfg.SpikeMin, ExtraMax: cfg.SpikeMax}
	}
	return m
}

// Run executes one N-body simulation on the fastest p machines with forward
// window fw and threshold theta, returning the per-processor results.
func (cfg NBodyConfig) Run(p, fw int, theta float64, instr *nbody.Instrument) ([]core.Result, error) {
	return cfg.RunWithKernel(p, fw, theta, 0, instr)
}

// RunWithKernel is Run with a selectable force kernel: mac = 0 uses the
// exact O(N²) direct sum, mac > 0 the Barnes-Hut tree at that opening angle.
func (cfg NBodyConfig) RunWithKernel(p, fw int, theta, mac float64, instr *nbody.Instrument) ([]core.Result, error) {
	if p < 1 || p > cfg.MaxProcs {
		return nil, fmt.Errorf("experiments: p=%d out of range [1, %d]", p, cfg.MaxProcs)
	}
	ms := cfg.machines()[:p]
	caps := make([]float64, p)
	for i, m := range ms {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(cfg.N, caps)
	ic := cfg.IC
	if ic == nil {
		ic = nbody.UniformSphere
	}
	blocks := nbody.SplitParticles(ic(cfg.N, cfg.Seed), counts)
	sim := nbody.DefaultSim()
	if cfg.Dt > 0 {
		sim.Dt = cfg.Dt
	}
	return core.RunCluster(
		cluster.Config{Machines: ms, Net: cfg.net(), Seed: cfg.Seed, Metrics: cfg.Obs},
		core.Config{FW: fw, MaxIter: cfg.Iters, Metrics: cfg.Obs},
		func(pr *cluster.Proc) core.App {
			app := nbody.NewApp(sim, blocks[pr.ID()], cfg.N, pr.ID(), theta, instr)
			app.MAC = mac
			return app
		})
}

// SerialTime returns the per-run virtual time on the fastest machine alone.
func (cfg NBodyConfig) SerialTime() (float64, error) {
	res, err := cfg.Run(1, 0, cfg.Theta, nil)
	if err != nil {
		return 0, err
	}
	return core.TotalTime(res), nil
}

// SumCaps returns Σ M_i over the fastest p machines.
func (cfg NBodyConfig) SumCaps(p int) float64 {
	return cluster.TotalOps(cfg.machines()[:p])
}
