package experiments

import "testing"

func TestExtLoadInflatesTimesButSpecStillWins(t *testing.T) {
	cfg := QuickNBody()
	rep, err := ExtLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quiet := rep.SeriesByName("unloaded")
	loaded := rep.SeriesByName("bursty-load")
	if quiet == nil || loaded == nil || len(quiet.Y) != 3 || len(loaded.Y) != 3 {
		t.Fatalf("missing series: %+v", rep.Series)
	}
	for i := range quiet.Y {
		if loaded.Y[i] <= quiet.Y[i] {
			t.Errorf("FW=%d: bursty load (%v) did not inflate time (%v)", i, loaded.Y[i], quiet.Y[i])
		}
	}
	// Speculation still beats blocking under load.
	if loaded.Y[1] >= loaded.Y[0] {
		t.Errorf("under load, FW=1 (%v) does not beat FW=0 (%v)", loaded.Y[1], loaded.Y[0])
	}
}

func TestExtTopologySpecGainGrowsWithCrossLatency(t *testing.T) {
	cfg := QuickNBody()
	rep, err := ExtTopology(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blockS := rep.SeriesByName("blocking")
	specS := rep.SeriesByName("speculative")
	if blockS == nil || specS == nil || len(blockS.Y) != 4 {
		t.Fatalf("missing series: %+v", rep.Series)
	}
	// Blocking time grows with the cross-switch penalty.
	for i := 1; i < len(blockS.Y); i++ {
		if blockS.Y[i] <= blockS.Y[i-1] {
			t.Errorf("blocking time not increasing with cross latency: %v", blockS.Y)
			break
		}
	}
	// Speculation's relative gain at the largest penalty beats its gain at zero.
	gain0 := 1 - specS.Y[0]/blockS.Y[0]
	gainMax := 1 - specS.Y[len(specS.Y)-1]/blockS.Y[len(blockS.Y)-1]
	if gainMax <= gain0 {
		t.Errorf("gain did not grow with cross latency: %.3f -> %.3f", gain0, gainMax)
	}
}

func TestExtAppsAllGain(t *testing.T) {
	cfg := QuickNBody()
	rep, err := ExtApps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gains := rep.SeriesByName("gain%")
	if gains == nil || len(gains.Y) != 4 {
		t.Fatalf("missing gains: %+v", rep.Series)
	}
	names := []string{"nbody", "jacobi", "heat", "sor"}
	for i, g := range gains.Y {
		if g <= 0 {
			t.Errorf("%s: speculation gain %.1f%% not positive", names[i], g)
		}
	}
}
