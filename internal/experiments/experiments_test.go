package experiments

import (
	"strings"
	"testing"
)

func TestFigure2Ordering(t *testing.T) {
	rep, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.SeriesByName("totals")
	if tot == nil || len(tot.Y) != 3 {
		t.Fatalf("missing totals series: %+v", rep.Series)
	}
	tA, tB, tC := tot.Y[0], tot.Y[1], tot.Y[2]
	if !(tB < tA) {
		t.Errorf("T_spec_good (%.2f) should beat T_no_spec (%.2f)", tB, tA)
	}
	if !(tC > tA) {
		t.Errorf("T_spec_nogood (%.2f) should exceed T_no_spec (%.2f)", tC, tA)
	}
	out := rep.String()
	for _, want := range []string{"(a) no speculation", "(b) speculation", "(c) speculation", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure4LargerWindowsHelp(t *testing.T) {
	rep, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	tot := rep.SeriesByName("total-time")
	if tot == nil || len(tot.Y) != 3 {
		t.Fatalf("missing totals: %+v", rep.Series)
	}
	if !(tot.Y[2] <= tot.Y[1] && tot.Y[1] <= tot.Y[0]) {
		t.Errorf("want T(FW2) <= T(FW1) <= T(FW0), got %v", tot.Y)
	}
	if tot.Y[2] >= tot.Y[0] {
		t.Errorf("FW=2 (%v) no better than FW=0 (%v)", tot.Y[2], tot.Y[0])
	}
}

func TestFigure5Shapes(t *testing.T) {
	rep := Figure5()
	spec := rep.SeriesByName("spec")
	noSpec := rep.SeriesByName("no-spec")
	maxS := rep.SeriesByName("max")
	if spec == nil || noSpec == nil || maxS == nil {
		t.Fatal("missing series")
	}
	last := len(spec.Y) - 1
	if spec.Y[last] <= noSpec.Y[last]*1.2 {
		t.Errorf("spec (%.2f) should clearly beat no-spec (%.2f) at p=16", spec.Y[last], noSpec.Y[last])
	}
	if spec.Y[last] > maxS.Y[last] {
		t.Errorf("spec exceeds max attainable speedup")
	}
	// No-spec must peak strictly before p=16.
	peakAt := 0
	peak := 0.0
	for i, y := range noSpec.Y {
		if y > peak {
			peak, peakAt = y, i+1
		}
	}
	if peakAt >= 16 {
		t.Errorf("no-spec speedup never declines (peak at %d)", peakAt)
	}
}

func TestFigure6Crossover(t *testing.T) {
	rep := Figure6()
	spec := rep.SeriesByName("spec")
	noSpec := rep.SeriesByName("no-spec")
	if spec == nil || noSpec == nil {
		t.Fatal("missing series")
	}
	if spec.Y[0] <= noSpec.Y[0] {
		t.Errorf("spec at k=0 (%.3f) should beat no-spec (%.3f)", spec.Y[0], noSpec.Y[0])
	}
	lastIdx := len(spec.Y) - 1
	if spec.Y[lastIdx] >= noSpec.Y[lastIdx] {
		t.Errorf("spec at k=20%% should lose to no-spec")
	}
}

func TestFigure8QuickShapes(t *testing.T) {
	cfg := QuickNBody()
	rep, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fw0 := rep.SeriesByName("FW=0")
	fw1 := rep.SeriesByName("FW=1")
	fw2 := rep.SeriesByName("FW=2")
	maxS := rep.SeriesByName("max")
	if fw0 == nil || fw1 == nil || fw2 == nil || maxS == nil {
		t.Fatal("missing series")
	}
	last := len(fw0.Y) - 1
	// Speculation wins at the largest processor count.
	if fw1.Y[last] <= fw0.Y[last] {
		t.Errorf("FW=1 (%.2f) does not beat FW=0 (%.2f) at p=%d", fw1.Y[last], fw0.Y[last], cfg.MaxProcs)
	}
	if fw2.Y[last] < fw1.Y[last]*0.95 {
		t.Errorf("FW=2 (%.2f) much worse than FW=1 (%.2f)", fw2.Y[last], fw1.Y[last])
	}
	// Nothing beats the capacity bound.
	for i := range fw2.Y {
		if fw2.Y[i] > maxS.Y[i]*1.001 {
			t.Errorf("p=%d: speedup %.2f exceeds capacity bound %.2f", i+1, fw2.Y[i], maxS.Y[i])
		}
	}
	// At p=1 all speedups are 1.
	if fw0.Y[0] != 1 || fw1.Y[0] < 0.99 || fw1.Y[0] > 1.01 {
		t.Errorf("p=1 speedups: %v %v", fw0.Y[0], fw1.Y[0])
	}
}

func TestTable2QuickShapes(t *testing.T) {
	cfg := QuickNBody()
	_, rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// FW=0 has no speculation or checking.
	if rows[0].Speculation != 0 || rows[0].Check != 0 {
		t.Errorf("FW=0 row has spec/check time: %+v", rows[0])
	}
	// Speculation slashes blocked communication time.
	if rows[1].Comm >= rows[0].Comm*0.8 {
		t.Errorf("FW=1 comm %.3f not much below FW=0 comm %.3f", rows[1].Comm, rows[0].Comm)
	}
	// Total improves with FW, and FW=1/2 carry spec+check overhead.
	if rows[1].Total >= rows[0].Total {
		t.Errorf("FW=1 total %.3f not below FW=0 total %.3f", rows[1].Total, rows[0].Total)
	}
	if rows[1].Speculation <= 0 || rows[1].Check <= 0 {
		t.Errorf("FW=1 missing overhead phases: %+v", rows[1])
	}
	// Compute time is roughly FW-independent.
	if rows[1].Computation < rows[0].Computation*0.9 || rows[1].Computation > rows[0].Computation*1.1 {
		t.Errorf("compute time changed too much: %.3f vs %.3f", rows[1].Computation, rows[0].Computation)
	}
}

func TestTable3QuickShapes(t *testing.T) {
	cfg := QuickNBody()
	_, rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tighter θ ⇒ more incorrect speculations.
	for i := 1; i < len(rows); i++ {
		if rows[i].IncorrectPct < rows[i-1].IncorrectPct-1e-9 {
			t.Errorf("incorrect%% not monotone: %+v", rows)
			break
		}
	}
	// Accepted force error shrinks as θ tightens (allowing zero rows).
	first, last := rows[0].MaxForceErr, rows[len(rows)-1].MaxForceErr
	if last > first+1e-9 {
		t.Errorf("max force error grew as θ tightened: %.4f -> %.4f", first, last)
	}
}

func TestFigure9ModelTracksMeasured(t *testing.T) {
	cfg := QuickNBody()
	rep, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mNo := rep.SeriesByName("measured FW=0")
	pNo := rep.SeriesByName("model no-spec")
	mSp := rep.SeriesByName("measured FW=1")
	pSp := rep.SeriesByName("model spec")
	if mNo == nil || pNo == nil || mSp == nil || pSp == nil {
		t.Fatal("missing series")
	}
	for i := range mNo.Y {
		relNo := absf(pNo.Y[i]-mNo.Y[i]) / mNo.Y[i]
		relSp := absf(pSp.Y[i]-mSp.Y[i]) / mSp.Y[i]
		// The paper reports ≤10% (small p) and ~25% (large p); allow a
		// loose 50% guard to catch gross model/measurement divergence.
		if relNo > 0.5 || relSp > 0.5 {
			t.Errorf("p=%d: model error no-spec %.0f%%, spec %.0f%%", i+1, relNo*100, relSp*100)
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestReportString(t *testing.T) {
	r := Report{ID: "x", Title: "t", Lines: []string{"a"}, Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}
	out := r.String()
	for _, want := range []string{"== x: t ==", "a", "series s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	if r.SeriesByName("nope") != nil {
		t.Error("found nonexistent series")
	}
}
