package experiments

import (
	"errors"
	"fmt"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/nbody"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
	"specomp/internal/simtime"
)

// ExtFaults studies speculative computation on an unreliable network — the
// regime the paper's PVM testbed hid behind TCP. Messages are dropped and
// delayed by a seeded fault profile; a retransmission layer in the cluster
// recovers the losses, and the engine's deadline-based graceful degradation
// rides out a straggling processor. The experiment shows three things:
//
//  1. without retransmission, one lost message deadlocks the blocking
//     (FW = 0) algorithm;
//  2. with retransmission, speculation (FW >= 1) masks the recovery latency
//     that blocking runs must eat, at bounded result error;
//  3. with a receive deadline, speculation overruns the forward window past
//     a straggler instead of stalling behind it, reconciling afterwards.
func ExtFaults(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID: "ext-faults",
		Title: fmt.Sprintf("fault injection: loss + spikes + straggler, p=%d, N=%d (extension)",
			cfg.MaxProcs, cfg.N),
	}
	const dropProb = 0.02

	type outcome struct {
		results []core.Result
		finals  []float64
		time    float64
	}
	run := func(fw int, net func() netmodel.Model, reliable bool, ecfg core.Config) (outcome, error) {
		ms := cfg.machines()[:cfg.MaxProcs]
		caps := make([]float64, len(ms))
		for i, m := range ms {
			caps[i] = m.Ops
		}
		counts := partition.Proportional(cfg.N, caps)
		ic := cfg.IC
		if ic == nil {
			ic = nbody.UniformSphere
		}
		blocks := nbody.SplitParticles(ic(cfg.N, cfg.Seed), counts)
		sim := nbody.DefaultSim()
		if cfg.Dt > 0 {
			sim.Dt = cfg.Dt
		}
		ecfg.FW = fw
		ecfg.MaxIter = cfg.Iters
		// The retry timeout must sit above the bus's queueing delay (tens of
		// serialized messages per iteration) or every ack that queues behind a
		// busy medium triggers a spurious retransmission storm.
		ecfg.Metrics = cfg.Obs
		results, err := core.RunCluster(
			cluster.Config{Machines: ms, Net: net(), Seed: cfg.Seed, Reliable: reliable,
				RetryTimeout: 5, Metrics: cfg.Obs},
			ecfg,
			func(pr *cluster.Proc) core.App {
				return nbody.NewApp(sim, blocks[pr.ID()], cfg.N, pr.ID(), cfg.Theta, nil)
			})
		if err != nil {
			return outcome{}, err
		}
		var finals []float64
		for _, r := range results {
			finals = append(finals, r.Final...)
		}
		return outcome{results: results, finals: finals, time: core.TotalTime(results)}, nil
	}

	lossy := func() netmodel.Model {
		return faults.Profile(cfg.net(), dropProb, 0.01, 1.0, 4.0)
	}

	// 1. Fault-free reference and the fatal baseline: the same lossy profile
	// with no retransmission parks a blocking receiver forever on the first
	// dropped message.
	ref, err := run(0, cfg.net, false, core.Config{})
	if err != nil {
		return rep, err
	}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("fault-free  FW=0 blocking:              %8.2f s (reference)", ref.time))
	if _, err := run(0, lossy, false, core.Config{}); errors.Is(err, simtime.ErrDeadlock) {
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("%.0f%% loss    FW=0 no retransmission:     deadlock (stalls on first lost message)", 100*dropProb))
	} else if err != nil {
		return rep, err
	} else {
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("%.0f%% loss    FW=0 no retransmission:     completed (no message lost at this seed)", 100*dropProb))
	}

	// 2. Retransmission makes the lossy network survivable at every FW;
	// speculation then masks the recovery latency that FW=0 eats in full.
	clean := Series{Name: "fault-free"}
	faulty := Series{Name: "faulty-reliable"}
	retrans := Series{Name: "retransmits"}
	dups := Series{Name: "dups-dropped"}
	giveups := Series{Name: "giveups"}
	for _, fw := range []int{0, 1, 2} {
		oc, err := run(fw, cfg.net, false, core.Config{})
		if err != nil {
			return rep, err
		}
		of, err := run(fw, lossy, true, core.Config{})
		if err != nil {
			return rep, err
		}
		agg := core.Aggregate(of.results)
		rep.Lines = append(rep.Lines, fmt.Sprintf(
			"%.0f%% loss    FW=%d reliable:              %8.2f s (+%.0f%% vs fault-free %.2f s), maxerr %.2e, %d retrans, %d dups dropped",
			100*dropProb, fw, of.time, 100*(of.time/oc.time-1), oc.time,
			core.MaxAbsErr(of.finals, ref.finals), agg.Retries, agg.DupsDropped))
		clean.X = append(clean.X, float64(fw))
		clean.Y = append(clean.Y, oc.time)
		faulty.X = append(faulty.X, float64(fw))
		faulty.Y = append(faulty.Y, of.time)
		retrans.X = append(retrans.X, float64(fw))
		retrans.Y = append(retrans.Y, float64(agg.Retries))
		dups.X = append(dups.X, float64(fw))
		dups.Y = append(dups.Y, float64(agg.DupsDropped))
		giveups.X = append(giveups.X, float64(fw))
		giveups.Y = append(giveups.Y, float64(agg.GiveUps))
	}
	rep.Series = []Series{clean, faulty, retrans, dups, giveups}

	// 3. Graceful degradation: a processor's outgoing messages stall for a
	// window mid-run. With a receive deadline the engine overruns the forward
	// window on speculation instead of blocking behind the straggler.
	// The stall must exceed FW iteration times, or the forward window alone
	// absorbs it and the deadline has nothing to add.
	straggler := func() netmodel.Model {
		return faults.Straggler{
			Inner: cfg.net(),
			Proc:  cfg.MaxProcs - 1,
			From:  0.30 * ref.time, Until: 0.60 * ref.time,
			Extra: 0.20 * ref.time,
		}
	}
	blocked, err := run(1, straggler, false, core.Config{})
	if err != nil {
		return rep, err
	}
	deadline := 0.02 * ref.time
	degraded, err := run(1, straggler, false, core.Config{Deadline: deadline, MaxOverrun: 3})
	if err != nil {
		return rep, err
	}
	agg := core.Aggregate(degraded.results)
	rep.Lines = append(rep.Lines, fmt.Sprintf(
		"straggler   FW=1 blocking:              %8.2f s", blocked.time))
	rep.Lines = append(rep.Lines, fmt.Sprintf(
		"straggler   FW=1 deadline %.1fs:        %8.2f s (%d overruns, %d reconciled), maxerr %.2e vs fault-free",
		deadline, degraded.time, agg.Overruns, agg.Reconciles,
		core.MaxAbsErr(degraded.finals, ref.finals)))
	verdict := "degradation trades the stall for reconciliation work"
	if degraded.time < blocked.time {
		verdict = "overrunning the forward window beats waiting out the straggler"
	}
	rep.Lines = append(rep.Lines, verdict)
	return rep, nil
}
