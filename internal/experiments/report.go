// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver builds the workload, runs it on the
// simulated cluster (or evaluates the performance model), and returns a
// Report with the same rows/series the paper presents. The cmd/specbench
// binary and the repository benchmarks regenerate everything from here.
package experiments

import (
	"fmt"
	"strings"

	"specomp/internal/plot"
)

// Series is one plottable line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Report is a reproduced table or figure.
type Report struct {
	ID     string // e.g. "fig5", "table2"
	Title  string
	Lines  []string
	Series []Series

	// Metrics is the observability snapshot for this report's runs: sorted
	// "name value" delta lines from an obs.Registry (see specbench -metrics).
	// Empty unless the run was instrumented.
	Metrics []string

	// Failures lists acceptance assertions this run violated (e.g. a chaos
	// soak target that did not recover within tolerance). A non-empty list
	// makes specbench exit non-zero.
	Failures []string
}

// String renders the report for terminal output.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "series %-12s:", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, " (%g, %.4g)", s.X[i], s.Y[i])
		}
		b.WriteByte('\n')
	}
	if len(r.Metrics) > 0 {
		b.WriteString("metrics:\n")
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "  %s\n", m)
		}
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	return b.String()
}

// find returns the named series, or nil.
func (r Report) find(name string) *Series {
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// SeriesByName exposes find for consumers outside the package.
func (r Report) SeriesByName(name string) *Series { return r.find(name) }

// plotSeries converts to the plot package's series type.
func (r Report) plotSeries() []plot.Series {
	out := make([]plot.Series, len(r.Series))
	for i, s := range r.Series {
		out[i] = plot.Series{Name: s.Name, X: s.X, Y: s.Y}
	}
	return out
}

// Chart renders the report's series as an ASCII line chart.
func (r Report) Chart(width, height int) string {
	if len(r.Series) == 0 {
		return ""
	}
	return plot.Chart(r.plotSeries(), width, height)
}

// CSV renders the report's series as comma-separated columns.
func (r Report) CSV() string {
	if len(r.Series) == 0 {
		return ""
	}
	return plot.CSV(r.plotSeries())
}
