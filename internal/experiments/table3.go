package experiments

import (
	"fmt"

	"specomp/internal/nbody"
)

// Table3Row is one θ setting's accuracy outcome, matching the paper's
// Table 3 columns.
type Table3Row struct {
	Theta        float64
	IncorrectPct float64 // % of eq.-11 pair checks out of tolerance
	MaxForceErr  float64 // max relative force error among accepted checks
}

// Table3 reproduces the paper's Table 3: the effect of the error threshold θ
// on the fraction of incorrect speculations and on the worst force error
// that survives in accepted computations. Run at 8 processors, as the
// paper's accompanying discussion uses.
func Table3(cfg NBodyConfig) (Report, []Table3Row, error) {
	rep := Report{
		ID:    "table3",
		Title: fmt.Sprintf("effect of error bound θ (N=%d, FW=1)", cfg.N),
	}
	p := 8
	if p > cfg.MaxProcs {
		p = cfg.MaxProcs
	}
	thetas := []float64{0.1, 0.05, 0.01, 0.005, 0.001}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("%-8s %22s %18s", "θ", "incorrect specs (%)", "max force err (%)"))
	var rows []Table3Row
	for _, th := range thetas {
		instr := &nbody.Instrument{}
		if _, err := cfg.Run(p, 1, th, instr); err != nil {
			return rep, nil, err
		}
		incorrect := 0.0
		if instr.PairsTotal > 0 {
			incorrect = 100 * float64(instr.PairsBad) / float64(instr.PairsTotal)
		}
		row := Table3Row{Theta: th, IncorrectPct: incorrect, MaxForceErr: instr.MaxForceErr * 100}
		rows = append(rows, row)
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("%-8g %22.3f %18.3f", row.Theta, row.IncorrectPct, row.MaxForceErr))
	}
	rep.Lines = append(rep.Lines,
		"paper: θ=0.1 → <1% / 20%;  θ=0.01 → 2% / 2%;  θ=0.001 → 20% / 0.2%")
	return rep, rows, nil
}
