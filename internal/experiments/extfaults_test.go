package experiments

import (
	"strings"
	"testing"
)

func TestExtFaultsSpeculationMasksRecoveryLatency(t *testing.T) {
	cfg := QuickNBody()
	rep, err := ExtFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := rep.SeriesByName("fault-free")
	faulty := rep.SeriesByName("faulty-reliable")
	if clean == nil || faulty == nil || len(clean.Y) != 3 || len(faulty.Y) != 3 {
		t.Fatalf("missing series: %+v", rep.Series)
	}
	// The unprotected blocking run must stall under loss.
	deadlocked := false
	for _, l := range rep.Lines {
		if strings.Contains(l, "no retransmission") && strings.Contains(l, "deadlock") {
			deadlocked = true
		}
	}
	if !deadlocked {
		t.Errorf("FW=0 without retransmission did not deadlock:\n%s", strings.Join(rep.Lines, "\n"))
	}
	// Reliable delivery recovers the losses at every FW, and speculation
	// masks most of the recovery latency that blocking (FW=0) eats in full.
	block0 := faulty.Y[0] / clean.Y[0]
	spec1 := faulty.Y[1] / clean.Y[1]
	if block0 <= 1.0 {
		t.Errorf("faults did not slow the FW=0 reliable run: ratio %.3f", block0)
	}
	if spec1 >= block0 {
		t.Errorf("FW=1 fault overhead ratio %.3f not below FW=0's %.3f — speculation masked nothing", spec1, block0)
	}
	// The faulty FW=1 run also still beats the faulty FW=0 run outright.
	if faulty.Y[1] >= faulty.Y[0] {
		t.Errorf("under faults, FW=1 (%v) does not beat FW=0 (%v)", faulty.Y[1], faulty.Y[0])
	}
	// NetStats ride along as series so the CSV export carries them.
	for _, name := range []string{"retransmits", "dups-dropped", "giveups"} {
		s := rep.SeriesByName(name)
		if s == nil || len(s.Y) != 3 {
			t.Fatalf("missing NetStats series %q: %+v", name, rep.Series)
		}
	}
	if rep.SeriesByName("retransmits").Y[0] == 0 {
		t.Error("lossy reliable run reported zero retransmissions")
	}
	if !strings.Contains(rep.CSV(), "retransmits") {
		t.Error("CSV export missing the retransmits column")
	}
}
