package experiments

import (
	"fmt"

	"specomp/internal/perfmodel"
)

// Figure6 reproduces the paper's Figure 6: model speedup on 8 processors as
// a function of the recomputation percentage k, using the literal §4
// instantiation. Speculation beats the (k-independent) no-speculation
// baseline until k crosses a threshold in the neighbourhood of the paper's
// "less than 10%".
func Figure6() Report {
	rep := Report{
		ID:    "fig6",
		Title: "model speedup on 8 processors vs recomputation % k",
	}
	const p = 8
	m := perfmodel.Section4Params()
	base := m.SpeedupNoSpec(p)
	spec := Series{Name: "spec"}
	noSpec := Series{Name: "no-spec"}
	cross := -1.0
	for k := 0.0; k <= 0.20001; k += 0.01 {
		mm := m
		mm.K = k
		s := mm.SpeedupSpec(p)
		spec.X, spec.Y = append(spec.X, k*100), append(spec.Y, s)
		noSpec.X, noSpec.Y = append(noSpec.X, k*100), append(noSpec.Y, base)
		if cross < 0 && s < base {
			cross = k
		}
	}
	rep.Series = []Series{spec, noSpec}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("no-spec speedup on %d processors: %.3f", p, base),
		fmt.Sprintf("speculation loses beyond k ≈ %.0f%% (paper: gain for errors < 10%%)", cross*100),
	)
	return rep
}
