package experiments

import (
	"fmt"
	"math"

	"specomp/internal/core"
	"specomp/internal/nbody"
	"specomp/internal/perfmodel"
)

// Figure9 reproduces the paper's Figure 9: the §4 performance model,
// parameterized from the N-body implementation's per-variable costs and the
// measured network behaviour, overlaid on the measured (simulated) speedups
// with and without speculation. The paper reports model error within 10%
// for ≤8 processors and within ~25% beyond.
func Figure9(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "fig9",
		Title: fmt.Sprintf("model vs measured speedup (N=%d, θ=%g)", cfg.N, cfg.Theta),
	}
	serial, err := cfg.SerialTime()
	if err != nil {
		return rep, err
	}

	caps := make([]float64, cfg.MaxProcs)
	for i, m := range cfg.machines() {
		caps[i] = m.Ops
	}
	model := perfmodel.Params{
		N:     cfg.N,
		FComp: nbody.PairOps * float64(cfg.N), // per-variable: N pair forces
		FSpec: nbody.SpecOpsPerParticle,
		// eq.-11 checking costs a per-remote part plus a per-(remote, local)
		// pair part that scales with each processor's own allocation.
		FCheck:            nbody.CheckOpsPerRemote,
		FCheckPerLocalVar: nbody.CheckOpsPerPair,
		Caps:              caps,
		TComm:             cfg.modelTComm(),
		K:                 0.02,
	}
	if err := model.Validate(); err != nil {
		return rep, err
	}

	measuredNo := Series{Name: "measured FW=0"}
	measuredSp := Series{Name: "measured FW=1"}
	modelNo := Series{Name: "model no-spec"}
	modelSp := Series{Name: "model spec"}
	var worstSmall, worstLarge float64
	for p := 1; p <= cfg.MaxProcs; p++ {
		r0, err := cfg.Run(p, 0, cfg.Theta, nil)
		if err != nil {
			return rep, err
		}
		r1, err := cfg.Run(p, 1, cfg.Theta, nil)
		if err != nil {
			return rep, err
		}
		m0 := serial / core.TotalTime(r0)
		m1 := serial / core.TotalTime(r1)
		p0 := model.SpeedupNoSpec(p)
		p1 := model.SpeedupSpec(p)
		x := float64(p)
		measuredNo.X, measuredNo.Y = append(measuredNo.X, x), append(measuredNo.Y, m0)
		measuredSp.X, measuredSp.Y = append(measuredSp.X, x), append(measuredSp.Y, m1)
		modelNo.X, modelNo.Y = append(modelNo.X, x), append(modelNo.Y, p0)
		modelSp.X, modelSp.Y = append(modelSp.X, x), append(modelSp.Y, p1)
		err0 := math.Abs(p0-m0) / m0
		err1 := math.Abs(p1-m1) / m1
		worst := math.Max(err0, err1)
		if p <= 8 && worst > worstSmall {
			worstSmall = worst
		}
		if p > 8 && worst > worstLarge {
			worstLarge = worst
		}
	}
	rep.Series = []Series{measuredNo, measuredSp, modelNo, modelSp}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("worst model error: %.1f%% for p<=8, %.1f%% for p>8 (paper: <10%% and ~25%%)",
			worstSmall*100, worstLarge*100))
	return rep, nil
}

// modelTComm estimates the per-iteration communication time analytically
// from the shared-bus parameters: p(p−1) messages serialize on the bus, each
// occupying overhead + bytes/bandwidth, plus the expected contribution of
// heavy-tailed delay spikes to the last arrival.
func (cfg NBodyConfig) modelTComm() func(p int) float64 {
	return func(p int) float64 {
		if p <= 1 {
			return 0
		}
		msgs := float64(p * (p - 1))
		bytes := float64(p-1) * (float64(cfg.N)*nbody.Floats*8 + 64*float64(p))
		base := msgs*cfg.BusOverhead + bytes/cfg.BusBandwidth + cfg.HostOverhead
		if cfg.SpikeProb > 0 {
			// Probability at least one of the iteration's messages spikes,
			// times the mean spike size.
			pAny := 1 - math.Pow(1-cfg.SpikeProb, msgs)
			base += pAny * (cfg.SpikeMin + cfg.SpikeMax) / 2
		}
		return base
	}
}
