package experiments

import (
	"fmt"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/predict"
	"specomp/internal/trace"
)

// scenarioApp is the minimal two-processor application used for the
// timeline figures: each processor owns one variable that stays constant,
// so a zero-order speculation is perfect. With forceBad set, every check is
// declared out of tolerance and a full recomputation is charged — the
// paper's "speculated values found unacceptable" case (Figure 2c).
type scenarioApp struct {
	pid        int
	computeOps float64
	forceBad   bool
}

func (a *scenarioApp) InitLocal() []float64 { return []float64{float64(a.pid + 1)} }

func (a *scenarioApp) Compute(view [][]float64, t int) []float64 {
	// The value is intentionally a fixed point: x(t+1) = x(t).
	out := make([]float64, len(view[a.pid]))
	copy(out, view[a.pid])
	return out
}

func (a *scenarioApp) ComputeOps() float64 { return a.computeOps }

func (a *scenarioApp) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	if a.forceBad {
		// A deliberately non-trivial checking cost (~0.3 s at 1000 ops/s):
		// in Figure 2c the rejected speculation pays for checking AND a full
		// recomputation, ending up strictly slower than never speculating.
		return core.CheckResult{Bad: len(act), Total: len(act), Ops: 300}
	}
	return core.RelErrCheck(1e-9, 1, pred, act)
}

func (a *scenarioApp) RepairOps(r core.CheckResult) float64 {
	// Full recomputation, as in Figure 2c.
	return a.computeOps
}

// timelineRun executes the two-processor scenario and returns the recorded
// trace and total time.
func timelineRun(net netmodel.Model, cfg core.Config, forceBad bool) (*trace.Recorder, float64, error) {
	rec := &trace.Recorder{}
	results, err := core.RunCluster(
		cluster.Config{
			Machines: cluster.UniformMachines(2, 1000),
			Net:      net,
			OnSpan:   rec.Hook(),
		},
		cfg,
		func(p *cluster.Proc) core.App {
			return &scenarioApp{pid: p.ID(), computeOps: 1000, forceBad: forceBad}
		})
	if err != nil {
		return nil, 0, err
	}
	return rec, core.TotalTime(results), nil
}

// Figure2 reproduces the paper's Figure 2: execution timelines of a
// two-processor synchronous iterative algorithm over a slow channel,
// (a) without speculation, (b) with speculation and every value acceptable,
// and (c) with speculation and every value rejected. The reported times
// satisfy T_spec_good < T_no_spec < T_spec_nogood.
func Figure2() (Report, error) {
	rep, _, err := Figure2Traced()
	return rep, err
}

// Figure2Traced is Figure2 but also returns the three scenario recorders so
// callers (timeline -trace-out) can export them as Chrome trace tracks.
func Figure2Traced() (Report, []trace.NamedRecorder, error) {
	rep := Report{ID: "fig2", Title: "timelines: blocking vs speculation (good / no good)"}
	const iters = 5
	net := func() netmodel.Model { return netmodel.Fixed{D: 2.5} } // latency > 1s compute
	base := core.Config{MaxIter: iters, Predictor: predict.ZeroOrder{}}

	noSpec := base
	noSpec.FW = 0
	recA, tA, err := timelineRun(net(), noSpec, false)
	if err != nil {
		return rep, nil, err
	}
	specGood := base
	specGood.FW = 1
	recB, tB, err := timelineRun(net(), specGood, false)
	if err != nil {
		return rep, nil, err
	}
	specBad := base
	specBad.FW = 1
	recC, tC, err := timelineRun(net(), specBad, true)
	if err != nil {
		return rep, nil, err
	}

	horizon := tC // common scale across the three diagrams
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("T_no_spec=%.2fs  T_spec_good=%.2fs  T_spec_nogood=%.2fs (%d iterations)", tA, tB, tC, iters),
		"(the first speculative iteration blocks: no history exists yet)",
		"",
		"(a) no speculation:")
	rep.Lines = append(rep.Lines, splitLines(recA.Gantt(2, 72, horizon))...)
	rep.Lines = append(rep.Lines, "(b) speculation, all values acceptable:")
	rep.Lines = append(rep.Lines, splitLines(recB.Gantt(2, 72, horizon))...)
	rep.Lines = append(rep.Lines, "(c) speculation, all values rejected (recompute):")
	rep.Lines = append(rep.Lines, splitLines(recC.Gantt(2, 72, horizon))...)
	rep.Series = []Series{{
		Name: "totals",
		X:    []float64{0, 1, 2}, // a, b, c
		Y:    []float64{tA, tB, tC},
	}}
	recs := []trace.NamedRecorder{
		{Name: "fig2a no-spec", Rec: recA},
		{Name: "fig2b spec-good", Rec: recB},
		{Name: "fig2c spec-nogood", Rec: recC},
	}
	return rep, recs, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
