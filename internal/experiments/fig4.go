package experiments

import (
	"fmt"

	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/predict"
	"specomp/internal/trace"
)

// Figure4 reproduces the paper's Figure 4: the effect of the forward window
// when one communication path suffers an excessive but transient delay. A
// larger FW lets the processor speculate further ahead and ride through the
// spike, so T(FW=2) ≤ T(FW=1) ≤ T(FW=0).
func Figure4() (Report, error) {
	rep, _, err := Figure4Traced()
	return rep, err
}

// Figure4Traced is Figure4 but also returns one recorder per forward-window
// setting so callers (timeline -trace-out) can export them as Chrome trace
// tracks.
func Figure4Traced() (Report, []trace.NamedRecorder, error) {
	rep := Report{ID: "fig4", Title: "forward windows under a transient delay on one path"}
	const iters = 8
	mkNet := func() netmodel.Model {
		// The spike window starts after a couple of iterations so the
		// receiving processor has speculation history to ride on (the very
		// first iteration always blocks — nothing to extrapolate from).
		return netmodel.TransientSpike{
			Inner: netmodel.Fixed{D: 0.4},
			Src:   0, Dst: 1, // the paper's delayed P1→P2 message
			From: 2.0, Until: 3.3,
			Extra: 4.0,
		}
	}
	totals := Series{Name: "total-time"}
	var recs []trace.NamedRecorder
	for _, fw := range []int{0, 1, 2} {
		cfg := core.Config{FW: fw, MaxIter: iters, Predictor: predict.ZeroOrder{}}
		rec, total, err := timelineRun(mkNet(), cfg, false)
		if err != nil {
			return rep, nil, err
		}
		totals.X = append(totals.X, float64(fw))
		totals.Y = append(totals.Y, total)
		rep.Lines = append(rep.Lines, fmt.Sprintf("FW=%d: total %.2fs", fw, total))
		rep.Lines = append(rep.Lines, splitLines(rec.Gantt(2, 72, 0))...)
		recs = append(recs, trace.NamedRecorder{Name: fmt.Sprintf("fig4 FW=%d", fw), Rec: rec})
	}
	rep.Series = []Series{totals}
	if !(totals.Y[2] <= totals.Y[1] && totals.Y[1] <= totals.Y[0]) {
		rep.Lines = append(rep.Lines, "WARNING: expected T(FW2) <= T(FW1) <= T(FW0)")
	}
	return rep, recs, nil
}
