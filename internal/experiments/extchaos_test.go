package experiments

import (
	"errors"
	"strings"
	"testing"

	"specomp/internal/apps/jacobi"
	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
	"specomp/internal/simtime"
)

func TestExtChaosAllAppsRecover(t *testing.T) {
	rep, err := ExtChaos(QuickNBody())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) > 0 {
		t.Fatalf("chaos soak reported failures:\n%s", strings.Join(rep.Failures, "\n"))
	}
	// One decay series per application, values inside [0, 1].
	for _, name := range []string{"heat", "jacobi", "pagerank", "sor", "nbody"} {
		s := rep.SeriesByName(name)
		if s == nil || len(s.Y) == 0 {
			t.Errorf("missing post-crash decay series for %s", name)
			continue
		}
		for i, v := range s.Y {
			if v < 0 || v > 1 {
				t.Errorf("%s decay[%d] = %g outside [0, 1]", name, i, v)
			}
		}
	}
	if !strings.Contains(rep.CSV(), "nbody") {
		t.Error("CSV export missing the decay columns")
	}
	// Every per-app line carries the crash accounting the harness promises.
	rows := 0
	for _, l := range rep.Lines {
		for _, name := range []string{"heat", "jacobi", "pagerank", "sor", "nbody"} {
			if strings.HasPrefix(l, name) {
				rows++
			}
		}
	}
	if rows != 5 {
		t.Errorf("expected 5 application rows, got %d:\n%s", rows, strings.Join(rep.Lines, "\n"))
	}
}

// TestGiveUpDegradesNotDeadlocks pins the graceful-degradation contract of
// the reliable layer's bounded retries: a partition long enough to exhaust
// MaxRetries makes senders abandon messages (GiveUps > 0), and the engine
// rides it out — overrunning the forward window on speculation and healing
// the abandoned payloads through the rejoin/refill path — instead of
// deadlocking on a message that will never be retransmitted again.
func TestGiveUpDegradesNotDeadlocks(t *testing.T) {
	prob := jacobi.NewDiagonallyDominant(120, 7)
	machines := cluster.LinearMachines(6, 20_000, 5)
	caps := make([]float64, 6)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	blocks := jacobi.BlocksFromCounts(partition.Proportional(prob.N, caps))
	run := func(net netmodel.Model) ([]core.Result, error) {
		return core.RunCluster(
			cluster.Config{Machines: machines, Net: net, Reliable: true,
				RetryTimeout: 0.5, MaxRetries: 3, Horizon: 600},
			core.Config{FW: 1, MaxIter: 40, Deadline: 2, MaxOverrun: 4,
				CheckpointEvery: 5, CheckpointStore: checkpoint.NewMemStore(), RejoinRetry: 5},
			func(p *cluster.Proc) core.App { return jacobi.NewApp(prob, blocks, p.ID(), 1e-4) })
	}
	base, err := run(netmodel.Fixed{D: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	T := core.TotalTime(base)

	// Processor 2 straggles (its acks and data crawl), then a hard partition
	// cuts its outbound entirely: peers' retransmissions toward it go
	// unacknowledged and are abandoned, and its own data must be refilled.
	faulty := faults.Partition{
		Inner: faults.Straggler{
			Inner: netmodel.Fixed{D: 0.4},
			Proc:  2, From: 0.25 * T, Until: 0.35 * T, Extra: 3,
		},
		Src: 2, Dst: -1, From: 0.35 * T, Until: 0.55 * T,
	}
	results, err := run(faulty)
	if errors.Is(err, simtime.ErrDeadlock) || errors.Is(err, simtime.ErrHorizon) {
		t.Fatalf("run deadlocked instead of degrading: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	agg := core.Aggregate(results)
	if agg.GiveUps == 0 {
		t.Error("partition did not exhaust MaxRetries: GiveUps = 0")
	}
	if agg.Overruns == 0 {
		t.Error("engine never overran the forward window: degradation path unused")
	}
	if d := core.MaxAbsErr(flatFinals(results), flatFinals(base)); d > 1e-6 {
		t.Errorf("degraded run diverged from fault-free baseline: maxerr %g", d)
	}
}
