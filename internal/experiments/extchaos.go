package experiments

import (
	"errors"
	"fmt"

	"specomp/internal/apps/heat"
	"specomp/internal/apps/jacobi"
	"specomp/internal/apps/pagerank"
	"specomp/internal/apps/sor"
	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/nbody"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
	"specomp/internal/partition"
	"specomp/internal/simtime"
)

// ChaosCrashes is the minimum number of crashes each chaos soak run injects.
const ChaosCrashes = 2

// chaosRun carries the per-run plumbing the soak harness threads into each
// application driver: the crash schedule, the crash-surviving checkpoint
// store, the journal that feeds the error-decay series, and the virtual-time
// ceiling that turns a recovery deadlock into a clean failure.
type chaosRun struct {
	crashes faults.CrashSchedule
	store   checkpoint.Store
	journal *obs.Journal
	horizon float64
	obs     *obs.Registry
}

// clusterConfig merges the soak plumbing into an application's base cluster
// configuration. Every chaos target runs over reliable delivery — crash
// recovery is built on retransmission and epoch filtering.
func (x chaosRun) clusterConfig(cc cluster.Config) cluster.Config {
	cc.Reliable = true
	cc.Crashes = x.crashes
	cc.Journal = x.journal
	cc.Horizon = x.horizon
	cc.Metrics = x.obs
	return cc
}

// engineConfig merges the soak plumbing into an application's base engine
// configuration: frequent cheap checkpoints, and a deepened overrun budget so
// survivors bridge an outage on speculation instead of stalling behind it.
func (x chaosRun) engineConfig(ec core.Config) core.Config {
	ec.CheckpointEvery = 5
	ec.CheckpointStore = x.store
	ec.CheckpointOps = 100
	ec.MaxCrashOverrun = 8
	ec.Journal = x.journal
	ec.Metrics = x.obs
	return ec
}

// chaosTarget is one application in the soak matrix. run executes the app
// under the given plumbing; tol bounds the final-state divergence from the
// fault-free baseline that recovery is allowed to leave behind.
type chaosTarget struct {
	name  string
	procs int
	tol   float64
	run   func(x chaosRun) ([]core.Result, error)
}

// chaosTargets builds the soak matrix: every application in the repository,
// each at a modest size so the full matrix stays test-suite friendly.
// Convergence-based stopping is disabled everywhere (apps run to MaxIter):
// a catch-up gap makes early-stop decisions diverge across processors, so a
// fixed iteration count is the only apples-to-apples comparison.
func chaosTargets(cfg NBodyConfig) []chaosTarget {
	uniformBlocks := func(rows, p int, ops float64) ([][2]int, []cluster.Machine) {
		machines := cluster.UniformMachines(p, ops)
		caps := make([]float64, p)
		for i := range caps {
			caps[i] = ops
		}
		counts := partition.Proportional(rows, caps)
		blocks := make([][2]int, p)
		lo := 0
		for i, c := range counts {
			blocks[i] = [2]int{lo, lo + c}
			lo += c
		}
		return blocks, machines
	}
	// Tolerances are θ-scale, calibrated to each app's value range: a crash
	// shifts message timing, which flips which iterations consumed an actual
	// versus an accepted sub-θ prediction, and those differences persist —
	// the same approximation class as fault-free speculation, not a recovery
	// defect. Deadline > 0 targets additionally exercise the bridging path
	// (survivors overrun the forward window while a peer is down); N-body
	// runs with Deadline = 0 — blocking recovery — because its chaotic
	// dynamics amplify any contamination, and the blocking replay is
	// deterministic enough to demand near-exact agreement.
	return []chaosTarget{
		{name: "heat", procs: 4, tol: 5e-3, run: func(x chaosRun) ([]core.Result, error) {
			g := heat.DefaultGrid(32, 16)
			blocks, machines := uniformBlocks(g.Rows, 4, 50_000)
			return core.RunCluster(
				x.clusterConfig(cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.02}, RetryTimeout: 0.5}),
				x.engineConfig(core.Config{FW: 1, MaxIter: 120, Deadline: 0.3}),
				func(p *cluster.Proc) core.App { return heat.NewApp(g, blocks, p.ID(), 1e-3) })
		}},
		{name: "jacobi", procs: 6, tol: 1e-9, run: func(x chaosRun) ([]core.Result, error) {
			prob := jacobi.NewDiagonallyDominant(120, 7)
			machines := cluster.LinearMachines(6, 20_000, 5)
			caps := make([]float64, 6)
			for i, m := range machines {
				caps[i] = m.Ops
			}
			blocks := jacobi.BlocksFromCounts(partition.Proportional(prob.N, caps))
			return core.RunCluster(
				x.clusterConfig(cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.4}, RetryTimeout: 2}),
				x.engineConfig(core.Config{FW: 1, MaxIter: 60, Deadline: 3}),
				func(p *cluster.Proc) core.App { return jacobi.NewApp(prob, blocks, p.ID(), 1e-4) })
		}},
		{name: "pagerank", procs: 4, tol: 1e-9, run: func(x chaosRun) ([]core.Result, error) {
			g := pagerank.NewRandomGraph(400, 8, cfg.Seed)
			prob := pagerank.NewProblem(g, 0.85)
			blocks, machines := uniformBlocks(g.N, 4, 40_000)
			return core.RunCluster(
				x.clusterConfig(cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.05}, RetryTimeout: 0.5}),
				x.engineConfig(core.Config{FW: 1, MaxIter: 60, Deadline: 0.5}),
				func(p *cluster.Proc) core.App { return pagerank.NewApp(prob, blocks, p.ID(), 0.05) })
		}},
		{name: "sor", procs: 4, tol: 0.2, run: func(x chaosRun) ([]core.Result, error) {
			// Grid values are O(100), so the θ=1e-3 relative check budget
			// admits ~0.1 absolute per-element drift.
			g := sor.DefaultGrid(32, 16)
			blocks, machines := uniformBlocks(g.Rows, 4, 10_000)
			return core.RunCluster(
				x.clusterConfig(cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.05}, RetryTimeout: 0.5}),
				x.engineConfig(core.Config{FW: 1, BW: 3, MaxIter: 100, Deadline: 0.8}),
				func(p *cluster.Proc) core.App { return sor.NewApp(g, blocks, p.ID(), 1e-3) })
		}},
		{name: "nbody", procs: 4, tol: 1e-9, run: func(x chaosRun) ([]core.Result, error) {
			const n = 96
			machines := cluster.UniformMachines(4, 60_000)
			caps := []float64{60_000, 60_000, 60_000, 60_000}
			counts := partition.Proportional(n, caps)
			ic := cfg.IC
			if ic == nil {
				ic = nbody.UniformSphere
			}
			blocks := nbody.SplitParticles(ic(n, cfg.Seed), counts)
			sim := nbody.DefaultSim()
			if cfg.Dt > 0 {
				sim.Dt = cfg.Dt
			}
			return core.RunCluster(
				x.clusterConfig(cluster.Config{Machines: machines,
					Net: &netmodel.SharedBus{Overhead: 0.01, BytesPerSec: 1.25e6}, Seed: cfg.Seed, RetryTimeout: 2}),
				x.engineConfig(core.Config{FW: 1, MaxIter: 30}),
				func(p *cluster.Proc) core.App {
					return nbody.NewApp(sim, blocks[p.ID()], n, p.ID(), cfg.Theta, nil)
				})
		}},
	}
}

// ExtChaos is the chaos soak: every application runs twice, once fault-free
// and once with randomly scheduled processor crashes (checkpoint + rejoin
// recovery enabled), and the harness asserts the recovered run converges to
// the fault-free final state within tolerance and inside a bounded virtual
// time. The per-app series plot the post-crash prediction-error decay: after
// a processor rejoins, how quickly its peers' validations of it return to
// clean — the recovery-time analogue of the paper's speculation-error decay.
func ExtChaos(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-chaos",
		Title: fmt.Sprintf("chaos soak: crash/restart recovery across applications, seed=%d (extension)", cfg.Seed),
	}
	rep.Lines = append(rep.Lines, fmt.Sprintf("%-10s %12s %12s %8s %6s %9s %8s %9s %11s",
		"app", "baseline(s)", "chaos(s)", "crashes", "down%", "restores", "ckpts", "catchup", "maxerr"))

	for i, tgt := range chaosTargets(cfg) {
		fail := func(format string, a ...any) {
			rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %s", tgt.name, fmt.Sprintf(format, a...)))
		}
		base, err := tgt.run(chaosRun{store: checkpoint.NewMemStore(), obs: cfg.Obs})
		if err != nil {
			return rep, fmt.Errorf("%s baseline: %w", tgt.name, err)
		}
		T := core.TotalTime(base)

		// Crashes land in the middle 15–70% of the baseline's span: late
		// enough that there is state worth recovering, early enough that no
		// processor crashes after its peers have already finished (a rejoin
		// request with nobody left to serve it cannot complete).
		sched := faults.Chaos(cfg.Seed+int64(i), tgt.procs, ChaosCrashes,
			0.15*T, 0.70*T, 0.03*T, 0.10*T)
		jr := obs.NewJournal()
		horizon := 6*T + sched.TotalDowntime(-1)
		chaos, err := tgt.run(chaosRun{
			crashes: sched, store: checkpoint.NewMemStore(), journal: jr,
			horizon: horizon, obs: cfg.Obs,
		})
		if err != nil {
			if errors.Is(err, simtime.ErrHorizon) || errors.Is(err, simtime.ErrDeadlock) {
				fail("did not finish within %.0fs of virtual time (recovery stalled): %v", horizon, err)
				continue
			}
			return rep, fmt.Errorf("%s chaos: %w", tgt.name, err)
		}

		// Per-processor Stats only survive a processor's final incarnation, so
		// lifecycle accounting comes from the journal, which sees them all.
		crashes := jr.Count(obs.EvCrash)
		restores := jr.Count(obs.EvRestore)
		catchup := 0
		for _, e := range jr.Events() {
			if e.Kind == obs.EvCatchup {
				catchup += int(e.V)
			}
		}
		agg := core.Aggregate(chaos)
		maxerr := core.MaxAbsErr(flatFinals(chaos), flatFinals(base))
		rep.Lines = append(rep.Lines, fmt.Sprintf("%-10s %12.2f %12.2f %8d %5.1f%% %9d %8d %9d %11.2e",
			tgt.name, T, core.TotalTime(chaos), crashes, 100*agg.DowntimeSec/T,
			restores, jr.Count(obs.EvCheckpoint), catchup, maxerr))

		if crashes < ChaosCrashes {
			fail("only %d crashes injected, want >= %d", crashes, ChaosCrashes)
		}
		if restarts := jr.Count(obs.EvRestart); restarts < crashes {
			fail("%d crashes but only %d restarts", crashes, restarts)
		}
		if restores == 0 {
			fail("no checkpoint restores despite %d crashes", crashes)
		}
		if maxerr > tgt.tol {
			fail("recovered run diverged from fault-free baseline: maxerr %.2e > tol %.2e", maxerr, tgt.tol)
		}
		if s := decaySeries(tgt.name, jr); len(s.X) > 0 {
			rep.Series = append(rep.Series, s)
		}
	}
	if len(rep.Failures) == 0 {
		rep.Lines = append(rep.Lines, "all applications recovered to within tolerance of the fault-free baseline")
	}
	return rep, nil
}

// flatFinals concatenates the per-processor final blocks in processor order.
func flatFinals(results []core.Result) []float64 {
	var out []float64
	for _, r := range results {
		out = append(out, r.Final...)
	}
	return out
}

// decaySeries extracts the post-crash prediction-error decay from a run's
// journal: for every restart of processor p, the unit-bad fractions of the
// validations of p's data that follow it, averaged across crashes by
// position. X is the validation's index after the restart, Y the mean
// unit-bad fraction — a decaying Y is recovery visibly completing.
func decaySeries(name string, jr *obs.Journal) Series {
	type restart struct {
		proc int
		t    float64
	}
	var restarts []restart
	events := jr.Events()
	for _, e := range events {
		if e.Kind == obs.EvRestart {
			restarts = append(restarts, restart{proc: e.Proc, t: e.T})
		}
	}
	const window = 32
	sums := make([]float64, 0, window)
	counts := make([]int, 0, window)
	for _, r := range restarts {
		idx := 0
		for _, e := range events {
			if idx >= window {
				break
			}
			if e.Kind != obs.EvSpecChecked || e.Peer != r.proc || e.T < r.t {
				continue
			}
			if idx >= len(sums) {
				sums = append(sums, 0)
				counts = append(counts, 0)
			}
			sums[idx] += e.V
			counts[idx]++
			idx++
		}
	}
	s := Series{Name: name}
	for i := range sums {
		if counts[i] == 0 {
			continue
		}
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, sums[i]/float64(counts[i]))
	}
	return s
}
