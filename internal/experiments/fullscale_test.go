package experiments

import (
	"math"
	"testing"
)

// These tests run the paper-scale configuration (N=1000, 16 machines) and
// pin the headline reproduction numbers to the paper's bands. They take on
// the order of a minute; `go test -short` skips them.

func TestFullScaleTable2Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	cfg := DefaultNBody()
	_, rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compute per iteration calibrated to the paper's 5.83 s (±10%).
	for _, r := range rows {
		if r.Computation < 5.2 || r.Computation > 6.4 {
			t.Errorf("FW=%d compute %.2f s/iter outside 5.83±10%%", r.FW, r.Computation)
		}
	}
	// Blocking communication share ≈ 40-60% of total (paper: 45%).
	share := rows[0].Comm / rows[0].Total
	if share < 0.3 || share > 0.6 {
		t.Errorf("FW=0 comm share %.2f outside [0.3, 0.6]", share)
	}
	// Speculation slashes blocked time and improves totals.
	if rows[1].Comm > rows[0].Comm*0.5 {
		t.Errorf("FW=1 comm %.2f not well below FW=0 %.2f", rows[1].Comm, rows[0].Comm)
	}
	gain1 := rows[0].Total/rows[1].Total - 1
	if gain1 < 0.15 || gain1 > 0.6 {
		t.Errorf("FW=1 gain %.0f%% outside the paper band [15%%, 60%%]", gain1*100)
	}
}

func TestFullScaleTable3Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	cfg := DefaultNBody()
	_, rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// θ=0.01 row: paper reports 2% incorrect / 2% max force error.
	var row001 Table3Row
	for _, r := range rows {
		if r.Theta == 0.01 {
			row001 = r
		}
	}
	if row001.IncorrectPct < 0.5 || row001.IncorrectPct > 8 {
		t.Errorf("θ=0.01 incorrect %.2f%% outside [0.5, 8] (paper: 2%%)", row001.IncorrectPct)
	}
	if row001.MaxForceErr < 0.5 || row001.MaxForceErr > 4 {
		t.Errorf("θ=0.01 max force err %.2f%% outside [0.5, 4] (paper: 2%%)", row001.MaxForceErr)
	}
	// Monotonicity across the sweep.
	for i := 1; i < len(rows); i++ {
		if rows[i].IncorrectPct < rows[i-1].IncorrectPct-1e-9 {
			t.Errorf("incorrect%% not monotone: %+v", rows)
		}
		if rows[i].MaxForceErr > rows[i-1].MaxForceErr+1e-9 {
			t.Errorf("force error not decreasing as θ tightens: %+v", rows)
		}
	}
}

func TestFullScaleFigure9Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	cfg := DefaultNBody()
	rep, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mNo := rep.SeriesByName("measured FW=0")
	pNo := rep.SeriesByName("model no-spec")
	mSp := rep.SeriesByName("measured FW=1")
	pSp := rep.SeriesByName("model spec")
	var worstSmall, worstLarge float64
	for i := range mNo.Y {
		e := math.Max(
			math.Abs(pNo.Y[i]-mNo.Y[i])/mNo.Y[i],
			math.Abs(pSp.Y[i]-mSp.Y[i])/mSp.Y[i])
		if i+1 <= 8 {
			worstSmall = math.Max(worstSmall, e)
		} else {
			worstLarge = math.Max(worstLarge, e)
		}
	}
	// Paper: within 10% for p<=8, ~25% beyond. Allow modest headroom.
	if worstSmall > 0.15 {
		t.Errorf("model error %.1f%% for p<=8, paper band ~10%%", worstSmall*100)
	}
	if worstLarge > 0.35 {
		t.Errorf("model error %.1f%% for p>8, paper band ~25%%", worstLarge*100)
	}
}
