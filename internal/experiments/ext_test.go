package experiments

import "testing"

func TestExtForwardWindowsSaturates(t *testing.T) {
	cfg := QuickNBody()
	rep, err := ExtForwardWindows(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.SeriesByName("measured")
	model := rep.SeriesByName("model")
	if m == nil || model == nil || len(m.Y) != 5 {
		t.Fatalf("bad series: %+v", rep.Series)
	}
	// FW=0 is the unit baseline; FW>=1 should beat it.
	if m.Y[0] != 1 {
		t.Errorf("baseline speedup = %v", m.Y[0])
	}
	if m.Y[1] <= 1.05 {
		t.Errorf("FW=1 measured speedup %v, want > 1.05", m.Y[1])
	}
	// The model is monotone non-decreasing in FW.
	for i := 2; i < len(model.Y); i++ {
		if model.Y[i] < model.Y[i-1]-1e-9 {
			t.Errorf("model not monotone at FW=%d: %v", i, model.Y)
		}
	}
}

func TestExtPredictorsRanksVelocityMethodsAhead(t *testing.T) {
	cfg := QuickNBody()
	rep, err := ExtPredictors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := rep.SeriesByName("bad-frac")
	if bad == nil || len(bad.Y) < 6 {
		t.Fatalf("missing bad-frac series")
	}
	zero, linear := bad.Y[0], bad.Y[1]
	// Zero-order (ignore motion) must fail checks at least as often as
	// linear extrapolation on a particle workload.
	if linear > zero+1e-9 {
		t.Errorf("linear bad-frac %v above zero-order %v", linear, zero)
	}
	times := rep.SeriesByName("total-simsec")
	for i, v := range times.Y {
		if v <= 0 {
			t.Errorf("predictor %d: non-positive time", i)
		}
	}
}

func TestExtBaselinesOrdering(t *testing.T) {
	cfg := QuickNBody()
	rep, err := ExtBaselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.SeriesByName("total-simsec")
	if s == nil || len(s.Y) != 3 {
		t.Fatalf("missing totals")
	}
	tB, tS, tA := s.Y[0], s.Y[1], s.Y[2]
	if !(tS < tB) {
		t.Errorf("speculative (%v) should beat blocking (%v)", tS, tB)
	}
	if !(tA < tB) {
		t.Errorf("async (%v) should beat blocking (%v)", tA, tB)
	}
}
