package experiments

import (
	"fmt"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/nbody"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

// ExtTopology studies a non-uniform network: the machines sit on two
// switches and every cross-switch message pays an extra latency (a remote
// lab, a slow uplink). The blocking algorithm serializes on the worst path
// every iteration; speculation needs to mask only as much as each peer's
// path actually costs, so its advantage grows with the cross-switch
// penalty.
func ExtTopology(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-topo",
		Title: fmt.Sprintf("two-switch topology, p=%d, N=%d (extension)", cfg.MaxProcs, cfg.N),
	}
	run := func(fw int, cross float64) (float64, error) {
		p := cfg.MaxProcs
		ms := cfg.machines()[:p]
		caps := make([]float64, p)
		for i, m := range ms {
			caps[i] = m.Ops
		}
		counts := partition.Proportional(cfg.N, caps)
		ic := cfg.IC
		if ic == nil {
			ic = nbody.UniformSphere
		}
		blocks := nbody.SplitParticles(ic(cfg.N, cfg.Seed), counts)
		sim := nbody.DefaultSim()
		if cfg.Dt > 0 {
			sim.Dt = cfg.Dt
		}
		net := netmodel.PerPair{
			Inner: cfg.net(),
			Extra: netmodel.TwoSwitch(p, p/2, cross),
		}
		results, err := core.RunCluster(
			cluster.Config{Machines: ms, Net: net, Seed: cfg.Seed},
			core.Config{FW: fw, MaxIter: cfg.Iters},
			func(pr *cluster.Proc) core.App {
				return nbody.NewApp(sim, blocks[pr.ID()], cfg.N, pr.ID(), cfg.Theta, nil)
			})
		if err != nil {
			return 0, err
		}
		return core.TotalTime(results), nil
	}

	blockS := Series{Name: "blocking"}
	specS := Series{Name: "speculative"}
	for _, cross := range []float64{0, 1, 2, 4} {
		tb, err := run(0, cross)
		if err != nil {
			return rep, err
		}
		ts, err := run(1, cross)
		if err != nil {
			return rep, err
		}
		blockS.X = append(blockS.X, cross)
		blockS.Y = append(blockS.Y, tb)
		specS.X = append(specS.X, cross)
		specS.Y = append(specS.Y, ts)
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("cross-switch +%.0fs: blocking %8.2f s, speculative %8.2f s (gain %.0f%%)",
				cross, tb, ts, 100*(tb-ts)/tb))
	}
	rep.Series = []Series{blockS, specS}
	return rep, nil
}
