package experiments

import (
	"fmt"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/nbody"
	"specomp/internal/partition"
	"specomp/internal/perfmodel"
	"specomp/internal/predict"
)

// noSpeculator hides an App's Speculator implementation so the engine uses
// the configured generic predictor instead — used to compare speculation
// functions on an identical workload.
type noSpeculator struct{ core.App }

// runNBodyCustom runs the N-body workload with an arbitrary engine config
// and app wrapper.
func (cfg NBodyConfig) runNBodyCustom(p int, ecfg core.Config, wrap func(core.App) core.App, instr *nbody.Instrument) ([]core.Result, error) {
	ms := cfg.machines()[:p]
	caps := make([]float64, p)
	for i, m := range ms {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(cfg.N, caps)
	ic := cfg.IC
	if ic == nil {
		ic = nbody.UniformSphere
	}
	blocks := nbody.SplitParticles(ic(cfg.N, cfg.Seed), counts)
	sim := nbody.DefaultSim()
	if cfg.Dt > 0 {
		sim.Dt = cfg.Dt
	}
	return core.RunCluster(
		cluster.Config{Machines: ms, Net: cfg.net(), Seed: cfg.Seed},
		ecfg,
		func(pr *cluster.Proc) core.App {
			var app core.App = nbody.NewApp(sim, blocks[pr.ID()], cfg.N, pr.ID(), cfg.Theta, instr)
			if wrap != nil {
				app = wrap(app)
			}
			return app
		})
}

// ExtForwardWindows sweeps the forward window on the N-body workload and
// overlays the extended performance model's prediction (perfmodel.SpecTimeFW,
// the paper's future-work analysis). Reported as speedup over FW=0.
func ExtForwardWindows(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-fw",
		Title: fmt.Sprintf("forward-window sweep, p=%d, N=%d (extension)", cfg.MaxProcs, cfg.N),
	}
	measured := Series{Name: "measured"}
	model := Series{Name: "model"}

	caps := make([]float64, cfg.MaxProcs)
	for i, m := range cfg.machines() {
		caps[i] = m.Ops
	}
	pm := perfmodel.Params{
		N:                 cfg.N,
		FComp:             nbody.PairOps * float64(cfg.N),
		FSpec:             nbody.SpecOpsPerParticle,
		FCheck:            nbody.CheckOpsPerRemote,
		FCheckPerLocalVar: nbody.CheckOpsPerPair,
		Caps:              caps,
		TComm:             cfg.modelTComm(),
		K:                 0.02,
	}

	base := 0.0
	for fw := 0; fw <= 4; fw++ {
		results, err := cfg.Run(cfg.MaxProcs, fw, cfg.Theta, nil)
		if err != nil {
			return rep, err
		}
		total := core.TotalTime(results)
		if fw == 0 {
			base = total
		}
		measured.X = append(measured.X, float64(fw))
		measured.Y = append(measured.Y, base/total)
		var mt float64
		if fw == 0 {
			mt = pm.NoSpecTime(cfg.MaxProcs)
		} else {
			mt = pm.SpecTimeFW(cfg.MaxProcs, fw)
		}
		model.X = append(model.X, float64(fw))
		model.Y = append(model.Y, pm.NoSpecTime(cfg.MaxProcs)/mt)
	}
	rep.Series = []Series{measured, model}
	rep.Lines = append(rep.Lines,
		"speedup relative to the blocking run (FW=0) as the forward window grows;",
		"gains saturate once the communication bound t_comm/FW drops below the compute bound.")
	return rep, nil
}

// ExtPredictors compares speculation functions (backward-window study) on
// the N-body workload with the app's built-in velocity extrapolation
// disabled, reporting run time and failed-check fraction per predictor.
func ExtPredictors(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-bw",
		Title: fmt.Sprintf("speculation-function comparison, p=%d, N=%d (extension)", cfg.MaxProcs, cfg.N),
	}
	preds := []predict.Predictor{
		predict.ZeroOrder{},
		predict.Linear{},
		predict.Damped{Alpha: 0.7},
		predict.WeightedSum{Weights: []float64{1.5, -0.25, -0.25}},
		predict.Polynomial{Order: 2},
		predict.Holt{Alpha: 0.6, Beta: 0.4, BW: 4},
	}
	times := Series{Name: "total-simsec"}
	badFrac := Series{Name: "bad-frac"}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("%-24s %6s %12s %12s", "predictor", "BW", "time(s)", "bad-pairs%"))
	for i, p := range preds {
		results, err := cfg.runNBodyCustom(cfg.MaxProcs,
			core.Config{FW: 1, MaxIter: cfg.Iters, Predictor: p, BW: p.Window()},
			func(app core.App) core.App { return noSpeculator{app} }, nil)
		if err != nil {
			return rep, err
		}
		agg := core.Aggregate(results)
		total := core.TotalTime(results)
		times.X = append(times.X, float64(i))
		times.Y = append(times.Y, total)
		badFrac.X = append(badFrac.X, float64(i))
		badFrac.Y = append(badFrac.Y, agg.UnitBadFraction())
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("%-24s %6d %12.2f %12.2f", p.Name(), p.Window(), total, 100*agg.UnitBadFraction()))
	}
	rep.Series = []Series{times, badFrac}
	// Also report the app's native eq.-10 velocity speculation for context.
	native, err := cfg.Run(cfg.MaxProcs, 1, cfg.Theta, nil)
	if err != nil {
		return rep, err
	}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("%-24s %6s %12.2f %12.2f", "eq.10 velocity (native)", "1",
			core.TotalTime(native), 100*core.Aggregate(native).UnitBadFraction()))
	return rep, nil
}

// ExtBaselines compares the blocking algorithm, speculative computation and
// the asynchronous-iterations baseline on the same N-body workload.
// Asynchronous iteration is wait-free but unchecked; speculation approaches
// its speed while bounding the error per iteration.
func ExtBaselines(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-async",
		Title: fmt.Sprintf("blocking vs speculative vs asynchronous, p=%d, N=%d (extension)", cfg.MaxProcs, cfg.N),
	}
	blocking, err := cfg.Run(cfg.MaxProcs, 0, cfg.Theta, nil)
	if err != nil {
		return rep, err
	}
	spec, err := cfg.Run(cfg.MaxProcs, 1, cfg.Theta, nil)
	if err != nil {
		return rep, err
	}

	ms := cfg.machines()[:cfg.MaxProcs]
	caps := make([]float64, len(ms))
	for i, m := range ms {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(cfg.N, caps)
	ic := cfg.IC
	if ic == nil {
		ic = nbody.UniformSphere
	}
	blocks := nbody.SplitParticles(ic(cfg.N, cfg.Seed), counts)
	sim := nbody.DefaultSim()
	if cfg.Dt > 0 {
		sim.Dt = cfg.Dt
	}
	async, err := core.RunAsyncCluster(
		cluster.Config{Machines: ms, Net: cfg.net(), Seed: cfg.Seed},
		core.AsyncConfig{MaxIter: cfg.Iters},
		func(pr *cluster.Proc) core.App {
			return nbody.NewApp(sim, blocks[pr.ID()], cfg.N, pr.ID(), cfg.Theta, nil)
		})
	if err != nil {
		return rep, err
	}

	tB, tS, tA := core.TotalTime(blocking), core.TotalTime(spec), core.TotalTime(async)
	rep.Series = []Series{{Name: "total-simsec", X: []float64{0, 1, 2}, Y: []float64{tB, tS, tA}}}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("blocking:     %8.2f s", tB),
		fmt.Sprintf("speculative:  %8.2f s (error-checked, bounded staleness)", tS),
		fmt.Sprintf("asynchronous: %8.2f s (wait-free, UNCHECKED staleness)", tA),
	)
	return rep, nil
}
