package experiments

import (
	"fmt"

	"specomp/internal/apps/heat"
	"specomp/internal/apps/jacobi"
	"specomp/internal/apps/sor"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

// ExtApps tests the paper's closing claim — "the technique is likely to
// yield similar performance benefits for other applications" — by running
// the blocking and speculative engines over every application in the
// repository on a comparable cluster and reporting the gain. Each app uses
// its natural problem size and speculation settings; the N-body column is
// the Quick configuration for comparability.
func ExtApps(cfg NBodyConfig) (Report, error) {
	rep := Report{
		ID:    "ext-apps",
		Title: "speculation gain across applications (extension)",
	}
	rep.Lines = append(rep.Lines,
		fmt.Sprintf("%-10s %12s %12s %8s", "app", "blocking(s)", "spec(s)", "gain%"))
	gains := Series{Name: "gain%"}
	record := func(i int, name string, tb, ts float64) {
		gains.X = append(gains.X, float64(i))
		gains.Y = append(gains.Y, 100*(tb-ts)/tb)
		rep.Lines = append(rep.Lines,
			fmt.Sprintf("%-10s %12.2f %12.2f %7.1f%%", name, tb, ts, 100*(tb-ts)/tb))
	}

	// N-body (quick scale).
	nb0, err := cfg.Run(cfg.MaxProcs, 0, cfg.Theta, nil)
	if err != nil {
		return rep, err
	}
	nb1, err := cfg.Run(cfg.MaxProcs, 1, cfg.Theta, nil)
	if err != nil {
		return rep, err
	}
	record(0, "nbody", core.TotalTime(nb0), core.TotalTime(nb1))

	// Jacobi: dense 120-unknown system on 6 machines, latency comparable
	// to a sweep.
	{
		prob := jacobi.NewDiagonallyDominant(120, 7)
		machines := cluster.LinearMachines(6, 20_000, 5)
		caps := make([]float64, 6)
		for i, m := range machines {
			caps[i] = m.Ops
		}
		blocks := jacobi.BlocksFromCounts(partition.Proportional(prob.N, caps))
		run := func(fw int) (float64, error) {
			results, err := core.RunCluster(
				cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.4}},
				core.Config{FW: fw, MaxIter: 40},
				func(p *cluster.Proc) core.App { return jacobi.NewApp(prob, blocks, p.ID(), 1e-4) })
			if err != nil {
				return 0, err
			}
			return core.TotalTime(results), nil
		}
		tb, err := run(0)
		if err != nil {
			return rep, err
		}
		ts, err := run(1)
		if err != nil {
			return rep, err
		}
		record(1, "jacobi", tb, ts)
	}

	// Heat: 32×16 strip-decomposed stencil with neighbour exchange.
	{
		g := heat.DefaultGrid(32, 16)
		machines := cluster.UniformMachines(4, 50_000)
		caps := []float64{50_000, 50_000, 50_000, 50_000}
		counts := partition.Proportional(g.Rows, caps)
		blocks := make([][2]int, 4)
		lo := 0
		for i, c := range counts {
			blocks[i] = [2]int{lo, lo + c}
			lo += c
		}
		run := func(fw int) (float64, error) {
			results, err := core.RunCluster(
				cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.02}},
				core.Config{FW: fw, MaxIter: 1000},
				func(p *cluster.Proc) core.App { return heat.NewApp(g, blocks, p.ID(), 1e-3) })
			if err != nil {
				return 0, err
			}
			return core.TotalTime(results), nil
		}
		tb, err := run(0)
		if err != nil {
			return rep, err
		}
		ts, err := run(1)
		if err != nil {
			return rep, err
		}
		record(2, "heat", tb, ts)
	}

	// SOR: 32×16 red-black half-sweeps, colour-aware speculation.
	{
		g := sor.DefaultGrid(32, 16)
		machines := cluster.UniformMachines(4, 10_000)
		caps := []float64{10_000, 10_000, 10_000, 10_000}
		counts := partition.Proportional(g.Rows, caps)
		blocks := make([][2]int, 4)
		lo := 0
		for i, c := range counts {
			blocks[i] = [2]int{lo, lo + c}
			lo += c
		}
		run := func(fw int) (float64, error) {
			results, err := core.RunCluster(
				cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.05}},
				core.Config{FW: fw, BW: 3, MaxIter: 200},
				func(p *cluster.Proc) core.App { return sor.NewApp(g, blocks, p.ID(), 1e-3) })
			if err != nil {
				return 0, err
			}
			return core.TotalTime(results), nil
		}
		tb, err := run(0)
		if err != nil {
			return rep, err
		}
		ts, err := run(1)
		if err != nil {
			return rep, err
		}
		record(3, "sor", tb, ts)
	}

	rep.Series = []Series{gains}
	rep.Lines = append(rep.Lines,
		"(pagerank is the documented counterexample — see examples/pagerank)")
	return rep, nil
}
