package netmodel

import "math/rand"

// Recorder wraps a model and logs every delay it produces, so a stochastic
// run can be replayed exactly (regression tests, debugging a rare ordering).
type Recorder struct {
	Inner Model
	Log   []float64
}

// Delay implements Model.
func (r *Recorder) Delay(msg Msg, rng *rand.Rand) float64 {
	d := r.Inner.Delay(msg, rng)
	r.Log = append(r.Log, d)
	return d
}

// Reset forwards to the wrapped model; the log is kept.
func (r *Recorder) Reset() { ResetModel(r.Inner) }

// Replay feeds back a recorded delay log in order. Once the log is
// exhausted it returns Fallback (or panics if Fallback is negative),
// making unexpected extra traffic loud.
type Replay struct {
	Log      []float64
	Fallback float64

	next int
}

// Delay implements Model.
func (r *Replay) Delay(Msg, *rand.Rand) float64 {
	if r.next < len(r.Log) {
		d := r.Log[r.next]
		r.next++
		return d
	}
	if r.Fallback < 0 {
		panic("netmodel: replay log exhausted")
	}
	return r.Fallback
}

// Reset rewinds the replay to the beginning of the log.
func (r *Replay) Reset() { r.next = 0 }
