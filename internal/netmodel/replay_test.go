package netmodel

import (
	"math/rand"
	"testing"
)

func TestRecordThenReplayReproducesDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rec := &Recorder{Inner: Jitter{Inner: Fixed{D: 1}, Frac: 0.5}}
	var original []float64
	for i := 0; i < 20; i++ {
		original = append(original, rec.Delay(Msg{Src: i % 3}, rng))
	}
	if len(rec.Log) != 20 {
		t.Fatalf("log length %d", len(rec.Log))
	}
	rep := &Replay{Log: rec.Log, Fallback: -1}
	for i, want := range original {
		if got := rep.Delay(Msg{}, nil); got != want {
			t.Fatalf("replay[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestReplayExhaustionFallback(t *testing.T) {
	rep := &Replay{Log: []float64{1}, Fallback: 9}
	rep.Delay(Msg{}, nil)
	if got := rep.Delay(Msg{}, nil); got != 9 {
		t.Errorf("fallback = %v, want 9", got)
	}
}

func TestReplayExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	rep := &Replay{Fallback: -1}
	rep.Delay(Msg{}, nil)
}

func TestReplayReset(t *testing.T) {
	rep := &Replay{Log: []float64{1, 2}, Fallback: -1}
	rep.Delay(Msg{}, nil)
	rep.Delay(Msg{}, nil)
	rep.Reset()
	if got := rep.Delay(Msg{}, nil); got != 1 {
		t.Errorf("after Reset = %v, want 1", got)
	}
}
