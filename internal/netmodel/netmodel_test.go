package netmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixed(t *testing.T) {
	m := Fixed{D: 0.5}
	if got := m.Delay(Msg{Bytes: 9999}, nil); got != 0.5 {
		t.Errorf("Delay = %g, want 0.5", got)
	}
}

func TestBandwidth(t *testing.T) {
	m := Bandwidth{Overhead: 0.01, BytesPerSec: 1000}
	if got := m.Delay(Msg{Bytes: 500}, nil); got != 0.51 {
		t.Errorf("Delay = %g, want 0.51", got)
	}
	// Zero bandwidth means overhead only.
	m2 := Bandwidth{Overhead: 0.02}
	if got := m2.Delay(Msg{Bytes: 500}, nil); got != 0.02 {
		t.Errorf("Delay = %g, want 0.02", got)
	}
}

func TestLinearP(t *testing.T) {
	m := LinearP{Base: 0.1, PerProc: 0.05}
	if got := m.Delay(Msg{Procs: 1}, nil); got != 0.1 {
		t.Errorf("p=1 Delay = %g, want 0.1", got)
	}
	if got := m.Delay(Msg{Procs: 16}, nil); got != 0.1+0.05*15 {
		t.Errorf("p=16 Delay = %g, want %g", got, 0.1+0.05*15)
	}
}

func TestSharedBusSerializes(t *testing.T) {
	m := &SharedBus{Overhead: 1, BytesPerSec: 0}
	// Three messages sent at the same instant queue behind each other.
	d1 := m.Delay(Msg{Now: 0}, nil)
	d2 := m.Delay(Msg{Now: 0}, nil)
	d3 := m.Delay(Msg{Now: 0}, nil)
	if d1 != 1 || d2 != 2 || d3 != 3 {
		t.Errorf("delays = %g %g %g, want 1 2 3", d1, d2, d3)
	}
	// After the bus drains, a later message sees no queueing.
	d4 := m.Delay(Msg{Now: 10}, nil)
	if d4 != 1 {
		t.Errorf("post-drain delay = %g, want 1", d4)
	}
}

func TestSharedBusHostOverheadNotSerialized(t *testing.T) {
	m := &SharedBus{Overhead: 1, HostOverhead: 0.5}
	d1 := m.Delay(Msg{Now: 0}, nil)
	d2 := m.Delay(Msg{Now: 0}, nil)
	if d1 != 1.5 || d2 != 2.5 {
		t.Errorf("delays = %g %g, want 1.5 2.5", d1, d2)
	}
}

func TestSharedBusReset(t *testing.T) {
	m := &SharedBus{Overhead: 1}
	m.Delay(Msg{Now: 0}, nil)
	m.Reset()
	if got := m.Delay(Msg{Now: 0}, nil); got != 1 {
		t.Errorf("after Reset delay = %g, want 1", got)
	}
}

func TestJitterBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(frac8 uint8, base8 uint8) bool {
		frac := float64(frac8%90) / 100 // [0, 0.9)
		base := 0.001 + float64(base8)/100
		m := Jitter{Inner: Fixed{D: base}, Frac: frac}
		for i := 0; i < 50; i++ {
			d := m.Delay(Msg{}, rng)
			if d < base*(1-frac)-1e-12 || d > base*(1+frac)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJitterZeroFracIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Jitter{Inner: Fixed{D: 2}, Frac: 0}
	if got := m.Delay(Msg{}, rng); got != 2 {
		t.Errorf("Delay = %g, want 2", got)
	}
}

func TestRandomSpikes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandomSpikes{Inner: Fixed{D: 1}, Prob: 0.25, ExtraMin: 5, ExtraMax: 9}
	spiked, total := 0, 2000
	for i := 0; i < total; i++ {
		d := m.Delay(Msg{}, rng)
		if d < 1 {
			t.Fatalf("delay %g below base", d)
		}
		if d > 1 {
			if d < 6 || d > 10 {
				t.Fatalf("spiked delay %g outside [6, 10]", d)
			}
			spiked++
		}
	}
	frac := float64(spiked) / float64(total)
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("spike fraction %.3f, want ~0.25", frac)
	}
	// Prob=0 is the identity.
	m0 := RandomSpikes{Inner: Fixed{D: 2}, Prob: 0}
	if got := m0.Delay(Msg{}, rng); got != 2 {
		t.Errorf("Prob=0 delay = %g, want 2", got)
	}
}

func TestTransientSpike(t *testing.T) {
	m := TransientSpike{
		Inner: Fixed{D: 1},
		Src:   0, Dst: 1,
		From: 10, Until: 20,
		Extra: 5,
	}
	cases := []struct {
		msg  Msg
		want float64
	}{
		{Msg{Src: 0, Dst: 1, Now: 15}, 6}, // in window, on path
		{Msg{Src: 0, Dst: 1, Now: 5}, 1},  // before window
		{Msg{Src: 0, Dst: 1, Now: 20}, 1}, // at window end (exclusive)
		{Msg{Src: 1, Dst: 0, Now: 15}, 1}, // wrong direction
		{Msg{Src: 0, Dst: 2, Now: 15}, 1}, // wrong destination
	}
	for i, c := range cases {
		if got := m.Delay(c.msg, nil); got != c.want {
			t.Errorf("case %d: Delay = %g, want %g", i, got, c.want)
		}
	}
}

func TestTransientSpikeWildcards(t *testing.T) {
	m := TransientSpike{Inner: Fixed{D: 1}, Src: -1, Dst: -1, From: 0, Until: 100, Extra: 2}
	if got := m.Delay(Msg{Src: 7, Dst: 3, Now: 50}, nil); got != 3 {
		t.Errorf("Delay = %g, want 3", got)
	}
}

func TestFuncAdapter(t *testing.T) {
	m := Func(func(msg Msg, _ *rand.Rand) float64 { return float64(msg.Bytes) })
	if got := m.Delay(Msg{Bytes: 42}, nil); got != 42 {
		t.Errorf("Delay = %g, want 42", got)
	}
}
