package netmodel

import "math/rand"

// PerPair assigns an extra fixed latency per (src, dst) pair on top of an
// inner model — the building block for non-uniform topologies (machines
// split across switches, a remote site behind a slow uplink).
type PerPair struct {
	Inner Model
	// Extra[src][dst] is added to every src→dst message. Missing rows or
	// columns contribute zero.
	Extra [][]float64
}

// Reset forwards to the wrapped model.
func (m PerPair) Reset() { ResetModel(m.Inner) }

// Delay implements Model.
func (m PerPair) Delay(msg Msg, rng *rand.Rand) float64 {
	d := m.Inner.Delay(msg, rng)
	if msg.Src >= 0 && msg.Src < len(m.Extra) {
		row := m.Extra[msg.Src]
		if msg.Dst >= 0 && msg.Dst < len(row) {
			d += row[msg.Dst]
		}
	}
	return d
}

// TwoSwitch builds a PerPair extra-latency matrix for p machines split into
// [0, split) and [split, p): messages within a group pay nothing extra,
// messages crossing the inter-switch link pay cross seconds.
func TwoSwitch(p, split int, cross float64) [][]float64 {
	extra := make([][]float64, p)
	for s := range extra {
		extra[s] = make([]float64, p)
		for d := range extra[s] {
			if (s < split) != (d < split) {
				extra[s][d] = cross
			}
		}
	}
	return extra
}
