// Package netmodel provides communication-delay models for the simulated
// workstation network.
//
// The paper's testbed was a shared 10 Mb/s Ethernet under PVM, where message
// latency has a fixed protocol overhead, a bandwidth term, contention with
// other traffic, and occasional large transient spikes. Each of those effects
// is available here as a composable Model.
package netmodel

import "math/rand"

// Msg describes a message for delay computation.
type Msg struct {
	Src   int     // sending processor index
	Dst   int     // receiving processor index
	Bytes int     // payload size in bytes
	Procs int     // number of processors participating in the run (p)
	Now   float64 // virtual send time in seconds
}

// Model computes the end-to-end latency of a message. Implementations may be
// stateful (e.g. a shared bus tracks when the medium frees up); a Model
// instance must not be shared between concurrent simulations.
type Model interface {
	Delay(msg Msg, rng *rand.Rand) float64
}

// FaultyModel is an optional Model extension for injectors that can lose or
// duplicate messages (see internal/faults). Deliveries returns one latency
// per delivered copy; an empty slice means the message is lost. Delay on
// such models reports the latency of a single fault-free delivery.
type FaultyModel interface {
	Model
	Deliveries(msg Msg, rng *rand.Rand) []float64
}

// DeliveriesOf returns the delivery latencies of msg under m: Deliveries when
// m is a FaultyModel, otherwise a single Delay.
func DeliveriesOf(m Model, msg Msg, rng *rand.Rand) []float64 {
	if fm, ok := m.(FaultyModel); ok {
		return fm.Deliveries(msg, rng)
	}
	return []float64{m.Delay(msg, rng)}
}

// Resettable is implemented by stateful models that can return to their
// initial state, so one model value can be reused across sequential
// simulations whose virtual clocks each restart at 0. Composable wrappers
// forward Reset to the model they wrap.
type Resettable interface{ Reset() }

// ResetModel resets m if it is stateful (directly or through wrappers).
// cluster.New calls it so a reused model starts every run fresh.
func ResetModel(m Model) {
	if r, ok := m.(Resettable); ok {
		r.Reset()
	}
}

// Func adapts a plain function to a Model.
type Func func(msg Msg, rng *rand.Rand) float64

// Delay implements Model.
func (f Func) Delay(msg Msg, rng *rand.Rand) float64 { return f(msg, rng) }

// Fixed is a constant point-to-point latency, the simplest instantiation of
// the paper's "communication time assumed constant over all processors".
type Fixed struct {
	D float64 // seconds
}

// Delay implements Model.
func (m Fixed) Delay(Msg, *rand.Rand) float64 { return m.D }

// Bandwidth models a dedicated link: fixed per-message overhead plus a
// transfer time proportional to message size.
type Bandwidth struct {
	Overhead    float64 // per-message fixed cost, seconds
	BytesPerSec float64 // link bandwidth
}

// Delay implements Model.
func (m Bandwidth) Delay(msg Msg, _ *rand.Rand) float64 {
	d := m.Overhead
	if m.BytesPerSec > 0 {
		d += float64(msg.Bytes) / m.BytesPerSec
	}
	return d
}

// LinearP reproduces the §4 model assumption that per-iteration communication
// time grows linearly with the number of processors:
//
//	delay = Base + PerProc·(p−1)
type LinearP struct {
	Base    float64
	PerProc float64
}

// Delay implements Model.
func (m LinearP) Delay(msg Msg, _ *rand.Rand) float64 {
	return m.Base + m.PerProc*float64(msg.Procs-1)
}

// SharedBus models an Ethernet-like shared medium: every message occupies the
// bus for Overhead + Bytes/BytesPerSec seconds, and messages serialize, so
// latency includes queueing behind earlier traffic. This is the contention
// the paper identifies as the main source of model error beyond 8 processors.
type SharedBus struct {
	Overhead    float64 // per-message medium occupancy overhead, seconds
	BytesPerSec float64 // bus bandwidth
	// HostOverhead is additional end-host (protocol stack) latency that does
	// not occupy the shared medium.
	HostOverhead float64

	busyUntil float64
}

// Delay implements Model.
func (m *SharedBus) Delay(msg Msg, _ *rand.Rand) float64 {
	occupancy := m.Overhead
	if m.BytesPerSec > 0 {
		occupancy += float64(msg.Bytes) / m.BytesPerSec
	}
	start := msg.Now
	if m.busyUntil > start {
		start = m.busyUntil
	}
	m.busyUntil = start + occupancy
	return m.busyUntil - msg.Now + m.HostOverhead
}

// Reset clears the bus state so the model can be reused for a fresh run.
func (m *SharedBus) Reset() { m.busyUntil = 0 }

// Jitter wraps a model and scales each delay by a factor drawn uniformly
// from [1−Frac, 1+Frac], modeling background network traffic variation.
type Jitter struct {
	Inner Model
	Frac  float64 // 0 ≤ Frac < 1
}

// Delay implements Model.
func (m Jitter) Delay(msg Msg, rng *rand.Rand) float64 {
	base := m.Inner.Delay(msg, rng)
	if m.Frac <= 0 {
		return base
	}
	return base * (1 + m.Frac*(2*rng.Float64()-1))
}

// Reset forwards to the wrapped model.
func (m Jitter) Reset() { ResetModel(m.Inner) }

// RandomSpikes wraps a model and, with probability Prob per message, adds a
// uniform extra delay in [ExtraMin, ExtraMax] — the heavy-tailed behaviour
// of a timeshared workstation network where "messages may occasionally
// experience excessive delays due to network traffic".
type RandomSpikes struct {
	Inner    Model
	Prob     float64
	ExtraMin float64
	ExtraMax float64
}

// Delay implements Model.
func (m RandomSpikes) Delay(msg Msg, rng *rand.Rand) float64 {
	d := m.Inner.Delay(msg, rng)
	if m.Prob > 0 && rng.Float64() < m.Prob {
		d += m.ExtraMin + (m.ExtraMax-m.ExtraMin)*rng.Float64()
	}
	return d
}

// Reset forwards to the wrapped model.
func (m RandomSpikes) Reset() { ResetModel(m.Inner) }

// TransientSpike wraps a model and adds Extra seconds of latency to messages
// on a given path within a time window — the "excessive but transient delay
// along one communication path" of Figure 4. Src or Dst of −1 matches any
// processor.
type TransientSpike struct {
	Inner Model
	Src   int
	Dst   int
	From  float64 // window start (inclusive)
	Until float64 // window end (exclusive)
	Extra float64
}

// Delay implements Model.
func (m TransientSpike) Delay(msg Msg, rng *rand.Rand) float64 {
	d := m.Inner.Delay(msg, rng)
	if (m.Src == -1 || msg.Src == m.Src) &&
		(m.Dst == -1 || msg.Dst == m.Dst) &&
		msg.Now >= m.From && msg.Now < m.Until {
		d += m.Extra
	}
	return d
}

// Reset forwards to the wrapped model.
func (m TransientSpike) Reset() { ResetModel(m.Inner) }
