package netmodel

import "testing"

func TestPerPairAddsExtraLatency(t *testing.T) {
	m := PerPair{
		Inner: Fixed{D: 1},
		Extra: [][]float64{{0, 2}, {3, 0}},
	}
	cases := []struct {
		src, dst int
		want     float64
	}{
		{0, 0, 1},
		{0, 1, 3},
		{1, 0, 4},
		{1, 1, 1},
		{5, 0, 1}, // out of range rows tolerated
		{0, 5, 1}, // out of range cols tolerated
	}
	for _, c := range cases {
		if got := m.Delay(Msg{Src: c.src, Dst: c.dst}, nil); got != c.want {
			t.Errorf("%d->%d: %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestTwoSwitchMatrix(t *testing.T) {
	extra := TwoSwitch(4, 2, 0.5)
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			want := 0.0
			if (s < 2) != (d < 2) {
				want = 0.5
			}
			if extra[s][d] != want {
				t.Errorf("extra[%d][%d] = %v, want %v", s, d, extra[s][d], want)
			}
		}
	}
}

func TestSharedBusZeroBandwidth(t *testing.T) {
	m := &SharedBus{Overhead: 0.5}
	if got := m.Delay(Msg{Now: 0, Bytes: 1000}, nil); got != 0.5 {
		t.Errorf("zero-bandwidth delay = %v, want overhead only", got)
	}
}
