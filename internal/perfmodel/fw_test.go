package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecTimeFWEqualsSpecTimeAtOne(t *testing.T) {
	m := NBodyRatioParams()
	for p := 1; p <= 16; p++ {
		if got, want := m.SpecTimeFW(p, 1), m.SpecTime(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%d: SpecTimeFW(1) = %g, SpecTime = %g", p, got, want)
		}
	}
}

func TestSpecTimeFWMonotoneInWindow(t *testing.T) {
	m := NBodyRatioParams()
	// Strongly communication-bound so windows matter.
	m.TComm = func(p int) float64 { return 40 }
	prev := math.Inf(1)
	for fw := 1; fw <= 6; fw++ {
		cur := m.SpecTimeFW(16, fw)
		if cur > prev+1e-12 {
			t.Errorf("fw=%d: time %g exceeds fw=%d time %g", fw, cur, fw-1, prev)
		}
		prev = cur
	}
	// Once comm/fw falls below the compute bound, more window cannot help.
	deep := m.SpecTimeFW(16, 50)
	deeper := m.SpecTimeFW(16, 100)
	if math.Abs(deep-deeper) > 1e-9 {
		t.Errorf("window beyond saturation changed time: %g vs %g", deep, deeper)
	}
}

func TestSpecTimeFWPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NBodyRatioParams().SpecTimeFW(4, 0)
}

func TestMaskedFraction(t *testing.T) {
	m := NBodyRatioParams()
	// Compute-bound: everything masked even at fw=1.
	m.TComm = func(p int) float64 { return 0.1 }
	if got := m.MaskedFraction(16, 1); got < 0.999 {
		t.Errorf("compute-bound masked fraction = %g, want ~1", got)
	}
	// Strongly comm-bound: fw=1 masks partially; more window masks more.
	m.TComm = func(p int) float64 { return 60 }
	f1 := m.MaskedFraction(16, 1)
	f3 := m.MaskedFraction(16, 3)
	if !(f1 < 1 && f3 > f1) {
		t.Errorf("masked fractions f1=%g f3=%g, want f1 < 1 and f3 > f1", f1, f3)
	}
	if m.MaskedFraction(1, 1) != 1 {
		t.Error("single processor should mask trivially")
	}
}

// Property: speedup with a larger window never falls below a smaller one,
// and never exceeds the capacity bound.
func TestSpeedupFWMonotoneProperty(t *testing.T) {
	f := func(p8, fw8, comm8 uint8) bool {
		p := int(p8%15) + 2
		fw := int(fw8%5) + 1
		m := NBodyRatioParams()
		comm := 1 + float64(comm8)/4
		m.TComm = func(int) float64 { return comm }
		a := m.SpeedupSpecFW(p, fw)
		b := m.SpeedupSpecFW(p, fw+1)
		return b >= a-1e-9 && b <= m.SpeedupMax(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
