// Package perfmodel implements the paper's §4 empirical performance model
// (eqs. 3–9): per-iteration execution time of a synchronous iterative
// algorithm on p heterogeneous processors, with and without speculative
// computation, plus the speedup definitions used throughout the evaluation.
//
// The model assumes ideal capacity-proportional load balancing (eqs. 4–5,
// continuous N_i = N·M_i/ΣM, so the computation phase is exactly equal on
// every processor), constant communication time per iteration, and — per
// eq. 8 — that every processor speculates and checks all N−N_i variables it
// does not own.
package perfmodel

import (
	"fmt"
	"math/rand"
)

// Params holds the model inputs of Table 1.
type Params struct {
	// N is the total number of application variables.
	N int
	// FComp, FSpec and FCheck are the operation counts to compute, speculate
	// and check one variable.
	FComp, FSpec, FCheck float64
	// FCheckPerLocalVar extends the checking cost for pair-based error
	// metrics (like the N-body eq. 11, which tests every remote variable
	// against every local one): checking one remote variable on processor i
	// costs FCheck + FCheckPerLocalVar·N_i operations.
	FCheckPerLocalVar float64
	// Caps holds processor capacities M_1 ≥ M_2 ≥ … (operations per second).
	// A p-processor run uses the first p entries (the paper's ordered set P).
	Caps []float64
	// TComm returns the per-iteration communication time on p processors.
	TComm func(p int) float64
	// K is the fraction of variables recomputed due to speculation errors.
	K float64
}

// Validate reports configuration errors.
func (m Params) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("perfmodel: N must be positive")
	}
	if len(m.Caps) == 0 {
		return fmt.Errorf("perfmodel: no capacities")
	}
	for i, c := range m.Caps {
		if c <= 0 {
			return fmt.Errorf("perfmodel: capacity %d not positive", i)
		}
		if i > 0 && c > m.Caps[i-1] {
			return fmt.Errorf("perfmodel: capacities not ordered fastest-first at %d", i)
		}
	}
	if m.FComp <= 0 || m.FSpec < 0 || m.FCheck < 0 {
		return fmt.Errorf("perfmodel: invalid operation counts")
	}
	if m.K < 0 || m.K > 1 {
		return fmt.Errorf("perfmodel: K out of [0,1]")
	}
	if m.TComm == nil {
		return fmt.Errorf("perfmodel: TComm is nil")
	}
	return nil
}

// sumCaps returns Σ_{i<p} M_i.
func (m Params) sumCaps(p int) float64 {
	var s float64
	for _, c := range m.Caps[:p] {
		s += c
	}
	return s
}

// alloc returns the continuous ideal allocation N_i for processor i (eq. 4–5).
func (m Params) alloc(p, i int) float64 {
	return float64(m.N) * m.Caps[i] / m.sumCaps(p)
}

// SerialTime is eq. 3: the per-iteration time on the fastest processor alone.
func (m Params) SerialTime() float64 {
	return float64(m.N) * m.FComp / m.Caps[0]
}

// NoSpecTime is eq. 6: per-iteration time on p processors without
// speculation. With ideal balancing the computation term is identical on
// every processor.
func (m Params) NoSpecTime(p int) float64 {
	if p == 1 {
		return m.SerialTime()
	}
	comp := float64(m.N) * m.FComp / m.sumCaps(p)
	return comp + m.TComm(p)
}

// SpecProcTime is eq. 8: processor i's per-iteration time with speculation
// (FW=1): overlap of (speculation + computation) with communication, plus
// checking, plus the expected recomputation penalty.
func (m Params) SpecProcTime(p, i int) float64 {
	ni := m.alloc(p, i)
	mi := m.Caps[i]
	remote := float64(m.N) - ni
	specComp := remote*m.FSpec/mi + ni*m.FComp/mi
	t := specComp
	if c := m.TComm(p); c > t {
		t = c
	}
	fcheck := m.FCheck + m.FCheckPerLocalVar*ni
	return t + remote*fcheck/mi + m.K*ni*m.FComp/mi
}

// SpecTime is eq. 9: the per-iteration time with speculation on p
// processors, the maximum of eq. 8 over all processors.
func (m Params) SpecTime(p int) float64 {
	if p == 1 {
		return m.SerialTime()
	}
	worst := 0.0
	for i := 0; i < p; i++ {
		if t := m.SpecProcTime(p, i); t > worst {
			worst = t
		}
	}
	return worst
}

// SpeedupNoSpec returns t(1)/t(p) without speculation.
func (m Params) SpeedupNoSpec(p int) float64 { return m.SerialTime() / m.NoSpecTime(p) }

// SpeedupSpec returns t(1)/t̂(p) with speculation.
func (m Params) SpeedupSpec(p int) float64 { return m.SerialTime() / m.SpecTime(p) }

// SpeedupMax is the paper's attainable bound: Σ_{i<p} M_i / M_1.
func (m Params) SpeedupMax(p int) float64 { return m.sumCaps(p) / m.Caps[0] }

// SpecTimeStochastic extends the model per the paper's future-work section:
// the communication time varies iteration to iteration (uniform on
// [(1−jitter)·TComm, (1+jitter)·TComm]); the expected per-iteration time is
// estimated by Monte Carlo over iters draws. jitter=0 reduces to SpecTime.
func (m Params) SpecTimeStochastic(p int, jitter float64, iters int, seed int64) float64 {
	if p == 1 {
		return m.SerialTime()
	}
	if jitter <= 0 || iters <= 0 {
		return m.SpecTime(p)
	}
	rng := rand.New(rand.NewSource(seed))
	base := m.TComm(p)
	var sum float64
	for it := 0; it < iters; it++ {
		c := base * (1 + jitter*(2*rng.Float64()-1))
		worst := 0.0
		for i := 0; i < p; i++ {
			ni := m.alloc(p, i)
			mi := m.Caps[i]
			remote := float64(m.N) - ni
			t := remote*m.FSpec/mi + ni*m.FComp/mi
			if c > t {
				t = c
			}
			fcheck := m.FCheck + m.FCheckPerLocalVar*ni
			t += remote*fcheck/mi + m.K*ni*m.FComp/mi
			if t > worst {
				worst = t
			}
		}
		sum += worst
	}
	return sum / float64(iters)
}

// LinearCaps returns p capacities declining linearly from fastest to
// fastest/ratio — the §4 instantiation (M_1 = 10·M_16).
func LinearCaps(p int, fastest, ratio float64) []float64 {
	caps := make([]float64, p)
	slowest := fastest / ratio
	for i := range caps {
		f := 0.0
		if p > 1 {
			f = float64(i) / float64(p-1)
		}
		caps[i] = fastest - f*(fastest-slowest)
	}
	return caps
}

// LinearTComm builds the §4 communication-time assumption: t_comm grows
// linearly with p and equals the 16-processor computation time at p = pRef.
func LinearTComm(n int, fcomp float64, caps []float64, pRef int) func(int) float64 {
	var sum float64
	for _, c := range caps[:pRef] {
		sum += c
	}
	tRef := float64(n) * fcomp / sum // computation time/iter at p = pRef
	return func(p int) float64 {
		return tRef * float64(p) / float64(pRef)
	}
}

// Section4Params is the paper's §4 instantiation taken literally: N = 1000,
// 16 processors with linear 10:1 capacities, f_comp = 100·f_spec =
// 50·f_check, k = 2%, and t_comm linear in p with t_comm(16) equal to the
// 16-processor computation time.
//
// Note: taken literally, these cost ratios make the slowest processor's
// speculation-and-check overhead (over N−N_i ≈ 989 remote variables at
// capacity M_16 = M_1/10) exceed its compute share, so eq. 9's maximum is
// dominated by checking and speculation does not pay at large p. See
// NBodyRatioParams for the parameterization that matches the paper's own
// claim that its values are "close to the measured values for the N-body
// simulation example".
func Section4Params() Params {
	caps := LinearCaps(16, 10, 10)
	return Params{
		N:      1000,
		FComp:  1,
		FSpec:  1.0 / 100,
		FCheck: 1.0 / 50,
		Caps:   caps,
		TComm:  LinearTComm(1000, 1, caps, 16),
		K:      0.02,
	}
}

// NBodyRatioParams is Section4Params with the speculation and checking costs
// set from the paper's measured N-body implementation (§5): computing one
// variable (particle) costs ≈ 70·N flops, speculating it 12 flops, checking
// it 24 flops — so f_spec/f_comp = 12/70000 and f_check/f_comp = 24/70000
// at N = 1000. With these ratios the aux work is genuinely "small compared
// to computation" on every processor, reproducing Figure 5's shape.
func NBodyRatioParams() Params {
	m := Section4Params()
	perVar := 70.0 * float64(m.N) // f_comp in flops for one particle
	m.FComp = 1
	m.FSpec = 12.0 / perVar
	m.FCheck = 24.0 / perVar
	return m
}
