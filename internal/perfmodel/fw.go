package perfmodel

// SpecTimeFW extends the §4 model to forward windows larger than one — the
// "different forward and backward window sizes" analysis the paper lists as
// future work.
//
// With a forward window w, a processor may run up to w iterations on
// unvalidated inputs, so message latency is amortized over w iterations of
// useful work: the communication bound in eq. 8's max term drops from
// t_comm to t_comm/w. Speculating s steps ahead uses the same speculation
// function, so the per-iteration speculation, checking and recomputation
// terms are unchanged (the growth of k with speculation distance is the
// application's business — pass the measured k for that window).
//
// SpecTimeFW(p, 1) equals SpecTime(p); fw < 1 panics.
func (m Params) SpecTimeFW(p, fw int) float64 {
	if fw < 1 {
		panic("perfmodel: fw must be >= 1")
	}
	if p == 1 {
		return m.SerialTime()
	}
	worst := 0.0
	commBound := m.TComm(p) / float64(fw)
	for i := 0; i < p; i++ {
		ni := m.alloc(p, i)
		mi := m.Caps[i]
		remote := float64(m.N) - ni
		t := remote*m.FSpec/mi + ni*m.FComp/mi
		if commBound > t {
			t = commBound
		}
		fcheck := m.FCheck + m.FCheckPerLocalVar*ni
		t += remote*fcheck/mi + m.K*ni*m.FComp/mi
		if t > worst {
			worst = t
		}
	}
	return worst
}

// SpeedupSpecFW returns t(1)/t̂_fw(p).
func (m Params) SpeedupSpecFW(p, fw int) float64 {
	return m.SerialTime() / m.SpecTimeFW(p, fw)
}

// MaskedFraction reports what fraction of the per-iteration communication
// time speculation hides on p processors with window fw: 1 means fully
// overlapped, 0 means the processor would have idled the entire t_comm.
func (m Params) MaskedFraction(p, fw int) float64 {
	if p == 1 {
		return 1
	}
	comm := m.TComm(p)
	if comm <= 0 {
		return 1
	}
	// The critical processor's exposed communication time is the amount by
	// which the (amortized) communication bound exceeds its overlappable
	// work.
	worstExposed := 0.0
	commBound := comm / float64(fw)
	for i := 0; i < p; i++ {
		ni := m.alloc(p, i)
		mi := m.Caps[i]
		remote := float64(m.N) - ni
		work := remote*m.FSpec/mi + ni*m.FComp/mi
		if exposed := commBound - work; exposed > worstExposed {
			worstExposed = exposed
		}
	}
	return 1 - worstExposed/comm
}
