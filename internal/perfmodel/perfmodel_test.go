package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Section4Params()
	if err := good.Validate(); err != nil {
		t.Errorf("Section4Params invalid: %v", err)
	}
	bad := good
	bad.N = 0
	if bad.Validate() == nil {
		t.Error("N=0 accepted")
	}
	bad = good
	bad.Caps = []float64{1, 2} // not fastest-first
	if bad.Validate() == nil {
		t.Error("unordered caps accepted")
	}
	bad = good
	bad.K = 1.5
	if bad.Validate() == nil {
		t.Error("K>1 accepted")
	}
	bad = good
	bad.TComm = nil
	if bad.Validate() == nil {
		t.Error("nil TComm accepted")
	}
}

func TestSerialTimeEq3(t *testing.T) {
	m := Params{N: 1000, FComp: 2, Caps: []float64{10}, TComm: func(int) float64 { return 0 }}
	if got := m.SerialTime(); got != 200 {
		t.Errorf("SerialTime = %g, want 200", got)
	}
}

func TestNoSpecTimeEq6(t *testing.T) {
	m := Params{
		N: 100, FComp: 1,
		Caps:  []float64{10, 10},
		TComm: func(p int) float64 { return 3 },
	}
	// comp = 100/20 = 5, plus comm 3.
	if got := m.NoSpecTime(2); got != 8 {
		t.Errorf("NoSpecTime(2) = %g, want 8", got)
	}
	if got := m.NoSpecTime(1); got != 10 {
		t.Errorf("NoSpecTime(1) = %g, want 10 (serial, no comm)", got)
	}
}

func TestSpecProcTimeEq8(t *testing.T) {
	// Homogeneous 2-proc case with hand-computed terms.
	m := Params{
		N: 100, FComp: 1, FSpec: 0.1, FCheck: 0.2, K: 0.1,
		Caps:  []float64{10, 10},
		TComm: func(int) float64 { return 4 },
	}
	// N_i = 50, remote = 50. spec+comp = 50*0.1/10 + 50*1/10 = 0.5+5 = 5.5.
	// max(5.5, 4) = 5.5. check = 50*0.2/10 = 1. k-term = 0.1*50/10 = 0.5.
	want := 5.5 + 1 + 0.5
	if got := m.SpecProcTime(2, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("SpecProcTime = %g, want %g", got, want)
	}
	// Communication-bound: raise TComm above spec+comp.
	m.TComm = func(int) float64 { return 9 }
	want = 9 + 1 + 0.5
	if got := m.SpecProcTime(2, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("comm-bound SpecProcTime = %g, want %g", got, want)
	}
}

func TestSpecTimeIsMaxOverProcs(t *testing.T) {
	m := NBodyRatioParams()
	p := 16
	worst := 0.0
	for i := 0; i < p; i++ {
		if v := m.SpecProcTime(p, i); v > worst {
			worst = v
		}
	}
	if got := m.SpecTime(p); got != worst {
		t.Errorf("SpecTime = %g, want max %g", got, worst)
	}
}

func TestSpeedupMax(t *testing.T) {
	m := Params{N: 10, FComp: 1, Caps: []float64{10, 5, 5}, TComm: func(int) float64 { return 0 }}
	if got := m.SpeedupMax(3); got != 2 {
		t.Errorf("SpeedupMax = %g, want 2", got)
	}
	if got := m.SpeedupMax(1); got != 1 {
		t.Errorf("SpeedupMax(1) = %g, want 1", got)
	}
}

func TestFigure5Shape(t *testing.T) {
	// The shapes the paper reports for its Figure 5 (with the N-body-derived
	// cost ratios; see the package comment and EXPERIMENTS.md):
	m := NBodyRatioParams()
	// (1) speculation has little impact for small p;
	small := m.SpeedupSpec(2) / m.SpeedupNoSpec(2)
	if small > 1.25 {
		t.Errorf("spec gain at p=2 is %.2f, expected small", small)
	}
	// (2) no-spec performance declines beyond ~10 processors;
	peak, peakAt := 0.0, 0
	for p := 1; p <= 16; p++ {
		if s := m.SpeedupNoSpec(p); s > peak {
			peak, peakAt = s, p
		}
	}
	if peakAt < 8 || peakAt > 13 {
		t.Errorf("no-spec speedup peaks at p=%d, want ~10", peakAt)
	}
	if m.SpeedupNoSpec(16) >= peak {
		t.Error("no-spec speedup did not decline by p=16")
	}
	// (3) speculation wins significantly at p=16;
	gain := m.SpeedupSpec(16)/m.SpeedupNoSpec(16) - 1
	if gain < 0.2 {
		t.Errorf("spec gain at p=16 = %.1f%%, want >= 20%%", gain*100)
	}
	// (4) spec speedup keeps rising with p (small sub-2% wiggles from the
	// slowest processor's aux work are allowed) and stays below the maximum.
	for p := 2; p <= 16; p++ {
		if m.SpeedupSpec(p) < m.SpeedupSpec(p-1)*0.98 {
			t.Errorf("spec speedup dropped sharply at p=%d", p)
		}
		if m.SpeedupSpec(p) > m.SpeedupMax(p)+1e-9 {
			t.Errorf("spec speedup exceeds max at p=%d", p)
		}
	}
	if m.SpeedupSpec(16) < 1.5*m.SpeedupSpec(2) {
		t.Error("spec speedup did not grow substantially from p=2 to p=16")
	}
}

func TestFigure6CrossoverNearTenPercent(t *testing.T) {
	// With the literal §4 cost ratios at p=8, speculation beats no
	// speculation for small k and loses beyond a crossover in the
	// neighbourhood of the paper's "less than 10%".
	m := Section4Params()
	const p = 8
	base := m.SpeedupNoSpec(p)
	mk := func(k float64) float64 {
		mm := m
		mm.K = k
		return mm.SpeedupSpec(p)
	}
	if mk(0.0) <= base {
		t.Errorf("spec at k=0 (%.3f) does not beat no-spec (%.3f)", mk(0.0), base)
	}
	if mk(0.20) >= base {
		t.Errorf("spec at k=20%% (%.3f) still beats no-spec (%.3f)", mk(0.20), base)
	}
	// Locate the crossover.
	cross := -1.0
	for k := 0.0; k <= 0.25; k += 0.001 {
		if mk(k) < base {
			cross = k
			break
		}
	}
	if cross < 0.02 || cross > 0.15 {
		t.Errorf("crossover at k=%.3f, want in [0.02, 0.15]", cross)
	}
	// Speedup decreases monotonically in k.
	prev := math.Inf(1)
	for k := 0.0; k <= 0.2; k += 0.02 {
		s := mk(k)
		if s > prev+1e-12 {
			t.Errorf("speedup not monotone in k at %.2f", k)
		}
		prev = s
	}
}

func TestLinearCaps(t *testing.T) {
	caps := LinearCaps(16, 10, 10)
	if caps[0] != 10 || math.Abs(caps[15]-1) > 1e-12 {
		t.Errorf("caps endpoints = %g, %g", caps[0], caps[15])
	}
	one := LinearCaps(1, 7, 10)
	if one[0] != 7 {
		t.Errorf("single cap = %g", one[0])
	}
}

func TestLinearTComm(t *testing.T) {
	caps := LinearCaps(16, 10, 10)
	tc := LinearTComm(1000, 1, caps, 16)
	var sum float64
	for _, c := range caps {
		sum += c
	}
	wantRef := 1000 / sum
	if got := tc(16); math.Abs(got-wantRef) > 1e-12 {
		t.Errorf("tc(16) = %g, want %g", got, wantRef)
	}
	if got := tc(8); math.Abs(got-wantRef/2) > 1e-12 {
		t.Errorf("tc(8) = %g, want %g", got, wantRef/2)
	}
}

func TestStochasticReducesToDeterministic(t *testing.T) {
	m := NBodyRatioParams()
	det := m.SpecTime(8)
	if got := m.SpecTimeStochastic(8, 0, 100, 1); got != det {
		t.Errorf("jitter=0 stochastic = %g, want %g", got, det)
	}
	if got := m.SpecTimeStochastic(1, 0.5, 100, 1); got != m.SerialTime() {
		t.Errorf("p=1 stochastic = %g, want serial", got)
	}
}

func TestStochasticJitterIncreasesExpectedTime(t *testing.T) {
	// max(·, comm) is convex in comm, so jitter can only raise the mean
	// when the comm bound binds on some processors.
	m := NBodyRatioParams()
	m.TComm = func(p int) float64 { return 20 } // strongly comm-bound
	det := m.SpecTime(16)
	st := m.SpecTimeStochastic(16, 0.5, 4000, 7)
	if st < det-1e-9 {
		t.Errorf("stochastic %g below deterministic %g", st, det)
	}
}

// Property: speedups are positive, bounded by SpeedupMax (no-spec), and the
// k=0, free-aux speculative model is never slower than no-spec.
func TestModelSanityProperty(t *testing.T) {
	f := func(p8 uint8, k8 uint8) bool {
		p := int(p8%16) + 1
		m := NBodyRatioParams()
		m.K = float64(k8%100) / 100
		if m.SpeedupNoSpec(p) <= 0 || m.SpeedupSpec(p) <= 0 {
			return false
		}
		if m.SpeedupNoSpec(p) > m.SpeedupMax(p)+1e-9 {
			return false
		}
		// Zero-cost speculation with k=0 dominates no speculation.
		free := m
		free.FSpec, free.FCheck, free.K = 0, 0, 0
		return free.SpeedupSpec(p) >= free.SpeedupNoSpec(p)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
