package realtime

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/obs"
)

func scrape(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestObsEndpointServesMetricsAndJournal(t *testing.T) {
	reg := obs.NewRegistry()
	jr := obs.NewJournal()
	srv, err := ServeObs("127.0.0.1:0", reg, jr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A run populates the registry the endpoint is already serving.
	results, err := Run(Config{Procs: 3, MaxIter: 15, FW: 1, Metrics: reg, Journal: jr},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs, threshold: 1e-6} })
	if err != nil {
		t.Fatal(err)
	}
	made := 0
	for _, r := range results {
		made += r.SpecsMade
	}
	if made == 0 {
		t.Fatal("no speculation — nothing to observe")
	}

	base := "http://" + srv.Addr()
	text := string(scrape(t, base+"/metrics"))
	samples, err := obs.ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text exposition: %v\n%s", err, text)
	}
	got := make(map[string]float64)
	for _, s := range samples {
		got[s.Name] += s.Value
	}
	// The acceptance schema: specs made/checked/bad, repairs, overruns, and
	// retransmissions must all be present (retransmissions at 0 on channels).
	for _, name := range []string{
		core.MetricSpecsMade, core.MetricSpecsCheck, core.MetricSpecsBad,
		core.MetricRepairs, core.MetricOverruns, cluster.MetricRetransmits,
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("/metrics missing family %s", name)
		}
	}
	if int(got[core.MetricSpecsMade]) != made {
		t.Errorf("/metrics specs_made = %g, want %d", got[core.MetricSpecsMade], made)
	}
	if got[cluster.MetricRetransmits] != 0 {
		t.Errorf("channel transport reported %g retransmissions", got[cluster.MetricRetransmits])
	}

	// expvar is live JSON and includes the registry totals.
	var vars map[string]any
	if err := json.Unmarshal(scrape(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["specomp"]; !ok {
		t.Error("/debug/vars missing the specomp map")
	}

	// The journal streams as JSONL.
	events, err := obs.ReadJSONL(strings.NewReader(string(scrape(t, base+"/journal"))))
	if err != nil {
		t.Fatalf("/journal does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Error("/journal is empty after an instrumented run")
	}

	// pprof answers (index page).
	if body := scrape(t, base+"/debug/pprof/"); !strings.Contains(string(body), "profile") {
		t.Error("/debug/pprof/ index looks wrong")
	}
}

func TestRunStartsEndpointFromConfig(t *testing.T) {
	// HTTPAddr wires the endpoint for the duration of the run; the server is
	// closed when Run returns, so this only asserts the run still succeeds
	// and the registry was populated.
	reg := obs.NewRegistry()
	_, err := Run(Config{Procs: 2, MaxIter: 5, FW: 1, Metrics: reg, HTTPAddr: "127.0.0.1:0"},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs, threshold: 0.5} })
	if err != nil {
		t.Fatal(err)
	}
	if reg.Totals()[core.MetricIterations] != 2*5 {
		t.Errorf("iterations total = %g, want 10", reg.Totals()[core.MetricIterations])
	}
	// A bad address must fail cleanly.
	if _, err := Run(Config{Procs: 1, MaxIter: 1, HTTPAddr: "256.0.0.1:bad"},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs} }); err == nil {
		t.Error("invalid HTTPAddr accepted")
	}
}
