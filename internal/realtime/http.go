package realtime

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"specomp/internal/obs"
)

// ObsServer is the live-introspection HTTP endpoint for realtime runs. It
// serves:
//
//	/metrics      Prometheus text exposition of the attached registry
//	/debug/vars   expvar JSON (includes a "specomp" map of registry totals)
//	/debug/pprof  the standard net/http/pprof handlers
//
// Construct with ServeObs; Close releases the listener.
type ObsServer struct {
	srv *http.Server
	ln  net.Listener
}

// expvarReg is the registry the "specomp" expvar reads from. expvar.Publish
// panics on duplicate names, so the Func is published once and indirects
// through this mutex-guarded pointer (the most recent ServeObs wins).
var (
	expvarMu   sync.Mutex
	expvarReg  *obs.Registry
	expvarOnce sync.Once
)

func publishExpvar(reg *obs.Registry) {
	expvarMu.Lock()
	expvarReg = reg
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("specomp", expvar.Func(func() any {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarReg.Totals()
		}))
	})
}

// ServeObs starts the introspection endpoint on addr ("host:port"; use port
// 0 for an ephemeral port, then read Addr). reg and jr may be nil: /metrics
// then serves an empty exposition and /journal an empty stream, but pprof
// and expvar still work.
func ServeObs(addr string, reg *obs.Registry, jr *obs.Journal) (*ObsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	publishExpvar(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = jr.WriteJSONL(w)
	})
	s := &ObsServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *ObsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *ObsServer) Close() error { return s.srv.Close() }
