package realtime

import (
	"math"
	"testing"
	"time"

	"specomp/internal/core"
)

// rtMap is the same globally coupled logistic map used by the core tests,
// here exercised over real goroutines.
type rtMap struct {
	pid, p    int
	threshold float64
}

func (a *rtMap) f(x float64) float64 { return 2.9 * x * (1 - x) }

func (a *rtMap) InitLocal() []float64 {
	return []float64{0.2 + 0.5*float64(a.pid)/float64(a.p)}
}

func (a *rtMap) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for _, part := range view {
		sum += a.f(part[0])
	}
	mean := sum / float64(len(view))
	x := view[a.pid][0]
	return []float64{0.6*a.f(x) + 0.4*mean}
}

func (a *rtMap) ComputeOps() float64 { return 1 }

func (a *rtMap) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(a.threshold, 1, pred, act)
}

func (a *rtMap) RepairOps(r core.CheckResult) float64 { return 1 }

func serialRef(p, iters int) []float64 {
	f := func(x float64) float64 { return 2.9 * x * (1 - x) }
	x := make([]float64, p)
	for j := range x {
		x[j] = 0.2 + 0.5*float64(j)/float64(p)
	}
	for t := 0; t < iters; t++ {
		next := make([]float64, p)
		sum := 0.0
		for _, v := range x {
			sum += f(v)
		}
		mean := sum / float64(p)
		for j, v := range x {
			next[j] = 0.6*f(v) + 0.4*mean
		}
		x = next
	}
	return x
}

func TestBlockingMatchesSerial(t *testing.T) {
	const p, iters = 4, 25
	results, err := Run(Config{Procs: p, MaxIter: iters, FW: 0},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs, threshold: 0.01} })
	if err != nil {
		t.Fatal(err)
	}
	want := serialRef(p, iters)
	for i, r := range results {
		if math.Abs(r.Final[0]-want[i]) > 1e-12 {
			t.Errorf("proc %d: %v, want %v", i, r.Final[0], want[i])
		}
	}
}

func TestSpeculativeZeroThresholdMatchesSerial(t *testing.T) {
	const p, iters = 4, 25
	results, err := Run(Config{Procs: p, MaxIter: iters, FW: 1},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs, threshold: 0} })
	if err != nil {
		t.Fatal(err)
	}
	want := serialRef(p, iters)
	specs := 0
	for i, r := range results {
		if math.Abs(r.Final[0]-want[i]) > 1e-9 {
			t.Errorf("proc %d: %v, want %v", i, r.Final[0], want[i])
		}
		specs += r.SpecsMade
	}
	if specs == 0 {
		t.Error("no speculation happened")
	}
	// The full engine statistics record must be surfaced, not just the
	// convenience counters: Stats.SpecsMade mirrors SpecsMade, and the
	// iteration count proves the engine record is populated.
	for _, r := range results {
		if r.Stats.SpecsMade != r.SpecsMade {
			t.Errorf("proc %d: Stats.SpecsMade=%d, SpecsMade=%d", r.Proc, r.Stats.SpecsMade, r.SpecsMade)
		}
		if r.Stats.Iters != iters {
			t.Errorf("proc %d: Stats.Iters=%d, want %d", r.Proc, r.Stats.Iters, iters)
		}
	}
}

// workMap adds real wall-clock work to each Compute so there is something
// to overlap the injected latency with.
type workMap struct {
	rtMap
	work time.Duration
}

func (a *workMap) Compute(view [][]float64, t int) []float64 {
	time.Sleep(a.work)
	return a.rtMap.Compute(view, t)
}

func TestSpeculationMasksWallClockLatency(t *testing.T) {
	const p, iters = 3, 12
	const delay = 8 * time.Millisecond
	run := func(fw int) time.Duration {
		results, err := Run(Config{Procs: p, MaxIter: iters, FW: fw, Delay: delay},
			func(pid, procs int) core.App {
				return &workMap{
					rtMap: rtMap{pid: pid, p: procs, threshold: 0.05},
					work:  6 * time.Millisecond,
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		worst := time.Duration(0)
		for _, r := range results {
			if r.Elapsed > worst {
				worst = r.Elapsed
			}
		}
		return worst
	}
	blocking := run(0)
	spec := run(1)
	// Blocking pays ≈ delay + work per iteration; speculation overlaps them
	// to ≈ max(delay, work) — ideally a ~40% saving here, but wall-clock
	// timer slop on loaded single-core machines eats into it, so demand a
	// conservative 10%.
	if blocking < time.Duration(iters)*delay {
		t.Fatalf("blocking run implausibly fast: %v", blocking)
	}
	if spec > blocking*9/10 {
		t.Errorf("speculation saved too little wall time: spec %v vs blocking %v", spec, blocking)
	}
}

func TestLooseThresholdAcceptsSpeculation(t *testing.T) {
	const p, iters = 4, 40
	results, err := Run(Config{Procs: p, MaxIter: iters, FW: 1},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs, threshold: 0.5} })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.SpecsMade == 0 {
			t.Errorf("proc %d made no speculations", r.Proc)
		}
		if r.Repairs > r.SpecsMade/2 {
			t.Errorf("proc %d repaired %d of %d — loose threshold should accept most", r.Proc, r.Repairs, r.SpecsMade)
		}
		// The map converges to its fixed point regardless.
		want := 1 - 1/2.9
		if math.Abs(r.Final[0]-want) > 1e-3 {
			t.Errorf("proc %d: final %v, want ~%v", r.Proc, r.Final[0], want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	factory := func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs} }
	if _, err := Run(Config{Procs: 0, MaxIter: 1}, factory); err == nil {
		t.Error("Procs=0 accepted")
	}
	if _, err := Run(Config{Procs: 2, MaxIter: 0}, factory); err == nil {
		t.Error("MaxIter=0 accepted")
	}
	if _, err := Run(Config{Procs: 2, MaxIter: 1, FW: -1}, factory); err == nil {
		t.Error("negative FW accepted")
	}
}

func TestDeepForwardWindowOnGoroutines(t *testing.T) {
	// The shared engine gives the realtime substrate FW >= 2 for free.
	const p, iters = 4, 25
	results, err := Run(Config{Procs: p, MaxIter: iters, FW: 3},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs, threshold: 0.05} })
	if err != nil {
		t.Fatal(err)
	}
	specs := 0
	for _, r := range results {
		specs += r.SpecsMade
		if math.IsNaN(r.Final[0]) {
			t.Errorf("proc %d produced NaN", r.Proc)
		}
	}
	if specs == 0 {
		t.Error("no speculation at FW=3")
	}
	// The map still converges to its fixed point.
	want := 1 - 1/2.9
	for _, r := range results {
		if math.Abs(r.Final[0]-want) > 5e-2 {
			t.Errorf("proc %d: final %v, want ~%v", r.Proc, r.Final[0], want)
		}
	}
}

func TestSingleProcessor(t *testing.T) {
	results, err := Run(Config{Procs: 1, MaxIter: 10, FW: 1},
		func(pid, procs int) core.App { return &rtMap{pid: pid, p: procs, threshold: 0.01} })
	if err != nil {
		t.Fatal(err)
	}
	if results[0].SpecsMade != 0 {
		t.Error("single proc speculated")
	}
}
