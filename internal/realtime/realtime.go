// Package realtime executes a synchronous iterative application with
// speculative computation on REAL goroutines and channels — the library's
// answer to "does this run outside the simulator?". Each processor is a
// goroutine; messages travel over Go channels with an optional injected
// wall-clock latency.
//
// The package implements core.Transport, so the full engine runs here
// unchanged: every forward window, the Publisher/Stopper/Corrector
// extensions, and the speculation statistics all behave exactly as on the
// simulated cluster. Operation-count charging is a no-op (the app's real
// CPU time is the cost), and blocked-receive time is accounted in wall
// seconds.
package realtime

import (
	"fmt"
	"sync"
	"time"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/obs"
	"specomp/internal/predict"
)

// Config parameterizes a real-time run.
type Config struct {
	// Procs is the number of worker goroutines.
	Procs int
	// MaxIter is the number of iterations.
	MaxIter int
	// FW is the forward window (any value the engine supports).
	FW int
	// BW is the backward window; defaults to the predictor's window.
	BW int
	// Predictor is the generic speculation function (default predict.Linear).
	Predictor predict.Predictor
	// HoldSends forwards the engine's speculative-send ablation switch.
	HoldSends bool
	// Delay is an artificial per-message latency injected on delivery,
	// emulating a slow interconnect. Zero delivers immediately.
	Delay time.Duration
	// Metrics, when non-nil, receives the engine's counters and histograms
	// for every worker (per-processor labels).
	Metrics *obs.Registry
	// Journal, when non-nil, receives the structured run journal stamped
	// with wall-clock seconds since the run started. Unlike the simulated
	// cluster, ordering across workers is not deterministic.
	Journal *obs.Journal
	// HTTPAddr, when non-empty, serves live introspection for the duration
	// of the run: Prometheus text exposition at /metrics (from Metrics),
	// expvar at /debug/vars, and net/http/pprof at /debug/pprof/. Use
	// "127.0.0.1:0" to bind an ephemeral port (the address is logged via
	// ServeObs for standalone use).
	HTTPAddr string
}

// Result is one processor's outcome.
type Result struct {
	Proc      int
	Final     []float64
	Converged bool
	// Stats is the engine's full per-processor statistics record —
	// speculation, check, repair, cascade, and phase-time accounting.
	Stats     core.Stats
	SpecsMade int
	SpecsBad  int
	Repairs   int
	Elapsed   time.Duration
	// CommBlocked is the wall-clock time spent blocked on receives.
	CommBlocked time.Duration
}

// transport adapts goroutine channels to the full cluster.Transport
// contract (and therefore to core.Transport plus all its optional
// capability upgrades).
type transport struct {
	id, p   int
	inbox   chan cluster.Message
	peers   []chan cluster.Message
	delay   time.Duration
	start   time.Time
	pending []cluster.Message
	commSec float64
	// timers tracks outstanding delayed sends so Run can stop them at
	// shutdown instead of leaking time.AfterFunc callbacks that fire after
	// the run has returned.
	timers []*time.Timer
}

var _ cluster.Transport = (*transport)(nil)

func (t *transport) ID() int { return t.id }

func (t *transport) P() int { return t.p }

func (t *transport) Now() float64 { return time.Since(t.start).Seconds() }

// Compute is a no-op: on a wall-clock substrate the work has already been
// done by the app itself.
func (t *transport) Compute(float64, cluster.Phase) {}

func (t *transport) Send(dst, tag, iter int, data []float64) {
	payload := make([]float64, len(data))
	copy(payload, data)
	t.SendShared(dst, tag, iter, payload)
}

// SendShared enqueues the message with its payload aliased, not copied; the
// receiver adopts the slice. The caller must never mutate data afterwards,
// which lets a broadcast share one immutable payload across all peers.
func (t *transport) SendShared(dst, tag, iter int, data []float64) {
	m := cluster.Message{Src: t.id, Dst: dst, Tag: tag, Iter: iter, Data: data, SentAt: t.Now()}
	ch := t.peers[dst]
	if t.delay <= 0 {
		ch <- m
		return
	}
	t.timers = append(t.timers, time.AfterFunc(t.delay, func() { ch <- m }))
}

// stopTimers cancels outstanding delayed sends. Called after every worker
// has finished (the WaitGroup gives the happens-before edge to the appends
// in Send).
func (t *transport) stopTimers() {
	for _, tm := range t.timers {
		tm.Stop()
	}
	t.timers = nil
}

func matches(m cluster.Message, src, tag int) bool {
	return (src == cluster.Any || m.Src == src) && (tag == cluster.Any || m.Tag == tag)
}

func (t *transport) takePending(src, tag int) (cluster.Message, bool) {
	for i, m := range t.pending {
		if matches(m, src, tag) {
			t.pending = append(t.pending[:i], t.pending[i+1:]...)
			return m, true
		}
	}
	return cluster.Message{}, false
}

func (t *transport) TryRecv(src, tag int) (cluster.Message, bool) {
	if m, ok := t.takePending(src, tag); ok {
		return m, true
	}
	for {
		select {
		case m := <-t.inbox:
			m.DeliveredAt = t.Now()
			if matches(m, src, tag) {
				return m, true
			}
			t.pending = append(t.pending, m)
		default:
			return cluster.Message{}, false
		}
	}
}

func (t *transport) Recv(src, tag int) cluster.Message {
	if m, ok := t.takePending(src, tag); ok {
		return m
	}
	before := time.Now()
	defer func() { t.commSec += time.Since(before).Seconds() }()
	for {
		m := <-t.inbox
		m.DeliveredAt = t.Now()
		if matches(m, src, tag) {
			return m
		}
		t.pending = append(t.pending, m)
	}
}

// RecvDeadline implements core.DeadlineReceiver over a wall-clock timeout,
// enabling the engine's graceful-degradation mode on the realtime substrate.
func (t *transport) RecvDeadline(src, tag int, timeout float64) (cluster.Message, bool) {
	if m, ok := t.takePending(src, tag); ok {
		return m, true
	}
	before := time.Now()
	defer func() { t.commSec += time.Since(before).Seconds() }()
	deadline := before.Add(time.Duration(timeout * float64(time.Second)))
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return cluster.Message{}, false
		}
		timer := time.NewTimer(remaining)
		select {
		case m := <-t.inbox:
			timer.Stop()
			m.DeliveredAt = t.Now()
			if matches(m, src, tag) {
				return m, true
			}
			t.pending = append(t.pending, m)
		case <-timer.C:
			return cluster.Message{}, false
		}
	}
}

func (t *transport) PhaseTime(ph cluster.Phase) float64 {
	if ph == cluster.PhaseComm {
		return t.commSec
	}
	return 0
}

// Run executes the application and returns per-processor results.
func Run(cfg Config, factory func(pid, procs int) core.App) ([]Result, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("realtime: Procs must be >= 1")
	}
	if cfg.MaxIter < 1 {
		return nil, fmt.Errorf("realtime: MaxIter must be >= 1")
	}
	p := cfg.Procs
	inbox := make([]chan cluster.Message, p)
	for i := range inbox {
		// Generous buffering: senders must never block (MaxIter data
		// messages from each peer, plus slack).
		inbox[i] = make(chan cluster.Message, p*(cfg.MaxIter+4))
	}
	ecfg := core.Config{
		FW: cfg.FW, BW: cfg.BW, MaxIter: cfg.MaxIter,
		Predictor: cfg.Predictor, HoldSends: cfg.HoldSends,
		Metrics: cfg.Metrics, Journal: cfg.Journal,
	}
	if cfg.Metrics != nil {
		// Pre-register every worker's engine families plus the transport's
		// retransmission counter (always 0 on in-process channels), so a
		// /metrics scrape covers the full schema from the first instant.
		for pid := 0; pid < p; pid++ {
			core.RegisterEngineMetrics(cfg.Metrics, pid)
			cfg.Metrics.Counter(cluster.MetricRetransmits,
				"reliable-layer retransmissions (always 0 on the in-process channel transport)",
				obs.L("proc", fmt.Sprint(pid)))
		}
	}
	var srv *ObsServer
	if cfg.HTTPAddr != "" {
		var err error
		srv, err = ServeObs(cfg.HTTPAddr, cfg.Metrics, cfg.Journal)
		if err != nil {
			return nil, fmt.Errorf("realtime: obs endpoint: %w", err)
		}
		defer srv.Close()
	}
	results := make([]Result, p)
	errs := make([]error, p)
	transports := make([]*transport, p)
	start := time.Now()
	var wg sync.WaitGroup
	for pid := 0; pid < p; pid++ {
		pid := pid
		wg.Add(1)
		tr := &transport{id: pid, p: p, inbox: inbox[pid], peers: inbox, delay: cfg.Delay, start: start}
		transports[pid] = tr
		go func() {
			defer wg.Done()
			res, err := core.Run(tr, factory(pid, p), ecfg)
			if err != nil {
				errs[pid] = err
				return
			}
			results[pid] = Result{
				Proc:        pid,
				Final:       res.Final,
				Converged:   res.Converged,
				Stats:       res.Stats,
				SpecsMade:   res.Stats.SpecsMade,
				SpecsBad:    res.Stats.SpecsBad,
				Repairs:     res.Stats.Repairs,
				Elapsed:     time.Since(start),
				CommBlocked: time.Duration(res.Stats.CommTime * float64(time.Second)),
			}
		}()
	}
	wg.Wait()
	for _, tr := range transports {
		tr.stopTimers()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("realtime: processor %d: %w", i, err)
		}
	}
	return results, nil
}
