package predict

import (
	"math"
	"math/rand"
	"testing"
)

func TestHoltExactOnAffineWithFullSmoothing(t *testing.T) {
	// Alpha = Beta = 1 tracks the last level and difference exactly, so an
	// affine series is extrapolated exactly.
	h := Holt{Alpha: 1, Beta: 1, BW: 4}
	// x(t) = 3t + 1 at t = 1..4, newest first.
	hist := [][]float64{{13}, {10}, {7}, {4}}
	for steps := 1; steps <= 3; steps++ {
		got := h.Predict(hist, steps)
		want := 13 + 3*float64(steps)
		if math.Abs(got[0]-want) > 1e-9 {
			t.Errorf("steps=%d: got %g, want %g", steps, got[0], want)
		}
	}
}

func TestHoltConstantSeries(t *testing.T) {
	h := Holt{Alpha: 0.5, Beta: 0.3, BW: 5}
	hist := [][]float64{{7, 7}, {7, 7}, {7, 7}}
	got := h.Predict(hist, 2)
	if math.Abs(got[0]-7) > 1e-9 || math.Abs(got[1]-7) > 1e-9 {
		t.Errorf("constant series predicted %v", got)
	}
}

func TestHoltShortHistoryDegrades(t *testing.T) {
	h := Holt{Alpha: 0.5, Beta: 0.5, BW: 5}
	got := h.Predict([][]float64{{4}}, 3)
	if math.Abs(got[0]-4) > 1e-9 {
		t.Errorf("single snapshot predicted %v, want 4", got[0])
	}
	if h.Predict(nil, 1) != nil {
		t.Error("empty history should return nil")
	}
}

func TestHoltSmoothsNoiseBetterThanLinear(t *testing.T) {
	// Underlying trend x(t) = t with additive noise; the two-point Linear
	// predictor doubles the noise in its slope, Holt averages it out.
	rng := rand.New(rand.NewSource(6))
	h := Holt{Alpha: 0.4, Beta: 0.2, BW: 8}
	l := Linear{}
	var holtErr, linErr float64
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		hist := make([][]float64, 8) // newest first: t = 10, 9, ..., 3
		for i := range hist {
			tt := float64(10 - i)
			hist[i] = []float64{tt + 0.3*(2*rng.Float64()-1)}
		}
		truth := 11.0
		holtErr += math.Abs(h.Predict(hist, 1)[0] - truth)
		linErr += math.Abs(l.Predict(hist, 1)[0] - truth)
	}
	if holtErr >= linErr {
		t.Errorf("Holt error %g not below Linear error %g on noisy trend", holtErr/trials, linErr/trials)
	}
}

func TestHoltWindowAndName(t *testing.T) {
	h := Holt{Alpha: 0.5, Beta: 0.5, BW: 6}
	if h.Window() != 6 {
		t.Errorf("Window = %d", h.Window())
	}
	if (Holt{}).Window() != 2 {
		t.Errorf("default Window = %d", (Holt{}).Window())
	}
	if h.Name() == "" || h.Ops() <= 0 {
		t.Error("bad Name/Ops")
	}
}
