package predict

import "fmt"

// Holt implements Holt's linear (double exponential) smoothing over the
// available history window: a smoothed level and trend are built from the
// snapshots oldest-to-newest and extrapolated forward. Compared with the
// raw two-point Linear predictor it filters noise in the per-iteration
// differences, at the cost of lag on genuine trend changes — the
// accuracy/complexity trade-off §3.2 discusses for larger backward windows.
type Holt struct {
	// Alpha is the level smoothing factor in (0, 1].
	Alpha float64
	// Beta is the trend smoothing factor in (0, 1].
	Beta float64
	// BW is the maximum history depth consulted (≥ 2).
	BW int
}

// Predict implements Predictor.
func (h Holt) Predict(hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	depth := h.BW
	if depth < 2 {
		depth = 2
	}
	if depth > len(hist) {
		depth = len(hist)
	}
	if depth < 2 {
		return ZeroOrder{}.Predict(hist, steps)
	}
	n := len(hist[0])
	// Oldest-to-newest pass. hist is newest first: index depth-1 is oldest.
	level := make([]float64, n)
	trend := make([]float64, n)
	copy(level, hist[depth-1])
	for i := range trend {
		trend[i] = hist[depth-2][i] - hist[depth-1][i]
	}
	for s := depth - 2; s >= 0; s-- {
		x := hist[s]
		for i := 0; i < n; i++ {
			prevLevel := level[i]
			level[i] = h.Alpha*x[i] + (1-h.Alpha)*(level[i]+trend[i])
			trend[i] = h.Beta*(level[i]-prevLevel) + (1-h.Beta)*trend[i]
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = level[i] + float64(steps)*trend[i]
	}
	return out
}

// Window implements Predictor.
func (h Holt) Window() int {
	if h.BW < 2 {
		return 2
	}
	return h.BW
}

// Name implements Predictor.
func (h Holt) Name() string {
	return fmt.Sprintf("holt(a=%.2f,b=%.2f,bw=%d)", h.Alpha, h.Beta, h.Window())
}

// Ops implements Predictor.
func (h Holt) Ops() float64 { return float64(6 * h.Window()) }
