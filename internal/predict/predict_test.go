package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestZeroOrder(t *testing.T) {
	p := ZeroOrder{}
	hist := [][]float64{{3, 4}, {1, 2}}
	got := p.Predict(hist, 1)
	if !almost(got[0], 3) || !almost(got[1], 4) {
		t.Errorf("Predict = %v, want [3 4]", got)
	}
	if got2 := p.Predict(hist, 5); !almost(got2[0], 3) {
		t.Errorf("multi-step zero order should still hold last value, got %v", got2)
	}
	if p.Predict(nil, 1) != nil {
		t.Error("empty history should return nil")
	}
}

func TestZeroOrderDoesNotAliasHistory(t *testing.T) {
	hist := [][]float64{{1}}
	got := ZeroOrder{}.Predict(hist, 1)
	got[0] = 99
	if hist[0][0] != 1 {
		t.Error("prediction aliases history storage")
	}
}

func TestLinearExactOnLinearSeries(t *testing.T) {
	p := Linear{}
	// x(t) = 5t: hist[0] = x(4) = 20, hist[1] = x(3) = 15.
	hist := [][]float64{{20}, {15}}
	for steps := 1; steps <= 4; steps++ {
		got := p.Predict(hist, steps)
		want := 20 + 5*float64(steps)
		if !almost(got[0], want) {
			t.Errorf("steps=%d: got %g, want %g", steps, got[0], want)
		}
	}
}

func TestLinearDegradesToZeroOrder(t *testing.T) {
	got := Linear{}.Predict([][]float64{{7}}, 3)
	if !almost(got[0], 7) {
		t.Errorf("one-snapshot linear = %g, want 7", got[0])
	}
}

func TestDampedBetweenZeroAndLinear(t *testing.T) {
	hist := [][]float64{{10}, {6}} // slope 4
	z := ZeroOrder{}.Predict(hist, 1)[0]
	l := Linear{}.Predict(hist, 1)[0]
	d := Damped{Alpha: 0.5}.Predict(hist, 1)[0]
	if !(z < d && d < l) {
		t.Errorf("damped %g not between zero-order %g and linear %g", d, z, l)
	}
	if full := (Damped{Alpha: 1}).Predict(hist, 1)[0]; !almost(full, l) {
		t.Errorf("alpha=1 damped = %g, want linear %g", full, l)
	}
}

func TestWeightedSumSingleWeightIsZeroOrder(t *testing.T) {
	w := WeightedSum{Weights: []float64{1}}
	hist := [][]float64{{2, 3}, {0, 0}}
	got := w.Predict(hist, 1)
	if !almost(got[0], 2) || !almost(got[1], 3) {
		t.Errorf("Predict = %v, want [2 3]", got)
	}
}

func TestWeightedSumTwoPointExtrapolation(t *testing.T) {
	// Weights {2, −1} reproduce linear extrapolation: 2x(t−1) − x(t−2).
	w := WeightedSum{Weights: []float64{2, -1}}
	hist := [][]float64{{20}, {15}}
	got := w.Predict(hist, 1)
	if !almost(got[0], 25) {
		t.Errorf("Predict = %g, want 25", got[0])
	}
	// Two steps: rolled forward, still exact for a linear series.
	got2 := w.Predict(hist, 2)
	if !almost(got2[0], 30) {
		t.Errorf("2-step Predict = %g, want 30", got2[0])
	}
}

func TestWeightedSumShortHistoryRenormalizes(t *testing.T) {
	// BW=3 weights but only one snapshot available: falls back to using it
	// with weight renormalized to 1.
	w := WeightedSum{Weights: []float64{0.5, 0.3, 0.2}}
	got := w.Predict([][]float64{{8}}, 1)
	if !almost(got[0], 8) {
		t.Errorf("Predict = %g, want 8", got[0])
	}
}

func TestWeightedSumZeroStepsReturnsLast(t *testing.T) {
	w := WeightedSum{Weights: []float64{0.5, 0.5}}
	got := w.Predict([][]float64{{4}, {2}}, 0)
	if !almost(got[0], 4) {
		t.Errorf("steps=0 Predict = %g, want 4", got[0])
	}
}

func TestPolynomialExactOnQuadratic(t *testing.T) {
	// x(t) = t²: snapshots at t=2,3,4 are 4,9,16 (hist newest first).
	hist := [][]float64{{16}, {9}, {4}}
	p := Polynomial{Order: 2}
	for steps := 1; steps <= 3; steps++ {
		tt := 4 + steps
		want := float64(tt * tt)
		got := p.Predict(hist, steps)
		if !almost(got[0], want) {
			t.Errorf("steps=%d: got %g, want %g", steps, got[0], want)
		}
	}
}

func TestPolynomialOrder1MatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		hist := [][]float64{{rng.Float64() * 10}, {rng.Float64() * 10}}
		a := Polynomial{Order: 1}.Predict(hist, 2)
		b := Linear{}.Predict(hist, 2)
		if !almost(a[0], b[0]) {
			t.Fatalf("poly(1)=%g linear=%g for hist %v", a[0], b[0], hist)
		}
	}
}

func TestPolynomialDegradesWithShortHistory(t *testing.T) {
	p := Polynomial{Order: 3}
	// Two snapshots: should behave like linear.
	hist := [][]float64{{10}, {8}}
	got := p.Predict(hist, 1)
	if !almost(got[0], 12) {
		t.Errorf("degraded poly = %g, want 12", got[0])
	}
	// One snapshot: zero order.
	got1 := p.Predict([][]float64{{5}}, 2)
	if !almost(got1[0], 5) {
		t.Errorf("single-snapshot poly = %g, want 5", got1[0])
	}
}

func TestWindowsAndNames(t *testing.T) {
	cases := []struct {
		p      Predictor
		window int
	}{
		{ZeroOrder{}, 1},
		{Linear{}, 2},
		{Damped{Alpha: 0.5}, 2},
		{WeightedSum{Weights: []float64{1, 2, 3}}, 3},
		{Polynomial{Order: 2}, 3},
	}
	for _, c := range cases {
		if c.p.Window() != c.window {
			t.Errorf("%s: Window = %d, want %d", c.p.Name(), c.p.Window(), c.window)
		}
		if c.p.Name() == "" {
			t.Errorf("predictor has empty name")
		}
		if c.p.Ops() <= 0 {
			t.Errorf("%s: non-positive Ops", c.p.Name())
		}
	}
}

// Property: every predictor is exact on constant series, for any history
// depth and step count.
func TestConstantSeriesFixedPointProperty(t *testing.T) {
	preds := []Predictor{
		ZeroOrder{}, Linear{}, Damped{Alpha: 0.7},
		WeightedSum{Weights: []float64{0.6, 0.3, 0.1}},
		Polynomial{Order: 2},
	}
	f := func(val float64, depth8, steps8 uint8) bool {
		if math.IsNaN(val) || math.IsInf(val, 0) || math.Abs(val) > 1e100 {
			return true
		}
		depth := int(depth8%5) + 1
		steps := int(steps8%4) + 1
		hist := make([][]float64, depth)
		for i := range hist {
			hist[i] = []float64{val, val * 2}
		}
		for _, p := range preds {
			got := p.Predict(hist, steps)
			if len(got) != 2 {
				return false
			}
			if math.Abs(got[0]-val) > 1e-6*(1+math.Abs(val)) {
				return false
			}
			if math.Abs(got[1]-2*val) > 1e-6*(1+math.Abs(val)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Linear is exact on any affine series regardless of slope,
// intercept and step count.
func TestLinearAffineExactnessProperty(t *testing.T) {
	f := func(a16, b16 int16, steps8 uint8) bool {
		a := float64(a16) / 7
		b := float64(b16) / 3
		steps := int(steps8%5) + 1
		// hist[0] = a·t+b at t=10, hist[1] at t=9.
		hist := [][]float64{{a*10 + b}, {a*9 + b}}
		got := Linear{}.Predict(hist, steps)
		want := a*float64(10+steps) + b
		return math.Abs(got[0]-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
