// Package predict implements speculation functions: given the most recent
// snapshots of a remote partition's variables, extrapolate their values one
// or more iterations into the future.
//
// This is §3.1's "speculation function for X_k(t) might be a weighted sum of
// its past values, x*(t) = w1·x(t−1) + w2·x(t−2) + …". The backward window
// (BW) is how many past snapshots a predictor consults; the forward distance
// is how many iterations ahead it extrapolates (used by forward windows > 1).
//
// Snapshot convention: hist[0] is the most recent value x(t−1), hist[1] is
// x(t−2), and so on. Predict(hist, s) estimates x(t−1+s), so steps = 1 means
// "the value in the not-yet-received message".
package predict

import "fmt"

// Predictor extrapolates variable vectors from their history.
type Predictor interface {
	// Predict returns the estimated snapshot `steps` iterations after
	// hist[0]. All snapshots in hist have equal length; the result has the
	// same length. Predictors degrade gracefully when hist is shorter than
	// their window (falling back to lower-order extrapolation), and return
	// nil only when hist is empty.
	Predict(hist [][]float64, steps int) []float64
	// Window returns the backward window: the maximum number of past
	// snapshots the predictor consults.
	Window() int
	// Name identifies the predictor in reports and benchmarks.
	Name() string
	// Ops returns the approximate operation count to speculate ONE variable
	// one step ahead (the paper's f_spec), used for simulated-time charging.
	Ops() float64
}

// InPlace is implemented by predictors that can write their extrapolation
// into a caller-provided buffer, letting a hot loop speculate without
// allocating. All predictors in this package implement it.
type InPlace interface {
	// PredictInto computes the same values as Predict but writes them into
	// dst, which must have len(hist[0]) elements. It returns the slice
	// holding the result — dst on the in-place paths, but implementations
	// whose algorithm is inherently out-of-place (e.g. multi-step rolling)
	// may return a freshly allocated slice instead; callers must use the
	// return value. The arithmetic (operation order, rounding) is identical
	// to Predict. Returns nil when hist is empty.
	PredictInto(dst []float64, hist [][]float64, steps int) []float64
}

// ZeroOrder predicts that values do not change: x*(t) = x(t−1). This is the
// cheapest possible speculation function (BW = 1).
type ZeroOrder struct{}

// Predict implements Predictor.
func (z ZeroOrder) Predict(hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	return z.PredictInto(make([]float64, len(hist[0])), hist, steps)
}

// PredictInto implements InPlace.
func (ZeroOrder) PredictInto(dst []float64, hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	copy(dst, hist[0])
	return dst
}

// Window implements Predictor.
func (ZeroOrder) Window() int { return 1 }

// Name implements Predictor.
func (ZeroOrder) Name() string { return "zero-order" }

// Ops implements Predictor.
func (ZeroOrder) Ops() float64 { return 1 }

// Linear extrapolates along the line through the last two snapshots:
// x*(t−1+s) = x(t−1) + s·(x(t−1) − x(t−2)). With one snapshot it degrades to
// zero-order. This is the generic analogue of the paper's velocity-based
// N-body speculation (eq. 10), with BW = 2.
type Linear struct{}

// Predict implements Predictor.
func (l Linear) Predict(hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	return l.PredictInto(make([]float64, len(hist[0])), hist, steps)
}

// PredictInto implements InPlace.
func (Linear) PredictInto(dst []float64, hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	copy(dst, hist[0])
	if len(hist) == 1 {
		return dst
	}
	s := float64(steps)
	for i := range dst {
		dst[i] += s * (hist[0][i] - hist[1][i])
	}
	return dst
}

// Window implements Predictor.
func (Linear) Window() int { return 2 }

// Name implements Predictor.
func (Linear) Name() string { return "linear" }

// Ops implements Predictor.
func (Linear) Ops() float64 { return 3 }

// Damped is Linear with the slope scaled by Alpha in (0, 1]; values whose
// trend overshoots (e.g. oscillating iterations) speculate better with a
// damped slope.
type Damped struct {
	Alpha float64
}

// Predict implements Predictor.
func (d Damped) Predict(hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	return d.PredictInto(make([]float64, len(hist[0])), hist, steps)
}

// PredictInto implements InPlace.
func (d Damped) PredictInto(dst []float64, hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	copy(dst, hist[0])
	if len(hist) == 1 {
		return dst
	}
	s := float64(steps) * d.Alpha
	for i := range dst {
		dst[i] += s * (hist[0][i] - hist[1][i])
	}
	return dst
}

// Window implements Predictor.
func (Damped) Window() int { return 2 }

// Name implements Predictor.
func (d Damped) Name() string { return fmt.Sprintf("damped(%.2f)", d.Alpha) }

// Ops implements Predictor.
func (Damped) Ops() float64 { return 4 }

// WeightedSum is the paper's literal speculation function: a fixed weighted
// sum of past snapshots, x*(t) = Σ_i Weights[i]·x(t−1−i). Multi-step
// prediction rolls the one-step predictor forward. BW = len(Weights).
type WeightedSum struct {
	Weights []float64
}

// Predict implements Predictor.
func (w WeightedSum) Predict(hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	return w.PredictInto(make([]float64, len(hist[0])), hist, steps)
}

// PredictInto implements InPlace. Only the single-step case is computed in
// place; multi-step prediction rolls the window forward through intermediate
// snapshots and returns a freshly allocated result.
func (w WeightedSum) PredictInto(dst []float64, hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	if len(w.Weights) == 0 {
		return ZeroOrder{}.PredictInto(dst, hist, steps)
	}
	n := len(hist[0])
	if steps <= 0 {
		copy(dst, hist[0])
		return dst
	}
	// window holds newest-first snapshots, rolled forward each step.
	depth := len(w.Weights)
	if depth > len(hist) {
		depth = len(hist)
	}
	// Renormalize the usable prefix of weights so a short history still
	// produces an unbiased estimate.
	var wsum float64
	for i := 0; i < depth; i++ {
		wsum += w.Weights[i]
	}
	if steps == 1 {
		for j := 0; j < n; j++ {
			dst[j] = 0
		}
		for i := 0; i < depth; i++ {
			wi := w.Weights[i]
			if wsum != 0 {
				wi /= wsum
			}
			for j := 0; j < n; j++ {
				dst[j] += wi * hist[i][j]
			}
		}
		return dst
	}
	window := make([][]float64, depth)
	for i := range window {
		window[i] = hist[i]
	}
	var out []float64
	for s := 0; s < steps; s++ {
		out = make([]float64, n)
		for i := 0; i < depth; i++ {
			wi := w.Weights[i]
			if wsum != 0 {
				wi /= wsum
			}
			for j := 0; j < n; j++ {
				out[j] += wi * window[i][j]
			}
		}
		// Shift: the prediction becomes the newest snapshot.
		copy(window[1:], window[:len(window)-1])
		window[0] = out
	}
	return out
}

// Window implements Predictor.
func (w WeightedSum) Window() int { return len(w.Weights) }

// Name implements Predictor.
func (w WeightedSum) Name() string { return fmt.Sprintf("weighted(bw=%d)", len(w.Weights)) }

// Ops implements Predictor.
func (w WeightedSum) Ops() float64 { return float64(2 * len(w.Weights)) }

// Polynomial extrapolates with the degree-(Order) polynomial through the
// last Order+1 snapshots (Lagrange form on equally spaced iterations). The
// paper's future-work section suggests higher-order derivatives; this is
// that extension. It degrades to the highest order the history supports.
type Polynomial struct {
	Order int // >= 1; Order 1 equals Linear
}

// Predict implements Predictor.
func (pl Polynomial) Predict(hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	return pl.PredictInto(make([]float64, len(hist[0])), hist, steps)
}

// PredictInto implements InPlace. The Lagrange basis weights (at most
// Order+1 of them) still allocate a small scratch slice; the per-variable
// accumulation is in place.
func (pl Polynomial) PredictInto(dst []float64, hist [][]float64, steps int) []float64 {
	if len(hist) == 0 {
		return nil
	}
	pts := pl.Order + 1
	if pts > len(hist) {
		pts = len(hist)
	}
	if pts < 2 {
		return ZeroOrder{}.PredictInto(dst, hist, steps)
	}
	n := len(hist[0])
	for j := 0; j < n; j++ {
		dst[j] = 0
	}
	// Nodes at x = 0 (oldest used) … pts−1 (newest); evaluate at
	// x = pts−1+steps. Lagrange basis weights are value-independent, so
	// compute them once.
	x := float64(pts-1) + float64(steps)
	l := make([]float64, pts)
	for i := 0; i < pts; i++ {
		li := 1.0
		for j := 0; j < pts; j++ {
			if j == i {
				continue
			}
			li *= (x - float64(j)) / (float64(i) - float64(j))
		}
		l[i] = li
	}
	for i := 0; i < pts; i++ {
		// hist index: node i corresponds to snapshot age (pts−1−i).
		h := hist[pts-1-i]
		for j := 0; j < n; j++ {
			dst[j] += l[i] * h[j]
		}
	}
	return dst
}

// Window implements Predictor.
func (pl Polynomial) Window() int { return pl.Order + 1 }

// Name implements Predictor.
func (pl Polynomial) Name() string { return fmt.Sprintf("poly(%d)", pl.Order) }

// Ops implements Predictor.
func (pl Polynomial) Ops() float64 { return float64(3 * (pl.Order + 1)) }
