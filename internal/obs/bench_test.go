package obs

import (
	"testing"
)

// The nil fast path is the price every un-instrumented run pays: it must be
// a bare nil check, not an allocation or a lock.

func BenchmarkNilCounterAdd(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var r *Registry
	h := r.Histogram("x", "", LinearBuckets(0, 1, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkNilJournalRecord(b *testing.B) {
	var j *Journal
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Record(Event{T: float64(i), Kind: EvSpecMade})
	}
}

func BenchmarkLiveCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x_total", "", L("proc", "0"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkLiveHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x", "", LinearBuckets(0, 1, 8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 8))
	}
}
