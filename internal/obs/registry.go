// Package obs is the repository's unified observability layer: a
// zero-dependency metrics registry (counters, gauges, histograms with
// per-processor / per-phase labels) and a structured run journal of ordered
// JSONL events stamped with virtual time.
//
// Every instrument is nil-safe: a nil *Registry hands out nil handles, and
// every handle method no-ops on a nil receiver, so un-instrumented runs pay
// only a nil check on the hot path. The registry renders itself in the
// Prometheus text exposition format (WriteProm), which the realtime
// package's HTTP endpoint serves for live runs and cmd/specbench dumps to a
// file for offline diffing.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates metric families in the exposition output.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increments the counter by v (v must be >= 0). No-op on nil.
func (c *Counter) Add(v float64) {
	if c == nil || v == 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by 1. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v. No-op on nil.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed upper-bound buckets
// (cumulative, Prometheus-style: counts[i] counts observations <= Buckets[i],
// with an implicit +Inf bucket at the end).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// LinearBuckets returns count bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns count bounds starting at start, each factor× the last.
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// series is one labelled instance of a metric family.
type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is all series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64
	series  map[string]*series // keyed by label signature
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid "observability off" value:
// every method no-ops and hands out nil instruments.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order for stable iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig returns the canonical signature of a label set.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// sortedLabels returns a sorted copy so equivalent label sets share a series.
func sortedLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// getSeries finds or creates the series for (name, labels), checking the
// family kind.
func (r *Registry) getSeries(name, help string, k kind, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, k, f.kind))
	}
	ls := sortedLabels(labels)
	sig := labelSig(ls)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: ls}
		switch k {
		case kindCounter:
			s.ctr = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: f.buckets}
			h.counts = make([]uint64, len(f.buckets)+1)
			s.hist = h
		}
		f.series[sig] = s
	}
	return s
}

// Counter returns (creating if needed) the counter name{labels}. Nil-safe:
// a nil registry returns a nil handle whose methods no-op.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindCounter, nil, labels).ctr
}

// Gauge returns (creating if needed) the gauge name{labels}. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindGauge, nil, labels).gauge
}

// Histogram returns (creating if needed) the histogram name{labels} with the
// given bucket upper bounds (used only on first registration; bounds must be
// sorted ascending). Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.getSeries(name, help, kindHistogram, buckets, labels).hist
}

// promLabels renders {k="v",...} (empty string for no labels) with the
// exposition-format escapes (see EscapeLabelValue) so label values carrying
// backslashes, quotes or newlines survive an expose→parse round trip.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	return "{" + LabelString(all) + "}"
}

// formatVal renders a sample value the way Prometheus does.
func formatVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm renders the registry in the Prometheus text exposition format,
// families sorted by name and series sorted by label signature, so output is
// deterministic. Nil-safe: a nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		r.mu.Unlock()
		sort.Strings(sigs)
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sig := range sigs {
			r.mu.Lock()
			s := f.series[sig]
			r.mu.Unlock()
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), formatVal(s.ctr.Value())); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), formatVal(s.gauge.Value())); err != nil {
					return err
				}
			case kindHistogram:
				h := s.hist
				h.mu.Lock()
				cum := uint64(0)
				for i, b := range h.bounds {
					cum += h.counts[i]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(s.labels, L("le", formatVal(b))), cum); err != nil {
						h.mu.Unlock()
						return err
					}
				}
				cum += h.counts[len(h.bounds)]
				_, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %s\n%s_count%s %d\n",
					f.name, promLabels(s.labels, L("le", "+Inf")), cum,
					f.name, promLabels(s.labels), formatVal(h.sum),
					f.name, promLabels(s.labels), h.total)
				h.mu.Unlock()
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Totals returns each family's value summed across its label series —
// counters and gauges sum their values; histograms contribute
// name_count and name_sum entries. Nil-safe: a nil registry returns nil.
func (r *Registry) Totals() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				out[f.name] += s.ctr.Value()
			case kindGauge:
				out[f.name] += s.gauge.Value()
			case kindHistogram:
				s.hist.mu.Lock()
				out[f.name+"_count"] += float64(s.hist.total)
				out[f.name+"_sum"] += s.hist.sum
				s.hist.mu.Unlock()
			}
		}
	}
	return out
}

// DeltaLines renders the difference after-before as sorted "name value"
// lines, skipping zero deltas — a compact per-run metrics snapshot for
// experiment reports.
func DeltaLines(before, after map[string]float64) []string {
	names := make([]string, 0, len(after))
	for name := range after {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		d := after[name] - before[name]
		if d == 0 {
			continue
		}
		out = append(out, fmt.Sprintf("%s %s", name, formatVal(d)))
	}
	return out
}
