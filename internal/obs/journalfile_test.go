package obs

import (
	"os"
	"path/filepath"
	"testing"
)

// TestJournalWriterFlushOnClose checks the buffered path: records smaller
// than the bufio buffer only reach disk once Close (or Flush) runs, and
// after Close every record is present and well-formed.
func TestJournalWriterFlushOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := NewJournalWriter(path, 0)
	if err != nil {
		t.Fatalf("NewJournalWriter: %v", err)
	}
	for i := 0; i < 10; i++ {
		w.Record(Event{T: float64(i), Proc: 1, Kind: EvSend, Iter: i, Peer: 2})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	evs, err := ReadJSONL(f)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(evs) != 10 {
		t.Fatalf("got %d events after close, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Iter != i || e.Kind != EvSend {
			t.Fatalf("event %d = %+v, want iter=%d kind=%s", i, e, i, EvSend)
		}
	}
	// Close is idempotent and records after close are dropped, not panics.
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	w.Record(Event{Kind: EvSend})
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush after Close: %v", err)
	}
}

// TestJournalWriterRotation checks the size cap: once the active file would
// exceed maxBytes it is renamed to path.1 and a fresh file continues, so an
// unbounded run cannot fill the disk with one giant journal.
func TestJournalWriterRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.jsonl")
	w, err := NewJournalWriter(path, 256)
	if err != nil {
		t.Fatalf("NewJournalWriter: %v", err)
	}
	for i := 0; i < 100; i++ {
		w.Record(Event{T: float64(i), Proc: 3, Kind: EvDeliver, Iter: i, Peer: 0, V: 0.001})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Rotations() == 0 {
		t.Fatalf("100 records under a 256-byte cap never rotated")
	}
	// Both the active file and the rotated one must stay within the cap's
	// ballpark (cap + one record of slack) and parse line by line.
	total := 0
	for _, p := range []string{path, path + ".1"} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if fi.Size() > 256+200 {
			t.Errorf("%s is %d bytes, far over the 256-byte cap", p, fi.Size())
		}
		f, err := os.Open(p)
		if err != nil {
			t.Fatalf("open %s: %v", p, err)
		}
		evs, err := ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatalf("ReadJSONL %s: %v", p, err)
		}
		total += len(evs)
	}
	if total == 0 {
		t.Fatalf("no events survived rotation")
	}
	if w.Err() != nil {
		t.Fatalf("writer error: %v", w.Err())
	}
}

// TestJournalAttachStreams checks the Journal→JournalWriter pipe: attached
// events stream to disk as they are recorded (after a flush), and Limit
// keeps the in-memory copy bounded without affecting the file.
func TestJournalAttachStreams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "attach.jsonl")
	w, err := NewJournalWriter(path, 0)
	if err != nil {
		t.Fatalf("NewJournalWriter: %v", err)
	}
	j := NewJournal()
	j.Attach(w)
	j.Limit(8)
	for i := 0; i < 64; i++ {
		j.Record(Event{T: float64(i), Kind: EvIterStart, Iter: i, Peer: NoPeer})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := j.Len(); n > 16 {
		t.Errorf("in-memory journal holds %d events with Limit(8); trim is broken", n)
	}
	if j.Dropped() == 0 {
		t.Errorf("Dropped() = 0 after trimming 64 events under Limit(8)")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	evs, err := ReadJSONL(f)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(evs) != 64 {
		t.Fatalf("file has %d events, want all 64 despite the in-memory cap", len(evs))
	}
}

// TestJournalWriterNilSafe checks every method on a nil writer is a no-op.
func TestJournalWriterNilSafe(t *testing.T) {
	var w *JournalWriter
	w.Record(Event{Kind: EvSend})
	if err := w.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if w.Err() != nil || w.Rotations() != 0 {
		t.Fatalf("nil writer reports state")
	}
}
