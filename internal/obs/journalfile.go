package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// JournalWriter streams journal events to a JSONL file through a buffered
// writer, with optional size-capped rotation — the durability layer long
// soaks attach to a Journal so tail events survive the process and the file
// never grows without bound.
//
// Writes are buffered; Flush forces them to the OS and Close flushes and
// closes. Callers on shutdown/crash paths must reach Close (a deferred Close
// right after construction is the intended shape). When maxBytes > 0 and a
// record would push the current file past it, the file is rotated: the
// current contents move to path+".1" (replacing any previous rotation) and
// writing restarts on a fresh file, so at most ~2×maxBytes is ever on disk
// and the newest events are always in the live file.
//
// A nil *JournalWriter is a valid "file journal off" value: every method
// no-ops.
type JournalWriter struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	bw       *bufio.Writer
	written  int64
	rotated  int
	err      error // first write/rotate error, sticky
}

// NewJournalWriter creates (truncating) the JSONL file at path. maxBytes <= 0
// disables rotation.
func NewJournalWriter(path string, maxBytes int64) (*JournalWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: journal file: %w", err)
	}
	return &JournalWriter{
		path:     path,
		maxBytes: maxBytes,
		f:        f,
		bw:       bufio.NewWriterSize(f, 64<<10),
	}, nil
}

// Record appends one event as a JSONL line, rotating first when the line
// would exceed the size cap. Errors are sticky and surfaced via Err/Close;
// recording past an error is a no-op so hot paths need no error handling.
func (w *JournalWriter) Record(e Event) {
	if w == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		return // Event is plain data; cannot happen
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.f == nil {
		return
	}
	if w.maxBytes > 0 && w.written > 0 && w.written+int64(len(line))+1 > w.maxBytes {
		w.rotateLocked()
		if w.err != nil {
			return
		}
	}
	if _, err := w.bw.Write(line); err != nil {
		w.err = err
		return
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		w.err = err
		return
	}
	w.written += int64(len(line)) + 1
}

// rotateLocked moves the live file to path+".1" and reopens a fresh one.
func (w *JournalWriter) rotateLocked() {
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		return
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		w.err = err
		return
	}
	f, err := os.Create(w.path)
	if err != nil {
		w.err = err
		return
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	w.written = 0
	w.rotated++
}

// Flush forces buffered lines to the OS.
func (w *JournalWriter) Flush() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.f == nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
	}
	return w.err
}

// Close flushes and closes the file, returning the first error the writer
// hit. Idempotent.
func (w *JournalWriter) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	w.f = nil
	return w.err
}

// Err returns the writer's sticky error, if any.
func (w *JournalWriter) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Rotations returns how many times the file has been rotated.
func (w *JournalWriter) Rotations() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotated
}
