package obs

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestEscapeLabelValue pins the three-character escape set of the Prometheus
// text format: backslash, double quote, and newline — and nothing else.
func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"two\nlines", `two\nlines`},
		{"{},= are fine", "{},= are fine"},
		{`all \ " three` + "\n", `all \\ \" three\n`},
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// adversarialValues are label values that break naive expositions: every
// escapable character, the label-syntax metacharacters, and mixes thereof.
var adversarialValues = []string{
	`simple`,
	`tricky\path`,
	`"quoted"`,
	"line\nbreak",
	`\" mixed \n literal`,
	`a="b",c="d"`,
	`{}`,
	`trailing\`,
	"\n",
	`\\n`, // literal backslash-backslash-n, distinct from a newline
}

// TestPromLabelRoundTrip drives every adversarial value through the full
// pipeline — registry exposition → parse → re-render → parse — and checks
// both that the recovered label value is byte-identical to the original and
// that the re-rendered text is byte-identical to the first exposition.
func TestPromLabelRoundTrip(t *testing.T) {
	reg := NewRegistry()
	for i, v := range adversarialValues {
		reg.Counter("specomp_test_escape_total", "Escaping probe.",
			L("idx", string(rune('a'+i))), L("payload", v)).Add(float64(i + 1))
	}
	var first bytes.Buffer
	if err := reg.WriteProm(&first); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}

	fams, err := ParsePromFamilies(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ParsePromFamilies: %v", err)
	}
	recovered := map[string]string{}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			var idx, payload string
			for _, l := range s.LabelPairs {
				switch l.Key {
				case "idx":
					idx = l.Value
				case "payload":
					payload = l.Value
				}
			}
			recovered[idx] = payload
		}
	}
	for i, v := range adversarialValues {
		idx := string(rune('a' + i))
		if recovered[idx] != v {
			t.Errorf("value %d: recovered %q, want %q", i, recovered[idx], v)
		}
	}

	var second bytes.Buffer
	if err := WriteFamilies(&second, fams); err != nil {
		t.Fatalf("WriteFamilies: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("parse→render is not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
			first.String(), second.String())
	}
}

// TestPromRoundTripProperty fuzzes random label values (biased toward the
// escape and metacharacter set) through escape→parse and asserts exact
// recovery. Seeded, so failures reproduce.
func TestPromRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune{'\\', '"', '\n', '{', '}', ',', '=', 'a', 'Z', '0', ' ', '_', 'µ'}
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		for n := rng.Intn(12); n > 0; n-- {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		want := sb.String()
		line := `probe_total{v="` + EscapeLabelValue(want) + `"} 1`
		s, err := parseSampleLine(line)
		if err != nil {
			t.Fatalf("trial %d: value %q rendered unparseable line %q: %v", trial, want, line, err)
		}
		if len(s.LabelPairs) != 1 || s.LabelPairs[0].Value != want {
			t.Fatalf("trial %d: recovered %q, want %q", trial, s.LabelPairs[0].Value, want)
		}
	}
}

// TestParsePromRejectsBrokenEscapes pins the failure mode: a dangling
// backslash or an unterminated quote must error, not silently truncate.
func TestParsePromRejectsBrokenEscapes(t *testing.T) {
	bad := []string{
		`m{v="unterminated} 1`,
		`m{v="dangling\` + `"} 1x`,
		`m{v="ok"` + "\n", // missing closing brace and value
		`m{v=unquoted} 1`,
	}
	for _, line := range bad {
		if _, err := ParseProm(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseProm accepted malformed line %q", line)
		}
	}
}
