package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Journal event kinds emitted by the engine and the transports. The set is
// open — consumers should tolerate unknown kinds — but these names are the
// stable schema the engine and cluster write.
const (
	EvIterStart   = "iter_start"   // engine begins iteration Iter
	EvIterEnd     = "iter_end"     // engine finishes computing iteration Iter
	EvSpecMade    = "spec_made"    // prediction substituted for peer Peer at Iter
	EvSpecChecked = "spec_checked" // prediction validated; V = unit-bad fraction
	EvSpecBad     = "spec_bad"     // validation exceeded tolerance; V = unit-bad fraction
	EvRepair      = "repair"       // iteration Iter recomputed/corrected
	EvCascade     = "cascade"      // iteration Iter recomputed due to an upstream repair
	EvOverrun     = "overrun"      // validation deferred past a Deadline expiry
	EvReconcile   = "reconcile"    // overrun iteration validated against the real message
	EvConverged   = "converged"    // Stopper terminated the run at Iter
	EvRetrans     = "retrans"      // reliable layer retransmitted a message
	EvDup         = "dup"          // duplicate delivery suppressed
	EvGiveup      = "giveup"       // message abandoned after MaxRetries

	// Crash/restart recovery (PR 3). V carries the kind-specific payload
	// noted per kind.
	EvCrash      = "crash"       // processor crashed; V = scheduled downtime (s)
	EvRestart    = "restart"     // processor restarted; Iter = new incarnation epoch
	EvPeerDead   = "peer_dead"   // reliable layer stopped retransmitting to a dead peer
	EvCheckpoint = "checkpoint"  // engine snapshot persisted; Iter = validated iter, V = bytes
	EvRestore    = "restore"     // engine state restored; Iter = validated iter of the snapshot
	EvRejoin     = "rejoin"      // rejoin request handled; Proc = survivor, Peer = rejoiner
	EvCatchup    = "catchup"     // rejoiner re-reached the surviving frontier; V = iterations replayed
	EvCatchupGap = "catchup_gap" // peer log could not cover the outage; V = first re-sendable iter

	// Wire-plane trace events (distnet, RunSpec.Trace): the cross-process
	// halves of a speculation's lifecycle, merged into one flow by
	// trace.FleetChromeEvents.
	EvSend    = "send"    // message enqueued for peer Peer at Iter; V = tag
	EvDeliver = "deliver" // message from Peer at Iter handed to the engine; V = delivery latency (s)
)

// NoPeer is the Event.Peer value for events not tied to a peer.
const NoPeer = -1

// Event is one journal record. Field order is the JSONL schema; every field
// is always present so lines are uniform and byte-stable across runs.
type Event struct {
	T    float64 `json:"t"`    // virtual (or wall) time, seconds
	Proc int     `json:"proc"` // processor the event happened on
	Kind string  `json:"kind"`
	Iter int     `json:"iter"` // iteration the event refers to (-1 if none)
	Peer int     `json:"peer"` // peer processor involved (NoPeer if none)
	V    float64 `json:"v"`    // kind-specific value (0 if unused)
}

// Journal is an append-only, concurrency-safe event log. On the simulated
// cluster the kernel schedules processors deterministically, so the same
// seed yields a byte-identical WriteJSONL output across runs. A nil *Journal
// is a valid "journal off" value: Record no-ops.
type Journal struct {
	mu      sync.Mutex
	events  []Event
	sink    *JournalWriter // when attached, every Record also streams here
	limit   int            // >0: retain only the most recent limit events in memory
	dropped int            // events trimmed from memory by the limit
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// Attach streams every subsequent Record into w (in record order) in
// addition to the in-memory log. Pair with Limit to bound memory on long
// runs while the file keeps the full history.
func (j *Journal) Attach(w *JournalWriter) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.sink = w
	j.mu.Unlock()
}

// Limit bounds the in-memory retention to the most recent n events (0
// restores unbounded retention). Events/WriteJSONL then serve only the
// retained tail; an attached JournalWriter is unaffected.
func (j *Journal) Limit(n int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.limit = n
	j.trimLocked()
	j.mu.Unlock()
}

// Dropped returns how many events the memory limit has trimmed.
func (j *Journal) Dropped() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// trimLocked enforces the memory limit, amortizing the copy by letting the
// slice grow to twice the limit before compacting.
func (j *Journal) trimLocked() {
	if j.limit <= 0 || len(j.events) <= 2*j.limit {
		return
	}
	drop := len(j.events) - j.limit
	j.dropped += drop
	j.events = append(j.events[:0], j.events[drop:]...)
}

// Record appends one event. No-op on nil.
func (j *Journal) Record(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.events = append(j.events, e)
	j.sink.Record(e) // under mu: file order matches memory order
	j.trimLocked()
	j.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events)
}

// Events returns a copy of the recorded events in order (nil on nil).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, len(j.events))
	copy(out, j.events)
	return out
}

// Count returns how many events have the given kind.
func (j *Journal) Count(kind string) int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, e := range j.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// WriteJSONL writes the journal as one JSON object per line, in record
// order. Nil-safe: a nil journal writes nothing.
func (j *Journal) WriteJSONL(w io.Writer) error {
	if j == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}
