package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-exposition escaping: label values escape backslash, double
// quote and newline; everything else passes through verbatim.

// EscapeLabelValue renders s as the escaped body of a quoted label value.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// LabelString renders pairs as `k="v",...` (no braces) with exposition
// escaping — the canonical label-block body WriteProm emits and ParseProm
// reads back.
func LabelString(pairs []Label) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// PromSample is one parsed exposition sample: a metric name, its label block
// (both the raw text between the braces and the decoded pairs), and the
// value.
type PromSample struct {
	Name   string
	Labels string // e.g. `proc="0"` — raw text between the braces
	// LabelPairs is the decoded label set, with escape sequences resolved.
	LabelPairs []Label
	Value      float64
}

// PromFamily is one metric family of an exposition: the HELP/TYPE header (if
// present) and the samples grouped under it. Histogram families include
// their _bucket/_sum/_count samples with the full sample names.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// parseQuoted scans a quoted label value starting at line[i] (the opening
// quote), resolving \\ \" \n escapes, and returns the decoded value and the
// index just past the closing quote.
func parseQuoted(line string, i int) (string, int, error) {
	if i >= len(line) || line[i] != '"' {
		return "", i, fmt.Errorf("want opening quote at column %d", i)
	}
	i++
	var b strings.Builder
	for i < len(line) {
		c := line[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(line) {
				return "", i, fmt.Errorf("dangling escape at end of line")
			}
			switch line[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", i, fmt.Errorf("unknown escape \\%c", line[i+1])
			}
			i += 2
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", i, fmt.Errorf("unterminated label value")
}

// parseSampleLine parses one `name{labels} value` (or `name value`) line.
// The label scanner honors quoting, so braces and commas inside label values
// round-trip.
func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	if i < len(line) && line[i] == '{' {
		start := i + 1
		i++
		for {
			for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
				i++
			}
			if i < len(line) && line[i] == '}' {
				break
			}
			k := i
			for i < len(line) && line[i] != '=' {
				i++
			}
			if i >= len(line) {
				return s, fmt.Errorf("label without '='")
			}
			key := strings.TrimSpace(line[k:i])
			if key == "" {
				return s, fmt.Errorf("empty label name")
			}
			i++ // '='
			val, next, err := parseQuoted(line, i)
			if err != nil {
				return s, err
			}
			i = next
			s.LabelPairs = append(s.LabelPairs, Label{Key: key, Value: val})
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
		s.Labels = line[start:i]
		i++ // '}'
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return s, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// ParseProm parses the Prometheus text exposition format (the subset
// WriteProm emits: HELP/TYPE comments and `name{labels} value` samples).
// It returns the samples in order and rejects malformed lines, so tests and
// cmd/specbench can verify a dump is well-formed. Label values round-trip
// through the exposition escapes (backslash, quote, newline).
func ParseProm(r io.Reader) ([]PromSample, error) {
	var out []PromSample
	err := scanProm(r, func(s PromSample) { out = append(out, s) }, nil)
	return out, err
}

// ParsePromFamilies parses an exposition grouped into metric families: a
// HELP/TYPE comment opens a family, and subsequent samples whose name is the
// family name (or its _bucket/_sum/_count derivative) belong to it. Samples
// with no preceding header form headerless families of their own.
func ParsePromFamilies(r io.Reader) ([]PromFamily, error) {
	var fams []PromFamily
	cur := -1 // index into fams the next sample may extend
	sample := func(s PromSample) {
		if cur >= 0 && sampleInFamily(fams[cur].Name, s.Name) {
			fams[cur].Samples = append(fams[cur].Samples, s)
			return
		}
		fams = append(fams, PromFamily{Name: s.Name, Samples: []PromSample{s}})
		cur = len(fams) - 1
	}
	header := func(name, key, text string) {
		if cur < 0 || fams[cur].Name != name {
			fams = append(fams, PromFamily{Name: name})
			cur = len(fams) - 1
		}
		if key == "HELP" {
			fams[cur].Help = text
		} else {
			fams[cur].Type = text
		}
	}
	err := scanProm(r, sample, header)
	return fams, err
}

// scanProm is the shared line scanner behind ParseProm and
// ParsePromFamilies. header is nil when comments should just be skipped.
func scanProm(r io.Reader, sample func(PromSample), header func(name, key, text string)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if header == nil {
				continue
			}
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") && validMetricName(fields[2]) {
				text := ""
				if len(fields) == 4 {
					text = fields[3]
				}
				header(fields[2], fields[1], text)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("obs: line %d: %v in %q", lineNo, err, line)
		}
		sample(s)
	}
	return sc.Err()
}

// sampleInFamily reports whether a sample named sample belongs to the family
// named fam (identical, or a histogram-derived series).
func sampleInFamily(fam, sample string) bool {
	if sample == fam {
		return true
	}
	if !strings.HasPrefix(sample, fam) {
		return false
	}
	switch sample[len(fam):] {
	case "_bucket", "_sum", "_count":
		return true
	}
	return false
}

// WriteFamilies renders families back to the text exposition format, the
// inverse of ParsePromFamilies. Output produced by WriteProm survives a
// parse/write round trip byte-identically.
func WriteFamilies(w io.Writer, fams []PromFamily) error {
	for _, f := range fams {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if f.Type != "" {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
				return err
			}
		}
		for _, s := range f.Samples {
			labels := ""
			if len(s.LabelPairs) > 0 {
				labels = "{" + LabelString(s.LabelPairs) + "}"
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labels, formatVal(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// validMetricName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// SampleNames returns the distinct metric names in samples, preserving first
// appearance order.
func SampleNames(samples []PromSample) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	return out
}
