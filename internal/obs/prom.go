package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromSample is one parsed exposition sample: a metric name, its raw label
// block (normalized, possibly empty), and the value.
type PromSample struct {
	Name   string
	Labels string // e.g. `proc="0"` — raw text between the braces
	Value  float64
}

// ParseProm parses the Prometheus text exposition format (the subset
// WriteProm emits: HELP/TYPE comments and `name{labels} value` samples).
// It returns the samples in order and rejects malformed lines, so tests and
// cmd/specbench can verify a dump is well-formed.
func ParseProm(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []PromSample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		labels := ""
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return out, fmt.Errorf("obs: line %d: unbalanced braces: %q", lineNo, line)
			}
			name = line[:i]
			labels = line[i+1 : j]
			rest = strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return out, fmt.Errorf("obs: line %d: want `name value`, got %q", lineNo, line)
			}
			name, rest = fields[0], fields[1]
		}
		if name == "" || !validMetricName(name) {
			return out, fmt.Errorf("obs: line %d: bad metric name %q", lineNo, name)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return out, fmt.Errorf("obs: line %d: bad value in %q: %v", lineNo, line, err)
		}
		out = append(out, PromSample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// validMetricName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

// SampleNames returns the distinct metric names in samples, preserving first
// appearance order.
func SampleNames(samples []PromSample) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range samples {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s.Name)
		}
	}
	return out
}
