package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "help")
	g := r.Gauge("x", "help")
	h := r.Histogram("x_seconds", "help", LinearBuckets(0, 1, 4))
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments accumulated values")
	}
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", b.String(), err)
	}
	if r.Totals() != nil {
		t.Error("nil registry returned totals")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("specs_total", "specs", L("proc", "0"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %g, want 3", got)
	}
	// Same name+labels returns the same series.
	if r.Counter("specs_total", "specs", L("proc", "0")) != c {
		t.Error("counter lookup did not dedupe")
	}
	g := r.Gauge("iter", "current iteration", L("proc", "0"))
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %g, want 5", g.Value())
	}
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Errorf("hist sum = %g, want 55.55", h.Sum())
	}
}

func TestWritePromRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("specomp_specs_made_total", "predictions", L("proc", "1")).Add(4)
	r.Counter("specomp_specs_made_total", "predictions", L("proc", "0")).Add(2)
	r.Gauge("specomp_iteration", "current iter", L("proc", "0")).Set(9)
	r.Histogram("specomp_latency_seconds", "msg latency", []float64{0.5, 1}).Observe(0.7)
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE specomp_specs_made_total counter",
		`specomp_specs_made_total{proc="0"} 2`,
		`specomp_specs_made_total{proc="1"} 4`,
		"# TYPE specomp_iteration gauge",
		"# TYPE specomp_latency_seconds histogram",
		`specomp_latency_seconds_bucket{le="0.5"} 0`,
		`specomp_latency_seconds_bucket{le="1"} 1`,
		`specomp_latency_seconds_bucket{le="+Inf"} 1`,
		"specomp_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition failed to parse: %v", err)
	}
	found := 0.0
	for _, s := range samples {
		if s.Name == "specomp_specs_made_total" {
			found += s.Value
		}
	}
	if found != 6 {
		t.Errorf("parsed specs_made sum = %g, want 6", found)
	}
	// Output must be deterministic.
	var b2 bytes.Buffer
	if err := r.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Error("two WriteProm calls differ")
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"1bad_name 3\n",
		"name}{ 3\n",
		"name{x=\"1\"} not_a_number\n",
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed %q", bad)
		}
	}
}

func TestTotalsAndDeltaLines(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", L("proc", "0")).Add(1)
	r.Counter("a_total", "", L("proc", "1")).Add(2)
	before := r.Totals()
	r.Counter("a_total", "", L("proc", "0")).Add(4)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	lines := DeltaLines(before, r.Totals())
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"a_total 4", "h_count 1", "h_sum 0.5"} {
		if !strings.Contains(joined, want) {
			t.Errorf("delta missing %q in %q", want, joined)
		}
	}
}

func TestJournalRecordAndJSONL(t *testing.T) {
	j := NewJournal()
	j.Record(Event{T: 0.5, Proc: 0, Kind: EvIterStart, Iter: 0, Peer: NoPeer})
	j.Record(Event{T: 1.5, Proc: 1, Kind: EvSpecMade, Iter: 1, Peer: 0})
	j.Record(Event{T: 2.0, Proc: 1, Kind: EvSpecBad, Iter: 1, Peer: 0, V: 0.25})
	if j.Len() != 3 || j.Count(EvSpecMade) != 1 {
		t.Fatalf("len=%d specs=%d", j.Len(), j.Count(EvSpecMade))
	}
	var b bytes.Buffer
	if err := j.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3", len(lines))
	}
	if lines[0] != `{"t":0.5,"proc":0,"kind":"iter_start","iter":0,"peer":-1,"v":0}` {
		t.Errorf("unexpected line 0: %s", lines[0])
	}
	events, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[2].V != 0.25 || events[2].Kind != EvSpecBad {
		t.Errorf("round-trip mismatch: %+v", events)
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	j.Record(Event{Kind: EvRepair})
	if j.Len() != 0 || j.Events() != nil || j.Count(EvRepair) != 0 {
		t.Error("nil journal accumulated events")
	}
	var b bytes.Buffer
	if err := j.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Error("nil journal wrote output")
	}
}
