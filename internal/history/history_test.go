package history

import (
	"testing"
	"testing/quick"
)

func TestPushAtBasic(t *testing.T) {
	r := NewRing[int](3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh ring Len=%d Cap=%d", r.Len(), r.Cap())
	}
	r.Push(1)
	r.Push(2)
	if r.At(0) != 2 || r.At(1) != 1 {
		t.Errorf("At = %d,%d want 2,1", r.At(0), r.At(1))
	}
}

func TestEvictionKeepsNewest(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 5; i++ {
		r.Push(i)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	want := []int{5, 4, 3}
	for back, w := range want {
		if got := r.At(back); got != w {
			t.Errorf("At(%d) = %d, want %d", back, got, w)
		}
	}
}

func TestNewestFirst(t *testing.T) {
	r := NewRing[string](2)
	r.Push("a")
	r.Push("b")
	r.Push("c")
	got := r.NewestFirst()
	if len(got) != 2 || got[0] != "c" || got[1] != "b" {
		t.Errorf("NewestFirst = %v, want [c b]", got)
	}
}

func TestReset(t *testing.T) {
	r := NewRing[int](2)
	r.Push(1)
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d", r.Len())
	}
	r.Push(9)
	if r.At(0) != 9 {
		t.Errorf("push after reset: At(0)=%d", r.At(0))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r := NewRing[int](2)
	r.Push(1)
	r.At(1)
}

// Property: after pushing k values into a ring of capacity c, the ring holds
// min(k, c) values and At(i) returns the (i+1)-th most recent push.
func TestRingMatchesSliceModelProperty(t *testing.T) {
	f := func(capacity8, pushes8 uint8) bool {
		capacity := int(capacity8%10) + 1
		pushes := int(pushes8 % 50)
		r := NewRing[int](capacity)
		var model []int // newest first
		for v := 0; v < pushes; v++ {
			r.Push(v)
			model = append([]int{v}, model...)
			if len(model) > capacity {
				model = model[:capacity]
			}
		}
		if r.Len() != len(model) {
			return false
		}
		for i, w := range model {
			if r.At(i) != w {
				return false
			}
		}
		nf := r.NewestFirst()
		for i, w := range model {
			if nf[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPushAliasesCallerSlice(t *testing.T) {
	// Documents the plain ring's sharp edge: Push stores slice-bearing values
	// as-is, so a caller mutating its buffer afterwards rewrites history.
	// Producers that recycle buffers must use NewRingCopy.
	r := NewRing[[]float64](2)
	buf := []float64{1, 2}
	r.Push(buf)
	buf[0] = 99
	if got := r.At(0)[0]; got != 99 {
		t.Fatalf("plain ring unexpectedly copied: got %g", got)
	}
}

func TestNewRingCopyProtectsAgainstMutation(t *testing.T) {
	// Regression: with a clone function, mutating the pushed slice (or a
	// struct carrying one) after Push must not corrupt stored history.
	clone := func(s []float64) []float64 {
		cp := make([]float64, len(s))
		copy(cp, s)
		return cp
	}
	r := NewRingCopy(2, clone)
	buf := []float64{1, 2}
	r.Push(buf)
	buf[0], buf[1] = 99, 99
	if got := r.At(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("stored history corrupted by caller mutation: %v", got)
	}
	// Eviction path clones too.
	r.Push(buf) // {99,99}
	buf[0] = -1
	r.Push(buf) // evicts {1,2}
	if got := r.At(1); got[0] != 99 {
		t.Fatalf("evicting push corrupted older entry: %v", got)
	}
	if got := r.At(0); got[0] != -1 {
		t.Fatalf("newest entry wrong: %v", got)
	}
}

func TestNewRingCopyNilCloneRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRingCopy(nil) did not panic")
		}
	}()
	NewRingCopy[int](1, nil)
}
