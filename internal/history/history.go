// Package history provides fixed-capacity ring buffers holding the most
// recent snapshots of a peer's variables — the storage behind the paper's
// backward window (BW): "the maximum number of past values of the variables
// used in the speculation function".
package history

// Ring is a bounded history of snapshots. The zero value is unusable; create
// one with NewRing. Pushing beyond capacity discards the oldest snapshot.
type Ring[T any] struct {
	buf   []T
	start int // index of oldest element
	n     int
	clone func(T) T // applied on Push when set (NewRingCopy)
}

// NewRing creates a ring holding up to capacity snapshots. Push stores the
// value as given — a T containing a slice or pointer stays aliased to the
// caller's memory; use NewRingCopy when the caller reuses its buffers.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("history: capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// NewRingCopy creates a ring that defensively copies every pushed snapshot
// through clone, so a caller mutating its value after Push cannot corrupt
// stored history. Use this whenever T carries a slice the producer recycles
// (e.g. an app's scratch state vector).
func NewRingCopy[T any](capacity int, clone func(T) T) *Ring[T] {
	if clone == nil {
		panic("history: nil clone")
	}
	r := NewRing[T](capacity)
	r.clone = clone
	return r
}

// Cap returns the ring's capacity (the backward window size).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of snapshots currently stored.
func (r *Ring[T]) Len() int { return r.n }

// Push appends a snapshot as the newest entry, evicting the oldest if full.
func (r *Ring[T]) Push(v T) {
	if r.clone != nil {
		v = r.clone(v)
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
}

// At returns the snapshot `back` steps into the past: At(0) is the newest,
// At(Len()-1) the oldest. It panics if back is out of range.
func (r *Ring[T]) At(back int) T {
	if back < 0 || back >= r.n {
		panic("history: At out of range")
	}
	idx := (r.start + r.n - 1 - back) % len(r.buf)
	return r.buf[idx]
}

// NewestFirst returns the stored snapshots ordered newest first, which is the
// convention the predict package uses (hist[0] = x(t−1), hist[1] = x(t−2)…).
// The returned slice is freshly allocated.
func (r *Ring[T]) NewestFirst() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Reset empties the ring without reallocating.
func (r *Ring[T]) Reset() {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.start, r.n = 0, 0
}
