// Package history provides fixed-capacity ring buffers holding the most
// recent snapshots of a peer's variables — the storage behind the paper's
// backward window (BW): "the maximum number of past values of the variables
// used in the speculation function".
package history

// Ring is a bounded history of snapshots. The zero value is unusable; create
// one with NewRing. Pushing beyond capacity discards the oldest snapshot.
type Ring[T any] struct {
	buf   []T
	start int // index of oldest element
	n     int
	clone func(T) T // applied on Push when set (NewRingCopy)
}

// NewRing creates a ring holding up to capacity snapshots. Push stores the
// value as given — a T containing a slice or pointer stays aliased to the
// caller's memory; use NewRingCopy when the caller reuses its buffers.
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic("history: capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// NewRingCopy creates a ring that defensively copies every pushed snapshot
// through clone, so a caller mutating its value after Push cannot corrupt
// stored history. Use this whenever T carries a slice the producer recycles
// (e.g. an app's scratch state vector).
func NewRingCopy[T any](capacity int, clone func(T) T) *Ring[T] {
	if clone == nil {
		panic("history: nil clone")
	}
	r := NewRing[T](capacity)
	r.clone = clone
	return r
}

// Cap returns the ring's capacity (the backward window size).
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns the number of snapshots currently stored.
func (r *Ring[T]) Len() int { return r.n }

// Push appends a snapshot as the newest entry, evicting the oldest if full.
func (r *Ring[T]) Push(v T) {
	if r.clone != nil {
		v = r.clone(v)
	}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % len(r.buf)
}

// At returns the snapshot `back` steps into the past: At(0) is the newest,
// At(Len()-1) the oldest. It panics if back is out of range.
func (r *Ring[T]) At(back int) T {
	if back < 0 || back >= r.n {
		panic("history: At out of range")
	}
	idx := (r.start + r.n - 1 - back) % len(r.buf)
	return r.buf[idx]
}

// NewestFirst returns the stored snapshots ordered newest first, which is the
// convention the predict package uses (hist[0] = x(t−1), hist[1] = x(t−2)…).
// The returned slice is freshly allocated.
func (r *Ring[T]) NewestFirst() []T {
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Reset empties the ring without reallocating.
func (r *Ring[T]) Reset() {
	var zero T
	for i := range r.buf {
		r.buf[i] = zero
	}
	r.start, r.n = 0, 0
}

// IterRing is a fixed-capacity associative ring indexed by iteration number:
// iteration t lives in slot t mod capacity, so lookups and inserts are O(1)
// with no hashing and no per-entry allocation. It is the storage primitive
// behind the engine's value plane: per-iteration state (snapshots, views,
// predictions) whose live range is a sliding window of bounded width.
//
// Putting iteration t evicts whatever older iteration previously occupied
// slot t mod capacity; the evicted value is returned so callers can recycle
// its buffers. The zero value is unusable; create one with NewIterRing.
type IterRing[T any] struct {
	slots []iterSlot[T]
	n     int
	max   int // highest iteration ever Put (valid when any Put happened)
	put   bool
}

type iterSlot[T any] struct {
	iter int
	ok   bool
	v    T
}

// NewIterRing creates a ring able to hold `capacity` consecutive iterations.
func NewIterRing[T any](capacity int) *IterRing[T] {
	if capacity <= 0 {
		panic("history: capacity must be positive")
	}
	return &IterRing[T]{slots: make([]iterSlot[T], capacity)}
}

// Cap returns the width of the iteration window the ring can hold.
func (r *IterRing[T]) Cap() int { return len(r.slots) }

// Len returns the number of iterations currently stored.
func (r *IterRing[T]) Len() int { return r.n }

// MaxIter returns the highest iteration ever Put, and whether any Put has
// happened. Evictions and deletions do not lower it; it is an upper bound
// for descending scans.
func (r *IterRing[T]) MaxIter() (int, bool) { return r.max, r.put }

func (r *IterRing[T]) slot(iter int) *iterSlot[T] {
	i := iter % len(r.slots)
	if i < 0 {
		i += len(r.slots)
	}
	return &r.slots[i]
}

// Get returns the value stored for iteration iter.
func (r *IterRing[T]) Get(iter int) (T, bool) {
	s := r.slot(iter)
	if s.ok && s.iter == iter {
		return s.v, true
	}
	var zero T
	return zero, false
}

// Ptr returns a pointer to iteration iter's stored value for in-place
// mutation, or nil when the iteration is absent.
func (r *IterRing[T]) Ptr(iter int) *T {
	s := r.slot(iter)
	if s.ok && s.iter == iter {
		return &s.v
	}
	return nil
}

// Put stores v for iteration iter, replacing any value already stored for
// that iteration. When the slot held a DIFFERENT (older or newer) iteration,
// that entry is evicted and returned so the caller can recycle it.
func (r *IterRing[T]) Put(iter int, v T) (evicted T, evictedIter int, wasEvicted bool) {
	s := r.slot(iter)
	if s.ok && s.iter != iter {
		evicted, evictedIter, wasEvicted = s.v, s.iter, true
		r.n--
	}
	// Entry count only grows when the slot was empty or just vacated.
	if !s.ok || wasEvicted {
		r.n++
	}
	s.iter, s.ok, s.v = iter, true, v
	if !r.put || iter > r.max {
		r.max = iter
	}
	r.put = true
	return evicted, evictedIter, wasEvicted
}

// Delete removes iteration iter, returning its value for recycling.
func (r *IterRing[T]) Delete(iter int) (T, bool) {
	s := r.slot(iter)
	if s.ok && s.iter == iter {
		v := s.v
		var zero T
		s.v, s.ok = zero, false
		r.n--
		return v, true
	}
	var zero T
	return zero, false
}

// Reset empties the ring without reallocating the slot array.
func (r *IterRing[T]) Reset() {
	var zero iterSlot[T]
	for i := range r.slots {
		r.slots[i] = zero
	}
	r.n, r.max, r.put = 0, 0, false
}
