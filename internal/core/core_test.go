package core

import (
	"math"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/netmodel"
	"specomp/internal/predict"
)

// coupledMap is a toy synchronous iterative application: each processor owns
// one variable of a globally coupled logistic map,
//
//	x_j(t+1) = (1−eps)·f(x_j(t)) + eps·mean_k f(x_k(t)),  f(x) = r·x·(1−x)
//
// It is nonlinear (so generic predictors are imperfect) yet smooth (so
// speculation is usually within tolerance) — a miniature of the paper's
// N-body behaviour.
type coupledMap struct {
	p         *cluster.Proc
	r, eps    float64
	threshold float64
	computeOp float64
	repairOp  float64
}

func (a *coupledMap) f(x float64) float64 { return a.r * x * (1 - x) }

func (a *coupledMap) InitLocal() []float64 {
	return []float64{0.25 + 0.5*float64(a.p.ID())/float64(a.p.P())}
}

func (a *coupledMap) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for _, part := range view {
		sum += a.f(part[0])
	}
	mean := sum / float64(len(view))
	x := view[a.p.ID()][0]
	return []float64{(1-a.eps)*a.f(x) + a.eps*mean}
}

func (a *coupledMap) ComputeOps() float64 { return a.computeOp }

func (a *coupledMap) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(a.threshold, 1, pred, act)
}

func (a *coupledMap) RepairOps(r CheckResult) float64 { return a.repairOp }

// driftApp evolves affinely: x_j(t+1) = x_j(t) + c_j. The Linear predictor
// is exact on it, so every speculation must pass the check.
type driftApp struct {
	p         *cluster.Proc
	threshold float64
}

func (a *driftApp) InitLocal() []float64 { return []float64{float64(a.p.ID())} }

func (a *driftApp) Compute(view [][]float64, t int) []float64 {
	return []float64{view[a.p.ID()][0] + 0.5 + float64(a.p.ID())}
}

func (a *driftApp) ComputeOps() float64 { return 100 }

func (a *driftApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(a.threshold, 1, pred, act)
}

func (a *driftApp) RepairOps(r CheckResult) float64 { return 100 }

func uniformCluster(p int, delay float64) cluster.Config {
	return cluster.Config{
		Machines: cluster.UniformMachines(p, 1000),
		Net:      netmodel.Fixed{D: delay},
	}
}

func runCoupled(t *testing.T, cc cluster.Config, cfg Config, threshold float64) []Result {
	t.Helper()
	results, err := RunCluster(cc, cfg, func(p *cluster.Proc) App {
		return &coupledMap{p: p, r: 3.2, eps: 0.3, threshold: threshold, computeOp: 500, repairOp: 250}
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func finals(results []Result) []float64 {
	out := make([]float64, 0, len(results))
	for _, r := range results {
		out = append(out, r.Final...)
	}
	return out
}

// serialCoupled computes the reference trajectory without any cluster.
func serialCoupled(p, iters int) []float64 {
	r, eps := 3.2, 0.3
	f := func(x float64) float64 { return r * x * (1 - x) }
	x := make([]float64, p)
	for j := range x {
		x[j] = 0.25 + 0.5*float64(j)/float64(p)
	}
	for t := 0; t < iters; t++ {
		next := make([]float64, p)
		sum := 0.0
		for _, v := range x {
			sum += f(v)
		}
		mean := sum / float64(p)
		for j, v := range x {
			next[j] = (1-eps)*f(v) + eps*mean
		}
		x = next
	}
	return x
}

func TestBlockingMatchesSerialReference(t *testing.T) {
	const p, iters = 4, 20
	results := runCoupled(t, uniformCluster(p, 0.01), Config{FW: 0, MaxIter: iters}, 0.01)
	want := serialCoupled(p, iters)
	got := finals(results)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("var %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestZeroThresholdSpeculationIsExact(t *testing.T) {
	// With threshold 0 every imperfect prediction is repaired from actual
	// values. For FW=1, sends are always validated first, so the speculative
	// run must reproduce the blocking run exactly. For FW>=2 the same holds
	// under the HoldSends ablation (which forbids sending values computed
	// from unvalidated inputs).
	const p, iters = 4, 25
	want := serialCoupled(p, iters)
	cases := []Config{
		{FW: 1, MaxIter: iters},
		{FW: 2, MaxIter: iters, HoldSends: true},
		{FW: 3, MaxIter: iters, HoldSends: true},
	}
	for _, cfg := range cases {
		results := runCoupled(t, uniformCluster(p, 0.01), cfg, 0)
		got := finals(results)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("FW=%d hold=%v var %d: got %v, want %v", cfg.FW, cfg.HoldSends, i, got[i], want[i])
			}
		}
		agg := Aggregate(results)
		if agg.SpecsMade == 0 {
			t.Errorf("FW=%d: no speculations made", cfg.FW)
		}
		if agg.Repairs == 0 {
			t.Errorf("FW=%d: zero threshold but no repairs", cfg.FW)
		}
	}
}

func TestSpeculativeSendsStayBounded(t *testing.T) {
	// FW>=2 without HoldSends transmits values computed from unvalidated
	// inputs; the trajectory may deviate from the blocking run, but for this
	// bounded map it must stay in the map's invariant interval (0, 1).
	const p, iters = 4, 25
	results := runCoupled(t, uniformCluster(p, 0.01), Config{FW: 2, MaxIter: iters}, 0)
	for _, v := range finals(results) {
		if !(v > 0 && v < 1) || math.IsNaN(v) {
			t.Errorf("value escaped invariant interval: %v", v)
		}
	}
	agg := Aggregate(results)
	if agg.SpecsMade == 0 || agg.SpecsChecked != agg.SpecsMade {
		t.Errorf("inconsistent spec accounting: %+v", agg)
	}
}

func TestLooseThresholdStaysNearReference(t *testing.T) {
	const p, iters = 4, 25
	want := serialCoupled(p, iters)
	results := runCoupled(t, uniformCluster(p, 0.01), Config{FW: 1, MaxIter: iters}, 0.05)
	got := finals(results)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.25 {
			t.Errorf("var %d drifted: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPerfectPredictionNeverRepairs(t *testing.T) {
	const p, iters = 3, 15
	results, err := RunCluster(uniformCluster(p, 0.01),
		Config{FW: 1, MaxIter: iters, Predictor: predict.Linear{}},
		func(pr *cluster.Proc) App { return &driftApp{p: pr, threshold: 1e-9} })
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregate(results)
	if agg.SpecsMade == 0 {
		t.Fatal("no speculations made")
	}
	// The very first speculated round has only one snapshot of history, so
	// the linear predictor degrades to zero-order there and misses; from the
	// second round on it must be exact. Hence at most one bad speculation
	// per (proc, peer) pair.
	if agg.SpecsBad > p*(p-1) {
		t.Errorf("SpecsBad = %d, want <= %d (startup round only)", agg.SpecsBad, p*(p-1))
	}
	if agg.Repairs > p {
		t.Errorf("Repairs = %d, want <= %d", agg.Repairs, p)
	}
	// Values must equal the blocking run.
	blocking, err := RunCluster(uniformCluster(p, 0.01),
		Config{FW: 0, MaxIter: iters},
		func(pr *cluster.Proc) App { return &driftApp{p: pr, threshold: 1e-9} })
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if d := MaxAbsErr(results[i].Final, blocking[i].Final); d > 1e-9 {
			t.Errorf("proc %d: speculative differs from blocking by %g", i, d)
		}
	}
}

func TestSpeculationMasksLatency(t *testing.T) {
	// Two equal processors, compute time per iteration 0.5s (500 ops at
	// 1000 ops/s), link latency 2s. Blocking pays the latency every
	// iteration; speculation overlaps it.
	const iters = 30
	cc := uniformCluster(2, 2.0)
	noSpec := runCoupled(t, cc, Config{FW: 0, MaxIter: iters}, 0.5)
	spec := runCoupled(t, uniformCluster(2, 2.0), Config{FW: 1, MaxIter: iters}, 0.5)
	tNo := TotalTime(noSpec)
	tSpec := TotalTime(spec)
	if tSpec >= tNo {
		t.Fatalf("speculation did not help: spec=%g nospec=%g", tSpec, tNo)
	}
	// Blocking: >= latency per iteration. Speculative with latency > compute:
	// still bounded below by the latency chain, but far less than blocking's
	// compute+latency serialization.
	if tNo < float64(iters)*2.0 {
		t.Errorf("blocking run implausibly fast: %g", tNo)
	}
	improvement := (tNo - tSpec) / tNo
	if improvement < 0.1 {
		t.Errorf("improvement only %.1f%%", improvement*100)
	}
}

func TestLargerFWMasksTransientSpike(t *testing.T) {
	// A transient 6s spike on the path 0→1 around t=1. FW=2 can ride
	// through more of it than FW=1.
	mk := func() cluster.Config {
		return cluster.Config{
			Machines: cluster.UniformMachines(2, 1000),
			Net: netmodel.TransientSpike{
				Inner: netmodel.Fixed{D: 0.3},
				Src:   0, Dst: 1,
				From: 0.5, Until: 1.5, Extra: 6,
			},
		}
	}
	const iters = 20
	t1 := TotalTime(runCoupled(t, mk(), Config{FW: 1, MaxIter: iters}, 0.5))
	t2 := TotalTime(runCoupled(t, mk(), Config{FW: 2, MaxIter: iters}, 0.5))
	t0 := TotalTime(runCoupled(t, mk(), Config{FW: 0, MaxIter: iters}, 0.5))
	if !(t2 <= t1 && t1 <= t0) {
		t.Errorf("want t(FW2) <= t(FW1) <= t(FW0), got %g, %g, %g", t2, t1, t0)
	}
	if t2 >= t0 {
		t.Errorf("FW=2 no better than blocking: %g vs %g", t2, t0)
	}
}

func TestHoldSendsCompletesAndSpeculates(t *testing.T) {
	// The relative speed of HoldSends vs speculative sends depends on phase
	// alignment (covered by the ablation benchmark); here we verify the mode
	// runs to completion, still speculates, and still masks some latency
	// relative to blocking.
	const iters = 20
	held := runCoupled(t, uniformCluster(3, 1.0), Config{FW: 2, MaxIter: iters, HoldSends: true}, 0.5)
	blocking := runCoupled(t, uniformCluster(3, 1.0), Config{FW: 0, MaxIter: iters}, 0.5)
	if Aggregate(held).SpecsMade == 0 {
		t.Error("HoldSends made no speculations")
	}
	if TotalTime(held) >= TotalTime(blocking) {
		t.Errorf("HoldSends (%g) not faster than blocking (%g)", TotalTime(held), TotalTime(blocking))
	}
}

func TestStatsConsistency(t *testing.T) {
	results := runCoupled(t, uniformCluster(4, 0.5), Config{FW: 2, MaxIter: 15}, 0.01)
	for _, r := range results {
		s := r.Stats
		if s.SpecsChecked != s.SpecsMade {
			t.Errorf("proc %d: checked %d != made %d", r.Proc, s.SpecsChecked, s.SpecsMade)
		}
		if s.SpecsBad > s.SpecsChecked {
			t.Errorf("proc %d: bad %d > checked %d", r.Proc, s.SpecsBad, s.SpecsChecked)
		}
		if s.UnitsBad > s.UnitsTotal {
			t.Errorf("proc %d: units bad %d > total %d", r.Proc, s.UnitsBad, s.UnitsTotal)
		}
		if s.Iters != 15 {
			t.Errorf("proc %d: iters %d", r.Proc, s.Iters)
		}
		if s.TotalTime <= 0 {
			t.Errorf("proc %d: non-positive total time", r.Proc)
		}
		if s.BadFraction() < 0 || s.BadFraction() > 1 {
			t.Errorf("proc %d: BadFraction out of range", r.Proc)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]float64, float64) {
		results := runCoupled(t, uniformCluster(4, 0.7), Config{FW: 2, MaxIter: 20}, 0.01)
		return finals(results), TotalTime(results)
	}
	v1, t1 := run()
	v2, t2 := run()
	if t1 != t2 {
		t.Errorf("times differ: %g vs %g", t1, t2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Errorf("values differ at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
}

func TestSingleProcessorNeedsNoMessages(t *testing.T) {
	results := runCoupled(t, uniformCluster(1, 1000), Config{FW: 1, MaxIter: 10}, 0.01)
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	s := results[0].Stats
	if s.SpecsMade != 0 || s.CommTime != 0 {
		t.Errorf("single proc made specs or waited: %+v", s)
	}
	want := serialCoupled(1, 10)
	if math.Abs(results[0].Final[0]-want[0]) > 1e-12 {
		t.Errorf("single proc value %v, want %v", results[0].Final[0], want[0])
	}
}

func TestConfigValidation(t *testing.T) {
	_, err := RunCluster(uniformCluster(2, 0.1), Config{FW: 1, MaxIter: 0},
		func(p *cluster.Proc) App { return &driftApp{p: p} })
	if err == nil {
		t.Error("MaxIter=0 should error")
	}
	_, err = RunCluster(uniformCluster(2, 0.1), Config{FW: -1, MaxIter: 5},
		func(p *cluster.Proc) App { return &driftApp{p: p} })
	if err == nil {
		t.Error("negative FW should error")
	}
}

func TestRelErrCheck(t *testing.T) {
	r := RelErrCheck(0.1, 2, []float64{1.0, 2.0, 3.0}, []float64{1.05, 2.5, 3.0})
	if r.Total != 3 {
		t.Errorf("Total = %d", r.Total)
	}
	if r.Bad != 1 { // only the middle element exceeds 10% relative error
		t.Errorf("Bad = %d, want 1", r.Bad)
	}
	if r.Ops != 6 {
		t.Errorf("Ops = %g, want 6", r.Ops)
	}
	// Length mismatch invalidates everything.
	r2 := RelErrCheck(0.1, 1, []float64{1}, []float64{1, 2})
	if r2.Bad != 2 {
		t.Errorf("mismatched lengths: Bad = %d, want 2", r2.Bad)
	}
}

func TestMaxAbsErr(t *testing.T) {
	if got := MaxAbsErr([]float64{1, 5, 2}, []float64{1, 2, 2}); got != 3 {
		t.Errorf("MaxAbsErr = %g, want 3", got)
	}
	if got := MaxAbsErr(nil, nil); got != 0 {
		t.Errorf("empty MaxAbsErr = %g, want 0", got)
	}
}

func TestHeterogeneousClusterBalancedByApp(t *testing.T) {
	// Heterogeneous capacities with equal per-proc ops: the slow machine
	// dominates; this just exercises the engine on unequal machines.
	cc := cluster.Config{
		Machines: cluster.LinearMachines(4, 1000, 10),
		Net:      netmodel.Fixed{D: 0.05},
	}
	results := runCoupled(t, cc, Config{FW: 1, MaxIter: 10}, 0.01)
	if TotalTime(results) <= 0 {
		t.Error("no time elapsed")
	}
	for _, r := range results {
		if len(r.Final) != 1 {
			t.Errorf("proc %d: final len %d", r.Proc, len(r.Final))
		}
	}
}
