package core

import (
	"math"
	"testing"
	"testing/quick"

	"specomp/internal/cluster"
	"specomp/internal/netmodel"
	"specomp/internal/predict"
)

// pubApp exchanges only the first element of its two-element partition —
// a minimal Publisher. The second element evolves locally; peers only read
// the published first element.
type pubApp struct {
	pid, p int
}

func (a *pubApp) InitLocal() []float64 { return []float64{float64(a.pid + 1), 100} }

func (a *pubApp) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for k, part := range view {
		if k == a.pid {
			sum += part[0]
		} else {
			sum += part[0] // published element only
		}
	}
	local := view[a.pid]
	return []float64{local[0] + 0.1, local[1] + sum}
}

func (a *pubApp) ComputeOps() float64 { return 100 }

func (a *pubApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	if len(pred) != 1 || len(act) != 1 {
		// Published payloads must be the 1-element projection.
		return CheckResult{Bad: len(act), Total: len(act), Ops: 1}
	}
	return RelErrCheck(1e-9, 1, pred, act)
}

func (a *pubApp) RepairOps(r CheckResult) float64 { return 100 }

func (a *pubApp) Publish(local []float64) []float64 { return local[:1] }

func TestPublisherProjectsMessages(t *testing.T) {
	const p, iters = 3, 10
	results, err := RunCluster(uniformCluster(p, 0.05),
		Config{FW: 1, MaxIter: iters, Predictor: predict.Linear{}},
		func(pr *cluster.Proc) App { return &pubApp{pid: pr.ID(), p: pr.P()} })
	if err != nil {
		t.Fatal(err)
	}
	// The published element evolves affinely (x += 0.1), so the linear
	// predictor is exact once history exists and nothing is repaired after
	// the startup round.
	agg := Aggregate(results)
	if agg.SpecsMade == 0 {
		t.Fatal("no speculation")
	}
	if agg.SpecsBad > p*(p-1) {
		t.Errorf("SpecsBad = %d beyond the startup round", agg.SpecsBad)
	}
	// Bytes on the wire reflect the projection: 1 float per message, not 2.
	// (header is 64 bytes; payload 8 bytes.)
	for _, r := range results {
		if len(r.Final) != 2 {
			t.Errorf("proc %d: final %v", r.Proc, r.Final)
		}
	}
}

func TestPublisherReducesTraffic(t *testing.T) {
	run := func(pub bool) int {
		c := cluster.New(cluster.Config{
			Machines: cluster.UniformMachines(2, 1000),
			Net:      netmodel.Fixed{D: 0.01},
		})
		var bytes int
		c.Start(func(pr *cluster.Proc) {
			var app App
			if pub {
				app = &pubApp{pid: pr.ID(), p: pr.P()}
			} else {
				app = &noPubApp{pid: pr.ID(), p: pr.P()}
			}
			if _, err := Run(pr, app, Config{FW: 1, MaxIter: 5}); err != nil {
				t.Error(err)
			}
			if pr.ID() == 0 {
				sent, _, b := pr.Stats()
				_ = sent
				bytes = b
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return bytes
	}
	withPub := run(true)
	withoutPub := run(false)
	if withPub >= withoutPub {
		t.Errorf("Publisher did not shrink traffic: %d vs %d bytes", withPub, withoutPub)
	}
}

// noPubApp is pubApp's twin without the Publisher method (no embedding, so
// nothing is promoted): whole two-element partitions travel on the wire.
type noPubApp struct {
	pid, p int
}

func (a *noPubApp) InitLocal() []float64 { return []float64{float64(a.pid + 1), 100} }

func (a *noPubApp) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for _, part := range view {
		sum += part[0]
	}
	local := view[a.pid]
	return []float64{local[0] + 0.1, local[1] + sum}
}

func (a *noPubApp) ComputeOps() float64 { return 100 }

func (a *noPubApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(1e-9, 1, pred, act)
}

func (a *noPubApp) RepairOps(r CheckResult) float64 { return 100 }

// stopApp converges (constant values) and stops via Stopper after a fixed
// iteration.
type stopApp struct {
	pid, p   int
	stopIter int
}

func (a *stopApp) InitLocal() []float64 { return []float64{float64(a.pid)} }

func (a *stopApp) Compute(view [][]float64, t int) []float64 {
	out := make([]float64, 1)
	out[0] = view[a.pid][0]
	return out
}

func (a *stopApp) ComputeOps() float64 { return 50 }

func (a *stopApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(1e-9, 1, pred, act)
}

func (a *stopApp) RepairOps(r CheckResult) float64 { return 50 }

func (a *stopApp) Done(view [][]float64, t int) bool { return t >= a.stopIter }

func (a *stopApp) DoneOps() float64 { return 1 }

func TestStopperTerminatesAllProcessorsConsistently(t *testing.T) {
	for _, fw := range []int{0, 1, 2} {
		results, err := RunCluster(uniformCluster(3, 0.05),
			Config{FW: fw, MaxIter: 100},
			func(pr *cluster.Proc) App { return &stopApp{pid: pr.ID(), p: pr.P(), stopIter: 7} })
		if err != nil {
			t.Fatalf("FW=%d: %v", fw, err)
		}
		for _, r := range results {
			if !r.Converged {
				t.Errorf("FW=%d proc %d: not converged", fw, r.Proc)
			}
			if r.Stats.Iters != 8 {
				t.Errorf("FW=%d proc %d: iters = %d, want 8", fw, r.Proc, r.Stats.Iters)
			}
			if len(r.Final) != 1 {
				t.Errorf("FW=%d proc %d: missing final value", fw, r.Proc)
			}
		}
	}
}

func TestStopperNeverFiringRunsToMaxIter(t *testing.T) {
	results, err := RunCluster(uniformCluster(2, 0.05),
		Config{FW: 1, MaxIter: 12},
		func(pr *cluster.Proc) App { return &stopApp{pid: pr.ID(), p: pr.P(), stopIter: 1 << 30} })
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Converged || r.Stats.Iters != 12 {
			t.Errorf("proc %d: converged=%v iters=%d", r.Proc, r.Converged, r.Stats.Iters)
		}
	}
}

func TestBackwardWindowFeedsPredictor(t *testing.T) {
	// The quadratic predictor needs 3 snapshots. On a quadratic trajectory
	// (x(t+1) = x(t) + t) it is exact once BW >= 3, inexact with BW = 2.
	quadApp := func(pr *cluster.Proc) App { return &quadDrift{pid: pr.ID()} }
	run := func(bw int, pred predict.Predictor) int {
		results, err := RunCluster(uniformCluster(3, 0.05),
			Config{FW: 1, BW: bw, MaxIter: 20, Predictor: pred}, quadApp)
		if err != nil {
			t.Fatal(err)
		}
		return Aggregate(results).SpecsBad
	}
	badPoly := run(3, predict.Polynomial{Order: 2})
	badLin := run(2, predict.Linear{})
	// Linear misses every round on a quadratic (error 1 per step vs tight
	// threshold); quadratic only misses during startup.
	if badPoly >= badLin {
		t.Errorf("poly bad=%d not below linear bad=%d", badPoly, badLin)
	}
}

type quadDrift struct{ pid int }

func (a *quadDrift) InitLocal() []float64 { return []float64{float64(a.pid)} }

func (a *quadDrift) Compute(view [][]float64, t int) []float64 {
	return []float64{view[a.pid][0] + float64(t)}
}

func (a *quadDrift) ComputeOps() float64 { return 50 }

func (a *quadDrift) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(1e-9, 1, pred, act)
}

func (a *quadDrift) RepairOps(r CheckResult) float64 { return 50 }

// Property: for random small configurations, the engine completes, checks
// every speculation, and produces identical results on a second run.
func TestEngineInvariantsProperty(t *testing.T) {
	f := func(p8, fw8, iters8 uint8, th8 uint8) bool {
		p := int(p8%4) + 2
		fw := int(fw8 % 3)
		iters := int(iters8%15) + 3
		threshold := float64(th8%100) / 500 // 0 .. 0.2
		run := func() ([]Result, error) {
			return RunCluster(uniformCluster(p, 0.03),
				Config{FW: fw, MaxIter: iters},
				func(pr *cluster.Proc) App {
					return &coupledMap{p: pr, r: 3.1, eps: 0.25, threshold: threshold, computeOp: 200, repairOp: 100}
				})
		}
		r1, err := run()
		if err != nil {
			return false
		}
		r2, err := run()
		if err != nil {
			return false
		}
		for i := range r1 {
			s := r1[i].Stats
			if s.SpecsChecked != s.SpecsMade || s.SpecsBad > s.SpecsChecked {
				return false
			}
			if s.Iters != iters {
				return false
			}
			if math.IsNaN(r1[i].Final[0]) {
				return false
			}
			if r1[i].Final[0] != r2[i].Final[0] || s.TotalTime != r2[i].Stats.TotalTime {
				return false // determinism
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// badOnceApp forces exactly one failed check mid-run so cascades can be
// observed under deep forward windows.
type badOnceApp struct {
	pid     int
	badIter int
}

func (a *badOnceApp) InitLocal() []float64 { return []float64{float64(a.pid)} }

func (a *badOnceApp) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for _, p := range view {
		sum += p[0]
	}
	return []float64{view[a.pid][0]*0.5 + 0.01*sum}
}

func (a *badOnceApp) ComputeOps() float64 { return 100 }

func (a *badOnceApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	if t == a.badIter {
		return CheckResult{Bad: 1, Total: 1, Ops: 1}
	}
	return CheckResult{Bad: 0, Total: 1, Ops: 1}
}

func (a *badOnceApp) RepairOps(r CheckResult) float64 { return 50 }

func TestCascadeRecomputesDeepPipeline(t *testing.T) {
	// With FW=3 the frontier runs ahead of validation, so a failed check at
	// iteration 5 must cascade through the already-computed iterations.
	results, err := RunCluster(uniformCluster(3, 1.0),
		Config{FW: 3, MaxIter: 15},
		func(pr *cluster.Proc) App { return &badOnceApp{pid: pr.ID(), badIter: 5} })
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregate(results)
	if agg.Repairs == 0 {
		t.Fatal("forced bad check did not trigger a repair")
	}
	if agg.CascadeRedos == 0 {
		t.Error("deep pipeline repair did not cascade")
	}
	// FW=1 never cascades (nothing is computed beyond the validated iter).
	shallow, err := RunCluster(uniformCluster(3, 1.0),
		Config{FW: 1, MaxIter: 15},
		func(pr *cluster.Proc) App { return &badOnceApp{pid: pr.ID(), badIter: 5} })
	if err != nil {
		t.Fatal(err)
	}
	if got := Aggregate(shallow).CascadeRedos; got != 0 {
		t.Errorf("FW=1 cascaded %d times", got)
	}
}

// chainApp depends only on adjacent processor IDs (a 1-D chain).
type chainApp struct {
	pid, p int
}

func (a *chainApp) InitLocal() []float64 { return []float64{float64(a.pid)} }

func (a *chainApp) Compute(view [][]float64, t int) []float64 {
	sum := view[a.pid][0]
	n := 1.0
	if a.pid > 0 {
		sum += view[a.pid-1][0]
		n++
	}
	if a.pid < a.p-1 {
		sum += view[a.pid+1][0]
		n++
	}
	// Non-neighbour entries must be nil.
	for k, part := range view {
		if k != a.pid && (k < a.pid-1 || k > a.pid+1) && part != nil {
			panic("received a non-neighbour payload")
		}
	}
	return []float64{sum / n}
}

func (a *chainApp) ComputeOps() float64 { return 60 }

func (a *chainApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(0.05, 1, pred, act)
}

func (a *chainApp) RepairOps(r CheckResult) float64 { return 60 }

func (a *chainApp) Needs(peer int) bool { return peer == a.pid-1 || peer == a.pid+1 }

func (a *chainApp) NeededBy(peer int) bool { return a.Needs(peer) }

func TestNeighborsRestrictExchange(t *testing.T) {
	const p, iters = 5, 10
	c := cluster.New(cluster.Config{
		Machines: cluster.UniformMachines(p, 1000),
		Net:      netmodel.Fixed{D: 0.05},
	})
	finals := make([][]float64, p)
	c.Start(func(pr *cluster.Proc) {
		res, err := Run(pr, &chainApp{pid: pr.ID(), p: p}, Config{FW: 1, MaxIter: iters})
		if err != nil {
			t.Error(err)
			return
		}
		finals[pr.ID()] = res.Final
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Interior processors send to exactly 2 neighbours per iteration; the
	// chain ends to 1.
	for i := 0; i < p; i++ {
		sent, _, _ := c.Proc(i).Stats()
		wantPeers := 2
		if i == 0 || i == p-1 {
			wantPeers = 1
		}
		if sent != wantPeers*iters {
			t.Errorf("proc %d sent %d messages, want %d", i, sent, wantPeers*iters)
		}
		if len(finals[i]) != 1 {
			t.Errorf("proc %d missing final", i)
		}
	}
	// The chain averages toward a consensus of the initial values.
	if finals[2][0] < 0.5 || finals[2][0] > 3.5 {
		t.Errorf("center value %v implausible", finals[2][0])
	}
}
