package core

// The dependency structure. The paper's model is synchronous iteration over
// a fixed neighbor set — in the general case all-to-all, optionally
// restricted through the Neighbors extension. DepGraph generalizes that to
// an arbitrary directed dependency graph over the run's processors: an edge
// (From → To) means processor To reads processor From's iteration payloads,
// so To speculates on From's output, checks the prediction when the actual
// broadcast lands, and repairs on mismatch. A multi-stage pipeline is a
// chain; a stencil is a band; the classical engine is the complete graph —
// the degenerate case every pre-DAG app runs through unchanged.
//
// The graph is static for the lifetime of a run and must be identical on
// every processor (it is part of the run's configuration, like FW and the
// policies). Resolution order when the engine starts: Config.Graph if set,
// else the App's Grapher extension, else the Neighbors extension, else the
// complete graph.

import (
	"fmt"
	"sort"
)

// Edge is one directed dependency: processor To reads processor From's
// iteration payloads. Policies that differentiate behaviour per dependency
// (EdgeSpecPolicy, EdgeCheckPolicy) receive the edge they act on.
type Edge struct {
	From int
	To   int
}

// DepGraph is a static directed dependency graph over n processors.
// Construct one with NewDepGraph, CompleteGraph or ChainGraph; the zero
// value is not usable.
type DepGraph struct {
	n   int
	in  [][]int // in[j]: sorted ranks whose payloads node j reads
	out [][]int // out[j]: sorted ranks that read node j's payloads
	adj []bool  // adj[from*n+to]
}

// NewDepGraph builds a dependency graph over n processors from an explicit
// edge list. Self-loops and out-of-range endpoints are rejected; duplicate
// edges collapse. Nodes with no edges at all are legal — they run the
// iteration loop in isolation.
func NewDepGraph(n int, edges []Edge) (*DepGraph, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: DepGraph needs n >= 1, got %d", n)
	}
	g := &DepGraph{
		n:   n,
		in:  make([][]int, n),
		out: make([][]int, n),
		adj: make([]bool, n*n),
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("core: DepGraph edge %d->%d out of range [0,%d)", e.From, e.To, n)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("core: DepGraph self-loop on node %d", e.From)
		}
		if g.adj[e.From*n+e.To] {
			continue
		}
		g.adj[e.From*n+e.To] = true
		g.in[e.To] = append(g.in[e.To], e.From)
		g.out[e.From] = append(g.out[e.From], e.To)
	}
	for j := 0; j < n; j++ {
		sort.Ints(g.in[j])
		sort.Ints(g.out[j])
	}
	return g, nil
}

// CompleteGraph is the paper's general model: every processor reads every
// other ("each variable can potentially be a function of all other
// variables"). It is the degenerate DepGraph the classical engine runs as.
func CompleteGraph(n int) *DepGraph {
	edges := make([]Edge, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, Edge{From: i, To: j})
			}
		}
	}
	g, err := NewDepGraph(n, edges)
	if err != nil {
		panic(err) // unreachable: generated edges are always valid
	}
	return g
}

// ChainGraph is the linear pipeline 0 → 1 → ... → n-1: each stage reads
// only its predecessor's output.
func ChainGraph(n int) *DepGraph {
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{From: i - 1, To: i})
	}
	g, err := NewDepGraph(n, edges)
	if err != nil {
		panic(err) // unreachable
	}
	return g
}

// Nodes returns the number of processors the graph spans.
func (g *DepGraph) Nodes() int { return g.n }

// In returns the sorted ranks node j reads from. Callers must not mutate it.
func (g *DepGraph) In(j int) []int { return g.in[j] }

// Out returns the sorted ranks that read node j. Callers must not mutate it.
func (g *DepGraph) Out(j int) []int { return g.out[j] }

// HasEdge reports whether node `to` reads node `from`.
func (g *DepGraph) HasEdge(from, to int) bool {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return false
	}
	return g.adj[from*g.n+to]
}

// Edges returns every edge, sorted by (From, To).
func (g *DepGraph) Edges() []Edge {
	var out []Edge
	for from := 0; from < g.n; from++ {
		for _, to := range g.out[from] {
			out = append(out, Edge{From: from, To: to})
		}
	}
	return out
}

// Grapher is an optional App extension declaring an arbitrary task DAG: the
// engine reads the dependency structure from Graph(p) at startup instead of
// assuming all-to-all exchange. Every processor of a run must return an
// identical graph. Config.Graph, when set, takes precedence; Grapher takes
// precedence over the pairwise Neighbors extension.
type Grapher interface {
	// Graph returns the run's dependency graph over p processors. Returning
	// nil falls back to the Neighbors/complete-graph resolution.
	Graph(p int) *DepGraph
}

// resolveDeps computes this processor's local view of the run's dependency
// structure: the sorted list of ranks it reads (its in-edges) plus O(1)
// needs/neededBy masks. Resolution order: Config.Graph, then Grapher, then
// Neighbors, then the complete graph. The Neighbors predicates are consulted
// once here — they are static for a run by contract.
func resolveDeps(app App, g *DepGraph, self, np int) (in []int, needs, neededBy []bool, err error) {
	if g == nil {
		if gr, ok := app.(Grapher); ok {
			g = gr.Graph(np)
		}
	}
	needs = make([]bool, np)
	neededBy = make([]bool, np)
	if g != nil {
		if g.Nodes() != np {
			return nil, nil, nil, fmt.Errorf("core: DepGraph spans %d nodes, run has %d processors", g.Nodes(), np)
		}
		in = g.In(self)
		for _, k := range in {
			needs[k] = true
		}
		for _, k := range g.Out(self) {
			neededBy[k] = true
		}
		return in, needs, neededBy, nil
	}
	nbrs, restricted := app.(Neighbors)
	for k := 0; k < np; k++ {
		if k == self {
			continue
		}
		if !restricted || nbrs.Needs(k) {
			needs[k] = true
			in = append(in, k)
		}
		if !restricted || nbrs.NeededBy(k) {
			neededBy[k] = true
		}
	}
	return in, needs, neededBy, nil
}
