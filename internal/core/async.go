package core

import (
	"fmt"

	"specomp/internal/cluster"
)

// AsyncConfig parameterizes the asynchronous baseline.
type AsyncConfig struct {
	// MaxIter is the number of local iterations each processor performs.
	MaxIter int
}

// RunAsync executes the *asynchronous iterations* baseline the paper cites
// as related work (Bertsekas & Tsitsiklis): a processor never waits — each
// local iteration uses the newest peer values that happen to have arrived,
// however stale. Unlike speculative computation there is no prediction, no
// error bound and no repair, so correctness holds only for contracting
// iterations (e.g. Jacobi on a dominant system), and the effective
// information delay is unbounded.
//
// It exists as a comparison point: speculative computation keeps the
// synchronous algorithm's per-iteration semantics (bounded, checked error)
// while recovering most of the asynchronous method's wait-free speed.
func RunAsync(p *cluster.Proc, app App, cfg AsyncConfig) (Result, error) {
	if cfg.MaxIter < 1 {
		return Result{}, fmt.Errorf("core: MaxIter must be >= 1, got %d", cfg.MaxIter)
	}
	pub, _ := app.(Publisher)

	// newest[k] holds the newest payload seen from peer k.
	newest := make([][]float64, p.P())
	latestIter := make([]int, p.P())
	for k := range latestIter {
		latestIter[k] = -1
	}
	local := app.InitLocal()

	stats := Stats{Iters: cfg.MaxIter}
	for t := 0; t < cfg.MaxIter; t++ {
		payload := local
		if pub != nil {
			payload = pub.Publish(local)
		}
		for k := 0; k < p.P(); k++ {
			if k != p.ID() {
				p.Send(k, DataTag, t, payload)
			}
		}
		// Drain whatever has arrived; keep only the newest per peer.
		for {
			m, ok := p.TryRecv(cluster.Any, DataTag)
			if !ok {
				break
			}
			if m.Iter > latestIter[m.Src] {
				latestIter[m.Src], newest[m.Src] = m.Iter, m.Data
			}
		}
		// First iterations must still block until every peer has been heard
		// from once — there is no value to substitute before that.
		for k := 0; k < p.P(); k++ {
			if k == p.ID() || newest[k] != nil {
				continue
			}
			for newest[k] == nil {
				m := p.Recv(cluster.Any, DataTag)
				if m.Iter > latestIter[m.Src] {
					latestIter[m.Src], newest[m.Src] = m.Iter, m.Data
				}
			}
		}
		view := make([][]float64, p.P())
		copy(view, newest)
		view[p.ID()] = local
		local = app.Compute(view, t)
		p.Compute(app.ComputeOps(), cluster.PhaseCompute)
	}
	stats.ComputeTime = p.PhaseTime(cluster.PhaseCompute)
	stats.CommTime = p.PhaseTime(cluster.PhaseComm)
	stats.TotalTime = p.Now()
	return Result{Proc: p.ID(), Final: local, Stats: stats}, nil
}

// RunAsyncCluster is the RunCluster analogue for the asynchronous baseline.
func RunAsyncCluster(cc cluster.Config, cfg AsyncConfig, factory Factory) ([]Result, error) {
	c := cluster.New(cc)
	results := make([]Result, c.P())
	errs := make([]error, c.P())
	c.Start(func(p *cluster.Proc) {
		app := factory(p)
		res, err := RunAsync(p, app, cfg)
		results[p.ID()] = res
		errs[p.ID()] = err
	})
	if err := c.Run(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: processor %d: %w", i, err)
		}
	}
	return results, nil
}
