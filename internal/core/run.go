package core

import (
	"fmt"

	"specomp/internal/cluster"
)

// Factory builds one processor's App. It runs inside the simulated process,
// so it may consult p for its identity, capacity and cluster size.
type Factory func(p *cluster.Proc) App

// RunCluster builds a cluster from cc, runs the synchronous iterative
// application on every processor with the given engine configuration, and
// returns the per-processor results (indexed by processor).
func RunCluster(cc cluster.Config, cfg Config, factory Factory) ([]Result, error) {
	c := cluster.New(cc)
	results := make([]Result, c.P())
	errs := make([]error, c.P())
	c.Start(func(p *cluster.Proc) {
		app := factory(p)
		res, err := Run(p, app, cfg)
		results[p.ID()] = res
		errs[p.ID()] = err
	})
	if err := c.Run(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: processor %d: %w", i, err)
		}
	}
	return results, nil
}

// TotalTime returns the wall (virtual) time of a run: the maximum
// per-processor finish time, i.e. the paper's t_total.
func TotalTime(results []Result) float64 {
	worst := 0.0
	for _, r := range results {
		if r.Stats.TotalTime > worst {
			worst = r.Stats.TotalTime
		}
	}
	return worst
}

// Aggregate sums the per-processor stats and returns per-iteration phase
// averages over the slowest processor's clocks — the quantities in Table 2.
type AggregateStats struct {
	SpecsMade    int
	SpecsChecked int
	SpecsBad     int
	UnitsBad     int64
	UnitsTotal   int64
	Repairs      int
	CascadeRedos int
	Overruns     int
	Reconciles   int
	Retries      int // reliable-transport retransmissions
	DupsDropped  int // duplicate deliveries suppressed
	GiveUps      int // messages abandoned after MaxRetries

	Checkpoints  int     // engine snapshots persisted
	Restores     int     // post-crash state restorations
	CatchupIters int     // iterations replayed to re-reach the frontier
	Crashes      int     // processor crash events
	DowntimeSec  float64 // total virtual seconds processors spent dead

	// Phase times of the processor that finished last (per whole run).
	MaxCompute float64
	MaxComm    float64
	MaxSpec    float64
	MaxCheck   float64
	MaxCorrect float64
	Total      float64
}

// Aggregate combines per-processor results.
func Aggregate(results []Result) AggregateStats {
	var a AggregateStats
	lastIdx := 0
	for i, r := range results {
		s := r.Stats
		a.SpecsMade += s.SpecsMade
		a.SpecsChecked += s.SpecsChecked
		a.SpecsBad += s.SpecsBad
		a.UnitsBad += s.UnitsBad
		a.UnitsTotal += s.UnitsTotal
		a.Repairs += s.Repairs
		a.CascadeRedos += s.CascadeRedos
		a.Overruns += s.Overruns
		a.Reconciles += s.Reconciles
		a.Retries += s.Net.Retries
		a.DupsDropped += s.Net.DupsDropped
		a.GiveUps += s.Net.GiveUps
		a.Checkpoints += s.Checkpoints
		a.Restores += s.Restores
		a.CatchupIters += s.CatchupIters
		a.Crashes += s.Net.Crashes
		a.DowntimeSec += s.Net.DowntimeSec
		if s.TotalTime > a.Total {
			a.Total = s.TotalTime
			lastIdx = i
		}
	}
	s := results[lastIdx].Stats
	a.MaxCompute = s.ComputeTime
	a.MaxComm = s.CommTime
	a.MaxSpec = s.SpecTime
	a.MaxCheck = s.CheckTime
	a.MaxCorrect = s.CorrectTime
	return a
}

// BadFraction returns the aggregate fraction of checked speculations that
// failed — the measured k.
func (a AggregateStats) BadFraction() float64 {
	if a.SpecsChecked == 0 {
		return 0
	}
	return float64(a.SpecsBad) / float64(a.SpecsChecked)
}

// UnitBadFraction returns the aggregate per-unit failure fraction.
func (a AggregateStats) UnitBadFraction() float64 {
	if a.UnitsTotal == 0 {
		return 0
	}
	return float64(a.UnitsBad) / float64(a.UnitsTotal)
}
