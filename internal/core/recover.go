package core

// Crash/restart recovery (see DESIGN.md "Crash recovery"): every
// CheckpointEvery iterations the engine snapshots its state to stable
// storage; a restarted processor restores the latest snapshot, asks each
// needed peer to re-send broadcasts it lost (rejoin), and replays forward —
// on re-sent actuals where possible, on speculation where a catch-up gap
// makes verification impossible. Surviving peers bridge the outage through
// the graceful-degradation machinery: the failure detector lets them skip
// waiting on a dead peer, and MaxCrashOverrun lets speculation run deeper
// past the forward window until the rejoiner returns.

import (
	"fmt"
	"sort"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
)

// FailureDetector is an optional Transport extension reporting whether a
// peer is currently inside a crash window. The simulated cluster implements
// it as a perfect failure detector; real deployments would back it with
// heartbeats and accept false positives.
type FailureDetector interface {
	PeerDown(peer int) bool
}

var _ FailureDetector = (*cluster.Proc)(nil)

// Epocher is an optional Transport extension exposing the processor's
// incarnation epoch (bumped on every restart); it brands checkpoints.
type Epocher interface {
	Epoch() int
}

var _ Epocher = (*cluster.Proc)(nil)

// postCrashWindow is how many validations of a rejoined peer's predictions
// feed the post-crash prediction-error decay histogram.
const postCrashWindow = 32

// intake dispatches one delivered message: data to the stash, recovery
// protocol to its handlers. Every engine receive funnels through here so a
// rejoin request is served no matter what the processor is blocked on.
func (e *engine) intake(m cluster.Message) {
	switch m.Tag {
	case DataTag:
		// First-wins is enforced by the plane: a rejoin re-send must never
		// overwrite the copy peers already computed against.
		e.plane.stash(m.Src, m.Iter, m.Data)
	case RejoinTag:
		e.handleRejoin(m)
	case RejoinAckTag:
		e.handleRejoinAck(m)
	}
}

// sendRejoin asks peer k to re-send every broadcast above iteration have.
func (e *engine) sendRejoin(k, have int) {
	e.p.Send(k, RejoinTag, have, nil)
}

// sendData re-sends a logged broadcast payload. Logged payloads are
// immutable engine-owned copies, so a SharedSender transport may alias them
// instead of copying.
func (e *engine) sendData(dst, iter int, data []float64) {
	if e.shared != nil {
		e.shared.SendShared(dst, DataTag, iter, data)
		return
	}
	e.p.Send(dst, DataTag, iter, data)
}

// handleRejoin serves a peer's rejoin/refill request: re-send every logged
// broadcast above m.Iter, then ack with our frontier and the oldest
// iteration still in the log, so the requester can detect an unrecoverable
// gap. Serving is idempotent — the requester's stash is first-wins.
func (e *engine) handleRejoin(m cluster.Message) {
	k := m.Src
	oldest := e.frontier + 1 // nothing re-sendable unless the log says so
	if e.sentLog != nil {
		if n := e.sentLog.Len(); n > 0 {
			oldest = e.sentLog.At(n - 1).iter
			for i := n - 1; i >= 0; i-- {
				if h := e.sentLog.At(i); h.iter > m.Iter {
					e.sendData(k, h.iter, h.data)
				}
			}
		}
	}
	e.p.Send(k, RejoinAckTag, e.frontier, []float64{float64(oldest)})
	if e.postCrashLeft != nil {
		e.postCrashLeft[k] = postCrashWindow
	}
	e.ob.rejoinServed(k, m.Iter)
}

// handleRejoinAck processes a peer's answer to our rejoin/refill request.
// Anything below the peer's oldest logged broadcast can never arrive: mark
// it as a catch-up gap so validation accepts the speculation unverified
// instead of blocking forever. The frontier in the ack sets the catch-up
// target a freshly restored processor races toward.
func (e *engine) handleRejoinAck(m cluster.Message) {
	k := m.Src
	oldest := 0
	if len(m.Data) > 0 {
		oldest = int(m.Data[0])
	}
	if e.noActualBefore != nil && oldest > e.noActualBefore[k] {
		if oldest > e.validated+1 {
			e.ob.catchupGap(k, oldest)
		}
		e.noActualBefore[k] = oldest
	}
	if e.catchupTarget >= 0 && m.Iter > e.catchupTarget {
		e.catchupTarget = m.Iter
	}
}

// anyNeededPeerDown reports whether the failure detector sees any peer this
// processor reads from inside a crash window.
func (e *engine) anyNeededPeerDown() bool {
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		if e.fd.PeerDown(k) {
			return true
		}
	}
	return false
}

// noteCatchup records, once per restore, the moment the replay re-reaches
// the surviving peers' frontier.
func (e *engine) noteCatchup() {
	if e.catchupTarget < 0 || e.frontier < e.catchupTarget {
		return
	}
	n := e.frontier - e.restoreFrontier
	e.stats.CatchupIters += n
	e.ob.catchup(e.frontier, n)
	e.catchupTarget = -1
}

// maybeRestore loads the latest checkpoint, if any, and rejoins the
// computation from it. Called once from Run before the main loop; a fresh
// processor (no checkpoint yet) starts from iteration zero as usual.
func (e *engine) maybeRestore() error {
	blob, ok := e.store.Load(e.p.ID())
	if !ok {
		return nil
	}
	s, err := checkpoint.Decode(blob)
	if err != nil {
		return fmt.Errorf("core: restoring checkpoint: %w", err)
	}
	if s.Proc != e.p.ID() {
		return fmt.Errorf("core: checkpoint for processor %d loaded on %d", s.Proc, e.p.ID())
	}
	e.applySnapshot(s)
	e.restored = true
	e.restoreFrontier = e.frontier
	e.catchupTarget = e.frontier
	e.stats.Restores++
	e.ob.restored(e.validated)
	// Ask every peer we read from to refill what the crash lost (anything
	// above our restored frontier, plus re-sends of unvalidated actuals we
	// may be missing) and to report its frontier. Requests lost to further
	// crashes are retried from actual()'s patience loop.
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		e.sendRejoin(k, e.validated)
	}
	return nil
}

// takeCheckpoint snapshots the engine to stable storage, charging the
// configured cost to the perf model.
func (e *engine) takeCheckpoint() {
	blob := checkpoint.Encode(e.buildSnapshot())
	e.store.Save(e.p.ID(), blob)
	if ops := e.cfg.CheckpointOps + e.cfg.CheckpointOpsPerByte*float64(len(blob)); ops > 0 {
		e.p.Compute(ops, cluster.PhaseOther)
	}
	e.stats.Checkpoints++
	e.stats.CheckpointBytes += int64(len(blob))
	e.ob.checkpointed(e.validated, len(blob))
}

// buildSnapshot assembles the engine state in the canonical (ascending by
// iteration) order the checkpoint encoding requires, reading it out of the
// value plane.
func (e *engine) buildSnapshot() *checkpoint.Snapshot {
	epoch := 0
	if e.ep != nil {
		epoch = e.ep.Epoch()
	}
	s := &checkpoint.Snapshot{
		Proc:      e.p.ID(),
		Epoch:     epoch,
		Validated: e.validated,
		Frontier:  e.frontier,
		Own:       e.plane.ownEntries(e.validated, e.frontier),
		Hist:      make([][]checkpoint.Entry, e.p.P()),
		Received:  make([][]checkpoint.Entry, e.p.P()),
		Preds:     e.plane.predRows(e.validated, e.frontier),
		Overrun:   sortedKeys(e.overrun),
	}
	// Stash entries below the retention horizon are dead (no lookup reaches
	// them); the emission window keeps blobs minimal and stable.
	from := e.validated - e.lookback()
	for k := 0; k < e.p.P(); k++ {
		s.Hist[k] = e.plane.histEntries(k)
		s.Received[k] = e.plane.receivedEntries(k, from)
	}
	for i := e.sentLog.Len() - 1; i >= 0; i-- { // oldest first
		h := e.sentLog.At(i)
		s.SentLog = append(s.SentLog, checkpoint.Entry{Iter: h.iter, Data: h.data})
	}
	return s
}

// applySnapshot loads snapshot state into a freshly constructed engine and
// rebuilds the derived views for the unvalidated range, so pending checks,
// repairs and cascades can run exactly as they would have.
func (e *engine) applySnapshot(s *checkpoint.Snapshot) {
	e.validated, e.frontier = s.Validated, s.Frontier
	for _, en := range s.Own {
		e.plane.setOwn(en.Iter, en.Data)
	}
	for k, hs := range s.Hist {
		if k >= e.p.P() || k == e.p.ID() {
			continue
		}
		for _, en := range hs {
			e.plane.pushHistory(k, en.Iter, en.Data)
		}
	}
	for k, rs := range s.Received {
		if k >= e.p.P() || k == e.p.ID() {
			continue
		}
		for _, en := range rs {
			e.plane.stash(k, en.Iter, en.Data)
		}
	}
	for _, row := range s.Preds {
		data := e.plane.newPredRow(row.Iter)
		copy(data, row.Data)
	}
	for _, it := range s.Overrun {
		e.overrun[it] = true
	}
	for _, en := range s.SentLog {
		e.sentLog.Push(histEntry{iter: en.Iter, data: en.Data})
	}
	for t := e.validated + 1; t <= e.frontier; t++ {
		view := e.plane.newViewRow(t)
		view[e.p.ID()] = e.plane.ownAt(t)
		preds := e.plane.predsAt(t)
		for k := 0; k < e.p.P(); k++ {
			if k == e.p.ID() || !e.needs(k) {
				continue
			}
			if preds != nil && preds[k] != nil {
				view[k] = preds[k]
				continue
			}
			v, _ := e.plane.actualOf(k, t)
			view[k] = v
		}
	}
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
