// Package core implements the paper's primary contribution: speculative
// computation for synchronous iterative algorithms.
//
// A synchronous iterative algorithm evaluates X(t+1) = F(X(t)) with the
// variable set X partitioned over p processors; each iteration every
// processor broadcasts its partition and waits for every other partition
// before computing (Figure 1 of the paper). With speculation (Figure 3), a
// processor instead *predicts* the contents of messages that have not yet
// arrived, computes on the predictions, and validates them when the real
// messages arrive — masking communication latency with useful work.
//
// The engine supports:
//
//   - FW (forward window): how many iterations may rest on unvalidated
//     speculated inputs. FW=0 is the classical blocking algorithm; FW=1 is
//     Figure 3; FW≥2 pipelines further ahead (Figure 4).
//   - BW (backward window): how many past snapshots the speculation function
//     consults, via the predict.Predictor or an app-supplied Speculator.
//   - Error checking and repair: when a prediction fails its tolerance
//     check, the engine recomputes the affected iteration from the actual
//     values (charging the app-defined repair cost), and cascades the
//     recomputation through any later speculatively computed iterations.
package core

import (
	"fmt"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/history"
	"specomp/internal/obs"
	"specomp/internal/predict"
)

// Message tags used by the engine. DataTag carries partition exchanges;
// RejoinTag and RejoinAckTag carry the crash-recovery protocol (recover.go).
const (
	DataTag      = 1
	RejoinTag    = 2 // rejoin/refill request: Iter = highest iteration held
	RejoinAckTag = 3 // response: Iter = responder frontier, Data[0] = oldest re-sendable iter
)

// Transport is what the engine needs from an execution substrate. The
// simulated cluster's *cluster.Proc implements it against virtual time; the
// realtime package implements it over goroutines, channels and the wall
// clock. Compute charges work to the substrate's clock — a no-op for wall
// clock substrates, where the work happens inside the app itself.
type Transport interface {
	ID() int
	P() int
	Now() float64
	Compute(ops float64, ph cluster.Phase)
	Send(dst, tag, iter int, data []float64)
	TryRecv(src, tag int) (cluster.Message, bool)
	Recv(src, tag int) cluster.Message
	PhaseTime(ph cluster.Phase) float64
}

var _ Transport = (*cluster.Proc)(nil)

// DeadlineReceiver is an optional Transport extension providing a receive
// bounded by a timeout (in the transport's time unit). ok=false means the
// deadline elapsed with no matching message. The engine requires it for
// graceful degradation (Config.Deadline); transports without it fall back
// to blocking receives.
type DeadlineReceiver interface {
	RecvDeadline(src, tag int, timeout float64) (cluster.Message, bool)
}

var _ DeadlineReceiver = (*cluster.Proc)(nil)

// Noter is an optional Transport extension for point-event timeline marks
// (overruns, reconciliations). The simulated cluster forwards notes to its
// OnEvent hook.
type Noter interface {
	Note(kind string)
}

// NetStatser is an optional Transport extension exposing transport-level
// counters (retransmissions, duplicate suppressions); the engine copies
// them into Stats.Net at the end of a run.
type NetStatser interface {
	NetStats() cluster.NetStats
}

// CheckResult reports the outcome of validating one speculated message.
type CheckResult struct {
	Bad   int     // check units out of tolerance
	Total int     // check units examined
	Ops   float64 // operation cost of performing the check (charged to the clock)
}

// App is one processor's view of a synchronous iterative application.
type App interface {
	// InitLocal returns the processor's initial partition values X_j(0).
	InitLocal() []float64
	// Compute evaluates X_j(t+1) from the global view of iteration t.
	// view[k] holds partition k's values (actual or speculated);
	// view[j] is the local partition. Compute must not retain view.
	Compute(view [][]float64, t int) []float64
	// ComputeOps is the operation count of one Compute call
	// (the paper's N_i·f_comp).
	ComputeOps() float64
	// Check compares a speculated snapshot of peer k's partition against the
	// actual one, judging whether computations based on the prediction are
	// acceptable (the paper's error > threshold test). local is the local
	// partition at iteration t, needed by error metrics that relate the
	// speculation error to local state (e.g. eq. 11's particle distances).
	Check(peer int, predicted, actual, local []float64, t int) CheckResult
	// RepairOps is the operation cost of repairing the local computation
	// after a failed check (the paper's k·N_i·f_comp recomputation charge,
	// or a cheaper incremental correction).
	RepairOps(r CheckResult) float64
}

// Publisher is an optional App extension: instead of broadcasting the whole
// local partition every iteration, the engine broadcasts Publish(local) —
// e.g. a stencil code publishes only its edge rows. Peers' view entries,
// speculation, and error checking then all operate on the published form,
// which shrinks both message sizes and speculation/checking overhead. The
// local entry view[j] always stays the full partition.
type Publisher interface {
	Publish(local []float64) []float64
}

// Neighbors is an optional App extension restricting the exchange pattern:
// the paper's general model is all-to-all ("each variable can potentially
// be a function of all other variables"), but stencil-style applications
// read only a few peers, and speculating or checking payloads that are
// never read is pure overhead. Needs(k) reports whether this processor
// reads peer k's payload; NeededBy(k) whether peer k reads this
// processor's. Implementations must be mutually consistent across
// processors (j.Needs(k) == k.NeededBy(j)), or receives will deadlock.
// When an App implements Neighbors, unneeded peers get no messages and a
// nil view entry, and Stopper.Done sees nil entries for them too.
type Neighbors interface {
	Needs(peer int) bool
	NeededBy(peer int) bool
}

// Corrector is an optional App extension implementing the paper's
// "correction function": instead of recomputing X_j(t+1) from scratch when
// a speculation fails its check, the app patches the already-computed local
// values incrementally given the prediction that was used and the actual
// message (e.g. N-body subtracts the speculated pair forces and adds the
// actual ones). Correct must return values identical to recomputing with
// the corrected view; the engine still charges RepairOps.
type Corrector interface {
	// Correct returns the fixed X_j(t+1). computed is the speculatively
	// computed local result; local is X_j(t); pred and act are peer k's
	// speculated and actual iteration-t payloads.
	Correct(computed, local []float64, peer int, pred, act []float64, t int) []float64
}

// Stopper is an optional App extension for convergence-based termination.
// After iteration t is fully validated, Done is evaluated on the *actual*
// exchanged snapshots of iteration t — every processor holds the identical
// set (each peer's broadcast payload plus its own), so all processors reach
// the same decision deterministically and stop at the same logical
// iteration, without any extra synchronization round.
type Stopper interface {
	// Done reports whether the computation has converged. actualView[k] is
	// processor k's iteration-t broadcast payload (the published form when
	// the app is a Publisher, including the caller's own entry).
	Done(actualView [][]float64, t int) bool
	// DoneOps is the operation cost charged per evaluation.
	DoneOps() float64
}

// Speculator is an optional App extension for domain-specific speculation
// (e.g. the N-body velocity extrapolation of eq. 10). hist holds the actual
// snapshots of the peer's partition, newest first; steps is how many
// iterations past hist[0] to extrapolate. It returns the prediction and the
// operation cost charged to the clock.
type Speculator interface {
	Speculate(peer int, hist [][]float64, steps int) (pred []float64, ops float64)
}

// Config parameterizes an engine run.
type Config struct {
	// FW is the forward window. 0 disables speculation entirely.
	FW int
	// BW is the backward window: depth of per-peer history retained for the
	// speculation function. Defaults to max(Predictor.Window(), 2).
	BW int
	// Predictor is the generic speculation function used when the App does
	// not implement Speculator. Defaults to predict.Linear{}.
	Predictor predict.Predictor
	// MaxIter is the number of iterations to execute. Must be >= 1.
	MaxIter int
	// HoldSends, when true with FW >= 2, delays sending a speculatively
	// computed partition until its inputs have been validated (ablation of
	// the "speculative sends" design decision).
	HoldSends bool
	// Deadline, when positive (and FW >= 1), enables graceful degradation:
	// validation stops blocking on an overdue peer after waiting Deadline
	// seconds and instead lets speculation extend past the forward window,
	// reconciling (check + repair + cascade) when the real message finally
	// lands. Zero keeps the classical behaviour of blocking indefinitely.
	// Requires a DeadlineReceiver transport to take effect.
	Deadline float64
	// MaxOverrun bounds how many iterations past the forward window the
	// engine may run on unreconciled speculation before it blocks hard on
	// the overdue peer. Defaults to 2 when Deadline is set.
	MaxOverrun int
	// Metrics, when non-nil, receives the engine's counters, gauges and
	// histograms (per-processor labels). Nil — the default — keeps the
	// engine on a nil-check-only fast path.
	Metrics *obs.Registry
	// Journal, when non-nil, receives the structured run journal: ordered
	// events (iteration start/end, speculation made/checked/bad, repair,
	// cascade, overrun/reconcile, convergence) stamped with the transport's
	// clock. On the simulated cluster the same seed yields a byte-identical
	// journal.
	Journal *obs.Journal

	// CheckpointEvery, when positive, makes the engine snapshot its state to
	// CheckpointStore every K loop iterations and enables the crash-recovery
	// protocol (restore + rejoin + catch-up; see recover.go). Requires a
	// non-nil CheckpointStore.
	CheckpointEvery int
	// CheckpointStore is the stable storage snapshots go to. It must survive
	// the processor's crashes — in the simulation, any store living outside
	// the cluster (checkpoint.MemStore) does.
	CheckpointStore checkpoint.Store
	// CheckpointOps and CheckpointOpsPerByte set the operation cost charged
	// to the perf model per snapshot: base plus per-encoded-byte.
	CheckpointOps        float64
	CheckpointOpsPerByte float64
	// RejoinLog is how many recent own broadcasts are retained to serve
	// peers' rejoin requests. Defaults to 64 when CheckpointEvery > 0. It
	// must comfortably exceed the deepest frontier gap two processors can
	// have (≈ FW+MaxOverrun+MaxCrashOverrun), or a rejoiner hits a catch-up
	// gap and must accept unverifiable speculation for the missing range.
	RejoinLog int
	// MaxCrashOverrun extends MaxOverrun while a needed peer is reported
	// down by the transport's failure detector, letting survivors bridge an
	// outage by speculating deeper past the forward window. Defaults to 6
	// when checkpointing and Deadline are both enabled.
	MaxCrashOverrun int
	// RejoinRetry is how long a blocked validation waits before (re)sending
	// a rejoin/refill request for a missing message — the recovery path for
	// data lost to a crash or abandoned by the reliable layer after
	// MaxRetries. Defaults to 4×Deadline, or 1 when Deadline is 0. Active
	// only when CheckpointEvery > 0 on a DeadlineReceiver transport.
	RejoinRetry float64
}

// Stats aggregates one processor's speculation behaviour over a run.
type Stats struct {
	Iters        int
	SpecsMade    int // peer-iteration predictions performed
	SpecsChecked int // predictions validated against actual messages
	SpecsBad     int // validations that exceeded tolerance
	UnitsBad     int64
	UnitsTotal   int64
	Repairs      int // iterations repaired after a failed check
	CascadeRedos int // later iterations recomputed due to an upstream repair
	Overruns     int // validations deferred past a Deadline expiry
	Reconciles   int // overrun iterations later validated against the real message

	Checkpoints     int   // state snapshots persisted to stable storage
	CheckpointBytes int64 // total encoded snapshot bytes written
	Restores        int   // post-crash state restorations
	CatchupIters    int   // iterations replayed to re-reach the surviving frontier

	ComputeTime float64
	CommTime    float64
	SpecTime    float64
	CheckTime   float64
	CorrectTime float64
	OverrunTime float64 // compute performed past the forward window (degraded mode)
	TotalTime   float64

	// Net holds transport-level counters (retransmissions, duplicate
	// suppressions) when the transport exposes them; zero otherwise.
	Net cluster.NetStats
}

// BadFraction returns the fraction of validated predictions that exceeded
// tolerance — the measured analogue of the model's k.
func (s Stats) BadFraction() float64 {
	if s.SpecsChecked == 0 {
		return 0
	}
	return float64(s.SpecsBad) / float64(s.SpecsChecked)
}

// UnitBadFraction returns the fraction of individual check units (e.g.
// particle pairs) out of tolerance.
func (s Stats) UnitBadFraction() float64 {
	if s.UnitsTotal == 0 {
		return 0
	}
	return float64(s.UnitsBad) / float64(s.UnitsTotal)
}

// Result is one processor's outcome.
type Result struct {
	Proc  int
	Final []float64 // X_j after the last executed iteration
	// Converged is true when a Stopper terminated the run before MaxIter;
	// Stats.Iters then holds the number of iterations actually executed.
	Converged bool
	Stats     Stats
}

// histEntry is one validated snapshot in a peer's backward-window ring,
// tagged with the iteration it belongs to so the speculation base is
// correct for any exchange pattern.
type histEntry struct {
	iter int
	data []float64
}

// engine is the per-processor execution state.
type engine struct {
	p   Transport
	app App
	cfg Config

	spec    Speculator       // nil unless app implements it
	pub     Publisher        // nil unless app implements it
	stopper Stopper          // nil unless app implements it
	corr    Corrector        // nil unless app implements it
	nbrs    Neighbors        // nil unless app implements it
	dr      DeadlineReceiver // nil unless the transport implements it
	noter   Noter            // nil unless the transport implements it

	stopped  bool // converged early
	stopIter int  // iteration at which Done reported true

	// received[k][t] holds the actual snapshot of peer k at iteration t.
	received []map[int][]float64
	// hist[k] holds peer k's validated snapshots, tagged with iteration.
	hist []*history.Ring[histEntry]
	// overrun marks iterations whose validation was deferred past a
	// Deadline expiry and still awaits reconciliation.
	overrun map[int]bool
	// own[t] is the local partition at iteration t.
	own map[int][]float64
	// views[t] is the assembled global view used to compute own[t+1].
	views map[int][][]float64
	// preds[t][k] is the prediction used for peer k at iteration t (nil if
	// the actual value was available).
	preds map[int][][]float64
	// validated is the highest iteration whose inputs are fully validated.
	validated int
	// frontier is the highest iteration whose Compute has run.
	frontier int

	// Crash-recovery state (recover.go); all zero/nil when CheckpointEvery
	// is unset.
	store checkpoint.Store
	fd    FailureDetector // nil unless the transport implements it
	ep    Epocher         // nil unless the transport implements it
	// sentLog retains recent own broadcast payloads to serve rejoin/refill
	// requests from peers that lost them to a crash.
	sentLog *history.Ring[histEntry]
	// noActualBefore[k] > 0 marks a catch-up gap: no actual snapshot of
	// peer k below that iteration will ever arrive, so speculation for the
	// range is accepted unverified.
	noActualBefore []int
	// postCrashLeft[k] counts down how many upcoming validations of peer k
	// feed the post-crash prediction-error histogram.
	postCrashLeft []int
	// restored / restoreFrontier / catchupTarget track catch-up progress
	// after a restart; catchupTarget is -1 when no catch-up is in flight.
	restored        bool
	restoreFrontier int
	catchupTarget   int

	// ob is the observability sink; nil when Config.Metrics and
	// Config.Journal are both unset.
	ob *engineObs

	stats Stats
}

// Run executes the synchronous iterative application on transport p —
// a simulated processor (call from within a cluster.Start body) or any
// other Transport implementation. Every processor of the run must use an
// identical Config.
func Run(p Transport, app App, cfg Config) (Result, error) {
	if cfg.MaxIter < 1 {
		return Result{}, fmt.Errorf("core: MaxIter must be >= 1, got %d", cfg.MaxIter)
	}
	if cfg.FW < 0 {
		return Result{}, fmt.Errorf("core: negative FW")
	}
	if cfg.Predictor == nil {
		cfg.Predictor = predict.Linear{}
	}
	if cfg.BW <= 0 {
		cfg.BW = cfg.Predictor.Window()
		if cfg.BW < 2 {
			cfg.BW = 2
		}
	}
	if cfg.Deadline < 0 {
		return Result{}, fmt.Errorf("core: negative Deadline")
	}
	if cfg.Deadline > 0 && cfg.MaxOverrun <= 0 {
		cfg.MaxOverrun = 2
	}
	if cfg.Deadline == 0 {
		cfg.MaxOverrun = 0
	}
	if cfg.CheckpointEvery > 0 {
		if cfg.CheckpointStore == nil {
			return Result{}, fmt.Errorf("core: CheckpointEvery set without a CheckpointStore")
		}
		if cfg.RejoinLog <= 0 {
			cfg.RejoinLog = 64
		}
		if cfg.MaxCrashOverrun <= 0 && cfg.Deadline > 0 {
			cfg.MaxCrashOverrun = 6
		}
		if cfg.RejoinRetry <= 0 {
			cfg.RejoinRetry = 4 * cfg.Deadline
			if cfg.RejoinRetry == 0 {
				cfg.RejoinRetry = 1
			}
		}
	} else {
		cfg.MaxCrashOverrun = 0
	}
	e := &engine{
		p:   p,
		app: app,
		cfg: cfg,

		received:      make([]map[int][]float64, p.P()),
		hist:          make([]*history.Ring[histEntry], p.P()),
		own:           make(map[int][]float64),
		views:         make(map[int][][]float64),
		preds:         make(map[int][][]float64),
		overrun:       make(map[int]bool),
		validated:     -1,
		frontier:      -1,
		catchupTarget: -1,
	}
	if s, ok := app.(Speculator); ok {
		e.spec = s
	}
	if p2, ok := app.(Publisher); ok {
		e.pub = p2
	}
	if st, ok := app.(Stopper); ok {
		e.stopper = st
	}
	if co, ok := app.(Corrector); ok {
		e.corr = co
	}
	if nb, ok := app.(Neighbors); ok {
		e.nbrs = nb
	}
	if d, ok := p.(DeadlineReceiver); ok {
		e.dr = d
	}
	if n, ok := p.(Noter); ok {
		e.noter = n
	}
	e.ob = newEngineObs(cfg.Metrics, cfg.Journal, p.ID())
	if e.ob != nil {
		e.ob.p = p
	}
	for k := 0; k < p.P(); k++ {
		if k == p.ID() {
			continue
		}
		e.received[k] = make(map[int][]float64)
		// Defensive copies: a pushed snapshot must survive the producer
		// mutating its buffer afterwards (e.g. a Corrector patching in place).
		e.hist[k] = history.NewRingCopy(cfg.BW, cloneHistEntry)
	}
	if cfg.CheckpointEvery > 0 {
		e.store = cfg.CheckpointStore
		e.sentLog = history.NewRingCopy(cfg.RejoinLog, cloneHistEntry)
		e.noActualBefore = make([]int, p.P())
		e.postCrashLeft = make([]int, p.P())
		if fd, ok := p.(FailureDetector); ok {
			e.fd = fd
		}
		if ep, ok := p.(Epocher); ok {
			e.ep = ep
		}
		if err := e.maybeRestore(); err != nil {
			return Result{}, err
		}
	}
	e.run()
	e.stats.Iters = cfg.MaxIter
	if e.stopped {
		e.stats.Iters = e.stopIter + 1
	}
	e.stats.ComputeTime = p.PhaseTime(cluster.PhaseCompute)
	e.stats.CommTime = p.PhaseTime(cluster.PhaseComm)
	e.stats.SpecTime = p.PhaseTime(cluster.PhaseSpec)
	e.stats.CheckTime = p.PhaseTime(cluster.PhaseCheck)
	e.stats.CorrectTime = p.PhaseTime(cluster.PhaseCorrect)
	e.stats.OverrunTime = p.PhaseTime(cluster.PhaseOverrun)
	e.stats.TotalTime = p.Now()
	if ns, ok := p.(NetStatser); ok {
		e.stats.Net = ns.NetStats()
	}
	final := e.own[cfg.MaxIter]
	if e.stopped {
		final = e.own[e.stopIter+1]
	}
	return Result{Proc: p.ID(), Final: final, Converged: e.stopped, Stats: e.stats}, nil
}

func (e *engine) run() {
	t0 := 0
	if e.restored {
		// Resume where the snapshot left off; afterRestore has already asked
		// the peers to refill anything lost in the crash.
		t0 = e.frontier + 1
	} else {
		e.own[0] = e.app.InitLocal()
	}
	for t := t0; t < e.cfg.MaxIter && !e.stopped; t++ {
		if e.cfg.HoldSends && t > 0 {
			// Ablation: never send values computed from unvalidated inputs.
			e.validateThrough(t - 1)
		}
		e.ob.iterStart(t)
		e.broadcast(t)
		e.drain()
		view := e.assembleView(t)
		e.views[t] = view
		next := e.app.Compute(view, t)
		ph := cluster.PhaseCompute
		if e.degrading() && t-e.validated > e.cfg.FW {
			// Running past the forward window on an overdue peer's
			// speculation: account the compute as overrun.
			ph = cluster.PhaseOverrun
		}
		e.p.Compute(e.app.ComputeOps(), ph)
		e.own[t+1] = next
		e.frontier = t
		e.ob.iterEnd(t)
		e.noteCatchup()
		// Keep at most FW iterations resting on unvalidated inputs: after
		// computing iteration t, everything up to t+1−FW must be validated.
		// With FW=1 this validates iteration t itself — exactly Figure 3's
		// "compute, then wait for the remaining messages and check".
		lag := t + 1 - e.cfg.FW
		if lag > t {
			lag = t // FW=0: iteration t's inputs were already actual
		}
		if lag >= 0 {
			if !e.degrading() {
				e.validateThrough(lag)
			} else {
				// Graceful degradation: wait at most Deadline per overdue
				// peer, then let speculation overrun the forward window — but
				// never past the overrun budget, beyond which we block hard.
				// While a needed peer is down the budget stretches by
				// MaxCrashOverrun, bridging the outage on speculation.
				if floor := lag - e.overrunBudget(); floor >= 0 {
					e.validateThrough(floor)
				}
				e.tryValidateThrough(lag)
			}
		}
		if e.cfg.CheckpointEvery > 0 && (t+1)%e.cfg.CheckpointEvery == 0 {
			e.takeCheckpoint()
		}
	}
	if !e.stopped {
		e.validateThrough(e.cfg.MaxIter - 1)
		e.noteCatchup()
	}
}

// overrunBudget is how far validation may lag past the forward window
// before the engine blocks hard on the overdue peer.
func (e *engine) overrunBudget() int {
	b := e.cfg.MaxOverrun
	if e.fd != nil && e.cfg.MaxCrashOverrun > 0 && e.anyNeededPeerDown() {
		b += e.cfg.MaxCrashOverrun
	}
	return b
}

// lookback bounds how far back stashed actuals stay useful: the speculation
// base plus the deepest validation lag the engine can accumulate.
func (e *engine) lookback() int {
	return e.cfg.BW + e.cfg.FW + e.cfg.MaxOverrun + e.cfg.MaxCrashOverrun
}

// degrading reports whether deadline-based graceful degradation is active.
// It needs speculation (FW >= 1) and a transport that can time out a
// receive; HoldSends keeps its strict validate-before-send semantics.
func (e *engine) degrading() bool {
	return e.cfg.Deadline > 0 && e.cfg.FW >= 1 && !e.cfg.HoldSends && e.dr != nil
}

// broadcast sends the local partition (or its published projection) for
// iteration t to every peer, and logs the payload so a crashed peer can ask
// for it again on rejoin.
func (e *engine) broadcast(t int) {
	payload := e.own[t]
	if e.pub != nil {
		payload = e.pub.Publish(payload)
	}
	if e.sentLog != nil {
		e.sentLog.Push(histEntry{iter: t, data: payload})
	}
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.neededBy(k) {
			continue
		}
		e.p.Send(k, DataTag, t, payload)
	}
}

// needs reports whether this processor reads peer k's payload.
func (e *engine) needs(k int) bool {
	return e.nbrs == nil || e.nbrs.Needs(k)
}

// neededBy reports whether peer k reads this processor's payload.
func (e *engine) neededBy(k int) bool {
	return e.nbrs == nil || e.nbrs.NeededBy(k)
}

// drain moves every delivered message into the received stash, dispatching
// any recovery-protocol traffic along the way.
func (e *engine) drain() {
	for {
		m, ok := e.p.TryRecv(cluster.Any, cluster.Any)
		if !ok {
			return
		}
		e.intake(m)
	}
}

// stash records an actual snapshot, first-wins: a rejoin re-send must never
// overwrite the copy peers already computed against.
func (e *engine) stash(m cluster.Message) {
	if _, ok := e.received[m.Src][m.Iter]; !ok {
		e.received[m.Src][m.Iter] = m.Data
	}
}

// actual blocks until the real snapshot of peer k at iteration t is
// available, dispatching any other traffic that arrives meanwhile. It
// returns nil when the snapshot can never arrive (a catch-up gap) — callers
// must then accept the speculation unverified. With crash recovery enabled
// the wait is chunked into RejoinRetry slices: each expiry re-requests the
// missing range from k, healing messages lost to a crash window or
// abandoned by the reliable layer.
func (e *engine) actual(k, t int) []float64 {
	for {
		if v, ok := e.received[k][t]; ok {
			return v
		}
		if e.noActualBefore != nil && t < e.noActualBefore[k] {
			return nil
		}
		if e.cfg.CheckpointEvery > 0 && e.dr != nil {
			if m, ok := e.dr.RecvDeadline(cluster.Any, cluster.Any, e.cfg.RejoinRetry); ok {
				e.intake(m)
			} else if e.fd == nil || !e.fd.PeerDown(k) {
				// Patience expired with the peer alive: the message is
				// presumed lost, not late. Ask for a refill.
				e.sendRejoin(k, t-1)
			}
			continue
		}
		e.intake(e.p.Recv(cluster.Any, cluster.Any))
	}
}

// assembleView builds the global view for iteration t. With FW=0 it blocks
// for every actual snapshot (Figure 1); otherwise missing snapshots are
// speculated (Figure 3) and recorded for later validation.
func (e *engine) assembleView(t int) [][]float64 {
	view := make([][]float64, e.p.P())
	view[e.p.ID()] = e.own[t]
	var preds [][]float64
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		if v, ok := e.received[k][t]; ok {
			view[k] = v
			continue
		}
		if e.cfg.FW == 0 {
			view[k] = e.actual(k, t)
			continue
		}
		pred := e.speculate(k, t)
		if pred == nil {
			// No history to speculate from (startup): block for the actual.
			view[k] = e.actual(k, t)
			continue
		}
		view[k] = pred
		if preds == nil {
			preds = make([][]float64, e.p.P())
		}
		preds[k] = pred
		e.stats.SpecsMade++
		e.ob.specMade(t, k)
	}
	if preds != nil {
		e.preds[t] = preds
	}
	return view
}

// speculate predicts peer k's iteration-t snapshot from the newest actual
// snapshots on hand. Returns nil if no actuals exist yet.
func (e *engine) speculate(k, t int) []float64 {
	// Find the newest actual at or before t-1 and collect a consecutive
	// newest-first history from it.
	var hist [][]float64
	base := -1
	for s := t - 1; s >= 0 && s >= t-e.lookback(); s-- {
		if v, ok := e.received[k][s]; ok {
			base = s
			hist = append(hist, v)
			for q := s - 1; q >= 0 && len(hist) < e.cfg.BW; q-- {
				v2, ok2 := e.received[k][q]
				if !ok2 {
					break
				}
				hist = append(hist, v2)
			}
			break
		}
	}
	if base == -1 {
		// Fall back to ring history (older validated snapshots).
		if e.hist[k].Len() == 0 {
			return nil
		}
		for _, h := range e.hist[k].NewestFirst() {
			hist = append(hist, h.data)
		}
		base = e.hist[k].At(0).iter
	}
	steps := t - base
	if steps < 1 {
		steps = 1
	}
	var pred []float64
	var ops float64
	if e.spec != nil {
		pred, ops = e.spec.Speculate(k, hist, steps)
	} else {
		pred = e.cfg.Predictor.Predict(hist, steps)
		ops = e.cfg.Predictor.Ops() * float64(len(pred)) * float64(steps)
	}
	e.p.Compute(ops, cluster.PhaseSpec)
	return pred
}

// validateThrough blocks until every iteration up to and including t has all
// its speculated inputs checked against actual messages, repairing and
// cascading recomputations as needed.
func (e *engine) validateThrough(t int) {
	for s := e.validated + 1; s <= t && !e.stopped; s++ {
		e.finishIter(s)
	}
}

// tryValidateThrough is validateThrough with a per-peer patience of
// Config.Deadline: when an overdue peer's message does not arrive in time,
// the iteration is marked as an overrun and validation is deferred —
// speculation then extends past the forward window until either the
// message lands (reconciliation) or the overrun budget forces a hard
// block. Returns false when it gave up on an overdue peer.
func (e *engine) tryValidateThrough(t int) bool {
	for s := e.validated + 1; s <= t && !e.stopped; s++ {
		if !e.collectActuals(s) {
			if !e.overrun[s] {
				e.overrun[s] = true
				e.stats.Overruns++
				e.note("overrun")
				e.ob.overrun(s)
			}
			return false
		}
		e.finishIter(s)
	}
	return true
}

// finishIter validates, reconciles, and retires one iteration.
func (e *engine) finishIter(s int) {
	e.validateIter(s)
	e.validated = s
	if e.overrun[s] {
		delete(e.overrun, s)
		e.stats.Reconciles++
		e.note("reconcile")
		e.ob.reconciled(s)
	}
	e.checkConverged(s)
	e.retire(s)
}

// collectActuals waits, up to Deadline per overdue peer, until every needed
// peer's iteration-s snapshot is stashed. Returns false on a deadline
// expiry. A peer the failure detector reports down gets no wait at all —
// the crash is bridged on speculation immediately. On success the
// subsequent validateIter will not block.
func (e *engine) collectActuals(s int) bool {
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		if _, ok := e.received[k][s]; ok {
			continue
		}
		if e.noActualBefore != nil && s < e.noActualBefore[k] {
			continue // catch-up gap: nothing will ever arrive
		}
		if e.fd != nil && e.fd.PeerDown(k) {
			return false // dead peer: overrun without burning the deadline
		}
		if !e.waitActual(k, s, e.cfg.Deadline) {
			return false
		}
	}
	return true
}

// waitActual blocks until peer k's iteration-t snapshot is stashed or
// timeout elapses, dispatching any other traffic that arrives meanwhile.
func (e *engine) waitActual(k, t int, timeout float64) bool {
	deadline := e.p.Now() + timeout
	for {
		if _, ok := e.received[k][t]; ok {
			return true
		}
		remaining := deadline - e.p.Now()
		if remaining <= 0 {
			return false
		}
		m, ok := e.dr.RecvDeadline(cluster.Any, cluster.Any, remaining)
		if !ok {
			_, have := e.received[k][t]
			return have
		}
		e.intake(m)
	}
}

// note records a point event if the transport supports it.
func (e *engine) note(kind string) {
	if e.noter != nil {
		e.noter.Note(kind)
	}
}

// checkConverged evaluates the optional Stopper on iteration s's actual
// exchanged snapshots. All processors hold identical snapshot sets, so the
// decision is globally consistent without extra messages.
func (e *engine) checkConverged(s int) {
	if e.stopper == nil {
		return
	}
	view := make([][]float64, e.p.P())
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() {
			payload := e.own[s]
			if e.pub != nil {
				payload = e.pub.Publish(payload)
			}
			view[k] = payload
			continue
		}
		if !e.needs(k) {
			continue // no messages from unneeded peers
		}
		view[k] = e.actual(k, s)
		if view[k] == nil {
			// Catch-up gap: this processor cannot evaluate Done(s) on the
			// same data its peers did, so it skips the evaluation. See the
			// DESIGN.md caveat on Stopper + crash recovery.
			return
		}
	}
	if ops := e.stopper.DoneOps(); ops > 0 {
		e.p.Compute(ops, cluster.PhaseOther)
	}
	if e.stopper.Done(view, s) {
		e.stopped = true
		e.stopIter = s
		e.ob.converged(s)
	}
}

func (e *engine) validateIter(t int) {
	preds := e.preds[t]
	dirty := false
	var worst CheckResult
	var badPeers []int
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		if preds == nil || preds[k] == nil {
			// Actual was used directly; just make sure we have consumed it
			// for history purposes.
			e.actualIntoHistory(k, t)
			continue
		}
		act := e.actual(k, t)
		if act == nil {
			// Catch-up gap: the actual can never arrive, so the speculation
			// is accepted unverified and contributes no history entry.
			continue
		}
		res := e.app.Check(k, preds[k], act, e.own[t], t)
		if res.Ops > 0 {
			e.p.Compute(res.Ops, cluster.PhaseCheck)
		}
		e.stats.SpecsChecked++
		e.stats.UnitsBad += int64(res.Bad)
		e.stats.UnitsTotal += int64(res.Total)
		if e.ob != nil {
			frac := 0.0
			if res.Total > 0 {
				frac = float64(res.Bad) / float64(res.Total)
			}
			e.ob.specChecked(t, k, frac, res.Bad > 0)
			if e.postCrashLeft != nil && e.postCrashLeft[k] > 0 {
				e.postCrashLeft[k]--
				e.ob.postCrashErr(frac)
			}
		}
		if res.Bad > 0 {
			e.stats.SpecsBad++
			dirty = true
			worst.Bad += res.Bad
			worst.Total += res.Total
			badPeers = append(badPeers, k)
			// Patch the stored view with the actual values for recompute.
			e.views[t][k] = act
		}
		e.actualIntoHistory(k, t)
	}
	if !dirty {
		return
	}
	// Repair, charging the app-defined cost (the paper's k·N_i·f_comp or a
	// cheaper incremental correction): apply the app's correction function
	// if it has one, otherwise recompute X_j(t+1) from the corrected view.
	e.stats.Repairs++
	e.ob.repaired(t, e.frontier-t)
	if e.corr != nil {
		fixed := e.own[t+1]
		for _, k := range badPeers {
			fixed = e.corr.Correct(fixed, e.own[t], k, preds[k], e.views[t][k], t)
		}
		e.own[t+1] = fixed
	} else {
		e.own[t+1] = e.app.Compute(e.views[t], t)
	}
	e.p.Compute(e.app.RepairOps(worst), cluster.PhaseCorrect)
	// Cascade: any later iterations already computed used the stale
	// X_j(t+1). Their values are recomputed exactly, but the clock charge is
	// the app's incremental repair cost — the affected work is the part
	// touched by the corrected inputs, the same accounting the paper's
	// k·N_i·f_comp term models (a full-recompute app simply returns
	// ComputeOps from RepairOps).
	for s := t + 1; s <= e.frontier; s++ {
		e.views[s][e.p.ID()] = e.own[s]
		e.own[s+1] = e.app.Compute(e.views[s], s)
		e.p.Compute(e.app.RepairOps(worst), cluster.PhaseCorrect)
		e.stats.CascadeRedos++
		e.ob.cascaded(s)
	}
}

// actualIntoHistory pushes peer k's iteration-t actual snapshot into the
// backward-window ring (validation proceeds in iteration order, so pushes
// are ordered too) and prunes stale stash entries. A catch-up gap (nil
// actual) contributes nothing.
func (e *engine) actualIntoHistory(k, t int) {
	v := e.actual(k, t)
	if v == nil {
		return
	}
	e.hist[k].Push(histEntry{iter: t, data: v})
	delete(e.received[k], t-e.lookback()-1)
}

// retire drops per-iteration bookkeeping no longer needed after validation.
func (e *engine) retire(t int) {
	delete(e.preds, t)
	if t <= e.frontier {
		// views[t] may still be needed by a cascade from an earlier repair
		// only while t is unvalidated; once validated it is safe to drop.
		delete(e.views, t)
	}
	delete(e.own, t-1)
}
