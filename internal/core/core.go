// Package core implements the paper's primary contribution: speculative
// computation for synchronous iterative algorithms.
//
// A synchronous iterative algorithm evaluates X(t+1) = F(X(t)) with the
// variable set X partitioned over p processors; each iteration every
// processor broadcasts its partition and waits for every other partition
// before computing (Figure 1 of the paper). With speculation (Figure 3), a
// processor instead *predicts* the contents of messages that have not yet
// arrived, computes on the predictions, and validates them when the real
// messages arrive — masking communication latency with useful work.
//
// The engine supports:
//
//   - FW (forward window): how many iterations may rest on unvalidated
//     speculated inputs. FW=0 is the classical blocking algorithm; FW=1 is
//     Figure 3; FW≥2 pipelines further ahead (Figure 4).
//   - BW (backward window): how many past snapshots the speculation function
//     consults, via the predict.Predictor or an app-supplied Speculator.
//   - Error checking and repair: when a prediction fails its tolerance
//     check, the engine recomputes the affected iteration from the actual
//     values (charging the app-defined repair cost), and cascades the
//     recomputation through any later speculatively computed iterations.
//
// The package is layered (see DESIGN.md §8): this file is the iteration
// state machine; the open decisions live behind the SpecPolicy/CheckPolicy/
// RepairPolicy interfaces (policy.go, defaults reproducing the seeded
// behavior byte-for-byte); every payload lives in the pooled, ring-indexed
// value plane (store.go, pool.go); the application contract is app.go; the
// crash-recovery protocol is recover.go.
package core

import (
	"fmt"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/history"
	"specomp/internal/obs"
	"specomp/internal/predict"
)

// Message tags used by the engine. DataTag carries partition exchanges;
// RejoinTag and RejoinAckTag carry the crash-recovery protocol (recover.go).
const (
	DataTag      = 1
	RejoinTag    = 2 // rejoin/refill request: Iter = highest iteration held
	RejoinAckTag = 3 // response: Iter = responder frontier, Data[0] = oldest re-sendable iter
)

// Transport is the minimal subset of the cluster.Transport contract the
// engine needs from an execution substrate. The simulated cluster's
// *cluster.Proc implements it against virtual time; the realtime package
// implements it over goroutines and channels; the distnet package over OS
// processes and TCP sockets — all against the same full contract (see the
// assertion below). Compute charges work to the substrate's clock — a no-op
// for wall-clock substrates, where the work happens inside the app itself.
type Transport interface {
	ID() int
	P() int
	Now() float64
	Compute(ops float64, ph cluster.Phase)
	Send(dst, tag, iter int, data []float64)
	TryRecv(src, tag int) (cluster.Message, bool)
	Recv(src, tag int) cluster.Message
	PhaseTime(ph cluster.Phase) float64
}

var _ Transport = (*cluster.Proc)(nil)

// Any full cluster.Transport satisfies the engine's contract with every
// optional capability (zero-copy sends, deadline receives) enabled.
var _ interface {
	Transport
	DeadlineReceiver
	SharedSender
} = (cluster.Transport)(nil)

// DeadlineReceiver is an optional Transport extension providing a receive
// bounded by a timeout (in the transport's time unit). ok=false means the
// deadline elapsed with no matching message. The engine requires it for
// graceful degradation (Config.Deadline); transports without it fall back
// to blocking receives.
type DeadlineReceiver interface {
	RecvDeadline(src, tag int, timeout float64) (cluster.Message, bool)
}

var _ DeadlineReceiver = (*cluster.Proc)(nil)

// SharedSender is an optional Transport extension for zero-copy sends: the
// transport references the payload directly instead of copying it, under
// the caller's guarantee that the slice is never mutated afterwards. The
// engine uses it to share one immutable payload per broadcast across all
// peers (and its own rejoin log) instead of copying once per destination.
type SharedSender interface {
	SendShared(dst, tag, iter int, data []float64)
}

var _ SharedSender = (*cluster.Proc)(nil)

// Noter is an optional Transport extension for point-event timeline marks
// (overruns, reconciliations). The simulated cluster forwards notes to its
// OnEvent hook.
type Noter interface {
	Note(kind string)
}

// NetStatser is an optional Transport extension exposing transport-level
// counters (retransmissions, duplicate suppressions); the engine copies
// them into Stats.Net at the end of a run.
type NetStatser interface {
	NetStats() cluster.NetStats
}

// Config parameterizes an engine run.
type Config struct {
	// FW is the forward window. 0 disables speculation entirely.
	FW int
	// BW is the backward window: depth of per-peer history retained for the
	// speculation function. Defaults to max(Predictor.Window(), 2).
	BW int
	// Predictor is the generic speculation function used when the App does
	// not implement Speculator. Defaults to predict.Linear{}.
	Predictor predict.Predictor
	// MaxIter is the number of iterations to execute. Must be >= 1.
	MaxIter int
	// HoldSends, when true with FW >= 2, delays sending a speculatively
	// computed partition until its inputs have been validated (ablation of
	// the "speculative sends" design decision).
	HoldSends bool
	// Deadline, when positive (and FW >= 1), enables graceful degradation:
	// validation stops blocking on an overdue peer after waiting Deadline
	// seconds and instead lets speculation extend past the forward window,
	// reconciling (check + repair + cascade) when the real message finally
	// lands. Zero keeps the classical behaviour of blocking indefinitely.
	// Requires a DeadlineReceiver transport to take effect.
	Deadline float64
	// MaxOverrun bounds how many iterations past the forward window the
	// engine may run on unreconciled speculation before it blocks hard on
	// the overdue peer. Defaults to 2 when Deadline is set.
	MaxOverrun int

	// Graph, when non-nil, declares the run's dependency structure as an
	// explicit task DAG (see graph.go): this processor speculates on, checks
	// and repairs exactly its in-edges, and broadcasts to exactly its
	// out-edges. Nil resolves through the App's Grapher extension, then
	// Neighbors, then the complete graph — the classical engine. Every
	// processor of a run must use an identical graph.
	Graph *DepGraph

	// Spec, Check and Repair replace the engine's default policy set (see
	// policy.go). Nil fields get the defaults, which reproduce the paper's
	// behaviour: predict via Speculator/Predictor, judge via App.Check, and
	// repair via Corrector or full recompute with cascades. Every processor
	// of a run must use behaviourally identical policies.
	Spec   SpecPolicy
	Check  CheckPolicy
	Repair RepairPolicy

	// Metrics, when non-nil, receives the engine's counters, gauges and
	// histograms (per-processor labels). Nil — the default — keeps the
	// engine on a nil-check-only fast path.
	Metrics *obs.Registry
	// Journal, when non-nil, receives the structured run journal: ordered
	// events (iteration start/end, speculation made/checked/bad, repair,
	// cascade, overrun/reconcile, convergence) stamped with the transport's
	// clock. On the simulated cluster the same seed yields a byte-identical
	// journal.
	Journal *obs.Journal

	// CheckpointEvery, when positive, makes the engine snapshot its state to
	// CheckpointStore every K loop iterations and enables the crash-recovery
	// protocol (restore + rejoin + catch-up; see recover.go). Requires a
	// non-nil CheckpointStore.
	CheckpointEvery int
	// CheckpointStore is the stable storage snapshots go to. It must survive
	// the processor's crashes — in the simulation, any store living outside
	// the cluster (checkpoint.MemStore) does.
	CheckpointStore checkpoint.Store
	// CheckpointOps and CheckpointOpsPerByte set the operation cost charged
	// to the perf model per snapshot: base plus per-encoded-byte.
	CheckpointOps        float64
	CheckpointOpsPerByte float64
	// RejoinLog is how many recent own broadcasts are retained to serve
	// peers' rejoin requests. Defaults to 64 when CheckpointEvery > 0. It
	// must comfortably exceed the deepest frontier gap two processors can
	// have (≈ FW+MaxOverrun+MaxCrashOverrun), or a rejoiner hits a catch-up
	// gap and must accept unverifiable speculation for the missing range.
	RejoinLog int
	// MaxCrashOverrun extends MaxOverrun while a needed peer is reported
	// down by the transport's failure detector, letting survivors bridge an
	// outage by speculating deeper past the forward window. Defaults to 6
	// when checkpointing and Deadline are both enabled.
	MaxCrashOverrun int
	// RejoinRetry is how long a blocked validation waits before (re)sending
	// a rejoin/refill request for a missing message — the recovery path for
	// data lost to a crash or abandoned by the reliable layer after
	// MaxRetries. Defaults to 4×Deadline, or 1 when Deadline is 0. Active
	// only when CheckpointEvery > 0 on a DeadlineReceiver transport.
	RejoinRetry float64
}

// Stats aggregates one processor's speculation behaviour over a run.
type Stats struct {
	Iters        int
	SpecsMade    int // peer-iteration predictions performed
	SpecsChecked int // predictions validated against actual messages
	SpecsBad     int // validations that exceeded tolerance
	UnitsBad     int64
	UnitsTotal   int64
	Repairs      int // iterations repaired after a failed check
	CascadeRedos int // later iterations recomputed due to an upstream repair
	Overruns     int // validations deferred past a Deadline expiry
	Reconciles   int // overrun iterations later validated against the real message

	Checkpoints     int   // state snapshots persisted to stable storage
	CheckpointBytes int64 // total encoded snapshot bytes written
	Restores        int   // post-crash state restorations
	CatchupIters    int   // iterations replayed to re-reach the surviving frontier

	ComputeTime float64
	CommTime    float64
	SpecTime    float64
	CheckTime   float64
	CorrectTime float64
	OverrunTime float64 // compute performed past the forward window (degraded mode)
	TotalTime   float64

	// Net holds transport-level counters (retransmissions, duplicate
	// suppressions) when the transport exposes them; zero otherwise.
	Net cluster.NetStats
}

// BadFraction returns the fraction of validated predictions that exceeded
// tolerance — the measured analogue of the model's k.
func (s Stats) BadFraction() float64 {
	if s.SpecsChecked == 0 {
		return 0
	}
	return float64(s.SpecsBad) / float64(s.SpecsChecked)
}

// UnitBadFraction returns the fraction of individual check units (e.g.
// particle pairs) out of tolerance.
func (s Stats) UnitBadFraction() float64 {
	if s.UnitsTotal == 0 {
		return 0
	}
	return float64(s.UnitsBad) / float64(s.UnitsTotal)
}

// Result is one processor's outcome.
type Result struct {
	Proc  int
	Final []float64 // X_j after the last executed iteration
	// Converged is true when a Stopper terminated the run before MaxIter;
	// Stats.Iters then holds the number of iterations actually executed.
	Converged bool
	Stats     Stats
}

// engine is the per-processor iteration state machine. Payload storage
// lives in the value plane; speculation, checking and repair decisions live
// in the policies.
type engine struct {
	p   Transport
	app App
	cfg Config

	specPol   SpecPolicy
	checkPol  CheckPolicy
	repairPol RepairPolicy

	pub     Publisher        // nil unless app implements it
	stopper Stopper          // nil unless app implements it
	dr      DeadlineReceiver // nil unless the transport implements it
	noter   Noter            // nil unless the transport implements it
	shared  SharedSender     // nil unless the transport implements it

	// edgeSpec / edgeCheck are the edge-aware faces of the resolved
	// policies, non-nil only when the policy opts in (see policy.go).
	edgeSpec  EdgeSpecPolicy
	edgeCheck EdgeCheckPolicy

	// Dependency structure, resolved once at startup (graph.go): inRanks is
	// the sorted list of ranks this processor reads; needsM/neededByM are the
	// O(1) membership masks behind needs()/neededBy().
	inRanks   []int
	needsM    []bool
	neededByM []bool

	stopped  bool // converged early
	stopIter int  // iteration at which Done reported true

	// plane stores every per-iteration payload: stashed actuals, validated
	// history, own results, assembled views and pending predictions.
	plane *valuePlane
	// overrun marks iterations whose validation was deferred past a
	// Deadline expiry and still awaits reconciliation.
	overrun map[int]bool
	// validated is the highest iteration whose inputs are fully validated.
	validated int
	// frontier is the highest iteration whose Compute has run.
	frontier int
	// badScratch backs validateIter's failed-peer list between calls.
	badScratch []int

	// Crash-recovery state (recover.go); all zero/nil when CheckpointEvery
	// is unset.
	store checkpoint.Store
	fd    FailureDetector // nil unless the transport implements it
	ep    Epocher         // nil unless the transport implements it
	// sentLog retains recent own broadcast payloads (immutable copies) to
	// serve rejoin/refill requests from peers that lost them to a crash.
	sentLog *history.Ring[histEntry]
	// noActualBefore[k] > 0 marks a catch-up gap: no actual snapshot of
	// peer k below that iteration will ever arrive, so speculation for the
	// range is accepted unverified.
	noActualBefore []int
	// postCrashLeft[k] counts down how many upcoming validations of peer k
	// feed the post-crash prediction-error histogram.
	postCrashLeft []int
	// restored / restoreFrontier / catchupTarget track catch-up progress
	// after a restart; catchupTarget is -1 when no catch-up is in flight.
	restored        bool
	restoreFrontier int
	catchupTarget   int

	// ob is the observability sink; nil when Config.Metrics and
	// Config.Journal are both unset.
	ob *engineObs

	stats Stats
}

// Run executes the synchronous iterative application on transport p —
// a simulated processor (call from within a cluster.Start body) or any
// other Transport implementation. Every processor of the run must use an
// identical Config.
func Run(p Transport, app App, cfg Config) (Result, error) {
	if cfg.MaxIter < 1 {
		return Result{}, fmt.Errorf("core: MaxIter must be >= 1, got %d", cfg.MaxIter)
	}
	if cfg.FW < 0 {
		return Result{}, fmt.Errorf("core: negative FW")
	}
	if cfg.Predictor == nil {
		cfg.Predictor = predict.Linear{}
	}
	if cfg.BW <= 0 {
		cfg.BW = cfg.Predictor.Window()
		if cfg.BW < 2 {
			cfg.BW = 2
		}
	}
	if cfg.Deadline < 0 {
		return Result{}, fmt.Errorf("core: negative Deadline")
	}
	if cfg.Deadline > 0 && cfg.MaxOverrun <= 0 {
		cfg.MaxOverrun = 2
	}
	if cfg.Deadline == 0 {
		cfg.MaxOverrun = 0
	}
	if cfg.CheckpointEvery > 0 {
		if cfg.CheckpointStore == nil {
			return Result{}, fmt.Errorf("core: CheckpointEvery set without a CheckpointStore")
		}
		if cfg.RejoinLog <= 0 {
			cfg.RejoinLog = 64
		}
		if cfg.MaxCrashOverrun <= 0 && cfg.Deadline > 0 {
			cfg.MaxCrashOverrun = 6
		}
		if cfg.RejoinRetry <= 0 {
			cfg.RejoinRetry = 4 * cfg.Deadline
			if cfg.RejoinRetry == 0 {
				cfg.RejoinRetry = 1
			}
		}
	} else {
		cfg.MaxCrashOverrun = 0
	}
	e := &engine{
		p:   p,
		app: app,
		cfg: cfg,

		overrun:       make(map[int]bool),
		validated:     -1,
		frontier:      -1,
		catchupTarget: -1,
	}
	// The value plane's rings are sized from the windows: stashed actuals
	// stay useful for lookback iterations (plus the deepest spread rejoin
	// re-sends and checkpoint rollback can add); per-iteration state spans
	// at most the unvalidated window. The overflow maps absorb anything
	// rarer.
	in, needsM, neededByM, err := resolveDeps(app, cfg.Graph, p.ID(), p.P())
	if err != nil {
		return Result{}, err
	}
	e.inRanks, e.needsM, e.neededByM = in, needsM, neededByM
	slack := cfg.FW + cfg.MaxOverrun + cfg.MaxCrashOverrun
	peerCap := (cfg.BW + slack) + 2*slack + cfg.CheckpointEvery + 16
	iterCap := slack + 4
	e.plane = newValuePlane(p.ID(), p.P(), cfg.BW, peerCap, iterCap, in)
	if p2, ok := app.(Publisher); ok {
		e.pub = p2
	}
	if st, ok := app.(Stopper); ok {
		e.stopper = st
	}
	if d, ok := p.(DeadlineReceiver); ok {
		e.dr = d
	}
	if n, ok := p.(Noter); ok {
		e.noter = n
	}
	if sh, ok := p.(SharedSender); ok {
		e.shared = sh
	}
	e.specPol = cfg.Spec
	if e.specPol == nil {
		ds := &defaultSpec{pred: cfg.Predictor, pool: e.plane.pool}
		if s, ok := app.(Speculator); ok {
			ds.app = s
		} else if ip, ok := cfg.Predictor.(predict.InPlace); ok {
			ds.inp = ip
		}
		e.specPol = ds
	}
	e.checkPol = cfg.Check
	if e.checkPol == nil {
		e.checkPol = defaultCheck{app: app}
	}
	e.repairPol = cfg.Repair
	if e.repairPol == nil {
		dr := &defaultRepair{app: app, maxOverrun: cfg.MaxOverrun, maxCrashOverrun: cfg.MaxCrashOverrun}
		if co, ok := app.(Corrector); ok {
			dr.corr = co
		}
		e.repairPol = dr
	}
	if es, ok := e.specPol.(EdgeSpecPolicy); ok {
		e.edgeSpec = es
	}
	if ec, ok := e.checkPol.(EdgeCheckPolicy); ok {
		e.edgeCheck = ec
	}
	e.ob = newEngineObs(cfg.Metrics, cfg.Journal, p.ID())
	if e.ob != nil {
		e.ob.p = p
	}
	if cfg.CheckpointEvery > 0 {
		e.store = cfg.CheckpointStore
		e.sentLog = history.NewRing[histEntry](cfg.RejoinLog)
		e.noActualBefore = make([]int, p.P())
		e.postCrashLeft = make([]int, p.P())
		if fd, ok := p.(FailureDetector); ok {
			e.fd = fd
		}
		if ep, ok := p.(Epocher); ok {
			e.ep = ep
		}
		if err := e.maybeRestore(); err != nil {
			return Result{}, err
		}
	}
	e.run()
	e.stats.Iters = cfg.MaxIter
	if e.stopped {
		e.stats.Iters = e.stopIter + 1
	}
	e.stats.ComputeTime = p.PhaseTime(cluster.PhaseCompute)
	e.stats.CommTime = p.PhaseTime(cluster.PhaseComm)
	e.stats.SpecTime = p.PhaseTime(cluster.PhaseSpec)
	e.stats.CheckTime = p.PhaseTime(cluster.PhaseCheck)
	e.stats.CorrectTime = p.PhaseTime(cluster.PhaseCorrect)
	e.stats.OverrunTime = p.PhaseTime(cluster.PhaseOverrun)
	e.stats.TotalTime = p.Now()
	if ns, ok := p.(NetStatser); ok {
		e.stats.Net = ns.NetStats()
	}
	final := e.plane.ownAt(cfg.MaxIter)
	if e.stopped {
		final = e.plane.ownAt(e.stopIter + 1)
	}
	return Result{Proc: p.ID(), Final: final, Converged: e.stopped, Stats: e.stats}, nil
}

func (e *engine) run() {
	t0 := 0
	if e.restored {
		// Resume where the snapshot left off; afterRestore has already asked
		// the peers to refill anything lost in the crash.
		t0 = e.frontier + 1
	} else {
		e.plane.setOwn(0, e.app.InitLocal())
	}
	for t := t0; t < e.cfg.MaxIter && !e.stopped; t++ {
		if e.cfg.HoldSends && t > 0 {
			// Ablation: never send values computed from unvalidated inputs.
			e.validateThrough(t - 1)
		}
		e.ob.iterStart(t)
		e.broadcast(t)
		e.drain()
		view := e.assembleView(t)
		next := e.app.Compute(view, t)
		ph := cluster.PhaseCompute
		if e.degrading() && t-e.validated > e.cfg.FW {
			// Running past the forward window on an overdue peer's
			// speculation: account the compute as overrun.
			ph = cluster.PhaseOverrun
		}
		e.p.Compute(e.app.ComputeOps(), ph)
		e.plane.setOwn(t+1, next)
		e.frontier = t
		e.ob.iterEnd(t)
		e.noteCatchup()
		// Keep at most FW iterations resting on unvalidated inputs: after
		// computing iteration t, everything up to t+1−FW must be validated.
		// With FW=1 this validates iteration t itself — exactly Figure 3's
		// "compute, then wait for the remaining messages and check".
		lag := t + 1 - e.cfg.FW
		if lag > t {
			lag = t // FW=0: iteration t's inputs were already actual
		}
		if lag >= 0 {
			if !e.degrading() {
				e.validateThrough(lag)
			} else {
				// Graceful degradation: wait at most Deadline per overdue
				// peer, then let speculation overrun the forward window — but
				// never past the overrun budget, beyond which we block hard.
				// While a needed peer is down the budget stretches by
				// MaxCrashOverrun, bridging the outage on speculation.
				if floor := lag - e.overrunBudget(); floor >= 0 {
					e.validateThrough(floor)
				}
				e.tryValidateThrough(lag)
			}
		}
		if e.cfg.CheckpointEvery > 0 && (t+1)%e.cfg.CheckpointEvery == 0 {
			e.takeCheckpoint()
		}
	}
	if !e.stopped {
		e.validateThrough(e.cfg.MaxIter - 1)
		e.noteCatchup()
	}
}

// overrunBudget is how far validation may lag past the forward window
// before the engine blocks hard on the overdue peer.
func (e *engine) overrunBudget() int {
	peerDown := e.fd != nil && e.cfg.MaxCrashOverrun > 0 && e.anyNeededPeerDown()
	return e.repairPol.OverrunBudget(peerDown)
}

// lookback bounds how far back stashed actuals stay useful: the speculation
// base plus the deepest validation lag the engine can accumulate.
func (e *engine) lookback() int {
	return e.cfg.BW + e.cfg.FW + e.cfg.MaxOverrun + e.cfg.MaxCrashOverrun
}

// degrading reports whether deadline-based graceful degradation is active.
// It needs speculation (FW >= 1) and a transport that can time out a
// receive; HoldSends keeps its strict validate-before-send semantics.
func (e *engine) degrading() bool {
	return e.cfg.Deadline > 0 && e.cfg.FW >= 1 && !e.cfg.HoldSends && e.dr != nil
}

// broadcast sends the local partition (or its published projection) for
// iteration t to every peer, and logs the payload so a crashed peer can ask
// for it again on rejoin. On a SharedSender transport one immutable copy is
// shared by every peer and the log; otherwise the transport copies per
// destination.
func (e *engine) broadcast(t int) {
	payload := e.plane.ownAt(t)
	if e.pub != nil {
		payload = e.pub.Publish(payload)
	}
	if e.shared != nil {
		payload = cloneFloats(payload)
	}
	if e.sentLog != nil {
		logged := payload
		if e.shared == nil {
			logged = cloneFloats(payload)
		}
		e.sentLog.Push(histEntry{iter: t, data: logged})
	}
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.neededBy(k) {
			continue
		}
		if e.shared != nil {
			e.shared.SendShared(k, DataTag, t, payload)
		} else {
			e.p.Send(k, DataTag, t, payload)
		}
	}
}

// needs reports whether this processor reads peer k's payload — k is the
// source of one of this processor's in-edges.
func (e *engine) needs(k int) bool {
	return e.needsM[k]
}

// neededBy reports whether peer k reads this processor's payload — k is the
// destination of one of this processor's out-edges.
func (e *engine) neededBy(k int) bool {
	return e.neededByM[k]
}

// drain moves every delivered message into the received stash, dispatching
// any recovery-protocol traffic along the way.
func (e *engine) drain() {
	for {
		m, ok := e.p.TryRecv(cluster.Any, cluster.Any)
		if !ok {
			return
		}
		e.intake(m)
	}
}

// actual blocks until the real snapshot of peer k at iteration t is
// available, dispatching any other traffic that arrives meanwhile. It
// returns nil when the snapshot can never arrive (a catch-up gap) — callers
// must then accept the speculation unverified. With crash recovery enabled
// the wait is chunked into RejoinRetry slices: each expiry re-requests the
// missing range from k, healing messages lost to a crash window or
// abandoned by the reliable layer.
func (e *engine) actual(k, t int) []float64 {
	for {
		if v, ok := e.plane.actualOf(k, t); ok {
			return v
		}
		if e.noActualBefore != nil && t < e.noActualBefore[k] {
			return nil
		}
		if e.cfg.CheckpointEvery > 0 && e.dr != nil {
			if m, ok := e.dr.RecvDeadline(cluster.Any, cluster.Any, e.cfg.RejoinRetry); ok {
				e.intake(m)
			} else if e.fd == nil || !e.fd.PeerDown(k) {
				// Patience expired with the peer alive: the message is
				// presumed lost, not late. Ask for a refill.
				e.sendRejoin(k, t-1)
			}
			continue
		}
		e.intake(e.p.Recv(cluster.Any, cluster.Any))
	}
}

// assembleView builds the global view for iteration t. With FW=0 it blocks
// for every actual snapshot (Figure 1); otherwise missing snapshots are
// speculated (Figure 3) and recorded for later validation.
func (e *engine) assembleView(t int) [][]float64 {
	view := e.plane.newViewRow(t)
	view[e.p.ID()] = e.plane.ownAt(t)
	var preds [][]float64
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		if v, ok := e.plane.actualOf(k, t); ok {
			view[k] = v
			continue
		}
		if e.cfg.FW == 0 {
			view[k] = e.actual(k, t)
			continue
		}
		pred := e.speculate(k, t)
		if pred == nil {
			// No history to speculate from (startup): block for the actual.
			view[k] = e.actual(k, t)
			continue
		}
		view[k] = pred
		if preds == nil {
			preds = e.plane.newPredRow(t)
		}
		preds[k] = pred
		e.stats.SpecsMade++
		e.ob.specMade(t, k)
	}
	return view
}

// speculate predicts peer k's iteration-t snapshot from the newest actual
// snapshots on hand. Returns nil if no history exists yet or the policy
// declines.
func (e *engine) speculate(k, t int) []float64 {
	hist, base := e.plane.collectHist(k, t, e.lookback(), e.cfg.BW)
	if base == -1 {
		return nil
	}
	steps := t - base
	if steps < 1 {
		steps = 1
	}
	var (
		pred []float64
		ops  float64
	)
	if e.edgeSpec != nil {
		pred, ops = e.edgeSpec.SpeculateEdge(Edge{From: k, To: e.p.ID()}, hist, steps)
	} else {
		pred, ops = e.specPol.Speculate(k, hist, steps)
	}
	e.p.Compute(ops, cluster.PhaseSpec)
	return pred
}

// validateThrough blocks until every iteration up to and including t has all
// its speculated inputs checked against actual messages, repairing and
// cascading recomputations as needed.
func (e *engine) validateThrough(t int) {
	for s := e.validated + 1; s <= t && !e.stopped; s++ {
		e.finishIter(s)
	}
}

// tryValidateThrough is validateThrough with a per-peer patience of
// Config.Deadline: when an overdue peer's message does not arrive in time,
// the iteration is marked as an overrun and validation is deferred —
// speculation then extends past the forward window until either the
// message lands (reconciliation) or the overrun budget forces a hard
// block. Returns false when it gave up on an overdue peer.
func (e *engine) tryValidateThrough(t int) bool {
	for s := e.validated + 1; s <= t && !e.stopped; s++ {
		if !e.collectActuals(s) {
			if !e.overrun[s] {
				e.overrun[s] = true
				e.stats.Overruns++
				e.note("overrun")
				e.ob.overrun(s)
			}
			return false
		}
		e.finishIter(s)
	}
	return true
}

// finishIter validates, reconciles, and retires one iteration.
func (e *engine) finishIter(s int) {
	e.validateIter(s)
	e.validated = s
	if e.overrun[s] {
		delete(e.overrun, s)
		e.stats.Reconciles++
		e.note("reconcile")
		e.ob.reconciled(s)
	}
	e.checkConverged(s)
	e.retire(s)
}

// collectActuals waits, up to Deadline per overdue peer, until every needed
// peer's iteration-s snapshot is stashed. Returns false on a deadline
// expiry. A peer the failure detector reports down gets no wait at all —
// the crash is bridged on speculation immediately. On success the
// subsequent validateIter will not block.
func (e *engine) collectActuals(s int) bool {
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		if _, ok := e.plane.actualOf(k, s); ok {
			continue
		}
		if e.noActualBefore != nil && s < e.noActualBefore[k] {
			continue // catch-up gap: nothing will ever arrive
		}
		if e.fd != nil && e.fd.PeerDown(k) {
			return false // dead peer: overrun without burning the deadline
		}
		if !e.waitActual(k, s, e.cfg.Deadline) {
			return false
		}
	}
	return true
}

// waitActual blocks until peer k's iteration-t snapshot is stashed or
// timeout elapses, dispatching any other traffic that arrives meanwhile.
func (e *engine) waitActual(k, t int, timeout float64) bool {
	deadline := e.p.Now() + timeout
	for {
		if _, ok := e.plane.actualOf(k, t); ok {
			return true
		}
		remaining := deadline - e.p.Now()
		if remaining <= 0 {
			return false
		}
		m, ok := e.dr.RecvDeadline(cluster.Any, cluster.Any, remaining)
		if !ok {
			_, have := e.plane.actualOf(k, t)
			return have
		}
		e.intake(m)
	}
}

// note records a point event if the transport supports it.
func (e *engine) note(kind string) {
	if e.noter != nil {
		e.noter.Note(kind)
	}
}

// checkConverged evaluates the optional Stopper on iteration s's actual
// exchanged snapshots. All processors hold identical snapshot sets, so the
// decision is globally consistent without extra messages.
func (e *engine) checkConverged(s int) {
	if e.stopper == nil {
		return
	}
	view := e.plane.convScratch
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() {
			payload := e.plane.ownAt(s)
			if e.pub != nil {
				payload = e.pub.Publish(payload)
			}
			view[k] = payload
			continue
		}
		if !e.needs(k) {
			view[k] = nil // no messages from unneeded peers
			continue
		}
		view[k] = e.actual(k, s)
		if view[k] == nil {
			// Catch-up gap: this processor cannot evaluate Done(s) on the
			// same data its peers did, so it skips the evaluation. See the
			// DESIGN.md caveat on Stopper + crash recovery.
			return
		}
	}
	if ops := e.stopper.DoneOps(); ops > 0 {
		e.p.Compute(ops, cluster.PhaseOther)
	}
	if e.stopper.Done(view, s) {
		e.stopped = true
		e.stopIter = s
		e.ob.converged(s)
	}
}

// validateIter checks every prediction used at iteration t against the
// actual messages; on any failure it asks the RepairPolicy to fix
// X_j(t+1) and cascades recomputation through the speculated frontier.
func (e *engine) validateIter(t int) {
	preds := e.plane.predsAt(t)
	view := e.plane.viewAt(t)
	dirty := false
	var worst CheckResult
	badPeers := e.badScratch[:0]
	for k := 0; k < e.p.P(); k++ {
		if k == e.p.ID() || !e.needs(k) {
			continue
		}
		if preds == nil || preds[k] == nil {
			// Actual was used directly; just make sure we have consumed it
			// for history purposes.
			e.actualIntoHistory(k, t)
			continue
		}
		act := e.actual(k, t)
		if act == nil {
			// Catch-up gap: the actual can never arrive, so the speculation
			// is accepted unverified and contributes no history entry.
			continue
		}
		var res CheckResult
		if e.edgeCheck != nil {
			res = e.edgeCheck.CheckEdge(Edge{From: k, To: e.p.ID()}, preds[k], act, e.plane.ownAt(t), t)
		} else {
			res = e.checkPol.Check(k, preds[k], act, e.plane.ownAt(t), t)
		}
		if res.Ops > 0 {
			e.p.Compute(res.Ops, cluster.PhaseCheck)
		}
		e.stats.SpecsChecked++
		e.stats.UnitsBad += int64(res.Bad)
		e.stats.UnitsTotal += int64(res.Total)
		if e.ob != nil {
			frac := 0.0
			if res.Total > 0 {
				frac = float64(res.Bad) / float64(res.Total)
			}
			e.ob.specChecked(t, k, frac, res.Bad > 0)
			if e.postCrashLeft != nil && e.postCrashLeft[k] > 0 {
				e.postCrashLeft[k]--
				e.ob.postCrashErr(frac)
			}
		}
		if res.Bad > 0 {
			e.stats.SpecsBad++
			dirty = true
			worst.Bad += res.Bad
			worst.Total += res.Total
			badPeers = append(badPeers, k)
			// Patch the stored view with the actual values for recompute.
			view[k] = act
		}
		e.actualIntoHistory(k, t)
	}
	e.badScratch = badPeers[:0]
	if !dirty {
		return
	}
	// Repair, charging the policy-reported cost (the paper's k·N_i·f_comp
	// or a cheaper incremental correction).
	e.stats.Repairs++
	e.ob.repaired(t, e.frontier-t)
	fixed, ops := e.repairPol.Repair(RepairContext{
		Iter:     t,
		Node:     e.p.ID(),
		View:     view,
		Computed: e.plane.ownAt(t + 1),
		Local:    e.plane.ownAt(t),
		Preds:    preds,
		BadPeers: badPeers,
		Worst:    worst,
	})
	e.plane.setOwn(t+1, fixed)
	e.p.Compute(ops, cluster.PhaseCorrect)
	// Cascade: any later iterations already computed used the stale
	// X_j(t+1). Their values are recomputed exactly, but the clock charge is
	// the policy's incremental repair cost — the affected work is the part
	// touched by the corrected inputs, the same accounting the paper's
	// k·N_i·f_comp term models (a full-recompute app simply returns
	// ComputeOps from RepairOps).
	for s := t + 1; s <= e.frontier; s++ {
		row := e.plane.viewAt(s)
		row[e.p.ID()] = e.plane.ownAt(s)
		redo, cops := e.repairPol.Cascade(CascadeContext{Iter: s, Node: e.p.ID(), View: row, Worst: worst})
		e.plane.setOwn(s+1, redo)
		e.p.Compute(cops, cluster.PhaseCorrect)
		e.stats.CascadeRedos++
		e.ob.cascaded(s)
	}
}

// actualIntoHistory pushes peer k's iteration-t actual snapshot into the
// backward-window ring (validation proceeds in iteration order, so pushes
// are ordered too). A catch-up gap (nil actual) contributes nothing.
func (e *engine) actualIntoHistory(k, t int) {
	v := e.actual(k, t)
	if v == nil {
		return
	}
	e.plane.pushHistory(k, t, v)
}

// retire drops per-iteration bookkeeping no longer needed after validation,
// recycling buffers back into the plane's pools.
func (e *engine) retire(t int) {
	e.plane.advanceFloors(e.validated, e.lookback())
	e.plane.dropPreds(t, e.specPol.Recycle)
	if t <= e.frontier {
		// views[t] may still be needed by a cascade from an earlier repair
		// only while t is unvalidated; once validated it is safe to drop.
		e.plane.dropView(t)
	}
	e.plane.dropOwn(t - 1)
	if testRetireHook != nil {
		testRetireHook(e, t)
	}
}

// testRetireHook, when non-nil (set only by tests), observes the engine
// after each retire — the memory-bound invariant is asserted there.
var testRetireHook func(e *engine, t int)

// cloneFloats copies a payload into a fresh buffer (non-nil for non-nil
// input, preserving the empty/nil distinction the transports' Send has).
func cloneFloats(s []float64) []float64 {
	if s == nil {
		return nil
	}
	d := make([]float64, len(s))
	copy(d, s)
	return d
}
