package core

import (
	"bytes"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
)

// obsRun executes the coupled-map workload with the given sinks attached and
// returns the per-processor results.
func obsRun(t *testing.T, reg *obs.Registry, jr *obs.Journal) []Result {
	t.Helper()
	cc := cluster.Config{
		Machines: cluster.UniformMachines(4, 1000),
		Net:      netmodel.Fixed{D: 0.4},
		Seed:     7,
		Metrics:  reg,
		Journal:  jr,
	}
	cfg := Config{FW: 1, MaxIter: 12, Metrics: reg, Journal: jr}
	results, err := RunCluster(cc, cfg, func(p *cluster.Proc) App {
		return &coupledMap{p: p, r: 3.2, eps: 0.3, threshold: 1e-4, computeOp: 500, repairOp: 250}
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestEngineMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	results := obsRun(t, reg, nil)
	var made, checked, bad, repairs int
	for _, r := range results {
		made += r.Stats.SpecsMade
		checked += r.Stats.SpecsChecked
		bad += r.Stats.SpecsBad
		repairs += r.Stats.Repairs
	}
	if made == 0 {
		t.Fatal("workload made no speculations")
	}
	totals := reg.Totals()
	for _, tc := range []struct {
		name string
		want int
	}{
		{MetricSpecsMade, made},
		{MetricSpecsCheck, checked},
		{MetricSpecsBad, bad},
		{MetricRepairs, repairs},
	} {
		if got := int(totals[tc.name]); got != tc.want {
			t.Errorf("%s = %d, want %d (stats)", tc.name, got, tc.want)
		}
	}
	// The prediction-error histogram saw exactly one sample per check.
	if got := int(totals[MetricPredError+"_count"]); got != checked {
		t.Errorf("prediction_error count = %d, want %d", got, checked)
	}
	// Exposition parses and covers the engine schema.
	var b bytes.Buffer
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseProm(&b)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	names := make(map[string]bool)
	for _, s := range samples {
		names[s.Name] = true
	}
	for _, want := range []string{MetricSpecsMade, MetricSpecsBad, MetricRepairs,
		MetricIterations, cluster.MetricMsgsSent, cluster.MetricMsgLatency + "_bucket"} {
		if !names[want] {
			t.Errorf("exposition missing family %s", want)
		}
	}
}

func TestJournalByteIdenticalAcrossRuns(t *testing.T) {
	render := func() []byte {
		jr := obs.NewJournal()
		obsRun(t, nil, jr)
		var b bytes.Buffer
		if err := jr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := render(), render()
	if len(a) == 0 {
		t.Fatal("journal is empty")
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different journals")
	}
}

func TestJournalRecordsEngineSchema(t *testing.T) {
	jr := obs.NewJournal()
	results := obsRun(t, nil, jr)
	var made, bad int
	for _, r := range results {
		made += r.Stats.SpecsMade
		bad += r.Stats.SpecsBad
	}
	if got := jr.Count(obs.EvSpecMade); got != made {
		t.Errorf("journal spec_made = %d, want %d", got, made)
	}
	if got := jr.Count(obs.EvSpecBad); got != bad {
		t.Errorf("journal spec_bad = %d, want %d", got, bad)
	}
	// 4 procs × 12 iterations, each with a start and an end.
	if got := jr.Count(obs.EvIterStart); got != 4*12 {
		t.Errorf("journal iter_start = %d, want 48", got)
	}
	if got := jr.Count(obs.EvIterEnd); got != 4*12 {
		t.Errorf("journal iter_end = %d, want 48", got)
	}
	// Events are stamped with non-decreasing per-processor virtual time.
	last := map[int]float64{}
	for _, e := range jr.Events() {
		if e.T < last[e.Proc] {
			t.Fatalf("proc %d time went backwards: %g after %g (%s)", e.Proc, e.T, last[e.Proc], e.Kind)
		}
		last[e.Proc] = e.T
	}
}

// BenchmarkEngineObs measures the engine with observability off (the nil
// fast path every ordinary run takes) and on, over the same tiny workload.
// The "off" case must track the seed's performance: the only added work is
// nil checks.
func BenchmarkEngineObs(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry, jr *obs.Journal) {
		for i := 0; i < b.N; i++ {
			cc := cluster.Config{
				Machines: cluster.UniformMachines(4, 1000),
				Net:      netmodel.Fixed{D: 0.4},
				Seed:     7,
				Metrics:  reg,
				Journal:  jr,
			}
			cfg := Config{FW: 1, MaxIter: 12, Metrics: reg, Journal: jr}
			_, err := RunCluster(cc, cfg, func(p *cluster.Proc) App {
				return &coupledMap{p: p, r: 3.2, eps: 0.3, threshold: 1e-4, computeOp: 500, repairOp: 250}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, nil) })
	b.Run("metrics", func(b *testing.B) { run(b, obs.NewRegistry(), nil) })
	b.Run("metrics+journal", func(b *testing.B) { run(b, obs.NewRegistry(), obs.NewJournal()) })
}
