package core

import (
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/netmodel"
)

// emptyOKApp gives some processors zero variables (N < p), which the
// engine must tolerate: empty broadcasts, empty speculations, empty checks.
type emptyOKApp struct {
	pid, p, n int // n variables distributed to the first n processors
}

func (a *emptyOKApp) InitLocal() []float64 {
	if a.pid < a.n {
		return []float64{float64(a.pid + 1)}
	}
	return nil
}

func (a *emptyOKApp) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for _, part := range view {
		for _, v := range part {
			sum += v
		}
	}
	if a.pid < a.n {
		return []float64{view[a.pid][0]*0.9 + 0.1*sum/float64(a.n)}
	}
	return nil
}

func (a *emptyOKApp) ComputeOps() float64 { return 50 }

func (a *emptyOKApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(0.05, 1, pred, act)
}

func (a *emptyOKApp) RepairOps(r CheckResult) float64 { return 50 }

func TestEmptyPartitionsTolerated(t *testing.T) {
	for _, fw := range []int{0, 1, 2} {
		results, err := RunCluster(uniformCluster(5, 0.05),
			Config{FW: fw, MaxIter: 12},
			func(pr *cluster.Proc) App { return &emptyOKApp{pid: pr.ID(), p: pr.P(), n: 3} })
		if err != nil {
			t.Fatalf("FW=%d: %v", fw, err)
		}
		for _, r := range results {
			if r.Proc < 3 && len(r.Final) != 1 {
				t.Errorf("FW=%d proc %d: final %v", fw, r.Proc, r.Final)
			}
			if r.Proc >= 3 && len(r.Final) != 0 {
				t.Errorf("FW=%d proc %d should own nothing: %v", fw, r.Proc, r.Final)
			}
		}
	}
}

func TestHorizonAbortsRunawayEngine(t *testing.T) {
	c := cluster.New(cluster.Config{
		Machines: cluster.UniformMachines(2, 1000),
		Net:      netmodel.Fixed{D: 0.01},
		Horizon:  5, // far less than 100000 iterations need
	})
	c.Start(func(pr *cluster.Proc) {
		app := &emptyOKApp{pid: pr.ID(), p: pr.P(), n: 2}
		_, _ = Run(pr, app, Config{FW: 1, MaxIter: 100000})
	})
	if err := c.Run(); err == nil {
		t.Fatal("expected horizon error")
	}
	if c.Now() > 5 {
		t.Errorf("clock ran past horizon: %v", c.Now())
	}
}
