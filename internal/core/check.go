package core

import "math"

// RelErrCheck builds a CheckResult by comparing predicted and actual values
// element-wise: element i is "bad" when |pred−act| > threshold·(1+|act|).
// opsPerElem is the check's operation cost per element (the paper's
// f_check). It is a convenience for apps without a domain-specific error
// metric (the N-body app uses eq. 11 instead).
func RelErrCheck(threshold, opsPerElem float64, predicted, actual []float64) CheckResult {
	n := len(actual)
	bad := 0
	for i := 0; i < n && i < len(predicted); i++ {
		if math.Abs(predicted[i]-actual[i]) > threshold*(1+math.Abs(actual[i])) {
			bad++
		}
	}
	if len(predicted) != n {
		// A malformed prediction invalidates everything.
		bad = n
	}
	return CheckResult{Bad: bad, Total: n, Ops: opsPerElem * float64(n)}
}

// MaxAbsErr returns the maximum absolute element-wise difference, a common
// diagnostic for comparing speculative and blocking runs.
func MaxAbsErr(a, b []float64) float64 {
	worst := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
