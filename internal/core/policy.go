package core

// The speculation pipeline's policy layer. The state machine in core.go is
// fixed — broadcast, drain, assemble, compute, validate, repair, retire —
// while the three decisions the paper leaves open are behind narrow
// interfaces: what to predict (SpecPolicy), how to judge a prediction
// (CheckPolicy), and how to recover from a bad one (RepairPolicy). The
// default set reproduces the engine's seeded behavior byte-for-byte; custom
// policies plug in through Config.Spec/Check/Repair without touching the
// engine.

import "specomp/internal/predict"

// SpecPolicy decides what the engine predicts for a missing peer payload —
// the paper's speculation function (§3.1).
type SpecPolicy interface {
	// Speculate returns the predicted payload of peer `peer`, `steps`
	// iterations after hist[0]. hist holds the peer's actual snapshots
	// newest first and is only valid for the duration of the call. ops is
	// the operation cost charged to the speculation phase. A nil pred
	// declines to speculate: the engine blocks for the actual message
	// instead (ops is still charged).
	Speculate(peer int, hist [][]float64, steps int) (pred []float64, ops float64)
	// Recycle hands back a prediction the engine no longer references
	// (its iteration was validated and retired). Policies that draw
	// predictions from a buffer pool reclaim them here; others no-op.
	Recycle(pred []float64)
}

// EdgeSpecPolicy is an optional SpecPolicy extension for policies that
// differentiate by dependency edge: when the configured SpecPolicy also
// implements it, the engine calls SpeculateEdge instead of Speculate, with
// the edge it is predicting across (From = the peer being predicted, To =
// the local processor). Under a task DAG different edges carry different
// signals — a pipeline hop from a smooth source extrapolates well while a
// hop from a thresholding stage may not — and this is where a policy keys
// per-hop predictors or windows.
type EdgeSpecPolicy interface {
	SpeculateEdge(e Edge, hist [][]float64, steps int) (pred []float64, ops float64)
}

// EdgeCheckPolicy is the CheckPolicy analogue of EdgeSpecPolicy: CheckEdge
// replaces Check when implemented, receiving the dependency edge being
// validated so tolerances can vary per hop.
type EdgeCheckPolicy interface {
	CheckEdge(e Edge, predicted, actual, local []float64, iter int) CheckResult
}

// CheckPolicy judges a speculated payload against the actual message — the
// paper's error > threshold test. The default delegates to App.Check;
// replacements can change the metric or threshold per pair without touching
// the app.
type CheckPolicy interface {
	Check(peer int, predicted, actual, local []float64, iter int) CheckResult
}

// RepairContext is what a RepairPolicy sees when iteration Iter failed
// validation. All slices are engine-owned and only valid during the call.
type RepairContext struct {
	Iter     int
	Node     int         // the local processor (the To of every bad edge)
	View     [][]float64 // global view with actuals patched over bad predictions
	Computed []float64   // the speculatively computed X_j(Iter+1)
	Local    []float64   // X_j(Iter)
	Preds    [][]float64 // predictions used at Iter (nil slot = actual used)
	BadPeers []int       // peers whose predictions failed the check
	Worst    CheckResult // accumulated Bad/Total over the failed peers
}

// CascadeContext is what a RepairPolicy sees for each iteration downstream
// of a repair whose inputs transitively changed.
type CascadeContext struct {
	Iter  int
	Node  int         // the local processor
	View  [][]float64 // iteration Iter's view with the repaired local entry
	Worst CheckResult // the upstream repair's accumulated check result
}

// RepairPolicy fixes the local computation after failed checks and sets the
// degradation budget — the paper's repair/recompute step (eq. 11) plus the
// overrun bound of graceful degradation.
type RepairPolicy interface {
	// Repair returns the corrected X_j(Iter+1) and the operation cost
	// charged to the correction phase.
	Repair(rc RepairContext) (fixed []float64, ops float64)
	// Cascade recomputes X_j(Iter+1) for an iteration downstream of a
	// repair, returning the redone values and their operation cost.
	Cascade(cc CascadeContext) (redo []float64, ops float64)
	// OverrunBudget is how many iterations validation may lag past the
	// forward window before the engine blocks hard; peerDown reports that a
	// needed peer is currently inside a crash window, which the default
	// stretches by MaxCrashOverrun to bridge the outage on speculation.
	OverrunBudget(peerDown bool) int
}

// defaultSpec is the stock speculation policy: the app's Speculator when it
// has one, otherwise Config.Predictor — in place through a pooled buffer
// when the predictor supports it, so steady-state speculation allocates
// nothing.
type defaultSpec struct {
	app  Speculator // non-nil wins
	pred predict.Predictor
	inp  predict.InPlace // non-nil when pred supports in-place prediction
	pool *bufPool
}

func (d *defaultSpec) Speculate(peer int, hist [][]float64, steps int) ([]float64, float64) {
	if d.app != nil {
		return d.app.Speculate(peer, hist, steps)
	}
	var pred []float64
	if d.inp != nil {
		dst := d.pool.get(len(hist[0]))
		pred = d.inp.PredictInto(dst, hist, steps)
		if !sameSlice(pred, dst) {
			d.pool.put(dst)
		}
	} else {
		pred = d.pred.Predict(hist, steps)
	}
	return pred, d.pred.Ops() * float64(len(pred)) * float64(steps)
}

func (d *defaultSpec) Recycle(pred []float64) {
	if d.app == nil && d.inp != nil {
		d.pool.put(pred)
	}
}

func sameSlice(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// defaultCheck delegates to the app's error check unchanged.
type defaultCheck struct{ app App }

func (d defaultCheck) Check(peer int, predicted, actual, local []float64, iter int) CheckResult {
	return d.app.Check(peer, predicted, actual, local, iter)
}

// defaultRepair applies the app's Corrector when it has one (folding it
// over every failed peer), otherwise recomputes from the patched view;
// cascades always recompute. The overrun budget is MaxOverrun, stretched by
// MaxCrashOverrun while a needed peer is down.
type defaultRepair struct {
	app             App
	corr            Corrector // nil unless app implements it
	maxOverrun      int
	maxCrashOverrun int
}

func (d *defaultRepair) Repair(rc RepairContext) ([]float64, float64) {
	ops := d.app.RepairOps(rc.Worst)
	if d.corr != nil {
		fixed := rc.Computed
		for _, k := range rc.BadPeers {
			fixed = d.corr.Correct(fixed, rc.Local, k, rc.Preds[k], rc.View[k], rc.Iter)
		}
		return fixed, ops
	}
	return d.app.Compute(rc.View, rc.Iter), ops
}

func (d *defaultRepair) Cascade(cc CascadeContext) ([]float64, float64) {
	return d.app.Compute(cc.View, cc.Iter), d.app.RepairOps(cc.Worst)
}

func (d *defaultRepair) OverrunBudget(peerDown bool) int {
	b := d.maxOverrun
	if peerDown {
		b += d.maxCrashOverrun
	}
	return b
}
