package core

// The value plane: every per-iteration payload the engine touches — stashed
// peer actuals, validated history, its own partition results, assembled
// views, pending predictions — lives here, in iteration-indexed rings with
// pooled buffers. The state machine in core.go holds no payload maps; it
// asks the plane for slices and the plane guarantees the steady-state path
// allocates nothing: rings are fixed arrays, own/prediction buffers cycle
// through a bufPool, and view/prediction rows cycle through a freelist.

import (
	"specomp/internal/checkpoint"
	"specomp/internal/history"
)

// histEntry is one validated snapshot in a peer's backward-window ring,
// tagged with the iteration it belongs to so the speculation base is
// correct for any exchange pattern.
type histEntry struct {
	iter int
	data []float64
}

// lane is an iteration-indexed sliding window of values: a ring for the
// O(1) no-allocation common case plus a rare-path overflow map for entries
// that outlive their ring slot (e.g. a deep validation stall right after a
// restore puts more than `capacity` live iterations in flight). floor is
// the oldest iteration still worth keeping; older entries are dropped on
// eviction and purged from the overflow as the floor advances.
type lane[T any] struct {
	ring     *history.IterRing[T]
	overflow map[int]T
	floor    int
}

func newLane[T any](capacity int) lane[T] {
	return lane[T]{ring: history.NewIterRing[T](capacity), floor: -(1 << 30)}
}

func (l *lane[T]) get(iter int) (T, bool) {
	if v, ok := l.ring.Get(iter); ok {
		return v, true
	}
	if l.overflow != nil {
		v, ok := l.overflow[iter]
		return v, ok
	}
	var zero T
	return zero, false
}

// put stores v for iter. An entry evicted from the ring spills to the
// overflow map while still at or above the floor; below it, the entry is
// returned so the caller can recycle its buffers (ok=false otherwise).
func (l *lane[T]) put(iter int, v T) (dropped T, ok bool) {
	if l.overflow != nil {
		delete(l.overflow, iter)
	}
	ev, evIter, wasEv := l.ring.Put(iter, v)
	if !wasEv {
		return dropped, false
	}
	if evIter >= l.floor {
		if l.overflow == nil {
			l.overflow = make(map[int]T)
		}
		l.overflow[evIter] = ev
		return dropped, false
	}
	return ev, true
}

func (l *lane[T]) del(iter int) (T, bool) {
	if v, ok := l.ring.Delete(iter); ok {
		return v, true
	}
	if l.overflow != nil {
		if v, ok := l.overflow[iter]; ok {
			delete(l.overflow, iter)
			return v, true
		}
	}
	var zero T
	return zero, false
}

// retained reports how many entries the lane currently holds (ring plus
// overflow) — the quantity the memory-bound test asserts stays below the
// lane's fixed capacity across arbitrarily long runs.
func (l *lane[T]) retained() int {
	n := len(l.overflow)
	if l.ring != nil {
		n += l.ring.Len()
	}
	return n
}

// setFloor raises the keep-horizon and purges overflow entries that fell
// below it, passing each to recycle (when non-nil). The overflow is empty in
// steady state, so this is a length check per call.
func (l *lane[T]) setFloor(floor int, recycle func(T)) {
	if floor <= l.floor {
		return
	}
	l.floor = floor
	if len(l.overflow) == 0 {
		return
	}
	for it, v := range l.overflow {
		if it < floor {
			delete(l.overflow, it)
			if recycle != nil {
				recycle(v)
			}
		}
	}
}

// valuePlane is one processor's payload store. Peer state is keyed by
// dependency edge: one lane per in-edge of the run's DepGraph (for the
// degenerate complete graph that is one lane per peer, the classical
// layout), with laneOf translating a source rank to its lane index.
type valuePlane struct {
	self int
	np   int
	pool *bufPool

	// laneOf[k] is the dense in-edge index of source rank k, or -1 when no
	// edge k→self exists (payloads from such ranks are dropped on arrival).
	laneOf []int
	// peers[i] stashes the i-th in-edge's actual iteration payloads as
	// delivered (buffers are adopted from the transport and never recycled,
	// so stored history may alias them safely).
	peers []lane[[]float64]
	// hist[i] is the i-th in-edge's validated history: the BW newest
	// validated snapshots, the speculation fallback when the stash has no
	// base.
	hist []*history.Ring[histEntry]
	// own holds the local partition per iteration, copied into pooled
	// buffers so app-returned slices are never retained.
	own lane[[]float64]
	// views holds the assembled global view rows; preds the prediction rows
	// (nil slot = actual was used). Rows cycle through rowFree.
	views lane[[][]float64]
	preds lane[[][]float64]

	rowFree     [][][]float64
	histScratch [][]float64
	convScratch [][]float64
}

// newValuePlane builds the payload store for one processor. in is the
// sorted list of source ranks this processor reads (its in-edges); only
// those ranks get stash/history lanes.
func newValuePlane(self, np, bw, peerCap, iterCap int, in []int) *valuePlane {
	vp := &valuePlane{
		self:        self,
		np:          np,
		pool:        newBufPool(),
		laneOf:      make([]int, np),
		peers:       make([]lane[[]float64], len(in)),
		hist:        make([]*history.Ring[histEntry], len(in)),
		own:         newLane[[]float64](iterCap),
		views:       newLane[[][]float64](iterCap),
		preds:       newLane[[][]float64](iterCap),
		histScratch: make([][]float64, 0, bw),
		convScratch: make([][]float64, np),
	}
	for k := range vp.laneOf {
		vp.laneOf[k] = -1
	}
	for i, k := range in {
		vp.laneOf[k] = i
		vp.peers[i] = newLane[[]float64](peerCap)
		vp.hist[i] = history.NewRing[histEntry](bw)
	}
	return vp
}

// peerLane returns source rank k's stash lane, or nil when no edge k→self
// exists.
func (vp *valuePlane) peerLane(k int) *lane[[]float64] {
	if i := vp.laneOf[k]; i >= 0 {
		return &vp.peers[i]
	}
	return nil
}

// histRing returns source rank k's validated-history ring, or nil when no
// edge k→self exists.
func (vp *valuePlane) histRing(k int) *history.Ring[histEntry] {
	if i := vp.laneOf[k]; i >= 0 {
		return vp.hist[i]
	}
	return nil
}

// stash records an actual snapshot, first-wins: a rejoin re-send must never
// overwrite the copy peers already computed against. Payloads from ranks
// with no edge to this processor are dropped. Dropped evictions are
// transport-owned buffers; the GC takes them.
func (vp *valuePlane) stash(src, iter int, data []float64) {
	l := vp.peerLane(src)
	if l == nil {
		return
	}
	if _, ok := l.get(iter); ok {
		return
	}
	l.put(iter, data)
}

// actualOf returns peer k's stashed iteration-iter payload.
func (vp *valuePlane) actualOf(k, iter int) ([]float64, bool) {
	l := vp.peerLane(k)
	if l == nil {
		return nil, false
	}
	return l.get(iter)
}

// pushHistory appends a validated snapshot to peer k's backward window.
// data aliases the stash (stashed buffers are immutable), so no copy.
func (vp *valuePlane) pushHistory(k, iter int, data []float64) {
	if r := vp.histRing(k); r != nil {
		r.Push(histEntry{iter: iter, data: data})
	}
}

// collectHist gathers the newest-first speculation history for peer k at
// iteration t into a reused scratch slice (valid until the next call):
// the newest stashed actual at or before t-1 within lookback, plus up to
// bw-1 consecutive predecessors; falling back to the validated-history ring
// when the stash has no base. Returns base -1 when there is no history.
func (vp *valuePlane) collectHist(k, t, lookback, bw int) ([][]float64, int) {
	l := vp.peerLane(k)
	if l == nil {
		return nil, -1
	}
	hist := vp.histScratch[:0]
	base := -1
	for s := t - 1; s >= 0 && s >= t-lookback; s-- {
		if v, ok := l.get(s); ok {
			base = s
			hist = append(hist, v)
			for q := s - 1; q >= 0 && len(hist) < bw; q-- {
				v2, ok2 := l.get(q)
				if !ok2 {
					break
				}
				hist = append(hist, v2)
			}
			break
		}
	}
	if base == -1 {
		r := vp.histRing(k)
		if r.Len() == 0 {
			return nil, -1
		}
		for i := 0; i < r.Len(); i++ {
			hist = append(hist, r.At(i).data)
		}
		base = r.At(0).iter
	}
	vp.histScratch = hist
	return hist, base
}

// setOwn stores the local partition for an iteration, copying vals into a
// pooled buffer (or in place when the slot already holds one of the right
// shape). The caller keeps ownership of vals.
func (vp *valuePlane) setOwn(iter int, vals []float64) {
	if cur, ok := vp.own.get(iter); ok {
		if len(cur) == len(vals) && (cur == nil) == (vals == nil) {
			copy(cur, vals)
			return
		}
		if cur2, ok2 := vp.own.del(iter); ok2 {
			vp.pool.put(cur2)
		}
	}
	var buf []float64
	if vals != nil {
		buf = vp.pool.get(len(vals))
		copy(buf, vals)
	}
	if dropped, ok := vp.own.put(iter, buf); ok {
		vp.pool.put(dropped)
	}
}

// ownAt returns the local partition at an iteration (nil when absent).
func (vp *valuePlane) ownAt(iter int) []float64 {
	v, _ := vp.own.get(iter)
	return v
}

func (vp *valuePlane) dropOwn(iter int) {
	if v, ok := vp.own.del(iter); ok {
		vp.pool.put(v)
	}
}

func (vp *valuePlane) newRow() [][]float64 {
	if k := len(vp.rowFree); k > 0 {
		r := vp.rowFree[k-1]
		vp.rowFree[k-1] = nil
		vp.rowFree = vp.rowFree[:k-1]
		for i := range r {
			r[i] = nil
		}
		return r
	}
	return make([][]float64, vp.np)
}

func (vp *valuePlane) freeRow(r [][]float64) {
	vp.rowFree = append(vp.rowFree, r)
}

// newViewRow registers and returns a cleared per-peer row for iteration
// iter's assembled view.
func (vp *valuePlane) newViewRow(iter int) [][]float64 {
	row := vp.newRow()
	if dropped, ok := vp.views.put(iter, row); ok {
		vp.freeRow(dropped)
	}
	return row
}

func (vp *valuePlane) viewAt(iter int) [][]float64 {
	r, _ := vp.views.get(iter)
	return r
}

func (vp *valuePlane) dropView(iter int) {
	if r, ok := vp.views.del(iter); ok {
		vp.freeRow(r)
	}
}

// newPredRow registers and returns a cleared per-peer prediction row.
func (vp *valuePlane) newPredRow(iter int) [][]float64 {
	row := vp.newRow()
	if dropped, ok := vp.preds.put(iter, row); ok {
		vp.freeRow(dropped)
	}
	return row
}

func (vp *valuePlane) predsAt(iter int) [][]float64 {
	r, _ := vp.preds.get(iter)
	return r
}

// dropPreds retires an iteration's prediction row, handing each retained
// prediction to recycle (the SpecPolicy's buffer-return hook).
func (vp *valuePlane) dropPreds(iter int, recycle func([]float64)) {
	r, ok := vp.preds.del(iter)
	if !ok {
		return
	}
	if recycle != nil {
		for _, p := range r {
			if p != nil {
				recycle(p)
			}
		}
	}
	vp.freeRow(r)
}

// advanceFloors moves every lane's keep-horizon forward after validation
// reached `validated`: stashed actuals stay useful for lookback iterations,
// own/view/prediction state only around the validation point.
func (vp *valuePlane) advanceFloors(validated, lookback int) {
	for i := range vp.peers {
		vp.peers[i].setFloor(validated-lookback, nil)
	}
	vp.own.setFloor(validated-1, vp.pool.put)
	vp.views.setFloor(validated, vp.freeRow)
	vp.preds.setFloor(validated, vp.freeRow)
}

// --- checkpoint emission -------------------------------------------------
//
// The emission helpers present plane state in the exact canonical form the
// pre-refactor map-based engine produced, so checkpoint blobs (whose byte
// counts surface in the run journal) stay identical: entries ascending by
// iteration, stash entries filtered to the retention window the old eager
// prune maintained.

func (vp *valuePlane) ownEntries(validated, frontier int) []checkpoint.Entry {
	lo := validated
	if lo < 0 {
		lo = 0
	}
	var out []checkpoint.Entry
	for t := lo; t <= frontier+1; t++ {
		if v, ok := vp.own.get(t); ok {
			out = append(out, checkpoint.Entry{Iter: t, Data: v})
		}
	}
	return out
}

func (vp *valuePlane) histEntries(k int) []checkpoint.Entry {
	r := vp.histRing(k)
	if r == nil {
		return nil
	}
	var out []checkpoint.Entry
	for i := r.Len() - 1; i >= 0; i-- { // oldest first
		h := r.At(i)
		out = append(out, checkpoint.Entry{Iter: h.iter, Data: h.data})
	}
	return out
}

func (vp *valuePlane) receivedEntries(k, from int) []checkpoint.Entry {
	l := vp.peerLane(k)
	if l == nil || l.ring == nil {
		return nil
	}
	maxIter, any := l.ring.MaxIter()
	if !any {
		return nil
	}
	lo := from
	if lo < 0 {
		lo = 0
	}
	var out []checkpoint.Entry
	for t := lo; t <= maxIter; t++ {
		if v, ok := l.get(t); ok {
			out = append(out, checkpoint.Entry{Iter: t, Data: v})
		}
	}
	return out
}

func (vp *valuePlane) predRows(validated, frontier int) []checkpoint.PredRow {
	var out []checkpoint.PredRow
	for t := validated + 1; t <= frontier; t++ {
		if r, ok := vp.preds.get(t); ok {
			row := checkpoint.PredRow{Iter: t, Data: make([][]float64, vp.np)}
			copy(row.Data, r)
			out = append(out, row)
		}
	}
	return out
}
