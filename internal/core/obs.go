package core

import (
	"strconv"

	"specomp/internal/obs"
)

// Engine metric names (Prometheus families; every series carries a proc
// label). Exported so endpoint consumers and tests agree on the schema.
const (
	MetricIterations  = "specomp_iterations_total"
	MetricSpecsMade   = "specomp_specs_made_total"
	MetricSpecsCheck  = "specomp_specs_checked_total"
	MetricSpecsBad    = "specomp_specs_bad_total"
	MetricRepairs     = "specomp_repairs_total"
	MetricCascades    = "specomp_cascade_redos_total"
	MetricOverruns    = "specomp_overruns_total"
	MetricReconciles  = "specomp_reconciles_total"
	MetricIteration   = "specomp_iteration" // gauge: iteration currently computing
	MetricPredError   = "specomp_prediction_error"
	MetricRepairDepth = "specomp_repair_depth"

	MetricCheckpoints     = "specomp_checkpoints_total"
	MetricCheckpointBytes = "specomp_checkpoint_bytes_total"
	MetricRestores        = "specomp_restores_total"
	MetricCatchupIters    = "specomp_catchup_iters_total"
	MetricPostCrashErr    = "specomp_post_crash_prediction_error"
)

// engineObs bundles one processor's observability handles. A nil *engineObs
// means observability is off; every method no-ops, so the engine's hot path
// pays a single nil check per site.
type engineObs struct {
	p       Transport
	journal *obs.Journal

	iters      *obs.Counter
	specsMade  *obs.Counter
	specsCheck *obs.Counter
	specsBad   *obs.Counter
	repairs    *obs.Counter
	cascades   *obs.Counter
	overruns   *obs.Counter
	reconciles *obs.Counter
	iterGauge  *obs.Gauge

	checkpoints  *obs.Counter
	ckptBytes    *obs.Counter
	restores     *obs.Counter
	catchupIters *obs.Counter

	predErr     *obs.Histogram
	repairDepth *obs.Histogram
	postCrash   *obs.Histogram
}

// RegisterEngineMetrics pre-registers the engine's counter families for
// processor proc so a metrics endpoint exposes them (at zero) before the
// first event. Nil-safe.
func RegisterEngineMetrics(reg *obs.Registry, proc int) {
	newEngineObs(reg, nil, proc)
}

// newEngineObs creates the per-processor handles, or returns nil when both
// sinks are off.
func newEngineObs(reg *obs.Registry, journal *obs.Journal, proc int) *engineObs {
	if reg == nil && journal == nil {
		return nil
	}
	lp := obs.L("proc", strconv.Itoa(proc))
	return &engineObs{
		journal:    journal,
		iters:      reg.Counter(MetricIterations, "iterations computed", lp),
		specsMade:  reg.Counter(MetricSpecsMade, "peer-iteration predictions performed", lp),
		specsCheck: reg.Counter(MetricSpecsCheck, "predictions validated against actual messages", lp),
		specsBad:   reg.Counter(MetricSpecsBad, "validations that exceeded tolerance", lp),
		repairs:    reg.Counter(MetricRepairs, "iterations repaired after a failed check", lp),
		cascades:   reg.Counter(MetricCascades, "later iterations recomputed due to an upstream repair", lp),
		overruns:   reg.Counter(MetricOverruns, "validations deferred past a Deadline expiry", lp),
		reconciles: reg.Counter(MetricReconciles, "overrun iterations later validated", lp),
		iterGauge:  reg.Gauge(MetricIteration, "iteration currently being computed", lp),
		predErr: reg.Histogram(MetricPredError, "unit-bad fraction per validated prediction",
			[]float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1}, lp),
		repairDepth: reg.Histogram(MetricRepairDepth, "cascade length per repair (iterations recomputed)",
			[]float64{0, 1, 2, 4, 8, 16}, lp),
		checkpoints:  reg.Counter(MetricCheckpoints, "engine state snapshots persisted", lp),
		ckptBytes:    reg.Counter(MetricCheckpointBytes, "encoded snapshot bytes written", lp),
		restores:     reg.Counter(MetricRestores, "post-crash state restorations", lp),
		catchupIters: reg.Counter(MetricCatchupIters, "iterations replayed to re-reach the surviving frontier", lp),
		postCrash: reg.Histogram(MetricPostCrashErr, "unit-bad fraction of validations shortly after a peer rejoins",
			[]float64{0, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1}, lp),
	}
}

// event journals a record stamped with the transport's current time.
func (o *engineObs) event(kind string, iter, peer int, v float64) {
	if o.journal == nil {
		return
	}
	o.journal.Record(obs.Event{
		T: o.p.Now(), Proc: o.p.ID(), Kind: kind, Iter: iter, Peer: peer, V: v,
	})
}

func (o *engineObs) iterStart(t int) {
	if o == nil {
		return
	}
	o.iterGauge.Set(float64(t))
	o.event(obs.EvIterStart, t, obs.NoPeer, 0)
}

func (o *engineObs) iterEnd(t int) {
	if o == nil {
		return
	}
	o.iters.Inc()
	o.event(obs.EvIterEnd, t, obs.NoPeer, 0)
}

func (o *engineObs) specMade(t, peer int) {
	if o == nil {
		return
	}
	o.specsMade.Inc()
	o.event(obs.EvSpecMade, t, peer, 0)
}

// specChecked records a validation outcome; frac is the unit-bad fraction.
func (o *engineObs) specChecked(t, peer int, frac float64, bad bool) {
	if o == nil {
		return
	}
	o.specsCheck.Inc()
	o.predErr.Observe(frac)
	o.event(obs.EvSpecChecked, t, peer, frac)
	if bad {
		o.specsBad.Inc()
		o.event(obs.EvSpecBad, t, peer, frac)
	}
}

// repaired records a repair of iteration t that cascaded through depth
// further iterations.
func (o *engineObs) repaired(t, depth int) {
	if o == nil {
		return
	}
	o.repairs.Inc()
	o.repairDepth.Observe(float64(depth))
	o.event(obs.EvRepair, t, obs.NoPeer, float64(depth))
}

func (o *engineObs) cascaded(s int) {
	if o == nil {
		return
	}
	o.cascades.Inc()
	o.event(obs.EvCascade, s, obs.NoPeer, 0)
}

func (o *engineObs) overrun(s int) {
	if o == nil {
		return
	}
	o.overruns.Inc()
	o.event(obs.EvOverrun, s, obs.NoPeer, 0)
}

func (o *engineObs) reconciled(s int) {
	if o == nil {
		return
	}
	o.reconciles.Inc()
	o.event(obs.EvReconcile, s, obs.NoPeer, 0)
}

func (o *engineObs) converged(s int) {
	if o == nil {
		return
	}
	o.event(obs.EvConverged, s, obs.NoPeer, 0)
}

// checkpointed records one persisted snapshot of `bytes` encoded bytes,
// taken with `validated` as the highest fully validated iteration.
func (o *engineObs) checkpointed(validated, bytes int) {
	if o == nil {
		return
	}
	o.checkpoints.Inc()
	o.ckptBytes.Add(float64(bytes))
	o.event(obs.EvCheckpoint, validated, obs.NoPeer, float64(bytes))
}

func (o *engineObs) restored(validated int) {
	if o == nil {
		return
	}
	o.restores.Inc()
	o.event(obs.EvRestore, validated, obs.NoPeer, 0)
}

// rejoinServed records that this processor answered peer's rejoin/refill
// request covering iterations above have.
func (o *engineObs) rejoinServed(peer, have int) {
	if o == nil {
		return
	}
	o.event(obs.EvRejoin, have, peer, 0)
}

// catchup records that the post-restore replay re-reached the surviving
// frontier at iteration t after replaying n iterations.
func (o *engineObs) catchup(t, n int) {
	if o == nil {
		return
	}
	o.catchupIters.Add(float64(n))
	o.event(obs.EvCatchup, t, obs.NoPeer, float64(n))
}

// catchupGap records that peer's re-send log could not cover the outage;
// oldest is the first iteration it can still supply.
func (o *engineObs) catchupGap(peer, oldest int) {
	if o == nil {
		return
	}
	o.event(obs.EvCatchupGap, obs.NoPeer, peer, float64(oldest))
}

func (o *engineObs) postCrashErr(frac float64) {
	if o == nil {
		return
	}
	o.postCrash.Observe(frac)
}
