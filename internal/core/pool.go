package core

import "sync"

// emptyBuf is the shared zero-length buffer handed out for empty payloads,
// preserving the non-nil/nil distinction without allocating.
var emptyBuf = []float64{}

// box carries a buffer in and out of a sync.Pool. Pooling bare slices would
// allocate an interface box on every Put; keeping the slice inside a pointer
// box (and recycling the boxes themselves) makes the steady-state get/put
// cycle allocation-free.
type box struct{ d []float64 }

// bufPool hands out float64 buffers by exact length, one sync.Pool per
// length class. The engine's payloads come in a tiny number of sizes (the
// partition and its published form), so the class map stays small. A pool is
// per-engine: buffers it hands out are only ever recycled by the same
// single-threaded engine, so a returned buffer can never be concurrently
// reused — sync.Pool just lets the GC reclaim idle buffers under pressure.
type bufPool struct {
	pools map[int]*sync.Pool
	boxes []*box // empty boxes awaiting reuse
}

func newBufPool() *bufPool {
	return &bufPool{pools: make(map[int]*sync.Pool)}
}

func (bp *bufPool) class(n int) *sync.Pool {
	p := bp.pools[n]
	if p == nil {
		p = &sync.Pool{New: func() any { return &box{d: make([]float64, n)} }}
		bp.pools[n] = p
	}
	return p
}

// get returns a length-n buffer with unspecified contents; callers must
// overwrite every element.
func (bp *bufPool) get(n int) []float64 {
	if n == 0 {
		return emptyBuf
	}
	b := bp.class(n).Get().(*box)
	d := b.d
	b.d = nil
	bp.boxes = append(bp.boxes, b)
	return d
}

// put recycles a buffer previously obtained from get (or any buffer the
// caller owns exclusively and will never touch again).
func (bp *bufPool) put(s []float64) {
	n := len(s)
	if n == 0 {
		return
	}
	var b *box
	if k := len(bp.boxes); k > 0 {
		b = bp.boxes[k-1]
		bp.boxes[k-1] = nil
		bp.boxes = bp.boxes[:k-1]
	} else {
		b = &box{}
	}
	b.d = s
	bp.class(n).Put(b)
}
