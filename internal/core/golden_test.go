package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
)

// The golden-journal fixtures pin the engine's externally observable
// behaviour across refactors: for a fixed seed, the structured run journal
// (event kinds, iteration/peer stamps, virtual timestamps, checkpoint byte
// counts) must stay byte-identical. The fixtures were generated before the
// policy/value-plane decomposition, so any refactor that silently reorders
// events, changes an op charge, or perturbs checkpoint encoding fails here.
//
// Regenerate intentionally with:
//
//	go test ./internal/core -run TestGoldenJournals -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite journal golden fixtures")

type goldenCase struct {
	name      string
	cc        func() cluster.Config
	cfg       func() Config
	threshold float64
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			// The plain speculative pipeline: FW=1, occasional repairs.
			name: "fw1",
			cc: func() cluster.Config {
				return cluster.Config{
					Machines: cluster.UniformMachines(4, 1000),
					Net:      netmodel.Fixed{D: 0.4},
					Seed:     7,
				}
			},
			cfg:       func() Config { return Config{FW: 1, MaxIter: 12} },
			threshold: 1e-4,
		},
		{
			// Deep forward window with a zero tolerance: every imperfect
			// speculation repairs and cascades through the pipeline.
			name: "fw3-cascade",
			cc: func() cluster.Config {
				return cluster.Config{
					Machines: cluster.UniformMachines(4, 1000),
					Net:      netmodel.Fixed{D: 0.25},
					Seed:     11,
				}
			},
			cfg:       func() Config { return Config{FW: 3, MaxIter: 18} },
			threshold: 0,
		},
		{
			// Graceful degradation: a transient spike on one link forces
			// deadline expiries, overruns and reconciliations.
			name: "degrade",
			cc: func() cluster.Config {
				return cluster.Config{
					Machines: cluster.UniformMachines(3, 1000),
					Net: netmodel.TransientSpike{
						Inner: netmodel.Fixed{D: 0.05},
						Src:   0, Dst: 1,
						From: 0.5, Until: 2.0, Extra: 4,
					},
					Seed: 3,
				}
			},
			cfg:       func() Config { return Config{FW: 2, MaxIter: 20, Deadline: 0.3} },
			threshold: 0.01,
		},
		{
			// Crash/restart recovery: checkpoints (whose encoded byte counts
			// land in the journal), a restore, rejoin service and catch-up.
			name: "crash",
			cc: func() cluster.Config {
				return cluster.Config{
					Machines:     cluster.UniformMachines(4, 1000),
					Net:          netmodel.Fixed{D: 0.02},
					Reliable:     true,
					RetryTimeout: 0.5,
					Seed:         19,
					Crashes:      faults.CrashSchedule{{Proc: 2, At: 8, Downtime: 2}},
				}
			},
			cfg: func() Config {
				return Config{
					FW:              1,
					MaxIter:         60,
					Deadline:        0.3,
					CheckpointEvery: 5,
					CheckpointStore: checkpoint.NewMemStore(),
					CheckpointOps:   50,
				}
			},
			threshold: 0.02,
		},
	}
}

// goldenJournal runs one golden case (optionally transforming its Config)
// and returns the serialized journal.
func goldenJournal(t *testing.T, tc goldenCase, mutate func(*Config)) []byte {
	t.Helper()
	jr := obs.NewJournal()
	cc := tc.cc()
	cfg := tc.cfg()
	if mutate != nil {
		mutate(&cfg)
	}
	cc.Journal = jr
	cfg.Journal = jr
	runCoupled(t, cc, cfg, tc.threshold)
	var b bytes.Buffer
	if err := jr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestGoldenJournals(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			jr := obs.NewJournal()
			cc := tc.cc()
			cfg := tc.cfg()
			cc.Journal = jr
			cfg.Journal = jr
			runCoupled(t, cc, cfg, tc.threshold)
			var b bytes.Buffer
			if err := jr.WriteJSONL(&b); err != nil {
				t.Fatal(err)
			}
			if b.Len() == 0 {
				t.Fatal("empty journal")
			}
			path := filepath.Join("testdata", "journal_"+tc.name+".jsonl")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update-golden): %v", err)
			}
			if !bytes.Equal(b.Bytes(), want) {
				t.Errorf("journal diverged from golden fixture %s: got %d bytes, want %d; "+
					"the refactored engine is not byte-identical to the seeded baseline",
					path, b.Len(), len(want))
				diffAt := 0
				g, w := b.Bytes(), want
				for diffAt < len(g) && diffAt < len(w) && g[diffAt] == w[diffAt] {
					diffAt++
				}
				lo := diffAt - 120
				if lo < 0 {
					lo = 0
				}
				hiG, hiW := diffAt+120, diffAt+120
				if hiG > len(g) {
					hiG = len(g)
				}
				if hiW > len(w) {
					hiW = len(w)
				}
				t.Logf("first divergence at byte %d\n got: …%s…\nwant: …%s…", diffAt, g[lo:hiG], w[lo:hiW])
			}
		})
	}
}

// TestDegenerateGraphGolden pins the DepGraph refactor's central contract:
// an explicitly configured complete graph is the degenerate one-stage case
// of the classical engine. Every seeded golden scenario re-run with
// Config.Graph = CompleteGraph(P) must produce a journal byte-identical to
// the committed fixture — the same fixture that pins the pre-refactor
// engine — so fixed-neighbor apps run unmodified through the DepGraph path.
func TestDegenerateGraphGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := goldenJournal(t, tc, func(cfg *Config) {
				cfg.Graph = CompleteGraph(len(tc.cc().Machines))
			})
			path := filepath.Join("testdata", "journal_"+tc.name+".jsonl")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run TestGoldenJournals with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("explicit CompleteGraph run diverged from fixture %s: got %d bytes, want %d",
					path, len(got), len(want))
			}
		})
	}
}
