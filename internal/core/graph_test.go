package core

import (
	"math"
	"reflect"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/netmodel"
)

func TestDepGraphConstruction(t *testing.T) {
	g, err := NewDepGraph(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 1}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", g.Nodes())
	}
	if want := []int{0, 3}; !reflect.DeepEqual(g.In(1), want) {
		t.Errorf("In(1) = %v, want %v (sorted, duplicate edge collapsed)", g.In(1), want)
	}
	if want := []int{1}; !reflect.DeepEqual(g.Out(0), want) {
		t.Errorf("Out(0) = %v, want %v", g.Out(0), want)
	}
	if !g.HasEdge(2, 3) || g.HasEdge(3, 2) || g.HasEdge(-1, 0) || g.HasEdge(0, 9) {
		t.Error("HasEdge membership/bounds wrong")
	}
	if want := []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 1}}; !reflect.DeepEqual(g.Edges(), want) {
		t.Errorf("Edges() = %v, want %v", g.Edges(), want)
	}

	if _, err := NewDepGraph(2, []Edge{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewDepGraph(2, []Edge{{0, 2}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewDepGraph(0, nil); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestCompleteAndChainGraphs(t *testing.T) {
	c := CompleteGraph(3)
	for j := 0; j < 3; j++ {
		if len(c.In(j)) != 2 || len(c.Out(j)) != 2 {
			t.Fatalf("CompleteGraph node %d: in=%v out=%v", j, c.In(j), c.Out(j))
		}
	}
	ch := ChainGraph(4)
	if !reflect.DeepEqual(ch.Edges(), []Edge{{0, 1}, {1, 2}, {2, 3}}) {
		t.Fatalf("ChainGraph(4).Edges() = %v", ch.Edges())
	}
	if len(ch.In(0)) != 0 || len(ch.Out(3)) != 0 {
		t.Error("chain endpoints should have no in-edge / out-edge")
	}
}

// graphTestApp is a minimal chain-stage app: rank 0 emits a linear ramp,
// every later rank echoes its upstream input plus a constant.
type graphTestApp struct {
	rank int
	out  []float64
	g    *DepGraph
}

func (a *graphTestApp) InitLocal() []float64 { return []float64{0} }

func (a *graphTestApp) Compute(view [][]float64, t int) []float64 {
	if a.rank == 0 {
		a.out[0] = float64(t + 1)
	} else {
		a.out[0] = view[a.rank-1][0] + 1
	}
	return a.out
}

// The source is the slow stage (it paces the pipeline); downstream stages
// are cheap, so they catch up to within one network delay of the source and
// must speculate on its next output to keep busy.
func (a *graphTestApp) ComputeOps() float64 {
	if a.rank == 0 {
		return 50
	}
	return 10
}

func (a *graphTestApp) Check(peer int, predicted, actual, local []float64, t int) CheckResult {
	return RelErrCheck(0, 1, predicted, actual)
}

func (a *graphTestApp) RepairOps(r CheckResult) float64 { return 10 }

func (a *graphTestApp) Graph(p int) *DepGraph { return a.g }

// TestChainGraphRun runs a 3-node chain end to end on the simulated cluster:
// each stage's final value must match the serial reference exactly (FW=1
// with a zero tolerance repairs every imperfect prediction before it is
// broadcast), and the source — which has no in-edges — must never speculate.
func TestChainGraphRun(t *testing.T) {
	const P, iters = 3, 20
	cc := cluster.Config{
		Machines: cluster.UniformMachines(P, 1000),
		Net:      netmodel.Fixed{D: 0.2},
		Seed:     5,
	}
	results, err := RunCluster(cc, Config{FW: 1, MaxIter: iters}, func(p *cluster.Proc) App {
		return &graphTestApp{rank: p.ID(), out: make([]float64, 1), g: ChainGraph(P)}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Serial: stage 0 holds t, stage j holds its upstream's previous value
	// plus one — after enough ticks, stage j's value is iters - j + j = iters
	// only when the chain has fully propagated; compute the reference by
	// lockstep simulation instead of a closed form.
	x := make([]float64, P)
	for tick := 0; tick < iters; tick++ {
		next := make([]float64, P)
		next[0] = float64(tick + 1)
		for j := 1; j < P; j++ {
			next[j] = x[j-1] + 1
		}
		x = next
	}
	for j, r := range results {
		if math.Abs(r.Final[0]-x[j]) > 1e-12 {
			t.Errorf("rank %d final = %v, want serial %v", j, r.Final[0], x[j])
		}
	}
	if results[0].Stats.SpecsMade != 0 {
		t.Errorf("source stage speculated %d times; it has no in-edges", results[0].Stats.SpecsMade)
	}
	if results[1].Stats.SpecsMade == 0 || results[2].Stats.SpecsMade == 0 {
		t.Error("downstream stages never speculated; FW=1 chain should")
	}
}

// TestGraphSizeMismatch: a DepGraph spanning the wrong number of nodes must
// fail loudly at startup, not deadlock mid-run.
func TestGraphSizeMismatch(t *testing.T) {
	cc := cluster.Config{Machines: cluster.UniformMachines(3, 1000), Net: netmodel.Fixed{D: 0.1}}
	_, err := RunCluster(cc, Config{FW: 1, MaxIter: 5, Graph: ChainGraph(4)}, func(p *cluster.Proc) App {
		return &graphTestApp{rank: p.ID(), out: make([]float64, 1)}
	})
	if err == nil {
		t.Fatal("size-mismatched DepGraph accepted")
	}
}

// TestConfigGraphPrecedence: Config.Graph overrides the app's Grapher — the
// run below would diverge from the serial chain if the app's (complete)
// graph won, because stage 1 would read rank 2's payloads too.
func TestConfigGraphPrecedence(t *testing.T) {
	const P, iters = 3, 12
	cc := cluster.Config{
		Machines: cluster.UniformMachines(P, 1000),
		Net:      netmodel.Fixed{D: 0.2},
		Seed:     9,
	}
	results, err := RunCluster(cc, Config{FW: 1, MaxIter: iters, Graph: ChainGraph(P)},
		func(p *cluster.Proc) App {
			// The app itself declares the complete graph; Config wins.
			return &graphTestApp{rank: p.ID(), out: make([]float64, 1), g: CompleteGraph(P)}
		})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Stats.SpecsMade != 0 {
		t.Errorf("source speculated %d times: Config.Graph did not take precedence", results[0].Stats.SpecsMade)
	}
}
