package core

import (
	"bytes"
	"testing"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
)

func reliableCluster(p int) cluster.Config {
	return cluster.Config{
		Machines:     cluster.UniformMachines(p, 1000),
		Net:          netmodel.Fixed{D: 0.02},
		Reliable:     true,
		RetryTimeout: 0.5,
	}
}

func recoveryConfig(store checkpoint.Store) Config {
	return Config{
		FW:              1,
		MaxIter:         60,
		Deadline:        0.3,
		CheckpointEvery: 5,
		CheckpointStore: store,
		CheckpointOps:   50,
	}
}

func TestCrashRecoveryConvergesToBaseline(t *testing.T) {
	const P = 4
	// Fault-free baseline (same engine config, no crash schedule).
	base := runCoupled(t, reliableCluster(P), recoveryConfig(checkpoint.NewMemStore()), 0.02)
	want := finals(base)
	T := TotalTime(base)

	jr := obs.NewJournal()
	cc := reliableCluster(P)
	cc.Journal = jr
	cc.Crashes = faults.CrashSchedule{
		{Proc: 1, At: 0.25 * T, Downtime: 0.06 * T},
		{Proc: 3, At: 0.55 * T, Downtime: 0.06 * T},
	}
	cfg := recoveryConfig(checkpoint.NewMemStore())
	cfg.Journal = jr
	results := runCoupled(t, cc, cfg, 0.02)

	if d := MaxAbsErr(finals(results), want); d > 0.02 {
		t.Errorf("crashed run diverged from baseline: max abs err %g", d)
	}
	agg := Aggregate(results)
	if agg.Crashes != 2 {
		t.Errorf("Crashes = %d, want 2", agg.Crashes)
	}
	if agg.Restores != 2 {
		t.Errorf("Restores = %d, want 2", agg.Restores)
	}
	if agg.Checkpoints == 0 {
		t.Error("no checkpoints taken")
	}
	if agg.DowntimeSec <= 0 {
		t.Error("no downtime accounted")
	}
	if jr.Count(obs.EvRestore) != 2 {
		t.Errorf("restore events = %d, want 2", jr.Count(obs.EvRestore))
	}
	if jr.Count(obs.EvRejoin) == 0 {
		t.Error("no rejoin requests served")
	}
	if jr.Count(obs.EvCatchup) == 0 {
		t.Error("no catch-up completion recorded")
	}
	if agg.CatchupIters == 0 {
		t.Error("no catch-up iterations counted")
	}
}

func TestCrashRecoveryWithoutDeadlineStillCompletes(t *testing.T) {
	// Without graceful degradation the survivors simply block while the peer
	// is down; the rejoin/refill retry path must still unblock everyone.
	const P = 3
	base := runCoupled(t, reliableCluster(P), recoveryConfig(checkpoint.NewMemStore()), 0.02)
	T := TotalTime(base)

	cc := reliableCluster(P)
	cc.Crashes = faults.CrashSchedule{{Proc: 0, At: 0.3 * T, Downtime: 0.05 * T}}
	cfg := recoveryConfig(checkpoint.NewMemStore())
	cfg.Deadline = 0 // no bridging: block-and-wait survivors
	results := runCoupled(t, cc, cfg, 0.02)
	if d := MaxAbsErr(finals(results), finals(base)); d > 0.02 {
		t.Errorf("blocking crashed run diverged: max abs err %g", d)
	}
	if Aggregate(results).Restores != 1 {
		t.Errorf("Restores = %d, want 1", Aggregate(results).Restores)
	}
}

func TestCheckpointsByteIdenticalAcrossSeededRuns(t *testing.T) {
	// Determinism end to end: the same seeded simulation writes byte-identical
	// final checkpoints on every processor across two independent runs.
	const P = 4
	run := func() *checkpoint.MemStore {
		st := checkpoint.NewMemStore()
		cc := reliableCluster(P)
		cc.Crashes = faults.CrashSchedule{{Proc: 2, At: 8, Downtime: 2}}
		runCoupled(t, cc, recoveryConfig(st), 0.02)
		return st
	}
	a, b := run(), run()
	for p := 0; p < P; p++ {
		ba, oka := a.Load(p)
		bb, okb := b.Load(p)
		if oka != okb {
			t.Fatalf("proc %d: checkpoint presence differs", p)
		}
		if !bytes.Equal(ba, bb) {
			t.Errorf("proc %d: checkpoints differ across identical seeded runs", p)
		}
		if oka {
			if s, err := checkpoint.Decode(ba); err != nil || s.Proc != p {
				t.Errorf("proc %d: stored checkpoint invalid: %v", p, err)
			}
		}
	}
}
