package core

import (
	"testing"

	"specomp/internal/cluster"
)

func runAsyncCoupled(t *testing.T, cc cluster.Config, iters int) []Result {
	t.Helper()
	results, err := RunAsyncCluster(cc, AsyncConfig{MaxIter: iters}, func(p *cluster.Proc) App {
		return &coupledMap{p: p, r: 2.8, eps: 0.3, threshold: 0.01, computeOp: 500, repairOp: 250}
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestAsyncNeverWaitsAfterStartup(t *testing.T) {
	const iters = 30
	results := runAsyncCoupled(t, uniformCluster(3, 2.0), iters)
	for _, r := range results {
		// Communication wait is bounded by the startup exchange, not
		// proportional to the iteration count.
		if r.Stats.CommTime > 3*2.0 {
			t.Errorf("proc %d waited %.2fs — async should not block per iteration", r.Proc, r.Stats.CommTime)
		}
	}
}

func TestAsyncFasterThanBlocking(t *testing.T) {
	const iters = 30
	async := runAsyncCoupled(t, uniformCluster(3, 2.0), iters)
	blocking := runCoupled(t, uniformCluster(3, 2.0), Config{FW: 0, MaxIter: iters}, 0.01)
	if TotalTime(async) >= TotalTime(blocking) {
		t.Errorf("async %.2f not faster than blocking %.2f", TotalTime(async), TotalTime(blocking))
	}
}

func TestAsyncContractingMapStillConverges(t *testing.T) {
	// r=2.8 logistic coupled map converges to a fixed point; asynchronous
	// iteration with stale data must still land on it.
	const iters = 120
	async := runAsyncCoupled(t, uniformCluster(4, 1.5), iters)
	want := 1 - 1/2.8 // logistic fixed point (eps-mixing preserves it)
	for _, r := range async {
		if d := r.Final[0] - want; d > 1e-6 || d < -1e-6 {
			t.Errorf("proc %d: final %v, want %v", r.Proc, r.Final[0], want)
		}
	}
}

func TestAsyncValidation(t *testing.T) {
	_, err := RunAsyncCluster(uniformCluster(2, 0.1), AsyncConfig{MaxIter: 0},
		func(p *cluster.Proc) App { return &driftApp{p: p} })
	if err == nil {
		t.Error("MaxIter=0 should error")
	}
}

func TestAsyncSingleProcessor(t *testing.T) {
	results := runAsyncCoupled(t, uniformCluster(1, 1.0), 10)
	if len(results) != 1 || results[0].Stats.CommTime != 0 {
		t.Errorf("single-proc async misbehaved: %+v", results)
	}
}
