package core

// Engine micro-benchmarks and the memory/allocation invariants of the
// pooled value plane. The phantom transport synthesizes peer messages on
// demand from pre-allocated rotating buffers following exactly linear
// trajectories, so predict.Linear extrapolates them perfectly and the
// engine stays on the clean steady-state speculation path — what
// BenchmarkEngineIteration measures is pure engine bookkeeping (assemble,
// speculate, validate, retire) with zero repairs and, after warm-up, zero
// allocations per iteration.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
)

// peerValue is the linear per-element trajectory each phantom peer follows.
// Linear in the iteration, so a linear predictor's extrapolation error is
// at rounding level — far below any check threshold.
func peerValue(peer, iter, j int) float64 {
	return float64(peer+1) + 0.001*float64(iter) + 0.0001*float64(j)
}

// phantom is a single-processor Transport that impersonates np-1 peers:
// TryRecv never has anything (the engine always speculates), and Recv
// synthesizes the next outstanding peer message on demand, round-robin
// across peers, one iteration depth at a time. Messages are backed by a
// fixed rotation of buffers per peer, so Recv never allocates.
type phantom struct {
	id, np int
	depth  int   // iteration level currently being delivered
	cursor int   // next peer (index into peers) to deliver at this depth
	peers  []int // peer ids, excluding self
	bufs   [][][]float64
	rot    []int
}

func newPhantom(np, n int) *phantom {
	ph := &phantom{id: 0, np: np}
	for k := 1; k < np; k++ {
		ph.peers = append(ph.peers, k)
		rot := make([][]float64, 16)
		for i := range rot {
			rot[i] = make([]float64, n)
		}
		ph.bufs = append(ph.bufs, rot)
	}
	ph.rot = make([]int, np-1)
	return ph
}

func (ph *phantom) ID() int                              { return ph.id }
func (ph *phantom) P() int                               { return ph.np }
func (ph *phantom) Now() float64                         { return 0 }
func (ph *phantom) Compute(ops float64, p cluster.Phase) {}
func (ph *phantom) Send(dst, tag, iter int, d []float64) {}
func (ph *phantom) PhaseTime(p cluster.Phase) float64    { return 0 }

func (ph *phantom) TryRecv(src, tag int) (cluster.Message, bool) {
	return cluster.Message{}, false
}

func (ph *phantom) Recv(src, tag int) cluster.Message {
	i := ph.cursor
	peer := ph.peers[i]
	buf := ph.bufs[i][ph.rot[i]]
	ph.rot[i] = (ph.rot[i] + 1) % len(ph.bufs[i])
	for j := range buf {
		buf[j] = peerValue(peer, ph.depth, j)
	}
	m := cluster.Message{Src: peer, Dst: ph.id, Tag: DataTag, Iter: ph.depth, Data: buf}
	ph.cursor++
	if ph.cursor == len(ph.peers) {
		ph.cursor, ph.depth = 0, ph.depth+1
	}
	return m
}

// benchApp is an allocation-free App: Compute averages the view into a
// reused output buffer (the plane copies it, so reuse is safe).
type benchApp struct{ out []float64 }

func newBenchApp(n int) *benchApp { return &benchApp{out: make([]float64, n)} }

func (a *benchApp) InitLocal() []float64 {
	init := make([]float64, len(a.out))
	for j := range init {
		init[j] = peerValue(0, 0, j)
	}
	return init
}

func (a *benchApp) Compute(view [][]float64, t int) []float64 {
	out := a.out
	inv := 1.0 / float64(len(view))
	for j := range out {
		s := 0.0
		for _, row := range view {
			s += row[j]
		}
		out[j] = s * inv
	}
	return out
}

func (a *benchApp) ComputeOps() float64 { return 1 }

func (a *benchApp) Check(peer int, pred, act, local []float64, t int) CheckResult {
	return RelErrCheck(0.05, 1, pred, act)
}

func (a *benchApp) RepairOps(r CheckResult) float64 { return 1 }

// BenchmarkEngineIteration measures one engine iteration (broadcast,
// assemble+speculate, compute, validate, retire) on the phantom transport.
// allocs/op must be 0 at FW>0: the steady-state speculation path draws
// every buffer from the plane's pools.
func BenchmarkEngineIteration(b *testing.B) {
	const n = 64
	for _, fw := range []int{0, 2, 4} {
		for _, np := range []int{4, 16} {
			b.Run(fmt.Sprintf("FW%d/P%d", fw, np), func(b *testing.B) {
				ph := newPhantom(np, n)
				app := newBenchApp(n)
				b.ReportAllocs()
				b.ResetTimer()
				res, err := Run(ph, app, Config{FW: fw, MaxIter: b.N})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Repairs != 0 {
					b.Fatalf("benchmark left the clean path: %d repairs", res.Stats.Repairs)
				}
			})
		}
	}
}

// engineMallocs runs a phantom engine for iters iterations and returns the
// process-wide malloc count it induced.
func engineMallocs(t *testing.T, iters int) uint64 {
	t.Helper()
	ph := newPhantom(4, 64)
	app := newBenchApp(64)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if _, err := Run(ph, app, Config{FW: 2, MaxIter: iters}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	return m1.Mallocs - m0.Mallocs
}

// TestSteadyStateZeroAlloc proves the speculation hot path allocates
// nothing: two runs differing only in iteration count malloc the identical
// total (every allocation belongs to engine construction and warm-up, none
// to the per-iteration path). GC is disabled so sync.Pool contents survive.
func TestSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; exact malloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	ok := false
	var short, long uint64
	for try := 0; try < 3 && !ok; try++ {
		short = engineMallocs(t, 200)
		long = engineMallocs(t, 2000)
		ok = short == long
	}
	if !ok {
		t.Errorf("steady state allocates: %d mallocs over 200 iters vs %d over 2000 (want equal)",
			short, long)
	}
}

// TestMemoryBoundUnderCrashRecovery asserts the plane's retention invariant
// on a long run with crashes, restores, rejoins and catch-up: after every
// retire, the number of snapshots held per peer (and of per-iteration
// own/view/prediction rows) stays within the fixed lane capacities — memory
// use is f(FW, BW), independent of MaxIter.
func TestMemoryBoundUnderCrashRecovery(t *testing.T) {
	worstPeer, worstIter := 0, 0
	testRetireHook = func(e *engine, _ int) {
		for k := range e.plane.peers {
			l := &e.plane.peers[k]
			if got := l.retained(); got > l.ring.Cap() {
				t.Fatalf("in-edge %d retains %d snapshots, cap %d", k, got, l.ring.Cap())
			} else if got > worstPeer {
				worstPeer = got
			}
		}
		for _, l := range []*lane[[][]float64]{&e.plane.views, &e.plane.preds} {
			if got := l.retained(); got > l.ring.Cap() {
				t.Fatalf("iteration lane retains %d rows, cap %d", got, l.ring.Cap())
			} else if got > worstIter {
				worstIter = got
			}
		}
		if got := e.plane.own.retained(); got > e.plane.own.ring.Cap() {
			t.Fatalf("own lane retains %d entries, cap %d", got, e.plane.own.ring.Cap())
		}
	}
	defer func() { testRetireHook = nil }()

	const P = 4
	cc := cluster.Config{
		Machines:     cluster.UniformMachines(P, 1000),
		Net:          netmodel.Fixed{D: 0.02},
		Reliable:     true,
		RetryTimeout: 0.5,
		Crashes: faults.CrashSchedule{
			{Proc: 1, At: 8, Downtime: 3},
			{Proc: 2, At: 25, Downtime: 3},
		},
	}
	cfg := Config{
		FW:              2,
		MaxIter:         300,
		Deadline:        0.3,
		CheckpointEvery: 5,
		CheckpointStore: checkpoint.NewMemStore(),
		CheckpointOps:   50,
	}
	results := runCoupled(t, cc, cfg, 0.02)
	if Aggregate(results).Restores == 0 {
		t.Fatal("scenario exercised no restores")
	}
	if worstPeer == 0 || worstIter == 0 {
		t.Fatal("retire hook observed nothing")
	}
	t.Logf("worst per-peer retention %d, worst iteration-lane retention %d", worstPeer, worstIter)
}
