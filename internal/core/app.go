package core

// The application contract: what a synchronous iterative algorithm must
// provide to run under the speculative engine, plus the optional extensions
// (publishing, neighbor restriction, incremental correction, convergence
// stopping, domain-specific speculation) an app may implement to specialize
// the default policies.

// CheckResult reports the outcome of validating one speculated message.
type CheckResult struct {
	Bad   int     // check units out of tolerance
	Total int     // check units examined
	Ops   float64 // operation cost of performing the check (charged to the clock)
}

// App is one processor's view of a synchronous iterative application.
type App interface {
	// InitLocal returns the processor's initial partition values X_j(0).
	InitLocal() []float64
	// Compute evaluates X_j(t+1) from the global view of iteration t.
	// view[k] holds partition k's values (actual or speculated);
	// view[j] is the local partition. Compute must not retain view.
	Compute(view [][]float64, t int) []float64
	// ComputeOps is the operation count of one Compute call
	// (the paper's N_i·f_comp).
	ComputeOps() float64
	// Check compares a speculated snapshot of peer k's partition against the
	// actual one, judging whether computations based on the prediction are
	// acceptable (the paper's error > threshold test). local is the local
	// partition at iteration t, needed by error metrics that relate the
	// speculation error to local state (e.g. eq. 11's particle distances).
	Check(peer int, predicted, actual, local []float64, t int) CheckResult
	// RepairOps is the operation cost of repairing the local computation
	// after a failed check (the paper's k·N_i·f_comp recomputation charge,
	// or a cheaper incremental correction).
	RepairOps(r CheckResult) float64
}

// Publisher is an optional App extension: instead of broadcasting the whole
// local partition every iteration, the engine broadcasts Publish(local) —
// e.g. a stencil code publishes only its edge rows. Peers' view entries,
// speculation, and error checking then all operate on the published form,
// which shrinks both message sizes and speculation/checking overhead. The
// local entry view[j] always stays the full partition.
type Publisher interface {
	Publish(local []float64) []float64
}

// Neighbors is an optional App extension restricting the exchange pattern:
// the paper's general model is all-to-all ("each variable can potentially
// be a function of all other variables"), but stencil-style applications
// read only a few peers, and speculating or checking payloads that are
// never read is pure overhead. Needs(k) reports whether this processor
// reads peer k's payload; NeededBy(k) whether peer k reads this
// processor's. Implementations must be mutually consistent across
// processors (j.Needs(k) == k.NeededBy(j)), or receives will deadlock; the
// pattern is static for a run — the engine consults the predicates once at
// startup to build its dependency masks. When an App implements Neighbors,
// unneeded peers get no messages and a nil view entry, and Stopper.Done
// sees nil entries for them too. Neighbors is the pairwise special case of
// the Grapher extension (graph.go), which declares arbitrary task DAGs and
// takes precedence when both are implemented.
type Neighbors interface {
	Needs(peer int) bool
	NeededBy(peer int) bool
}

// Corrector is an optional App extension implementing the paper's
// "correction function": instead of recomputing X_j(t+1) from scratch when
// a speculation fails its check, the app patches the already-computed local
// values incrementally given the prediction that was used and the actual
// message (e.g. N-body subtracts the speculated pair forces and adds the
// actual ones). Correct must return values identical to recomputing with
// the corrected view; the engine still charges RepairOps. The default
// RepairPolicy folds Correct over every failed peer.
type Corrector interface {
	// Correct returns the fixed X_j(t+1). computed is the speculatively
	// computed local result; local is X_j(t); pred and act are peer k's
	// speculated and actual iteration-t payloads.
	Correct(computed, local []float64, peer int, pred, act []float64, t int) []float64
}

// Stopper is an optional App extension for convergence-based termination.
// After iteration t is fully validated, Done is evaluated on the *actual*
// exchanged snapshots of iteration t — every processor holds the identical
// set (each peer's broadcast payload plus its own), so all processors reach
// the same decision deterministically and stop at the same logical
// iteration, without any extra synchronization round.
type Stopper interface {
	// Done reports whether the computation has converged. actualView[k] is
	// processor k's iteration-t broadcast payload (the published form when
	// the app is a Publisher, including the caller's own entry). The slice
	// is reused between calls; Done must not retain it.
	Done(actualView [][]float64, t int) bool
	// DoneOps is the operation cost charged per evaluation.
	DoneOps() float64
}

// Speculator is an optional App extension for domain-specific speculation
// (e.g. the N-body velocity extrapolation of eq. 10). hist holds the actual
// snapshots of the peer's partition, newest first, and is only valid for
// the duration of the call; steps is how many iterations past hist[0] to
// extrapolate. It returns the prediction and the operation cost charged to
// the clock. The default SpecPolicy routes through Speculate when the App
// implements it, falling back to Config.Predictor otherwise.
type Speculator interface {
	Speculate(peer int, hist [][]float64, steps int) (pred []float64, ops float64)
}
