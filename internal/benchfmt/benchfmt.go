// Package benchfmt reads, writes and merges the repo's machine-readable
// benchmark baseline (BENCH_core.json): parsed `go test -bench` output plus
// synthetic series recorded by the soak harness. cmd/benchjson and
// cmd/specsoak are thin shells around it.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark series: a parsed `go test -bench` line or a
// synthetic measurement recorded under the same schema.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the whole baseline document.
type Report struct {
	GOOS       string   `json:"goos,omitempty"`
	GOARCH     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse reads `go test -bench -benchmem` output and returns the report of
// every benchmark line found (environment headers included).
func Parse(r io.Reader) (Report, error) {
	var rep Report
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		res := Result{Pkg: pkg, Name: m[1]}
		res.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	return rep, sc.Err()
}

// Load reads a saved report.
func Load(path string) (Report, error) {
	var rep Report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("benchfmt: decoding %s: %w", path, err)
	}
	return rep, nil
}

// Save writes the report as indented JSON.
func (rep *Report) Save(path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Find returns the series with the given pkg and name.
func (rep *Report) Find(pkg, name string) (Result, bool) {
	for _, r := range rep.Benchmarks {
		if r.Pkg == pkg && r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Merge folds results into the report: a result replaces the existing series
// with its (pkg, name), otherwise it is appended. Series the results do not
// mention are kept, so partial runs (bench-core, the soak) update their own
// slices of the baseline without clobbering each other's.
func (rep *Report) Merge(results ...Result) {
	for _, r := range results {
		replaced := false
		for i := range rep.Benchmarks {
			if rep.Benchmarks[i].Pkg == r.Pkg && rep.Benchmarks[i].Name == r.Name {
				rep.Benchmarks[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
}

// CompareAllocs checks rep against a baseline report and returns one line
// per series whose allocs/op exceeds the baseline's — the regression class
// the wire-plane work pins (timing is machine-dependent; allocation counts
// are not). Series absent from the baseline pass.
func (rep *Report) CompareAllocs(base *Report) []string {
	var regressions []string
	for _, r := range rep.Benchmarks {
		b, ok := base.Find(r.Pkg, r.Name)
		if ok && r.AllocsPerOp > b.AllocsPerOp {
			regressions = append(regressions,
				fmt.Sprintf("%s %s: %d allocs/op, baseline %d", r.Pkg, r.Name, r.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return regressions
}
