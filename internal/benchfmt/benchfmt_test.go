package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: specomp/internal/distnet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFrameEncode       	 2959669	       387.7 ns/op	5439.37 MB/s	       0 B/op	       0 allocs/op
BenchmarkLoopbackRoundTrip 	  111760	      9847 ns/op	       0 B/op	       0 allocs/op
BenchmarkLinkThroughput/frames         	 1211701	      1093 ns/op	 117.13 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	specomp/internal/distnet	10.049s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU == "" {
		t.Errorf("environment header lost: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	enc, ok := rep.Find("specomp/internal/distnet", "BenchmarkFrameEncode")
	if !ok {
		t.Fatal("BenchmarkFrameEncode not found")
	}
	if enc.Iters != 2959669 || enc.NsPerOp != 387.7 || enc.AllocsPerOp != 0 {
		t.Errorf("BenchmarkFrameEncode parsed wrong: %+v", enc)
	}
	if _, ok := rep.Find("specomp/internal/distnet", "BenchmarkLinkThroughput/frames"); !ok {
		t.Error("sub-benchmark name not found")
	}
}

func TestMergeReplacesAndAppends(t *testing.T) {
	rep := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 2},
		{Pkg: "p", Name: "BenchmarkB", NsPerOp: 200},
	}}
	rep.Merge(
		Result{Pkg: "p", Name: "BenchmarkA", NsPerOp: 90, AllocsPerOp: 1},
		Result{Pkg: "q", Name: "SoakMsgRate/P64", NsPerOp: 5},
	)
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d series, want 3", len(rep.Benchmarks))
	}
	a, _ := rep.Find("p", "BenchmarkA")
	if a.NsPerOp != 90 || a.AllocsPerOp != 1 {
		t.Errorf("BenchmarkA not replaced: %+v", a)
	}
	if b, _ := rep.Find("p", "BenchmarkB"); b.NsPerOp != 200 {
		t.Errorf("BenchmarkB clobbered: %+v", b)
	}
	if _, ok := rep.Find("q", "SoakMsgRate/P64"); !ok {
		t.Error("new series not appended")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != len(rep.Benchmarks) || got.CPU != rep.CPU {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rep)
	}
}

func TestCompareAllocs(t *testing.T) {
	base := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkA", AllocsPerOp: 0},
		{Pkg: "p", Name: "BenchmarkB", AllocsPerOp: 6},
	}}
	cur := Report{Benchmarks: []Result{
		{Pkg: "p", Name: "BenchmarkA", AllocsPerOp: 2},   // regressed
		{Pkg: "p", Name: "BenchmarkB", AllocsPerOp: 3},   // improved
		{Pkg: "p", Name: "BenchmarkNew", AllocsPerOp: 9}, // no baseline: passes
	}}
	regs := cur.CompareAllocs(&base)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") {
		t.Errorf("regressions = %q, want exactly BenchmarkA", regs)
	}
	if regs := base.CompareAllocs(&base); regs != nil {
		t.Errorf("self-comparison flagged %q", regs)
	}
}
