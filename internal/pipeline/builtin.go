package pipeline

// Prebuilt pipelines shared by the example, the ext-dag experiments and the
// distnet "pipeline" app. Construction is deterministic in (shape, seed), so
// separate OS processes build identical graphs from the coordinator's spec.

import (
	"math"
	"math/rand"
)

// ThreeStage builds the canonical 3-stage streaming pipeline:
//
//	source → filter → aggregate
//
// The source emits a seeded mixture of sinusoids — smooth enough that the
// engine's linear predictor tracks it, curved enough that predictions near
// the extremes exceed tolerance and force visible repair cascades. The
// filter applies a contractive exponential moving average of a mildly
// nonlinear map of the source, and the aggregate folds the filtered row
// into four running statistics (mean, rms, max, L1). Contraction makes the
// downstream stages forgiving: tolerance-accepted speculation errors decay
// instead of accumulating, so faulty runs still converge to the serial
// reference.
func ThreeStage(width int, seed int64) *Graph {
	g := New()
	src := g.Add(sourceStage(width, seed))
	flt := g.Add(Stage{
		Name:  "filter",
		Width: width,
		Ops:   float64(4 * width),
		Tol:   5e-3,
		Step: func(t int, self []float64, in [][]float64, out []float64) {
			const beta = 0.4
			for i, x := range in[0] {
				y := x + 0.25*x*x
				out[i] = self[i] + beta*(y-self[i])
			}
		},
	}, src)
	g.Add(aggregateStage(width), flt)
	return g
}

// Chain builds a multi-hop retrieval-style pipeline of `stages` stages:
// a query source followed by mixing hops (each recombining its upstream row
// through a seeded linear blend, contractively) and a final ranking stage
// folding scores into running statistics. stages must be >= 2.
func Chain(stages, width int, seed int64) *Graph {
	if stages < 2 {
		panic("pipeline: Chain needs at least 2 stages")
	}
	rng := rand.New(rand.NewSource(seed + 1))
	g := New()
	prev := g.Add(sourceStage(width, seed))
	for h := 1; h < stages-1; h++ {
		shift := 1 + rng.Intn(width)
		a := 0.5 + 0.3*rng.Float64()
		b := 0.2 + 0.2*rng.Float64()
		beta := 0.3 + 0.3*rng.Float64()
		prev = g.Add(Stage{
			Name:  "hop" + string(rune('0'+h)),
			Width: width,
			Ops:   float64(5 * width),
			Tol:   5e-3,
			Step: func(t int, self []float64, in [][]float64, out []float64) {
				w := len(in[0])
				for i := range out {
					mixed := a*in[0][i] + b*in[0][(i+shift)%w]
					out[i] = self[i] + beta*(mixed-self[i])
				}
			},
		}, prev)
	}
	g.Add(aggregateStage(width), prev)
	return g
}

// sourceStage emits the seeded sinusoid mixture driving every built-in
// pipeline. Element i follows amp·sin(ω·t + φ) + bias with per-element
// coefficients, ω spread so some elements' curvature periodically defeats
// linear extrapolation (repairs) while others track cleanly.
func sourceStage(width int, seed int64) Stage {
	rng := rand.New(rand.NewSource(seed))
	amp := make([]float64, width)
	om := make([]float64, width)
	ph := make([]float64, width)
	bias := make([]float64, width)
	for i := 0; i < width; i++ {
		amp[i] = 0.5 + rng.Float64()
		// One-step linear extrapolation of amp·sin(ω·t) misses by about
		// amp·ω²/2 per tick: with ω up to 0.15 that is ~0.017 — above the
		// stages' 5e-3 default tolerance (periodic repairs near the
		// extremes, which the tests rely on seeing) yet well inside a loose
		// 0.05 tolerance (clean speculation, which the speed demos rely on).
		om[i] = 0.05 + 0.1*rng.Float64()
		ph[i] = 2 * math.Pi * rng.Float64()
		bias[i] = 2 * rng.Float64()
	}
	at := func(t float64, i int) float64 {
		return amp[i]*math.Sin(om[i]*t+ph[i]) + bias[i]
	}
	return Stage{
		Name:  "source",
		Width: width,
		// The source is deliberately the expensive stage: it paces the
		// pipeline, so the cheap downstream stages catch up to within one
		// network delay of it and must speculate on its next row to stay
		// busy — the regime the paper's forward window is for.
		Ops: float64(10 * width),
		Tol: 5e-3,
		Init: func(out []float64) {
			for i := range out {
				out[i] = at(0, i)
			}
		},
		Step: func(t int, self []float64, in [][]float64, out []float64) {
			for i := range out {
				out[i] = at(float64(t+1), i)
			}
		},
	}
}

// aggregateStage folds its upstream row into four running statistics
// (mean, rms, max, L1 mean), each tracked as a contractive moving average.
func aggregateStage(width int) Stage {
	return Stage{
		Name:  "aggregate",
		Width: 4,
		Ops:   float64(4 * width),
		Tol:   1e-2,
		Step: func(t int, self []float64, in [][]float64, out []float64) {
			const beta = 0.5
			var sum, sq, max, l1 float64
			for _, x := range in[0] {
				sum += x
				sq += x * x
				if x > max {
					max = x
				}
				l1 += math.Abs(x)
			}
			w := float64(len(in[0]))
			out[0] = self[0] + beta*(sum/w-self[0])
			out[1] = self[1] + beta*(math.Sqrt(sq/w)-self[1])
			out[2] = self[2] + beta*(max-self[2])
			out[3] = self[3] + beta*(l1/w-self[3])
		},
	}
}

// SetUniformTol overrides every stage's check tolerance — zero turns the
// pipeline into an exactness harness where every imperfect prediction
// repairs, making an FW=1 run bit-identical to Serial.
func (g *Graph) SetUniformTol(tol float64) *Graph {
	for i := range g.stages {
		g.stages[i].Tol = tol
	}
	return g
}
