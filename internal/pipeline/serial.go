package pipeline

// Serial is the pipeline's reference semantics: plain lockstep evaluation
// with no speculation, no transport and no faults. Every distributed run —
// simulated, realtime or distnet — is validated against it: exactly at FW=1
// with zero tolerances, within the stages' tolerance envelope otherwise.

// Serial runs the DAG for `ticks` ticks and returns each stage's final row,
// stage-indexed. It allocates fresh rows (callers keep them).
func (g *Graph) Serial(ticks int) [][]float64 {
	n := len(g.stages)
	cur := make([][]float64, n)
	next := make([][]float64, n)
	for s, st := range g.stages {
		cur[s] = make([]float64, st.Width)
		next[s] = make([]float64, st.Width)
		if st.Init != nil {
			st.Init(cur[s])
		}
	}
	in := make([][]float64, 0, 4)
	for t := 0; t < ticks; t++ {
		for s, st := range g.stages {
			in = in[:0]
			for _, u := range g.up[s] {
				in = append(in, cur[u])
			}
			st.Step(t, cur[s], in, next[s])
		}
		cur, next = next, cur
	}
	return cur
}
