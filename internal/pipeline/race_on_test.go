//go:build race

package pipeline

// raceEnabled reports that the race detector is active; its instrumentation
// allocates, so the exact-malloc-count assertions skip themselves.
const raceEnabled = true
