package pipeline

// BenchmarkPipelineStage measures one mid-pipeline stage's engine iteration
// — speculate on the upstream row, compute, validate, retire — on a phantom
// transport impersonating the upstream stage with exactly linear rows, so
// the linear predictor is exact and the run stays on the clean steady-state
// path. allocs/op must be 0: the stage adapter reuses its output and
// input-gather buffers, and everything else comes from the engine's pools.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
)

func upstreamValue(iter, j int) float64 {
	return 1 + 0.001*float64(iter) + 0.0001*float64(j)
}

// benchGraph is a 3-stage chain whose middle stage is benchmarked in
// isolation: the source row is synthesized by the phantom, the sink only
// consumes (its rank never runs here).
func benchGraph(width int) *Graph {
	g := New()
	src := g.Add(Stage{
		Name: "source", Width: width, Tol: 0.05,
		Step: func(t int, self []float64, in [][]float64, out []float64) {
			for j := range out {
				out[j] = upstreamValue(t+1, j)
			}
		},
	})
	mid := g.Add(Stage{
		Name: "mix", Width: width, Tol: 0.05,
		Step: func(t int, self []float64, in [][]float64, out []float64) {
			const beta = 0.4
			for j := range out {
				out[j] = self[j] + beta*(in[0][j]-self[j])
			}
		},
	}, src)
	g.Add(Stage{
		Name: "sink", Width: width, Tol: 0.05,
		Step: func(t int, self []float64, in [][]float64, out []float64) {
			copy(out, in[0])
		},
	}, mid)
	return g
}

// stagePhantom is a single-processor Transport running rank 1 of the bench
// chain: TryRecv never has anything (the stage always speculates), Recv
// synthesizes the next outstanding upstream row from a fixed buffer
// rotation, so delivery never allocates.
type stagePhantom struct {
	depth int
	bufs  [][]float64
	rot   int
}

func newStagePhantom(width int) *stagePhantom {
	ph := &stagePhantom{bufs: make([][]float64, 16)}
	for i := range ph.bufs {
		ph.bufs[i] = make([]float64, width)
	}
	return ph
}

func (ph *stagePhantom) ID() int                              { return 1 }
func (ph *stagePhantom) P() int                               { return 3 }
func (ph *stagePhantom) Now() float64                         { return 0 }
func (ph *stagePhantom) Compute(ops float64, p cluster.Phase) {}
func (ph *stagePhantom) Send(dst, tag, iter int, d []float64) {}
func (ph *stagePhantom) PhaseTime(p cluster.Phase) float64    { return 0 }

func (ph *stagePhantom) TryRecv(src, tag int) (cluster.Message, bool) {
	return cluster.Message{}, false
}

func (ph *stagePhantom) Recv(src, tag int) cluster.Message {
	buf := ph.bufs[ph.rot]
	ph.rot = (ph.rot + 1) % len(ph.bufs)
	for j := range buf {
		buf[j] = upstreamValue(ph.depth, j)
	}
	m := cluster.Message{Src: 0, Dst: 1, Tag: core.DataTag, Iter: ph.depth, Data: buf}
	ph.depth++
	return m
}

func BenchmarkPipelineStage(b *testing.B) {
	const width = 64
	for _, fw := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("FW%d/W%d", fw, width), func(b *testing.B) {
			g := benchGraph(width)
			ph := newStagePhantom(width)
			app := g.App(1)
			b.ReportAllocs()
			b.ResetTimer()
			res, err := core.Run(ph, app, core.Config{FW: fw, MaxIter: b.N})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.Repairs != 0 {
				b.Fatalf("benchmark left the clean path: %d repairs", res.Stats.Repairs)
			}
		})
	}
}

// TestPipelineStageSteadyStateZeroAlloc proves the stage hot path allocates
// nothing: two runs differing only in tick count malloc the identical
// total.
func TestPipelineStageSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; exact malloc counts are meaningless")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	mallocs := func(iters int) uint64 {
		g := benchGraph(64)
		ph := newStagePhantom(64)
		app := g.App(1)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, err := core.Run(ph, app, core.Config{FW: 2, MaxIter: iters}); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&m1)
		return m1.Mallocs - m0.Mallocs
	}
	ok := false
	var short, long uint64
	for try := 0; try < 3 && !ok; try++ {
		short = mallocs(200)
		long = mallocs(2000)
		ok = short == long
	}
	if !ok {
		t.Errorf("steady state allocates: %d mallocs over 200 ticks vs %d over 2000 (want equal)",
			short, long)
	}
}
