// Package pipeline builds multi-stage streaming pipelines on the engine's
// DepGraph abstraction: each stage is one processor of a speculative run,
// reading the previous tick's outputs of its upstream stages. Downstream
// stages speculate on upstream outputs through the engine's ordinary
// predictors — stage N+1 runs on *predicted* stage-N output inside the
// forward window, checks the prediction when the actual broadcast lands,
// and repairs on mismatch, cascading the recomputation through any ticks
// already computed on the stale value. Checkpoint/restore works unchanged:
// a stage is just an App, so per-stage state snapshots through
// internal/checkpoint and a mid-pipeline crash is bridged by the downstream
// stages speculating deeper (MaxCrashOverrun) until the stage rejoins.
//
// Tick semantics map one-to-one onto engine iterations: at tick t every
// stage holds an output row; tick t+1 is computed from the stage's own row
// and its upstream rows at tick t. A pipeline therefore advances like a
// systolic array — data entered at the source reaches stage k after k
// ticks — and the serial reference (Serial) is plain lockstep evaluation.
package pipeline

import (
	"fmt"

	"specomp/internal/core"
)

// Stage is one node of a streaming task DAG.
type Stage struct {
	// Name labels the stage in experiments and traces.
	Name string
	// Width is the number of elements in the stage's output row.
	Width int
	// Init fills the stage's tick-0 output; nil leaves zeros.
	Init func(out []float64)
	// Step computes the tick-(t+1) output. self is the stage's own tick-t
	// row; in holds the upstream stages' tick-t rows in the order their ids
	// were passed to Add; out is the (reused) output buffer, len Width.
	// self and in alias engine-owned buffers and must not be retained or
	// mutated. Step must be deterministic in (t, self, in) — repairs
	// recompute it and expect identical results.
	Step func(t int, self []float64, in [][]float64, out []float64)
	// Ops is the modelled operation cost of one Step on the simulated
	// cluster (defaults to Width).
	Ops float64
	// Tol is the per-element relative tolerance when validating speculated
	// inputs *from* this stage (the edge source's contract): a prediction
	// element p of actual a fails when |p-a| > Tol·(1+|a|). Zero demands
	// exactness, repairing every imperfect prediction.
	Tol float64
	// CheckOps is the per-element operation cost of one such check
	// (defaults to 1).
	CheckOps float64
}

// Graph is a task DAG of stages under construction. Stages are added in
// topological order (upstream ids must already exist), which makes the DAG
// acyclic by construction; cyclic dependency structures are expressed
// directly through core.DepGraph instead (see internal/apps/stencilreduce).
type Graph struct {
	stages []Stage
	up     [][]int
}

// New returns an empty pipeline graph.
func New() *Graph { return &Graph{} }

// Add appends a stage reading the listed upstream stages' outputs and
// returns its id. Upstream ids must have been returned by earlier Add
// calls. Panics on malformed wiring — pipeline construction is static
// configuration, not data-dependent.
func (g *Graph) Add(s Stage, upstream ...int) int {
	id := len(g.stages)
	if s.Width <= 0 {
		panic(fmt.Sprintf("pipeline: stage %q (id %d) needs Width >= 1", s.Name, id))
	}
	for _, u := range upstream {
		if u < 0 || u >= id {
			panic(fmt.Sprintf("pipeline: stage %q (id %d) upstream %d not yet added", s.Name, id, u))
		}
	}
	if s.Ops <= 0 {
		s.Ops = float64(s.Width)
	}
	if s.CheckOps <= 0 {
		s.CheckOps = 1
	}
	g.stages = append(g.stages, s)
	g.up = append(g.up, append([]int(nil), upstream...))
	return id
}

// Stages returns the number of stages.
func (g *Graph) Stages() int { return len(g.stages) }

// Stage returns stage id's definition.
func (g *Graph) Stage(id int) Stage { return g.stages[id] }

// Upstream returns stage id's upstream stage ids. Callers must not mutate.
func (g *Graph) Upstream(id int) []int { return g.up[id] }

// DepGraph projects the stage DAG onto processor ranks under place
// (place[stage] = rank, a permutation; nil means identity). The result is
// what the engine consumes: rank place[s] reads rank place[u] for every
// upstream u of s.
func (g *Graph) DepGraph(place []int) (*core.DepGraph, error) {
	place, err := g.checkPlacement(place)
	if err != nil {
		return nil, err
	}
	var edges []core.Edge
	for s := range g.stages {
		for _, u := range g.up[s] {
			edges = append(edges, core.Edge{From: place[u], To: place[s]})
		}
	}
	return core.NewDepGraph(len(g.stages), edges)
}

// checkPlacement validates place as a stage→rank permutation, defaulting
// nil to the identity.
func (g *Graph) checkPlacement(place []int) ([]int, error) {
	n := len(g.stages)
	if place == nil {
		place = make([]int, n)
		for i := range place {
			place[i] = i
		}
		return place, nil
	}
	if len(place) != n {
		return nil, fmt.Errorf("pipeline: placement has %d entries, graph has %d stages", len(place), n)
	}
	seen := make([]bool, n)
	for s, r := range place {
		if r < 0 || r >= n || seen[r] {
			return nil, fmt.Errorf("pipeline: placement %v is not a permutation (stage %d -> rank %d)", place, s, r)
		}
		seen[r] = true
	}
	return place, nil
}

// App returns the core.App adapter running stage `stage` under identity
// placement (stage s on rank s).
func (g *Graph) App(stage int) core.App {
	a, err := g.AppAt(nil, stage)
	if err != nil {
		panic(err) // identity placement never fails
	}
	return a
}

// AppAt returns the core.App adapter for the stage placed on `rank` under
// place (place[stage] = rank; nil = identity). The adapter implements
// core.Grapher, so the engine picks up the rank-level dependency graph
// automatically on any transport.
func (g *Graph) AppAt(place []int, rank int) (core.App, error) {
	place, err := g.checkPlacement(place)
	if err != nil {
		return nil, err
	}
	stage := -1
	for s, r := range place {
		if r == rank {
			stage = s
			break
		}
	}
	if stage == -1 {
		return nil, fmt.Errorf("pipeline: rank %d has no stage under placement %v", rank, place)
	}
	dg, err := g.DepGraph(place)
	if err != nil {
		return nil, err
	}
	s := g.stages[stage]
	return &stageApp{
		g:     g,
		dg:    dg,
		stage: stage,
		rank:  rank,
		place: place,
		def:   s,
		in:    make([][]float64, len(g.up[stage])),
		out:   make([]float64, s.Width),
	}, nil
}

// stageApp adapts one pipeline stage to the engine's App contract. The
// output buffer is reused across ticks — the engine copies results into its
// value plane immediately — so a steady-state Step allocates nothing.
type stageApp struct {
	g     *Graph
	dg    *core.DepGraph
	stage int
	rank  int
	place []int
	def   Stage
	in    [][]float64
	out   []float64
}

var (
	_ core.App     = (*stageApp)(nil)
	_ core.Grapher = (*stageApp)(nil)
)

func (a *stageApp) Graph(p int) *core.DepGraph { return a.dg }

func (a *stageApp) InitLocal() []float64 {
	buf := make([]float64, a.def.Width)
	if a.def.Init != nil {
		a.def.Init(buf)
	}
	return buf
}

func (a *stageApp) Compute(view [][]float64, t int) []float64 {
	for i, u := range a.g.up[a.stage] {
		a.in[i] = view[a.place[u]]
	}
	a.def.Step(t, view[a.rank], a.in, a.out)
	return a.out
}

func (a *stageApp) ComputeOps() float64 { return a.def.Ops }

// Check validates a speculated upstream row against the actual broadcast
// under the *source* stage's tolerance: the producing stage knows how
// smooth its output is.
func (a *stageApp) Check(peer int, predicted, actual, local []float64, t int) core.CheckResult {
	src := a.def
	for s, r := range a.place {
		if r == peer {
			src = a.g.stages[s]
			break
		}
	}
	return core.RelErrCheck(src.Tol, src.CheckOps, predicted, actual)
}

// RepairOps charges a full Step re-evaluation scaled by the fraction of
// input elements that were out of tolerance — the paper's k·N_i·f_comp.
func (a *stageApp) RepairOps(r core.CheckResult) float64 {
	if r.Total == 0 {
		return a.def.Ops
	}
	return a.def.Ops * float64(r.Bad) / float64(r.Total)
}
