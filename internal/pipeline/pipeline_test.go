package pipeline

import (
	"math"
	"testing"

	"specomp/internal/checkpoint"
	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/realtime"
)

// runOnCluster executes the pipeline on the simulated cluster, one stage
// per processor under the given placement (nil = identity).
func runOnCluster(t *testing.T, g *Graph, place []int, cc cluster.Config, cfg core.Config) []core.Result {
	t.Helper()
	results, err := core.RunCluster(cc, cfg, func(p *cluster.Proc) core.App {
		app, err := g.AppAt(place, p.ID())
		if err != nil {
			t.Errorf("rank %d: %v", p.ID(), err)
			return nil
		}
		return app
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func maxDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestThreeStageClusterExactAtFW1: with FW=1 and zero tolerances, every
// imperfect prediction is repaired before the stage's output is broadcast,
// so the speculative pipeline is bit-identical to lockstep evaluation —
// while still speculating (and repairing) every tick, because the slow
// source paces the cheap downstream stages.
func TestThreeStageClusterExactAtFW1(t *testing.T) {
	const width, iters = 8, 30
	g := ThreeStage(width, 42).SetUniformTol(0)
	want := g.Serial(iters)
	cc := cluster.Config{
		Machines: cluster.UniformMachines(g.Stages(), 1000),
		Net:      netmodel.Fixed{D: 0.3},
		Seed:     1,
	}
	results := runOnCluster(t, g, nil, cc, core.Config{FW: 1, MaxIter: iters})
	for s, r := range results {
		if d := maxDiff(r.Final, want[s]); d > 1e-12 {
			t.Errorf("stage %d diverged from serial by %g", s, d)
		}
	}
	if results[1].Stats.SpecsMade == 0 || results[2].Stats.SpecsMade == 0 {
		t.Error("downstream stages never speculated on upstream outputs")
	}
	if results[1].Stats.Repairs == 0 {
		t.Error("zero tolerance on a curved source should force repairs")
	}
	if results[0].Stats.SpecsMade != 0 {
		t.Error("the source has no in-edges and must not speculate")
	}
}

// TestThreeStageRealtimeExactAtFW1 runs the same pipeline on real
// goroutines and channels: scheduling is nondeterministic, but the FW=1 +
// zero-tolerance invariant (validated-or-repaired before broadcast) makes
// the finals exactly serial regardless of timing.
func TestThreeStageRealtimeExactAtFW1(t *testing.T) {
	const width, iters = 8, 25
	g := ThreeStage(width, 42).SetUniformTol(0)
	want := g.Serial(iters)
	results, err := realtime.Run(realtime.Config{Procs: g.Stages(), MaxIter: iters, FW: 1},
		func(pid, procs int) core.App { return g.App(pid) })
	if err != nil {
		t.Fatal(err)
	}
	for s, r := range results {
		if d := maxDiff(r.Final, want[s]); d > 1e-12 {
			t.Errorf("stage %d diverged from serial by %g", s, d)
		}
	}
}

// TestChainWithinToleranceAtFW2: a 5-hop retrieval-style chain with the
// stages' real tolerances and a deep forward window. Speculatively sent
// values are never re-sent, so the run is not bit-exact — but the stages
// contract, so tolerated errors decay downstream and the finals stay inside
// a tight envelope of the serial reference.
func TestChainWithinToleranceAtFW2(t *testing.T) {
	const width, iters = 8, 60
	g := Chain(5, width, 7)
	want := g.Serial(iters)
	cc := cluster.Config{
		Machines: cluster.UniformMachines(g.Stages(), 1000),
		Net:      netmodel.Fixed{D: 0.25},
		Seed:     13,
	}
	results := runOnCluster(t, g, nil, cc, core.Config{FW: 2, MaxIter: iters})
	for s, r := range results {
		if d := maxDiff(r.Final, want[s]); d > 0.05 {
			t.Errorf("stage %d drifted %g from serial (tolerance envelope 0.05)", s, d)
		}
	}
	agg := core.Aggregate(results)
	if agg.SpecsChecked == 0 {
		t.Error("no speculation checked anywhere in the chain")
	}
}

// TestPlacementPermuted: stage placement is part of the run configuration —
// stage s runs on rank place[s] and the rank-level DepGraph is permuted to
// match, so any assignment of stages to processors yields the same outputs.
func TestPlacementPermuted(t *testing.T) {
	const width, iters = 8, 24
	g := ThreeStage(width, 42).SetUniformTol(0)
	want := g.Serial(iters)
	place := []int{2, 0, 1} // source on rank 2, filter on rank 0, aggregate on rank 1
	cc := cluster.Config{
		Machines: cluster.UniformMachines(g.Stages(), 1000),
		Net:      netmodel.Fixed{D: 0.3},
		Seed:     2,
	}
	results := runOnCluster(t, g, place, cc, core.Config{FW: 1, MaxIter: iters})
	for s := 0; s < g.Stages(); s++ {
		r := results[place[s]]
		if d := maxDiff(r.Final, want[s]); d > 1e-12 {
			t.Errorf("stage %d on rank %d diverged from serial by %g", s, place[s], d)
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	g := ThreeStage(4, 1)
	if _, err := g.AppAt([]int{0, 1}, 0); err == nil {
		t.Error("short placement accepted")
	}
	if _, err := g.AppAt([]int{0, 0, 1}, 0); err == nil {
		t.Error("non-permutation placement accepted")
	}
	if _, err := g.DepGraph([]int{2, 1, 3}); err == nil {
		t.Error("out-of-range placement accepted")
	}
}

// TestMidPipelineCrashRestore extends the recover_test pattern to a DAG: a
// mid-pipeline stage crashes, restores its per-stage state from its
// checkpoint, and rejoins — while its downstream neighbour bridges the
// outage by speculating on the dead stage's output past the forward window.
func TestMidPipelineCrashRestore(t *testing.T) {
	const width, iters = 8, 80
	g := Chain(4, width, 21)
	want := g.Serial(iters)

	pipeCfg := func() core.Config {
		return core.Config{
			FW:              1,
			MaxIter:         iters,
			Deadline:        0.3,
			CheckpointEvery: 5,
			CheckpointStore: checkpoint.NewMemStore(),
			CheckpointOps:   20,
		}
	}
	reliable := func() cluster.Config {
		return cluster.Config{
			Machines:     cluster.UniformMachines(g.Stages(), 1000),
			Net:          netmodel.Fixed{D: 0.05},
			Reliable:     true,
			RetryTimeout: 0.5,
			Seed:         17,
		}
	}

	base := runOnCluster(t, g, nil, reliable(), pipeCfg())
	T := core.TotalTime(base)

	cc := reliable()
	cc.Crashes = faults.CrashSchedule{{Proc: 1, At: 0.4 * T, Downtime: 0.1 * T}}
	results := runOnCluster(t, g, nil, cc, pipeCfg())

	for s, r := range results {
		if d := maxDiff(r.Final, want[s]); d > 0.05 {
			t.Errorf("stage %d drifted %g from serial after the crash", s, d)
		}
	}
	crashed := results[1].Stats
	if crashed.Restores != 1 {
		t.Errorf("crashed stage restored %d times, want 1", crashed.Restores)
	}
	if crashed.Checkpoints == 0 {
		t.Error("crashed stage took no checkpoints")
	}
	if crashed.CatchupIters == 0 {
		t.Error("restored stage replayed no catch-up iterations")
	}
	downstream := results[2].Stats
	if downstream.Overruns == 0 {
		t.Error("downstream stage never bridged the outage on speculation")
	}
	if downstream.Reconciles == 0 {
		t.Error("downstream stage never reconciled bridged iterations")
	}
}

// TestSerialDeterminism: two Serial evaluations of the same seeded graph
// are identical — the reference the transports are judged against is
// itself stable.
func TestSerialDeterminism(t *testing.T) {
	a := ThreeStage(8, 5).Serial(40)
	b := ThreeStage(8, 5).Serial(40)
	for s := range a {
		if d := maxDiff(a[s], b[s]); d != 0 {
			t.Fatalf("stage %d differs across serial evaluations by %g", s, d)
		}
	}
}
