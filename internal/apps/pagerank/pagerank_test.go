package pagerank

import (
	"math"
	"testing"
	"testing/quick"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func TestRankSumsToOneProperty(t *testing.T) {
	f := func(seed int64, n8, deg8 uint8) bool {
		n := int(n8%100) + 10
		deg := int(deg8%5) + 1
		g := NewRandomGraph(n, deg, seed)
		p := NewProblem(g, 0.85)
		r := p.SerialSolve(30)
		return math.Abs(Sum(r)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDanglingMassRedistributed(t *testing.T) {
	g := NewRandomGraph(50, 3, 1)
	g.Dangle(10)
	p := NewProblem(g, 0.85)
	r := p.SerialSolve(50)
	if math.Abs(Sum(r)-1) > 1e-9 {
		t.Errorf("rank mass leaked: sum = %v", Sum(r))
	}
	for i, v := range r {
		if v <= 0 {
			t.Errorf("rank[%d] = %v, want positive", i, v)
		}
	}
}

func TestPowerIterationConverges(t *testing.T) {
	g := NewRandomGraph(80, 4, 2)
	p := NewProblem(g, 0.85)
	r1 := p.SerialSolve(40)
	r2 := p.SerialSolve(41)
	if d := L1Diff(r1, r2); d > 1e-8 {
		t.Errorf("not converged after 40 sweeps: L1 change %g", d)
	}
}

func TestHubGetsMoreRank(t *testing.T) {
	// A star: every vertex links to vertex 0 (plus the ring).
	g := &Graph{N: 20, Out: make([][]int, 20)}
	for v := 0; v < 20; v++ {
		g.Out[v] = []int{(v + 1) % 20}
		if v != 0 {
			g.Out[v] = append(g.Out[v], 0)
		}
	}
	p := NewProblem(g, 0.85)
	r := p.SerialSolve(60)
	for v := 1; v < 20; v++ {
		if r[0] <= r[v] {
			t.Fatalf("hub rank %v not above vertex %d rank %v", r[0], v, r[v])
		}
	}
}

func runDistributed(t *testing.T, prob *Problem, procs int, cfg core.Config, theta, tol float64) ([]core.Result, []float64) {
	t.Helper()
	machines := cluster.LinearMachines(procs, 1e6, 2)
	caps := make([]float64, procs)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	blocks := BlocksFromCounts(partition.Proportional(prob.G.N, caps))
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.03}},
		cfg,
		func(pr *cluster.Proc) core.App {
			app := NewApp(prob, blocks, pr.ID(), theta)
			app.Tol = tol
			return app
		})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, prob.G.N)
	for k, res := range results {
		copy(r[blocks[k][0]:blocks[k][1]], res.Final)
	}
	return results, r
}

func TestDistributedBlockingMatchesSerial(t *testing.T) {
	g := NewRandomGraph(60, 4, 3)
	p := NewProblem(g, 0.85)
	const iters = 20
	want := p.SerialSolve(iters)
	_, got := runDistributed(t, p, 4, core.Config{FW: 0, MaxIter: iters}, 0.01, 0)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("rank[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpeculativePageRankConverges(t *testing.T) {
	g := NewRandomGraph(60, 4, 4)
	p := NewProblem(g, 0.85)
	const iters = 60
	want := p.SerialSolve(200) // essentially the fixed point
	// θ = 1.1 is progress-relative bounded staleness: zero-order speculation
	// is accepted iff no worse than reusing last sweep's value, so the
	// injected noise contracts along with the iteration and the fixed point
	// is still reached.
	// Bounded staleness slows convergence (stale-by-one data roughly halves
	// the contraction rate), so after 60 sweeps the iterate is near — not
	// at — the fixed point.
	results, got := runDistributed(t, p, 4, core.Config{FW: 1, MaxIter: iters}, 1.1, 0)
	if d := L1Diff(got, want); d > 1e-4 {
		t.Errorf("speculative ranks off by L1 %g", d)
	}
	if core.Aggregate(results).SpecsMade == 0 {
		t.Error("no speculation happened")
	}
	if math.Abs(Sum(got)-1) > 1e-4 {
		t.Errorf("speculative rank mass = %v", Sum(got))
	}
}

func TestConvergenceStopperConsistent(t *testing.T) {
	g := NewRandomGraph(60, 4, 5)
	p := NewProblem(g, 0.85)
	results, _ := runDistributed(t, p, 3, core.Config{FW: 1, MaxIter: 500}, 1.1, 1e-10)
	iters := results[0].Stats.Iters
	if iters >= 500 {
		t.Fatal("never converged")
	}
	for _, r := range results {
		if !r.Converged || r.Stats.Iters != iters {
			t.Errorf("proc %d: converged=%v iters=%d (expected %d)", r.Proc, r.Converged, r.Stats.Iters, iters)
		}
	}
}

func TestBlocksFromCounts(t *testing.T) {
	b := BlocksFromCounts([]int{2, 3})
	if b[0] != [2]int{0, 2} || b[1] != [2]int{2, 5} {
		t.Errorf("blocks = %v", b)
	}
}
