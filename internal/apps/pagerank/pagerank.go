// Package pagerank runs PageRank power iteration on the speculative
// synchronous iterative engine — a fourth member of the paper's algorithm
// class, with graph-structured (rather than all-pairs or stencil) coupling.
//
// Each processor owns a block of vertices and their rank entries. Every
// iteration all rank blocks are exchanged (the paper's general model);
// blocks still in flight are speculated from their history.
//
// An honest finding of this port: per-vertex rank trajectories under power
// iteration are NOT extrapolatable. Each element mixes many spectral modes
// of comparable magnitude, so linear extrapolation errs by ~1.5× the
// per-sweep change (measured; worse than simply reusing the old value).
// The paper's §3.2 precondition — "variables follow a relatively slow
// changing trend that can be detected" — fails here. The speculation mode
// that DOES pay is zero-order prediction with a progress-relative threshold
// θ slightly above 1: "accept the speculation iff it is no worse than using
// last sweep's value", i.e. staleness bounded to one iteration's change.
// That masks communication like asynchronous iteration but, unlike the
// asynchronous baseline, keeps a per-message error guarantee and sound
// convergence detection.
package pagerank

import (
	"math"
	"math/rand"

	"specomp/internal/core"
)

// Graph is a directed graph in adjacency-list form.
type Graph struct {
	N   int
	Out [][]int // Out[v] lists the targets of v's out-edges
}

// NewRandomGraph builds a random directed graph with roughly avgDeg
// out-edges per vertex plus a deterministic ring to keep it connected and a
// self-loop on every vertex. The self-loops make the damped walk "lazy",
// shifting its spectrum to be (near-)nonnegative: per-vertex rank
// trajectories then decay monotonically instead of spiralling, which is
// what makes their history extrapolatable — the §3.2 "slow changing trend"
// property. (A graph without self-loops has oscillatory modes whose
// per-element changes alternate sign and defeat any history-based
// speculation; see the package tests.)
func NewRandomGraph(n, avgDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{N: n, Out: make([][]int, n)}
	for v := 0; v < n; v++ {
		g.Out[v] = append(g.Out[v], v)       // lazy self-loop
		g.Out[v] = append(g.Out[v], (v+1)%n) // ring edge
		for e := 1; e < avgDeg; e++ {
			w := rng.Intn(n)
			if w != v {
				g.Out[v] = append(g.Out[v], w)
			}
		}
	}
	return g
}

// Dangle adds nDangling rank sinks (vertices with no out-edges) by clearing
// the out-lists of the last vertices — for testing dangling-mass handling.
func (g *Graph) Dangle(nDangling int) {
	for v := g.N - nDangling; v < g.N; v++ {
		if v >= 0 {
			g.Out[v] = nil
		}
	}
}

// Problem precomputes the transpose structure needed by the pull-style
// update, shared read-only by all processors.
type Problem struct {
	G       *Graph
	Damping float64
	// In[v] lists (source, 1/outdeg(source)) contributions into v.
	in     [][]inEdge
	isSink []bool
}

type inEdge struct {
	src int
	w   float64
}

// NewProblem prepares a PageRank instance with the given damping factor.
func NewProblem(g *Graph, damping float64) *Problem {
	p := &Problem{G: g, Damping: damping,
		in: make([][]inEdge, g.N), isSink: make([]bool, g.N)}
	for v := 0; v < g.N; v++ {
		if len(g.Out[v]) == 0 {
			p.isSink[v] = true
			continue
		}
		w := 1.0 / float64(len(g.Out[v]))
		for _, u := range g.Out[v] {
			p.in[u] = append(p.in[u], inEdge{src: v, w: w})
		}
	}
	return p
}

// Step performs one synchronous power-iteration sweep over all vertices.
// Dangling mass is redistributed uniformly.
func (p *Problem) Step(rank []float64) []float64 {
	n := p.G.N
	out := make([]float64, n)
	var dangling float64
	for v := 0; v < n; v++ {
		if p.isSink[v] {
			dangling += rank[v]
		}
	}
	base := (1-p.Damping)/float64(n) + p.Damping*dangling/float64(n)
	for v := 0; v < n; v++ {
		s := 0.0
		for _, e := range p.in[v] {
			s += e.w * rank[e.src]
		}
		out[v] = base + p.Damping*s
	}
	return out
}

// SerialSolve iterates from the uniform vector.
func (p *Problem) SerialSolve(iters int) []float64 {
	r := uniform(p.G.N)
	for t := 0; t < iters; t++ {
		r = p.Step(r)
	}
	return r
}

func uniform(n int) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	return r
}

// Sum returns Σ r_i (should remain 1 under the dangling-mass treatment).
func Sum(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v
	}
	return s
}

// L1Diff returns Σ |a_i − b_i|.
func L1Diff(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// App adapts one processor's vertex block to the engine.
type App struct {
	prob   *Problem
	pid    int
	blocks [][2]int
	// Theta is the relative-error speculation threshold.
	Theta float64
	// Tol, when positive, stops once the exchanged rank vector's L1 change
	// falls below it (core.Stopper).
	Tol float64
	// SpecAlpha damps the speculation's trend term: 0 (default) is
	// zero-order hold — the right choice for power iteration, whose
	// per-element trends are not extrapolatable (see the package comment) —
	// and 1 is full linear extrapolation.
	SpecAlpha float64

	prev []float64
	// lastAct[k] caches peer k's previous actual block, the reference for
	// the progress-relative check.
	lastAct [][]float64
	// needed[v] marks global vertices whose rank the local update reads
	// (sources of in-edges into the owned block, plus all sinks for the
	// dangling-mass term). Speculation and checking are restricted — and
	// cost-charged — per peer according to this dependency structure, the
	// receiver-side analogue of core.Publisher.
	needed []bool
	// relevant[k] counts needed vertices inside peer k's block.
	relevant []int
}

// NewApp creates the adapter for processor pid owning vertex range
// blocks[pid].
func NewApp(prob *Problem, blocks [][2]int, pid int, theta float64) *App {
	a := &App{prob: prob, pid: pid, blocks: blocks, Theta: theta}
	a.needed = make([]bool, prob.G.N)
	for v := a.lo(); v < a.hi(); v++ {
		for _, e := range prob.in[v] {
			a.needed[e.src] = true
		}
	}
	for v, sink := range prob.isSink {
		if sink {
			a.needed[v] = true
		}
	}
	a.relevant = make([]int, len(blocks))
	for k, b := range blocks {
		for v := b[0]; v < b[1]; v++ {
			if a.needed[v] {
				a.relevant[k]++
			}
		}
	}
	a.lastAct = make([][]float64, len(blocks))
	return a
}

var _ core.App = (*App)(nil)
var _ core.Stopper = (*App)(nil)
var _ core.Speculator = (*App)(nil)

func (a *App) lo() int { return a.blocks[a.pid][0] }
func (a *App) hi() int { return a.blocks[a.pid][1] }

// InitLocal implements core.App: the uniform distribution block.
func (a *App) InitLocal() []float64 {
	n := a.prob.G.N
	out := make([]float64, a.hi()-a.lo())
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out
}

func (a *App) global(view [][]float64) []float64 {
	r := make([]float64, a.prob.G.N)
	for k, blk := range view {
		if len(blk) == 0 {
			continue
		}
		copy(r[a.blocks[k][0]:a.blocks[k][1]], blk)
	}
	return r
}

// Compute implements core.App: the pull update for the owned vertices.
func (a *App) Compute(view [][]float64, t int) []float64 {
	rank := a.global(view)
	n := a.prob.G.N
	var dangling float64
	for v := 0; v < n; v++ {
		if a.prob.isSink[v] {
			dangling += rank[v]
		}
	}
	base := (1-a.prob.Damping)/float64(n) + a.prob.Damping*dangling/float64(n)
	out := make([]float64, a.hi()-a.lo())
	for v := a.lo(); v < a.hi(); v++ {
		s := 0.0
		for _, e := range a.prob.in[v] {
			s += e.w * rank[e.src]
		}
		out[v-a.lo()] = base + a.prob.Damping*s
	}
	return out
}

// ComputeOps implements core.App: ~2 flops per in-edge of the owned block
// plus the dangling scan.
func (a *App) ComputeOps() float64 {
	edges := 0
	for v := a.lo(); v < a.hi(); v++ {
		edges += len(a.prob.in[v])
	}
	return float64(2*edges) + float64(a.prob.G.N)
}

// Speculate implements core.Speculator: damped extrapolation of the peer's
// block (zero-order by default; see SpecAlpha), cost-charged only for the
// entries the local update actually reads.
func (a *App) Speculate(peer int, hist [][]float64, steps int) ([]float64, float64) {
	out := make([]float64, len(hist[0]))
	copy(out, hist[0])
	if a.SpecAlpha > 0 && len(hist) > 1 {
		s := float64(steps) * a.SpecAlpha
		for i := range out {
			out[i] += s * (hist[0][i] - hist[1][i])
		}
	}
	return out, 3 * float64(a.relevant[peer])
}

// Check implements core.App with a *progress-relative* error metric: a
// prediction is acceptable when its error is small compared to how much the
// value actually moved this sweep, |pred−act| ≤ θ·|act−lastAct|. For a
// geometrically converging iteration a fixed absolute threshold cannot
// work — early sweeps would always fail it, late sweeps would hide errors
// above the convergence tolerance — whereas the injected error under this
// metric decays with the iteration's own progress, so convergence
// detection remains sound. Only entries feeding the local update are
// compared and charged.
func (a *App) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	lo := a.blocks[peer][0]
	last := a.lastAct[peer]
	bad, total := 0, 0
	for i := range act {
		if !a.needed[lo+i] {
			continue
		}
		total++
		err := math.Abs(pred[i] - act[i])
		if last == nil {
			// No reference progress yet: accept only near-exact predictions.
			if err > 1e-15 {
				bad++
			}
			continue
		}
		if err > a.Theta*math.Abs(act[i]-last[i])+1e-15 {
			bad++
		}
	}
	a.lastAct[peer] = append([]float64(nil), act...)
	return core.CheckResult{Bad: bad, Total: total, Ops: 3 * float64(total)}
}

// RepairOps implements core.App: the bad fraction of a sweep.
func (a *App) RepairOps(r core.CheckResult) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Bad) / float64(r.Total) * a.ComputeOps()
}

// Done implements core.Stopper on the exchanged rank vector's L1 change.
func (a *App) Done(actualView [][]float64, t int) bool {
	if a.Tol <= 0 {
		return false
	}
	r := a.global(actualView)
	defer func() { a.prev = r }()
	if a.prev == nil {
		return false
	}
	return L1Diff(r, a.prev) < a.Tol
}

// DoneOps implements core.Stopper.
func (a *App) DoneOps() float64 {
	if a.Tol <= 0 {
		return 0
	}
	return 2 * float64(a.prob.G.N)
}

// BlocksFromCounts converts per-processor vertex counts to ranges.
func BlocksFromCounts(counts []int) [][2]int {
	out := make([][2]int, len(counts))
	lo := 0
	for i, c := range counts {
		out[i] = [2]int{lo, lo + c}
		lo += c
	}
	return out
}
