package pagerank

import (
	"testing"

	"specomp/internal/core"
	"specomp/internal/partition"
)

// BenchmarkComputeKernel measures one power-iteration step of a middle
// processor's vertex block — the f_comp the engine charges per iteration.
func BenchmarkComputeKernel(b *testing.B) {
	const P, pid = 4, 1
	prob := NewProblem(NewRandomGraph(512, 8, 1), 0.85)
	blocks := BlocksFromCounts(partition.Proportional(prob.G.N, []float64{1, 1, 1, 1}))
	apps := make([]*App, P)
	for k := range apps {
		apps[k] = NewApp(prob, blocks, k, 1e-3)
	}
	view := make([][]float64, P)
	for k, a := range apps {
		loc := a.InitLocal()
		if k != pid {
			if pub, ok := any(a).(core.Publisher); ok {
				loc = pub.Publish(loc)
			}
		}
		view[k] = loc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view[pid] = apps[pid].Compute(view, i)
	}
}
