package jacobi

import (
	"testing"

	"specomp/internal/core"
	"specomp/internal/partition"
)

// BenchmarkComputeKernel measures one Jacobi sweep of a middle processor's
// partition — the f_comp the engine charges per iteration.
func BenchmarkComputeKernel(b *testing.B) {
	const P, pid = 4, 1
	prob := NewDiagonallyDominant(256, 1)
	blocks := BlocksFromCounts(partition.Proportional(prob.N, []float64{1, 1, 1, 1}))
	apps := make([]*App, P)
	for k := range apps {
		apps[k] = NewApp(prob, blocks, k, 1e-3)
	}
	view := benchView(apps, pid)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view[pid] = apps[pid].Compute(view, i)
	}
}

// benchView assembles the global view exactly as the engine would: the
// local partition for pid, each peer's published payload otherwise.
func benchView(apps []*App, pid int) [][]float64 {
	view := make([][]float64, len(apps))
	for k, a := range apps {
		loc := a.InitLocal()
		if k == pid {
			view[k] = loc
			continue
		}
		if pub, ok := any(a).(core.Publisher); ok {
			loc = pub.Publish(loc)
		}
		view[k] = loc
	}
	return view
}
