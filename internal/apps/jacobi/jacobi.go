// Package jacobi runs Jacobi iteration for diagonally dominant linear
// systems on the speculative synchronous iterative engine — a second
// instance of the paper's algorithm class ("iterative techniques to solve
// linear and non-linear equations").
//
// Each processor owns a block of rows of A and the corresponding block of
// the iterate x. Every iteration it broadcasts its block of x, obtains (or
// speculates) the other blocks, and updates
//
//	x_i(t+1) = (b_i − Σ_{j≠i} a_ij·x_j(t)) / a_ii.
//
// Jacobi on a strictly diagonally dominant system is a contraction, so
// bounded speculation errors still converge — the property that makes
// speculative computation safe here.
package jacobi

import (
	"math"
	"math/rand"

	"specomp/internal/core"
)

// Problem is a dense linear system Ax = b with a known solution (for
// testing and residual reporting).
type Problem struct {
	N        int
	A        [][]float64
	B        []float64
	Solution []float64
}

// NewDiagonallyDominant generates a random strictly diagonally dominant
// n×n system with a known random solution.
func NewDiagonallyDominant(n int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]float64, n)
	sol := make([]float64, n)
	for i := range sol {
		sol[i] = 2*rng.Float64() - 1
	}
	for i := range a {
		a[i] = make([]float64, n)
		var off float64
		for j := range a[i] {
			if j == i {
				continue
			}
			a[i][j] = (2*rng.Float64() - 1) / float64(n)
			off += math.Abs(a[i][j])
		}
		// Strict dominance with margin, keeping the spectral radius of the
		// Jacobi iteration matrix comfortably below 1.
		a[i][i] = off*1.5 + 1
	}
	b := make([]float64, n)
	for i := range a {
		var s float64
		for j := range a[i] {
			s += a[i][j] * sol[j]
		}
		b[i] = s
	}
	return &Problem{N: n, A: a, B: b, Solution: sol}
}

// SerialStep performs one Jacobi sweep on x, returning the new iterate.
func (p *Problem) SerialStep(x []float64) []float64 {
	out := make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		s := p.B[i]
		row := p.A[i]
		for j, v := range row {
			if j != i {
				s -= v * x[j]
			}
		}
		out[i] = s / row[i]
	}
	return out
}

// SerialSolve iterates from the zero vector for iters sweeps.
func (p *Problem) SerialSolve(iters int) []float64 {
	x := make([]float64, p.N)
	for t := 0; t < iters; t++ {
		x = p.SerialStep(x)
	}
	return x
}

// Residual returns ‖Ax − b‖₂.
func (p *Problem) Residual(x []float64) float64 {
	var sum float64
	for i := range p.A {
		var s float64
		for j, v := range p.A[i] {
			s += v * x[j]
		}
		d := s - p.B[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// ErrorNorm returns ‖x − x*‖₂ against the known solution.
func (p *Problem) ErrorNorm(x []float64) float64 {
	var sum float64
	for i, v := range x {
		d := v - p.Solution[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// App adapts one processor's row block to the engine.
type App struct {
	prob   *Problem
	pid    int
	lo, hi int // owned row range [lo, hi)
	blocks [][2]int
	// Theta is the relative-error speculation threshold.
	Theta float64
	// Tol, when positive, stops the run once the iterate's max-norm change
	// between consecutive validated iterations falls below it (a core.Stopper).
	Tol float64

	prevIterate []float64
}

// NewApp creates the adapter for processor pid owning rows [lo, hi).
// blocks lists every processor's (lo, hi) so the view can be unflattened.
func NewApp(prob *Problem, blocks [][2]int, pid int, theta float64) *App {
	return &App{
		prob: prob, pid: pid,
		lo: blocks[pid][0], hi: blocks[pid][1],
		blocks: blocks, Theta: theta,
	}
}

var _ core.App = (*App)(nil)

// InitLocal implements core.App: the zero initial iterate.
func (a *App) InitLocal() []float64 { return make([]float64, a.hi-a.lo) }

// global reassembles the full iterate from the per-processor view.
func (a *App) global(view [][]float64) []float64 {
	x := make([]float64, a.prob.N)
	for k, blk := range view {
		if len(blk) == 0 {
			continue
		}
		copy(x[a.blocks[k][0]:a.blocks[k][1]], blk)
	}
	return x
}

// Compute implements core.App: one Jacobi sweep over the owned rows.
func (a *App) Compute(view [][]float64, t int) []float64 {
	x := a.global(view)
	out := make([]float64, a.hi-a.lo)
	for i := a.lo; i < a.hi; i++ {
		s := a.prob.B[i]
		row := a.prob.A[i]
		for j, v := range row {
			if j != i {
				s -= v * x[j]
			}
		}
		out[i-a.lo] = s / row[i]
	}
	return out
}

// ComputeOps implements core.App: 2 flops per matrix element visited.
func (a *App) ComputeOps() float64 {
	return 2 * float64(a.hi-a.lo) * float64(a.prob.N)
}

// Check implements core.App via element-wise relative error.
func (a *App) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(a.Theta, 2, pred, act)
}

// RepairOps implements core.App: recomputing the rows affected by bad
// elements costs, per the paper's model, the bad fraction of a full sweep.
func (a *App) RepairOps(r core.CheckResult) float64 {
	if r.Total == 0 {
		return 0
	}
	frac := float64(r.Bad) / float64(r.Total)
	return frac * a.ComputeOps()
}

// Done implements core.Stopper: convergence is declared when the exchanged
// iterate changes by less than Tol in max-norm between consecutive
// validated iterations. Every processor sees the same exchanged snapshots,
// so the decision is globally consistent.
func (a *App) Done(actualView [][]float64, t int) bool {
	if a.Tol <= 0 {
		return false
	}
	x := a.global(actualView)
	defer func() { a.prevIterate = x }()
	if a.prevIterate == nil {
		return false
	}
	for i, v := range x {
		d := v - a.prevIterate[i]
		if d > a.Tol || d < -a.Tol {
			return false
		}
	}
	return true
}

// DoneOps implements core.Stopper: one subtract-and-compare per variable.
func (a *App) DoneOps() float64 {
	if a.Tol <= 0 {
		return 0
	}
	return 2 * float64(a.prob.N)
}

// BlocksFromCounts converts per-processor row counts to (lo, hi) ranges.
func BlocksFromCounts(counts []int) [][2]int {
	out := make([][2]int, len(counts))
	lo := 0
	for i, c := range counts {
		out[i] = [2]int{lo, lo + c}
		lo += c
	}
	return out
}
