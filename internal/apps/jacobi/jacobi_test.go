package jacobi

import (
	"math"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func TestGeneratorConsistency(t *testing.T) {
	p := NewDiagonallyDominant(40, 1)
	// b = A·solution by construction.
	if r := p.Residual(p.Solution); r > 1e-10 {
		t.Errorf("residual at exact solution = %g", r)
	}
	// Strict diagonal dominance.
	for i := range p.A {
		var off float64
		for j, v := range p.A[i] {
			if j != i {
				off += math.Abs(v)
			}
		}
		if math.Abs(p.A[i][i]) <= off {
			t.Errorf("row %d not strictly dominant", i)
		}
	}
}

func TestSerialSolveConverges(t *testing.T) {
	p := NewDiagonallyDominant(50, 2)
	x := p.SerialSolve(60)
	if e := p.ErrorNorm(x); e > 1e-8 {
		t.Errorf("error after 60 sweeps = %g", e)
	}
	// Error decreases monotonically (contraction).
	x1 := p.SerialSolve(5)
	x2 := p.SerialSolve(10)
	if p.ErrorNorm(x2) >= p.ErrorNorm(x1) {
		t.Error("Jacobi error not contracting")
	}
}

func runDistributed(t *testing.T, prob *Problem, p int, cfg core.Config, theta float64) ([]core.Result, []float64) {
	t.Helper()
	machines := cluster.LinearMachines(p, 1e6, 3)
	caps := make([]float64, p)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	blocks := BlocksFromCounts(partition.Proportional(prob.N, caps))
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.02}},
		cfg,
		func(pr *cluster.Proc) core.App { return NewApp(prob, blocks, pr.ID(), theta) })
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, prob.N)
	for k, r := range results {
		copy(x[blocks[k][0]:blocks[k][1]], r.Final)
	}
	return results, x
}

func TestDistributedBlockingMatchesSerial(t *testing.T) {
	prob := NewDiagonallyDominant(60, 3)
	const iters = 25
	want := prob.SerialSolve(iters)
	_, got := runDistributed(t, prob, 4, core.Config{FW: 0, MaxIter: iters}, 0.01)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSpeculativeJacobiStillConverges(t *testing.T) {
	prob := NewDiagonallyDominant(60, 4)
	const iters = 60
	results, got := runDistributed(t, prob, 4, core.Config{FW: 1, MaxIter: iters}, 1e-3)
	if e := prob.ErrorNorm(got); e > 1e-5 {
		t.Errorf("speculative solve error = %g", e)
	}
	if core.Aggregate(results).SpecsMade == 0 {
		t.Error("no speculation happened")
	}
}

func TestSpeculativeJacobiFW2Converges(t *testing.T) {
	prob := NewDiagonallyDominant(60, 5)
	const iters = 80
	_, got := runDistributed(t, prob, 4, core.Config{FW: 2, MaxIter: iters}, 1e-3)
	if e := prob.ErrorNorm(got); e > 1e-4 {
		t.Errorf("FW=2 speculative solve error = %g", e)
	}
}

func TestConvergenceStopsEarlyAndConsistently(t *testing.T) {
	prob := NewDiagonallyDominant(60, 6)
	const maxIters = 500
	machines := cluster.LinearMachines(4, 1e6, 3)
	caps := make([]float64, 4)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	blocks := BlocksFromCounts(partition.Proportional(prob.N, caps))
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.02}},
		core.Config{FW: 1, MaxIter: maxIters},
		func(pr *cluster.Proc) core.App {
			return &App{
				prob: prob, pid: pr.ID(),
				lo: blocks[pr.ID()][0], hi: blocks[pr.ID()][1],
				blocks: blocks, Theta: 1e-4, Tol: 1e-10,
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	iters := results[0].Stats.Iters
	if iters >= maxIters {
		t.Fatalf("never converged (%d iterations)", iters)
	}
	for _, r := range results {
		if !r.Converged {
			t.Errorf("proc %d did not report convergence", r.Proc)
		}
		if r.Stats.Iters != iters {
			t.Errorf("proc %d stopped at %d, proc 0 at %d — inconsistent", r.Proc, r.Stats.Iters, iters)
		}
	}
	x := make([]float64, prob.N)
	for k, r := range results {
		copy(x[blocks[k][0]:blocks[k][1]], r.Final)
	}
	if e := prob.ErrorNorm(x); e > 1e-6 {
		t.Errorf("converged iterate error = %g", e)
	}
}

func TestBlocksFromCounts(t *testing.T) {
	blocks := BlocksFromCounts([]int{3, 0, 2})
	want := [][2]int{{0, 3}, {3, 3}, {3, 5}}
	for i := range want {
		if blocks[i] != want[i] {
			t.Errorf("blocks[%d] = %v, want %v", i, blocks[i], want[i])
		}
	}
}
