package sor

import (
	"math"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func TestDefaultGridOmegaInRange(t *testing.T) {
	g := DefaultGrid(20, 10)
	if g.Omega <= 1 || g.Omega >= 2 {
		t.Errorf("omega = %v, want in (1, 2)", g.Omega)
	}
}

func TestSerialConvergesToSteadyState(t *testing.T) {
	g := DefaultGrid(16, 8)
	f := g.SerialRun(200)
	if d := MaxDiff(f, g.SteadyState()); d > 1e-6 {
		t.Errorf("after 200 sweeps still %.2e from steady state", d)
	}
}

func TestSORConvergesMuchFasterThanJacobiWould(t *testing.T) {
	// The point of over-relaxation: tens of sweeps instead of thousands.
	g := DefaultGrid(24, 12)
	f := g.SerialRun(120)
	if d := MaxDiff(f, g.SteadyState()); d > 1e-3 {
		t.Errorf("SOR did not converge in 120 sweeps: off by %.2e", d)
	}
}

func TestBoundariesStayFixed(t *testing.T) {
	g := DefaultGrid(10, 6)
	f := g.SerialRun(50)
	for c := 0; c < g.Cols; c++ {
		if f[0][c] != g.Top || f[g.Rows-1][c] != g.Bottom {
			t.Fatalf("Dirichlet rows drifted at col %d", c)
		}
	}
}

func runDistributed(t *testing.T, g Grid, p int, cfg core.Config, theta float64) ([]core.Result, [][]float64) {
	t.Helper()
	machines := cluster.UniformMachines(p, 1e6)
	caps := make([]float64, p)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(g.Rows, caps)
	blocks := make([][2]int, p)
	lo := 0
	for i, c := range counts {
		blocks[i] = [2]int{lo, lo + c}
		lo += c
	}
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.02}},
		cfg,
		func(pr *cluster.Proc) core.App { return NewApp(g, blocks, pr.ID(), theta) })
	if err != nil {
		t.Fatal(err)
	}
	field := make([][]float64, g.Rows)
	for k, res := range results {
		blo, bhi := blocks[k][0], blocks[k][1]
		for r := blo; r < bhi; r++ {
			field[r] = res.Final[(r-blo)*g.Cols : (r-blo+1)*g.Cols]
		}
	}
	return results, field
}

func TestDistributedBlockingMatchesSerialExactly(t *testing.T) {
	g := DefaultGrid(16, 8)
	const sweeps = 15
	want := g.SerialRun(sweeps)
	// One engine iteration is a half-sweep: red on even t, black on odd.
	_, got := runDistributed(t, g, 4, core.Config{FW: 0, MaxIter: 2 * sweeps}, 0.01)
	if d := MaxDiff(got, want); d > 1e-12 {
		t.Errorf("distributed red-black differs from serial by %g", d)
	}
}

func TestSpeculativeSORConverges(t *testing.T) {
	g := DefaultGrid(16, 8)
	results, got := runDistributed(t, g, 4, core.Config{FW: 1, BW: 3, MaxIter: 400}, 1e-4)
	if d := MaxDiff(got, g.SteadyState()); d > 0.01 {
		t.Errorf("speculative SOR %.4f from steady state", d)
	}
	if core.Aggregate(results).SpecsMade == 0 {
		t.Error("no speculation happened")
	}
}

func TestSpeculativeSORMasksLatency(t *testing.T) {
	g := DefaultGrid(32, 16)
	const iters = 120
	// Machines slow enough that each half-sweep's compute (~45 ms) covers
	// the 50 ms latency once overlapped.
	machinesSlow := func(fw int) float64 {
		machines := cluster.UniformMachines(4, 10_000)
		caps := []float64{10_000, 10_000, 10_000, 10_000}
		counts := partition.Proportional(g.Rows, caps)
		blocks := make([][2]int, 4)
		lo := 0
		for i, c := range counts {
			blocks[i] = [2]int{lo, lo + c}
			lo += c
		}
		results, err := core.RunCluster(
			cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.05}},
			core.Config{FW: fw, BW: 3, MaxIter: iters},
			func(pr *cluster.Proc) core.App { return NewApp(g, blocks, pr.ID(), 1e-3) })
		if err != nil {
			t.Fatal(err)
		}
		return core.TotalTime(results)
	}
	tBlock := machinesSlow(0)
	tSpec := machinesSlow(1)
	if tSpec >= tBlock {
		t.Errorf("speculation did not pay: %v vs %v", tSpec, tBlock)
	}
}

func TestRedBlackPartitionOfCells(t *testing.T) {
	reds, blacks := 0, 0
	for r := 0; r < 7; r++ {
		for c := 0; c < 9; c++ {
			if red(r, c) {
				reds++
			} else {
				blacks++
			}
		}
	}
	if math.Abs(float64(reds-blacks)) > 1 {
		t.Errorf("red/black imbalance: %d vs %d", reds, blacks)
	}
}
