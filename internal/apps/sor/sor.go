// Package sor solves the 2-D Laplace/Poisson problem with red-black
// successive over-relaxation on the speculative synchronous iterative
// engine — a fifth member of the paper's algorithm class, and the only one
// with *phase-alternating* iterations: engine iteration 2t updates the red
// cells (row+col even), iteration 2t+1 the black cells. Red cells read only
// black neighbours and vice versa, so the half-sweep exchange keeps the
// distributed update identical to the serial one; over-relaxation (ω up to
// 2) converges far faster than Jacobi.
//
// As in the heat app, each processor owns a strip of rows and publishes
// only its edge rows (core.Publisher).
package sor

import (
	"fmt"
	"math"

	"specomp/internal/core"
)

// Grid describes the global problem: ∇²u = F with Dirichlet boundary
// values fixed at the initial field's edges.
type Grid struct {
	Rows, Cols int
	// Omega is the over-relaxation factor in (0, 2).
	Omega float64
	// Top and Bottom set the fixed boundary rows; side columns are
	// insulated copies of their neighbours' initial values (kept fixed).
	Top, Bottom float64
}

// DefaultGrid returns a stable configuration with a near-optimal ω for the
// given grid size.
func DefaultGrid(rows, cols int) Grid {
	// Optimal SOR factor for the 5-point Laplacian on an m×n grid.
	m := float64(rows - 1)
	rho := math.Cos(math.Pi / m) // dominant Jacobi eigenvalue (row-dominated)
	omega := 2 / (1 + math.Sqrt(1-rho*rho))
	return Grid{Rows: rows, Cols: cols, Omega: omega, Top: 100, Bottom: 0}
}

// Initial returns the starting field: boundary rows at their Dirichlet
// values, interior at the mean.
func (g Grid) Initial() [][]float64 {
	f := make([][]float64, g.Rows)
	mid := (g.Top + g.Bottom) / 2
	for r := range f {
		f[r] = make([]float64, g.Cols)
		v := mid
		switch r {
		case 0:
			v = g.Top
		case g.Rows - 1:
			v = g.Bottom
		}
		for c := range f[r] {
			f[r][c] = v
		}
	}
	return f
}

// red reports whether cell (r, c) belongs to the red half-sweep.
func red(r, c int) bool { return (r+c)%2 == 0 }

// halfSweep relaxes the cells of one colour in place.
func (g Grid) halfSweep(f [][]float64, wantRed bool) {
	for r := 1; r < g.Rows-1; r++ {
		for c := 0; c < g.Cols; c++ {
			if red(r, c) != wantRed {
				continue
			}
			left, right := c, c
			if c > 0 {
				left = c - 1
			}
			if c < g.Cols-1 {
				right = c + 1
			}
			gs := (f[r-1][c] + f[r+1][c] + f[r][left] + f[r][right]) / 4
			f[r][c] += g.Omega * (gs - f[r][c])
		}
	}
}

// SerialSweep performs one full red-black SOR sweep in place.
func (g Grid) SerialSweep(f [][]float64) {
	g.halfSweep(f, true)
	g.halfSweep(f, false)
}

// SerialRun runs sweeps full sweeps from the initial field.
func (g Grid) SerialRun(sweeps int) [][]float64 {
	f := g.Initial()
	for s := 0; s < sweeps; s++ {
		g.SerialSweep(f)
	}
	return f
}

// SteadyState is the analytic solution for the Laplace problem with the
// fixed top/bottom rows: a linear profile.
func (g Grid) SteadyState() [][]float64 {
	f := make([][]float64, g.Rows)
	for r := range f {
		f[r] = make([]float64, g.Cols)
		v := g.Top + (g.Bottom-g.Top)*float64(r)/float64(g.Rows-1)
		for c := range f[r] {
			f[r][c] = v
		}
	}
	return f
}

// MaxDiff returns the largest absolute difference between two fields.
func MaxDiff(a, b [][]float64) float64 {
	worst := 0.0
	for r := range a {
		for c := range a[r] {
			if d := math.Abs(a[r][c] - b[r][c]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// App adapts one processor's strip to the engine. Engine iteration t is the
// red half-sweep when t is even, black when odd.
type App struct {
	grid   Grid
	pid    int
	blocks [][2]int
	// Theta is the relative-error speculation threshold.
	Theta float64
}

// NewApp creates the adapter; every processor must own at least one row.
func NewApp(grid Grid, blocks [][2]int, pid int, theta float64) *App {
	for i, b := range blocks {
		if b[1] <= b[0] {
			panic(fmt.Sprintf("sor: processor %d owns no rows", i))
		}
	}
	return &App{grid: grid, pid: pid, blocks: blocks, Theta: theta}
}

var _ core.App = (*App)(nil)
var _ core.Publisher = (*App)(nil)
var _ core.Speculator = (*App)(nil)
var _ core.Neighbors = (*App)(nil)

// adjacent reports whether peer k's strip touches this processor's.
func (a *App) adjacent(k int) bool {
	lo, hi := a.rows()
	return a.blocks[k][1] == lo || a.blocks[k][0] == hi
}

// Needs implements core.Neighbors: only adjacent strips feed the stencil.
func (a *App) Needs(peer int) bool { return a.adjacent(peer) }

// NeededBy implements core.Neighbors: strip adjacency is symmetric.
func (a *App) NeededBy(peer int) bool { return a.adjacent(peer) }

func (a *App) rows() (lo, hi int) { return a.blocks[a.pid][0], a.blocks[a.pid][1] }

// InitLocal implements core.App.
func (a *App) InitLocal() []float64 {
	lo, hi := a.rows()
	full := a.grid.Initial()
	out := make([]float64, 0, (hi-lo)*a.grid.Cols)
	for r := lo; r < hi; r++ {
		out = append(out, full[r]...)
	}
	return out
}

// Publish implements core.Publisher: first and last strip rows.
func (a *App) Publish(local []float64) []float64 {
	c := a.grid.Cols
	n := len(local) / c
	out := make([]float64, 0, 2*c)
	out = append(out, local[:c]...)
	out = append(out, local[(n-1)*c:]...)
	return out
}

func (a *App) owner(r int) int {
	for k, b := range a.blocks {
		if r >= b[0] && r < b[1] {
			return k
		}
	}
	panic(fmt.Sprintf("sor: row %d owned by nobody", r))
}

// Speculate implements core.Speculator with a colour-aware rule: a cell
// only changes during half-sweeps of its own colour, so the cells NOT
// updated in the half-sweep being predicted are copied exactly from the
// newest snapshot, and the updated colour's cells extrapolate along their
// last per-update change (hist[0] − hist[2], two half-sweeps apart).
// Generic predictors fail here — consecutive snapshots alternate which
// half of the cells moved — which is exactly why the engine lets the
// application own its speculation function.
func (a *App) Speculate(peer int, hist [][]float64, steps int) ([]float64, float64) {
	out := make([]float64, len(hist[0]))
	copy(out, hist[0])
	if len(hist) < 3 {
		return out, float64(len(out)) // zero-order fallback
	}
	// One step ahead, the colour due to update is the one that moved
	// between hist[2] and hist[1] (same parity, two half-sweeps earlier);
	// hist[1]−hist[2] is zero for the other colour, so adding it applies
	// the per-update trend to exactly the right cells. Each further pair of
	// steps is a full sweep, captured by hist[0]−hist[2].
	full := float64(steps / 2)
	rem := float64(steps % 2)
	for i := range out {
		out[i] += full*(hist[0][i]-hist[2][i]) + rem*(hist[1][i]-hist[2][i])
	}
	return out, 4 * float64(len(out))
}

// Compute implements core.App: one half-sweep over the owned rows (red on
// even t, black on odd t), using the neighbours' published edge rows.
func (a *App) Compute(view [][]float64, t int) []float64 {
	lo, hi := a.rows()
	g := a.grid
	strip := append([]float64(nil), view[a.pid]...)
	var up, down []float64
	if lo > 0 {
		payload := view[a.owner(lo-1)]
		up = payload[g.Cols : 2*g.Cols] // strip above contributes its LAST row
	}
	if hi < g.Rows {
		payload := view[a.owner(hi)]
		down = payload[:g.Cols] // strip below contributes its FIRST row
	}
	row := func(r int) []float64 {
		switch {
		case r < lo:
			return up
		case r >= hi:
			return down
		default:
			return strip[(r-lo)*g.Cols : (r-lo+1)*g.Cols]
		}
	}
	wantRed := t%2 == 0
	for r := lo; r < hi; r++ {
		if r == 0 || r == g.Rows-1 {
			continue // Dirichlet rows stay fixed
		}
		cur := row(r)
		above, below := row(r-1), row(r+1)
		for c := 0; c < g.Cols; c++ {
			if red(r, c) != wantRed {
				continue
			}
			left, right := c, c
			if c > 0 {
				left = c - 1
			}
			if c < g.Cols-1 {
				right = c + 1
			}
			gs := (above[c] + below[c] + cur[left] + cur[right]) / 4
			cur[c] += g.Omega * (gs - cur[c])
		}
	}
	return strip
}

// ComputeOps implements core.App: ~7 flops per relaxed cell (half the strip).
func (a *App) ComputeOps() float64 {
	lo, hi := a.rows()
	return 7 * float64(hi-lo) * float64(a.grid.Cols) / 2
}

// Check implements core.App on the published edge rows.
func (a *App) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(a.Theta, 2, pred, act)
}

// RepairOps implements core.App.
func (a *App) RepairOps(r core.CheckResult) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Bad) / float64(r.Total) * a.ComputeOps()
}
