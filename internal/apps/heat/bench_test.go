package heat

import (
	"testing"

	"specomp/internal/core"
	"specomp/internal/partition"
)

// BenchmarkComputeKernel measures one explicit diffusion step of a middle
// processor's row block — the f_comp the engine charges per iteration.
func BenchmarkComputeKernel(b *testing.B) {
	const P, pid = 4, 1
	g := DefaultGrid(64, 64)
	counts := partition.Proportional(g.Rows, []float64{1, 1, 1, 1})
	blocks := make([][2]int, P)
	lo := 0
	for i, c := range counts {
		blocks[i] = [2]int{lo, lo + c}
		lo += c
	}
	apps := make([]*App, P)
	for k := range apps {
		apps[k] = NewApp(g, blocks, k, 1e-3)
	}
	view := make([][]float64, P)
	for k, a := range apps {
		loc := a.InitLocal()
		if k != pid {
			if pub, ok := any(a).(core.Publisher); ok {
				loc = pub.Publish(loc)
			}
		}
		view[k] = loc
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view[pid] = apps[pid].Compute(view, i)
	}
}
