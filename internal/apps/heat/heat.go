// Package heat solves the 2-D heat (diffusion) equation with an explicit
// finite-difference stencil on the speculative synchronous iterative
// engine — a third instance of the paper's algorithm class ("solution of
// partial differential equations").
//
// The R×C grid is decomposed into horizontal strips, one per processor.
// Each iteration a processor needs its neighbours' edge rows; under the
// paper's general all-to-all model every processor broadcasts its whole
// strip, and strips that have not arrived are speculated. Diffusion
// smooths the field monotonically, so history-based extrapolation is highly
// accurate — the favourable regime §3.2 describes.
package heat

import (
	"fmt"
	"math"

	"specomp/internal/core"
)

// Grid describes the global problem.
type Grid struct {
	Rows, Cols int
	// Alpha is the diffusion number α = κ·Δt/Δx² (stability needs α ≤ 0.25).
	Alpha float64
	// Top and Bottom are the fixed Dirichlet temperatures of the first and
	// last grid rows; the left/right edges are insulated (Neumann).
	Top, Bottom float64
}

// DefaultGrid returns a stable test configuration.
func DefaultGrid(rows, cols int) Grid {
	return Grid{Rows: rows, Cols: cols, Alpha: 0.2, Top: 100, Bottom: 0}
}

// Initial returns the initial field: boundary rows at their Dirichlet
// values, interior at the mean.
func (g Grid) Initial() [][]float64 {
	f := make([][]float64, g.Rows)
	mid := (g.Top + g.Bottom) / 2
	for r := range f {
		f[r] = make([]float64, g.Cols)
		v := mid
		switch r {
		case 0:
			v = g.Top
		case g.Rows - 1:
			v = g.Bottom
		}
		for c := range f[r] {
			f[r][c] = v
		}
	}
	return f
}

// SerialStep advances the whole field one explicit step (reference
// implementation).
func (g Grid) SerialStep(f [][]float64) [][]float64 {
	out := make([][]float64, g.Rows)
	for r := range out {
		out[r] = make([]float64, g.Cols)
		if r == 0 || r == g.Rows-1 {
			copy(out[r], f[r])
			continue
		}
		for c := 0; c < g.Cols; c++ {
			left, right := c, c
			if c > 0 {
				left = c - 1
			}
			if c < g.Cols-1 {
				right = c + 1
			}
			x := f[r][c]
			out[r][c] = x + g.Alpha*(f[r-1][c]+f[r+1][c]+f[r][left]+f[r][right]-4*x)
		}
	}
	return out
}

// SerialRun advances iters steps from the initial field.
func (g Grid) SerialRun(iters int) [][]float64 {
	f := g.Initial()
	for t := 0; t < iters; t++ {
		f = g.SerialStep(f)
	}
	return f
}

// SteadyState returns the analytic steady solution: a linear profile from
// Top to Bottom, uniform across columns.
func (g Grid) SteadyState() [][]float64 {
	f := make([][]float64, g.Rows)
	for r := range f {
		f[r] = make([]float64, g.Cols)
		v := g.Top + (g.Bottom-g.Top)*float64(r)/float64(g.Rows-1)
		for c := range f[r] {
			f[r][c] = v
		}
	}
	return f
}

// MaxDiff returns the largest absolute difference between two fields.
func MaxDiff(a, b [][]float64) float64 {
	worst := 0.0
	for r := range a {
		for c := range a[r] {
			if d := math.Abs(a[r][c] - b[r][c]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// App adapts one processor's strip of rows to the engine. Strips are
// flattened row-major into the wire format. The app implements
// core.Publisher: only the strip's first and last rows travel on the
// network — the ghost rows neighbours actually need — so message sizes and
// speculation/checking overhead are proportional to the interface, not the
// volume.
type App struct {
	grid   Grid
	pid    int
	blocks [][2]int // per-processor global row ranges [lo, hi)
	// Theta is the relative-error speculation threshold.
	Theta float64
}

// NewApp creates the adapter for processor pid. blocks lists every
// processor's row range; they must tile [0, Rows) and every processor must
// own at least one row.
func NewApp(grid Grid, blocks [][2]int, pid int, theta float64) *App {
	for i, b := range blocks {
		if b[1] <= b[0] {
			panic(fmt.Sprintf("heat: processor %d owns no rows", i))
		}
	}
	return &App{grid: grid, pid: pid, blocks: blocks, Theta: theta}
}

var _ core.App = (*App)(nil)
var _ core.Publisher = (*App)(nil)
var _ core.Neighbors = (*App)(nil)

// adjacent reports whether peer k's strip touches this processor's.
func (a *App) adjacent(k int) bool {
	lo, hi := a.rows()
	return a.blocks[k][1] == lo || a.blocks[k][0] == hi
}

// Needs implements core.Neighbors: only adjacent strips feed the stencil.
func (a *App) Needs(peer int) bool { return a.adjacent(peer) }

// NeededBy implements core.Neighbors: strip adjacency is symmetric.
func (a *App) NeededBy(peer int) bool { return a.adjacent(peer) }

func (a *App) rows() (lo, hi int) { return a.blocks[a.pid][0], a.blocks[a.pid][1] }

// InitLocal implements core.App.
func (a *App) InitLocal() []float64 {
	lo, hi := a.rows()
	full := a.grid.Initial()
	out := make([]float64, 0, (hi-lo)*a.grid.Cols)
	for r := lo; r < hi; r++ {
		out = append(out, full[r]...)
	}
	return out
}

// Publish implements core.Publisher: the strip's first and last rows,
// concatenated — everything any neighbour's stencil can touch.
func (a *App) Publish(local []float64) []float64 {
	c := a.grid.Cols
	nRows := len(local) / c
	out := make([]float64, 0, 2*c)
	out = append(out, local[:c]...)
	out = append(out, local[(nRows-1)*c:]...)
	return out
}

// owner returns the processor owning global row r.
func (a *App) owner(r int) int {
	for k, b := range a.blocks {
		if r >= b[0] && r < b[1] {
			return k
		}
	}
	panic(fmt.Sprintf("heat: row %d owned by nobody", r))
}

// ghostRow extracts the published row adjacent to the local strip from peer
// k's published payload (first row at offset 0, last row at offset Cols).
func (a *App) ghostRow(view [][]float64, r int, wantLast bool) []float64 {
	k := a.owner(r)
	payload := view[k]
	if wantLast {
		return payload[a.grid.Cols : 2*a.grid.Cols]
	}
	return payload[:a.grid.Cols]
}

// Compute implements core.App: stencil update of the owned rows, using the
// neighbours' published edge rows as ghosts.
func (a *App) Compute(view [][]float64, t int) []float64 {
	lo, hi := a.rows()
	g := a.grid
	strip := view[a.pid]
	var up, down []float64
	if lo > 0 {
		up = a.ghostRow(view, lo-1, true) // the strip above contributes its LAST row
	}
	if hi < g.Rows {
		down = a.ghostRow(view, hi, false) // the strip below contributes its FIRST row
	}
	row := func(r int) []float64 {
		switch {
		case r < lo:
			return up
		case r >= hi:
			return down
		default:
			return strip[(r-lo)*g.Cols : (r-lo+1)*g.Cols]
		}
	}
	out := make([]float64, 0, (hi-lo)*g.Cols)
	for r := lo; r < hi; r++ {
		cur := row(r)
		if r == 0 || r == g.Rows-1 {
			out = append(out, cur...)
			continue
		}
		above, below := row(r-1), row(r+1)
		for c := 0; c < g.Cols; c++ {
			left, right := c, c
			if c > 0 {
				left = c - 1
			}
			if c < g.Cols-1 {
				right = c + 1
			}
			x := cur[c]
			out = append(out, x+g.Alpha*(above[c]+below[c]+cur[left]+cur[right]-4*x))
		}
	}
	return out
}

// ComputeOps implements core.App: ~6 flops per owned cell.
func (a *App) ComputeOps() float64 {
	lo, hi := a.rows()
	return 6 * float64(hi-lo) * float64(a.grid.Cols)
}

// Check implements core.App: the published edge rows are compared
// element-wise (they are the only values that entered the local stencil).
func (a *App) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(a.Theta, 2, pred, act)
}

// RepairOps implements core.App: the bad fraction of a stencil sweep.
func (a *App) RepairOps(r core.CheckResult) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Bad) / float64(r.Total) * a.ComputeOps()
}
