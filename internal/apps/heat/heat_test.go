package heat

import (
	"math"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func TestInitialField(t *testing.T) {
	g := DefaultGrid(10, 8)
	f := g.Initial()
	if f[0][0] != 100 || f[9][7] != 0 {
		t.Errorf("boundary rows wrong: %v, %v", f[0][0], f[9][7])
	}
	if f[5][3] != 50 {
		t.Errorf("interior = %v, want 50", f[5][3])
	}
}

func TestSerialApproachesSteadyState(t *testing.T) {
	g := DefaultGrid(12, 6)
	f := g.SerialRun(4000)
	if d := MaxDiff(f, g.SteadyState()); d > 0.5 {
		t.Errorf("after 4000 steps still %.3f from steady state", d)
	}
}

func TestSerialStepPreservesBoundaries(t *testing.T) {
	g := DefaultGrid(8, 5)
	f := g.SerialRun(10)
	for c := 0; c < g.Cols; c++ {
		if f[0][c] != g.Top || f[g.Rows-1][c] != g.Bottom {
			t.Fatalf("Dirichlet rows drifted at col %d", c)
		}
	}
}

func TestMaxPrincipleHolds(t *testing.T) {
	// Explicit stable diffusion keeps values within the initial range.
	g := DefaultGrid(10, 10)
	f := g.SerialRun(500)
	for r := range f {
		for c := range f[r] {
			if f[r][c] < g.Bottom-1e-9 || f[r][c] > g.Top+1e-9 {
				t.Fatalf("value %g outside [%g, %g]", f[r][c], g.Bottom, g.Top)
			}
		}
	}
}

func runDistributed(t *testing.T, g Grid, p int, cfg core.Config, theta float64) ([]core.Result, [][]float64) {
	t.Helper()
	machines := cluster.UniformMachines(p, 1e6)
	caps := make([]float64, p)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(g.Rows, caps)
	blocks := make([][2]int, p)
	lo := 0
	for i, c := range counts {
		blocks[i] = [2]int{lo, lo + c}
		lo += c
	}
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.02}},
		cfg,
		func(pr *cluster.Proc) core.App { return NewApp(g, blocks, pr.ID(), theta) })
	if err != nil {
		t.Fatal(err)
	}
	field := make([][]float64, g.Rows)
	for k, res := range results {
		blo, bhi := blocks[k][0], blocks[k][1]
		for r := blo; r < bhi; r++ {
			field[r] = res.Final[(r-blo)*g.Cols : (r-blo+1)*g.Cols]
		}
	}
	return results, field
}

func TestDistributedBlockingMatchesSerial(t *testing.T) {
	g := DefaultGrid(16, 8)
	const iters = 30
	want := g.SerialRun(iters)
	_, got := runDistributed(t, g, 4, core.Config{FW: 0, MaxIter: iters}, 0.01)
	if d := MaxDiff(got, want); d > 1e-12 {
		t.Errorf("distributed differs from serial by %g", d)
	}
}

func TestSpeculativeHeatStaysClose(t *testing.T) {
	g := DefaultGrid(16, 8)
	const iters = 200
	want := g.SerialRun(iters)
	results, got := runDistributed(t, g, 4, core.Config{FW: 1, MaxIter: iters}, 1e-3)
	// Temperatures span [0, 100]; diffusion damps speculation error, so the
	// speculative field should track the reference closely.
	if d := MaxDiff(got, want); d > 1.0 {
		t.Errorf("speculative field differs by %.3f degrees", d)
	}
	if core.Aggregate(results).SpecsMade == 0 {
		t.Error("no speculation happened")
	}
}

func TestSpeculativeHeatReachesSteadyState(t *testing.T) {
	g := DefaultGrid(12, 6)
	_, got := runDistributed(t, g, 3, core.Config{FW: 2, MaxIter: 4000}, 1e-3)
	if d := MaxDiff(got, g.SteadyState()); d > 0.6 {
		t.Errorf("speculative run %.3f from steady state", d)
	}
}

func TestMaxDiff(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := [][]float64{{1, 2}, {3, 7}}
	if got := MaxDiff(a, b); got != 3 {
		t.Errorf("MaxDiff = %g, want 3", got)
	}
}

func TestSteadyStateProfileIsLinear(t *testing.T) {
	g := DefaultGrid(11, 4)
	s := g.SteadyState()
	for r := 0; r < g.Rows; r++ {
		want := 100 - 10*float64(r)
		if math.Abs(s[r][0]-want) > 1e-9 {
			t.Errorf("row %d: %g, want %g", r, s[r][0], want)
		}
	}
}
