package stencilreduce

import (
	"math"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
)

func maxDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func runSpec(t *testing.T, cfg Config, cc cluster.Config, rc core.Config) []core.Result {
	t.Helper()
	results, err := core.RunCluster(cc, rc, func(p *cluster.Proc) core.App {
		return NewApp(cfg, p.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

// gather concatenates the workers' final blocks into the global field.
func gather(cfg Config, results []core.Result) []float64 {
	field := make([]float64, 0, cfg.Cells)
	for w := 0; w < cfg.Workers; w++ {
		field = append(field, results[w].Final...)
	}
	return field
}

// TestSerialStepConservesDirichlet pins the reference semantics the
// distributed runs are judged against.
func TestSerialStepConservesDirichlet(t *testing.T) {
	cfg := Default(24, 3)
	field, stats := cfg.SerialRun(50)
	if field[0] != cfg.Left || field[len(field)-1] != cfg.Right {
		t.Fatalf("Dirichlet ends drifted: %g .. %g", field[0], field[len(field)-1])
	}
	for i := 1; i < len(field); i++ {
		if field[i] > field[i-1]+1e-12 {
			t.Fatalf("diffusion profile not monotone at cell %d", i)
		}
	}
	if stats[2] != cfg.Left {
		t.Fatalf("max stat %g, want the hot end %g", stats[2], cfg.Left)
	}
}

// TestExactAtFW1: with zero tolerance and FW=1 the speculative run —
// workers exchanging ghost cells over the adjacency edges, the reducer
// fanning in all blocks — is bit-identical to the serial reference.
func TestExactAtFW1(t *testing.T) {
	cfg := Default(24, 3)
	cfg.Theta = 0
	const iters = 40
	wantField, wantStats := cfg.SerialRun(iters)

	cc := cluster.Config{
		// A speed gradient keeps some workers behind their peers, so the
		// fast ranks (and the cheap reducer) must speculate to stay busy.
		Machines: cluster.LinearMachines(cfg.Procs(), 1000, 2),
		Net:      netmodel.Fixed{D: 0.2},
		Seed:     5,
	}
	results := runSpec(t, cfg, cc, core.Config{FW: 1, MaxIter: iters})

	if d := maxDiff(gather(cfg, results), wantField); d > 1e-12 {
		t.Errorf("field diverged from serial by %g", d)
	}
	if d := maxDiff(results[cfg.Reducer()].Final, wantStats); d > 1e-12 {
		t.Errorf("reduce stats diverged from serial by %g", d)
	}
	agg := core.Aggregate(results)
	if agg.SpecsMade == 0 {
		t.Error("nobody speculated despite the machine-speed gradient")
	}
	if results[cfg.Reducer()].Stats.SpecsMade == 0 {
		t.Error("the reducer never speculated on its fan-in edges")
	}
}

// TestWithinToleranceAtFW2: with a deeper window the run is no longer
// bit-exact — a rank's tick-t broadcast is computed before tick t-1 is
// validated, and stale speculative sends are never re-sent, so downstream
// ranks absorb one-step extrapolation error every tick. Diffusion damps
// the injected error modes only weakly (~alpha*(pi/n)^2 per tick, an ~n^2
// amplification at steady state), so the drift is bounded but not tiny:
// the test pins the graceful-degradation envelope, not exactness.
func TestWithinToleranceAtFW2(t *testing.T) {
	cfg := Default(32, 4)
	const iters = 60
	wantField, wantStats := cfg.SerialRun(iters)

	cc := cluster.Config{
		Machines: cluster.LinearMachines(cfg.Procs(), 1000, 2),
		Net:      netmodel.Fixed{D: 0.2},
		Seed:     9,
	}
	results := runSpec(t, cfg, cc, core.Config{FW: 2, MaxIter: iters})

	if d := maxDiff(gather(cfg, results), wantField); d > 0.15 {
		t.Errorf("field drifted %g from serial (envelope 0.15)", d)
	}
	if d := maxDiff(results[cfg.Reducer()].Final, wantStats); d > 0.15 {
		t.Errorf("reduce stats drifted %g from serial (envelope 0.15)", d)
	}
}

// TestGraphShape: the declared DepGraph has the strip adjacency plus the
// fan-in and nothing else — in particular no reducer out-edges, so the
// reducer never broadcasts.
func TestGraphShape(t *testing.T) {
	cfg := Default(24, 3)
	g := cfg.Graph()
	red := cfg.Reducer()
	if got := len(g.In(red)); got != cfg.Workers {
		t.Errorf("reducer has %d in-edges, want %d", got, cfg.Workers)
	}
	if got := len(g.Out(red)); got != 0 {
		t.Errorf("reducer has %d out-edges, want 0", got)
	}
	for w := 0; w < cfg.Workers; w++ {
		wantIn := 2 // both strip neighbours
		if w == 0 || w == cfg.Workers-1 {
			wantIn = 1
		}
		if got := len(g.In(w)); got != wantIn {
			t.Errorf("worker %d has %d in-edges, want %d", w, got, wantIn)
		}
		if !g.HasEdge(w, red) {
			t.Errorf("missing fan-in edge %d -> reducer", w)
		}
	}
}
