// Package stencilreduce composes two dependency patterns in one task
// graph: a 1-D diffusion stencil over W worker processors (cyclic pairwise
// adjacency — each worker reads its strip neighbours) feeding a fan-in
// reduce stage that folds every worker's block into running field
// statistics. The graph is declared directly through core.DepGraph /
// core.Grapher — it is not expressible as an acyclic pipeline.Graph, which
// is exactly the point: the engine takes arbitrary directed dependency
// structures, and the reduce rank speculates on all W workers at once
// while each worker speculates only on its two neighbours.
package stencilreduce

import (
	"fmt"
	"math"

	"specomp/internal/core"
)

// Config describes the global problem. Ranks 0..Workers-1 run the stencil;
// rank Workers runs the reducer, so a run spans Workers+1 processors.
type Config struct {
	// Cells is the number of 1-D rod cells, split contiguously over the
	// workers.
	Cells int
	// Workers is the number of stencil processors.
	Workers int
	// Alpha is the diffusion number (stability needs Alpha <= 0.5).
	Alpha float64
	// Left and Right are the fixed Dirichlet temperatures of the rod ends.
	Left, Right float64
	// Theta is the relative-error speculation threshold (0 = exact).
	Theta float64
}

// Default returns a stable configuration: a hot left end diffusing into a
// cold rod.
func Default(cells, workers int) Config {
	return Config{Cells: cells, Workers: workers, Alpha: 0.4, Left: 1, Right: 0, Theta: 1e-3}
}

// Procs is the number of processors the run spans (workers + reducer).
func (c Config) Procs() int { return c.Workers + 1 }

// Reducer is the reduce stage's rank.
func (c Config) Reducer() int { return c.Workers }

// Blocks returns every worker's contiguous cell range [lo, hi).
func (c Config) Blocks() [][2]int {
	if c.Workers < 1 || c.Cells < c.Workers {
		panic(fmt.Sprintf("stencilreduce: %d cells over %d workers", c.Cells, c.Workers))
	}
	blocks := make([][2]int, c.Workers)
	base, rem := c.Cells/c.Workers, c.Cells%c.Workers
	lo := 0
	for w := range blocks {
		hi := lo + base
		if w < rem {
			hi++
		}
		blocks[w] = [2]int{lo, hi}
		lo = hi
	}
	return blocks
}

// Graph returns the run's dependency structure: bidirectional edges between
// strip-adjacent workers plus one edge from every worker into the reducer.
func (c Config) Graph() *core.DepGraph {
	var edges []core.Edge
	for w := 1; w < c.Workers; w++ {
		edges = append(edges, core.Edge{From: w - 1, To: w}, core.Edge{From: w, To: w - 1})
	}
	for w := 0; w < c.Workers; w++ {
		edges = append(edges, core.Edge{From: w, To: c.Reducer()})
	}
	g, err := core.NewDepGraph(c.Procs(), edges)
	if err != nil {
		panic(err) // unreachable: generated edges are always valid
	}
	return g
}

// Initial returns the initial rod: Dirichlet ends, cold interior.
func (c Config) Initial() []float64 {
	x := make([]float64, c.Cells)
	x[0] = c.Left
	x[c.Cells-1] = c.Right
	return x
}

// SerialStep advances the rod one explicit diffusion step.
func (c Config) SerialStep(x []float64) []float64 {
	out := make([]float64, len(x))
	out[0], out[len(x)-1] = x[0], x[len(x)-1]
	for i := 1; i < len(x)-1; i++ {
		out[i] = x[i] + c.Alpha*(x[i-1]+x[i+1]-2*x[i])
	}
	return out
}

// reduceStats folds a field into the reducer's output row: mean, rms, max.
func reduceStats(x []float64, out []float64) {
	var sum, sq, max float64
	for _, v := range x {
		sum += v
		sq += v * v
		if v > max {
			max = v
		}
	}
	n := float64(len(x))
	out[0] = sum / n
	out[1] = math.Sqrt(sq / n)
	out[2] = max
}

// SerialRun advances iters steps and returns the final field plus the
// reducer's final statistics row. The reducer output at tick t+1 reflects
// the field at tick t (it reads the workers' tick-t broadcasts), so the
// final row is the stats of the field one step before the end.
func (c Config) SerialRun(iters int) (field, stats []float64) {
	x := c.Initial()
	stats = make([]float64, 3)
	for t := 0; t < iters; t++ {
		reduceStats(x, stats)
		x = c.SerialStep(x)
	}
	return x, stats
}

// App is one rank's adapter: a stencil worker or the reducer.
type App struct {
	cfg    Config
	rank   int
	blocks [][2]int
	g      *core.DepGraph
	out    []float64
}

var (
	_ core.App     = (*App)(nil)
	_ core.Grapher = (*App)(nil)
)

// NewApp creates the adapter for the given rank (worker or reducer).
func NewApp(cfg Config, rank int) *App {
	a := &App{cfg: cfg, rank: rank, blocks: cfg.Blocks(), g: cfg.Graph()}
	if rank == cfg.Reducer() {
		a.out = make([]float64, 3)
	} else {
		lo, hi := a.blocks[rank][0], a.blocks[rank][1]
		a.out = make([]float64, hi-lo)
	}
	return a
}

func (a *App) Graph(p int) *core.DepGraph { return a.g }

func (a *App) InitLocal() []float64 {
	init := make([]float64, len(a.out))
	if a.rank != a.cfg.Reducer() {
		full := a.cfg.Initial()
		copy(init, full[a.blocks[a.rank][0]:a.blocks[a.rank][1]])
	}
	return init
}

func (a *App) Compute(view [][]float64, t int) []float64 {
	if a.rank == a.cfg.Reducer() {
		return a.reduce(view)
	}
	lo, hi := a.blocks[a.rank][0], a.blocks[a.rank][1]
	self := view[a.rank]
	for j := 0; j < hi-lo; j++ {
		gi := lo + j
		if gi == 0 || gi == a.cfg.Cells-1 {
			a.out[j] = self[j] // Dirichlet ends
			continue
		}
		left := gi - 1
		var lv, rv float64
		if left < lo {
			nb := view[a.rank-1]
			lv = nb[len(nb)-1]
		} else {
			lv = self[j-1]
		}
		if gi+1 >= hi {
			rv = view[a.rank+1][0]
		} else {
			rv = self[j+1]
		}
		a.out[j] = self[j] + a.cfg.Alpha*(lv+rv-2*self[j])
	}
	return a.out
}

// reduce folds every worker's tick-t block into the statistics row. It
// iterates blocks in rank order, reproducing reduceStats over the
// concatenated field exactly.
func (a *App) reduce(view [][]float64) []float64 {
	var sum, sq, max float64
	for w := 0; w < a.cfg.Workers; w++ {
		for _, v := range view[w] {
			sum += v
			sq += v * v
			if v > max {
				max = v
			}
		}
	}
	n := float64(a.cfg.Cells)
	a.out[0] = sum / n
	a.out[1] = math.Sqrt(sq / n)
	a.out[2] = max
	return a.out
}

func (a *App) ComputeOps() float64 {
	if a.rank == a.cfg.Reducer() {
		return float64(2 * a.cfg.Cells)
	}
	return float64(5 * len(a.out))
}

func (a *App) Check(peer int, predicted, actual, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(a.cfg.Theta, 1, predicted, actual)
}

func (a *App) RepairOps(r core.CheckResult) float64 {
	ops := a.ComputeOps()
	if r.Total == 0 {
		return ops
	}
	return ops * float64(r.Bad) / float64(r.Total)
}
