package cluster

import "fmt"

// LinearMachines builds p machines whose capacities vary linearly from
// fastest down to fastest/ratio — the §4 model instantiation where the
// fastest processor P1 is `ratio` (10×) faster than the slowest P16. The
// machines are ordered fastest first, matching the paper's ordered set P.
//
// For p == 1 the single machine has the fastest capacity.
func LinearMachines(p int, fastest, ratio float64) []Machine {
	if p <= 0 {
		panic("cluster: p must be positive")
	}
	if fastest <= 0 || ratio < 1 {
		panic("cluster: fastest must be > 0 and ratio >= 1")
	}
	ms := make([]Machine, p)
	slowest := fastest / ratio
	for i := range ms {
		f := 0.0
		if p > 1 {
			f = float64(i) / float64(p-1)
		}
		ms[i] = Machine{
			Name: fmt.Sprintf("ws%02d", i+1),
			Ops:  fastest - f*(fastest-slowest),
		}
	}
	return ms
}

// UniformMachines builds p identical machines of the given capacity.
func UniformMachines(p int, ops float64) []Machine {
	if p <= 0 {
		panic("cluster: p must be positive")
	}
	ms := make([]Machine, p)
	for i := range ms {
		ms[i] = Machine{Name: fmt.Sprintf("ws%02d", i+1), Ops: ops}
	}
	return ms
}

// MeasuredMachines wraps explicit capacities (e.g. benchmarked MIPS figures,
// as the paper measured for its Sparc set), ordered as given.
func MeasuredMachines(ops []float64) []Machine {
	ms := make([]Machine, len(ops))
	for i, o := range ops {
		if o <= 0 {
			panic("cluster: non-positive capacity")
		}
		ms[i] = Machine{Name: fmt.Sprintf("ws%02d", i+1), Ops: o}
	}
	return ms
}

// TotalOps returns the aggregate capacity Σ M_i of the machine set.
func TotalOps(ms []Machine) float64 {
	var sum float64
	for _, m := range ms {
		sum += m.Ops
	}
	return sum
}
