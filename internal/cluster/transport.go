package cluster

// Transport is the full processor-facing contract an execution substrate
// offers the engine: identity, clocks, work charging, point-to-point and
// zero-copy sends, and the three receive flavours (non-blocking, blocking,
// deadline-bounded). Three backends implement it:
//
//   - *cluster.Proc — the deterministic simulated cluster (virtual time)
//   - realtime      — goroutines and channels (wall clock, one process)
//   - distnet       — OS processes over TCP sockets (wall clock, many
//     processes)
//
// core.Transport is the engine's minimal subset of this contract (it treats
// SendShared and RecvDeadline as optional capability upgrades); any
// cluster.Transport therefore runs the engine with every capability
// enabled. Each backend carries a compile-time assertion against this
// interface so the contract cannot drift silently.
//
// A transport may coalesce several sent messages into one physical frame
// (distnet batches per-iteration sends to the same peer) and may delay a
// message briefly while waiting for company, provided per-(src, dst)
// delivery order is preserved and a message is never held once the
// receiver is blocked in Recv/RecvDeadline. Senders and receivers observe
// ordinary message semantics either way; batching is invisible above the
// Transport contract.
type Transport interface {
	// ID returns the processor index (0-based).
	ID() int
	// P returns the number of processors in the run.
	P() int
	// Now returns the substrate's clock in seconds (virtual or wall).
	Now() float64
	// Compute charges ops operations of work to the clock under phase ph.
	// Wall-clock substrates make this a no-op: the work already happened
	// inside the app.
	Compute(ops float64, ph Phase)
	// Send transmits data to processor dst, copying the payload so the
	// caller may reuse its buffer immediately.
	Send(dst, tag, iter int, data []float64)
	// SendShared is Send without the defensive copy: the transport may
	// reference data directly under the caller's guarantee that the slice
	// is never mutated afterwards.
	SendShared(dst, tag, iter int, data []float64)
	// TryRecv returns a queued message matching (src, tag) without
	// blocking; use Any for either field to match anything.
	TryRecv(src, tag int) (Message, bool)
	// Recv blocks until a message matching (src, tag) arrives.
	Recv(src, tag int) Message
	// RecvDeadline blocks until a matching message arrives or timeout
	// seconds elapse; ok=false means the deadline expired.
	RecvDeadline(src, tag int, timeout float64) (Message, bool)
	// PhaseTime returns the accumulated clock time spent in ph.
	PhaseTime(ph Phase) float64
}

// The simulated processor is the reference implementation of the contract.
var _ Transport = (*Proc)(nil)
