package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"specomp/internal/netmodel"
	"specomp/internal/obs"
	"specomp/internal/simtime"
)

func twoProcCluster(net netmodel.Model) *Cluster {
	return New(Config{
		Machines: []Machine{{Name: "fast", Ops: 100}, {Name: "slow", Ops: 10}},
		Net:      net,
	})
}

func TestComputeChargesTimeByCapacity(t *testing.T) {
	c := twoProcCluster(netmodel.Fixed{D: 0})
	var fastEnd, slowEnd float64
	c.Start(func(p *Proc) {
		p.Compute(1000, PhaseCompute)
		if p.ID() == 0 {
			fastEnd = p.Now()
		} else {
			slowEnd = p.Now()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if fastEnd != 10 {
		t.Errorf("fast proc finished at %g, want 10", fastEnd)
	}
	if slowEnd != 100 {
		t.Errorf("slow proc finished at %g, want 100", slowEnd)
	}
	if got := c.Proc(0).PhaseTime(PhaseCompute); got != 10 {
		t.Errorf("fast compute clock = %g, want 10", got)
	}
}

func TestSendRecvLatency(t *testing.T) {
	c := twoProcCluster(netmodel.Fixed{D: 2.5})
	var recvAt float64
	var got Message
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 3, []float64{1, 2, 3})
		} else {
			got = p.Recv(0, 7)
			recvAt = p.Now()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 2.5 {
		t.Errorf("received at %g, want 2.5", recvAt)
	}
	if got.Tag != 7 || got.Iter != 3 || len(got.Data) != 3 || got.Data[2] != 3 {
		t.Errorf("message = %+v", got)
	}
	if got.SentAt != 0 || got.DeliveredAt != 2.5 {
		t.Errorf("timestamps = %g, %g", got.SentAt, got.DeliveredAt)
	}
	// Blocked time shows up on the comm clock.
	if commClock := c.Proc(1).PhaseTime(PhaseComm); commClock != 2.5 {
		t.Errorf("receiver comm clock = %g, want 2.5", commClock)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	c := twoProcCluster(netmodel.Fixed{D: 1})
	var got Message
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			data := []float64{42}
			p.Send(1, 0, 0, data)
			data[0] = -1 // mutation after send must not affect the message
		} else {
			got = p.Recv(0, 0)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 42 {
		t.Errorf("payload mutated in flight: %v", got.Data)
	}
}

func TestTryRecvNonBlocking(t *testing.T) {
	c := twoProcCluster(netmodel.Fixed{D: 5})
	var early, late bool
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, 0, nil)
		} else {
			_, early = p.TryRecv(0, 1) // message still in flight
			p.Idle(10)
			_, late = p.TryRecv(0, 1) // delivered by now
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if early {
		t.Error("TryRecv returned a message before delivery")
	}
	if !late {
		t.Error("TryRecv missed a delivered message")
	}
}

func TestRecvFiltersBySourceAndTag(t *testing.T) {
	c := New(Config{
		Machines: UniformMachines(3, 100),
		Net:      netmodel.Fixed{D: 1},
	})
	var fromTwo Message
	c.Start(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(2, 9, 0, []float64{0})
		case 1:
			p.Send(2, 9, 0, []float64{1})
		case 2:
			fromTwo = p.Recv(1, 9) // specifically from proc 1
			p.Recv(0, 9)           // then drain the other
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if fromTwo.Src != 1 || fromTwo.Data[0] != 1 {
		t.Errorf("filtered recv returned %+v", fromTwo)
	}
}

func TestRecvAnyMatchesWildcard(t *testing.T) {
	c := twoProcCluster(netmodel.Fixed{D: 1})
	var got Message
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 33, 0, nil)
		} else {
			got = p.Recv(Any, Any)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Tag != 33 {
		t.Errorf("wildcard recv got tag %d", got.Tag)
	}
}

func TestDeadlockWhenNoSender(t *testing.T) {
	c := twoProcCluster(netmodel.Fixed{D: 1})
	c.Start(func(p *Proc) {
		if p.ID() == 1 {
			p.Recv(0, 0) // never sent
		}
	})
	err := c.Run()
	if !errors.Is(err, simtime.ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}, {Name: "c", Ops: 100}},
		Net:      netmodel.Fixed{D: 0.5},
	})
	after := make([]float64, 3)
	c.Start(func(p *Proc) {
		p.Idle(float64(p.ID())) // stagger arrivals: 0s, 1s, 2s
		p.Barrier(99)
		after[p.ID()] = p.Now()
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	// Nobody can leave the barrier before the last arrival at t=2, and the
	// earlier arrivers must additionally wait for the last proc's message
	// (sent at t=2, 0.5s latency).
	for i, ts := range after {
		if ts < 2 {
			t.Errorf("proc %d left barrier at %g, want >= 2", i, ts)
		}
		if i != 2 && ts < 2.5 {
			t.Errorf("early-arriving proc %d left barrier at %g, want >= 2.5", i, ts)
		}
	}
}

func TestSendOpsChargedToSender(t *testing.T) {
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:      netmodel.Fixed{D: 0},
		SendOps:  200, // 2 seconds at 100 ops/s
	})
	var sendDone float64
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 0, 0, nil)
			sendDone = p.Now()
		} else {
			p.Recv(0, 0)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 2 {
		t.Errorf("send completed at %g, want 2", sendDone)
	}
	if got := c.Proc(0).PhaseTime(PhaseComm); got != 2 {
		t.Errorf("sender comm clock = %g, want 2", got)
	}
}

func TestStatsCounters(t *testing.T) {
	c := twoProcCluster(netmodel.Fixed{D: 1})
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 0, 0, []float64{1, 2})
			p.Send(1, 0, 1, []float64{3})
		} else {
			p.Recv(0, 0)
			p.Recv(0, 0)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	sent, _, bytes := c.Proc(0).Stats()
	_, recvd, _ := c.Proc(1).Stats()
	if sent != 2 || recvd != 2 {
		t.Errorf("sent=%d recvd=%d, want 2 2", sent, recvd)
	}
	wantBytes := (8*2 + 64) + (8*1 + 64)
	if bytes != wantBytes {
		t.Errorf("bytes=%d, want %d", bytes, wantBytes)
	}
}

func TestLinearMachines(t *testing.T) {
	ms := LinearMachines(16, 1000, 10)
	if len(ms) != 16 {
		t.Fatalf("len = %d", len(ms))
	}
	if ms[0].Ops != 1000 {
		t.Errorf("fastest = %g, want 1000", ms[0].Ops)
	}
	if math.Abs(ms[15].Ops-100) > 1e-9 {
		t.Errorf("slowest = %g, want 100", ms[15].Ops)
	}
	for i := 1; i < 16; i++ {
		if ms[i].Ops >= ms[i-1].Ops {
			t.Errorf("capacities not strictly decreasing at %d", i)
		}
	}
	// Single machine: fastest capacity.
	one := LinearMachines(1, 500, 10)
	if one[0].Ops != 500 {
		t.Errorf("p=1 capacity = %g, want 500", one[0].Ops)
	}
}

func TestTotalOps(t *testing.T) {
	ms := UniformMachines(4, 25)
	if got := TotalOps(ms); got != 100 {
		t.Errorf("TotalOps = %g, want 100", got)
	}
}

// Property: for any machine count and staggered send times, every message is
// delivered exactly once and receive order from a single sender over a FIFO
// (fixed-delay) link preserves send order.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(nMsgs8 uint8) bool {
		n := int(nMsgs8%20) + 1
		c := twoProcCluster(netmodel.Fixed{D: 0.7})
		var got []int
		c.Start(func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < n; i++ {
					p.Send(1, 5, i, []float64{float64(i)})
					p.Idle(0.01)
				}
			} else {
				for i := 0; i < n; i++ {
					m := p.Recv(0, 5)
					got = append(got, m.Iter)
				}
			}
		})
		if err := c.Run(); err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// dropFirstN is a deterministic FaultyModel that loses the first N
// transmissions it sees, then delivers everything.
type dropFirstN struct {
	inner netmodel.Model
	n     int
	seen  int
}

func (m *dropFirstN) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	return m.inner.Delay(msg, rng)
}

func (m *dropFirstN) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	m.seen++
	if m.seen <= m.n {
		return nil
	}
	return []float64{m.inner.Delay(msg, rng)}
}

func TestSharedBusResetOnReuse(t *testing.T) {
	// Regression: reusing one SharedBus value across sequential simulations
	// must not carry busyUntil over — the second run's virtual clock
	// restarts at 0, so stale state would inflate every delay.
	bus := &netmodel.SharedBus{Overhead: 1}
	run := func() float64 {
		c := New(Config{
			Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
			Net:      bus,
		})
		var recvAt float64
		c.Start(func(p *Proc) {
			if p.ID() == 0 {
				p.Send(1, 1, 0, []float64{1})
				p.Send(1, 2, 0, []float64{2})
			} else {
				p.Recv(0, 1)
				p.Recv(0, 2)
				recvAt = p.Now()
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return recvAt
	}
	first := run()
	second := run()
	if first != second {
		t.Errorf("reused SharedBus inflated delays: first run recv at %g, second at %g", first, second)
	}
}

func TestMsgHeaderBytesSentinel(t *testing.T) {
	run := func(header int) int {
		c := New(Config{
			Machines:       []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
			Net:            netmodel.Fixed{D: 0.1},
			MsgHeaderBytes: header,
		})
		c.Start(func(p *Proc) {
			if p.ID() == 0 {
				p.Send(1, 1, 0, []float64{1, 2})
			} else {
				p.Recv(0, 1)
			}
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		_, _, bytes := c.Proc(0).Stats()
		return bytes
	}
	if got := run(0); got != 16+64 {
		t.Errorf("default header: bytesSent = %d, want %d", got, 16+64)
	}
	if got := run(NoMsgHeader); got != 16 {
		t.Errorf("NoMsgHeader: bytesSent = %d, want 16 (zero framing)", got)
	}
	if got := run(10); got != 16+10 {
		t.Errorf("explicit header: bytesSent = %d, want %d", got, 16+10)
	}
}

func TestReliableDeliveryRecoversDrops(t *testing.T) {
	// The first two transmissions vanish; the reliable layer must retransmit
	// until the message lands, and count the retries.
	c := New(Config{
		Machines:     []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:          &dropFirstN{inner: netmodel.Fixed{D: 0.1}, n: 2},
		Reliable:     true,
		RetryTimeout: 0.5,
	})
	var got Message
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 3, []float64{42})
		} else {
			got = p.Recv(0, 7)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 1 || got.Data[0] != 42 {
		t.Fatalf("message not recovered: %+v", got)
	}
	ns := c.Proc(0).NetStats()
	if ns.Retries != 2 {
		t.Errorf("Retries = %d, want 2", ns.Retries)
	}
	if ns.MsgsSent != 1 {
		t.Errorf("MsgsSent = %d, want 1 (logical sends)", ns.MsgsSent)
	}
}

func TestWithoutReliableDropDeadlocks(t *testing.T) {
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:      &dropFirstN{inner: netmodel.Fixed{D: 0.1}, n: 1},
	})
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 0, nil)
		} else {
			p.Recv(0, 7)
		}
	})
	if err := c.Run(); !errors.Is(err, simtime.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// duplicateAll delivers every transmission twice.
type duplicateAll struct{ inner netmodel.Model }

func (m duplicateAll) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	return m.inner.Delay(msg, rng)
}

func (m duplicateAll) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	d := m.inner.Delay(msg, rng)
	return []float64{d, d + 0.05}
}

func TestReliableDeliverySuppressesDuplicates(t *testing.T) {
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:      duplicateAll{inner: netmodel.Fixed{D: 0.1}},
		Reliable: true,
	})
	var recvd int
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 0, []float64{1})
			p.Send(1, 7, 1, []float64{2})
		} else {
			p.Recv(0, 7)
			p.Recv(0, 7)
			p.Idle(1) // let the duplicate copies arrive
			for {
				if _, ok := p.TryRecv(Any, Any); !ok {
					break
				}
				recvd++
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if recvd != 0 {
		t.Errorf("%d duplicate messages leaked into the mailbox", recvd)
	}
	if dups := c.Proc(1).NetStats().DupsDropped; dups == 0 {
		t.Error("no duplicates suppressed, expected some")
	}
}

func TestRecvDeadlineTimesOutAndRecovers(t *testing.T) {
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:      netmodel.Fixed{D: 2},
	})
	var timedOut bool
	var gotLate bool
	var wakeAt float64
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 0, []float64{1})
		} else {
			_, ok := p.RecvDeadline(0, 7, 0.5)
			timedOut = !ok
			wakeAt = p.Now()
			_, ok = p.RecvDeadline(0, 7, 5)
			gotLate = ok
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Error("RecvDeadline did not time out before delivery")
	}
	if wakeAt != 0.5 {
		t.Errorf("timed out at %g, want 0.5", wakeAt)
	}
	if !gotLate {
		t.Error("second RecvDeadline missed the late message")
	}
}

func TestTransportMetricsAndJournal(t *testing.T) {
	reg := obs.NewRegistry()
	jr := obs.NewJournal()
	c := New(Config{
		Machines:     []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:          &dropFirstN{inner: netmodel.Fixed{D: 0.1}, n: 2},
		Reliable:     true,
		RetryTimeout: 0.5,
		Metrics:      reg,
		Journal:      jr,
	})
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 7, 3, []float64{42})
		} else {
			p.Recv(0, 7)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	totals := reg.Totals()
	if got := int(totals[MetricRetransmits]); got != c.Proc(0).NetStats().Retries {
		t.Errorf("retransmit counter = %d, want %d", got, c.Proc(0).NetStats().Retries)
	}
	if got := int(totals[MetricMsgsSent]); got != 1 {
		t.Errorf("msgs_sent counter = %d, want 1", got)
	}
	// The data message was delivered once (retransmissions that vanished do
	// not reach deliver); its latency was observed.
	if got := int(totals[MetricMsgLatency+"_count"]); got != 1 {
		t.Errorf("latency histogram count = %d, want 1", got)
	}
	if got := jr.Count(obs.EvRetrans); got != 2 {
		t.Errorf("journal retrans events = %d, want 2", got)
	}
	for _, e := range jr.Events() {
		if e.Kind == obs.EvRetrans && (e.Proc != 0 || e.Iter != 3 || e.Peer != 1) {
			t.Errorf("retrans event mislabeled: %+v", e)
		}
	}
}

func TestNilObsConfigCostsNothing(t *testing.T) {
	// No registry, no journal: the same run must behave identically (this is
	// the default path every seed test exercises; here we just pin that the
	// handles stay nil).
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:      netmodel.Fixed{D: 0.1},
	})
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, 0, []float64{1})
		} else {
			p.Recv(0, 1)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Proc(0).obsMsgsSent != nil || c.Proc(1).obsLatency != nil {
		t.Error("obs handles allocated without a registry")
	}
}
