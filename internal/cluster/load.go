package cluster

import (
	"math"
	"math/rand"
)

// LoadModel describes time-varying background CPU load on the simulated
// workstations. The paper's testbed was timeshared Sparcs: "background
// processor loads cause the computation times on processors to vary" — the
// effect it names as one source of model-vs-measured error. A LoadModel
// returns a slowdown factor ≥ 1 by which a computation's duration is
// multiplied.
type LoadModel interface {
	Factor(proc int, now float64, rng *rand.Rand) float64
}

// NoLoad is the default: dedicated machines, factor 1.
type NoLoad struct{}

// Factor implements LoadModel.
func (NoLoad) Factor(int, float64, *rand.Rand) float64 { return 1 }

// BurstyLoad models sporadic timesharing competition: with probability Prob
// per computation, the machine runs Slowdown× slower (another user's job is
// resident); otherwise it is unloaded.
type BurstyLoad struct {
	Prob     float64
	Slowdown float64
}

// Factor implements LoadModel.
func (b BurstyLoad) Factor(_ int, _ float64, rng *rand.Rand) float64 {
	if b.Prob > 0 && rng.Float64() < b.Prob {
		if b.Slowdown < 1 {
			return 1
		}
		return b.Slowdown
	}
	return 1
}

// PeriodicLoad models a slow daily/periodic swing: the factor oscillates
// between 1 and 1+Amplitude with the given period, phase-shifted per
// processor so machines do not slow down in lockstep.
type PeriodicLoad struct {
	Amplitude float64
	Period    float64
}

// Factor implements LoadModel.
func (p PeriodicLoad) Factor(proc int, now float64, _ *rand.Rand) float64 {
	if p.Period <= 0 || p.Amplitude <= 0 {
		return 1
	}
	phase := 2 * math.Pi * (now/p.Period + float64(proc)*0.37)
	return 1 + p.Amplitude*0.5*(1+math.Sin(phase))
}
