package cluster

import (
	"testing"
	"testing/quick"

	"specomp/internal/netmodel"
)

// TestMessageStormExactlyOnceProperty floods a random cluster with tagged
// messages under a jittery network and verifies every message is delivered
// exactly once with its payload intact.
func TestMessageStormExactlyOnceProperty(t *testing.T) {
	f := func(p8, msgs8 uint8, seed int64) bool {
		p := int(p8%5) + 2
		perPair := int(msgs8%6) + 1
		c := New(Config{
			Machines: UniformMachines(p, 1000),
			Net:      netmodel.Jitter{Inner: netmodel.Fixed{D: 0.2}, Frac: 0.8},
			Seed:     seed,
		})
		got := make([]map[[3]int]bool, p) // receiver -> set of (src, tag, iter)
		for i := range got {
			got[i] = make(map[[3]int]bool)
		}
		ok := true
		c.Start(func(pr *Proc) {
			// Send perPair messages to every other processor.
			for k := 0; k < p; k++ {
				if k == pr.ID() {
					continue
				}
				for m := 0; m < perPair; m++ {
					pr.Send(k, 7, m, []float64{float64(pr.ID()*1000 + m)})
				}
			}
			// Receive everything addressed to us.
			for i := 0; i < (p-1)*perPair; i++ {
				msg := pr.Recv(Any, 7)
				key := [3]int{msg.Src, msg.Tag, msg.Iter}
				if got[pr.ID()][key] {
					ok = false // duplicate
				}
				got[pr.ID()][key] = true
				if msg.Data[0] != float64(msg.Src*1000+msg.Iter) {
					ok = false // corrupted payload
				}
			}
		})
		if err := c.Run(); err != nil {
			return false
		}
		if !ok {
			return false
		}
		for i := range got {
			if len(got[i]) != (p-1)*perPair {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestManyProcessesManyMessages is a larger smoke test: 12 processors,
// shared bus, multiple rounds of all-to-all exchange.
func TestManyProcessesManyMessages(t *testing.T) {
	const p, rounds = 12, 5
	c := New(Config{
		Machines: LinearMachines(p, 1e5, 8),
		Net:      &netmodel.SharedBus{Overhead: 0.001, BytesPerSec: 1e6},
		Seed:     3,
	})
	recvd := make([]int, p)
	c.Start(func(pr *Proc) {
		for r := 0; r < rounds; r++ {
			for k := 0; k < p; k++ {
				if k != pr.ID() {
					pr.Send(k, r, r, []float64{1, 2, 3})
				}
			}
			for k := 0; k < p-1; k++ {
				pr.Recv(Any, r)
				recvd[pr.ID()]++
			}
			pr.Compute(100, PhaseCompute)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range recvd {
		if n != rounds*(p-1) {
			t.Errorf("proc %d received %d, want %d", i, n, rounds*(p-1))
		}
	}
	if c.Now() <= 0 {
		t.Error("no virtual time elapsed")
	}
}
