package cluster

import (
	"math/rand"
	"testing"

	"specomp/internal/netmodel"
)

func TestNoLoadIsIdentity(t *testing.T) {
	if (NoLoad{}).Factor(0, 10, nil) != 1 {
		t.Error("NoLoad factor != 1")
	}
}

func TestBurstyLoadStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := BurstyLoad{Prob: 0.3, Slowdown: 4}
	slow, total := 0, 5000
	for i := 0; i < total; i++ {
		f := b.Factor(0, 0, rng)
		switch f {
		case 1:
		case 4:
			slow++
		default:
			t.Fatalf("unexpected factor %v", f)
		}
	}
	frac := float64(slow) / float64(total)
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("slow fraction %.3f, want ~0.3", frac)
	}
	// Degenerate slowdown below 1 clamps to 1.
	b2 := BurstyLoad{Prob: 1, Slowdown: 0.5}
	if b2.Factor(0, 0, rng) != 1 {
		t.Error("slowdown < 1 not clamped")
	}
}

func TestPeriodicLoadBoundsAndPhases(t *testing.T) {
	p := PeriodicLoad{Amplitude: 0.6, Period: 10}
	for now := 0.0; now < 30; now += 0.37 {
		f := p.Factor(1, now, nil)
		if f < 1 || f > 1.6+1e-12 {
			t.Fatalf("factor %v outside [1, 1.6]", f)
		}
	}
	// Different processors are phase-shifted.
	if p.Factor(0, 5, nil) == p.Factor(1, 5, nil) {
		t.Error("processors slowed in lockstep")
	}
	if (PeriodicLoad{}).Factor(0, 3, nil) != 1 {
		t.Error("zero-amplitude periodic load should be identity")
	}
}

func TestLoadSlowsComputation(t *testing.T) {
	run := func(load LoadModel) float64 {
		c := New(Config{
			Machines: UniformMachines(1, 100),
			Net:      netmodel.Fixed{D: 0},
			Load:     load,
		})
		var end float64
		c.Start(func(p *Proc) {
			p.Compute(1000, PhaseCompute) // 10 s unloaded
			end = p.Now()
		})
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	unloaded := run(nil)
	loaded := run(BurstyLoad{Prob: 1, Slowdown: 3})
	if unloaded != 10 {
		t.Errorf("unloaded compute took %v, want 10", unloaded)
	}
	if loaded != 30 {
		t.Errorf("fully loaded compute took %v, want 30", loaded)
	}
}

func TestPerPairTopology(t *testing.T) {
	extra := netmodel.TwoSwitch(4, 2, 0.5)
	m := netmodel.PerPair{Inner: netmodel.Fixed{D: 0.1}, Extra: extra}
	cases := []struct {
		src, dst int
		want     float64
	}{
		{0, 1, 0.1}, // same switch
		{2, 3, 0.1}, // same switch
		{0, 2, 0.6}, // cross
		{3, 1, 0.6}, // cross
	}
	for _, c := range cases {
		if got := m.Delay(netmodel.Msg{Src: c.src, Dst: c.dst}, nil); got != c.want {
			t.Errorf("%d->%d: %v, want %v", c.src, c.dst, got, c.want)
		}
	}
	// Out-of-range indices are tolerated.
	if got := m.Delay(netmodel.Msg{Src: 9, Dst: 0}, nil); got != 0.1 {
		t.Errorf("out-of-range src: %v", got)
	}
}

func TestCrossSwitchClusterRuns(t *testing.T) {
	c := New(Config{
		Machines: UniformMachines(4, 1000),
		Net: netmodel.PerPair{
			Inner: netmodel.Fixed{D: 0.05},
			Extra: netmodel.TwoSwitch(4, 2, 1.0),
		},
	})
	arrive := make([]float64, 4)
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			for k := 1; k < 4; k++ {
				p.Send(k, 1, 0, nil)
			}
		} else {
			p.Recv(0, 1)
			arrive[p.ID()] = p.Now()
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if arrive[1] != 0.05 {
		t.Errorf("same-switch delivery at %v", arrive[1])
	}
	if arrive[2] != 1.05 || arrive[3] != 1.05 {
		t.Errorf("cross-switch deliveries at %v, %v, want 1.05", arrive[2], arrive[3])
	}
}
