// Package cluster simulates a heterogeneous workstation network with
// message passing — the substrate the paper ran on (SUN/Sparc workstations
// under PVM on shared Ethernet).
//
// Each simulated processor runs a user-supplied body function in its own
// goroutine, scheduled deterministically by a simtime.Kernel. Computation is
// charged to the virtual clock through Compute (operations divided by the
// machine's capacity M_i), and messages travel through a pluggable
// netmodel.Model. Per-processor phase clocks record where virtual time goes
// (compute / blocked-on-receive / speculate / check / correct), which is
// exactly the instrumentation behind the paper's Table 2.
package cluster

import (
	"fmt"
	"strconv"

	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
	"specomp/internal/simtime"
)

// Transport metric names (Prometheus families; every series carries a proc
// label — the receiving processor for latency, the acting one otherwise).
const (
	MetricMsgsSent    = "specomp_net_msgs_sent_total"
	MetricBytesSent   = "specomp_net_bytes_sent_total"
	MetricRetransmits = "specomp_net_retransmits_total"
	MetricDupsDropped = "specomp_net_dups_dropped_total"
	MetricGiveUps     = "specomp_net_giveups_total"
	MetricMsgLatency  = "specomp_net_message_latency_seconds"
	MetricCrashes     = "specomp_proc_crashes_total"
	MetricDowntime    = "specomp_proc_downtime_seconds_total"
	MetricDeadDrops   = "specomp_net_dead_drops_total"
	MetricPeerDead    = "specomp_net_peer_dead_drops_total"
	MetricStaleDrops  = "specomp_net_stale_epoch_drops_total"
)

// Phase labels where a processor's virtual time is spent.
type Phase int

// Phases used by the engine's accounting, mirroring Table 2's columns.
const (
	PhaseCompute Phase = iota
	PhaseComm
	PhaseSpec
	PhaseCheck
	PhaseCorrect
	// PhaseOverrun is compute performed past the forward window while a peer
	// is overdue — the engine's graceful-degradation mode.
	PhaseOverrun
	PhaseOther
	numPhases
)

// String returns the phase name.
func (ph Phase) String() string {
	switch ph {
	case PhaseCompute:
		return "compute"
	case PhaseComm:
		return "comm"
	case PhaseSpec:
		return "spec"
	case PhaseCheck:
		return "check"
	case PhaseCorrect:
		return "correct"
	case PhaseOverrun:
		return "overrun"
	default:
		return "other"
	}
}

// Machine describes one simulated workstation.
type Machine struct {
	Name string
	Ops  float64 // capacity M_i: operations per second
}

// NoMsgHeader is the Config.MsgHeaderBytes sentinel for a network with zero
// protocol framing overhead. (The zero value of MsgHeaderBytes selects the
// 64-byte default, so "explicitly no header" needs its own value.)
const NoMsgHeader = -1

// Config parameterizes a Cluster.
type Config struct {
	Machines []Machine
	Net      netmodel.Model
	Seed     int64
	Horizon  float64 // optional virtual-time limit
	// MsgHeaderBytes is added to every message's payload size when computing
	// network delays (protocol framing). Zero selects the default of 64;
	// use NoMsgHeader (-1) to model a network with no framing overhead.
	MsgHeaderBytes int
	// SendOps is the CPU cost, in operations, charged to the sender per
	// message (packing and protocol work).
	SendOps float64
	// OnSpan, if non-nil, receives every interval of virtual time a
	// processor spends in a phase (used to render execution timelines).
	OnSpan func(proc int, ph Phase, start, end float64)
	// OnEvent, if non-nil, receives point events — reliable-layer
	// retransmissions ("retrans"), duplicate suppressions ("dup"), abandoned
	// messages ("giveup"), and engine notes such as degradation overruns —
	// for timeline rendering alongside OnSpan.
	OnEvent func(proc int, kind string, t float64)
	// Load models background CPU competition on the timeshared machines;
	// nil means dedicated machines (factor 1).
	Load LoadModel

	// Reliable enables a reliable-delivery layer over the (possibly faulty)
	// network: every message carries a per-link sequence number, receivers
	// acknowledge each delivery, and senders retransmit unacknowledged
	// messages after RetryTimeout with exponential backoff. Duplicate
	// deliveries (from the network or from retransmissions whose ack was
	// lost) are suppressed at the receiver. Acks travel through the same
	// network model as data and can themselves be lost.
	Reliable bool
	// RetryTimeout is the initial retransmission timeout in virtual seconds
	// (default 0.5).
	RetryTimeout float64
	// RetryBackoff multiplies the timeout after every retransmission
	// (default 2).
	RetryBackoff float64
	// MaxRetries bounds retransmissions per message (default 12); after
	// that the message is abandoned and the per-processor give-up counter
	// increments.
	MaxRetries int

	// Crashes schedules processor crash/restart events (see
	// faults.CrashEvent): at each event's time the target processor aborts
	// whatever it is doing, loses its mailbox and reliable-delivery state,
	// stays dead for the event's downtime (deliveries to it are dropped,
	// and the reliable layer of its peers stops retransmitting to it), then
	// restarts its body with a bumped incarnation epoch. Messages stamped
	// with an older epoch of a peer are discarded on arrival.
	Crashes faults.CrashSchedule

	// Metrics, when non-nil, receives transport-level counters and the
	// message-latency histogram (per-processor labels). Nil costs only nil
	// checks on the delivery path.
	Metrics *obs.Registry
	// Journal, when non-nil, receives reliable-layer events (retrans, dup,
	// giveup) stamped with virtual time, alongside whatever the engine
	// journals through its own Config.
	Journal *obs.Journal
}

// Message is a tagged payload exchanged between processors.
type Message struct {
	Src, Dst    int
	Tag         int
	Iter        int // iteration stamp, used by the synchronous engine
	Epoch       int // sender's incarnation epoch (bumped on every restart)
	Data        []float64
	SentAt      float64
	DeliveredAt float64
}

// Any matches any source or tag in Recv/TryRecv.
const Any = -1

// Cluster is a set of simulated machines wired to a network model.
type Cluster struct {
	kernel *simtime.Kernel
	cfg    Config
	procs  []*Proc
}

// New creates a cluster from cfg. cfg.Net must be non-nil.
func New(cfg Config) *Cluster {
	if cfg.Net == nil {
		panic("cluster: Config.Net is nil")
	}
	if len(cfg.Machines) == 0 {
		panic("cluster: no machines")
	}
	if cfg.MsgHeaderBytes == 0 {
		cfg.MsgHeaderBytes = 64
	}
	if cfg.MsgHeaderBytes < 0 {
		cfg.MsgHeaderBytes = 0
	}
	if cfg.RetryTimeout <= 0 {
		cfg.RetryTimeout = 0.5
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 2
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 12
	}
	// Stateful models (e.g. a SharedBus mid-backlog) must start fresh: the
	// virtual clock restarts at 0 for every cluster, so stale state would
	// silently inflate every delay of the new run.
	netmodel.ResetModel(cfg.Net)
	return &Cluster{
		kernel: simtime.NewKernel(simtime.Config{Seed: cfg.Seed, Horizon: cfg.Horizon}),
		cfg:    cfg,
	}
}

// P returns the number of machines.
func (c *Cluster) P() int { return len(c.cfg.Machines) }

// Proc returns processor i (valid after Start).
func (c *Cluster) Proc(i int) *Proc { return c.procs[i] }

// Now returns the cluster's virtual time.
func (c *Cluster) Now() float64 { return c.kernel.Now() }

// Start spawns one processor per machine, each running body. When
// Config.Crashes schedules crash events, a processor's body may be aborted
// and re-run from scratch after the downtime — bodies that want to survive
// a crash with state must checkpoint it somewhere outside the processor
// (see internal/checkpoint).
func (c *Cluster) Start(body func(*Proc)) {
	if c.procs != nil {
		panic("cluster: Start called twice")
	}
	n := len(c.cfg.Machines)
	for i, m := range c.cfg.Machines {
		p := &Proc{c: c, id: i, mach: m, peerEpoch: make([]int, n)}
		if reg := c.cfg.Metrics; reg != nil {
			lp := obs.L("proc", strconv.Itoa(i))
			p.obsMsgsSent = reg.Counter(MetricMsgsSent, "logical messages passed to Send", lp)
			p.obsBytesSent = reg.Counter(MetricBytesSent, "payload+header bytes of logical sends", lp)
			p.obsRetrans = reg.Counter(MetricRetransmits, "reliable-layer retransmissions", lp)
			p.obsDups = reg.Counter(MetricDupsDropped, "duplicate deliveries suppressed at the receiver", lp)
			p.obsGiveUps = reg.Counter(MetricGiveUps, "messages abandoned after MaxRetries", lp)
			p.obsLatency = reg.Histogram(MetricMsgLatency, "send-to-delivery latency in virtual seconds",
				obs.ExpBuckets(0.001, 4, 10), lp)
			p.obsCrashes = reg.Counter(MetricCrashes, "processor crash events", lp)
			p.obsDowntime = reg.Counter(MetricDowntime, "virtual seconds spent dead", lp)
			p.obsDeadDrops = reg.Counter(MetricDeadDrops, "deliveries dropped because the receiver was dead", lp)
			p.obsPeerDead = reg.Counter(MetricPeerDead, "pending retransmissions dropped because the peer was dead", lp)
			p.obsStaleDrops = reg.Counter(MetricStaleDrops, "stale-epoch messages discarded on arrival", lp)
		}
		if c.cfg.Reliable {
			p.resetReliable()
		}
		c.procs = append(c.procs, p)
	}
	for _, p := range c.procs {
		p := p
		name := fmt.Sprintf("proc%d(%s)", p.id, p.mach.Name)
		p.sp = c.kernel.Spawn(name, func(*simtime.Proc) {
			for !p.runIncarnation(body) {
				p.downAndRestart()
			}
			p.finished = true
		})
	}
	for _, ev := range c.cfg.Crashes {
		if ev.Proc < 0 || ev.Proc >= n {
			panic(fmt.Sprintf("cluster: crash event for invalid processor %d", ev.Proc))
		}
		if ev.At < 0 || ev.Downtime < 0 {
			panic("cluster: negative crash time or downtime")
		}
		ev := ev
		c.kernel.Schedule(ev.At, func() { c.procs[ev.Proc].beginCrash(ev.Downtime) })
	}
}

// crashSignal is the panic value used to unwind a crashing processor's body.
type crashSignal struct{}

// runIncarnation runs one incarnation of the body, reporting whether it ran
// to completion (false: it was cut short by a crash).
func (p *Proc) runIncarnation(body func(*Proc)) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); ok {
				return // completed stays false
			}
			panic(r) // a real bug — let the kernel report it
		}
	}()
	body(p)
	return true
}

// beginCrash runs in kernel context at a scheduled crash time: it marks the
// crash pending so the processor's next substrate interaction unwinds, and
// wakes the processor if it is parked on a receive. Crashes aimed at a
// finished or already-dead processor are ignored.
func (p *Proc) beginCrash(downtime float64) {
	if p.finished || p.dead || p.crashPending {
		return
	}
	p.crashPending = true
	p.pendingDown = downtime
	if p.want != nil { // parked on a receive: wake it so the crash lands now
		p.want = nil
		p.c.kernel.Unblock(p.sp)
	}
}

// maybeCrash, called at every substrate interaction point in the
// processor's own context, unwinds the body when a crash is pending.
func (p *Proc) maybeCrash() {
	if p.crashPending {
		p.crashPending = false
		panic(crashSignal{})
	}
}

// downAndRestart runs in the processor's context right after a crash
// unwound the body: it drops the mailbox and reliable-delivery state, stays
// dead for the scheduled downtime (deliveries are dropped meanwhile), then
// bumps the incarnation epoch and returns so the body can restart.
func (p *Proc) downAndRestart() {
	down := p.pendingDown
	p.dead = true
	p.crashes++
	p.downtimeSec += down
	p.mbox = nil
	p.want = nil
	if p.c.cfg.Reliable {
		p.resetReliable()
	}
	p.obsCrashes.Inc()
	p.obsDowntime.Add(down)
	p.c.event(p.id, "crash")
	p.c.journalV(p.id, obs.EvCrash, -1, obs.NoPeer, down)
	p.clocks[PhaseOther] += down
	start := p.Now()
	p.sp.Sleep(down)
	p.span(PhaseOther, start)
	p.epoch++
	p.dead = false
	p.c.event(p.id, "restart")
	p.c.journalV(p.id, obs.EvRestart, p.epoch, obs.NoPeer, 0)
}

// resetReliable (re)initializes the reliable-delivery maps — on Start and
// again after a crash, when all in-flight state is lost.
func (p *Proc) resetReliable() {
	n := p.c.P()
	p.nextSeq = make([]uint64, n)
	p.unacked = make([]map[uint64]*pendingMsg, n)
	p.seen = make([]map[uint64]bool, n)
	for k := 0; k < n; k++ {
		p.unacked[k] = make(map[uint64]*pendingMsg)
		p.seen[k] = make(map[uint64]bool)
	}
}

// Run drives the simulation to completion.
func (c *Cluster) Run() error { return c.kernel.Run() }

// filter describes what a parked receiver is waiting for.
type filter struct {
	src, tag int
}

func (f filter) matches(m Message) bool {
	return (f.src == Any || m.Src == f.src) && (f.tag == Any || m.Tag == f.tag)
}

// pendingMsg is one unacknowledged reliable-layer transmission.
type pendingMsg struct {
	msg     Message
	seq     uint64
	bytes   int
	timeout float64 // current retransmission timeout (grows by RetryBackoff)
	retries int
	acked   bool
}

// Proc is one simulated processor.
type Proc struct {
	c    *Cluster
	sp   *simtime.Proc
	id   int
	mach Machine

	mbox []Message
	want *filter

	clocks    [numPhases]float64
	msgsSent  int
	msgsRecvd int
	bytesSent int
	maxQueue  int

	// Reliable-delivery state (nil unless Config.Reliable).
	nextSeq     []uint64                 // per-destination next sequence number
	unacked     []map[uint64]*pendingMsg // per-destination outstanding messages
	seen        []map[uint64]bool        // per-source delivered sequence numbers
	retries     int
	dupsDropped int
	giveUps     int
	acksSent    int

	// Crash/restart lifecycle state.
	epoch         int   // incarnation epoch, bumped on every restart
	peerEpoch     []int // newest epoch observed per peer
	dead          bool  // inside a downtime window: deliveries are dropped
	finished      bool  // body ran to completion
	crashPending  bool  // crash requested, lands at the next interaction
	pendingDown   float64
	crashes       int
	downtimeSec   float64
	deadDrops     int // deliveries dropped while this processor was dead
	peerDeadDrops int // pending retransmissions dropped: destination dead
	staleDrops    int // stale-epoch messages discarded on arrival

	// Observability handles (nil — and therefore no-ops — unless
	// Config.Metrics is set).
	obsMsgsSent   *obs.Counter
	obsBytesSent  *obs.Counter
	obsRetrans    *obs.Counter
	obsDups       *obs.Counter
	obsGiveUps    *obs.Counter
	obsLatency    *obs.Histogram
	obsCrashes    *obs.Counter
	obsDowntime   *obs.Counter
	obsDeadDrops  *obs.Counter
	obsPeerDead   *obs.Counter
	obsStaleDrops *obs.Counter
}

// ID returns the processor index (0-based).
func (p *Proc) ID() int { return p.id }

// P returns the number of processors in the cluster.
func (p *Proc) P() int { return p.c.P() }

// Ops returns the processor's capacity M_i in operations per second.
func (p *Proc) Ops() float64 { return p.mach.Ops }

// Machine returns the processor's machine description.
func (p *Proc) Machine() Machine { return p.mach }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.sp.Now() }

// PhaseTime returns the accumulated virtual time spent in ph.
func (p *Proc) PhaseTime(ph Phase) float64 { return p.clocks[ph] }

// Stats returns message counters: messages sent, messages received, bytes sent.
func (p *Proc) Stats() (sent, recvd, bytes int) {
	return p.msgsSent, p.msgsRecvd, p.bytesSent
}

// NetStats aggregates a processor's transport-level counters, including the
// reliable-delivery layer's retry behaviour and the crash lifecycle.
type NetStats struct {
	MsgsSent    int // logical messages passed to Send
	MsgsRecvd   int // messages consumed by TryRecv/Recv
	BytesSent   int // payload+header bytes of logical sends
	Retries     int // reliable-layer retransmissions
	DupsDropped int // duplicate deliveries suppressed at the receiver
	GiveUps     int // messages abandoned after MaxRetries
	AcksSent    int // acknowledgements transmitted

	Crashes       int     // crash events this processor suffered
	DowntimeSec   float64 // virtual seconds spent dead
	DeadDrops     int     // deliveries dropped because this processor was dead
	PeerDeadDrops int     // pending retransmissions dropped: destination dead
	StaleDrops    int     // stale-epoch messages discarded on arrival
}

// NetStats returns the processor's transport-level counters.
func (p *Proc) NetStats() NetStats {
	return NetStats{
		MsgsSent:    p.msgsSent,
		MsgsRecvd:   p.msgsRecvd,
		BytesSent:   p.bytesSent,
		Retries:     p.retries,
		DupsDropped: p.dupsDropped,
		GiveUps:     p.giveUps,
		AcksSent:    p.acksSent,

		Crashes:       p.crashes,
		DowntimeSec:   p.downtimeSec,
		DeadDrops:     p.deadDrops,
		PeerDeadDrops: p.peerDeadDrops,
		StaleDrops:    p.staleDrops,
	}
}

// Epoch returns the processor's incarnation epoch: 0 until its first
// crash, bumped by one at every restart.
func (p *Proc) Epoch() int { return p.epoch }

// PeerDown reports whether peer k is currently inside a crash downtime
// window. The simulation has global knowledge, so this is a perfect
// failure detector — the idealization a real deployment approximates with
// heartbeats and timeouts.
func (p *Proc) PeerDown(k int) bool { return p.c.procs[k].dead }

// Note records a point event on the cluster's OnEvent hook at the current
// virtual time — used by the engine to mark overruns and reconciliations.
func (p *Proc) Note(kind string) { p.c.event(p.id, kind) }

// event forwards a point event to the OnEvent hook, if any.
func (c *Cluster) event(proc int, kind string) {
	if f := c.cfg.OnEvent; f != nil {
		f(proc, kind, c.kernel.Now())
	}
}

// journal records a transport-layer event in the run journal, if any.
func (c *Cluster) journal(proc int, kind string, iter, peer int) {
	c.journalV(proc, kind, iter, peer, 0)
}

// journalV is journal with a kind-specific value attached.
func (c *Cluster) journalV(proc int, kind string, iter, peer int, v float64) {
	if c.cfg.Journal == nil {
		return
	}
	c.cfg.Journal.Record(obs.Event{
		T: c.kernel.Now(), Proc: proc, Kind: kind, Iter: iter, Peer: peer, V: v,
	})
}

// MaxQueueLen returns the high-water mark of the mailbox length.
func (p *Proc) MaxQueueLen() int { return p.maxQueue }

// Compute charges ops operations of work to the virtual clock under phase ph.
func (p *Proc) Compute(ops float64, ph Phase) {
	p.maybeCrash()
	if ops < 0 {
		panic("cluster: negative ops")
	}
	if ops == 0 {
		return
	}
	d := ops / p.mach.Ops
	if lm := p.c.cfg.Load; lm != nil {
		d *= lm.Factor(p.id, p.Now(), p.c.kernel.Rand())
	}
	p.clocks[ph] += d
	start := p.Now()
	p.sp.Sleep(d)
	p.span(ph, start)
}

// span reports a completed phase interval to the tracer, if any.
func (p *Proc) span(ph Phase, start float64) {
	if f := p.c.cfg.OnSpan; f != nil && p.Now() > start {
		f(p.id, ph, start, p.Now())
	}
}

// Idle advances the processor's clock by d seconds without attributing work.
func (p *Proc) Idle(d float64) {
	p.maybeCrash()
	p.clocks[PhaseOther] += d
	start := p.Now()
	p.sp.Sleep(d)
	p.span(PhaseOther, start)
}

// Send transmits data to processor dst with the given tag and iteration
// stamp. The sender is charged Config.SendOps of CPU (attributed to the comm
// phase); delivery latency comes from the network model. The payload is
// copied, so the caller may reuse its buffer immediately.
func (p *Proc) Send(dst, tag, iter int, data []float64) {
	payload := make([]float64, len(data))
	copy(payload, data)
	p.SendShared(dst, tag, iter, payload)
}

// SendShared is Send without the defensive payload copy: the message
// references data directly (including across duplicate deliveries injected
// by a faulty network model). The caller must never mutate data afterwards.
// A broadcast of one immutable payload to many peers therefore costs zero
// copies instead of one per destination.
func (p *Proc) SendShared(dst, tag, iter int, data []float64) {
	p.maybeCrash()
	if dst < 0 || dst >= p.c.P() {
		panic(fmt.Sprintf("cluster: Send to invalid processor %d", dst))
	}
	if p.c.cfg.SendOps > 0 {
		d := p.c.cfg.SendOps / p.mach.Ops
		p.clocks[PhaseComm] += d
		start := p.Now()
		p.sp.Sleep(d)
		p.span(PhaseComm, start)
	}
	payload := data
	bytes := 8*len(payload) + p.c.cfg.MsgHeaderBytes
	msg := Message{
		Src: p.id, Dst: dst, Tag: tag, Iter: iter, Epoch: p.epoch,
		Data: payload, SentAt: p.Now(),
	}
	p.msgsSent++
	p.bytesSent += bytes
	p.obsMsgsSent.Inc()
	p.obsBytesSent.Add(float64(bytes))
	if p.c.cfg.Reliable {
		seq := p.nextSeq[dst]
		p.nextSeq[dst]++
		pm := &pendingMsg{msg: msg, seq: seq, bytes: bytes, timeout: p.c.cfg.RetryTimeout}
		p.unacked[dst][seq] = pm
		p.transmit(dst, pm)
		return
	}
	dstProc := p.c.procs[dst]
	for _, delay := range netmodel.DeliveriesOf(p.c.cfg.Net, netmodel.Msg{
		Src: p.id, Dst: dst, Bytes: bytes, Procs: p.c.P(), Now: p.Now(),
	}, p.c.kernel.Rand()) {
		if delay < 0 {
			panic("cluster: negative network delay")
		}
		m := msg
		p.c.kernel.Schedule(delay, func() {
			m.DeliveredAt = p.c.kernel.Now()
			dstProc.deliver(m)
		})
	}
}

// transmit performs one physical transmission of an unacknowledged message
// and arms the retransmission timer. First transmissions run in the sending
// process's context; retransmissions run in kernel (timer) context, so no
// CPU time is charged for them.
func (p *Proc) transmit(dst int, pm *pendingMsg) {
	dstProc := p.c.procs[dst]
	for _, delay := range netmodel.DeliveriesOf(p.c.cfg.Net, netmodel.Msg{
		Src: p.id, Dst: dst, Bytes: pm.bytes, Procs: p.c.P(), Now: p.c.kernel.Now(),
	}, p.c.kernel.Rand()) {
		if delay < 0 {
			panic("cluster: negative network delay")
		}
		m := pm.msg
		seq := pm.seq
		p.c.kernel.Schedule(delay, func() {
			m.DeliveredAt = p.c.kernel.Now()
			dstProc.deliverReliable(m, seq)
		})
	}
	p.c.kernel.Schedule(pm.timeout, func() { p.retransmit(dst, pm) })
}

// retransmit runs in kernel context when a retransmission timer fires.
func (p *Proc) retransmit(dst int, pm *pendingMsg) {
	if pm.acked {
		return
	}
	if pm.msg.Epoch != p.epoch {
		return // orphaned timer: this sender crashed since the transmission
	}
	if p.c.procs[dst].dead {
		// Destination is inside a crash window: stop retransmitting — the
		// rejoin protocol, not the retry timer, is responsible for getting
		// it back in sync after the restart.
		p.peerDeadDrops++
		delete(p.unacked[dst], pm.seq)
		p.c.event(p.id, "peerdead")
		p.obsPeerDead.Inc()
		p.c.journal(p.id, obs.EvPeerDead, pm.msg.Iter, dst)
		return
	}
	if pm.retries >= p.c.cfg.MaxRetries {
		p.giveUps++
		delete(p.unacked[dst], pm.seq)
		p.c.event(p.id, "giveup")
		p.obsGiveUps.Inc()
		p.c.journal(p.id, obs.EvGiveup, pm.msg.Iter, dst)
		return
	}
	pm.retries++
	pm.timeout *= p.c.cfg.RetryBackoff
	p.retries++
	p.c.event(p.id, "retrans")
	p.obsRetrans.Inc()
	p.c.journal(p.id, obs.EvRetrans, pm.msg.Iter, dst)
	p.transmit(dst, pm)
}

// deliverReliable runs in kernel context on the receiving processor: it
// acknowledges the transmission, suppresses duplicates, and hands first
// deliveries to the mailbox. Dead receivers drop silently (crashed machines
// do not ack); messages from a peer's older incarnation are discarded, and
// a newly observed incarnation resets that peer's duplicate-suppression
// state (its sequence numbers restart at zero).
func (p *Proc) deliverReliable(m Message, seq uint64) {
	if p.dead {
		p.deadDrops++
		p.obsDeadDrops.Inc()
		return
	}
	if m.Epoch < p.peerEpoch[m.Src] {
		p.staleDrops++
		p.obsStaleDrops.Inc()
		return
	}
	if m.Epoch > p.peerEpoch[m.Src] {
		p.peerEpoch[m.Src] = m.Epoch
		p.seen[m.Src] = make(map[uint64]bool)
	}
	p.sendAck(m.Src, seq, m.Epoch)
	if p.seen[m.Src][seq] {
		p.dupsDropped++
		p.c.event(p.id, "dup")
		p.obsDups.Inc()
		p.c.journal(p.id, obs.EvDup, m.Iter, m.Src)
		return
	}
	p.seen[m.Src][seq] = true
	p.deliver(m)
}

// sendAck transmits an acknowledgement back through the network model; like
// data, acks can be lost or duplicated by a faulty model. The ack echoes
// the data message's epoch so a restarted sender ignores acks addressed to
// its previous incarnation.
func (p *Proc) sendAck(src int, seq uint64, epoch int) {
	p.acksSent++
	srcProc := p.c.procs[src]
	from := p.id
	for _, delay := range netmodel.DeliveriesOf(p.c.cfg.Net, netmodel.Msg{
		Src: p.id, Dst: src, Bytes: p.c.cfg.MsgHeaderBytes, Procs: p.c.P(), Now: p.c.kernel.Now(),
	}, p.c.kernel.Rand()) {
		if delay < 0 {
			panic("cluster: negative network delay")
		}
		p.c.kernel.Schedule(delay, func() { srcProc.ackReceived(from, seq, epoch) })
	}
}

// ackReceived runs in kernel context on the original sender.
func (p *Proc) ackReceived(from int, seq uint64, epoch int) {
	if epoch != p.epoch {
		return // ack for a previous incarnation's transmission
	}
	if pm, ok := p.unacked[from][seq]; ok {
		pm.acked = true
		delete(p.unacked[from], seq)
	}
}

// deliver runs in kernel context: enqueue and wake a matching waiter.
// Deliveries to a dead processor are dropped, and messages from a peer's
// older incarnation are discarded (the unreliable path's epoch filter; the
// reliable path checks before acknowledging).
func (p *Proc) deliver(m Message) {
	if p.dead {
		p.deadDrops++
		p.obsDeadDrops.Inc()
		return
	}
	if m.Epoch < p.peerEpoch[m.Src] {
		p.staleDrops++
		p.obsStaleDrops.Inc()
		return
	}
	if m.Epoch > p.peerEpoch[m.Src] {
		p.peerEpoch[m.Src] = m.Epoch
	}
	p.obsLatency.Observe(m.DeliveredAt - m.SentAt)
	p.mbox = append(p.mbox, m)
	if len(p.mbox) > p.maxQueue {
		p.maxQueue = len(p.mbox)
	}
	if p.want != nil && p.want.matches(m) {
		p.want = nil
		p.c.kernel.Unblock(p.sp)
	}
}

// TryRecv returns a queued message matching (src, tag) without blocking.
// Use Any for either field to match anything.
func (p *Proc) TryRecv(src, tag int) (Message, bool) {
	p.maybeCrash()
	f := filter{src: src, tag: tag}
	for i, m := range p.mbox {
		if f.matches(m) {
			p.mbox = append(p.mbox[:i], p.mbox[i+1:]...)
			p.msgsRecvd++
			return m, true
		}
	}
	return Message{}, false
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// Time spent blocked is attributed to the comm phase.
func (p *Proc) Recv(src, tag int) Message {
	for {
		if m, ok := p.TryRecv(src, tag); ok {
			return m
		}
		f := filter{src: src, tag: tag}
		p.want = &f
		before := p.Now()
		p.sp.Park()
		p.clocks[PhaseComm] += p.Now() - before
		p.span(PhaseComm, before)
	}
}

// RecvDeadline blocks until a message matching (src, tag) arrives or
// timeout seconds of virtual time elapse, whichever comes first. The second
// return value is false when the deadline expired with no matching message.
// Time spent blocked is attributed to the comm phase.
func (p *Proc) RecvDeadline(src, tag int, timeout float64) (Message, bool) {
	deadline := p.Now() + timeout
	for {
		if m, ok := p.TryRecv(src, tag); ok {
			return m, true
		}
		if p.Now() >= deadline {
			return Message{}, false
		}
		f := filter{src: src, tag: tag}
		fp := &f
		p.want = fp
		p.c.kernel.Schedule(deadline-p.Now(), func() {
			// Wake the receiver only if it is still parked on this exact
			// wait; a delivery (or an older timer) may have beaten us.
			if p.want == fp {
				p.want = nil
				p.c.kernel.Unblock(p.sp)
			}
		})
		before := p.Now()
		p.sp.Park()
		p.clocks[PhaseComm] += p.Now() - before
		p.span(PhaseComm, before)
	}
}

// Barrier performs a naive all-to-all barrier using tagged messages. It is
// provided for the classical (non-speculative) baseline algorithms.
func (p *Proc) Barrier(tag int) {
	for k := 0; k < p.P(); k++ {
		if k == p.id {
			continue
		}
		p.Send(k, tag, 0, nil)
	}
	for k := 0; k < p.P(); k++ {
		if k == p.id {
			continue
		}
		p.Recv(k, tag)
	}
}
