package cluster

import (
	"math"
	"math/rand"
	"testing"

	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
)

func TestCrashRestartLifecycle(t *testing.T) {
	// Proc 1 crashes mid-run while parked on a receive: its body must unwind,
	// stay dead for the downtime (dropping deliveries), then restart with a
	// bumped epoch and keep receiving.
	jr := obs.NewJournal()
	reg := obs.NewRegistry()
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:      netmodel.Fixed{D: 0.01},
		Journal:  jr,
		Metrics:  reg,
		Crashes:  faults.CrashSchedule{{Proc: 1, At: 0.55, Downtime: 0.3}},
	})
	var incarnations int
	var epochs []int
	var got int
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 20; i++ {
				p.Idle(0.1)
				p.Send(1, 1, i, []float64{float64(i)})
			}
			return
		}
		incarnations++
		epochs = append(epochs, p.Epoch())
		for {
			if _, ok := p.RecvDeadline(0, 1, 1.0); !ok {
				return
			}
			got++
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if incarnations != 2 {
		t.Fatalf("incarnations = %d, want 2", incarnations)
	}
	if len(epochs) != 2 || epochs[0] != 0 || epochs[1] != 1 {
		t.Errorf("epochs = %v, want [0 1]", epochs)
	}
	ns := c.Proc(1).NetStats()
	if ns.Crashes != 1 {
		t.Errorf("Crashes = %d, want 1", ns.Crashes)
	}
	if math.Abs(ns.DowntimeSec-0.3) > 1e-9 {
		t.Errorf("DowntimeSec = %g, want 0.3", ns.DowntimeSec)
	}
	if ns.DeadDrops == 0 {
		t.Error("no deliveries dropped while dead, expected some")
	}
	if got == 0 || got >= 20 {
		t.Errorf("received %d ticks, want some lost to the crash window", got)
	}
	if jr.Count(obs.EvCrash) != 1 || jr.Count(obs.EvRestart) != 1 {
		t.Errorf("journal crash/restart = %d/%d, want 1/1",
			jr.Count(obs.EvCrash), jr.Count(obs.EvRestart))
	}
	for _, e := range jr.Events() {
		if e.Kind == obs.EvRestart && (e.Proc != 1 || e.Iter != 1) {
			t.Errorf("restart event mislabeled: %+v", e)
		}
		if e.Kind == obs.EvCrash && math.Abs(e.V-0.3) > 1e-9 {
			t.Errorf("crash event downtime = %g, want 0.3", e.V)
		}
	}
	totals := reg.Totals()
	if int(totals[MetricCrashes]) != 1 {
		t.Errorf("crash counter = %v, want 1", totals[MetricCrashes])
	}
	if p1 := c.Proc(1); p1.PhaseTime(PhaseOther) < 0.3 {
		t.Errorf("downtime not charged to PhaseOther: %g", p1.PhaseTime(PhaseOther))
	}
	if c.Proc(0).PeerDown(1) {
		t.Error("PeerDown(1) true after restart")
	}
}

func TestReliablePeerDeadDropsRetransmission(t *testing.T) {
	// The reliable layer must stop retransmitting to a dead peer — the rejoin
	// protocol owns recovery — and must not count the abandonment as a giveup.
	jr := obs.NewJournal()
	c := New(Config{
		Machines:     []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:          netmodel.Fixed{D: 0.01},
		Reliable:     true,
		RetryTimeout: 0.2,
		Journal:      jr,
		Crashes:      faults.CrashSchedule{{Proc: 1, At: 0.1, Downtime: 2.0}},
	})
	var gotAfterRestart bool
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			p.Idle(0.5)
			p.Send(1, 1, 9, []float64{1})
			p.Idle(3) // stay alive past the retry timer and p1's restart
			return
		}
		if p.Epoch() == 0 {
			p.Recv(0, 1) // parked here when the crash lands
			t.Error("first incarnation received a message unexpectedly")
			return
		}
		_, gotAfterRestart = p.RecvDeadline(0, 1, 1.0)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ns0 := c.Proc(0).NetStats()
	if ns0.PeerDeadDrops != 1 {
		t.Errorf("PeerDeadDrops = %d, want 1", ns0.PeerDeadDrops)
	}
	if ns0.GiveUps != 0 {
		t.Errorf("GiveUps = %d, want 0 (dead-peer drop is not a giveup)", ns0.GiveUps)
	}
	if c.Proc(1).NetStats().DeadDrops != 1 {
		t.Errorf("DeadDrops = %d, want 1", c.Proc(1).NetStats().DeadDrops)
	}
	if jr.Count(obs.EvPeerDead) != 1 {
		t.Errorf("peer_dead journal events = %d, want 1", jr.Count(obs.EvPeerDead))
	}
	if gotAfterRestart {
		t.Error("abandoned message leaked into the restarted incarnation")
	}
}

// slowThenFast delivers sends issued before the cutover slowly and later
// sends quickly, so an old message can arrive after a newer one.
type slowThenFast struct{ cut float64 }

func (m slowThenFast) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	if msg.Now < m.cut {
		return 1.5
	}
	return 0.01
}

func TestStaleEpochMessageDiscarded(t *testing.T) {
	// A pre-crash message still in flight when its sender restarts must be
	// discarded on arrival: the receiver has already seen the newer epoch.
	c := New(Config{
		Machines: []Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:      slowThenFast{cut: 0.15},
		Crashes:  faults.CrashSchedule{{Proc: 1, At: 0.1, Downtime: 0.2}},
	})
	var firstIter int
	var sawSecond bool
	c.Start(func(p *Proc) {
		if p.ID() == 0 {
			m, ok := p.RecvDeadline(1, 1, 3.0)
			if ok {
				firstIter = m.Iter
			}
			_, sawSecond = p.RecvDeadline(1, 1, 2.0)
			return
		}
		if p.Epoch() == 0 {
			p.Send(0, 1, 100, []float64{1}) // slow: lands ~t=1.5, epoch 0
			p.Idle(0.2)
			p.Idle(0.2) // crash pending from t=0.1 lands here
			return
		}
		p.Send(0, 1, 200, []float64{2}) // fast: lands first, epoch 1
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if firstIter != 200 {
		t.Errorf("first delivery Iter = %d, want 200 (new epoch)", firstIter)
	}
	if sawSecond {
		t.Error("stale epoch-0 message delivered")
	}
	if st := c.Proc(0).NetStats().StaleDrops; st != 1 {
		t.Errorf("StaleDrops = %d, want 1", st)
	}
}
