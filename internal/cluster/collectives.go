package cluster

// Collective operations in the flat, PVM-era style the paper's testbed
// offered: point-to-point messages under the covers, no topology-aware
// trees. They are conveniences for setup/teardown phases (distributing
// initial data, gathering results); the iterative engines use raw
// Send/Recv so speculation can interpose.

// Bcast distributes data from root to every processor and returns the
// received (or original, on root) values. All processors must call it with
// the same root and tag.
func (p *Proc) Bcast(root, tag int, data []float64) []float64 {
	if p.id == root {
		for k := 0; k < p.P(); k++ {
			if k != p.id {
				p.Send(k, tag, 0, data)
			}
		}
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	return p.Recv(root, tag).Data
}

// Gather collects each processor's data at root. On root the returned slice
// holds every processor's contribution indexed by rank; elsewhere it is nil.
func (p *Proc) Gather(root, tag int, data []float64) [][]float64 {
	if p.id != root {
		p.Send(root, tag, 0, data)
		return nil
	}
	out := make([][]float64, p.P())
	out[p.id] = append([]float64(nil), data...)
	for k := 0; k < p.P(); k++ {
		if k == p.id {
			continue
		}
		m := p.Recv(k, tag)
		out[k] = m.Data
	}
	return out
}

// AllGather collects every processor's data on every processor.
func (p *Proc) AllGather(tag int, data []float64) [][]float64 {
	for k := 0; k < p.P(); k++ {
		if k != p.id {
			p.Send(k, tag, 0, data)
		}
	}
	out := make([][]float64, p.P())
	out[p.id] = append([]float64(nil), data...)
	for k := 0; k < p.P(); k++ {
		if k == p.id {
			continue
		}
		out[k] = p.Recv(k, tag).Data
	}
	return out
}

// AllReduceSum element-wise sums data across all processors; every
// processor returns the identical reduced vector. Vectors must share a
// length.
func (p *Proc) AllReduceSum(tag int, data []float64) []float64 {
	parts := p.AllGather(tag, data)
	out := make([]float64, len(data))
	for _, part := range parts {
		for i := range out {
			out[i] += part[i]
		}
	}
	return out
}
