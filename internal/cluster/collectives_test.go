package cluster

import (
	"math"
	"testing"

	"specomp/internal/netmodel"
)

func collectiveCluster(p int) *Cluster {
	return New(Config{
		Machines: UniformMachines(p, 1000),
		Net:      netmodel.Fixed{D: 0.1},
	})
}

func TestBcast(t *testing.T) {
	c := collectiveCluster(4)
	got := make([][]float64, 4)
	c.Start(func(p *Proc) {
		data := []float64{0, 0}
		if p.ID() == 1 {
			data = []float64{3.5, -1}
		}
		got[p.ID()] = p.Bcast(1, 50, data)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if len(v) != 2 || v[0] != 3.5 || v[1] != -1 {
			t.Errorf("proc %d got %v", i, v)
		}
	}
}

func TestGather(t *testing.T) {
	c := collectiveCluster(3)
	var atRoot [][]float64
	var elsewhere [][]float64 = [][]float64{{1}} // sentinel
	c.Start(func(p *Proc) {
		res := p.Gather(0, 51, []float64{float64(p.ID() * 10)})
		if p.ID() == 0 {
			atRoot = res
		} else if p.ID() == 2 {
			elsewhere = res
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if elsewhere != nil {
		t.Error("non-root got a gather result")
	}
	for k, v := range atRoot {
		if v[0] != float64(k*10) {
			t.Errorf("root slot %d = %v", k, v)
		}
	}
}

func TestAllGather(t *testing.T) {
	c := collectiveCluster(3)
	got := make([][][]float64, 3)
	c.Start(func(p *Proc) {
		got[p.ID()] = p.AllGather(52, []float64{float64(p.ID())})
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for pid, all := range got {
		for k, v := range all {
			if v[0] != float64(k) {
				t.Errorf("proc %d slot %d = %v", pid, k, v)
			}
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	c := collectiveCluster(4)
	got := make([][]float64, 4)
	c.Start(func(p *Proc) {
		got[p.ID()] = p.AllReduceSum(53, []float64{1, float64(p.ID())})
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for pid, v := range got {
		if v[0] != 4 || math.Abs(v[1]-6) > 1e-12 { // 0+1+2+3
			t.Errorf("proc %d reduced %v, want [4 6]", pid, v)
		}
	}
}

func TestCollectivesComposable(t *testing.T) {
	// Gather at root, then Bcast the concatenation back out.
	c := collectiveCluster(3)
	finals := make([][]float64, 3)
	c.Start(func(p *Proc) {
		parts := p.Gather(0, 54, []float64{float64(p.ID() + 1)})
		var flat []float64
		if p.ID() == 0 {
			for _, part := range parts {
				flat = append(flat, part...)
			}
		}
		finals[p.ID()] = p.Bcast(0, 55, flat)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for pid, v := range finals {
		if len(v) != 3 || v[0] != 1 || v[1] != 2 || v[2] != 3 {
			t.Errorf("proc %d final %v", pid, v)
		}
	}
}
