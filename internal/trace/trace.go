// Package trace records per-processor phase intervals from a simulated run
// and renders them as ASCII Gantt timelines — the reproduction medium for
// the paper's Figure 2 (speculation good/bad vs blocking) and Figure 4
// (forward windows under a transient delay).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"specomp/internal/cluster"
)

// Span is one interval of virtual time a processor spent in a phase.
type Span struct {
	Proc  int
	Phase cluster.Phase
	Start float64
	End   float64
}

// Event is a point occurrence on a processor's timeline: a reliable-layer
// retransmission ("retrans"), a suppressed duplicate ("dup"), an abandoned
// message ("giveup"), or an engine degradation mark ("overrun",
// "reconcile").
type Event struct {
	Proc int
	Kind string
	Time float64
}

// Recorder collects spans and point events; its Hook and EventHook methods
// plug into cluster.Config.OnSpan and cluster.Config.OnEvent.
type Recorder struct {
	Spans  []Span
	Events []Event
}

// Hook returns a function suitable for cluster.Config.OnSpan.
func (r *Recorder) Hook() func(proc int, ph cluster.Phase, start, end float64) {
	return func(proc int, ph cluster.Phase, start, end float64) {
		r.Spans = append(r.Spans, Span{Proc: proc, Phase: ph, Start: start, End: end})
	}
}

// EventHook returns a function suitable for cluster.Config.OnEvent.
func (r *Recorder) EventHook() func(proc int, kind string, t float64) {
	return func(proc int, kind string, t float64) {
		r.Events = append(r.Events, Event{Proc: proc, Kind: kind, Time: t})
	}
}

// EventCount returns how many recorded events have the given kind.
func (r *Recorder) EventCount(kind string) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// End returns the latest span end time.
func (r *Recorder) End() float64 {
	var worst float64
	for _, s := range r.Spans {
		if s.End > worst {
			worst = s.End
		}
	}
	return worst
}

// PhaseTotal sums the recorded time processor proc spent in ph.
func (r *Recorder) PhaseTotal(proc int, ph cluster.Phase) float64 {
	var sum float64
	for _, s := range r.Spans {
		if s.Proc == proc && s.Phase == ph {
			sum += s.End - s.Start
		}
	}
	return sum
}

// glyph maps phases to timeline characters: C compute, . waiting on
// communication, s speculate, k check, R repair, o overrun (compute past
// the forward window in degraded mode).
func glyph(ph cluster.Phase) byte {
	switch ph {
	case cluster.PhaseCompute:
		return 'C'
	case cluster.PhaseComm:
		return '.'
	case cluster.PhaseSpec:
		return 's'
	case cluster.PhaseCheck:
		return 'k'
	case cluster.PhaseCorrect:
		return 'R'
	case cluster.PhaseOverrun:
		return 'o'
	default:
		return ' '
	}
}

// Gantt renders the recorded spans as one timeline row per processor,
// `width` characters across the interval [0, horizon] (horizon defaults to
// the last span end). Later spans overwrite earlier ones in a cell;
// idle time is left blank.
func (r *Recorder) Gantt(procs, width int, horizon float64) string {
	if horizon <= 0 {
		horizon = r.End()
	}
	if horizon <= 0 || width <= 0 {
		return ""
	}
	rows := make([][]byte, procs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	spans := make([]Span, len(r.Spans))
	copy(spans, r.Spans)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		if s.Proc < 0 || s.Proc >= procs {
			continue
		}
		lo := int(s.Start / horizon * float64(width))
		hi := int(s.End / horizon * float64(width))
		if hi == lo {
			hi = lo + 1
		}
		if lo < 0 {
			lo = 0
		}
		if hi > width {
			hi = width
		}
		g := glyph(s.Phase)
		for c := lo; c < hi; c++ {
			rows[s.Proc][c] = g
		}
	}
	// Point events overlay the phase glyphs so retransmissions and overruns
	// stand out on the row where they happened.
	for _, e := range r.Events {
		if e.Proc < 0 || e.Proc >= procs {
			continue
		}
		c := int(e.Time / horizon * float64(width))
		if c < 0 || e.Time > horizon {
			continue
		}
		if c >= width {
			// An event exactly at t == horizon maps to cell `width`; clamp to
			// the last cell so end-of-run faults stay visible.
			c = width - 1
		}
		rows[e.Proc][c] = '!'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 %s %.3fs\n", strings.Repeat("-", maxInt(0, width-14)), horizon)
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-2d |%s|\n", i, row)
	}
	b.WriteString("legend: C compute, . wait-comm, s speculate, k check, R repair, o overrun, ! fault event\n")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
