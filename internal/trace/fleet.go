package trace

// Fleet trace merge: per-node run journals from a distributed run, each
// stamped in its own process's clock, folded into one time-aligned Chrome
// trace where a speculation's predict/send/deliver/check/repair steps from
// different OS processes appear as one linked flow.
//
// Alignment: every node reports the wall-clock instant its journal's t=0
// corresponds to (Start) plus its measured clock offset to the reference
// node (Offset, from the heartbeat OffsetEstimator), so an event's position
// on the shared timeline is Start + e.T + Offset. Flows are keyed by the
// (src, dst, iter) triple both halves of a message exchange know, which is
// exactly the trace context distnet stamps on wire messages.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"specomp/internal/obs"
)

// NodeJournal is one node's contribution to a merged fleet trace.
type NodeJournal struct {
	// Rank identifies the node; it becomes the Chrome trace pid.
	Rank int `json:"rank"`
	// Start is the wall-clock unix time (seconds) of the node's run start —
	// the instant its journal events measure T from.
	Start float64 `json:"start"`
	// Offset is added to this node's times to land them on the reference
	// node's clock (the per-link estimate from OffsetEstimator; 0 for the
	// reference node itself).
	Offset float64 `json:"offset"`
	// Events is the node's run journal.
	Events []obs.Event `json:"events"`
}

// Aligned returns e's position on the shared fleet timeline, in unix
// seconds of the reference clock.
func (n NodeJournal) Aligned(e obs.Event) float64 { return n.Start + e.T + n.Offset }

// flowKey names one cross-process speculation flow: the message stream
// (src → dst) and the iteration it concerns.
type flowKey struct{ src, dst, iter int }

// specFlowSteps orders a flow's steps when timestamps tie.
var specFlowSteps = map[string]int{
	"predict": 0, "send": 1, "deliver": 2, "check_ok": 3, "check_bad": 3, "repair": 4,
}

// specSliceUS is the rendered duration of the point-like speculation steps —
// wide enough to click in Perfetto, short against real iteration times.
const specSliceUS = 1.5

// flowRef marks one slice as a step of a flow.
type flowRef struct {
	step string
	ts   float64
	pid  int
	tid  int
}

// FleetChromeEvents merges per-node journals into one set of Chrome trace
// events: one process track per node, iteration spans, speculation steps as
// short slices, and flow arrows linking each speculation's cross-process
// lifecycle. The earliest aligned event defines the trace's t=0.
func FleetChromeEvents(nodes []NodeJournal) []ChromeEvent {
	t0 := 0.0
	first := true
	for _, n := range nodes {
		for _, e := range n.Events {
			if at := n.Aligned(e); first || at < t0 {
				t0, first = at, false
			}
		}
	}

	var out []ChromeEvent
	flows := make(map[flowKey][]flowRef)
	for _, n := range nodes {
		out = append(out,
			ChromeEvent{Name: "process_name", Ph: "M", Pid: n.Rank,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", n.Rank)}},
			ChromeEvent{Name: "thread_name", Ph: "M", Pid: n.Rank, Tid: 0,
				Args: map[string]any{"name": "engine"}},
		)
		iterStart := make(map[int]float64) // iter → aligned start
		badPeer := make(map[int]int)       // iter → peer of the last failed check
		for _, e := range n.Events {
			ts := (n.Aligned(e) - t0) * usPerSec
			switch e.Kind {
			case obs.EvIterStart:
				iterStart[e.Iter] = ts
				continue
			case obs.EvIterEnd:
				start, ok := iterStart[e.Iter]
				if !ok {
					continue
				}
				delete(iterStart, e.Iter)
				out = append(out, ChromeEvent{
					Name: fmt.Sprintf("iter %d", e.Iter), Cat: "iter", Ph: "X",
					Ts: start, Dur: ts - start, Pid: n.Rank, Tid: 0,
				})
				continue
			}
			step, key, ok := specStep(n.Rank, e)
			if !ok {
				out = append(out, ChromeEvent{
					Name: e.Kind, Cat: "event", Ph: "i", Ts: ts,
					Pid: n.Rank, Tid: 0, Scope: "t",
				})
				continue
			}
			if step == "check_bad" {
				badPeer[e.Iter] = e.Peer
			}
			if step == "repair" {
				if peer, found := badPeer[e.Iter]; found {
					key = flowKey{src: peer, dst: n.Rank, iter: e.Iter}
				} else {
					key = flowKey{}
					ok = false
				}
			}
			out = append(out, ChromeEvent{
				Name: step, Cat: "spec", Ph: "X", Ts: ts, Dur: specSliceUS,
				Pid: n.Rank, Tid: 0,
				Args: map[string]any{"peer": e.Peer, "iter": e.Iter, "v": e.V},
			})
			if ok {
				flows[key] = append(flows[key], flowRef{step: step, ts: ts, pid: n.Rank, tid: 0})
			}
		}
	}

	// Emit the flow arrows: one id per (src, dst, iter) key with at least two
	// steps, arrows drawn start → step → … → finish in timeline order.
	keys := make([]flowKey, 0, len(flows))
	for k, refs := range flows {
		if len(refs) >= 2 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.iter != b.iter {
			return a.iter < b.iter
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	for id, k := range keys {
		refs := flows[k]
		sort.SliceStable(refs, func(i, j int) bool {
			if refs[i].ts != refs[j].ts {
				return refs[i].ts < refs[j].ts
			}
			return specFlowSteps[refs[i].step] < specFlowSteps[refs[j].step]
		})
		name := fmt.Sprintf("spec %d→%d@%d", k.src, k.dst, k.iter)
		for i, r := range refs {
			ev := ChromeEvent{Name: name, Cat: "spec", Ts: r.ts, Pid: r.pid, Tid: r.tid, ID: id + 1}
			switch i {
			case 0:
				ev.Ph = "s"
			case len(refs) - 1:
				ev.Ph, ev.BP = "f", "e"
			default:
				ev.Ph, ev.BP = "t", "e"
			}
			out = append(out, ev)
		}
	}

	// Metadata first, then everything by (pid, tid, ts); the stable sort
	// keeps a flow event after the slice it binds to.
	sort.SliceStable(out, func(i, j int) bool {
		im, jm := out[i].Ph == "M", out[j].Ph == "M"
		if im != jm {
			return im
		}
		if out[i].Pid != out[j].Pid {
			return out[i].Pid < out[j].Pid
		}
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Ts < out[j].Ts
	})
	return out
}

// specStep classifies a journal event as one step of a cross-process
// speculation flow, returning the step name and the flow key (src → dst
// message stream at iter). Events that are not flow steps report ok=false.
func specStep(rank int, e obs.Event) (step string, key flowKey, ok bool) {
	switch e.Kind {
	case obs.EvSpecMade:
		return "predict", flowKey{src: e.Peer, dst: rank, iter: e.Iter}, true
	case obs.EvSend:
		return "send", flowKey{src: rank, dst: e.Peer, iter: e.Iter}, true
	case obs.EvDeliver:
		return "deliver", flowKey{src: e.Peer, dst: rank, iter: e.Iter}, true
	case obs.EvSpecChecked:
		return "check_ok", flowKey{src: e.Peer, dst: rank, iter: e.Iter}, true
	case obs.EvSpecBad:
		return "check_bad", flowKey{src: e.Peer, dst: rank, iter: e.Iter}, true
	case obs.EvRepair:
		return "repair", flowKey{}, true // key resolved by the caller from the failed check
	}
	return "", flowKey{}, false
}

// WriteFleetTrace writes the merged fleet trace as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteFleetTrace(w io.Writer, nodes []NodeJournal) error {
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: FleetChromeEvents(nodes)}
	if f.TraceEvents == nil {
		f.TraceEvents = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}
