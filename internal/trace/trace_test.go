package trace

import (
	"strings"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/netmodel"
)

func TestRecorderCollectsAndTotals(t *testing.T) {
	var r Recorder
	hook := r.Hook()
	hook(0, cluster.PhaseCompute, 0, 2)
	hook(0, cluster.PhaseComm, 2, 3)
	hook(1, cluster.PhaseCompute, 0, 1.5)
	if len(r.Spans) != 3 {
		t.Fatalf("spans = %d", len(r.Spans))
	}
	if got := r.PhaseTotal(0, cluster.PhaseCompute); got != 2 {
		t.Errorf("PhaseTotal = %g, want 2", got)
	}
	if got := r.End(); got != 3 {
		t.Errorf("End = %g, want 3", got)
	}
}

func TestGanttRendersPhases(t *testing.T) {
	var r Recorder
	hook := r.Hook()
	hook(0, cluster.PhaseCompute, 0, 5)
	hook(0, cluster.PhaseComm, 5, 10)
	hook(1, cluster.PhaseSpec, 0, 2)
	hook(1, cluster.PhaseCheck, 2, 4)
	hook(1, cluster.PhaseCorrect, 4, 10)
	out := r.Gantt(2, 20, 0)
	if !strings.Contains(out, "P0 ") || !strings.Contains(out, "P1 ") {
		t.Fatalf("missing processor rows:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var p0, p1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "P0 ") {
			p0 = l
		}
		if strings.HasPrefix(l, "P1 ") {
			p1 = l
		}
	}
	// First half of P0 is compute, second half wait.
	if !strings.Contains(p0, "CCCC") || !strings.Contains(p0, "....") {
		t.Errorf("P0 row = %q", p0)
	}
	if !strings.Contains(p1, "s") || !strings.Contains(p1, "k") || !strings.Contains(p1, "R") {
		t.Errorf("P1 row = %q", p1)
	}
}

func TestGanttHandlesEmptyAndTinySpans(t *testing.T) {
	var r Recorder
	if out := r.Gantt(2, 30, 0); out != "" {
		t.Errorf("empty recorder rendered %q", out)
	}
	hook := r.Hook()
	hook(0, cluster.PhaseCompute, 0, 1e-9) // shorter than one cell
	hook(0, cluster.PhaseComm, 1e-9, 1)
	out := r.Gantt(1, 10, 0)
	if !strings.Contains(out, "C") {
		t.Errorf("tiny span not visible:\n%s", out)
	}
}

func TestGanttFromRealRun(t *testing.T) {
	var rec Recorder
	c := cluster.New(cluster.Config{
		Machines: cluster.UniformMachines(2, 100),
		Net:      netmodel.Fixed{D: 0.5},
		OnSpan:   rec.Hook(),
	})
	c.Start(func(p *cluster.Proc) {
		if p.ID() == 0 {
			p.Compute(100, cluster.PhaseCompute) // 1s
			p.Send(1, 1, 0, []float64{1})
		} else {
			p.Recv(0, 1)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.PhaseTotal(0, cluster.PhaseCompute) != 1 {
		t.Errorf("compute total = %g", rec.PhaseTotal(0, cluster.PhaseCompute))
	}
	if rec.PhaseTotal(1, cluster.PhaseComm) != 1.5 {
		t.Errorf("comm total = %g", rec.PhaseTotal(1, cluster.PhaseComm))
	}
	out := rec.Gantt(2, 40, 0)
	if !strings.Contains(out, "legend") {
		t.Error("missing legend")
	}
}
