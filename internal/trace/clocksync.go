package trace

import "sync"

// OffsetEstimator estimates the clock offset between two processes from
// NTP-style four-timestamp exchanges, as harvested from distnet's heartbeat
// round trips. One exchange yields
//
//	t1  local send time        (local clock)
//	t2  remote receive time    (remote clock)
//	t3  remote send time       (remote clock)
//	t4  local receive time     (local clock)
//
//	offset = ((t2-t1) + (t3-t4)) / 2     estimate of remote − local
//	rtt    = (t4-t1) − (t3-t2)           round-trip network time
//
// The estimator keeps the sample with the smallest RTT seen: under
// asymmetric path delays d1 (out) and d2 (back) the estimate's error is
// (d1−d2)/2, bounded by rtt/2, so the tightest round trip bounds the error
// best. A nil *OffsetEstimator is a valid "no sync" value: AddSample no-ops
// and Offset reports no estimate.
type OffsetEstimator struct {
	mu  sync.Mutex
	n   int
	rtt float64 // smallest RTT seen
	off float64 // offset of the minimum-RTT sample
}

// AddSample folds one completed exchange into the estimate. Samples with a
// negative RTT (clock stepped mid-exchange, or garbled stamps) are ignored.
func (e *OffsetEstimator) AddSample(t1, t2, t3, t4 float64) {
	if e == nil {
		return
	}
	rtt := (t4 - t1) - (t3 - t2)
	if rtt < 0 {
		return
	}
	off := ((t2 - t1) + (t3 - t4)) / 2
	e.mu.Lock()
	if e.n == 0 || rtt < e.rtt {
		e.rtt, e.off = rtt, off
	}
	e.n++
	e.mu.Unlock()
}

// Offset returns the current estimate of the remote clock minus the local
// clock, the RTT of the sample it came from, and whether any sample has been
// folded in yet.
func (e *OffsetEstimator) Offset() (offset, rtt float64, ok bool) {
	if e == nil {
		return 0, 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.off, e.rtt, e.n > 0
}

// Samples returns how many exchanges have been folded in.
func (e *OffsetEstimator) Samples() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// ErrorBound returns the worst-case absolute error of the current estimate
// (rtt/2), or 0 when no estimate exists.
func (e *OffsetEstimator) ErrorBound() float64 {
	_, rtt, ok := e.Offset()
	if !ok {
		return 0
	}
	return rtt / 2
}
