package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one record of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Phase spans are complete events
// (ph "X") with microsecond timestamps and durations; point events are
// instants (ph "i"); pid/tid naming uses metadata events (ph "M").
// See the Trace Event Format spec for field meanings.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`  // instant scope: "t" = thread
	ID    int            `json:"id,omitempty"` // flow-event binding (ph "s"/"t"/"f")
	BP    string         `json:"bp,omitempty"` // flow binding point: "e" = enclosing slice
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object flavour of the format, which lets us set the
// display unit.
type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NamedRecorder pairs a recorder with a label so several runs (e.g. the
// three Figure 2 scenarios) can share one trace file, each as its own
// process track.
type NamedRecorder struct {
	Name string
	Rec  *Recorder
}

const usPerSec = 1e6

// ChromeEvents converts the recorder's spans and point events to trace
// events on process pid, sorted by (tid, ts) so every track is monotonic.
// name labels the process track (empty for none).
func (r *Recorder) ChromeEvents(pid int, name string) []ChromeEvent {
	procs := map[int]bool{}
	var out []ChromeEvent
	for _, s := range r.Spans {
		procs[s.Proc] = true
		out = append(out, ChromeEvent{
			Name: s.Phase.String(),
			Cat:  "phase",
			Ph:   "X",
			Ts:   s.Start * usPerSec,
			Dur:  (s.End - s.Start) * usPerSec,
			Pid:  pid,
			Tid:  s.Proc,
		})
	}
	for _, e := range r.Events {
		procs[e.Proc] = true
		out = append(out, ChromeEvent{
			Name:  e.Kind,
			Cat:   "event",
			Ph:    "i",
			Ts:    e.Time * usPerSec,
			Pid:   pid,
			Tid:   e.Proc,
			Scope: "t",
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Tid != out[j].Tid {
			return out[i].Tid < out[j].Tid
		}
		return out[i].Ts < out[j].Ts
	})
	// Metadata first: name the process and its per-processor threads.
	var meta []ChromeEvent
	if name != "" {
		meta = append(meta, ChromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	ids := make([]int, 0, len(procs))
	for id := range procs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		meta = append(meta, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
			Args: map[string]any{"name": fmt.Sprintf("P%d", id)},
		})
	}
	return append(meta, out...)
}

// WriteChromeTrace writes one or more recorded runs as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// run becomes its own process track, numbered in argument order.
func WriteChromeTrace(w io.Writer, runs ...NamedRecorder) error {
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []ChromeEvent{}}
	for pid, run := range runs {
		f.TraceEvents = append(f.TraceEvents, run.Rec.ChromeEvents(pid, run.Name)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteChrome writes this recorder alone as Chrome trace-event JSON.
func (r *Recorder) WriteChrome(w io.Writer, name string) error {
	return WriteChromeTrace(w, NamedRecorder{Name: name, Rec: r})
}
