package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"specomp/internal/obs"
)

// twoSkewedNodes builds journals for a two-process exchange in which rank 1's
// clock runs 2 s ahead of rank 0's (the reference): rank 0 sends its iter-5
// boundary message, rank 1 predicts it, later receives it, and validates the
// prediction. Rank 1 also has a failed check at iter 6 followed by a repair.
// All rank-1 stamps are in its own skewed clock; Offset = -2 aligns them.
func twoSkewedNodes() []NodeJournal {
	return []NodeJournal{
		{Rank: 0, Start: 1000.0, Offset: 0, Events: []obs.Event{
			{T: 0.000, Proc: 0, Kind: obs.EvIterStart, Iter: 5, Peer: obs.NoPeer},
			{T: 0.010, Proc: 0, Kind: obs.EvSend, Iter: 5, Peer: 1, V: 7},
			{T: 0.012, Proc: 0, Kind: obs.EvIterEnd, Iter: 5, Peer: obs.NoPeer},
		}},
		{Rank: 1, Start: 1002.005, Offset: -2.0, Events: []obs.Event{
			{T: 0.001, Proc: 1, Kind: obs.EvSpecMade, Iter: 5, Peer: 0},
			{T: 0.030, Proc: 1, Kind: obs.EvDeliver, Iter: 5, Peer: 0, V: 0.02},
			{T: 0.031, Proc: 1, Kind: obs.EvSpecChecked, Iter: 5, Peer: 0, V: 0.0},
			{T: 0.050, Proc: 1, Kind: obs.EvSpecBad, Iter: 6, Peer: 0, V: 0.4},
			{T: 0.055, Proc: 1, Kind: obs.EvRepair, Iter: 6, Peer: obs.NoPeer},
		}},
	}
}

// TestFleetTraceLinksProcesses is the tentpole check: the merged trace has
// one process track per rank, and a speculation's send/predict/deliver/check
// steps from the two OS processes share one flow id.
func TestFleetTraceLinksProcesses(t *testing.T) {
	evs := FleetChromeEvents(twoSkewedNodes())

	pids := map[int]bool{}
	for _, e := range evs {
		pids[e.Pid] = true
	}
	if len(pids) != 2 {
		t.Fatalf("trace spans %d pids, want 2", len(pids))
	}

	// Collect flow events by id; the iter-5 flow must touch both pids and
	// carry all four steps in timeline order s → t → t → f.
	flows := map[int][]ChromeEvent{}
	for _, e := range evs {
		if e.Ph == "s" || e.Ph == "t" || e.Ph == "f" {
			flows[e.ID] = append(flows[e.ID], e)
		}
	}
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2 (iter 5 spec + iter 6 repair)", len(flows))
	}
	var spec5 []ChromeEvent
	for _, refs := range flows {
		if refs[0].Name == "spec 0→1@5" {
			spec5 = refs
		}
	}
	if len(spec5) != 4 {
		t.Fatalf("iter-5 flow has %d refs, want 4 (send, predict, deliver, check)", len(spec5))
	}
	// The emitted array is pid-major; put the refs back on the timeline to
	// check the arrow sequence: start at the earliest step, finish at the
	// latest, binding both processes.
	sort.Slice(spec5, func(i, j int) bool { return spec5[i].Ts < spec5[j].Ts })
	flowPids := map[int]bool{}
	for _, r := range spec5 {
		flowPids[r.Pid] = true
	}
	if !flowPids[0] || !flowPids[1] {
		t.Errorf("iter-5 flow does not span both processes: pids %v", flowPids)
	}
	if spec5[0].Ph != "s" || spec5[len(spec5)-1].Ph != "f" {
		t.Errorf("flow must run s…f in timeline order, got %q…%q", spec5[0].Ph, spec5[len(spec5)-1].Ph)
	}
	for _, r := range spec5[1 : len(spec5)-1] {
		if r.Ph != "t" {
			t.Errorf("interior flow ref has phase %q, want \"t\"", r.Ph)
		}
	}
}

// TestFleetTraceClockAlignment: with the 2 s skew corrected, rank 1's
// predict (its clock 1002.006) lands between rank 0's iter start and the
// deliver — and crucially the send happens before the deliver on the shared
// timeline, which raw timestamps would invert badly.
func TestFleetTraceClockAlignment(t *testing.T) {
	nodes := twoSkewedNodes()
	evs := FleetChromeEvents(nodes)

	at := func(pid int, name string) float64 {
		for _, e := range evs {
			if e.Pid == pid && e.Ph == "X" && e.Name == name {
				return e.Ts
			}
		}
		t.Fatalf("no %q slice on pid %d", name, pid)
		return 0
	}
	send, deliver, predict := at(0, "send"), at(1, "deliver"), at(1, "predict")
	if send >= deliver {
		t.Errorf("send at %vµs not before deliver at %vµs after alignment", send, deliver)
	}
	if predict >= send {
		t.Errorf("rank 1 predicted at %vµs, after the real send at %vµs — speculation should front-run", predict, send)
	}
	// t=0 is the earliest aligned event: rank 0's iter start. Aligned predict
	// is (1002.005 + 0.001 − 2.0) − 1000.0 = 6 ms = 6000 µs.
	if predict < 5999 || predict > 6001 {
		t.Errorf("predict at %vµs, want ≈6000µs on the aligned timeline", predict)
	}
}

// TestFleetTraceRepairFlow: a repair has no peer of its own; it must join
// the flow of the failed check that caused it.
func TestFleetTraceRepairFlow(t *testing.T) {
	evs := FleetChromeEvents(twoSkewedNodes())
	for _, e := range evs {
		if e.Ph == "s" && e.Name == "spec 0→1@6" {
			return
		}
	}
	t.Fatalf("no flow for the iter-6 check_bad → repair pair")
}

// TestWriteFleetTraceJSON: the output is a valid Chrome trace file — JSON
// with a traceEvents array (never null) and metadata events leading.
func TestWriteFleetTraceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFleetTrace(&buf, twoSkewedNodes()); err != nil {
		t.Fatalf("WriteFleetTrace: %v", err)
	}
	var f struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" || len(f.TraceEvents) == 0 {
		t.Fatalf("unexpected file shape: unit=%q events=%d", f.DisplayTimeUnit, len(f.TraceEvents))
	}
	for i, e := range f.TraceEvents {
		if e.Ph == "M" && i > 0 && f.TraceEvents[i-1].Ph != "M" {
			t.Fatalf("metadata event at index %d after non-metadata", i)
		}
	}

	// Empty input still renders a loadable file.
	buf.Reset()
	if err := WriteFleetTrace(&buf, nil); err != nil {
		t.Fatalf("empty WriteFleetTrace: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil || f.TraceEvents == nil {
		t.Fatalf("empty trace must still hold a [] traceEvents array: %v / %s", err, buf.String())
	}
}
