package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"specomp/internal/cluster"
)

func sampleRecorder() *Recorder {
	var r Recorder
	hook := r.Hook()
	hook(0, cluster.PhaseCompute, 0, 2)
	hook(0, cluster.PhaseComm, 2, 3)
	hook(0, cluster.PhaseCheck, 3, 3.5)
	hook(1, cluster.PhaseSpec, 0, 1)
	hook(1, cluster.PhaseCompute, 1, 3)
	ev := r.EventHook()
	ev(1, "retrans", 1.5)
	ev(0, "overrun", 3.5)
	return &r
}

func TestChromeTraceStructure(t *testing.T) {
	var b bytes.Buffer
	if err := sampleRecorder().WriteChrome(&b, "sample"); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if f.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.Unit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	// Every event carries the required fields; timestamps are monotonic
	// within each (pid, tid) track.
	lastTs := map[[2]int]float64{}
	spans, instants, metas := 0, 0, 0
	for _, e := range f.TraceEvents {
		ph, ok := e["ph"].(string)
		if !ok {
			t.Fatalf("event missing ph: %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", e)
		}
		if _, ok := e["tid"]; ph != "M" && !ok {
			t.Fatalf("event missing tid: %v", e)
		}
		switch ph {
		case "M":
			metas++
			continue
		case "X":
			spans++
		case "i":
			instants++
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			t.Fatalf("event missing ts: %v", e)
		}
		key := [2]int{int(e["pid"].(float64)), int(e["tid"].(float64))}
		if ts < lastTs[key] {
			t.Errorf("track %v not monotonic: ts %g after %g", key, ts, lastTs[key])
		}
		lastTs[key] = ts
	}
	if spans != 5 || instants != 2 || metas == 0 {
		t.Errorf("spans=%d instants=%d metas=%d, want 5/2/>0", spans, instants, metas)
	}
}

// TestChromeTraceGolden pins the serialized form of a minimal trace: the
// format is a contract with external viewers, so changes must be deliberate.
func TestChromeTraceGolden(t *testing.T) {
	var r Recorder
	r.Hook()(0, cluster.PhaseCompute, 0, 1)
	r.EventHook()(0, "dup", 0.5)
	var b bytes.Buffer
	if err := r.WriteChrome(&b, "g"); err != nil {
		t.Fatal(err)
	}
	want := `{
 "traceEvents": [
  {
   "name": "process_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "g"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 0,
   "tid": 0,
   "args": {
    "name": "P0"
   }
  },
  {
   "name": "compute",
   "cat": "phase",
   "ph": "X",
   "ts": 0,
   "dur": 1000000,
   "pid": 0,
   "tid": 0
  },
  {
   "name": "dup",
   "cat": "event",
   "ph": "i",
   "ts": 500000,
   "pid": 0,
   "tid": 0,
   "s": "t"
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if b.String() != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
	// And it round-trips through encoding/json.
	var f chromeFile
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	enc := json.NewEncoder(&b2)
	enc.SetIndent("", " ")
	if err := enc.Encode(f); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Error("trace JSON does not round-trip through encoding/json")
	}
}

func TestChromeTraceMultiRunTracks(t *testing.T) {
	var b bytes.Buffer
	a, c := sampleRecorder(), sampleRecorder()
	if err := WriteChromeTrace(&b, NamedRecorder{"runA", a}, NamedRecorder{"runB", c}); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, e := range f.TraceEvents {
		pids[e.Pid] = true
	}
	if !pids[0] || !pids[1] {
		t.Errorf("expected process tracks 0 and 1, got %v", pids)
	}
	if !strings.Contains(b.String(), "runA") || !strings.Contains(b.String(), "runB") {
		t.Error("process names missing")
	}
}

func TestGanttEventOverlayAndHorizonClamp(t *testing.T) {
	var r Recorder
	r.Hook()(0, cluster.PhaseCompute, 0, 10)
	ev := r.EventHook()
	ev(0, "retrans", 5)
	ev(0, "giveup", 10)  // exactly at the horizon: must clamp to the last cell
	ev(0, "ignored", 11) // beyond the horizon: dropped
	ev(2, "offgrid", 5)  // row out of range: dropped
	out := r.Gantt(1, 10, 10)
	row := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "P0 ") {
			row = l
		}
	}
	if row == "" {
		t.Fatalf("no P0 row in:\n%s", out)
	}
	cells := row[strings.Index(row, "|")+1 : strings.LastIndex(row, "|")]
	if len(cells) != 10 {
		t.Fatalf("row %q has %d cells", cells, len(cells))
	}
	if cells[5] != '!' {
		t.Errorf("mid-run event not overlaid: %q", cells)
	}
	if cells[9] != '!' {
		t.Errorf("event at t == horizon dropped from the last cell: %q", cells)
	}
	if strings.Count(cells, "!") != 2 {
		t.Errorf("expected exactly 2 overlay marks in %q", cells)
	}
}

func TestPhaseTotalAcrossOverlappingSpans(t *testing.T) {
	// Overlapping and out-of-order spans still sum their raw durations:
	// PhaseTotal is defined over recorded intervals, not wall coverage.
	var r Recorder
	hook := r.Hook()
	hook(0, cluster.PhaseCompute, 2, 5)
	hook(0, cluster.PhaseCompute, 4, 6) // overlaps the previous span
	hook(0, cluster.PhaseCompute, 0, 1) // out of order
	hook(0, cluster.PhaseComm, 1, 2)    // other phase, ignored
	hook(1, cluster.PhaseCompute, 0, 9) // other proc, ignored
	if got := r.PhaseTotal(0, cluster.PhaseCompute); got != 3+2+1 {
		t.Errorf("PhaseTotal = %g, want 6", got)
	}
	if got := r.PhaseTotal(0, cluster.PhaseComm); got != 1 {
		t.Errorf("comm PhaseTotal = %g, want 1", got)
	}
}
