package trace

import (
	"math"
	"math/rand"
	"testing"
)

// exchange simulates one NTP-style round trip between a local clock and a
// remote clock that runs skew seconds ahead, with one-way delays d1 (out)
// and d2 (back), returning the four stamps AddSample consumes.
func exchange(localSend, skew, d1, d2 float64) (t1, t2, t3, t4 float64) {
	t1 = localSend
	t2 = localSend + d1 + skew // remote clock at arrival
	t3 = t2 + 0.0001           // remote turns it around 100µs later
	t4 = localSend + d1 + 0.0001 + d2
	return
}

// TestOffsetSymmetricExact: with equal path delays the estimator recovers
// the skew exactly — the (d1−d2)/2 error term vanishes.
func TestOffsetSymmetricExact(t *testing.T) {
	for _, skew := range []float64{0, 1.5, -2.25, 1e-6, 86400} {
		var e OffsetEstimator
		e.AddSample(exchange(1000, skew, 0.002, 0.002))
		off, rtt, ok := e.Offset()
		if !ok {
			t.Fatalf("skew %v: no estimate after one sample", skew)
		}
		// Tolerance scales with the stamps: at day-sized skews float64
		// cancellation costs a few ULPs of the large operands.
		tol := 1e-12 + 1e-11*math.Abs(skew)
		if math.Abs(off-skew) > tol {
			t.Errorf("skew %v: estimated %v (err %v), want exact", skew, off, off-skew)
		}
		if math.Abs(rtt-0.004) > tol {
			t.Errorf("skew %v: rtt %v, want 0.004", skew, rtt)
		}
	}
}

// TestOffsetAsymmetricBounded: with unequal delays the error is (d1−d2)/2,
// always within the advertised ErrorBound of rtt/2.
func TestOffsetAsymmetricBounded(t *testing.T) {
	const skew = 3.0
	cases := []struct{ d1, d2 float64 }{
		{0.001, 0.005}, {0.005, 0.001}, {0.0001, 0.01}, {0.01, 0.0001},
	}
	for _, c := range cases {
		var e OffsetEstimator
		e.AddSample(exchange(500, skew, c.d1, c.d2))
		off, _, ok := e.Offset()
		if !ok {
			t.Fatalf("d1=%v d2=%v: no estimate", c.d1, c.d2)
		}
		wantErr := (c.d1 - c.d2) / 2
		if math.Abs((off-skew)-wantErr) > 1e-12 {
			t.Errorf("d1=%v d2=%v: error %v, want %v", c.d1, c.d2, off-skew, wantErr)
		}
		if math.Abs(off-skew) > e.ErrorBound()+1e-12 {
			t.Errorf("d1=%v d2=%v: error %v exceeds bound %v", c.d1, c.d2, off-skew, e.ErrorBound())
		}
	}
}

// TestOffsetKeepsMinRTT: across many noisy exchanges the estimator keeps the
// tightest round trip, so adding jittery samples never loosens the estimate.
func TestOffsetKeepsMinRTT(t *testing.T) {
	const skew = -0.75
	rng := rand.New(rand.NewSource(42))
	var e OffsetEstimator
	for i := 0; i < 200; i++ {
		d1 := 0.001 + 0.02*rng.Float64()
		d2 := 0.001 + 0.02*rng.Float64()
		e.AddSample(exchange(float64(i), skew, d1, d2))
	}
	// One symmetric tight exchange: 200µs RTT, exact offset.
	e.AddSample(exchange(1000, skew, 0.0001, 0.0001))
	off, rtt, ok := e.Offset()
	if !ok || e.Samples() != 201 {
		t.Fatalf("samples=%d ok=%v", e.Samples(), ok)
	}
	if math.Abs(rtt-0.0002) > 1e-12 {
		t.Errorf("kept rtt %v, want the 0.0002 minimum", rtt)
	}
	if math.Abs(off-skew) > 1e-12 {
		t.Errorf("estimate %v from the tight sample, want %v exactly", off, skew)
	}
	// More loose samples afterwards must not displace the minimum.
	e.AddSample(exchange(2000, skew, 0.01, 0.001))
	if off2, _, _ := e.Offset(); off2 != off {
		t.Errorf("a looser sample displaced the min-RTT estimate: %v → %v", off, off2)
	}
}

// TestOffsetRejectsNegativeRTT: a clock step mid-exchange yields rtt < 0;
// the sample must be dropped rather than poisoning the estimate.
func TestOffsetRejectsNegativeRTT(t *testing.T) {
	var e OffsetEstimator
	// t3−t2 > t4−t1 ⇒ negative RTT.
	e.AddSample(100, 200, 250, 100.001)
	if _, _, ok := e.Offset(); ok {
		t.Fatalf("negative-RTT sample was folded in")
	}
	if e.Samples() != 0 {
		t.Fatalf("negative-RTT sample counted: %d", e.Samples())
	}
}

// TestOffsetNilSafe: a nil estimator is the valid "no sync" value.
func TestOffsetNilSafe(t *testing.T) {
	var e *OffsetEstimator
	e.AddSample(1, 2, 3, 4)
	if _, _, ok := e.Offset(); ok {
		t.Fatalf("nil estimator reports an estimate")
	}
	if e.Samples() != 0 || e.ErrorBound() != 0 {
		t.Fatalf("nil estimator reports state")
	}
}
