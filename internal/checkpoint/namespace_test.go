package checkpoint

// Job-namespaced custody: the scheduler gives every job its own
// subdirectory of one custody root (<dir>/<job>/proc-N.ckpt). These tests
// pin the isolation properties the scheduler's preemption protocol leans
// on — concurrent jobs cannot clobber each other's blobs, and clearing one
// job's namespace leaves every other job intact.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestNamespaceIsolation(t *testing.T) {
	root, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := root.Namespace("job-0001")
	if err != nil {
		t.Fatal(err)
	}
	b, err := root.Namespace("job-0002")
	if err != nil {
		t.Fatal(err)
	}

	// Same proc numbers, different jobs: the blobs must not cross. The
	// frontier value marks which job wrote each blob.
	blobA, blobB := fsBlob(0, 10), fsBlob(0, 20)
	a.Save(0, blobA)
	b.Save(0, blobB)
	if blob, ok := a.Load(0); !ok || !bytes.Equal(blob, blobA) {
		t.Fatalf("namespace a proc 0: ok=%v", ok)
	}
	if blob, ok := b.Load(0); !ok || !bytes.Equal(blob, blobB) {
		t.Fatalf("namespace b proc 0: ok=%v", ok)
	}
	// The root sees neither job's blobs.
	if _, ok := root.Load(0); ok {
		t.Fatal("root store can see a namespaced blob")
	}

	// Clearing one job's custody leaves the other untouched.
	if err := a.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Load(0); ok {
		t.Fatal("cleared namespace still loads")
	}
	if blob, ok := b.Load(0); !ok || !bytes.Equal(blob, blobB) {
		t.Fatalf("clear leaked across namespaces: ok=%v", ok)
	}

	// Re-opening the same namespace sees the same blobs (how a restarted
	// scheduler's resume path finds a preempted job's snapshots).
	b2, err := root.Namespace("job-0002")
	if err != nil {
		t.Fatal(err)
	}
	if blob, ok := b2.Load(0); !ok || !bytes.Equal(blob, blobB) {
		t.Fatalf("reopened namespace: ok=%v", ok)
	}
}

// TestNamespaceConcurrentJobs hammers many namespaces from many
// goroutines — the shape of a scheduler checkpointing several fleets at
// once — and then verifies every blob landed in the right place. Run under
// -race this also proves the store's internal locking.
func TestNamespaceConcurrentJobs(t *testing.T) {
	root, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const jobs, procs, rounds = 4, 3, 20
	stores := make([]*FileStore, jobs)
	for j := range stores {
		if stores[j], err = root.Namespace(fmt.Sprintf("job-%04d", j)); err != nil {
			t.Fatal(err)
		}
	}
	// Encode (job, proc, round) into the snapshot frontier so the final
	// blob in each file identifies its writer.
	frontier := func(j, p, r int) int { return 2 + j*10000 + p*100 + r }
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(j, p int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					stores[j].Save(p, fsBlob(p, frontier(j, p, r)))
				}
			}(j, p)
		}
	}
	wg.Wait()
	for j := 0; j < jobs; j++ {
		if err := stores[j].Err(); err != nil {
			t.Fatalf("job %d store degraded: %v", j, err)
		}
		for p := 0; p < procs; p++ {
			blob, ok := stores[j].Load(p)
			if !ok {
				t.Fatalf("job %d proc %d: no blob", j, p)
			}
			snap, err := Decode(blob)
			if err != nil {
				t.Fatalf("job %d proc %d: %v", j, p, err)
			}
			if want := frontier(j, p, rounds-1); snap.Frontier != want || snap.Proc != p {
				t.Fatalf("job %d proc %d: frontier %d proc %d, want frontier %d proc %d",
					j, p, snap.Frontier, snap.Proc, want, p)
			}
		}
	}
}

// TestValidNamespace rejects ids that would escape or collide inside the
// custody root.
func TestValidNamespace(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "../other", "a/b", `a\b`, ".hidden"} {
		if err := ValidNamespace(bad); err == nil {
			t.Errorf("ValidNamespace(%q) accepted", bad)
		}
	}
	for _, good := range []string{"job-0001", "j", "soak_run-7"} {
		if err := ValidNamespace(good); err != nil {
			t.Errorf("ValidNamespace(%q): %v", good, err)
		}
	}
	root, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Namespace("../escape"); err == nil {
		t.Fatal("Namespace accepted a path traversal")
	}
}
