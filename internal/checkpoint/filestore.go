package checkpoint

// FileStore: durable checkpoint custody on the local filesystem. One file
// per processor, written with the classic atomic-replace dance (write a
// temp file, fsync, rename over the real name), so a crash at any instant
// leaves either the previous complete checkpoint or the new complete
// checkpoint — never a torn one. Load trusts nothing: a whole-file CRC32
// footer catches torn or bit-rotted files, and the SPCK magic/version
// words are verified so a file from a different format (or a different
// kind of blob entirely) is rejected instead of handed to Decode.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// fileFooterLen is the CRC32 footer appended to every checkpoint file.
const fileFooterLen = 4

// FileStore is a checkpoint.Store backed by a directory: proc p's latest
// blob lives in <dir>/proc-p.ckpt. Safe for concurrent use.
//
// Save matches the Store contract (no error return); write failures are
// latched and readable via Err, and a failed Save leaves the previous
// on-disk checkpoint intact — exactly the degradation a custody holder
// wants when the disk fills mid-run.
type FileStore struct {
	dir string

	mu      sync.Mutex
	saves   map[int]int
	lastErr error
}

// NewFileStore opens (creating if needed) a checkpoint directory.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: custody dir: %w", err)
	}
	return &FileStore{dir: dir, saves: make(map[int]int)}, nil
}

// Dir returns the backing directory.
func (s *FileStore) Dir() string { return s.dir }

// Namespace returns a store rooted at <dir>/<job>, so concurrent jobs
// sharing one custody directory cannot clobber each other's proc-N.ckpt
// files: each job's blobs live (and are Cleared) inside its own
// subdirectory. The job id must be a single clean path segment — anything
// that could escape the custody root (separators, "..", empty) is rejected.
func (s *FileStore) Namespace(job string) (*FileStore, error) {
	if err := ValidNamespace(job); err != nil {
		return nil, err
	}
	return NewFileStore(filepath.Join(s.dir, job))
}

// ValidNamespace reports whether job can name a custody namespace: one
// non-empty path segment with no separators, traversal or hidden-file
// prefix. The scheduler validates tenant-supplied names through this before
// they ever reach the filesystem.
func ValidNamespace(job string) error {
	if job == "" {
		return fmt.Errorf("checkpoint: empty custody namespace")
	}
	if strings.ContainsAny(job, "/\\") || job == "." || job == ".." || strings.HasPrefix(job, ".") {
		return fmt.Errorf("checkpoint: invalid custody namespace %q", job)
	}
	return nil
}

func (s *FileStore) path(proc int) string {
	return filepath.Join(s.dir, fmt.Sprintf("proc-%d.ckpt", proc))
}

// Save persists blob as proc's latest checkpoint via atomic replace.
func (s *FileStore) Save(proc int, blob []byte) {
	err := s.save(proc, blob)
	s.mu.Lock()
	if err != nil {
		s.lastErr = err
	} else {
		s.saves[proc]++
	}
	s.mu.Unlock()
}

func (s *FileStore) save(proc int, blob []byte) error {
	buf := make([]byte, len(blob)+fileFooterLen)
	copy(buf, blob)
	binary.LittleEndian.PutUint32(buf[len(blob):], crc32.ChecksumIEEE(blob))

	final := s.path(proc)
	tmp, err := os.CreateTemp(s.dir, filepath.Base(final)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: writing %s: %w", name, err)
	}
	// The fsync before the rename is the atomicity half the rename alone
	// does not buy: without it a power cut can publish a name pointing at
	// unwritten blocks.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: syncing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: closing %s: %w", name, err)
	}
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: publishing %s: %w", final, err)
	}
	return nil
}

// Load returns proc's latest checkpoint if a complete, uncorrupted,
// current-format one exists on disk. Any defect — missing file, truncated
// footer, CRC mismatch, wrong magic, wrong version — reads as "no
// checkpoint": the caller restarts from scratch rather than from garbage.
func (s *FileStore) Load(proc int) ([]byte, bool) {
	raw, err := os.ReadFile(s.path(proc))
	if err != nil {
		return nil, false
	}
	if len(raw) < fileFooterLen {
		return nil, false
	}
	blob := raw[:len(raw)-fileFooterLen]
	sum := binary.LittleEndian.Uint32(raw[len(raw)-fileFooterLen:])
	if crc32.ChecksumIEEE(blob) != sum {
		return nil, false
	}
	// Format sniff: custody only ever holds SPCK snapshots, so insist on
	// the magic and the current version word before handing the blob out.
	if len(blob) < len(magic)+8 {
		return nil, false
	}
	for i := range magic {
		if blob[i] != magic[i] {
			return nil, false
		}
	}
	if v := int(int64(binary.LittleEndian.Uint64(blob[len(magic):]))); v != Version {
		return nil, false
	}
	return blob, true
}

// Clear removes every checkpoint file in the directory. Call it after a
// run completes successfully: custody exists to revive *that* run, and a
// completed run's final checkpoints would poison the next run started on
// the same directory (ranks restored at the finish line exit immediately
// and stop serving refills, stranding any rank restored a few iterations
// behind them).
func (s *FileStore) Clear() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("checkpoint: clearing custody: %w", err)
	}
	for _, e := range entries {
		var proc int
		if _, err := fmt.Sscanf(e.Name(), "proc-%d.ckpt", &proc); err != nil {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil {
			return fmt.Errorf("checkpoint: clearing custody: %w", err)
		}
	}
	return nil
}

// Saves reports how many times proc has been successfully checkpointed
// through this store instance (on-disk files inherited from a previous
// process are not counted).
func (s *FileStore) Saves(proc int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves[proc]
}

// Err returns the most recent write failure, if any.
func (s *FileStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}
