package checkpoint

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func sample() *Snapshot {
	return &Snapshot{
		Proc:      2,
		Epoch:     1,
		Validated: 17,
		Frontier:  19,
		Own: []Entry{
			{Iter: 17, Data: []float64{1.5, -2.25}},
			{Iter: 18, Data: []float64{math.Pi, math.Inf(1)}},
			{Iter: 19, Data: []float64{}},
		},
		Hist: [][]Entry{
			{{Iter: 15, Data: []float64{0.5}}, {Iter: 16, Data: []float64{0.25}}},
			nil,
			{{Iter: 17, Data: []float64{-0}}},
		},
		Received: [][]Entry{
			{{Iter: 18, Data: []float64{9}}},
			{},
			nil,
		},
		Preds: []PredRow{
			{Iter: 18, Data: [][]float64{nil, {3.5}, nil}},
			{Iter: 19, Data: [][]float64{{1}, {2}, nil}},
		},
		Overrun: []int{18, 19},
		SentLog: []Entry{{Iter: 16, Data: []float64{7}}, {Iter: 17, Data: []float64{8}}},
	}
}

func TestRoundTripGolden(t *testing.T) {
	s := sample()
	blob := Encode(s)
	// Deterministic: encoding twice yields identical bytes.
	if !bytes.Equal(blob, Encode(s)) {
		t.Fatal("two encodings of the same snapshot differ")
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical round trip: decode → re-encode reproduces the blob.
	if !bytes.Equal(blob, Encode(got)) {
		t.Fatal("decode→encode round trip is not byte-identical")
	}
	// Nil-ness of float slices survives (nil slot ≠ empty prediction).
	if got.Preds[0].Data[0] != nil || got.Preds[0].Data[1] == nil {
		t.Errorf("prediction nil-ness lost: %+v", got.Preds[0])
	}
	if got.Own[2].Data == nil {
		t.Error("empty (non-nil) own data decoded as nil")
	}
	if got.Proc != 2 || got.Epoch != 1 || got.Validated != 17 || got.Frontier != 19 {
		t.Errorf("counters corrupted: %+v", got)
	}
	if !reflect.DeepEqual(got.Overrun, s.Overrun) {
		t.Errorf("overrun set corrupted: %v", got.Overrun)
	}
	if len(got.Hist) != 3 || !reflect.DeepEqual(got.Hist[0], s.Hist[0]) {
		t.Errorf("history corrupted: %+v", got.Hist)
	}
}

func TestDecodeRejectsCorruptBlobs(t *testing.T) {
	blob := Encode(sample())
	cases := map[string][]byte{
		"empty":     {},
		"short":     blob[:3],
		"bad magic": append([]byte("NOPE"), blob[4:]...),
		"truncated": blob[:len(blob)-5],
		"trailing":  append(append([]byte{}, blob...), 0, 0, 0, 0, 0, 0, 0, 0),
	}
	bad := append([]byte{}, blob...)
	bad[4] = 99 // version word
	cases["bad version"] = bad
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted a corrupt blob", name)
		}
	}
	// A count word replaced with a huge value must error, not allocate.
	huge := append([]byte{}, blob...)
	for i := 4 + 8*5; i < 4+8*6; i++ {
		huge[i] = 0x7f
	}
	if _, err := Decode(huge); err == nil {
		t.Error("huge count accepted")
	}
}

func TestMemStore(t *testing.T) {
	st := NewMemStore()
	if _, ok := st.Load(0); ok {
		t.Fatal("empty store claims a checkpoint")
	}
	blob := []byte{1, 2, 3}
	st.Save(0, blob)
	blob[0] = 9 // caller mutation must not reach the store
	got, ok := st.Load(0)
	if !ok || got[0] != 1 {
		t.Fatalf("stored blob corrupted by caller mutation: %v", got)
	}
	got[1] = 9 // nor must reader mutation
	again, _ := st.Load(0)
	if again[1] != 2 {
		t.Fatal("stored blob corrupted by reader mutation")
	}
	st.Save(0, []byte{4})
	if got, _ := st.Load(0); len(got) != 1 || got[0] != 4 {
		t.Fatal("Save did not replace the previous checkpoint")
	}
	if st.Saves(0) != 2 || st.Saves(1) != 0 {
		t.Errorf("Saves = %d/%d, want 2/0", st.Saves(0), st.Saves(1))
	}
}
