package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fsBlob builds a small but non-trivial valid SPCK blob for proc.
func fsBlob(proc, frontier int) []byte {
	return Encode(&Snapshot{
		Proc: proc, Epoch: 1, Validated: frontier - 1, Frontier: frontier,
		Own:      []Entry{{Iter: frontier, Data: []float64{1, 2, 3}}},
		Hist:     [][]Entry{{{Iter: frontier - 1, Data: []float64{4}}}, nil},
		Received: [][]Entry{nil, nil},
		SentLog:  []Entry{{Iter: frontier, Data: []float64{5, 6}}},
	})
}

// TestFileStoreRoundTripParity drives a FileStore and a MemStore with the
// same saves and asserts byte-identical loads and matching save counts.
func TestFileStoreRoundTripParity(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMemStore()

	for proc := 0; proc < 3; proc++ {
		for k := 0; k < 2+proc; k++ {
			b := fsBlob(proc, 10*(k+1))
			fs.Save(proc, b)
			ms.Save(proc, b)
		}
	}
	if err := fs.Err(); err != nil {
		t.Fatalf("save error: %v", err)
	}
	for proc := 0; proc < 3; proc++ {
		fb, fok := fs.Load(proc)
		mb, mok := ms.Load(proc)
		if !fok || !mok {
			t.Fatalf("proc %d: load ok mismatch (file %v, mem %v)", proc, fok, mok)
		}
		if !bytes.Equal(fb, mb) {
			t.Errorf("proc %d: file store blob differs from mem store blob", proc)
		}
		if fs.Saves(proc) != ms.Saves(proc) {
			t.Errorf("proc %d: %d file saves vs %d mem saves", proc, fs.Saves(proc), ms.Saves(proc))
		}
		if s, err := Decode(fb); err != nil || s.Proc != proc {
			t.Errorf("proc %d: loaded blob does not decode cleanly: %v", proc, err)
		}
	}
	if _, ok := fs.Load(99); ok {
		t.Error("load of never-saved proc reported a checkpoint")
	}
}

// TestFileStoreSurvivesReopen simulates a custody-holder restart: a fresh
// FileStore on the same directory serves the previous incarnation's blobs.
func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := fsBlob(1, 40)
	fs1.Save(1, want)

	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := fs2.Load(1)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("reopened store lost the checkpoint (ok=%v)", ok)
	}
	if fs2.Saves(1) != 0 {
		t.Errorf("reopened store counts inherited files as its own saves")
	}
}

// TestFileStoreCrashWindowSafety covers the atomic-replace guarantees: a
// stray temp file (a writer that died mid-save) never shadows the published
// checkpoint, and a save over an existing checkpoint replaces it entirely.
func TestFileStoreCrashWindowSafety(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := fsBlob(0, 10)
	fs.Save(0, old)

	// A crashed writer's leftover: garbage under the temp-name pattern.
	if err := os.WriteFile(filepath.Join(dir, "proc-0.ckpt.tmp-dead"), []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := fs.Load(0)
	if !ok || !bytes.Equal(got, old) {
		t.Fatalf("stray temp file disturbed the published checkpoint (ok=%v)", ok)
	}

	// Replacement is whole-file: the new blob (shorter than the old) must
	// fully supersede it, no tail bytes bleeding through.
	niu := fsBlob(0, 20)
	if len(niu) >= len(old) {
		// Keep the regression meaningful: shrink the replacement.
		niu = Encode(&Snapshot{Proc: 0, Epoch: 2, Validated: 19, Frontier: 20})
	}
	fs.Save(0, niu)
	got, ok = fs.Load(0)
	if !ok || !bytes.Equal(got, niu) {
		t.Fatalf("replacement save did not fully supersede the old checkpoint (ok=%v)", ok)
	}
}

// TestFileStoreRejectsCorruption flips, truncates and forges the on-disk
// file and asserts every defect reads as "no checkpoint".
func TestFileStoreRejectsCorruption(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bitflip-body", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }},
		{"bitflip-footer", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"footer-only", func(b []byte) []byte { return b[len(b)-4:] }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			fs, err := NewFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			fs.Save(2, fsBlob(2, 30))
			path := filepath.Join(dir, "proc-2.ckpt")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, m.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := fs.Load(2); ok {
				t.Error("corrupted checkpoint file loaded as valid")
			}
		})
	}

	// A well-formed CRC over a non-SPCK body must still be rejected: custody
	// only serves current-format snapshots.
	t.Run("wrong-magic", func(t *testing.T) {
		dir := t.TempDir()
		fs, err := NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		fs.Save(3, fsBlob(3, 5))
		path := filepath.Join(dir, "proc-3.ckpt")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[0] = 'X' // break the magic…
		// …and re-seal the CRC so only the sniff can catch it.
		reseal := append([]byte(nil), raw[:len(raw)-4]...)
		fs.Save(3, reseal) // Save recomputes the footer over the doctored body
		if _, ok := fs.Load(3); ok {
			t.Error("non-SPCK body with a valid CRC loaded as a checkpoint")
		}
	})

	// Version drift: a future/past layout version is refused even when the
	// file is otherwise intact.
	t.Run("wrong-version", func(t *testing.T) {
		dir := t.TempDir()
		fs, err := NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		blob := fsBlob(4, 5)
		blob[4] = byte(Version + 1) // little-endian version word
		fs.Save(4, blob)
		if _, ok := fs.Load(4); ok {
			t.Error("wrong-version blob loaded as a checkpoint")
		}
	})
}

// TestFileStoreClear pins the post-run cleanup: Clear removes every
// checkpoint file (and stranded temp files) but nothing else, and the
// store keeps working afterwards.
func TestFileStoreClear(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 3; proc++ {
		fs.Save(proc, fsBlob(proc, 10))
	}
	// A foreign file in the directory must survive the clear.
	keep := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(keep, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := fs.Clear(); err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 3; proc++ {
		if _, ok := fs.Load(proc); ok {
			t.Errorf("proc %d still loads after Clear", proc)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("Clear removed an unrelated file: %v", err)
	}

	// The cleared store is still a working store.
	fs.Save(1, fsBlob(1, 20))
	if b, ok := fs.Load(1); !ok || len(b) == 0 {
		t.Error("save after Clear does not load")
	}
}
