// Package checkpoint provides deterministic, versioned snapshot/restore of
// speculative-engine state. A restarted processor restores its last snapshot
// and rejoins the computation from there instead of from iteration zero.
//
// The encoding is a fixed-order binary layout (magic, version, then every
// field in declaration order; little-endian int64/float64 words) with no
// maps, so encoding the same Snapshot twice yields byte-identical blobs —
// the property the golden round-trip test pins down. Snapshot producers are
// responsible for presenting state in a canonical order (slices sorted by
// iteration); the engine does this when it builds a Snapshot.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Version is the current snapshot format version. Decode rejects blobs
// written by a different major layout.
const Version = 1

// magic brands a blob as a speculation checkpoint ("SPCK").
var magic = [4]byte{'S', 'P', 'C', 'K'}

// Entry is one iteration-tagged vector of values.
type Entry struct {
	Iter int
	Data []float64
}

// Snapshot is everything a processor needs to resume mid-computation:
// counters, its own per-iteration results, per-peer validated history,
// stashed (received but not yet consumed) actuals, pending speculated
// inputs, deferred-validation marks, and the recent-broadcast log used to
// serve peer catch-up requests.
//
// Slice order is semantic: Hist/Received/Preds-row slots are indexed by
// peer id; Own, Received[k], SentLog and Overrun must be sorted ascending
// by iteration so encoding is canonical.
type Snapshot struct {
	Proc      int // processor id the snapshot belongs to
	Epoch     int // incarnation epoch at snapshot time
	Validated int // highest fully validated iteration
	Frontier  int // highest computed iteration

	Own      []Entry   // own results per iteration, ascending
	Hist     [][]Entry // per peer: validated history ring, oldest first
	Received [][]Entry // per peer: stashed actual messages, ascending
	// Preds holds pending speculated inputs: one row per iteration
	// (ascending), each row one slot per peer (nil = no prediction).
	Preds   []PredRow
	Overrun []int   // iterations whose validation was deferred, ascending
	SentLog []Entry // recent own broadcasts, ascending (rejoin catch-up)
}

// PredRow is the speculated per-peer input vector for one iteration.
type PredRow struct {
	Iter int
	Data [][]float64 // indexed by peer; nil slot = no prediction held
}

// Encode serializes a snapshot. Same Snapshot in, same bytes out.
func Encode(s *Snapshot) []byte {
	var w writer
	w.buf = append(w.buf, magic[:]...)
	w.putInt(Version)
	w.putInt(s.Proc)
	w.putInt(s.Epoch)
	w.putInt(s.Validated)
	w.putInt(s.Frontier)
	w.putEntries(s.Own)
	w.putInt(len(s.Hist))
	for _, h := range s.Hist {
		w.putEntries(h)
	}
	w.putInt(len(s.Received))
	for _, r := range s.Received {
		w.putEntries(r)
	}
	w.putInt(len(s.Preds))
	for _, row := range s.Preds {
		w.putInt(row.Iter)
		w.putInt(len(row.Data))
		for _, d := range row.Data {
			w.putFloats(d)
		}
	}
	w.putInt(len(s.Overrun))
	for _, it := range s.Overrun {
		w.putInt(it)
	}
	w.putEntries(s.SentLog)
	return w.buf
}

// Decode parses a blob produced by Encode.
func Decode(b []byte) (*Snapshot, error) {
	r := reader{buf: b}
	var m [4]byte
	if len(b) < len(magic) {
		return nil, errors.New("checkpoint: blob too short")
	}
	copy(m[:], b[:4])
	r.off = 4
	if m != magic {
		return nil, errors.New("checkpoint: bad magic")
	}
	v, err := r.int()
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("checkpoint: version %d, want %d", v, Version)
	}
	s := &Snapshot{}
	if s.Proc, err = r.int(); err != nil {
		return nil, err
	}
	if s.Epoch, err = r.int(); err != nil {
		return nil, err
	}
	if s.Validated, err = r.int(); err != nil {
		return nil, err
	}
	if s.Frontier, err = r.int(); err != nil {
		return nil, err
	}
	if s.Own, err = r.entries(); err != nil {
		return nil, err
	}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	s.Hist = make([][]Entry, n)
	for i := range s.Hist {
		if s.Hist[i], err = r.entries(); err != nil {
			return nil, err
		}
	}
	if n, err = r.count(); err != nil {
		return nil, err
	}
	s.Received = make([][]Entry, n)
	for i := range s.Received {
		if s.Received[i], err = r.entries(); err != nil {
			return nil, err
		}
	}
	if n, err = r.count(); err != nil {
		return nil, err
	}
	s.Preds = make([]PredRow, n)
	for i := range s.Preds {
		if s.Preds[i].Iter, err = r.int(); err != nil {
			return nil, err
		}
		var slots int
		if slots, err = r.count(); err != nil {
			return nil, err
		}
		s.Preds[i].Data = make([][]float64, slots)
		for k := range s.Preds[i].Data {
			if s.Preds[i].Data[k], err = r.floats(); err != nil {
				return nil, err
			}
		}
	}
	if n, err = r.count(); err != nil {
		return nil, err
	}
	s.Overrun = make([]int, n)
	for i := range s.Overrun {
		if s.Overrun[i], err = r.int(); err != nil {
			return nil, err
		}
	}
	if s.SentLog, err = r.entries(); err != nil {
		return nil, err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(r.buf)-r.off)
	}
	return s, nil
}

// Store is the stable storage a processor checkpoints to. In the simulation
// it survives crashes (a crashed Proc loses its memory, not its disk).
type Store interface {
	Save(proc int, blob []byte)
	Load(proc int) ([]byte, bool)
}

// MemStore is an in-memory Store, safe for concurrent use. The zero value
// is not ready; use NewMemStore.
type MemStore struct {
	mu    sync.Mutex
	blobs map[int][]byte
	saves map[int]int
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[int][]byte), saves: make(map[int]int)}
}

// Save keeps a private copy of blob as proc's latest checkpoint.
func (m *MemStore) Save(proc int, blob []byte) {
	cp := make([]byte, len(blob))
	copy(cp, blob)
	m.mu.Lock()
	m.blobs[proc] = cp
	m.saves[proc]++
	m.mu.Unlock()
}

// Load returns a copy of proc's latest checkpoint, if any.
func (m *MemStore) Load(proc int) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[proc]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, true
}

// Saves reports how many times proc has checkpointed.
func (m *MemStore) Saves(proc int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saves[proc]
}

// --- wire helpers -------------------------------------------------------

// nilLen marks a nil float slice (distinct from an empty one).
const nilLen = -1

type writer struct{ buf []byte }

func (w *writer) putInt(v int) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(int64(v)))
}

func (w *writer) putFloats(d []float64) {
	if d == nil {
		w.putInt(nilLen)
		return
	}
	w.putInt(len(d))
	for _, f := range d {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(f))
	}
}

func (w *writer) putEntries(es []Entry) {
	w.putInt(len(es))
	for _, e := range es {
		w.putInt(e.Iter)
		w.putFloats(e.Data)
	}
}

type reader struct {
	buf []byte
	off int
}

func (r *reader) word() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, errors.New("checkpoint: truncated blob")
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) int() (int, error) {
	v, err := r.word()
	return int(int64(v)), err
}

// count reads a non-negative element count and sanity-bounds it against the
// bytes remaining so a corrupt blob cannot force a huge allocation.
func (r *reader) count() (int, error) {
	n, err := r.int()
	if err != nil {
		return 0, err
	}
	if n < 0 || n > (len(r.buf)-r.off)/8 {
		return 0, fmt.Errorf("checkpoint: implausible count %d", n)
	}
	return n, nil
}

func (r *reader) floats() ([]float64, error) {
	n, err := r.int()
	if err != nil {
		return nil, err
	}
	if n == nilLen {
		return nil, nil
	}
	if n < 0 || n > (len(r.buf)-r.off)/8 {
		return nil, fmt.Errorf("checkpoint: implausible float count %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		v, err := r.word()
		if err != nil {
			return nil, err
		}
		out[i] = math.Float64frombits(v)
	}
	return out, nil
}

func (r *reader) entries() ([]Entry, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, n)
	for i := range out {
		if out[i].Iter, err = r.int(); err != nil {
			return nil, err
		}
		if out[i].Data, err = r.floats(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
