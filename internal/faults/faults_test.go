package faults_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/simtime"
)

// --- injector unit tests ------------------------------------------------

func msg() netmodel.Msg { return netmodel.Msg{Src: 0, Dst: 1, Bytes: 100, Procs: 4, Now: 1} }

func TestDropLosesExpectedFraction(t *testing.T) {
	m := faults.Drop{Inner: netmodel.Fixed{D: 1}, Prob: 0.3}
	rng := rand.New(rand.NewSource(1))
	kept := 0
	const n = 10000
	for i := 0; i < n; i++ {
		kept += len(m.Deliveries(msg(), rng))
	}
	frac := float64(kept) / n
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("kept fraction %.3f, want ~0.7", frac)
	}
}

func TestDuplicateAddsCopies(t *testing.T) {
	m := faults.Duplicate{Inner: netmodel.Fixed{D: 1}, Prob: 1}
	rng := rand.New(rand.NewSource(1))
	if got := len(m.Deliveries(msg(), rng)); got != 2 {
		t.Errorf("deliveries = %d, want 2", got)
	}
	none := faults.Duplicate{Inner: netmodel.Fixed{D: 1}, Prob: 0}
	if got := len(none.Deliveries(msg(), rng)); got != 1 {
		t.Errorf("deliveries = %d, want 1", got)
	}
}

func TestDelaySpikesBounded(t *testing.T) {
	m := faults.DelaySpikes{Inner: netmodel.Fixed{D: 1}, Prob: 1, ExtraMin: 2, ExtraMax: 3}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		out := m.Deliveries(msg(), rng)
		if len(out) != 1 || out[0] < 3 || out[0] > 4 {
			t.Fatalf("delivery %v, want single delay in [3, 4]", out)
		}
	}
}

func TestPartitionWindowCuts(t *testing.T) {
	m := faults.Partition{Inner: netmodel.Fixed{D: 1}, Src: 0, Dst: 1, From: 0.5, Until: 2}
	rng := rand.New(rand.NewSource(1))
	in := msg() // Now = 1, inside the window
	if got := len(m.Deliveries(in, rng)); got != 0 {
		t.Errorf("inside window: %d deliveries, want 0", got)
	}
	out := in
	out.Now = 3
	if got := len(m.Deliveries(out, rng)); got != 1 {
		t.Errorf("outside window: %d deliveries, want 1", got)
	}
	rev := in
	rev.Src, rev.Dst = 1, 0 // other direction unaffected
	if got := len(m.Deliveries(rev, rng)); got != 1 {
		t.Errorf("reverse link: %d deliveries, want 1", got)
	}
}

func TestStragglerSlowsSender(t *testing.T) {
	m := faults.Straggler{Inner: netmodel.Fixed{D: 1}, Proc: 0, From: 0, Factor: 2, Extra: 3}
	rng := rand.New(rand.NewSource(1))
	if out := m.Deliveries(msg(), rng); len(out) != 1 || out[0] != 5 {
		t.Errorf("straggler delivery %v, want [5]", out)
	}
	other := msg()
	other.Src = 2
	if out := m.Deliveries(other, rng); len(out) != 1 || out[0] != 1 {
		t.Errorf("non-straggler delivery %v, want [1]", out)
	}
}

func TestInjectorsComposeAndResetForwards(t *testing.T) {
	bus := &netmodel.SharedBus{Overhead: 1}
	var m netmodel.Model = faults.Drop{Inner: faults.DelaySpikes{Inner: faults.Straggler{Inner: bus, Proc: -1}}, Prob: 0}
	rng := rand.New(rand.NewSource(1))
	netmodel.DeliveriesOf(m, msg(), rng) // occupies the bus
	netmodel.ResetModel(m)
	got := netmodel.DeliveriesOf(m, msg(), rng)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("after Reset, delivery %v, want [1] (no queueing)", got)
	}
}

// --- end-to-end acceptance ----------------------------------------------

// mapApp is a globally coupled logistic map, one variable per processor —
// smooth enough to speculate on, nonlinear enough that predictions err.
// r = 3.2 oscillates (hard to predict); r = 2.8 contracts to a fixed point
// (deep speculation stays accurate — the regime where degradation pays).
type mapApp struct {
	id, p     int
	r         float64
	threshold float64
}

func (a *mapApp) f(x float64) float64 { return a.r * x * (1 - x) }

func (a *mapApp) InitLocal() []float64 {
	return []float64{0.25 + 0.5*float64(a.id)/float64(a.p)}
}

func (a *mapApp) Compute(view [][]float64, t int) []float64 {
	sum := 0.0
	for _, part := range view {
		sum += a.f(part[0])
	}
	mean := sum / float64(len(view))
	x := view[a.id][0]
	return []float64{0.7*a.f(x) + 0.3*mean}
}

func (a *mapApp) ComputeOps() float64 { return 500 }

func (a *mapApp) Check(peer int, pred, act, local []float64, t int) core.CheckResult {
	return core.RelErrCheck(a.threshold, 1, pred, act)
}

func (a *mapApp) RepairOps(r core.CheckResult) float64 { return 250 }

const (
	testProcs     = 4
	testIters     = 25
	testThreshold = 0.02
)

// profile is the acceptance fault profile: 2% loss plus occasional heavy
// delay spikes on a fixed-latency base network.
func profile() netmodel.Model {
	return faults.Profile(netmodel.Fixed{D: 0.1}, 0.02, 0.05, 0.5, 2.0)
}

func runMap(t *testing.T, r float64, cc cluster.Config, cfg core.Config) ([]core.Result, error) {
	t.Helper()
	cfg.MaxIter = testIters
	return core.RunCluster(cc, cfg, func(p *cluster.Proc) core.App {
		return &mapApp{id: p.ID(), p: p.P(), r: r, threshold: testThreshold}
	})
}

func faultFreeReference(t *testing.T, r float64) []float64 {
	results, err := runMap(t, r,
		cluster.Config{Machines: cluster.UniformMachines(testProcs, 1000), Net: netmodel.Fixed{D: 0.1}, Seed: 7},
		core.Config{FW: 0})
	if err != nil {
		t.Fatal(err)
	}
	return finals(results)
}

func finals(results []core.Result) []float64 {
	out := make([]float64, 0, len(results))
	for _, r := range results {
		out = append(out, r.Final...)
	}
	return out
}

// TestReliableSpeculationSurvivesFaults is the tentpole acceptance test:
// under ≥1% loss plus delay spikes, FW=1 with reliable delivery completes
// every iteration and lands within the app's check threshold of the
// fault-free blocking run.
func TestReliableSpeculationSurvivesFaults(t *testing.T) {
	want := faultFreeReference(t, 3.2)
	results, err := runMap(t, 3.2,
		cluster.Config{
			Machines:     cluster.UniformMachines(testProcs, 1000),
			Net:          profile(),
			Seed:         7,
			Reliable:     true,
			RetryTimeout: 0.4,
		},
		core.Config{FW: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := finals(results)
	if err := core.MaxAbsErr(got, want); err > testThreshold {
		t.Errorf("MaxAbsErr vs fault-free blocking = %g, want < %g", err, testThreshold)
	}
	agg := core.Aggregate(results)
	if agg.SpecsMade == 0 {
		t.Error("no speculations made")
	}
	if agg.Retries == 0 {
		t.Error("no retransmissions under a 2%% loss profile — faults not exercised")
	}
	for _, r := range results {
		if r.Stats.Iters != testIters {
			t.Errorf("proc %d completed %d iterations, want %d", r.Proc, r.Stats.Iters, testIters)
		}
		if r.Stats.Net.GiveUps != 0 {
			t.Errorf("proc %d abandoned %d messages", r.Proc, r.Stats.Net.GiveUps)
		}
	}
}

// TestFaultsWithoutRetransmissionStallFW0 shows the same profile kills the
// classical blocking algorithm when nothing retransmits: the first lost
// message parks a receiver forever.
func TestFaultsWithoutRetransmissionStallFW0(t *testing.T) {
	_, err := runMap(t, 3.2,
		cluster.Config{
			Machines: cluster.UniformMachines(testProcs, 1000),
			Net:      profile(),
			Seed:     7,
		},
		core.Config{FW: 0})
	if !errors.Is(err, simtime.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock (blocking run must stall under loss)", err)
	}
}

// TestDeterminismUnderFaults: identical seeds and fault profile yield
// identical final values, stats, and retry counters.
func TestDeterminismUnderFaults(t *testing.T) {
	run := func() ([]float64, []core.Stats) {
		results, err := runMap(t, 3.2,
			cluster.Config{
				Machines:     cluster.UniformMachines(testProcs, 1000),
				Net:          profile(),
				Seed:         7,
				Reliable:     true,
				RetryTimeout: 0.4,
			},
			core.Config{FW: 1, Deadline: 0.6, MaxOverrun: 2})
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]core.Stats, len(results))
		for i, r := range results {
			stats[i] = r.Stats
		}
		return finals(results), stats
	}
	v1, s1 := run()
	v2, s2 := run()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Errorf("final values differ at %d: %v vs %v", i, v1[i], v2[i])
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("proc %d stats differ:\n  %+v\nvs\n  %+v", i, s1[i], s2[i])
		}
	}
}

// TestGracefulDegradationRidesStraggler: a processor stalls for seconds;
// with a Deadline the engine overruns the forward window on speculation
// instead of blocking, then reconciles when the straggler's messages land.
func TestGracefulDegradationRidesStraggler(t *testing.T) {
	cc := func() cluster.Config {
		return cluster.Config{
			Machines: cluster.UniformMachines(testProcs, 1000),
			// The stall lands mid-run, after the contracting map has nearly
			// converged, so predictions made while riding it stay accurate.
			Net: faults.Straggler{
				Inner: netmodel.Fixed{D: 0.1},
				Proc:  1, From: 6, Until: 9, Extra: 3,
			},
			Seed: 7,
		}
	}
	// r = 2.8: the map contracts toward its fixed point, so iterations
	// computed past the forward window on linear predictions stay accurate
	// and reconciliation is cheap — speculation can absorb the stall.
	degraded, err := runMap(t, 2.8, cc(), core.Config{FW: 1, Deadline: 0.15, MaxOverrun: 8})
	if err != nil {
		t.Fatal(err)
	}
	agg := core.Aggregate(degraded)
	if agg.Overruns == 0 {
		t.Error("no overruns recorded while riding a 3 s straggler with a 0.3 s deadline")
	}
	if agg.Reconciles != agg.Overruns {
		t.Errorf("Reconciles = %d, want %d (every overrun reconciled by run end)", agg.Reconciles, agg.Overruns)
	}
	for _, r := range degraded {
		if r.Stats.Iters != testIters {
			t.Errorf("proc %d completed %d iterations, want %d", r.Proc, r.Stats.Iters, testIters)
		}
		for _, v := range r.Final {
			if math.IsNaN(v) || v <= 0 || v >= 1 {
				t.Errorf("proc %d: value escaped the map's invariant interval: %v", r.Proc, v)
			}
		}
	}
	// Degradation must actually buy time: the same run without a Deadline
	// blocks through the whole stall window.
	blocked, err := runMap(t, 2.8, cc(), core.Config{FW: 1})
	if err != nil {
		t.Fatal(err)
	}
	if td, tb := core.TotalTime(degraded), core.TotalTime(blocked); td >= tb {
		t.Errorf("degraded run not faster: deadline %g s vs blocking %g s", td, tb)
	}
	// And the result must stay within tolerance of the fault-free reference:
	// stragglers delay messages but never lose them, so every overrun is
	// eventually checked and repaired.
	want := faultFreeReference(t, 2.8)
	if e := core.MaxAbsErr(finals(degraded), want); e > 0.25 {
		t.Errorf("degraded run drifted %g from fault-free reference", e)
	}
}
