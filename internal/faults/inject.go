package faults

// Injector carries the simulator's FaultyModel semantics onto a real-network
// send path (internal/distnet): instead of the simulation kernel consuming
// the delivery plan, the sender asks Plan how many physical copies of a
// message to transmit and how long to hold each one back. The exact same
// model stack (Drop/Duplicate/DelaySpikes/Partition/Straggler over any base
// model) therefore drives both substrates, and a seeded Injector consumes
// randomness in the same order as the simulated cluster does — the parity
// the inject tests pin down.
//
// Unlike the simulation, a real run has concurrent senders (delayed copies
// are re-enqueued from timer goroutines), so Plan serializes access to the
// model's RNG and any model state behind a mutex.
//
// Injection is per logical message, not per physical frame: when the
// transport coalesces messages into batch frames, each message is planned
// through the model individually before it joins a batch (and delayed
// copies ship as their own single-message frames), so a fault plan is
// identical whether or not batching is enabled — the parity
// TestBatchFaultParity pins.

import (
	"math/rand"
	"sync"

	"specomp/internal/netmodel"
)

// Injector plans fault deliveries for a real-network transport.
type Injector struct {
	mu    sync.Mutex
	model netmodel.Model
	rng   *rand.Rand
}

// NewInjector wraps model with a seeded RNG. The model is consulted exactly
// as the simulated cluster consults it, so the same (model, seed) pair
// yields the same drop/duplicate/delay decision sequence on both
// substrates.
func NewInjector(model netmodel.Model, seed int64) *Injector {
	if model == nil {
		return nil
	}
	netmodel.ResetModel(model)
	return &Injector{model: model, rng: rand.New(rand.NewSource(seed))}
}

// Plan returns one sender-side hold-back delay (seconds) per physical copy
// of the message to transmit; an empty plan means the message is dropped.
// now is the transport's clock (wall seconds since the run started), which
// windowed injectors (Partition, Straggler) match against. Safe for
// concurrent use.
func (in *Injector) Plan(src, dst, bytes, procs int, now float64) []float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return netmodel.DeliveriesOf(in.model, netmodel.Msg{
		Src: src, Dst: dst, Bytes: bytes, Procs: procs, Now: now,
	}, in.rng)
}
