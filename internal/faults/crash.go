package faults

import "math/rand"

// CrashEvent schedules one processor crash: at virtual time At the
// processor loses its mailbox, in-flight reliable-delivery state and all
// engine state, stays dead for Downtime seconds (messages addressed to it
// are dropped on the floor), then restarts with a bumped incarnation epoch.
//
// The crash takes effect at the processor's next interaction with the
// substrate (Compute/Send/Recv) after At — a processor mid-computation
// finishes charging the current slice first, exactly like a machine check
// that fires between instructions of a simulator's basic block.
type CrashEvent struct {
	Proc     int
	At       float64 // virtual time the crash is requested
	Downtime float64 // seconds the processor stays dead before restarting
}

// CrashSchedule is a set of crash/restart events consumed by
// cluster.Config.Crashes. It is plain data — stateless and reusable across
// runs — so cluster reuse never inherits dead-peer state.
type CrashSchedule []CrashEvent

// Crashes counts the events targeting proc (-1 counts all).
func (s CrashSchedule) Crashes(proc int) int {
	n := 0
	for _, ev := range s {
		if proc == -1 || ev.Proc == proc {
			n++
		}
	}
	return n
}

// TotalDowntime sums the scheduled downtime of every event targeting proc
// (-1 sums all).
func (s CrashSchedule) TotalDowntime(proc int) float64 {
	d := 0.0
	for _, ev := range s {
		if proc == -1 || ev.Proc == proc {
			d += ev.Downtime
		}
	}
	return d
}

// Chaos generates a seeded random crash schedule: n crash events spread
// over the virtual-time window [from, until), each hitting a uniformly
// chosen processor in [0, procs) and staying down for a uniform downtime in
// [minDown, maxDown]. Events for the same processor are spaced so a new
// crash never lands while the previous one's downtime is still running
// (the cluster would ignore it anyway). The schedule is deterministic for
// a given seed, so a chaos soak run is exactly as reproducible as a
// fault-free one.
func Chaos(seed int64, procs, n int, from, until, minDown, maxDown float64) CrashSchedule {
	if procs < 1 || n < 1 || until <= from {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	// busyUntil[p] is the time processor p's previous crash finishes.
	busyUntil := make([]float64, procs)
	var out CrashSchedule
	span := until - from
	for i := 0; i < n; i++ {
		// Stratify the window so events spread over the run instead of
		// clumping at one end.
		lo := from + span*float64(i)/float64(n)
		hi := from + span*float64(i+1)/float64(n)
		at := lo + (hi-lo)*rng.Float64()
		p := rng.Intn(procs)
		down := minDown + (maxDown-minDown)*rng.Float64()
		if at < busyUntil[p] {
			at = busyUntil[p]
		}
		busyUntil[p] = at + down
		out = append(out, CrashEvent{Proc: p, At: at, Downtime: down})
	}
	return out
}
