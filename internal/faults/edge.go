package faults

import (
	"math/rand"

	"specomp/internal/netmodel"
)

var _ netmodel.FaultyModel = EdgeFaults{}

// Edge identifies one directed dependency edge by rank pair: messages from
// From to To travel along it. It mirrors core.Edge without importing the
// engine (faults sits below core in the dependency order).
type Edge struct{ From, To int }

// EdgeFaults scopes fault injection to individual DAG edges: messages
// travelling along one of the listed directed edges go through the Faulty
// model, every other message goes through Clean. Earlier fault studies
// could only target rank pairs via each injector's own Src/Dst fields;
// with dependency graphs the natural fault unit is the edge, and this
// wrapper lets one Faulty stack (loss, duplication, spikes, ...) be pinned
// to exactly the edges under study.
//
// Routing consumes no randomness and consults exactly one of the two
// models per message, so a seeded run stays deterministic and an Injector
// wrapping an EdgeFaults stack consumes the RNG in the same order as the
// simulated cluster — the parity TestEdgeFaultsInjectorParity pins.
type EdgeFaults struct {
	Clean  netmodel.Model
	Faulty netmodel.Model
	Edges  []Edge
}

func (m EdgeFaults) pick(msg netmodel.Msg) netmodel.Model {
	for _, e := range m.Edges {
		if msg.Src == e.From && msg.Dst == e.To {
			return m.Faulty
		}
	}
	return m.Clean
}

// Delay implements netmodel.Model (fault-free single delivery).
func (m EdgeFaults) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	return m.pick(msg).Delay(msg, rng)
}

// Deliveries implements netmodel.FaultyModel.
func (m EdgeFaults) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	return netmodel.DeliveriesOf(m.pick(msg), msg, rng)
}

// Reset forwards to both wrapped models.
func (m EdgeFaults) Reset() {
	netmodel.ResetModel(m.Clean)
	netmodel.ResetModel(m.Faulty)
}
