package faults_test

import (
	"bytes"
	"reflect"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/faults"
	"specomp/internal/netmodel"
	"specomp/internal/obs"
)

func TestChaosDeterministicPerSeed(t *testing.T) {
	a := faults.Chaos(42, 4, 6, 1, 10, 0.5, 1.5)
	b := faults.Chaos(42, 4, 6, 1, 10, 0.5, 1.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	if len(a) != 6 {
		t.Fatalf("len = %d, want 6", len(a))
	}
	other := faults.Chaos(43, 4, 6, 1, 10, 0.5, 1.5)
	if reflect.DeepEqual(a, other) {
		t.Error("different seeds produced identical schedules")
	}
	if a.Crashes(-1) != 6 {
		t.Errorf("Crashes(-1) = %d, want 6", a.Crashes(-1))
	}
	var sum float64
	for p := 0; p < 4; p++ {
		sum += a.TotalDowntime(p)
	}
	if got := a.TotalDowntime(-1); got != sum {
		t.Errorf("TotalDowntime(-1) = %g, want %g", got, sum)
	}
}

func TestChaosEventsWellFormedAndSpaced(t *testing.T) {
	s := faults.Chaos(7, 3, 20, 2, 12, 0.3, 0.9)
	// last[p] is when proc p's previous downtime ends; Chaos emits events in
	// At order per processor, so a linear scan checks the spacing invariant.
	last := make([]float64, 3)
	for _, ev := range s {
		if ev.Proc < 0 || ev.Proc >= 3 {
			t.Fatalf("proc out of range: %+v", ev)
		}
		if ev.At < 2 {
			t.Errorf("crash before window start: %+v", ev)
		}
		if ev.Downtime < 0.3 || ev.Downtime > 0.9 {
			t.Errorf("downtime out of range: %+v", ev)
		}
		if ev.At < last[ev.Proc] {
			t.Errorf("crash lands inside previous downtime: %+v", ev)
		}
		last[ev.Proc] = ev.At + ev.Downtime
	}
}

// chaosJournal runs one crash-bearing reliable simulation over the given
// (possibly stateful, shared) network model and returns the journal bytes.
func chaosJournal(t *testing.T, net netmodel.Model) string {
	t.Helper()
	jr := obs.NewJournal()
	c := cluster.New(cluster.Config{
		Machines:     []cluster.Machine{{Name: "a", Ops: 100}, {Name: "b", Ops: 100}},
		Net:          net,
		Reliable:     true,
		RetryTimeout: 0.2,
		Journal:      jr,
		Crashes:      faults.CrashSchedule{{Proc: 1, At: 0.35, Downtime: 0.4}},
	})
	c.Start(func(p *cluster.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 12; i++ {
				p.Idle(0.1)
				p.Send(1, 1, i, []float64{float64(i)})
			}
			return
		}
		for {
			if _, ok := p.RecvDeadline(0, 1, 1.5); !ok {
				return
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if jr.Count(obs.EvCrash) != 1 || jr.Count(obs.EvRestart) != 1 {
		t.Fatalf("crash/restart = %d/%d, want 1/1",
			jr.Count(obs.EvCrash), jr.Count(obs.EvRestart))
	}
	return buf.String()
}

func TestClusterReuseAfterCrashRun(t *testing.T) {
	// Reusing a stateful network model across sequential crash-bearing runs
	// must not carry over bus occupancy, retransmission state, or dead-peer
	// marks: the second run's journal must be byte-identical to the first.
	bus := &netmodel.SharedBus{Overhead: 0.005, BytesPerSec: 1e6}
	net := faults.Straggler{Inner: bus, Proc: -1, Factor: 1} // stateless wrapper over shared state
	first := chaosJournal(t, net)
	second := chaosJournal(t, net)
	if first != second {
		t.Error("second run diverged: stale state survived cluster reuse")
	}
}
