package faults

import (
	"math/rand"
	"testing"

	"specomp/internal/netmodel"
)

// scenario is one seeded sequence of message descriptors, shared by both
// sides of the parity test.
func scenario(seed int64, n int) []netmodel.Msg {
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]netmodel.Msg, n)
	now := 0.0
	for i := range msgs {
		now += rng.Float64() * 0.05
		msgs[i] = netmodel.Msg{
			Src:   rng.Intn(4),
			Dst:   rng.Intn(4),
			Bytes: 64 + rng.Intn(4096),
			Procs: 4,
			Now:   now,
		}
	}
	return msgs
}

// faultStack is the model under test: loss + duplication + delay spikes +
// a partition window, over a bandwidth base — every injector family the
// distnet send path has to reproduce.
func faultStack() netmodel.Model {
	return Drop{
		Prob: 0.15,
		Inner: Duplicate{
			Prob: 0.2,
			Inner: DelaySpikes{
				Prob: 0.25, ExtraMin: 0.01, ExtraMax: 0.2,
				Inner: Partition{
					Src: 1, Dst: -1, From: 0.5, Until: 1.0,
					Inner: netmodel.Bandwidth{Overhead: 0.002, BytesPerSec: 1e6},
				},
			},
		},
	}
}

// TestInjectorParityWithSimulatedModel pins the contract that carries the
// simulator's fault semantics onto real sockets: for the same model, seed
// and message sequence, Injector.Plan must return exactly the delivery plan
// the simulated cluster's send path computes via netmodel.DeliveriesOf.
func TestInjectorParityWithSimulatedModel(t *testing.T) {
	const seed = 42
	msgs := scenario(7, 500)

	// Simulated side: the cluster consults DeliveriesOf with the kernel RNG.
	simRNG := rand.New(rand.NewSource(seed))
	simModel := faultStack()
	var simPlans [][]float64
	for _, m := range msgs {
		plan := netmodel.DeliveriesOf(simModel, m, simRNG)
		cp := make([]float64, len(plan))
		copy(cp, plan)
		simPlans = append(simPlans, cp)
	}

	// Distributed side: the distnet transport consults the Injector.
	inj := NewInjector(faultStack(), seed)
	drops, dups := 0, 0
	for i, m := range msgs {
		plan := inj.Plan(m.Src, m.Dst, m.Bytes, m.Procs, m.Now)
		want := simPlans[i]
		if len(plan) != len(want) {
			t.Fatalf("msg %d: got %d deliveries, simulated model got %d", i, len(plan), len(want))
		}
		for k := range plan {
			if plan[k] != want[k] {
				t.Fatalf("msg %d copy %d: delay %g != simulated %g", i, k, plan[k], want[k])
			}
		}
		switch {
		case len(plan) == 0:
			drops++
		case len(plan) > 1:
			dups++
		}
	}
	// The scenario must actually exercise the fault paths, or the parity
	// assertion is vacuous.
	if drops == 0 || dups == 0 {
		t.Fatalf("degenerate scenario: %d drops, %d duplicate deliveries", drops, dups)
	}
}

// TestInjectorPartitionWindow checks that windowed injectors key off the
// wall-clock `now` a real transport passes in.
func TestInjectorPartitionWindow(t *testing.T) {
	inj := NewInjector(Partition{
		Src: -1, Dst: -1, From: 1.0, Until: 2.0,
		Inner: netmodel.Fixed{D: 0.001},
	}, 1)
	if got := inj.Plan(0, 1, 64, 2, 0.5); len(got) != 1 {
		t.Fatalf("before window: want 1 delivery, got %d", len(got))
	}
	if got := inj.Plan(0, 1, 64, 2, 1.5); len(got) != 0 {
		t.Fatalf("inside window: want drop, got %d deliveries", len(got))
	}
	if got := inj.Plan(0, 1, 64, 2, 2.5); len(got) != 1 {
		t.Fatalf("after window: want 1 delivery, got %d", len(got))
	}
}

// TestInjectorNilModel documents the "no faults" fast path.
func TestInjectorNilModel(t *testing.T) {
	if NewInjector(nil, 1) != nil {
		t.Fatal("nil model must yield a nil injector")
	}
}
