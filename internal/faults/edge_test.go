package faults

import (
	"math/rand"
	"testing"

	"specomp/internal/netmodel"
)

// edgeStack is the per-edge model under test: total loss on the listed
// edges, a plain fixed-latency link everywhere else. Total loss makes the
// routing observable without statistics.
func edgeStack(edges ...Edge) EdgeFaults {
	return EdgeFaults{
		Clean:  netmodel.Fixed{D: 0.01},
		Faulty: Drop{Prob: 1, Inner: netmodel.Fixed{D: 0.01}},
		Edges:  edges,
	}
}

// TestEdgeFaultsRouting: only the listed directed edges see the faulty
// model — the reverse direction and unrelated pairs stay clean.
func TestEdgeFaultsRouting(t *testing.T) {
	m := edgeStack(Edge{From: 0, To: 1})
	rng := rand.New(rand.NewSource(1))
	at := func(src, dst int) int {
		return len(m.Deliveries(netmodel.Msg{Src: src, Dst: dst, Bytes: 64, Procs: 4}, rng))
	}
	if got := at(0, 1); got != 0 {
		t.Errorf("faulty edge 0->1 delivered %d copies, want 0", got)
	}
	if got := at(1, 0); got != 1 {
		t.Errorf("reverse direction 1->0 delivered %d copies, want 1 (edges are directed)", got)
	}
	if got := at(2, 3); got != 1 {
		t.Errorf("unrelated pair 2->3 delivered %d copies, want 1", got)
	}
}

// TestEdgeFaultsInjectorParity: an Injector wrapping an EdgeFaults stack
// plans exactly the deliveries the simulated cluster computes for the same
// seed and message sequence — per-edge scoping does not perturb the RNG
// consumption order the two substrates share.
func TestEdgeFaultsInjectorParity(t *testing.T) {
	const seed = 9
	stack := func() netmodel.Model {
		return EdgeFaults{
			Clean: netmodel.Fixed{D: 0.02},
			Faulty: Drop{
				Prob: 0.3,
				Inner: Duplicate{
					Prob:  0.25,
					Inner: DelaySpikes{Prob: 0.2, ExtraMin: 0.01, ExtraMax: 0.1, Inner: netmodel.Fixed{D: 0.02}},
				},
			},
			Edges: []Edge{{From: 0, To: 1}, {From: 2, To: 1}},
		}
	}
	msgs := scenario(11, 500)

	simRNG := rand.New(rand.NewSource(seed))
	simModel := stack()
	var simPlans [][]float64
	for _, m := range msgs {
		plan := netmodel.DeliveriesOf(simModel, m, simRNG)
		cp := make([]float64, len(plan))
		copy(cp, plan)
		simPlans = append(simPlans, cp)
	}

	inj := NewInjector(stack(), seed)
	faultyMsgs, drops := 0, 0
	for i, m := range msgs {
		plan := inj.Plan(m.Src, m.Dst, m.Bytes, m.Procs, m.Now)
		want := simPlans[i]
		if len(plan) != len(want) {
			t.Fatalf("msg %d: got %d deliveries, simulated model got %d", i, len(plan), len(want))
		}
		for k := range plan {
			if plan[k] != want[k] {
				t.Fatalf("msg %d copy %d: delay %g != simulated %g", i, k, plan[k], want[k])
			}
		}
		if (m.Src == 0 || m.Src == 2) && m.Dst == 1 {
			faultyMsgs++
			if len(plan) == 0 {
				drops++
			}
		} else if len(plan) != 1 {
			t.Fatalf("msg %d off the faulty edges got %d deliveries, want exactly 1", i, len(plan))
		}
	}
	if faultyMsgs == 0 || drops == 0 {
		t.Fatalf("degenerate scenario: %d messages on faulty edges, %d dropped", faultyMsgs, drops)
	}
}
