// Package faults provides composable fault injectors for the simulated
// network. Each injector wraps any netmodel.Model (including another
// injector) and perturbs its deliveries: messages can be lost, duplicated,
// delayed by heavy-tailed spikes, cut off by a transient partition, or
// slowed down by a straggling sender.
//
// All randomness is drawn from the simulation's seeded RNG, so a run with
// faults enabled is exactly as deterministic as one without: same seed,
// same faults, same result.
//
// Injectors implement netmodel.FaultyModel. The cluster consults
// Deliveries, which returns one latency per delivered copy of a message —
// an empty slice means the message is lost in transit. The plain Delay
// method reports a single fault-free delivery so an injector stack can
// stand in anywhere a Model is expected (drops and duplicates then simply
// do not occur).
package faults

import (
	"math/rand"

	"specomp/internal/netmodel"
)

var (
	_ netmodel.FaultyModel = Drop{}
	_ netmodel.FaultyModel = Duplicate{}
	_ netmodel.FaultyModel = DelaySpikes{}
	_ netmodel.FaultyModel = Partition{}
	_ netmodel.FaultyModel = Straggler{}
)

// Drop loses each message (and each duplicate copy) with probability Prob —
// the classic lossy-datagram fault. Combine with cluster.Config.Reliable to
// study retransmission behaviour, or without it to demonstrate how the
// blocking algorithm deadlocks on a single lost message.
type Drop struct {
	Inner netmodel.Model
	Prob  float64
}

// Delay implements netmodel.Model (fault-free single delivery).
func (m Drop) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	return m.Inner.Delay(msg, rng)
}

// Deliveries implements netmodel.FaultyModel.
func (m Drop) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	out := netmodel.DeliveriesOf(m.Inner, msg, rng)
	kept := out[:0]
	for _, d := range out {
		if rng.Float64() >= m.Prob {
			kept = append(kept, d)
		}
	}
	return kept
}

// Reset forwards to the wrapped model.
func (m Drop) Reset() { netmodel.ResetModel(m.Inner) }

// Duplicate delivers an extra copy of each message with probability Prob;
// the copy's latency is drawn independently from the wrapped model, so
// duplicates typically arrive out of order — exercising the receiver's
// duplicate suppression.
type Duplicate struct {
	Inner netmodel.Model
	Prob  float64
}

// Delay implements netmodel.Model.
func (m Duplicate) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	return m.Inner.Delay(msg, rng)
}

// Deliveries implements netmodel.FaultyModel.
func (m Duplicate) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	out := netmodel.DeliveriesOf(m.Inner, msg, rng)
	n := len(out)
	for i := 0; i < n; i++ {
		if rng.Float64() < m.Prob {
			out = append(out, netmodel.DeliveriesOf(m.Inner, msg, rng)...)
		}
	}
	return out
}

// Reset forwards to the wrapped model.
func (m Duplicate) Reset() { netmodel.ResetModel(m.Inner) }

// DelaySpikes adds, with probability Prob per delivered copy, a uniform
// extra latency in [ExtraMin, ExtraMax]. Unlike netmodel.RandomSpikes it
// operates at the fault layer, so it also perturbs retransmissions and
// duplicate copies individually.
type DelaySpikes struct {
	Inner    netmodel.Model
	Prob     float64
	ExtraMin float64
	ExtraMax float64
}

// Delay implements netmodel.Model.
func (m DelaySpikes) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	return m.spike(m.Inner.Delay(msg, rng), rng)
}

func (m DelaySpikes) spike(d float64, rng *rand.Rand) float64 {
	if m.Prob > 0 && rng.Float64() < m.Prob {
		d += m.ExtraMin + (m.ExtraMax-m.ExtraMin)*rng.Float64()
	}
	return d
}

// Deliveries implements netmodel.FaultyModel.
func (m DelaySpikes) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	out := netmodel.DeliveriesOf(m.Inner, msg, rng)
	for i := range out {
		out[i] = m.spike(out[i], rng)
	}
	return out
}

// Reset forwards to the wrapped model.
func (m DelaySpikes) Reset() { netmodel.ResetModel(m.Inner) }

// Partition drops every message on the matching link inside the virtual
// time window [From, Until) — a transient network partition. Src or Dst of
// -1 matches any processor; compose two Partitions for a symmetric cut.
type Partition struct {
	Inner netmodel.Model
	Src   int
	Dst   int
	From  float64
	Until float64
}

func (m Partition) cuts(msg netmodel.Msg) bool {
	return (m.Src == -1 || msg.Src == m.Src) &&
		(m.Dst == -1 || msg.Dst == m.Dst) &&
		msg.Now >= m.From && msg.Now < m.Until
}

// Delay implements netmodel.Model.
func (m Partition) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	return m.Inner.Delay(msg, rng)
}

// Deliveries implements netmodel.FaultyModel.
func (m Partition) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	out := netmodel.DeliveriesOf(m.Inner, msg, rng)
	if m.cuts(msg) {
		return out[:0]
	}
	return out
}

// Reset forwards to the wrapped model.
func (m Partition) Reset() { netmodel.ResetModel(m.Inner) }

// Straggler slows every message sent by processor Proc inside the window
// [From, Until): each delivery's latency is multiplied by Factor (if > 1)
// and increased by Extra seconds — a stalled or overloaded sender whose
// peers see wildly late messages. Proc of -1 matches any sender; Until of 0
// means the stall never ends.
type Straggler struct {
	Inner  netmodel.Model
	Proc   int
	From   float64
	Until  float64
	Factor float64
	Extra  float64
}

func (m Straggler) stalls(msg netmodel.Msg) bool {
	if m.Proc != -1 && msg.Src != m.Proc {
		return false
	}
	return msg.Now >= m.From && (m.Until <= 0 || msg.Now < m.Until)
}

func (m Straggler) slow(d float64) float64 {
	if m.Factor > 1 {
		d *= m.Factor
	}
	return d + m.Extra
}

// Delay implements netmodel.Model.
func (m Straggler) Delay(msg netmodel.Msg, rng *rand.Rand) float64 {
	d := m.Inner.Delay(msg, rng)
	if m.stalls(msg) {
		d = m.slow(d)
	}
	return d
}

// Deliveries implements netmodel.FaultyModel.
func (m Straggler) Deliveries(msg netmodel.Msg, rng *rand.Rand) []float64 {
	out := netmodel.DeliveriesOf(m.Inner, msg, rng)
	if m.stalls(msg) {
		for i := range out {
			out[i] = m.slow(out[i])
		}
	}
	return out
}

// Reset forwards to the wrapped model.
func (m Straggler) Reset() { netmodel.ResetModel(m.Inner) }

// Profile is a convenience constructor for the benchmark fault profile used
// by `specbench -faults` and the acceptance tests: probabilistic loss plus
// heavy-tailed delay spikes over an arbitrary base network.
func Profile(base netmodel.Model, dropProb, spikeProb, spikeMin, spikeMax float64) netmodel.Model {
	return Drop{
		Inner: DelaySpikes{
			Inner:    base,
			Prob:     spikeProb,
			ExtraMin: spikeMin,
			ExtraMax: spikeMax,
		},
		Prob: dropProb,
	}
}
