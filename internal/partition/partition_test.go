package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProportionalEqualCaps(t *testing.T) {
	counts := Proportional(12, []float64{1, 1, 1, 1})
	for i, c := range counts {
		if c != 3 {
			t.Errorf("counts[%d] = %d, want 3", i, c)
		}
	}
}

func TestProportionalWeighted(t *testing.T) {
	// 10:1 capacity ratio over 2 procs, 11 variables: exact split 10/1.
	counts := Proportional(11, []float64{10, 1})
	if counts[0] != 10 || counts[1] != 1 {
		t.Errorf("counts = %v, want [10 1]", counts)
	}
}

func TestProportionalRounding(t *testing.T) {
	counts := Proportional(10, []float64{1, 1, 1})
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != 10 {
		t.Errorf("sum = %d, want 10", sum)
	}
	// Largest remainder with equal fractions favors the lower index.
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Errorf("counts = %v, want [4 3 3]", counts)
	}
}

func TestProportionalZeroN(t *testing.T) {
	counts := Proportional(0, []float64{5, 3})
	if counts[0] != 0 || counts[1] != 0 {
		t.Errorf("counts = %v, want zeros", counts)
	}
}

func TestProportionalSumsToNProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16 % 5000)
		p := int(p8%32) + 1
		caps := make([]float64, p)
		for i := range caps {
			caps[i] = 0.1 + rng.Float64()*10
		}
		counts := Proportional(n, caps)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProportionalWithinOneOfQuotaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16%5000) + 1
		p := int(p8%16) + 1
		caps := make([]float64, p)
		var total float64
		for i := range caps {
			caps[i] = 0.5 + rng.Float64()*5
			total += caps[i]
		}
		counts := Proportional(n, caps)
		for i, c := range counts {
			quota := float64(n) * caps[i] / total
			if float64(c) < quota-1.0000001 || float64(c) > quota+1.0000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlocksAndOwner(t *testing.T) {
	rs := Blocks([]int{3, 0, 2})
	want := []Range{{0, 3}, {3, 3}, {3, 5}}
	for i := range want {
		if rs[i] != want[i] {
			t.Errorf("rs[%d] = %v, want %v", i, rs[i], want[i])
		}
	}
	if Owner(rs, 0) != 0 || Owner(rs, 2) != 0 || Owner(rs, 3) != 2 || Owner(rs, 4) != 2 {
		t.Errorf("Owner mapping wrong: %v", rs)
	}
	if Owner(rs, 5) != -1 {
		t.Error("Owner of out-of-range index should be -1")
	}
	if rs[1].Len() != 0 || rs[1].Contains(3) {
		t.Error("empty range misbehaves")
	}
}

func TestImbalancePerfect(t *testing.T) {
	// counts exactly proportional: imbalance 0.
	if got := Imbalance([]int{10, 5}, []float64{2, 1}); got > 1e-12 {
		t.Errorf("Imbalance = %g, want 0", got)
	}
}

func TestImbalanceDetectsSkew(t *testing.T) {
	// All work on the slow processor.
	got := Imbalance([]int{0, 15}, []float64{2, 1})
	if got < 1 {
		t.Errorf("Imbalance = %g, want > 1", got)
	}
}

func TestImbalanceBoundedForProportionalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(p8 uint8) bool {
		p := int(p8%16) + 1
		n := 1000
		caps := make([]float64, p)
		for i := range caps {
			caps[i] = 1 + rng.Float64()*9
		}
		counts := Proportional(n, caps)
		// With N=1000 variables, rounding error per proc is < 1 variable,
		// so relative imbalance should be small.
		return Imbalance(counts, caps) < 0.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
