// Package partition implements capacity-proportional load balancing: the
// paper's eqs. 4–5, which require N_i/M_i equal across processors with
// Σ N_i = N. Counts are integral, so we apportion with the largest-remainder
// method, which keeps each processor within one variable of its ideal quota.
package partition

import "fmt"

// Range is a half-open index interval [Lo, Hi) of variables owned by one
// processor under a block distribution.
type Range struct {
	Lo, Hi int
}

// Len returns the number of variables in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Contains reports whether index i falls in the range.
func (r Range) Contains(i int) bool { return i >= r.Lo && i < r.Hi }

// Proportional splits n variables over processors with capacities caps so
// that counts are proportional to capacity (largest-remainder rounding).
// The returned counts sum to n exactly.
func Proportional(n int, caps []float64) []int {
	if n < 0 {
		panic("partition: negative n")
	}
	if len(caps) == 0 {
		panic("partition: no capacities")
	}
	var total float64
	for i, c := range caps {
		if c <= 0 {
			panic(fmt.Sprintf("partition: capacity %d is not positive", i))
		}
		total += c
	}
	counts := make([]int, len(caps))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(caps))
	assigned := 0
	for i, c := range caps {
		quota := float64(n) * c / total
		counts[i] = int(quota)
		assigned += counts[i]
		rems[i] = rem{idx: i, frac: quota - float64(counts[i])}
	}
	// Hand the leftover variables to the largest remainders; break ties in
	// favor of the faster (lower-index) processor for determinism.
	for assigned < n {
		best := -1
		for j := range rems {
			if rems[j].frac < 0 {
				continue
			}
			if best == -1 || rems[j].frac > rems[best].frac ||
				(rems[j].frac == rems[best].frac && rems[j].idx < rems[best].idx) {
				best = j
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}

// Blocks converts per-processor counts into contiguous index ranges.
func Blocks(counts []int) []Range {
	rs := make([]Range, len(counts))
	lo := 0
	for i, c := range counts {
		rs[i] = Range{Lo: lo, Hi: lo + c}
		lo += c
	}
	return rs
}

// Imbalance returns the maximum relative deviation of compute time from the
// ideal: max_i |(N_i/M_i) / (N/ΣM) − 1|. Zero means perfect balance.
func Imbalance(counts []int, caps []float64) float64 {
	var n int
	var total float64
	for _, c := range counts {
		n += c
	}
	for _, c := range caps {
		total += c
	}
	if n == 0 {
		return 0
	}
	ideal := float64(n) / total
	worst := 0.0
	for i, c := range counts {
		dev := float64(c)/caps[i]/ideal - 1
		if dev < 0 {
			dev = -dev
		}
		if dev > worst {
			worst = dev
		}
	}
	return worst
}

// Owner returns the index of the range containing variable i, or -1.
func Owner(rs []Range, i int) int {
	for j, r := range rs {
		if r.Contains(i) {
			return j
		}
	}
	return -1
}
