package sched_test

// Queue-only scheduler tests: with a nil launcher the scheduler admits,
// orders and persists jobs without ever starting a fleet, which makes
// ordering, quota and recovery behaviour testable without processes.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"specomp/internal/distnet"
	"specomp/internal/sched"
)

// submit is shorthand for a queue-only submission.
func submit(t *testing.T, s *sched.Scheduler, name, tenant string, priority, procs int) sched.JobStatus {
	t.Helper()
	st, err := s.Submit(sched.JobSpec{
		Name: name, Tenant: tenant, Priority: priority,
		Spec: distnet.RunSpec{App: "heat", Procs: procs, MaxIter: 10},
	})
	if err != nil {
		t.Fatalf("submitting %s: %v", name, err)
	}
	return st
}

func queueOnly(t *testing.T, cfg sched.Config) *sched.Scheduler {
	t.Helper()
	if cfg.TotalRanks == 0 {
		cfg.TotalRanks = 8
	}
	s, err := sched.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestQueueOrdering: the queue dispatches by priority, FIFO within a
// priority band.
func TestQueueOrdering(t *testing.T) {
	s := queueOnly(t, sched.Config{})
	submit(t, s, "low-1", "", 1, 2)
	submit(t, s, "high-1", "", 5, 2)
	submit(t, s, "low-2", "", 1, 2)
	submit(t, s, "urgent", "", 9, 2)
	submit(t, s, "high-2", "", 5, 2)

	var got []string
	for _, st := range s.Queue().Pending {
		got = append(got, st.Name)
	}
	want := []string{"urgent", "high-1", "high-2", "low-1", "low-2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("dispatch order %v, want %v", got, want)
	}

	// Jobs carry scheduler-assigned ids and job labels.
	st := s.Queue().Pending[0]
	if st.ID == "" || st.State != sched.StatePending {
		t.Fatalf("head of queue: %+v", st)
	}
}

// TestCancelQueued: DELETE on a queued job removes it from the queue.
func TestCancelQueued(t *testing.T) {
	s := queueOnly(t, sched.Config{})
	a := submit(t, s, "a", "", 0, 2)
	submit(t, s, "b", "", 0, 2)
	st, err := s.Cancel(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != sched.StateCanceled {
		t.Fatalf("canceled job state %s", st.State)
	}
	if q := s.Queue().Pending; len(q) != 1 || q[0].Name != "b" {
		t.Fatalf("queue after cancel: %+v", q)
	}
	if _, err := s.Cancel(a.ID); !errors.Is(err, sched.ErrJobFinished) {
		t.Fatalf("double cancel: %v", err)
	}
	if _, err := s.Cancel("job-9999"); !errors.Is(err, sched.ErrUnknownJob) {
		t.Fatalf("cancel unknown: %v", err)
	}
}

// TestTenantQuotas: per-tenant job and rank caps reject at admission with
// ErrQuota; other tenants are unaffected.
func TestTenantQuotas(t *testing.T) {
	s := queueOnly(t, sched.Config{
		TotalRanks: 16, MaxJobsPerTenant: 2, MaxRanksPerTenant: 6,
	})
	submit(t, s, "a1", "alice", 0, 2)
	submit(t, s, "a2", "alice", 0, 2)
	_, err := s.Submit(sched.JobSpec{Tenant: "alice", Spec: distnet.RunSpec{App: "heat", Procs: 2, MaxIter: 10}})
	if !errors.Is(err, sched.ErrQuota) {
		t.Fatalf("third alice job: %v, want ErrQuota", err)
	}

	submit(t, s, "b1", "bob", 0, 4)
	_, err = s.Submit(sched.JobSpec{Tenant: "bob", Spec: distnet.RunSpec{App: "heat", Procs: 3, MaxIter: 10}})
	if !errors.Is(err, sched.ErrQuota) {
		t.Fatalf("bob rank overflow: %v, want ErrQuota", err)
	}
	// 4 + 2 = 6 fits the rank quota exactly.
	submit(t, s, "b2", "bob", 0, 2)

	if st := s.Stats(); st.Rejected != 2 || st.Submitted != 4 {
		t.Fatalf("stats %+v, want 2 rejected / 4 submitted", st)
	}
	u := s.Queue().Tenants["bob"]
	if u.Jobs != 2 || u.Ranks != 6 {
		t.Fatalf("bob usage %+v", u)
	}
}

// TestSubmitValidation: infeasible and malformed specs are rejected, and
// defaults (tenant, name, checkpoint cadence, job label) are applied.
func TestSubmitValidation(t *testing.T) {
	s := queueOnly(t, sched.Config{TotalRanks: 4})
	if _, err := s.Submit(sched.JobSpec{Spec: distnet.RunSpec{App: "heat", Procs: 8, MaxIter: 10}}); !errors.Is(err, sched.ErrInfeasible) {
		t.Fatalf("oversized job: %v, want ErrInfeasible", err)
	}
	if _, err := s.Submit(sched.JobSpec{Spec: distnet.RunSpec{App: "no-such-app", Procs: 2}}); err == nil {
		t.Fatal("unknown app was admitted")
	}
	st := submit(t, s, "", "", 0, 2)
	if st.Tenant != "default" || st.Name != "heat" {
		t.Fatalf("defaults not applied: %+v", st)
	}
	full, err := s.Status(st.ID)
	if err != nil || full.App != "heat" {
		t.Fatalf("status: %+v, %v", full, err)
	}
}

// TestQueuePersistRecovery: a drained scheduler persists its queue; a new
// scheduler on the same state dir resumes it — same ids, same dispatch
// order, id counter continues.
func TestQueuePersistRecovery(t *testing.T) {
	dir := t.TempDir()
	s := queueOnly(t, sched.Config{StateDir: dir})
	submit(t, s, "low", "alice", 1, 2)
	hi := submit(t, s, "high", "bob", 7, 2)

	if err := s.Drain(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(sched.JobSpec{Spec: distnet.RunSpec{App: "heat", Procs: 2, MaxIter: 10}}); !errors.Is(err, sched.ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sched-queue.json")); err != nil {
		t.Fatalf("queue file not persisted: %v", err)
	}

	s2 := queueOnly(t, sched.Config{StateDir: dir})
	q := s2.Queue()
	if len(q.Pending) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(q.Pending))
	}
	if q.Pending[0].ID != hi.ID || q.Pending[0].Name != "high" || q.Pending[0].Tenant != "bob" {
		t.Fatalf("recovered head %+v, want the high-priority job %s", q.Pending[0], hi.ID)
	}
	if _, err := os.Stat(filepath.Join(dir, "sched-queue.json")); !os.IsNotExist(err) {
		t.Fatalf("queue file not consumed: %v", err)
	}
	// The id counter continued: no id collision with recovered jobs.
	st := submit(t, s2, "new", "", 0, 2)
	if st.ID == hi.ID || st.ID == q.Pending[1].ID {
		t.Fatalf("recycled job id %s", st.ID)
	}
}

// TestHTTPAPI drives the service surface end to end against a queue-only
// scheduler: submit, get, list, queue, cancel, quota and validation
// statuses, and the merged /metrics exposition.
func TestHTTPAPI(t *testing.T) {
	s := queueOnly(t, sched.Config{TotalRanks: 8, MaxJobsPerTenant: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(body string) (*http.Response, sched.JobStatus) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st sched.JobStatus
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
		}
		return resp, st
	}

	resp, st := post(`{"name":"first","priority":3,"spec":{"app":"heat","procs":2,"max_iter":10}}`)
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	if resp, _ := post(`{"spec":{"app":"nope","procs":2}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid app: %d, want 400", resp.StatusCode)
	}
	post(`{"tenant":"default","spec":{"app":"heat","procs":2,"max_iter":10}}`)
	if resp, _ := post(`{"spec":{"app":"heat","procs":2,"max_iter":10}}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota overflow: %d, want 429", resp.StatusCode)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	if code, body := get("/jobs/" + st.ID); code != http.StatusOK || !bytes.Contains(body, []byte("first")) {
		t.Fatalf("GET job: %d %s", code, body)
	}
	if code, _ := get("/jobs/job-9999"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job: %d, want 404", code)
	}
	if code, body := get("/queue"); code != http.StatusOK || !bytes.Contains(body, []byte(`"total_ranks": 8`)) {
		t.Fatalf("GET queue: %d %s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!bytes.Contains(body, []byte("specomp_sched_queue_depth")) ||
		!bytes.Contains(body, []byte(`specomp_sched_jobs_total{outcome="submitted"}`)) {
		t.Fatalf("GET metrics: %d %s", code, body)
	}
	if code, body := get("/fleet"); code != http.StatusOK || !bytes.Contains(body, []byte(`"queue"`)) {
		t.Fatalf("GET fleet: %d %s", code, body)
	}
	if code, _ := get("/fleet?job=job-9999"); code != http.StatusNotFound {
		t.Fatalf("GET fleet filter miss: %d, want 404", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", resp2.StatusCode)
	}

	// Draining flips submissions to 503.
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	if resp, _ := post(`{"tenant":"t2","spec":{"app":"heat","procs":2,"max_iter":10}}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}
