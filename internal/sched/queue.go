package sched

// The pending queue: a priority heap ordered by (priority desc, admission
// sequence asc). The sequence tiebreak makes the queue FIFO within a
// priority band, and — because a preempted job keeps its original sequence
// — puts resumed work ahead of anything that arrived after it.

import "container/heap"

type jobQueue struct{ items []*Job }

func (q *jobQueue) Len() int { return len(q.items) }

func (q *jobQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

func (q *jobQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *jobQueue) Push(x any) { q.items = append(q.items, x.(*Job)) }

func (q *jobQueue) Pop() any {
	old := q.items
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return j
}

func (q *jobQueue) push(j *Job) { heap.Push(q, j) }

// remove deletes the job from the queue (by identity); reports whether it
// was present.
func (q *jobQueue) remove(j *Job) bool {
	for i, it := range q.items {
		if it == j {
			heap.Remove(q, i)
			return true
		}
	}
	return false
}

// ordered returns the queue contents in dispatch order without disturbing
// the heap.
func (q *jobQueue) ordered() []*Job {
	cp := jobQueue{items: append([]*Job(nil), q.items...)}
	out := make([]*Job, 0, len(cp.items))
	for cp.Len() > 0 {
		out = append(out, heap.Pop(&cp).(*Job))
	}
	return out
}
