package sched_test

// End-to-end scheduler proof, real OS processes: a batch job's fleet is
// preempted by a high-priority arrival, evicted to its custody namespace,
// and later resumed from the snapshots — and the preempted-and-resumed
// run still converges on the same answer an uninterrupted run (and the
// serial reference) produces. This is the service-level acceptance
// criterion of the scheduler subsystem.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"specomp/internal/apps/heat"
	"specomp/internal/checkpoint"
	"specomp/internal/distnet"
	"specomp/internal/sched"
)

const (
	schedHelperEnv = "SPECOMP_SCHED_NODE_HELPER"
	schedCoordEnv  = "SPECOMP_SCHED_COORD"
	schedEpochEnv  = "SPECOMP_SCHED_EPOCH"
)

// TestHelperSchedNode is not a test: it is the node process body the
// scheduler launches (this test binary re-executed), same pattern as the
// distnet crash tests.
func TestHelperSchedNode(t *testing.T) {
	if os.Getenv(schedHelperEnv) == "" {
		t.Skip("helper process body, not a test")
	}
	epoch, _ := strconv.Atoi(os.Getenv(schedEpochEnv))
	_, err := distnet.RunNode(distnet.NodeConfig{
		Coord: os.Getenv(schedCoordEnv),
		Epoch: epoch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sched node helper: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// testLauncher re-executes this test binary as a node process.
func testLauncher(info sched.LaunchInfo) (*exec.Cmd, error) {
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperSchedNode$", "-test.v")
	cmd.Env = append(os.Environ(),
		schedHelperEnv+"=1",
		schedCoordEnv+"="+info.Coord,
		schedEpochEnv+"="+strconv.Itoa(info.Epoch))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	return cmd, nil
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, s *sched.Scheduler, id string, timeout time.Duration, want ...sched.JobState) sched.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, wanted one of %v", id, st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPreemptEvictResumeConvergence: on a 4-rank pool, a low-priority
// 4-rank batch job is running when a high-priority job arrives; the batch
// job is evicted to custody, the urgent job runs, the batch job resumes
// from its snapshots, and its final field matches both an uninterrupted
// run of the identical spec and the serial reference.
func TestPreemptEvictResumeConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process scheduler run is not -short")
	}
	custody, err := checkpoint.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(sched.Config{
		TotalRanks:  4,
		Launch:      testLauncher,
		Custody:     custody,
		RunTimeout:  3 * time.Minute,
		EvictGrace:  20 * time.Second,
		NodeTimeout: 10 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	batchSpec := distnet.RunSpec{
		App: "heat", Procs: 4, MaxIter: 900, FW: 2, Theta: 1e-3,
		Rows: 48, Cols: 32, CheckpointEvery: 5,
	}
	batch, err := s.Submit(sched.JobSpec{Name: "batch", Priority: 1, Spec: batchSpec})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, batch.ID, 30*time.Second, sched.StateRunning)

	// Wait until the batch job's custody namespace covers every rank, so
	// the eviction below is guaranteed a full snapshot set.
	ns, err := custody.Namespace(batch.ID)
	if err != nil {
		t.Fatal(err)
	}
	covDeadline := time.Now().Add(60 * time.Second)
	for {
		have := 0
		for r := 0; r < 4; r++ {
			if _, ok := ns.Load(r); ok {
				have++
			}
		}
		if have == 4 {
			break
		}
		if time.Now().After(covDeadline) {
			t.Fatalf("batch custody never covered all ranks (%d/4)", have)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The urgent arrival outranks the batch job and cannot fit beside it:
	// the scheduler must evict the batch fleet to custody.
	urgent, err := s.Submit(sched.JobSpec{Name: "urgent", Priority: 9, Spec: distnet.RunSpec{
		App: "heat", Procs: 2, MaxIter: 120, FW: 2, Theta: 1e-3,
		Rows: 32, Cols: 24, CheckpointEvery: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}

	// The batch job must actually get evicted (not merely finish first).
	preemptDeadline := time.Now().Add(60 * time.Second)
	for {
		st, err := s.Status(batch.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Preemptions >= 1 {
			break
		}
		if time.Now().After(preemptDeadline) {
			t.Fatalf("batch job was never preempted: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ust := waitState(t, s, urgent.ID, 2*time.Minute, sched.StateDone); ust.State != sched.StateDone {
		t.Fatalf("urgent job: %+v", ust)
	}

	// The batch job resumes from custody and completes.
	final := waitState(t, s, batch.ID, 3*time.Minute, sched.StateDone, sched.StateFailed)
	if final.State != sched.StateDone {
		t.Fatalf("batch job after resume: %+v", final)
	}
	if final.Restores < 1 {
		t.Errorf("resumed batch job recorded no custody restores: %+v", final)
	}
	if len(final.Reports) != 4 {
		t.Fatalf("batch job has %d reports, want 4", len(final.Reports))
	}

	// An uninterrupted control run of the identical spec on the same pool.
	control, err := s.Submit(sched.JobSpec{Name: "control", Priority: 1, Spec: batchSpec})
	if err != nil {
		t.Fatal(err)
	}
	ctl := waitState(t, s, control.ID, 3*time.Minute, sched.StateDone, sched.StateFailed)
	if ctl.State != sched.StateDone || ctl.Preemptions != 0 {
		t.Fatalf("control run: %+v", ctl)
	}

	// Convergence: preempted-and-resumed == uninterrupted == serial, all
	// within the speculation tolerance the distnet suite uses.
	norm := batchSpec
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	resumedField, err := distnet.AssembleHeat(norm, final.Reports)
	if err != nil {
		t.Fatal(err)
	}
	controlField, err := distnet.AssembleHeat(norm, ctl.Reports)
	if err != nil {
		t.Fatal(err)
	}
	serial := heat.DefaultGrid(norm.Rows, norm.Cols).SerialRun(norm.MaxIter)
	const tol = 0.5
	if d := heat.MaxDiff(resumedField, serial); d > tol {
		t.Errorf("resumed run diverged from serial: max diff %g > %g", d, tol)
	}
	if d := heat.MaxDiff(controlField, serial); d > tol {
		t.Errorf("control run diverged from serial: max diff %g > %g", d, tol)
	}
	if d := heat.MaxDiff(resumedField, controlField); d > tol {
		t.Errorf("resumed and uninterrupted runs disagree: max diff %g > %g", d, tol)
	}

	// Custody hygiene: finished jobs leave no snapshots behind.
	for r := 0; r < 4; r++ {
		if _, ok := ns.Load(r); ok {
			t.Errorf("done job still has custody for rank %d", r)
		}
	}

	// Scheduler bookkeeping and the merged service exposition.
	stats := s.Stats()
	if stats.Preemptions < 1 || stats.Resumes < 1 || stats.Completed != 3 {
		t.Errorf("scheduler stats %+v, want >=1 preemption, >=1 resume, 3 completed", stats)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "specomp_sched_preemptions_total 1") {
		t.Errorf("/metrics missing preemption count:\n%.2000s", text)
	}
	if !strings.Contains(text, `job="`+batch.ID+`"`) || !strings.Contains(text, `job="`+urgent.ID+`"`) {
		t.Errorf("/metrics not job-labelled per job")
	}

	// /fleet?job= filters to one job's fleet view.
	fresp, err := http.Get(srv.URL + "/fleet?job=" + urgent.ID)
	if err != nil {
		t.Fatal(err)
	}
	fbody, err := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ftext := string(fbody)
	if fresp.StatusCode != http.StatusOK || !strings.Contains(ftext, urgent.ID) || strings.Contains(ftext, `"id": "`+batch.ID+`"`) {
		t.Errorf("/fleet?job=%s: %d %.500s", urgent.ID, fresp.StatusCode, ftext)
	}
}

// TestDrainEvictsToCustodyAndPersistsQueue: SIGTERM semantics at the
// library level — draining evicts a running job to custody, persists it in
// the queue file, and a successor scheduler resumes it to completion.
func TestDrainEvictsToCustodyAndPersistsQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process scheduler run is not -short")
	}
	dir := t.TempDir()
	stateDir := t.TempDir()
	mk := func() *sched.Scheduler {
		custody, err := checkpoint.NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.New(sched.Config{
			TotalRanks: 4, Launch: testLauncher, Custody: custody,
			StateDir: stateDir, RunTimeout: 3 * time.Minute,
			EvictGrace: 20 * time.Second, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := mk()
	st, err := s.Submit(sched.JobSpec{Name: "survivor", Priority: 2, Spec: distnet.RunSpec{
		App: "heat", Procs: 3, MaxIter: 900, FW: 2, Theta: 1e-3,
		Rows: 48, Cols: 32, CheckpointEvery: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, 30*time.Second, sched.StateRunning)
	ns, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job, err := ns.Namespace(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		have := 0
		for r := 0; r < 3; r++ {
			if _, ok := job.Load(r); ok {
				have++
			}
		}
		if have == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("custody never covered the fleet (%d/3)", have)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := s.Drain(time.Minute); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The successor inherits the queue and resumes the evicted job from
	// custody to a converged finish.
	s2 := mk()
	defer s2.Close()
	final := waitState(t, s2, st.ID, 3*time.Minute, sched.StateDone, sched.StateFailed)
	if final.State != sched.StateDone {
		t.Fatalf("job after restart: %+v", final)
	}
	if final.Preemptions < 1 || final.Restores < 1 {
		t.Errorf("restarted job shows no eviction/restore history: %+v", final)
	}
	spec := distnet.RunSpec{App: "heat", Procs: 3, MaxIter: 900, FW: 2, Theta: 1e-3, Rows: 48, Cols: 32, CheckpointEvery: 5}
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	field, err := distnet.AssembleHeat(spec, final.Reports)
	if err != nil {
		t.Fatal(err)
	}
	serial := heat.DefaultGrid(spec.Rows, spec.Cols).SerialRun(spec.MaxIter)
	if d := heat.MaxDiff(field, serial); d > 0.5 {
		t.Errorf("drained-and-resumed run diverged from serial: max diff %g", d)
	}
}
