// Package sched turns the distnet substrate into a service: a long-running
// multi-run scheduler that admits jobs over an HTTP+JSON API, queues them
// by priority, shards many concurrent clusters across a bounded node pool
// (one coordinator and one slice of supervised node processes per job),
// enforces per-tenant admission quotas, and preempts batch work for
// high-priority arrivals via checkpoint-backed eviction: the victim's
// fleet is torn down at a custody boundary, its rank claim freed, and it
// re-enters the queue to resume later from its own custody namespace —
// converging on the same answer an uninterrupted run produces.
//
// This is the job-granularity analogue of the paper's speculation: the
// cheap common case (batch runs proceed optimistically, assuming no one
// outranks them) backed by a provable fallback (evict to a snapshot,
// replay from it) when the assumption breaks.
package sched

import (
	"errors"
	"fmt"
	"os/exec"
	"sync"
	"time"

	"specomp/internal/checkpoint"
	"specomp/internal/distnet"
	"specomp/internal/obs"
)

// ErrDraining rejects submissions while the scheduler is shutting down
// (the HTTP layer maps it to 503).
var ErrDraining = errors.New("sched: scheduler is draining, not accepting jobs")

// ErrQuota rejects a submission that would exceed its tenant's admission
// quota (mapped to 429).
var ErrQuota = errors.New("sched: tenant quota exceeded")

// ErrInfeasible rejects a job that could never run on this pool (mapped
// to 400).
var ErrInfeasible = errors.New("sched: job cannot fit the node pool")

// ErrUnknownJob reports a job id the scheduler has never seen (404).
var ErrUnknownJob = errors.New("sched: unknown job")

// ErrJobFinished reports a cancel aimed at a job already in a terminal
// state (409).
var ErrJobFinished = errors.New("sched: job already finished")

// LaunchInfo tells the launcher which node process to start.
type LaunchInfo struct {
	// JobID names the job the node will serve.
	JobID string
	// Slot is the node's index within the job's fleet (0..Procs-1).
	Slot int
	// Epoch is the incarnation epoch (0 first launch; >0 supervised respawn).
	Epoch int
	// Coord is the job coordinator's address the node must join.
	Coord string
}

// NodeLauncher builds the command for one node process of one job; the
// scheduler wraps every slot in a distnet.Supervisor, so crashed nodes
// respawn with bumped epochs exactly as in a single-run speccoord -spawn.
// A nil launcher makes the scheduler admission/queue-only: jobs are
// admitted, quota-checked and ordered but never dispatched — the shape the
// unit tests and dry runs use.
type NodeLauncher func(info LaunchInfo) (*exec.Cmd, error)

// Config parameterizes a Scheduler.
type Config struct {
	// TotalRanks is the node-pool capacity: the sum of Procs over running
	// jobs never exceeds it. Required.
	TotalRanks int
	// Launch starts one node process (see NodeLauncher). Nil = queue-only.
	Launch NodeLauncher
	// Custody is the durable custody root; each job gets its own namespace
	// (<dir>/<job-id>/proc-N.ckpt) so concurrent jobs cannot clobber each
	// other and preempted jobs survive scheduler restarts. Nil = per-job
	// in-memory stores (preemption still works, restarts lose snapshots).
	Custody *checkpoint.FileStore
	// StateDir, when non-empty, persists the pending queue across restarts:
	// Drain writes sched-queue.json there and New consumes it.
	StateDir string
	// MaxJobsPerTenant bounds one tenant's active (queued + running) jobs;
	// 0 = unlimited.
	MaxJobsPerTenant int
	// MaxRanksPerTenant bounds one tenant's active rank claim; 0 = unlimited.
	MaxRanksPerTenant int
	// MaxRespawns is each node slot's supervision budget (default 3).
	MaxRespawns int
	// RunTimeout bounds each run attempt, join to last result (default 10m).
	RunTimeout time.Duration
	// EvictGrace bounds how long an eviction waits for every rank of the
	// victim to reach custody before killing the fleet (default 10s). A
	// victim evicted without full coverage restarts from scratch instead of
	// from a torn mix of snapshots.
	EvictGrace time.Duration
	// NodeTimeout and RejoinWait forward the coordinator's control-plane
	// liveness windows (see distnet.CoordConfig).
	NodeTimeout time.Duration
	RejoinWait  time.Duration
	// DefaultCheckpointEvery is applied to submissions that set no
	// checkpoint cadence, so every job has custody to be evicted to
	// (default 5; negative = leave submissions untouched).
	DefaultCheckpointEvery int
	// Metrics receives the scheduler's instruments (nil = a private
	// registry, still served from /metrics).
	Metrics *obs.Registry
	// Logf, when non-nil, receives scheduler lifecycle lines.
	Logf func(format string, args ...any)
}

// Stats are the scheduler's cumulative counters, snapshot via Stats().
type Stats struct {
	Submitted   int
	Completed   int
	Failed      int
	Canceled    int
	Rejected    int // quota rejections
	Preemptions int // priority evictions (drain evictions not included)
	Resumes     int
	// WaitSec records every dispatch's queue wait, in dispatch order —
	// the soak harness derives its percentile series from this.
	WaitSec []float64
}

// Scheduler is the multi-run job scheduler.
type Scheduler struct {
	cfg Config
	met schedMetrics

	mu        sync.Mutex
	cond      *sync.Cond // broadcast on every running-set change
	jobs      map[string]*Job
	order     []string // submission order, for listings
	queue     jobQueue
	usedRanks int
	nextSeq   uint64
	nextID    int
	tenants   map[string]bool // every tenant ever seen (gauge refresh set)
	draining  bool
	closed    bool
	stats     Stats
}

// New builds a scheduler and, when cfg.StateDir holds a persisted queue
// from a drained predecessor, resumes it (preempted jobs will restore from
// their custody namespaces on dispatch).
func New(cfg Config) (*Scheduler, error) {
	if cfg.TotalRanks <= 0 {
		return nil, fmt.Errorf("sched: TotalRanks must be positive")
	}
	if cfg.MaxRespawns <= 0 {
		cfg.MaxRespawns = 3
	}
	if cfg.RunTimeout <= 0 {
		cfg.RunTimeout = 10 * time.Minute
	}
	if cfg.EvictGrace <= 0 {
		cfg.EvictGrace = 10 * time.Second
	}
	if cfg.DefaultCheckpointEvery == 0 {
		cfg.DefaultCheckpointEvery = 5
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	s := &Scheduler{
		cfg:     cfg,
		met:     newSchedMetrics(cfg.Metrics),
		jobs:    make(map[string]*Job),
		tenants: make(map[string]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.StateDir != "" {
		if err := s.loadState(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.updateGaugesLocked()
	s.scheduleLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Registry returns the registry holding the scheduler's own series.
func (s *Scheduler) Registry() *obs.Registry { return s.cfg.Metrics }

// Stats snapshots the cumulative counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.WaitSec = append([]float64(nil), s.stats.WaitSec...)
	return st
}

// Submit admits one job: quota-checked, normalized, queued, and (when
// ranks are free or preemption applies) dispatched. The returned status
// reflects the job immediately after scheduling ran once.
func (s *Scheduler) Submit(req JobSpec) (JobStatus, error) {
	spec := req.Spec
	if err := spec.Normalize(); err != nil {
		return JobStatus{}, err
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.Name == "" {
		req.Name = spec.App
	}
	if spec.CheckpointEvery == 0 && s.cfg.DefaultCheckpointEvery > 0 {
		// Preemption needs custody to evict to; an uncheckpointed batch job
		// would lose all progress on every eviction.
		spec.CheckpointEvery = s.cfg.DefaultCheckpointEvery
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return JobStatus{}, ErrDraining
	}
	if spec.Procs > s.cfg.TotalRanks {
		return JobStatus{}, fmt.Errorf("%w: %d ranks requested, pool holds %d", ErrInfeasible, spec.Procs, s.cfg.TotalRanks)
	}
	if err := s.checkQuotaLocked(req.Tenant, spec.Procs); err != nil {
		s.stats.Rejected++
		s.met.outcome("rejected")
		return JobStatus{}, err
	}

	id := fmt.Sprintf("job-%04d", s.nextID)
	s.nextID++
	spec.Job = id // every job's fleet series are uniquely job-labelled
	now := time.Now()
	j := &Job{
		ID:      id,
		JobSpec: JobSpec{Name: req.Name, Tenant: req.Tenant, Priority: req.Priority, Spec: spec},
		seq:     s.nextSeq,
		state:   StatePending,

		submitted:    now,
		pendingSince: now,
	}
	s.nextSeq++
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.tenants[req.Tenant] = true
	s.queue.push(j)
	s.stats.Submitted++
	s.met.outcome("submitted")
	s.logf("job %s submitted: %s tenant=%s priority=%d procs=%d app=%s",
		id, req.Name, req.Tenant, req.Priority, spec.Procs, spec.App)

	s.scheduleLocked()
	s.updateGaugesLocked()
	return j.status(time.Now(), j.waitTotal(), nil), nil
}

// checkQuotaLocked enforces the tenant's admission quota over its active
// jobs and ranks.
func (s *Scheduler) checkQuotaLocked(tenant string, procs int) error {
	jobs, ranks := s.tenantUsageLocked(tenant)
	if s.cfg.MaxJobsPerTenant > 0 && jobs+1 > s.cfg.MaxJobsPerTenant {
		return fmt.Errorf("%w: tenant %q has %d active jobs (max %d)",
			ErrQuota, tenant, jobs, s.cfg.MaxJobsPerTenant)
	}
	if s.cfg.MaxRanksPerTenant > 0 && ranks+procs > s.cfg.MaxRanksPerTenant {
		return fmt.Errorf("%w: tenant %q holds %d active ranks, %d more requested (max %d)",
			ErrQuota, tenant, ranks, procs, s.cfg.MaxRanksPerTenant)
	}
	return nil
}

func (s *Scheduler) tenantUsageLocked(tenant string) (jobs, ranks int) {
	for _, j := range s.jobs {
		if j.Tenant == tenant && j.state.active() {
			jobs++
			ranks += j.Spec.Procs
		}
	}
	return jobs, ranks
}

// scheduleLocked dispatches queued jobs in priority order. The head of the
// queue either starts (ranks free), triggers preemption (it outranks
// enough running work to fit), or blocks the queue — strict priority order
// with no backfill past a blocked job, so big high-priority jobs cannot be
// starved by a stream of small ones.
func (s *Scheduler) scheduleLocked() {
	if s.cfg.Launch == nil || s.draining || s.closed {
		return
	}
	for s.queue.Len() > 0 {
		head := s.queue.ordered()[0]
		free := s.cfg.TotalRanks - s.usedRanks
		if head.Spec.Procs <= free {
			s.queue.remove(head)
			s.startLocked(head)
			continue
		}
		if s.preemptForLocked(head, head.Spec.Procs-free) {
			// Victims are draining to custody; the freed ranks dispatch this
			// job when their teardown completes.
			s.logf("job %s (priority %d) waiting on preemption for %d ranks",
				head.ID, head.Priority, head.Spec.Procs-free)
		}
		return
	}
}

// preemptForLocked evicts just enough strictly-lower-priority running work
// to fit j, lowest priority first (most recently started among equals, so
// the oldest work survives). Returns false — and evicts nothing — when
// even evicting every eligible victim would not free enough ranks.
func (s *Scheduler) preemptForLocked(j *Job, need int) bool {
	var candidates []*Job
	for _, r := range s.jobs {
		if r.state == StateRunning && !r.canceled && r.Priority < j.Priority {
			candidates = append(candidates, r)
		}
	}
	// Lowest priority first; among equals the youngest run goes first.
	for i := 0; i < len(candidates); i++ {
		for k := i + 1; k < len(candidates); k++ {
			a, b := candidates[i], candidates[k]
			if b.Priority < a.Priority || (b.Priority == a.Priority && b.started.After(a.started)) {
				candidates[i], candidates[k] = b, a
			}
		}
	}
	total := 0
	var victims []*Job
	for _, c := range candidates {
		victims = append(victims, c)
		total += c.Spec.Procs
		if total >= need {
			break
		}
	}
	if total < need {
		return false
	}
	for _, v := range victims {
		s.logf("preempting job %s (priority %d) for job %s (priority %d)",
			v.ID, v.Priority, j.ID, j.Priority)
		s.stats.Preemptions++
		s.met.preemptions.Inc()
		s.evictLocked(v)
	}
	return true
}

// evictLocked begins tearing a running job down to custody: the state flips
// to evicting, and a goroutine waits (bounded) for every rank's checkpoint
// to reach the job's custody namespace before killing the fleet. The run
// waiter completes the transition to preempted.
func (s *Scheduler) evictLocked(j *Job) {
	run := j.run
	if run == nil || run.evicting {
		return
	}
	run.evicting = true
	j.state = StateEvicting
	grace := s.cfg.EvictGrace
	if j.Spec.CheckpointEvery <= 0 {
		grace = 0 // no snapshots will ever come; kill now, restart later
	}
	store, procs := j.store, j.Spec.Procs // the poller must not touch j unlocked
	go func() {
		if grace > 0 {
			deadline := time.Now().Add(grace)
			for time.Now().Before(deadline) && !storeCovered(store, procs) {
				select {
				case <-run.done:
					return // the run ended on its own mid-eviction
				case <-time.After(20 * time.Millisecond):
				}
			}
		}
		run.stop()
	}()
}

// storeCovered reports whether every rank in [0, procs) has a checkpoint
// in the store — the condition for a resume that restores uniformly
// instead of mixing snapshots with from-scratch ranks.
func storeCovered(store checkpoint.Store, procs int) bool {
	if store == nil {
		return false
	}
	for r := 0; r < procs; r++ {
		if _, ok := store.Load(r); !ok {
			return false
		}
	}
	return true
}

// startLocked dispatches one job: custody namespace, fleet aggregator,
// coordinator, then one supervised node process per rank.
func (s *Scheduler) startLocked(j *Job) {
	now := time.Now()
	if j.store == nil {
		if s.cfg.Custody != nil {
			ns, err := s.cfg.Custody.Namespace(j.ID)
			if err != nil {
				s.failLocked(j, fmt.Errorf("custody namespace: %w", err))
				return
			}
			j.store = ns
		} else {
			j.store = checkpoint.NewMemStore()
		}
	}
	fleet := distnet.NewFleetObs(j.Spec.Job)
	j.fleet = fleet
	coord, err := distnet.NewCoordinator(distnet.CoordConfig{
		Spec: j.Spec, Timeout: s.cfg.RunTimeout,
		Custody: j.store, Fleet: fleet,
		NodeTimeout: s.cfg.NodeTimeout, RejoinWait: s.cfg.RejoinWait,
		Logf: func(format string, args ...any) {
			s.logf("[%s] "+format, append([]any{j.ID}, args...)...)
		},
	})
	if err != nil {
		s.failLocked(j, err)
		return
	}
	resumed := j.preemptions > 0
	j.restores += coord.Stats().CustodyRestores

	run := &runningJob{coord: coord, done: make(chan struct{})}
	for slot := 0; slot < j.Spec.Procs; slot++ {
		info := LaunchInfo{JobID: j.ID, Slot: slot, Coord: coord.Addr()}
		sup, err := distnet.Supervise(distnet.SuperviseConfig{
			Start: func(epoch int) (*exec.Cmd, error) {
				info.Epoch = epoch
				return s.cfg.Launch(info)
			},
			MaxRespawns: s.cfg.MaxRespawns,
			Logf: func(format string, args ...any) {
				s.logf("[%s/%d] "+format, append([]any{j.ID, slot}, args...)...)
			},
		})
		if err != nil {
			for _, started := range run.sups {
				started.Stop()
			}
			coord.Close()
			s.failLocked(j, fmt.Errorf("launching node %d: %w", slot, err))
			return
		}
		run.sups = append(run.sups, sup)
	}

	wait := now.Sub(j.pendingSince).Seconds()
	j.waited += wait
	s.stats.WaitSec = append(s.stats.WaitSec, wait)
	s.met.waitSec.Observe(wait)
	if resumed {
		s.stats.Resumes++
		s.met.resumes.Inc()
		s.met.resumeSec.Observe(now.Sub(j.evictedAt).Seconds())
	}
	j.run = run
	j.state = StateRunning
	j.started = now
	s.usedRanks += j.Spec.Procs
	verb := "started"
	if resumed {
		verb = fmt.Sprintf("resumed (%d custody restores)", coord.Stats().CustodyRestores)
	}
	s.logf("job %s %s on %d ranks at %s after %.3fs queued (pool %d/%d used)",
		j.ID, verb, j.Spec.Procs, coord.Addr(), wait, s.usedRanks, s.cfg.TotalRanks)

	go s.waitRun(j, run)
}

// failLocked moves a job to failed from inside the scheduler.
func (s *Scheduler) failLocked(j *Job, err error) {
	j.state = StateFailed
	j.err = err
	j.finished = time.Now()
	s.stats.Failed++
	s.met.outcome("failed")
	s.clearCustody(j)
	s.logf("%v", jobError(j, err))
}

// waitRun blocks on the job's coordinator, tears the supervisors down, and
// hands the outcome to onRunDone.
func (s *Scheduler) waitRun(j *Job, run *runningJob) {
	reports, runErr := run.coord.Wait()
	// The run's verdict is the coordinator's; stop the supervisors so a
	// child killed after its result is not pointlessly relaunched.
	for _, sup := range run.sups {
		sup.Stop()
	}
	var supErr error
	for _, sup := range run.sups {
		if err := sup.Wait(); err != nil && supErr == nil {
			supErr = err
		}
	}
	close(run.done)
	s.onRunDone(j, run, reports, runErr, supErr)
}

// onRunDone retires one run attempt: frees the rank claim and routes the
// job to done, preempted (requeue), canceled, or failed.
func (s *Scheduler) onRunDone(j *Job, run *runningJob, reports []distnet.NodeReport, runErr, supErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.usedRanks -= j.Spec.Procs
	j.run = nil
	now := time.Now()
	switch {
	case j.canceled:
		j.state = StateCanceled
		j.finished = now
		s.stats.Canceled++
		s.met.outcome("canceled")
		s.clearCustody(j)
		s.logf("job %s canceled mid-run", j.ID)
	case runErr == nil:
		j.state = StateDone
		j.finished = now
		j.reports = reports
		s.stats.Completed++
		s.met.outcome("done")
		s.clearCustody(j)
		if supErr != nil {
			s.logf("job %s done, but a supervisor latched: %v", j.ID, supErr)
		}
		s.logf("job %s done: %d reports after %.3fs running", j.ID, len(reports), now.Sub(j.started).Seconds())
	case run.evicting:
		j.state = StatePreempted
		j.preemptions++
		j.evictedAt = now
		j.pendingSince = now
		if !storeCovered(j.store, j.Spec.Procs) {
			// Partial custody would resume a torn fleet (some ranks restored
			// mid-run, others at iteration zero); restart uniformly instead.
			s.clearCustody(j)
			s.logf("job %s evicted without full custody coverage; it will restart from scratch", j.ID)
		}
		s.queue.push(j)
		s.logf("job %s preempted to custody (eviction #%d), requeued at priority %d",
			j.ID, j.preemptions, j.Priority)
	default:
		err := runErr
		if err == nil {
			err = supErr
		}
		j.state = StateFailed
		j.err = err
		j.finished = now
		s.stats.Failed++
		s.met.outcome("failed")
		s.clearCustody(j)
		s.logf("%v", jobError(j, err))
	}
	s.cond.Broadcast()
	s.scheduleLocked()
	s.updateGaugesLocked()
}

// clearCustody wipes a job's custody namespace: it exists to revive that
// job, and a terminal job's snapshots must not poison a future run.
func (s *Scheduler) clearCustody(j *Job) {
	if fs, ok := j.store.(*checkpoint.FileStore); ok && fs != nil {
		if err := fs.Clear(); err != nil {
			s.logf("job %s: clearing custody: %v", j.ID, err)
		}
	}
	if j.state != StatePreempted {
		j.store = nil
	}
}

// Cancel removes a job: dequeued if waiting, torn down if running. The
// job's custody namespace is cleared either way.
func (s *Scheduler) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state {
	case StatePending, StatePreempted:
		s.queue.remove(j)
		j.state = StateCanceled
		j.finished = time.Now()
		s.stats.Canceled++
		s.met.outcome("canceled")
		s.clearCustody(j)
		s.logf("job %s canceled while queued", j.ID)
		s.scheduleLocked()
	case StateRunning, StateEvicting:
		if !j.canceled {
			j.canceled = true
			go j.run.stop() // the waiter completes the transition
			s.logf("job %s cancel requested; tearing its fleet down", j.ID)
		}
	default:
		return JobStatus{}, fmt.Errorf("%w: %s is %s", ErrJobFinished, id, j.state)
	}
	s.updateGaugesLocked()
	return s.statusLocked(j), nil
}

// Status returns one job's current status.
func (s *Scheduler) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

func (s *Scheduler) statusLocked(j *Job) JobStatus {
	var reports []distnet.NodeReport
	if j.state == StateDone {
		reports = j.reports
	}
	return j.status(time.Now(), j.waitTotal(), reports)
}

// Jobs lists every known job in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// TenantUsage is one tenant's live occupancy against its quota.
type TenantUsage struct {
	Jobs     int `json:"jobs"`
	Ranks    int `json:"ranks"`
	MaxJobs  int `json:"max_jobs,omitempty"`
	MaxRanks int `json:"max_ranks,omitempty"`
}

// QueueStatus is the /queue JSON view: pool occupancy, the dispatch-order
// queue, the running set, and per-tenant usage.
type QueueStatus struct {
	TotalRanks int                    `json:"total_ranks"`
	FreeRanks  int                    `json:"free_ranks"`
	Draining   bool                   `json:"draining"`
	Pending    []JobStatus            `json:"pending"`
	Running    []JobStatus            `json:"running"`
	Tenants    map[string]TenantUsage `json:"tenants"`
}

// Queue snapshots the scheduler's queue and occupancy state.
func (s *Scheduler) Queue() QueueStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := QueueStatus{
		TotalRanks: s.cfg.TotalRanks,
		FreeRanks:  s.cfg.TotalRanks - s.usedRanks,
		Draining:   s.draining,
		Pending:    []JobStatus{},
		Running:    []JobStatus{},
		Tenants:    make(map[string]TenantUsage),
	}
	for _, j := range s.queue.ordered() {
		st.Pending = append(st.Pending, s.statusLocked(j))
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state == StateRunning || j.state == StateEvicting {
			st.Running = append(st.Running, s.statusLocked(j))
		}
	}
	for tenant := range s.tenants {
		jobs, ranks := s.tenantUsageLocked(tenant)
		st.Tenants[tenant] = TenantUsage{
			Jobs: jobs, Ranks: ranks,
			MaxJobs: s.cfg.MaxJobsPerTenant, MaxRanks: s.cfg.MaxRanksPerTenant,
		}
	}
	return st
}

// updateGaugesLocked refreshes the level gauges after any state change.
func (s *Scheduler) updateGaugesLocked() {
	s.met.queueDepth.Set(float64(s.queue.Len()))
	running := 0
	for _, j := range s.jobs {
		if j.state == StateRunning || j.state == StateEvicting {
			running++
		}
	}
	s.met.runningJobs.Set(float64(running))
	s.met.freeRanks.Set(float64(s.cfg.TotalRanks - s.usedRanks))
	for tenant := range s.tenants {
		jobs, ranks := s.tenantUsageLocked(tenant)
		s.met.tenantOccupancy(tenant, jobs, ranks)
	}
}

// Drain stops admission (submissions get ErrDraining), evicts every
// running job to custody, waits (bounded) for the fleets to land, and
// persists the queue to StateDir so a restarted scheduler resumes it.
func (s *Scheduler) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	evicting := 0
	for _, j := range s.jobs {
		if j.state == StateRunning {
			s.evictLocked(j)
			evicting++
		}
	}
	s.logf("draining: %d running jobs evicting to custody, %d queued", evicting, s.queue.Len())

	deadline := time.Now().Add(timeout)
	for s.anyLiveLocked() && time.Now().Before(deadline) {
		s.waitChangeLocked(deadline)
	}
	if s.anyLiveLocked() {
		// Grace expired: kill what is left and give the waiters a moment.
		for _, j := range s.jobs {
			if j.run != nil {
				go j.run.stop()
			}
		}
		killDeadline := time.Now().Add(5 * time.Second)
		for s.anyLiveLocked() && time.Now().Before(killDeadline) {
			s.waitChangeLocked(killDeadline)
		}
	}
	var err error
	if s.cfg.StateDir != "" {
		err = s.persistLocked()
	}
	s.updateGaugesLocked()
	s.mu.Unlock()
	return err
}

func (s *Scheduler) anyLiveLocked() bool {
	for _, j := range s.jobs {
		if j.state == StateRunning || j.state == StateEvicting {
			return true
		}
	}
	return false
}

// waitChangeLocked waits for a running-set change or the deadline,
// whichever first, without holding the lock while asleep.
func (s *Scheduler) waitChangeLocked(deadline time.Time) {
	wake := time.AfterFunc(time.Until(deadline), s.cond.Broadcast)
	s.cond.Wait()
	wake.Stop()
}

// Close tears everything down without persisting: running fleets are
// killed, queued jobs stay wherever they are. Tests and abnormal exits use
// it; production shutdown goes through Drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	var runs []*runningJob
	for _, j := range s.jobs {
		if j.run != nil {
			runs = append(runs, j.run)
		}
	}
	s.mu.Unlock()
	for _, run := range runs {
		run.stop()
	}
	deadline := time.Now().Add(10 * time.Second)
	s.mu.Lock()
	for s.anyLiveLocked() && time.Now().Before(deadline) {
		s.waitChangeLocked(deadline)
	}
	s.mu.Unlock()
}
