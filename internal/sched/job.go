package sched

// The job model: what a tenant submits, the lifecycle it moves through,
// and the status view the HTTP API serves. A Job wraps one distnet run
// (its own coordinator, its own slice of the node pool, its own custody
// namespace); the scheduler moves it through the state machine below.
//
//	           ┌────────────── preempt ──────────────┐
//	           ▼                                     │
//	pending ─ start ─▶ running ── evict ──▶ evicting ┘
//	   ▲                  │ │                  │
//	   └── resume ────────┘ │                  └─ run error ─▶ failed
//	  (state: preempted)    ├─▶ done
//	                        └─▶ failed
//
// cancel is reachable from pending, preempted and running. A preempted job
// re-enters the queue with its original submission sequence number, so it
// resumes ahead of later arrivals of equal priority; its custody namespace
// still holds the snapshots its next incarnation restores from.

import (
	"fmt"
	"time"

	"specomp/internal/checkpoint"
	"specomp/internal/distnet"
)

// JobState is one stage of a job's lifecycle.
type JobState string

const (
	// StatePending: admitted, waiting in the priority queue for pool ranks.
	StatePending JobState = "pending"
	// StateRunning: a coordinator and its node fleet are live.
	StateRunning JobState = "running"
	// StateEvicting: preemption in flight — the scheduler is waiting for
	// custody coverage, then tearing the fleet down.
	StateEvicting JobState = "evicting"
	// StatePreempted: evicted to custody and re-queued; the next start
	// restores from the job's checkpoint namespace.
	StatePreempted JobState = "preempted"
	// StateDone: all ranks reported converged results.
	StateDone JobState = "done"
	// StateFailed: the run (or its supervision) failed terminally.
	StateFailed JobState = "failed"
	// StateCanceled: removed by DELETE /jobs/{id}.
	StateCanceled JobState = "canceled"
)

// active reports whether the state still holds queue or pool resources.
func (s JobState) active() bool {
	switch s {
	case StatePending, StateRunning, StateEvicting, StatePreempted:
		return true
	}
	return false
}

// JobSpec is a submission: who wants what run, how urgently.
type JobSpec struct {
	// Name is a human label (defaults to the run's app name). It need not
	// be unique; the scheduler assigns the unique id.
	Name string `json:"name,omitempty"`
	// Tenant attributes the job for admission control and occupancy
	// metrics (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the queue: higher runs first, and a submission may
	// preempt running jobs of strictly lower priority (default 0).
	Priority int `json:"priority"`
	// Spec is the distnet run to execute. Spec.Procs ranks are claimed
	// from the pool while the job runs. Spec.Job is overwritten with the
	// job id so every job's fleet metrics are uniquely labelled.
	Spec distnet.RunSpec `json:"spec"`
}

// Job is one scheduled run. All mutable fields are guarded by the
// scheduler's mutex; the HTTP layer only ever sees Status() copies.
type Job struct {
	ID string
	JobSpec

	seq   uint64 // admission sequence: FIFO tiebreak within a priority
	state JobState

	submitted    time.Time
	pendingSince time.Time // start of the current queue wait
	started      time.Time // current/last run start
	finished     time.Time
	evictedAt    time.Time // when the last eviction completed (resume latency base)

	preemptions int
	restores    int     // custody restores summed over resumes (coordinator-side)
	waited      float64 // completed queue waits; current wait added in status()
	canceled    bool
	err         error
	reports     []distnet.NodeReport // final converged reports (done jobs)

	// store is the job's custody namespace; it survives evictions (that is
	// the point) and is cleared when the job leaves the system.
	store checkpoint.Store
	// fleet aggregates the job's node metrics; it outlives the run so the
	// merged /metrics keeps serving finished jobs' final snapshots.
	fleet *distnet.FleetObs
	// run is the live fleet, nil unless running/evicting.
	run *runningJob
}

// JobStatus is the JSON view of one job.
type JobStatus struct {
	ID          string          `json:"id"`
	Name        string          `json:"name"`
	Tenant      string          `json:"tenant"`
	Priority    int             `json:"priority"`
	State       JobState        `json:"state"`
	App         string          `json:"app"`
	Procs       int             `json:"procs"`
	Preemptions int             `json:"preemptions"`
	Restores    int             `json:"restores,omitempty"`
	SubmittedAt float64         `json:"submitted_unix"`
	StartedAt   float64         `json:"started_unix,omitempty"`
	FinishedAt  float64         `json:"finished_unix,omitempty"`
	WaitSec     float64         `json:"wait_sec"` // cumulative time spent queued
	Error       string          `json:"error,omitempty"`
	Reports     []distnet.NodeReport `json:"reports,omitempty"`
}

// status snapshots the job under the scheduler lock.
func (j *Job) status(now time.Time, waited float64, reports []distnet.NodeReport) JobStatus {
	st := JobStatus{
		ID: j.ID, Name: j.Name, Tenant: j.Tenant, Priority: j.Priority,
		State: j.state, App: j.Spec.App, Procs: j.Spec.Procs,
		Preemptions: j.preemptions, Restores: j.restores,
		SubmittedAt: unix(j.submitted), WaitSec: waited,
		Reports: reports,
	}
	if !j.started.IsZero() {
		st.StartedAt = unix(j.started)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = unix(j.finished)
	}
	if j.state == StatePending || j.state == StatePreempted {
		st.WaitSec += now.Sub(j.pendingSince).Seconds()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func unix(t time.Time) float64 {
	if t.IsZero() {
		return 0
	}
	return float64(t.UnixNano()) / 1e9
}

// waitTotal is the job's cumulative queue wait over all attempts so far.
func (j *Job) waitTotal() float64 { return j.waited }

// runningJob is the live half of a running job: its coordinator and the
// supervised node slot fleet.
type runningJob struct {
	coord *distnet.Coordinator
	sups  []*distnet.Supervisor
	// evicting marks a deliberate teardown: the waiter treats the
	// coordinator's error as a preemption, not a failure.
	evicting bool
	// done closes when the waiter has retired the run (eviction pollers
	// watch it so they stop once the fleet is gone).
	done chan struct{}
}

// stop tears the fleet down: node supervisors first (children die without
// respawn), then the coordinator.
func (r *runningJob) stop() {
	for _, sup := range r.sups {
		sup.Stop()
	}
	r.coord.Close()
}

// jobError wraps a run failure with the job identity for log lines.
func jobError(j *Job, err error) error {
	return fmt.Errorf("job %s (%s): %w", j.ID, j.Name, err)
}
