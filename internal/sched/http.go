package sched

// The service API. JSON over HTTP on one mux:
//
//	POST   /jobs       submit a JobSpec     → JobStatus (503 draining,
//	                                          429 quota, 400 invalid)
//	GET    /jobs       list all jobs        → []JobStatus
//	GET    /jobs/{id}  one job's status     → JobStatus (404 unknown)
//	DELETE /jobs/{id}  cancel               → JobStatus (404 unknown,
//	                                          409 already finished)
//	GET    /queue      queue + occupancy    → QueueStatus
//	GET    /metrics    merged Prometheus exposition: scheduler series +
//	                   every job's aggregated fleet (job-labelled)
//	GET    /fleet      scheduler + per-job fleet JSON; ?job= filters to
//	                   one job's fleet view
//
// Everything renders from snapshot copies; no handler holds scheduler
// state across a write.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"specomp/internal/distnet"
	"specomp/internal/obs"
)

// Handler serves the scheduler API.
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /queue", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Queue())
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /fleet", s.handleFleet)
	return mux
}

func (s *Scheduler) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("decoding job spec: %v", err)})
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleMetrics serves ONE exposition for the whole service: the
// scheduler's own series merged family-wise with every job's aggregated
// fleet. Jobs never collide — each fleet's samples carry that job's id in
// their job label — so the union is a well-formed exposition with one
// family per metric name.
func (s *Scheduler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := s.cfg.Metrics.WriteProm(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fams, err := obs.ParsePromFamilies(bytes.NewReader(buf.Bytes()))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	merged := make(map[string]*obs.PromFamily, len(fams))
	var order []string
	add := func(fam obs.PromFamily) {
		m := merged[fam.Name]
		if m == nil {
			cp := fam
			cp.Samples = append([]obs.PromSample(nil), fam.Samples...)
			merged[fam.Name] = &cp
			order = append(order, fam.Name)
			return
		}
		m.Samples = append(m.Samples, fam.Samples...)
	}
	for _, fam := range fams {
		add(fam)
	}
	for _, jf := range s.jobFleets("") {
		jfams, err := jf.fleet.Families()
		if err != nil {
			http.Error(w, fmt.Sprintf("job %s: %v", jf.id, err), http.StatusInternalServerError)
			return
		}
		for _, fam := range jfams {
			add(fam)
		}
	}
	sort.Strings(order)
	var out bytes.Buffer
	final := make([]obs.PromFamily, 0, len(order))
	for _, name := range order {
		final = append(final, *merged[name])
	}
	if err := obs.WriteFamilies(&out, final); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(out.Bytes())
}

// SchedFleetStatus is the /fleet JSON view: scheduler occupancy plus each
// job's fleet aggregation state.
type SchedFleetStatus struct {
	Queue QueueStatus      `json:"queue"`
	Jobs  []JobFleetStatus `json:"jobs"`
}

// JobFleetStatus is one job's slice of the /fleet view.
type JobFleetStatus struct {
	ID    string              `json:"id"`
	State JobState            `json:"state"`
	Fleet distnet.FleetStatus `json:"fleet"`
}

func (s *Scheduler) handleFleet(w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("job")
	fleets := s.jobFleets(filter)
	if filter != "" && len(fleets) == 0 {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no fleet for job %q", filter)})
		return
	}
	st := SchedFleetStatus{Queue: s.Queue(), Jobs: []JobFleetStatus{}}
	for _, jf := range fleets {
		st.Jobs = append(st.Jobs, JobFleetStatus{ID: jf.id, State: jf.state, Fleet: jf.fleet.Status()})
	}
	writeJSON(w, http.StatusOK, st)
}

// jobFleet pairs a job id with its fleet aggregator snapshot reference.
type jobFleet struct {
	id    string
	state JobState
	fleet *distnet.FleetObs
}

// jobFleets returns the fleets of jobs that have one (submission order),
// optionally filtered to a single job id.
func (s *Scheduler) jobFleets(filter string) []jobFleet {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []jobFleet
	for _, id := range s.order {
		j := s.jobs[id]
		if j.fleet == nil || (filter != "" && id != filter) {
			continue
		}
		out = append(out, jobFleet{id: id, state: j.state, fleet: j.fleet})
	}
	return out
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeError maps scheduler sentinels to HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrQuota):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrJobFinished):
		code = http.StatusConflict
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}
