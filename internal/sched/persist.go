package sched

// Queue persistence: a draining scheduler writes its pending queue (and
// the preempted jobs parked in it) to <StateDir>/sched-queue.json; the
// next scheduler consumes the file at startup and re-admits every entry
// with its original sequence number, so the restart preserves dispatch
// order. Preempted jobs come back in the preempted state and restore from
// their (durable) custody namespaces when dispatched. Running jobs are
// never in this file — Drain evicts them to custody first, which parks
// them in the queue.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"specomp/internal/distnet"
)

const queueFileName = "sched-queue.json"

// persistedJob is one queue entry on disk.
type persistedJob struct {
	ID          string          `json:"id"`
	Name        string          `json:"name"`
	Tenant      string          `json:"tenant"`
	Priority    int             `json:"priority"`
	Seq         uint64          `json:"seq"`
	Preemptions int             `json:"preemptions"`
	Restores    int             `json:"restores,omitempty"`
	WaitedSec   float64         `json:"waited_sec"`
	Submitted   float64         `json:"submitted_unix"`
	EvictedAt   float64         `json:"evicted_unix,omitempty"`
	Spec        distnet.RunSpec `json:"spec"`
}

// persistedQueue is the on-disk queue file.
type persistedQueue struct {
	SavedAt float64        `json:"saved_unix"`
	NextID  int            `json:"next_id"`
	NextSeq uint64         `json:"next_seq"`
	Jobs    []persistedJob `json:"jobs"`
}

// persistLocked writes the queue file (atomic replace). Called with the
// scheduler lock held, after draining has emptied the running set.
func (s *Scheduler) persistLocked() error {
	pq := persistedQueue{
		SavedAt: unix(time.Now()),
		NextID:  s.nextID,
		NextSeq: s.nextSeq,
		Jobs:    []persistedJob{},
	}
	for _, j := range s.queue.ordered() {
		pq.Jobs = append(pq.Jobs, persistedJob{
			ID: j.ID, Name: j.Name, Tenant: j.Tenant, Priority: j.Priority,
			Seq: j.seq, Preemptions: j.preemptions, Restores: j.restores,
			WaitedSec: j.waited, Submitted: unix(j.submitted),
			EvictedAt: unix(j.evictedAt), Spec: j.Spec,
		})
	}
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("sched: persisting queue: %w", err)
	}
	blob, err := json.MarshalIndent(pq, "", " ")
	if err != nil {
		return fmt.Errorf("sched: persisting queue: %w", err)
	}
	path := filepath.Join(s.cfg.StateDir, queueFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("sched: persisting queue: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sched: persisting queue: %w", err)
	}
	s.logf("persisted %d queued jobs to %s", len(pq.Jobs), path)
	return nil
}

// loadState consumes a persisted queue file, if present. Called from New
// before the scheduler is visible to anyone, so no locking.
func (s *Scheduler) loadState() error {
	path := filepath.Join(s.cfg.StateDir, queueFileName)
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sched: loading persisted queue: %w", err)
	}
	var pq persistedQueue
	if err := json.Unmarshal(blob, &pq); err != nil {
		return fmt.Errorf("sched: loading persisted queue %s: %w", path, err)
	}
	now := time.Now()
	for _, p := range pq.Jobs {
		j := &Job{
			ID: p.ID,
			JobSpec: JobSpec{
				Name: p.Name, Tenant: p.Tenant, Priority: p.Priority, Spec: p.Spec,
			},
			seq:          p.Seq,
			state:        StatePending,
			submitted:    fromUnix(p.Submitted),
			pendingSince: now,
			evictedAt:    fromUnix(p.EvictedAt),
			preemptions:  p.Preemptions,
			restores:     p.Restores,
			waited:       p.WaitedSec,
		}
		if j.preemptions > 0 {
			// Came back mid-flight: dispatching it is a resume, and its
			// custody namespace (durable, outside StateDir bookkeeping)
			// still holds the snapshots to restore from.
			j.state = StatePreempted
			if j.evictedAt.IsZero() {
				j.evictedAt = now
			}
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.tenants[j.Tenant] = true
		s.queue.push(j)
	}
	if pq.NextID > s.nextID {
		s.nextID = pq.NextID
	}
	if pq.NextSeq > s.nextSeq {
		s.nextSeq = pq.NextSeq
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("sched: consuming persisted queue: %w", err)
	}
	s.logf("recovered %d queued jobs from %s", len(pq.Jobs), path)
	return nil
}

func fromUnix(sec float64) time.Time {
	if sec == 0 {
		return time.Time{}
	}
	return time.Unix(0, int64(sec*1e9))
}
