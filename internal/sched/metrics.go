package sched

// Scheduler-level metrics. These are service series (no job label — they
// describe the scheduler itself); per-job series come from each job's
// FleetObs and carry job/node labels. Everything is served merged from the
// one /metrics endpoint (http.go).

import "specomp/internal/obs"

// Metric names exported by the scheduler.
const (
	// MetricQueueDepth gauges how many jobs are waiting (pending + preempted).
	MetricQueueDepth = "specomp_sched_queue_depth"
	// MetricRunningJobs gauges how many jobs hold pool ranks right now.
	MetricRunningJobs = "specomp_sched_running_jobs"
	// MetricFreeRanks gauges unclaimed pool capacity.
	MetricFreeRanks = "specomp_sched_free_ranks"
	// MetricWaitSeconds is the queue-wait histogram, observed at every
	// dispatch (first starts and resumes alike).
	MetricWaitSeconds = "specomp_sched_wait_seconds"
	// MetricPreemptions counts evictions of running jobs by higher-priority
	// arrivals.
	MetricPreemptions = "specomp_sched_preemptions_total"
	// MetricResumes counts preempted jobs dispatched again.
	MetricResumes = "specomp_sched_resumes_total"
	// MetricResumeSeconds is the preempt→redispatch latency histogram.
	MetricResumeSeconds = "specomp_sched_resume_seconds"
	// MetricJobs counts job outcomes by terminal state (label outcome:
	// done/failed/canceled) plus admissions (submitted) and quota
	// rejections (rejected).
	MetricJobs = "specomp_sched_jobs_total"
	// MetricTenantJobs gauges each tenant's active jobs (label tenant).
	MetricTenantJobs = "specomp_sched_tenant_jobs"
	// MetricTenantRanks gauges each tenant's claimed+queued ranks (label
	// tenant) — the quantity the rank quota bounds.
	MetricTenantRanks = "specomp_sched_tenant_ranks"
)

// schedMetrics bundles the scheduler's instruments. All handles are
// nil-safe, so a nil registry simply turns instrumentation off.
type schedMetrics struct {
	reg         *obs.Registry
	queueDepth  *obs.Gauge
	runningJobs *obs.Gauge
	freeRanks   *obs.Gauge
	waitSec     *obs.Histogram
	preemptions *obs.Counter
	resumes     *obs.Counter
	resumeSec   *obs.Histogram
}

func newSchedMetrics(reg *obs.Registry) schedMetrics {
	// 1ms … ~1100s: queue waits span "immediately dispatched" to "parked
	// behind a long batch run".
	waitBuckets := obs.ExpBuckets(0.001, 2, 21)
	return schedMetrics{
		reg:         reg,
		queueDepth:  reg.Gauge(MetricQueueDepth, "Jobs waiting for pool ranks."),
		runningJobs: reg.Gauge(MetricRunningJobs, "Jobs currently holding pool ranks."),
		freeRanks:   reg.Gauge(MetricFreeRanks, "Unclaimed node-pool ranks."),
		waitSec:     reg.Histogram(MetricWaitSeconds, "Queue wait per dispatch (s).", waitBuckets),
		preemptions: reg.Counter(MetricPreemptions, "Running jobs evicted by higher-priority arrivals."),
		resumes:     reg.Counter(MetricResumes, "Preempted jobs dispatched again from custody."),
		resumeSec:   reg.Histogram(MetricResumeSeconds, "Eviction-to-redispatch latency (s).", waitBuckets),
	}
}

// outcome bumps the jobs_total counter for one terminal/admission event.
func (m *schedMetrics) outcome(kind string) {
	m.reg.Counter(MetricJobs, "Job admissions and outcomes.", obs.L("outcome", kind)).Inc()
}

// tenantOccupancy publishes one tenant's active jobs and ranks.
func (m *schedMetrics) tenantOccupancy(tenant string, jobs, ranks int) {
	m.reg.Gauge(MetricTenantJobs, "Active jobs per tenant.", obs.L("tenant", tenant)).Set(float64(jobs))
	m.reg.Gauge(MetricTenantRanks, "Active ranks per tenant.", obs.L("tenant", tenant)).Set(float64(ranks))
}
