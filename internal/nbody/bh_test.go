package nbody

import (
	"math"
	"testing"
	"testing/quick"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
)

func TestOctreeMassAndCOMProperty(t *testing.T) {
	f := func(n8 uint8, seed int64) bool {
		n := int(n8%60) + 2
		ps := UniformSphere(n, seed)
		tree := BuildOctree(ps)
		var mass float64
		var weighted Vec3
		for _, p := range ps {
			mass += p.Mass
			weighted = weighted.Add(p.Pos.Scale(p.Mass))
		}
		com := weighted.Scale(1 / mass)
		if math.Abs(tree.Mass()-mass) > 1e-9*mass {
			return false
		}
		return tree.COM().Sub(com).Norm() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOctreeExactAtZeroMAC(t *testing.T) {
	s := DefaultSim()
	ps := UniformSphere(80, 5)
	tree := BuildOctree(ps)
	direct := s.AccelOn(ps, ps)
	for i := range ps {
		a, _ := tree.Accel(s, ps[i].Pos, 0)
		if a.Sub(direct[i]).Norm() > 1e-9*(1+direct[i].Norm()) {
			t.Fatalf("particle %d: tree %v vs direct %v", i, a, direct[i])
		}
	}
}

func TestOctreeAccuracyAtModerateMAC(t *testing.T) {
	s := DefaultSim()
	ps := UniformSphere(300, 6)
	tree := BuildOctree(ps)
	direct := s.AccelOn(ps, ps)
	worst, sumSq := 0.0, 0.0
	for i := range ps {
		a, _ := tree.Accel(s, ps[i].Pos, 0.5)
		rel := a.Sub(direct[i]).Norm() / (direct[i].Norm() + 1e-12)
		sumSq += rel * rel
		if rel > worst {
			worst = rel
		}
	}
	rms := math.Sqrt(sumSq / float64(len(ps)))
	// Standard Barnes-Hut accuracy at θ=0.5: ~1% RMS with occasional
	// worst-case outliers on near-cancelling forces.
	if rms > 0.02 {
		t.Errorf("RMS relative error %.4f at MAC 0.5, want < 2%%", rms)
	}
	if worst > 0.12 {
		t.Errorf("worst relative error %.3f at MAC 0.5, want < 12%%", worst)
	}
}

func TestOctreeInteractionCountShrinks(t *testing.T) {
	s := DefaultSim()
	ps := UniformSphere(600, 7)
	tree := BuildOctree(ps)
	_, exact := s.AccelOnTree(ps, tree, 0)
	_, approx := s.AccelOnTree(ps, tree, 0.7)
	if approx >= exact/2 {
		t.Errorf("BH interactions %d not well below direct %d", approx, exact)
	}
}

func TestOctreeHandlesCoincidentParticles(t *testing.T) {
	ps := []Particle{
		{Mass: 1, Pos: Vec3{0.5, 0.5, 0.5}},
		{Mass: 2, Pos: Vec3{0.5, 0.5, 0.5}}, // exactly coincident
		{Mass: 1, Pos: Vec3{-0.5, 0, 0}},
	}
	tree := BuildOctree(ps)
	if math.Abs(tree.Mass()-4) > 1e-12 {
		t.Errorf("mass = %v, want 4", tree.Mass())
	}
	s := DefaultSim()
	a, _ := tree.Accel(s, Vec3{-0.5, 0, 0}, 0.5)
	if a.Norm() == 0 || math.IsNaN(a.Norm()) {
		t.Errorf("acceleration near coincident pair: %v", a)
	}
}

func TestBuildOctreePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BuildOctree(nil)
}

func TestBHOpsEstimateMonotonic(t *testing.T) {
	if BHOpsEstimate(1000, 0.5) >= 1000 {
		t.Error("BH estimate should undercut the direct sum at n=1000")
	}
	if BHOpsEstimate(1000, 0.3) <= BHOpsEstimate(1000, 0.7) {
		t.Error("smaller opening angle should cost more")
	}
	if BHOpsEstimate(10, 0) != 10 {
		t.Error("mac=0 estimate should be n")
	}
	if BHOpsEstimate(1, 0.5) != 1 {
		t.Error("n=1 estimate")
	}
}

func TestDistributedBHMatchesDirectClosely(t *testing.T) {
	const n, iters = 64, 10
	ps := UniformSphere(n, 9)
	run := func(mac float64) []Particle {
		counts := []int{16, 16, 16, 16}
		blocks := SplitParticles(ps, counts)
		sim := DefaultSim()
		results, err := core.RunCluster(
			cluster.Config{Machines: cluster.UniformMachines(4, 1e6), Net: netmodel.Fixed{D: 0.02}},
			core.Config{FW: 0, MaxIter: iters},
			func(p *cluster.Proc) core.App {
				app := NewApp(sim, blocks[p.ID()], n, p.ID(), 0.01, nil)
				app.MAC = mac
				return app
			})
		if err != nil {
			t.Fatal(err)
		}
		var out []Particle
		for _, r := range results {
			out = append(out, Decode(r.Final)...)
		}
		return out
	}
	direct := run(0)
	bh := run(0.4)
	if err := MaxPairwiseRelErr(bh, direct); err > 0.02 {
		t.Errorf("BH trajectory drifted %.4f from direct", err)
	}
}

func BenchmarkDirectVsBH(b *testing.B) {
	s := DefaultSim()
	ps := UniformSphere(1500, 10)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.AccelOn(ps, ps)
		}
	})
	b.Run("barnes-hut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree := BuildOctree(ps)
			s.AccelOnTree(ps, tree, 0.6)
		}
	})
}
