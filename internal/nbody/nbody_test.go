package nbody

import (
	"math"
	"testing"
	"testing/quick"

	"specomp/internal/core"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ps := UniformSphere(17, 1)
	got := Decode(Encode(ps))
	if len(got) != len(ps) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Errorf("particle %d: %+v != %+v", i, got[i], ps[i])
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Decode(make([]float64, Floats+1))
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(n8 uint8, seed int64) bool {
		n := int(n8%40) + 1
		ps := UniformSphere(n, seed)
		enc := Encode(ps)
		if len(enc) != n*Floats {
			return false
		}
		dec := Decode(enc)
		for i := range ps {
			if dec[i] != ps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPairAccelPointsTowardSource(t *testing.T) {
	s := DefaultSim()
	a := s.PairAccel(Vec3{0, 0, 0}, Vec3{1, 0, 0}, 2)
	if a.X <= 0 || a.Y != 0 || a.Z != 0 {
		t.Errorf("acceleration %v should point toward +x", a)
	}
	// Twice the mass, twice the pull.
	a2 := s.PairAccel(Vec3{0, 0, 0}, Vec3{1, 0, 0}, 4)
	if math.Abs(a2.X-2*a.X) > 1e-12 {
		t.Errorf("force not linear in mass: %v vs %v", a2.X, a.X)
	}
	// Farther away, weaker.
	far := s.PairAccel(Vec3{0, 0, 0}, Vec3{3, 0, 0}, 2)
	if far.X >= a.X {
		t.Error("force does not decay with distance")
	}
}

func TestSofteningBoundsForce(t *testing.T) {
	s := DefaultSim()
	near := s.PairAccel(Vec3{}, Vec3{1e-12, 0, 0}, 1)
	if math.IsInf(near.X, 0) || math.IsNaN(near.X) {
		t.Fatal("softened force blew up at zero distance")
	}
	bound := 1.0 / (s.Soft * s.Soft)
	if near.Norm() > bound {
		t.Errorf("softened force %g exceeds 1/eps^2 = %g", near.Norm(), bound)
	}
}

func TestAccelOnSkipsSelfPairs(t *testing.T) {
	s := DefaultSim()
	ps := []Particle{{Mass: 1, Pos: Vec3{0, 0, 0}}, {Mass: 1, Pos: Vec3{1, 0, 0}}}
	acc := s.AccelOn(ps, ps)
	// Newton's third law: equal and opposite.
	if math.Abs(acc[0].X+acc[1].X) > 1e-12 {
		t.Errorf("not symmetric: %v vs %v", acc[0], acc[1])
	}
	if acc[0].X <= 0 {
		t.Errorf("particle 0 should accelerate toward +x: %v", acc[0])
	}
}

func TestMomentumConservation(t *testing.T) {
	s := DefaultSim()
	ps := UniformSphere(30, 2)
	p0 := Momentum(ps)
	evolved := s.Evolve(ps, 50)
	p1 := Momentum(evolved)
	if p1.Sub(p0).Norm() > 1e-10 {
		t.Errorf("momentum drifted: %v -> %v", p0, p1)
	}
}

func TestEnergyApproximatelyConserved(t *testing.T) {
	s := DefaultSim()
	ps := RotatingDisk(40, 3)
	e0 := s.Energy(ps)
	evolved := s.Evolve(ps, 100)
	e1 := s.Energy(evolved)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.02 {
		t.Errorf("energy drifted %.2f%% over 100 steps", rel*100)
	}
}

func TestKDKSecondOrderConvergence(t *testing.T) {
	// Halving Δt should cut the KDK trajectory error roughly 4× (2nd
	// order), vs roughly 2× for the 1st-order symplectic Euler.
	base := RotatingDisk(12, 41)
	const horizon = 0.4
	ref := Sim{G: 1, Soft: 0.05, Dt: horizon / 512}
	truth := ref.EvolveKDK(base, 512)
	errAt := func(dt float64, kdk bool) float64 {
		s := Sim{G: 1, Soft: 0.05, Dt: dt}
		steps := int(horizon/dt + 0.5)
		var got []Particle
		if kdk {
			got = s.EvolveKDK(base, steps)
		} else {
			got = s.Evolve(base, steps)
		}
		worst := 0.0
		for i := range got {
			if d := got[i].Pos.Sub(truth[i].Pos).Norm(); d > worst {
				worst = d
			}
		}
		return worst
	}
	coarse := errAt(horizon/16, true)
	fine := errAt(horizon/32, true)
	ratio := coarse / fine
	if ratio < 3.0 {
		t.Errorf("KDK error ratio %.2f on Δt halving, want ~4 (2nd order)", ratio)
	}
	// And KDK beats the 1st-order scheme at equal Δt.
	if e1 := errAt(horizon/16, false); e1 <= coarse {
		t.Errorf("KDK (%.3e) not more accurate than symplectic Euler (%.3e)", coarse, e1)
	}
}

func TestKDKConservesEnergyTightly(t *testing.T) {
	s := DefaultSim()
	ps := RotatingDisk(40, 3)
	e0 := s.Energy(ps)
	evolved := s.EvolveKDK(ps, 100)
	e1 := s.Energy(evolved)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.005 {
		t.Errorf("KDK energy drifted %.3f%% over 100 steps", rel*100)
	}
}

func TestInitialConditionGenerators(t *testing.T) {
	for name, gen := range map[string]func(int, int64) []Particle{
		"sphere":   UniformSphere,
		"disk":     RotatingDisk,
		"clusters": TwoClusters,
	} {
		ps := gen(50, 7)
		if len(ps) != 50 {
			t.Errorf("%s: len = %d", name, len(ps))
		}
		for i, p := range ps {
			if p.Mass <= 0 {
				t.Errorf("%s particle %d: mass %g", name, i, p.Mass)
			}
			if math.IsNaN(p.Pos.Norm()) || math.IsNaN(p.Vel.Norm()) {
				t.Errorf("%s particle %d: NaN state", name, i)
			}
		}
		// Deterministic for a given seed.
		again := gen(50, 7)
		for i := range ps {
			if again[i] != ps[i] {
				t.Errorf("%s: not deterministic at %d", name, i)
				break
			}
		}
	}
}

func TestSpeculateEq10(t *testing.T) {
	sim := Sim{G: 1, Soft: 0.05, Dt: 0.5}
	app := NewApp(sim, nil, 10, 0, 0.01, nil)
	ps := []Particle{{Mass: 2, Pos: Vec3{1, 1, 0}, Vel: Vec3{0.2, -0.4, 0}}}
	pred, ops := app.Speculate(1, [][]float64{Encode(ps)}, 1)
	got := Decode(pred)[0]
	want := Vec3{1.1, 0.8, 0}
	if got.Pos.Sub(want).Norm() > 1e-12 {
		t.Errorf("speculated pos %v, want %v", got.Pos, want)
	}
	if got.Vel != ps[0].Vel || got.Mass != ps[0].Mass {
		t.Errorf("velocity/mass should be held: %+v", got)
	}
	if ops != SpecOpsPerParticle {
		t.Errorf("ops = %g, want %d", ops, SpecOpsPerParticle)
	}
	// Two steps extrapolate twice as far.
	pred2, _ := app.Speculate(1, [][]float64{Encode(ps)}, 2)
	got2 := Decode(pred2)[0]
	want2 := Vec3{1.2, 0.6, 0}
	if got2.Pos.Sub(want2).Norm() > 1e-12 {
		t.Errorf("2-step speculated pos %v, want %v", got2.Pos, want2)
	}
}

func TestCheckEq11(t *testing.T) {
	sim := Sim{G: 1, Soft: 1e-6, Dt: 0.1}
	app := NewApp(sim, nil, 3, 0, 0.01, nil)
	// One local particle at origin; two remote particles at distance 1 and 10.
	local := Encode([]Particle{{Mass: 1, Pos: Vec3{0, 0, 0}}})
	actual := Encode([]Particle{
		{Mass: 1, Pos: Vec3{1, 0, 0}},
		{Mass: 1, Pos: Vec3{10, 0, 0}},
	})
	// Predictions off by 0.05: ratios 0.05/1 = 0.05 (bad at θ=0.01) and
	// 0.05/10 = 0.005 (acceptable).
	predicted := Encode([]Particle{
		{Mass: 1, Pos: Vec3{1.05, 0, 0}},
		{Mass: 1, Pos: Vec3{10.05, 0, 0}},
	})
	res := app.Check(1, predicted, actual, local, 0)
	if res.Total != 2 {
		t.Errorf("Total = %d, want 2", res.Total)
	}
	if res.Bad != 1 {
		t.Errorf("Bad = %d, want 1", res.Bad)
	}
	wantOps := float64(CheckOpsPerRemote*2 + CheckOpsPerPair*2)
	if res.Ops != wantOps {
		t.Errorf("Ops = %g, want %g", res.Ops, wantOps)
	}
	// Looser threshold accepts both.
	app.Theta = 0.1
	if r := app.Check(1, predicted, actual, local, 0); r.Bad != 0 {
		t.Errorf("θ=0.1: Bad = %d, want 0", r.Bad)
	}
}

func TestRepairOps(t *testing.T) {
	app := NewApp(DefaultSim(), nil, 10, 0, 0.01, nil)
	if got := app.RepairOps(core.CheckResult{Bad: 5}); got != 2*PairOps*5 {
		t.Errorf("RepairOps = %g", got)
	}
}

func TestSplitParticles(t *testing.T) {
	ps := UniformSphere(10, 1)
	blocks := SplitParticles(ps, []int{3, 0, 7})
	if len(blocks[0]) != 3 || len(blocks[1]) != 0 || len(blocks[2]) != 7 {
		t.Fatalf("block sizes %d %d %d", len(blocks[0]), len(blocks[1]), len(blocks[2]))
	}
	if blocks[2][0] != ps[3] {
		t.Error("blocks not consecutive")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad sizes")
		}
	}()
	SplitParticles(ps, []int{5, 4})
}

func TestMaxPairwiseRelErr(t *testing.T) {
	a := []Particle{{Pos: Vec3{1, 0, 0}}, {Pos: Vec3{0, 2, 0}}}
	b := []Particle{{Pos: Vec3{1, 0, 0}}, {Pos: Vec3{0, 1, 0}}}
	got := MaxPairwiseRelErr(a, b)
	if math.Abs(got-1.0) > 1e-12 { // |2-1|/1
		t.Errorf("MaxPairwiseRelErr = %g, want 1", got)
	}
	if MaxPairwiseRelErr(a, a) != 0 {
		t.Error("identical sets should have zero error")
	}
}
