package nbody

import "specomp/internal/core"

// WithCorrection wraps App with the paper's incremental *correction
// function* (§3.1: "calls a correction function to correct its computation,
// or in some cases, recomputes"). Instead of recomputing the whole local
// partition when a message fails its check, only the pairs whose eq.-11
// ratio exceeded θ have their force contributions replaced: the speculated
// pair force is subtracted and the actual one added, then the symplectic-
// Euler update is patched in place (Δv = Δa·Δt, Δr = Δa·Δt²).
//
// Accepted pairs keep their (bounded) speculated forces — exactly the
// paper's semantics, and exactly what RepairOps(2·PairOps per bad pair)
// charges. With θ = 0 every pair is corrected and the result equals a full
// recomputation.
type WithCorrection struct{ *App }

var _ core.Corrector = WithCorrection{}

// Correct implements core.Corrector.
func (w WithCorrection) Correct(computed, local []float64, peer int, pred, act []float64, t int) []float64 {
	loc := Decode(local)
	predP := Decode(pred)
	actP := Decode(act)
	out := Decode(computed)
	dt := w.sim.Dt
	for j := range loc {
		var da Vec3
		for i := range actP {
			specErr := predP[i].Pos.Sub(actP[i].Pos).Norm()
			dist := actP[i].Pos.Sub(loc[j].Pos).Norm()
			if dist != 0 && specErr/dist <= w.Theta {
				continue // accepted pair: its speculated force stands
			}
			da = da.Add(w.sim.PairAccel(loc[j].Pos, actP[i].Pos, actP[i].Mass))
			da = da.Sub(w.sim.PairAccel(loc[j].Pos, predP[i].Pos, predP[i].Mass))
		}
		out[j].Vel = out[j].Vel.Add(da.Scale(dt))
		out[j].Pos = out[j].Pos.Add(da.Scale(dt * dt))
	}
	return Encode(out)
}
