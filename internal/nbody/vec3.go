// Package nbody implements the paper's §5 case study: a direct-summation
// O(N²) gravitational N-body simulation, together with the speculation
// adapter (eqs. 10–11) that runs it on the speculative synchronous iterative
// engine in internal/core.
package nbody

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }
