package nbody

import (
	"math"
	"math/rand"
)

// UniformSphere generates n particles of equal mass distributed uniformly in
// a unit sphere with small isotropic random velocities — the generic "cloud"
// initial condition.
func UniformSphere(n int, seed int64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Particle, n)
	for i := range ps {
		ps[i] = Particle{
			Mass: 1.0 / float64(n),
			Pos:  randInSphere(rng, 1.0),
			Vel:  randInSphere(rng, 0.1),
		}
	}
	return ps
}

// RotatingDisk generates n particles on a thin disk in the xy-plane with
// near-circular velocities around a central massive body (particle 0). Disk
// systems have smoothly varying particle trajectories, the regime where the
// paper's velocity speculation excels.
func RotatingDisk(n int, seed int64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Particle, n)
	const central = 1.0
	ps[0] = Particle{Mass: central}
	for i := 1; i < n; i++ {
		r := 0.3 + 0.7*math.Sqrt(rng.Float64())
		phi := 2 * math.Pi * rng.Float64()
		pos := Vec3{r * math.Cos(phi), r * math.Sin(phi), 0.02 * (rng.Float64() - 0.5)}
		// Circular orbital speed around the central mass (G=1).
		v := math.Sqrt(central / r)
		vel := Vec3{-v * math.Sin(phi), v * math.Cos(phi), 0}
		ps[i] = Particle{Mass: 0.1 / float64(n), Pos: pos, Vel: vel}
	}
	return ps
}

// TwoClusters generates two uniform-sphere clusters approaching each other —
// an encounter scenario with a mix of slow far-field and fast near-field
// dynamics that stresses the error-checking machinery.
func TwoClusters(n int, seed int64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Particle, n)
	half := n / 2
	for i := range ps {
		center := Vec3{-1.5, 0, 0}
		drift := Vec3{0.3, 0.05, 0}
		if i >= half {
			center = Vec3{1.5, 0, 0}
			drift = Vec3{-0.3, -0.05, 0}
		}
		ps[i] = Particle{
			Mass: 1.0 / float64(n),
			Pos:  center.Add(randInSphere(rng, 0.5)),
			Vel:  drift.Add(randInSphere(rng, 0.05)),
		}
	}
	return ps
}

// randInSphere draws a point uniformly from a ball of the given radius.
func randInSphere(rng *rand.Rand, radius float64) Vec3 {
	for {
		v := Vec3{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}
		if v.Norm2() <= 1 {
			return v.Scale(radius)
		}
	}
}
