package nbody

import (
	"math"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
)

func TestSecondOrderSpeculationEq(t *testing.T) {
	sim := Sim{G: 1, Soft: 0.05, Dt: 0.5}
	app := NewApp(sim, nil, 10, 0, 0.01, nil)
	app.SpecOrder = 2
	// Velocity changed from (0,0,0) to (1,0,0) over one step: a = 2 /s².
	older := []Particle{{Mass: 1, Pos: Vec3{0, 0, 0}, Vel: Vec3{0, 0, 0}}}
	newer := []Particle{{Mass: 1, Pos: Vec3{1, 0, 0}, Vel: Vec3{1, 0, 0}}}
	pred, ops := app.Speculate(1, [][]float64{Encode(newer), Encode(older)}, 1)
	got := Decode(pred)[0]
	// r* = 1 + 1·0.5 + 0.5·2·0.25 = 1.75; v* = 1 + 2·0.5 = 2.
	if math.Abs(got.Pos.X-1.75) > 1e-12 {
		t.Errorf("pos = %v, want 1.75", got.Pos.X)
	}
	if math.Abs(got.Vel.X-2) > 1e-12 {
		t.Errorf("vel = %v, want 2", got.Vel.X)
	}
	if ops != 2*SpecOpsPerParticle {
		t.Errorf("ops = %g, want %d", ops, 2*SpecOpsPerParticle)
	}
}

func TestSecondOrderFallsBackWithShortHistory(t *testing.T) {
	sim := Sim{G: 1, Soft: 0.05, Dt: 0.5}
	app := NewApp(sim, nil, 10, 0, 0.01, nil)
	app.SpecOrder = 2
	ps := []Particle{{Mass: 1, Pos: Vec3{1, 0, 0}, Vel: Vec3{1, 0, 0}}}
	pred, ops := app.Speculate(1, [][]float64{Encode(ps)}, 1)
	got := Decode(pred)[0]
	if math.Abs(got.Pos.X-1.5) > 1e-12 { // first-order fallback
		t.Errorf("pos = %v, want 1.5", got.Pos.X)
	}
	if ops != SpecOpsPerParticle {
		t.Errorf("fallback ops = %g", ops)
	}
}

func TestSecondOrderMoreAccurateOnSmoothOrbit(t *testing.T) {
	// A particle on a circular orbit: constant-velocity extrapolation
	// overshoots tangentially; adding the acceleration term should predict
	// the curved path better.
	sim := Sim{G: 1, Soft: 0.001, Dt: 0.05}
	app1 := NewApp(sim, nil, 2, 0, 0.01, nil)
	app2 := NewApp(sim, nil, 2, 0, 0.01, nil)
	app2.SpecOrder = 2

	// Generate the true trajectory around a unit central mass at origin.
	traj := []Particle{{Mass: 1e-6, Pos: Vec3{1, 0, 0}, Vel: Vec3{0, 1, 0}}}
	central := []Particle{{Mass: 1, Pos: Vec3{}}}
	var snaps [][]float64
	cur := traj
	for i := 0; i < 3; i++ {
		snaps = append([][]float64{Encode(cur)}, snaps...) // newest first
		cur = sim.Step(cur, sim.AccelOn(cur, central))
	}
	truth := Decode(Encode(cur))[0]

	p1, _ := app1.Speculate(0, snaps, 1)
	p2, _ := app2.Speculate(0, snaps, 1)
	e1 := Decode(p1)[0].Pos.Sub(truth.Pos).Norm()
	e2 := Decode(p2)[0].Pos.Sub(truth.Pos).Norm()
	if e2 >= e1 {
		t.Errorf("second order (%.3e) not better than first order (%.3e)", e2, e1)
	}
}

func TestAdaptiveThetaTracksTarget(t *testing.T) {
	const n, iters = 48, 60
	ps := TwoClusters(n, 29)
	instrFixed := &Instrument{}
	instrAdapt := &Instrument{}
	var lastTheta float64
	run := func(adapt *AdaptiveTheta, instr *Instrument) float64 {
		caps := []float64{1e6, 1e6, 1e6, 1e6}
		counts := []int{12, 12, 12, 12}
		blocks := SplitParticles(ps, counts)
		_ = caps
		sim := DefaultSim()
		sim.Dt = 0.05 // coarse enough that speculation errs sometimes
		var apps []*App
		_, err := core.RunCluster(
			cluster.Config{Machines: cluster.UniformMachines(4, 1e6), Net: netmodel.Fixed{D: 0.05}},
			core.Config{FW: 1, MaxIter: iters},
			func(p *cluster.Proc) core.App {
				app := NewApp(sim, blocks[p.ID()], n, p.ID(), 1e-4, instr)
				app.Adapt = adapt
				apps = append(apps, app)
				return app
			})
		if err != nil {
			t.Fatal(err)
		}
		lastTheta = apps[0].Theta
		return lastTheta
	}
	run(nil, instrFixed)
	finalTheta := run(&AdaptiveTheta{TargetBadFrac: 0.02, Gain: 0.2, MinTheta: 1e-6, MaxTheta: 1}, instrAdapt)
	fixedFrac := float64(instrFixed.PairsBad) / float64(instrFixed.PairsTotal)
	adaptFrac := float64(instrAdapt.PairsBad) / float64(instrAdapt.PairsTotal)
	// The fixed tight θ=1e-4 fails far more often than 2%; the controller
	// should loosen θ and pull the rate down toward its target (the early
	// transient keeps the aggregate above the 2% asymptote).
	if fixedFrac < 0.05 {
		t.Skipf("fixed θ only failed %.1f%% — scenario too easy to exercise the controller", fixedFrac*100)
	}
	if adaptFrac >= fixedFrac*0.8 {
		t.Errorf("adaptive rate %.3f not clearly below fixed rate %.3f", adaptFrac, fixedFrac)
	}
	if finalTheta <= 1e-4 {
		t.Errorf("controller never loosened θ: %g", finalTheta)
	}
}
