package nbody

import "math"

// The paper's case study deliberately uses the O(N²) direct sum (its
// footnote 1 notes an O(N log N) method exists and cites the authors' own
// distributed implementation). This file supplies that variant: a
// Barnes-Hut octree with the standard opening-angle criterion, usable both
// standalone and as the force kernel of the engine App (App.MAC).

// bhNode is one octree cell.
type bhNode struct {
	center Vec3    // geometric center of the cell
	half   float64 // half-width of the cell
	mass   float64
	com    Vec3 // center of mass (valid after finalize)
	// leaf particle (valid when count == 1 and children are nil)
	p        Particle
	count    int
	children *[8]*bhNode
}

// Octree is a Barnes-Hut tree over a particle set.
type Octree struct {
	root *bhNode
	n    int
}

// BuildOctree constructs the tree. It panics on an empty set.
func BuildOctree(ps []Particle) *Octree {
	if len(ps) == 0 {
		panic("nbody: BuildOctree on empty set")
	}
	lo := ps[0].Pos
	hi := ps[0].Pos
	for _, p := range ps[1:] {
		lo = Vec3{math.Min(lo.X, p.Pos.X), math.Min(lo.Y, p.Pos.Y), math.Min(lo.Z, p.Pos.Z)}
		hi = Vec3{math.Max(hi.X, p.Pos.X), math.Max(hi.Y, p.Pos.Y), math.Max(hi.Z, p.Pos.Z)}
	}
	center := lo.Add(hi).Scale(0.5)
	half := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))/2 + 1e-12
	root := &bhNode{center: center, half: half}
	t := &Octree{root: root, n: len(ps)}
	for _, p := range ps {
		root.insert(p, 0)
	}
	root.finalize()
	return t
}

// maxDepth bounds subdivision for coincident particles.
const maxDepth = 64

func (n *bhNode) insert(p Particle, depth int) {
	if n.count == 0 {
		n.p = p
		n.count = 1
		return
	}
	if n.children == nil {
		if depth >= maxDepth {
			// Coincident particles: merge mass at this leaf.
			n.p.Mass += p.Mass
			n.count++
			return
		}
		// Split: push the resident leaf particle down.
		n.children = new([8]*bhNode)
		old := n.p
		n.p = Particle{}
		n.count = 0
		n.childFor(old.Pos, depth).insert(old, depth+1)
		n.count = 1
	}
	n.childFor(p.Pos, depth).insert(p, depth+1)
	n.count++
}

// childFor returns (creating if needed) the octant child containing pos.
func (n *bhNode) childFor(pos Vec3, depth int) *bhNode {
	idx := 0
	off := Vec3{-1, -1, -1}
	if pos.X >= n.center.X {
		idx |= 1
		off.X = 1
	}
	if pos.Y >= n.center.Y {
		idx |= 2
		off.Y = 1
	}
	if pos.Z >= n.center.Z {
		idx |= 4
		off.Z = 1
	}
	if n.children[idx] == nil {
		h := n.half / 2
		n.children[idx] = &bhNode{
			center: n.center.Add(off.Scale(h)),
			half:   h,
		}
	}
	return n.children[idx]
}

// finalize computes mass and center of mass bottom-up.
func (n *bhNode) finalize() {
	if n.children == nil {
		n.mass = n.p.Mass
		n.com = n.p.Pos
		return
	}
	var m float64
	var weighted Vec3
	for _, c := range n.children {
		if c == nil || c.count == 0 {
			continue
		}
		c.finalize()
		m += c.mass
		weighted = weighted.Add(c.com.Scale(c.mass))
	}
	n.mass = m
	if m > 0 {
		n.com = weighted.Scale(1 / m)
	}
}

// Mass returns the tree's total mass.
func (t *Octree) Mass() float64 { return t.root.mass }

// COM returns the tree's center of mass.
func (t *Octree) COM() Vec3 { return t.root.com }

// Accel returns the gravitational acceleration at pos using the opening
// angle criterion: a cell of width w at distance d is treated as a point
// mass when w/d < mac. It also returns the number of interactions
// evaluated (for cost accounting). mac = 0 degenerates to the exact direct
// sum over leaves.
func (t *Octree) Accel(s Sim, pos Vec3, mac float64) (Vec3, int) {
	var acc Vec3
	count := 0
	var walk func(n *bhNode)
	walk = func(n *bhNode) {
		if n == nil || n.count == 0 || n.mass == 0 {
			return
		}
		d := n.com.Sub(pos)
		dist2 := d.Norm2()
		if n.children == nil {
			if dist2 == 0 {
				return // self
			}
			r2 := dist2 + s.Soft*s.Soft
			acc = acc.Add(d.Scale(s.G * n.mass / (r2 * math.Sqrt(r2))))
			count++
			return
		}
		width := 2 * n.half
		if dist2 > 0 && width*width < mac*mac*dist2 {
			r2 := dist2 + s.Soft*s.Soft
			acc = acc.Add(d.Scale(s.G * n.mass / (r2 * math.Sqrt(r2))))
			count++
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return acc, count
}

// AccelOnTree computes accelerations on every particle of `on` from the
// tree, returning the accelerations and the total interaction count.
func (s Sim) AccelOnTree(on []Particle, t *Octree, mac float64) ([]Vec3, int) {
	acc := make([]Vec3, len(on))
	total := 0
	for i := range on {
		a, c := t.Accel(s, on[i].Pos, mac)
		acc[i] = a
		total += c
	}
	return acc, total
}

// BHOpsEstimate estimates the per-particle interaction count of a Barnes-Hut
// traversal over n particles at the given opening angle — the ComputeOps
// analogue of the direct sum's n interactions. The classical estimate is
// O(log n / mac²); the constant is calibrated to the implementation.
func BHOpsEstimate(n int, mac float64) float64 {
	if n < 2 {
		return 1
	}
	if mac <= 0 {
		return float64(n)
	}
	est := 6 * math.Log2(float64(n)) / (mac * mac)
	if est > float64(n) {
		est = float64(n)
	}
	return est
}
