package nbody

import (
	"math"

	"specomp/internal/core"
)

// Instrument collects off-the-clock diagnostics while an App runs — the
// measurements behind Table 3. It is shared by all processors of one
// simulation; the DES schedules at most one simulated process at a time, so
// no locking is needed.
type Instrument struct {
	// MaxForceErr is the largest relative error between the pair force
	// computed from a speculated position and from the actual position,
	// over pairs whose eq.-11 check ACCEPTED the speculation (failed pairs
	// are repaired, so their error does not survive). This matches the
	// paper's per-pair correction semantics.
	MaxForceErr float64
	// ChecksAccepted and ChecksFailed count message-level validations.
	ChecksAccepted, ChecksFailed int
	// PairsBad and PairsTotal count eq.-11 pair tests.
	PairsBad, PairsTotal int64
}

// App adapts the N-body simulation to the speculative engine: one instance
// runs on each simulated processor, owning a contiguous block of particles.
type App struct {
	sim    Sim
	pid    int
	nTotal int
	init   []Particle
	// Theta is the eq.-11 error threshold θ.
	Theta float64
	// SpecOrder selects the speculation function: 1 (default) is the
	// paper's eq. 10 (constant velocity); 2 adds the acceleration estimated
	// from the last two snapshots — the higher-order-derivative extension
	// the paper leaves as future work.
	SpecOrder int
	// MAC, when positive, switches the force kernel from the O(N²) direct
	// sum to the Barnes-Hut O(N log N) tree with this opening angle (the
	// paper's footnote-1 variant).
	MAC float64
	// Adapt, if non-nil, tunes Theta at run time toward a target
	// recomputation rate.
	Adapt *AdaptiveTheta
	// Instr, if non-nil, records accuracy diagnostics (not charged to the
	// simulated clock).
	Instr *Instrument
}

// AdaptiveTheta adjusts θ multiplicatively after every check so that the
// fraction of out-of-tolerance pairs tracks TargetBadFrac — automating the
// accuracy/recomputation trade-off of Table 3.
type AdaptiveTheta struct {
	// TargetBadFrac is the desired fraction of bad pairs per check (the
	// model's k; the paper found ~2% a good operating point).
	TargetBadFrac float64
	// Gain is the multiplicative step per check (e.g. 0.05 → ±5%).
	Gain float64
	// MinTheta and MaxTheta clamp the excursion.
	MinTheta, MaxTheta float64
}

// adjust nudges theta toward the target bad fraction.
func (ad *AdaptiveTheta) adjust(theta float64, bad, total int) float64 {
	if total == 0 || ad.Gain <= 0 {
		return theta
	}
	if float64(bad)/float64(total) > ad.TargetBadFrac {
		theta *= 1 + ad.Gain // too many repairs: loosen
	} else {
		theta *= 1 - ad.Gain // headroom: tighten for accuracy
	}
	if ad.MinTheta > 0 && theta < ad.MinTheta {
		theta = ad.MinTheta
	}
	if ad.MaxTheta > 0 && theta > ad.MaxTheta {
		theta = ad.MaxTheta
	}
	return theta
}

// NewApp creates the processor-pid adapter. local is the block of particles
// this processor owns; nTotal is the global particle count.
func NewApp(sim Sim, local []Particle, nTotal, pid int, theta float64, instr *Instrument) *App {
	return &App{sim: sim, pid: pid, nTotal: nTotal, init: local, Theta: theta, Instr: instr}
}

var _ core.App = (*App)(nil)
var _ core.Speculator = (*App)(nil)

// InitLocal implements core.App.
func (a *App) InitLocal() []float64 { return Encode(a.init) }

// Compute implements core.App: decode the global view, accumulate forces on
// the local block (direct sum, or Barnes-Hut when MAC > 0), and advance it
// one timestep.
func (a *App) Compute(view [][]float64, t int) []float64 {
	local := Decode(view[a.pid])
	if a.MAC > 0 {
		var all []Particle
		for _, part := range view {
			if len(part) > 0 {
				all = append(all, Decode(part)...)
			}
		}
		tree := BuildOctree(all)
		acc, _ := a.sim.AccelOnTree(local, tree, a.MAC)
		return Encode(a.sim.Step(local, acc))
	}
	sources := make([][]Particle, 0, len(view))
	for _, part := range view {
		if len(part) == 0 {
			continue
		}
		sources = append(sources, Decode(part))
	}
	acc := a.sim.AccelOn(local, sources...)
	return Encode(a.sim.Step(local, acc))
}

// ComputeOps implements core.App: N_i·N pairwise force evaluations for the
// direct sum; N_i·O(log N/θ²) plus the tree build for Barnes-Hut.
func (a *App) ComputeOps() float64 {
	if a.MAC > 0 {
		interactions := float64(len(a.init)) * BHOpsEstimate(a.nTotal, a.MAC)
		build := 10 * float64(a.nTotal) * math.Log2(float64(a.nTotal)+2)
		return interactions*PairOps + build
	}
	return float64(len(a.init)) * float64(a.nTotal) * PairOps
}

// Speculate implements core.Speculator with the paper's eq. 10: positions
// extrapolate along the last known velocity, r*(t) = r(t−s) + v(t−s)·s·Δt,
// velocities are held constant. With SpecOrder >= 2 and at least two
// snapshots of history, the acceleration estimated from consecutive
// velocities is added: r* += ½·a·(s·Δt)², v* += a·s·Δt.
func (a *App) Speculate(peer int, hist [][]float64, steps int) ([]float64, float64) {
	ps := Decode(hist[0])
	out := make([]Particle, len(ps))
	dt := a.sim.Dt * float64(steps)
	var prev []Particle
	secondOrder := a.SpecOrder >= 2 && len(hist) >= 2
	if secondOrder {
		prev = Decode(hist[1])
		if len(prev) != len(ps) {
			secondOrder = false
		}
	}
	for i, p := range ps {
		pos := p.Pos.Add(p.Vel.Scale(dt))
		vel := p.Vel
		if secondOrder {
			acc := p.Vel.Sub(prev[i].Vel).Scale(1 / a.sim.Dt)
			pos = pos.Add(acc.Scale(0.5 * dt * dt))
			vel = vel.Add(acc.Scale(dt))
		}
		out[i] = Particle{Mass: p.Mass, Pos: pos, Vel: vel}
	}
	ops := float64(SpecOpsPerParticle * len(ps))
	if secondOrder {
		ops *= 2 // roughly double the flops per particle
	}
	return Encode(out), ops
}

// Check implements core.App with the paper's eq. 11: for each remote
// particle a and local particle b, the speculation is acceptable when
// ‖r*_a − r_a‖ / ‖r_a − r_b‖ ≤ θ.
func (a *App) Check(peer int, predicted, actual, local []float64, t int) core.CheckResult {
	pred := Decode(predicted)
	act := Decode(actual)
	loc := Decode(local)
	bad := 0
	for i := range act {
		specErr := pred[i].Pos.Sub(act[i].Pos).Norm()
		for j := range loc {
			// eq. 11: the ratio diverges as pairs get close — exactly where
			// a position error corrupts the force most, so close pairs are
			// (correctly) the first to fail the check.
			dist := act[i].Pos.Sub(loc[j].Pos).Norm()
			if dist == 0 || specErr/dist > a.Theta {
				bad++
				continue
			}
			if a.Instr != nil {
				// Accepted pair: its force error survives in the result.
				fs := a.sim.PairAccel(loc[j].Pos, pred[i].Pos, pred[i].Mass)
				fa := a.sim.PairAccel(loc[j].Pos, act[i].Pos, act[i].Mass)
				if den := fa.Norm(); den > 0 {
					if rel := fs.Sub(fa).Norm() / den; rel > a.Instr.MaxForceErr {
						a.Instr.MaxForceErr = rel
					}
				}
			}
		}
	}
	total := len(act) * len(loc)
	res := core.CheckResult{
		Bad:   bad,
		Total: total,
		Ops:   float64(CheckOpsPerRemote*len(act)) + float64(CheckOpsPerPair*total),
	}
	if a.Instr != nil {
		a.Instr.PairsBad += int64(res.Bad)
		a.Instr.PairsTotal += int64(res.Total)
		if res.Bad > 0 {
			a.Instr.ChecksFailed++
		} else {
			a.Instr.ChecksAccepted++
		}
	}
	if a.Adapt != nil {
		a.Theta = a.Adapt.adjust(a.Theta, res.Bad, res.Total)
	}
	return res
}

// RepairOps implements core.App: each out-of-tolerance pair costs two pair
// force evaluations (subtract the speculated contribution, add the actual).
func (a *App) RepairOps(r core.CheckResult) float64 {
	return float64(2 * PairOps * r.Bad)
}

// SplitParticles cuts a particle set into consecutive blocks of the given
// sizes (e.g. from partition.Proportional). It panics if the sizes do not
// sum to len(ps).
func SplitParticles(ps []Particle, counts []int) [][]Particle {
	out := make([][]Particle, len(counts))
	lo := 0
	for i, c := range counts {
		out[i] = ps[lo : lo+c]
		lo += c
	}
	if lo != len(ps) {
		panic("nbody: partition sizes do not sum to particle count")
	}
	return out
}

// MaxPairwiseRelErr returns the maximum relative position error between two
// particle sets, a convenience for comparing speculative and reference runs.
func MaxPairwiseRelErr(a, b []Particle) float64 {
	worst := 0.0
	for i := range a {
		if i >= len(b) {
			break
		}
		d := a[i].Pos.Sub(b[i].Pos).Norm()
		scale := b[i].Pos.Norm()
		if scale < 1e-12 {
			scale = 1e-12
		}
		if r := d / scale; r > worst {
			worst = r
		}
	}
	if math.IsNaN(worst) {
		return math.Inf(1)
	}
	return worst
}
