package nbody

// Step advances particles one timestep with symplectic (semi-implicit)
// Euler: v(t+1) = v(t) + a(t)·Δt, then r(t+1) = r(t) + v(t+1)·Δt. acc must
// hold the acceleration on each particle at time t. The input slice is not
// modified; the advanced particles are returned.
func (s Sim) Step(ps []Particle, acc []Vec3) []Particle {
	out := make([]Particle, len(ps))
	for i, p := range ps {
		v := p.Vel.Add(acc[i].Scale(s.Dt))
		out[i] = Particle{
			Mass: p.Mass,
			Vel:  v,
			Pos:  p.Pos.Add(v.Scale(s.Dt)),
		}
	}
	return out
}

// StepAll advances a whole particle set one timestep using exact
// all-pairs forces — the serial reference implementation.
func (s Sim) StepAll(ps []Particle) []Particle {
	return s.Step(ps, s.AccelOn(ps, ps))
}

// Evolve runs the serial reference simulation for iters timesteps.
func (s Sim) Evolve(ps []Particle, iters int) []Particle {
	cur := ps
	for t := 0; t < iters; t++ {
		cur = s.StepAll(cur)
	}
	return cur
}

// StepKDK advances the whole particle set one timestep with the
// kick-drift-kick leapfrog, the standard second-order symplectic scheme for
// collisionless N-body work. It needs two force evaluations per step but
// halves neither accuracy nor stability the way first-order schemes do;
// provided as the higher-accuracy serial reference.
func (s Sim) StepKDK(ps []Particle) []Particle {
	half := s.Dt / 2
	acc := s.AccelOn(ps, ps)
	mid := make([]Particle, len(ps))
	for i, p := range ps {
		v := p.Vel.Add(acc[i].Scale(half))
		mid[i] = Particle{Mass: p.Mass, Vel: v, Pos: p.Pos.Add(v.Scale(s.Dt))}
	}
	acc2 := s.AccelOn(mid, mid)
	out := make([]Particle, len(ps))
	for i, p := range mid {
		out[i] = Particle{Mass: p.Mass, Pos: p.Pos, Vel: p.Vel.Add(acc2[i].Scale(half))}
	}
	return out
}

// EvolveKDK runs the kick-drift-kick reference for iters timesteps.
func (s Sim) EvolveKDK(ps []Particle, iters int) []Particle {
	cur := ps
	for t := 0; t < iters; t++ {
		cur = s.StepKDK(cur)
	}
	return cur
}
