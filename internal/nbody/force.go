package nbody

import "math"

// Sim holds the physical constants of a simulation.
type Sim struct {
	// G is the gravitational constant (model units; 1 by default).
	G float64
	// Soft is the Plummer softening length added to pair distances to bound
	// close-encounter forces (the classical ε in (r²+ε²)^{3/2}).
	Soft float64
	// Dt is the timestep Δt.
	Dt float64
}

// DefaultSim returns constants suitable for the unit-scale initial
// conditions in this package.
func DefaultSim() Sim { return Sim{G: 1, Soft: 0.05, Dt: 1e-3} }

// PairOps is the approximate floating-point cost of one pairwise force
// evaluation; the paper reports "about 70 floating point operations".
const PairOps = 70

// SpecOpsPerParticle is the cost of speculating one particle's position
// (eq. 10); the paper reports 12 flops.
const SpecOpsPerParticle = 12

// CheckOpsPerPair is the cost of evaluating eq. 11 for one (remote, local)
// particle pair; derived from the paper's "error checking involves 24
// operations" split into a per-remote part and a per-pair part.
const CheckOpsPerPair = 12

// CheckOpsPerRemote is the one-off cost per remote particle of computing the
// speculation error ‖r*−r‖ used by eq. 11.
const CheckOpsPerRemote = 10

// PairAccel returns the acceleration exerted on a body at position pos by a
// body of mass m at position src, using Plummer softening.
func (s Sim) PairAccel(pos, src Vec3, m float64) Vec3 {
	d := src.Sub(pos)
	r2 := d.Norm2() + s.Soft*s.Soft
	inv := 1.0 / (r2 * math.Sqrt(r2))
	return d.Scale(s.G * m * inv)
}

// AccelOn computes the total gravitational acceleration on each particle of
// `on` due to every particle in each source set. A source particle at the
// same position as the target (self-interaction when the local set appears
// among the sources) contributes nothing beyond softening, but the classical
// formulation excludes exact self-pairs; we skip pairs at zero distance.
func (s Sim) AccelOn(on []Particle, sources ...[]Particle) []Vec3 {
	acc := make([]Vec3, len(on))
	for i := range on {
		var a Vec3
		pi := on[i].Pos
		for _, set := range sources {
			for j := range set {
				d := set[j].Pos.Sub(pi)
				r2 := d.Norm2()
				if r2 == 0 {
					continue // self or exactly coincident: skip
				}
				r2 += s.Soft * s.Soft
				inv := 1.0 / (r2 * math.Sqrt(r2))
				a = a.Add(d.Scale(s.G * set[j].Mass * inv))
			}
		}
		acc[i] = a
	}
	return acc
}
