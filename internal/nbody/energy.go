package nbody

import "math"

// Kinetic returns the total kinetic energy ½Σ m·v².
func Kinetic(ps []Particle) float64 {
	var e float64
	for _, p := range ps {
		e += 0.5 * p.Mass * p.Vel.Norm2()
	}
	return e
}

// Potential returns the total (softened) gravitational potential energy
// −G·Σ_{i<j} m_i·m_j / sqrt(r² + ε²).
func (s Sim) Potential(ps []Particle) float64 {
	var e float64
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			r2 := ps[j].Pos.Sub(ps[i].Pos).Norm2() + s.Soft*s.Soft
			e -= s.G * ps[i].Mass * ps[j].Mass / math.Sqrt(r2)
		}
	}
	return e
}

// Energy returns the total energy (kinetic + potential), the standard
// long-horizon accuracy diagnostic for an N-body integrator.
func (s Sim) Energy(ps []Particle) float64 {
	return Kinetic(ps) + s.Potential(ps)
}

// Momentum returns the total linear momentum Σ m·v, conserved exactly by
// pairwise-symmetric forces.
func Momentum(ps []Particle) Vec3 {
	var m Vec3
	for _, p := range ps {
		m = m.Add(p.Vel.Scale(p.Mass))
	}
	return m
}
