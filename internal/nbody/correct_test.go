package nbody

import (
	"math/rand"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

func runCorrectVsRecompute(t *testing.T, theta float64, useCorrection bool) []Particle {
	t.Helper()
	const n, iters = 48, 20
	ps := TwoClusters(n, 37)
	machines := cluster.UniformMachines(4, 1e6)
	caps := make([]float64, 4)
	for i, m := range machines {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(n, caps)
	blocks := SplitParticles(ps, counts)
	sim := DefaultSim()
	sim.Dt = 0.05 // coarse enough to produce failed checks
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.05}},
		core.Config{FW: 1, MaxIter: iters},
		func(p *cluster.Proc) core.App {
			app := NewApp(sim, blocks[p.ID()], n, p.ID(), theta, nil)
			if useCorrection {
				return WithCorrection{app}
			}
			return app
		})
	if err != nil {
		t.Fatal(err)
	}
	var final []Particle
	for _, r := range results {
		final = append(final, Decode(r.Final)...)
	}
	return final
}

func TestCorrectionEqualsRecomputeAtZeroTheta(t *testing.T) {
	// θ=0 fails every pair, so the correction replaces every speculated
	// pair force — bit-for-bit... up to float association; allow 1e-9.
	corrected := runCorrectVsRecompute(t, 0, true)
	recomputed := runCorrectVsRecompute(t, 0, false)
	for i := range corrected {
		if d := corrected[i].Pos.Sub(recomputed[i].Pos).Norm(); d > 1e-9 {
			t.Fatalf("particle %d: correction diverged from recompute by %g", i, d)
		}
		if d := corrected[i].Vel.Sub(recomputed[i].Vel).Norm(); d > 1e-9 {
			t.Fatalf("particle %d: velocity diverged by %g", i, d)
		}
	}
}

func TestCorrectionStaysNearRecomputeAtModerateTheta(t *testing.T) {
	// At θ>0 the two repair strategies differ only in accepted-pair error,
	// which eq. 11 bounds; trajectories stay close.
	corrected := runCorrectVsRecompute(t, 0.01, true)
	recomputed := runCorrectVsRecompute(t, 0.01, false)
	if err := MaxPairwiseRelErr(corrected, recomputed); err > 0.02 {
		t.Errorf("correction drifted %.4f from recompute at θ=0.01", err)
	}
}

func TestEq11BoundsPairForceErrorProperty(t *testing.T) {
	// Numerical check of the paper's implicit claim: if the eq.-11 ratio
	// ‖Δr‖/dist is at most θ, the relative pair-force error is O(θ) —
	// concretely under ~3θ for small θ (2θ to first order, plus curvature).
	s := Sim{G: 1, Soft: 0, Dt: 0.01}
	rng := rand.New(rand.NewSource(11))
	for _, theta := range []float64{0.001, 0.01, 0.05} {
		worst := 0.0
		for trial := 0; trial < 300; trial++ {
			// Random pair at distance >= ~1, displacement exactly θ·dist.
			a := randInSphere(rng, 1).Add(Vec3{2, 0, 0})
			b := randInSphere(rng, 1)
			dist := a.Sub(b).Norm()
			dir := randInSphere(rng, 1)
			if dir.Norm() == 0 {
				continue
			}
			pred := a.Add(dir.Scale(theta * dist / dir.Norm()))
			fAct := s.PairAccel(b, a, 1)
			fSpec := s.PairAccel(b, pred, 1)
			rel := fSpec.Sub(fAct).Norm() / fAct.Norm()
			if rel > worst {
				worst = rel
			}
		}
		if worst > 3*theta {
			t.Errorf("θ=%g: worst pair force error %.4f exceeds 3θ", theta, worst)
		}
		if worst < theta/2 {
			t.Errorf("θ=%g: worst pair force error %.5f implausibly small", theta, worst)
		}
	}
}
