package nbody

import (
	"math"
	"testing"

	"specomp/internal/cluster"
	"specomp/internal/core"
	"specomp/internal/netmodel"
	"specomp/internal/partition"
)

// runDistributed runs an N-body simulation on a simulated cluster and
// returns the per-processor results plus the gathered final particle set.
func runDistributed(t *testing.T, ps []Particle, machines []cluster.Machine,
	cfg core.Config, theta float64, instr *Instrument) ([]core.Result, []Particle) {
	t.Helper()
	caps := make([]float64, len(machines))
	for i, m := range machines {
		caps[i] = m.Ops
	}
	counts := partition.Proportional(len(ps), caps)
	blocks := SplitParticles(ps, counts)
	sim := DefaultSim()
	results, err := core.RunCluster(
		cluster.Config{Machines: machines, Net: netmodel.Fixed{D: 0.05}},
		cfg,
		func(p *cluster.Proc) core.App {
			return NewApp(sim, blocks[p.ID()], len(ps), p.ID(), theta, instr)
		})
	if err != nil {
		t.Fatal(err)
	}
	var final []Particle
	for _, r := range results {
		final = append(final, Decode(r.Final)...)
	}
	return results, final
}

func TestDistributedBlockingMatchesSerial(t *testing.T) {
	const n, iters = 48, 12
	ps := UniformSphere(n, 11)
	want := DefaultSim().Evolve(ps, iters)
	_, got := runDistributed(t, ps,
		cluster.LinearMachines(4, 1e6, 4),
		core.Config{FW: 0, MaxIter: iters}, 0.01, nil)
	if len(got) != n {
		t.Fatalf("gathered %d particles", len(got))
	}
	for i := range want {
		if got[i].Pos.Sub(want[i].Pos).Norm() > 1e-9 {
			t.Errorf("particle %d: pos %v, want %v", i, got[i].Pos, want[i].Pos)
		}
	}
}

func TestDistributedSpeculativeStaysClose(t *testing.T) {
	const n, iters = 48, 30
	ps := RotatingDisk(n, 13)
	want := DefaultSim().Evolve(ps, iters)
	instr := &Instrument{}
	results, got := runDistributed(t, ps,
		cluster.LinearMachines(4, 1e6, 4),
		core.Config{FW: 1, MaxIter: iters}, 0.01, instr)
	agg := core.Aggregate(results)
	if agg.SpecsMade == 0 {
		t.Fatal("no speculation happened")
	}
	if err := MaxPairwiseRelErr(got, want); err > 0.05 {
		t.Errorf("speculative trajectory drifted %.3f%% from reference", err*100)
	}
	if instr.PairsTotal == 0 {
		t.Error("instrument saw no pair checks")
	}
}

func TestTighterThetaFailsMoreChecks(t *testing.T) {
	const n, iters = 48, 25
	ps := TwoClusters(n, 17)
	fracs := make([]float64, 0, 3)
	for _, theta := range []float64{0.1, 1e-3, 1e-5} {
		instr := &Instrument{}
		runDistributed(t, ps, cluster.UniformMachines(4, 1e6),
			core.Config{FW: 1, MaxIter: iters}, theta, instr)
		fracs = append(fracs, float64(instr.PairsBad)/float64(instr.PairsTotal))
	}
	for i := 1; i < len(fracs); i++ {
		if fracs[i] < fracs[i-1] {
			t.Errorf("bad-pair fraction not increasing as θ tightens: %v", fracs)
		}
	}
	if fracs[len(fracs)-1] == 0 {
		t.Error("θ=1e-5 flagged nothing; speculation unrealistically perfect")
	}
}

func TestForceErrorBoundedByTheta(t *testing.T) {
	// The accepted-speculation force error should scale with θ (the paper's
	// Table 3: θ=0.01 → ~2% max force error). We assert a generous bound:
	// accepted force error stays under ~25·θ for a well-behaved disk.
	const n, iters = 48, 25
	ps := RotatingDisk(n, 19)
	theta := 0.01
	instr := &Instrument{}
	runDistributed(t, ps, cluster.UniformMachines(4, 1e6),
		core.Config{FW: 1, MaxIter: iters}, theta, instr)
	if instr.ChecksAccepted == 0 {
		t.Fatal("no accepted checks")
	}
	if instr.MaxForceErr > 25*theta {
		t.Errorf("max force error %.4f too large for θ=%g", instr.MaxForceErr, theta)
	}
	if math.IsNaN(instr.MaxForceErr) {
		t.Error("NaN force error")
	}
}

func TestSpeculativeRunConservesEnergyAndMomentum(t *testing.T) {
	// Physics sanity under speculation: bounded speculation errors must not
	// wreck the integrator's conservation properties.
	const n, iters = 60, 40
	ps := RotatingDisk(n, 31)
	sim := DefaultSim()
	e0 := sim.Energy(ps)
	_, final := runDistributed(t, ps, cluster.UniformMachines(4, 1e6),
		core.Config{FW: 1, MaxIter: iters}, 0.01, nil)
	e1 := sim.Energy(final)
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 0.05 {
		t.Errorf("energy drifted %.2f%% under speculation", rel*100)
	}
	p1 := Momentum(final)
	p0 := Momentum(ps)
	// Speculated forces are not exactly pairwise-symmetric, so momentum is
	// conserved only approximately; the drift must stay small.
	if p1.Sub(p0).Norm() > 0.02 {
		t.Errorf("momentum drifted %v under speculation", p1.Sub(p0))
	}
}

func TestSpeculationImprovesNBodyRuntime(t *testing.T) {
	const n, iters = 64, 15
	ps := UniformSphere(n, 23)
	// Slow network relative to compute: 64 particles over 4 procs at 1e6
	// ops/s → compute/iter ≈ 16·64·70/1e6 ≈ 0.072 s; latency 0.05 s is a
	// substantial fraction, so masking should pay.
	mk := func(fw int) float64 {
		results, _ := runDistributed(t, ps, cluster.UniformMachines(4, 1e6),
			core.Config{FW: fw, MaxIter: iters}, 0.01, nil)
		return core.TotalTime(results)
	}
	t0, t1 := mk(0), mk(1)
	if t1 >= t0 {
		t.Errorf("speculation did not pay: FW1 %.4f vs FW0 %.4f", t1, t0)
	}
}
