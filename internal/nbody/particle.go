package nbody

// Particle is one body: mass, position and velocity. The paper's messages
// carry exactly this state ("the current position and velocity of all its
// particles"), which is also what the speculation function consumes.
type Particle struct {
	Mass float64
	Pos  Vec3
	Vel  Vec3
}

// Floats is the number of float64 values one particle encodes to.
const Floats = 7

// Encode flattens particles into a float64 slice (mass, pos, vel per
// particle), the wire format used on the simulated cluster.
func Encode(ps []Particle) []float64 {
	out := make([]float64, 0, len(ps)*Floats)
	for _, p := range ps {
		out = append(out, p.Mass,
			p.Pos.X, p.Pos.Y, p.Pos.Z,
			p.Vel.X, p.Vel.Y, p.Vel.Z)
	}
	return out
}

// Decode parses a flattened particle slice. It panics if the length is not
// a multiple of Floats.
func Decode(data []float64) []Particle {
	if len(data)%Floats != 0 {
		panic("nbody: malformed particle data")
	}
	ps := make([]Particle, len(data)/Floats)
	for i := range ps {
		d := data[i*Floats:]
		ps[i] = Particle{
			Mass: d[0],
			Pos:  Vec3{d[1], d[2], d[3]},
			Vel:  Vec3{d[4], d[5], d[6]},
		}
	}
	return ps
}
