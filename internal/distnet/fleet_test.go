package distnet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"specomp/internal/trace"
)

// TestFleetAggregation runs a real 4-node cluster (in-process goroutines,
// real TCP) with the fleet plane on and checks the whole path: nodes push
// registry snapshots over their control connections, the coordinator merges
// them, and one HTTP endpoint serves every rank's series with job/node
// labels — passing the same SelfCheck CI gates on.
func TestFleetAggregation(t *testing.T) {
	spec := RunSpec{
		App: "heat", Procs: 4, MaxIter: 40, FW: 2, Theta: 1e-3,
		Rows: 16, Cols: 8, Job: "fleettest", ObsPushMS: 25,
	}
	fleet := NewFleetObs("")
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute, Fleet: fleet, Logf: t.Logf})
	if err != nil {
		t.Fatalf("%v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		launchNodes(t, 4, func(int) NodeConfig { return NodeConfig{Coord: coord.Addr()} })
	}()
	reports, err := coord.Wait()
	<-done
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if len(reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(reports))
	}

	if got := fleet.Job(); got != "fleettest" {
		t.Errorf("fleet job = %q, want the spec's %q", got, "fleettest")
	}
	if err := fleet.SelfCheck(4); err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}

	// Every rank's final snapshot must include the wire-plane series, and the
	// fleet totals must see real traffic.
	tot, err := fleet.Totals()
	if err != nil {
		t.Fatalf("Totals: %v", err)
	}
	if tot[MetricFramesSent] == 0 {
		t.Errorf("fleet saw no %s across 4 nodes", MetricFramesSent)
	}
	if tot[MetricBatchOccupancy+"_count"] == 0 {
		t.Errorf("fleet saw no batch-occupancy observations")
	}
	if tot[MetricObsPushes] == 0 {
		t.Errorf("nodes report zero obs pushes")
	}

	// Scrape the endpoint the way Prometheus would.
	srv := httptest.NewServer(fleet.Handler())
	defer srv.Close()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("GET /metrics: status %d", res.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		MetricFleetNodes, MetricFleetPushes,
		`job="fleettest"`, `node="0"`, `node="3"`,
		MetricFlushes, MetricSendQueue,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("aggregated /metrics is missing %q", want)
		}
	}

	res, err = http.Get(srv.URL + "/fleet")
	if err != nil {
		t.Fatalf("GET /fleet: %v", err)
	}
	var st FleetStatus
	err = json.NewDecoder(res.Body).Decode(&st)
	res.Body.Close()
	if err != nil {
		t.Fatalf("/fleet JSON: %v", err)
	}
	if st.Job != "fleettest" || len(st.Nodes) != 4 {
		t.Fatalf("/fleet = job %q with %d nodes, want fleettest with 4", st.Job, len(st.Nodes))
	}
	for _, n := range st.Nodes {
		if n.Pushes == 0 || n.Series == 0 || n.Bytes == 0 {
			t.Errorf("rank %d status looks empty: %+v", n.Rank, n)
		}
	}
}

// TestFleetUpdateRejectsMalformed: a garbled snapshot must not evict the
// node's previous good one.
func TestFleetUpdateRejectsMalformed(t *testing.T) {
	fleet := NewFleetObs("j")
	good := []byte("# HELP m Probe.\n# TYPE m counter\nm 1\n")
	if err := fleet.Update(2, good); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
	if err := fleet.Update(2, []byte("m{broken 1\n")); err == nil {
		t.Fatalf("malformed snapshot accepted")
	}
	st := fleet.Status()
	if len(st.Nodes) != 1 || st.Nodes[0].Series != 1 || st.Nodes[0].Pushes != 1 {
		t.Fatalf("malformed push disturbed the stored state: %+v", st.Nodes)
	}
}

// TestFleetTraceAcrossProcesses runs a traced cluster and checks the
// headline behavior: the merged Chrome trace holds speculation flows whose
// steps come from at least two different nodes, time-aligned by the
// heartbeat clock estimates carried in the reports.
func TestFleetTraceAcrossProcesses(t *testing.T) {
	spec := RunSpec{
		App: "heat", Procs: 3, MaxIter: 30, FW: 2, Theta: 1e-3,
		Rows: 12, Cols: 8, Trace: true,
	}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatalf("%v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		launchNodes(t, 3, func(int) NodeConfig { return NodeConfig{Coord: coord.Addr()} })
	}()
	reports, err := coord.Wait()
	<-done
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	journals := FleetJournals(reports)
	if len(journals) != 3 {
		t.Fatalf("got %d journals, want 3 (Trace on ships every node's)", len(journals))
	}
	for _, j := range journals {
		if j.Start == 0 || len(j.Events) == 0 {
			t.Fatalf("rank %d journal empty or unstamped: start=%v events=%d", j.Rank, j.Start, len(j.Events))
		}
	}

	evs := trace.FleetChromeEvents(journals)
	flowPids := map[int]map[int]bool{} // flow id → pids touched
	for _, e := range evs {
		if e.Ph == "s" || e.Ph == "t" || e.Ph == "f" {
			if flowPids[e.ID] == nil {
				flowPids[e.ID] = map[int]bool{}
			}
			flowPids[e.ID][e.Pid] = true
		}
	}
	cross := 0
	for _, pids := range flowPids {
		if len(pids) >= 2 {
			cross++
		}
	}
	if cross == 0 {
		t.Fatalf("no speculation flow spans two processes (%d flows total)", len(flowPids))
	}
}

// TestFleetTraceOffUnburdened: without Trace the result carries no journal,
// so steady-state runs don't ship megabytes of events to the coordinator.
func TestFleetTraceOffUnburdened(t *testing.T) {
	spec := RunSpec{App: "heat", Procs: 2, MaxIter: 20, FW: 2, Theta: 1e-3, Rows: 8, Cols: 8}
	coord, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: time.Minute})
	if err != nil {
		t.Fatalf("%v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		launchNodes(t, 2, func(int) NodeConfig { return NodeConfig{Coord: coord.Addr()} })
	}()
	reports, err := coord.Wait()
	<-done
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for _, r := range reports {
		if len(r.Journal) != 0 {
			t.Errorf("rank %d shipped %d journal events with Trace off", r.Rank, len(r.Journal))
		}
	}
	if len(FleetJournals(reports)) != 0 {
		t.Errorf("FleetJournals invented journals from untraced reports")
	}
}
