package distnet

// End-to-end crash tolerance: real OS processes, real SIGKILLs, real
// sockets. These are the process-level proof of the PR 3 recovery
// protocol — a supervised node dies mid-run, respawns with a bumped
// epoch, reclaims its rank from the coordinator, restores from custody,
// and the fleet still converges on the fault-free answer.

import (
	"errors"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"specomp/internal/apps/heat"
	"specomp/internal/checkpoint"
)

// crashSpec is the shared shape of the crash runs: long enough that a kill
// lands mid-run, checkpointing often enough that custody is fresh, and a
// wall-clock deadline so survivors bridge the outage on speculation
// instead of blocking.
func crashSpec(procs int) RunSpec {
	return RunSpec{
		App: "heat", Procs: procs, MaxIter: 1500, FW: 2, Theta: 1e-3,
		Rows: 48, Cols: 32,
		CheckpointEvery: 5, Deadline: 0.25, MaxCrashOverrun: 8,
	}
}

// superviseHelper builds a Supervisor whose child is this test binary in
// node-helper mode, stamped with the incarnation epoch of each launch.
func superviseHelper(t *testing.T, coordAddr string) *Supervisor {
	t.Helper()
	sup, err := Supervise(SuperviseConfig{
		Start: func(epoch int) (*exec.Cmd, error) {
			cmd := exec.Command(os.Args[0], "-test.run=^TestHelperSpecnode$", "-test.v")
			cmd.Env = append(os.Environ(),
				helperEnv+"=1", coordEnv+"="+coordAddr,
				epochEnv+"="+strconv.Itoa(epoch), hbEnv+"=500")
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
		MaxRespawns: 3,
		BackoffMin:  50 * time.Millisecond,
		BackoffMax:  500 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

// waitFullCustody blocks until the durable store holds a checkpoint for
// every rank — the signal that a kill from here on has state to recover.
func waitFullCustody(t *testing.T, fs *checkpoint.FileStore, procs int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		have := 0
		for r := 0; r < procs; r++ {
			if _, ok := fs.Load(r); ok {
				have++
			}
		}
		if have == procs {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("custody never covered all ranks (%d/%d)", have, procs)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashRespawnRejoinMultiProcess is the acceptance-criterion run:
// SIGKILL a node mid-run, let the supervisor respawn it with epoch+1,
// watch it reclaim its rank and restore from durable custody, and require
// the final field to match the fault-free serial reference within the
// speculation tolerance.
func TestCrashRespawnRejoinMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash run is not -short")
	}
	fs, err := checkpoint.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := crashSpec(4)
	coord, err := NewCoordinator(CoordConfig{
		Spec: spec, Timeout: 3 * time.Minute, Custody: fs,
		NodeTimeout: 2 * time.Second, RejoinWait: 30 * time.Second, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	spec = coord.Spec()

	sups := make([]*Supervisor, spec.Procs)
	for i := range sups {
		sups[i] = superviseHelper(t, coord.Addr())
	}
	defer func() {
		for _, s := range sups {
			s.Stop()
		}
	}()

	// Let the run establish custody, then murder rank victim's process.
	waitFullCustody(t, fs, spec.Procs)
	const victim = 2
	sups[victim].Kill()
	t.Logf("SIGKILLed the supervised node of slot %d", victim)

	reports, err := coord.Wait()
	if err != nil {
		t.Fatalf("run did not survive the crash: %v", err)
	}
	if len(reports) != spec.Procs {
		t.Fatalf("got %d reports, want %d", len(reports), spec.Procs)
	}

	// The supervisor actually respawned, and exactly one rank's result came
	// from a revived (epoch > 0, checkpoint-restored) incarnation.
	if sups[victim].Respawns() < 1 {
		t.Error("kill triggered no respawn")
	}
	revived := 0
	for _, rep := range reports {
		if rep.Epoch > 0 {
			revived++
			if rep.Restores < 1 {
				t.Errorf("rank %d rejoined (epoch %d) without restoring from custody", rep.Rank, rep.Epoch)
			}
		}
	}
	if revived != 1 {
		t.Errorf("%d ranks report a respawned incarnation, want exactly 1", revived)
	}
	st := coord.Stats()
	if st.Vacated < 1 || st.Rejoins < 1 {
		t.Errorf("coordinator stats %+v, want >=1 vacated and >=1 rejoin", st)
	}
	if st.CustodySaves < spec.Procs {
		t.Errorf("only %d custody saves recorded", st.CustodySaves)
	}

	// The paper's bottom line: the crashed-and-recovered run still lands on
	// the fault-free answer within the speculation tolerance.
	serial := heat.DefaultGrid(spec.Rows, spec.Cols).SerialRun(spec.MaxIter)
	field, err := AssembleHeat(spec, reports)
	if err != nil {
		t.Fatal(err)
	}
	if d := heat.MaxDiff(field, serial); d > 0.5 {
		t.Errorf("post-crash field deviates %g from the fault-free reference", d)
	}

	for _, s := range sups {
		if err := s.Wait(); err != nil {
			t.Errorf("supervisor latched %v", err)
		}
	}
}

// TestCoordinatorRestartResumesCustody kills the custody holder itself: a
// coordinator with -custody-dir dies mid-run, and its replacement on the
// same directory must resume custody — handing restored checkpoints to a
// fresh fleet which then converges on the fault-free answer.
func TestCoordinatorRestartResumesCustody(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process custody run is not -short")
	}
	dir := t.TempDir()
	fs1, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := crashSpec(3)
	coordA, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: 2 * time.Minute, Custody: fs1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	spec = coordA.Spec()

	procs := make([]*exec.Cmd, spec.Procs)
	for i := range procs {
		procs[i] = spawnNodeProcess(t, coordA.Addr())
	}
	// Wait for durable custody of every rank, then crash the coordinator.
	waitFullCustody(t, fs1, spec.Procs)
	coordA.Close()
	t.Log("killed the first coordinator with custody on disk")
	for _, cmd := range procs {
		_ = cmd.Wait() // orphaned nodes run out their schedule standalone
	}

	// The replacement coordinator resumes custody from the directory.
	fs2, err := checkpoint.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	coordB, err := NewCoordinator(CoordConfig{Spec: spec, Timeout: 2 * time.Minute, Custody: fs2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coordB.Close()
	if got := coordB.Stats().CustodyRestores; got != spec.Procs {
		t.Fatalf("restarted coordinator restored %d/%d ranks from custody", got, spec.Procs)
	}

	for i := range procs {
		procs[i] = spawnNodeProcess(t, coordB.Addr())
	}
	reports, err := coordB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, cmd := range procs {
		if werr := cmd.Wait(); werr != nil {
			t.Errorf("node process %d: %v", i, werr)
		}
	}

	// Every node of the resumed run restored mid-run state instead of
	// recomputing from iteration zero, and the answer still matches.
	for _, rep := range reports {
		if rep.Restores < 1 {
			t.Errorf("rank %d did not restore from resumed custody", rep.Rank)
		}
	}
	serial := heat.DefaultGrid(spec.Rows, spec.Cols).SerialRun(spec.MaxIter)
	field, err := AssembleHeat(spec, reports)
	if err != nil {
		t.Fatal(err)
	}
	if d := heat.MaxDiff(field, serial); d > 0.5 {
		t.Errorf("resumed-custody field deviates %g from the fault-free reference", d)
	}
}

// TestSilentNodeVacatedAndRankLost pins the control-plane liveness rule: a
// member whose coordinator connection goes silent mid-run is vacated after
// NodeTimeout with ErrNodeSilent, and a vacancy nobody reclaims fails the
// run with ErrRankLost long before the global run timeout.
func TestSilentNodeVacatedAndRankLost(t *testing.T) {
	spec := RunSpec{App: "heat", Procs: 2, MaxIter: 10, FW: 1, Theta: 1e-3, Rows: 8, Cols: 8}
	coord, err := NewCoordinator(CoordConfig{
		Spec: spec, Timeout: 30 * time.Second,
		NodeTimeout: 250 * time.Millisecond, RejoinWait: 500 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	join := func() net.Conn {
		conn, err := net.Dial("tcp", coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		hello := Frame{Type: FrameHello, Rank: -1, Addr: "127.0.0.1:1"}
		if _, err := writeFrame(conn, nil, &hello); err != nil {
			t.Fatal(err)
		}
		return conn
	}
	live := join()
	defer live.Close()
	silent := join()
	defer silent.Close()
	if _, err := readConfig(live, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := readConfig(silent, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// The live member keeps its control link warm; the silent one says
	// nothing more — an OS process frozen mid-run with the socket open.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				hb := Frame{Type: FrameHeartbeat}
				if _, err := writeFrame(live, nil, &hb); err != nil {
					return
				}
			case <-stop:
				return
			}
		}
	}()

	start := time.Now()
	_, err = coord.Wait()
	if err == nil {
		t.Fatal("run with a silent member reported success")
	}
	if !errors.Is(err, ErrRankLost) {
		t.Errorf("error does not name the rank loss: %v", err)
	}
	if !errors.Is(err, ErrNodeSilent) {
		t.Errorf("error does not name control-plane silence as the cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("silence detection took %v — the global timeout did the work", elapsed)
	}
	if st := coord.Stats(); st.Vacated < 1 {
		t.Errorf("no vacancy recorded: %+v", st)
	}
}
