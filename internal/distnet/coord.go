package distnet

// The coordinator: membership, rank assignment, run configuration,
// barriers, checkpoint custody and result collection. It is control plane
// only — no application data flows through it; peers exchange partitions
// directly over the mesh.
//
// Protocol, in run order (all frames over each node's one coordinator
// connection):
//
//	node  → coord   hello   {epoch, peer-listen-addr}
//	coord → node    config  {rank, peers[], spec, checkpoint?}   (after P hellos)
//	node  → coord   barrier {0}                                  (mesh is up)
//	coord → node    barrier {0}                                  (all meshes up: start)
//	node  → coord   checkpoint {proc, blob}                      (0..n times during the run)
//	node  → coord   result  {json}
//	coord → node    shutdown                                     (after P results)

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"specomp/internal/obs"
)

// CoordConfig parameterizes a coordinator.
type CoordConfig struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Spec is the run configuration distributed to every node; Spec.Procs
	// is the membership size the coordinator waits for.
	Spec RunSpec
	// Timeout bounds the whole run, join to last result (default 5m).
	Timeout time.Duration
	// Fleet, when non-nil, aggregates the nodes' metrics snapshots: the
	// coordinator advertises CapObs in its configs (inviting periodic
	// pushes) and feeds every obs frame into it.
	Fleet *FleetObs
	// Logf, when non-nil, receives membership and lifecycle lines.
	Logf func(format string, args ...any)
}

// NodeReport is one node's outcome as collected by the coordinator.
type NodeReport struct {
	Rank      int     `json:"rank"`
	Addr      string  `json:"addr"`           // peer listen address
	HTTP      string  `json:"http,omitempty"` // node's obs endpoint, if served
	Converged bool    `json:"converged"`
	Iters     int     `json:"iters"`
	SpecsMade int     `json:"specs_made"`
	SpecsBad  int     `json:"specs_bad"`
	Repairs   int     `json:"repairs"`
	Overruns  int     `json:"overruns"`
	WallSec   float64 `json:"wall_sec"`
	CommSec   float64 `json:"comm_sec"`
	MsgsSent  int     `json:"msgs_sent"`
	BytesSent int     `json:"bytes_sent"`
	// Wire-plane throughput measures (see resultMsg): messages delivered to
	// the engine, physical frames written (batching ⇒ FramesSent ≪
	// MsgsSent), delivery-latency percentiles, and whole-process heap
	// allocations per message over the run.
	MsgsRecvd    int     `json:"msgs_recvd,omitempty"`
	FramesSent   int     `json:"frames_sent,omitempty"`
	LatP50Sec    float64 `json:"lat_p50_sec,omitempty"`
	LatP99Sec    float64 `json:"lat_p99_sec,omitempty"`
	AllocsPerMsg float64 `json:"allocs_per_msg,omitempty"`
	// Trace-merge support (see resultMsg): wall-clock run start, per-peer
	// clock offset/RTT estimates, and — under RunSpec.Trace — the node's
	// run journal for trace.FleetChromeEvents.
	StartUnix float64     `json:"start_unix,omitempty"`
	ClockOff  []float64   `json:"clock_off,omitempty"`
	ClockRTT  []float64   `json:"clock_rtt,omitempty"`
	Journal   []obs.Event `json:"journal,omitempty"`
	Final     []float64   `json:"final,omitempty"`
}

// Coordinator runs the membership/barrier/result protocol for one run.
type Coordinator struct {
	ln   net.Listener
	spec RunSpec
	cfg  CoordConfig

	mu     sync.Mutex
	ckpts  map[int][]byte // latest snapshot per rank (checkpoint custody)
	closed bool

	done    chan struct{}
	reports []NodeReport
	runErr  error
}

// coordMember is one joined node from the coordinator's side.
type coordMember struct {
	rank  int
	addr  string
	epoch int
	conn  net.Conn
	wmu   sync.Mutex // serializes control-frame writes
}

func (m *coordMember) write(f *Frame) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	_, err := writeFrame(m.conn, nil, f)
	return err
}

// NewCoordinator starts a coordinator listening for cfg.Spec.Procs nodes
// and immediately begins the membership protocol in the background; Wait
// blocks for the outcome.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if err := cfg.Spec.Normalize(); err != nil {
		return nil, err
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("distnet: coordinator listener: %w", err)
	}
	c := &Coordinator{
		ln:    ln,
		spec:  cfg.Spec,
		cfg:   cfg,
		ckpts: make(map[int][]byte),
		done:  make(chan struct{}),
	}
	if cfg.Fleet != nil {
		cfg.Fleet.SetJob(c.spec.Job)
	}
	go c.run()
	return c, nil
}

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Spec returns the normalized run configuration.
func (c *Coordinator) Spec() RunSpec { return c.spec }

// Checkpoint returns the latest snapshot in custody for rank, if any.
func (c *Coordinator) Checkpoint(rank int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.ckpts[rank]
	return b, ok
}

// Wait blocks until every node reported its result (returning the reports
// sorted by rank) or the run failed.
func (c *Coordinator) Wait() ([]NodeReport, error) {
	<-c.done
	return c.reports, c.runErr
}

// Close aborts the run and releases the listener.
func (c *Coordinator) Close() {
	c.mu.Lock()
	closed := c.closed
	c.closed = true
	c.mu.Unlock()
	if !closed {
		_ = c.ln.Close()
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// run executes the protocol: accept P hellos, assign ranks in arrival
// order, distribute configs, relay the start barrier, collect checkpoints
// and results, broadcast shutdown.
func (c *Coordinator) run() {
	defer close(c.done)
	deadline := time.Now().Add(c.cfg.Timeout)
	p := c.spec.Procs

	members, err := c.gather(deadline)
	if err != nil {
		c.runErr = err
		c.teardown(members)
		return
	}
	peers := make([]string, p)
	for _, m := range members {
		peers[m.rank] = m.addr
	}
	var coordCaps uint32
	if c.cfg.Fleet != nil {
		coordCaps |= CapObs // invite metrics-snapshot pushes
	}
	for _, m := range members {
		c.mu.Lock()
		ckpt := c.ckpts[m.rank]
		c.mu.Unlock()
		blob := encodeJSON(wireConfig{Rank: m.rank, Peers: peers, Spec: c.spec, Checkpoint: ckpt, CoordCaps: coordCaps})
		if err := m.write(&Frame{Type: FrameConfig, Blob: blob}); err != nil {
			c.runErr = fmt.Errorf("distnet: sending config to rank %d: %w", m.rank, err)
			c.teardown(members)
			return
		}
	}
	c.logf("membership complete: %d nodes, spec %s/%d iters", p, c.spec.App, c.spec.MaxIter)

	// Event pump: one reader per member feeding a central channel.
	type event struct {
		rank int
		f    Frame
		err  error
	}
	events := make(chan event, p*4)
	for _, m := range members {
		m := m
		go func() {
			br := bufio.NewReader(m.conn)
			for {
				f, err := readFrame(br)
				if err != nil {
					events <- event{rank: m.rank, err: err}
					return
				}
				events <- event{rank: m.rank, f: f}
			}
		}()
	}

	barrierArrived := make(map[int]map[int]bool) // barrier id → ranks arrived
	results := make(map[int]*resultMsg)
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(results) < p {
		select {
		case ev := <-events:
			if ev.err != nil {
				if results[ev.rank] == nil {
					c.runErr = fmt.Errorf("distnet: rank %d connection lost before its result: %w", ev.rank, ev.err)
					c.teardown(members)
					return
				}
				continue // post-result close is expected
			}
			switch ev.f.Type {
			case FrameBarrier:
				id := ev.f.Seq
				if barrierArrived[id] == nil {
					barrierArrived[id] = make(map[int]bool)
				}
				barrierArrived[id][ev.rank] = true
				if len(barrierArrived[id]) == p {
					c.logf("barrier %d released", id)
					for _, m := range members {
						_ = m.write(&Frame{Type: FrameBarrier, Seq: id})
					}
					delete(barrierArrived, id)
				}
			case FrameCheckpoint:
				c.mu.Lock()
				c.ckpts[ev.f.Rank] = ev.f.Blob
				c.mu.Unlock()
			case FrameObs:
				if c.cfg.Fleet != nil {
					c.cfg.Fleet.Update(ev.rank, ev.f.Blob)
				}
			case FrameResult:
				var rm resultMsg
				if err := json.Unmarshal(ev.f.Blob, &rm); err != nil {
					c.runErr = fmt.Errorf("distnet: decoding rank %d result: %w", ev.rank, err)
					c.teardown(members)
					return
				}
				rm.Rank = ev.rank // trust the connection, not the body
				results[ev.rank] = &rm
				c.logf("rank %d done: converged=%v iters=%d", ev.rank, rm.Converged, rm.Iters)
			}
		case <-timer.C:
			c.runErr = fmt.Errorf("distnet: run timed out after %v with %d/%d results", c.cfg.Timeout, len(results), p)
			c.teardown(members)
			return
		}
	}

	for _, m := range members {
		_ = m.write(&Frame{Type: FrameShutdown})
	}
	// Give the shutdown frames a moment on the wire before closing.
	time.Sleep(50 * time.Millisecond)
	c.teardown(members)

	c.reports = make([]NodeReport, 0, p)
	for rank := 0; rank < p; rank++ {
		rm := results[rank]
		c.reports = append(c.reports, NodeReport{
			Rank: rank, Addr: peers[rank], HTTP: rm.HTTP,
			Converged: rm.Converged, Iters: rm.Iters,
			SpecsMade: rm.SpecsMade, SpecsBad: rm.SpecsBad,
			Repairs: rm.Repairs, Overruns: rm.Overruns,
			WallSec: rm.WallSec, CommSec: rm.CommSec,
			MsgsSent: rm.MsgsSent, BytesSent: rm.BytesSent,
			MsgsRecvd: rm.MsgsRecvd, FramesSent: rm.FramesSent,
			LatP50Sec: rm.LatP50Sec, LatP99Sec: rm.LatP99Sec,
			AllocsPerMsg: rm.AllocsPerMsg,
			StartUnix:    rm.StartUnix,
			ClockOff:     rm.ClockOff,
			ClockRTT:     rm.ClockRTT,
			Journal:      rm.Journal,
			Final:        rm.Final,
		})
	}
	sort.Slice(c.reports, func(i, j int) bool { return c.reports[i].Rank < c.reports[j].Rank })
}

// gather accepts connections until every rank has said hello, assigning
// ranks in arrival order.
func (c *Coordinator) gather(deadline time.Time) ([]*coordMember, error) {
	p := c.spec.Procs
	members := make([]*coordMember, 0, p)
	for len(members) < p {
		_ = setAcceptDeadline(c.ln, deadline)
		conn, err := c.ln.Accept()
		if err != nil {
			return members, fmt.Errorf("distnet: waiting for %d more nodes: %w", p-len(members), err)
		}
		hello, err := readHello(conn, time.Until(deadline))
		if err != nil {
			conn.Close()
			return members, err
		}
		m := &coordMember{rank: len(members), addr: hello.Addr, epoch: hello.Epoch, conn: conn}
		members = append(members, m)
		c.logf("node %d joined from %s (peer addr %s, epoch %d)", m.rank, conn.RemoteAddr(), m.addr, m.epoch)
	}
	return members, nil
}

// teardown closes every member connection and the listener.
func (c *Coordinator) teardown(members []*coordMember) {
	for _, m := range members {
		if m != nil {
			_ = m.conn.Close()
		}
	}
	c.Close()
}
