package distnet

// The coordinator: membership, rank assignment, run configuration,
// barriers, checkpoint custody and result collection. It is control plane
// only — no application data flows through it; peers exchange partitions
// directly over the mesh.
//
// Protocol, in run order (all frames over each node's one coordinator
// connection):
//
//	node  → coord   hello   {epoch, peer-listen-addr}
//	coord → node    config  {rank, peers[], spec, checkpoint?}   (after P hellos)
//	node  → coord   barrier {0}                                  (mesh is up)
//	coord → node    barrier {0}                                  (all meshes up: start)
//	node  → coord   checkpoint {proc, blob}                      (0..n times during the run)
//	node  → coord   result  {json}
//	coord → node    shutdown                                     (after P results)
//
// Crash tolerance (this is where the paper's speculation pays off in real
// processes): a node whose control connection dies or goes silent before
// its result VACATES its rank instead of failing the run. A later hello
// carrying epoch > 0 reclaims the lowest vacated rank — the respawned
// process is stateless until configured, so any vacancy fits — and receives
// its config plus the latest custody checkpoint to restore from. Survivors
// bridge the gap on speculation (the engine's MaxCrashOverrun path). Only a
// vacancy nobody reclaims within RejoinWait fails the run, with an error
// naming both the loss (ErrRankLost) and its cause (e.g. ErrNodeSilent).

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"specomp/internal/checkpoint"
	"specomp/internal/obs"
)

// ErrNodeSilent reports a node whose control connection produced no frame
// (data, checkpoint, obs push or heartbeat) for longer than the coordinator's
// staleness window. The connection may still be open — silence is the
// verdict, same as the mesh's heartbeat detector.
var ErrNodeSilent = errors.New("distnet: node control connection silent past staleness window")

// ErrRankLost reports a vacated rank that no rejoining node reclaimed
// within the coordinator's rejoin window.
var ErrRankLost = errors.New("distnet: rank lost and not reclaimed within rejoin window")

// ErrCoordClosed reports a run aborted by Close — a deliberate teardown
// (eviction, cancellation, shutdown), not a protocol failure. Callers that
// tore the run down on purpose can errors.Is for it.
var ErrCoordClosed = errors.New("distnet: coordinator closed")

// CoordConfig parameterizes a coordinator.
type CoordConfig struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Spec is the run configuration distributed to every node; Spec.Procs
	// is the membership size the coordinator waits for.
	Spec RunSpec
	// Timeout bounds the whole run, join to last result (default 5m).
	Timeout time.Duration
	// NodeTimeout is the control-plane staleness window: a node whose
	// coordinator connection carried no frame for this long mid-run is
	// declared dead and its rank vacated (default 10s; negative disables).
	// Nodes heartbeat their coordinator link, so a healthy-but-quiet node
	// never trips this.
	NodeTimeout time.Duration
	// RejoinWait bounds how long a vacated rank may stay unclaimed before
	// the run fails with ErrRankLost (default 30s). It should cover the
	// supervisor's detect + backoff + restart + redial path.
	RejoinWait time.Duration
	// Custody, when non-nil, is durable storage for checkpoint custody:
	// every checkpoint frame is persisted there, and at startup any blobs
	// it already holds for ranks 0..Procs-1 seed the in-memory custody — a
	// restarted coordinator resumes the run's checkpoints instead of
	// losing them.
	Custody checkpoint.Store
	// Fleet, when non-nil, aggregates the nodes' metrics snapshots: the
	// coordinator advertises CapObs in its configs (inviting periodic
	// pushes) and feeds every obs frame into it.
	Fleet *FleetObs
	// Logf, when non-nil, receives membership and lifecycle lines.
	Logf func(format string, args ...any)
}

// NodeReport is one node's outcome as collected by the coordinator.
type NodeReport struct {
	Rank      int     `json:"rank"`
	Addr      string  `json:"addr"`           // peer listen address
	HTTP      string  `json:"http,omitempty"` // node's obs endpoint, if served
	Converged bool    `json:"converged"`
	Iters     int     `json:"iters"`
	SpecsMade int     `json:"specs_made"`
	SpecsBad  int     `json:"specs_bad"`
	Repairs   int     `json:"repairs"`
	Overruns  int     `json:"overruns"`
	WallSec   float64 `json:"wall_sec"`
	CommSec   float64 `json:"comm_sec"`
	MsgsSent  int     `json:"msgs_sent"`
	BytesSent int     `json:"bytes_sent"`
	// Crash-tolerance outcome: the incarnation epoch that produced this
	// result (> 0 means a supervisor respawned the node at least once) and
	// how many checkpoint restores the engine performed.
	Epoch    int `json:"epoch,omitempty"`
	Restores int `json:"restores,omitempty"`
	// Wire-plane throughput measures (see resultMsg): messages delivered to
	// the engine, physical frames written (batching ⇒ FramesSent ≪
	// MsgsSent), delivery-latency percentiles, and whole-process heap
	// allocations per message over the run.
	MsgsRecvd    int     `json:"msgs_recvd,omitempty"`
	FramesSent   int     `json:"frames_sent,omitempty"`
	LatP50Sec    float64 `json:"lat_p50_sec,omitempty"`
	LatP99Sec    float64 `json:"lat_p99_sec,omitempty"`
	AllocsPerMsg float64 `json:"allocs_per_msg,omitempty"`
	// Trace-merge support (see resultMsg): wall-clock run start, per-peer
	// clock offset/RTT estimates, and — under RunSpec.Trace — the node's
	// run journal for trace.FleetChromeEvents.
	StartUnix float64     `json:"start_unix,omitempty"`
	ClockOff  []float64   `json:"clock_off,omitempty"`
	ClockRTT  []float64   `json:"clock_rtt,omitempty"`
	Journal   []obs.Event `json:"journal,omitempty"`
	Final     []float64   `json:"final,omitempty"`
}

// CoordStats counts the coordinator's crash-tolerance events over one run.
type CoordStats struct {
	// Vacated counts rank vacancies declared before a result arrived
	// (connection loss or control-plane silence).
	Vacated int
	// Rejoins counts vacated ranks reclaimed by a higher-epoch hello.
	Rejoins int
	// CustodySaves counts checkpoint blobs persisted to durable custody.
	CustodySaves int
	// CustodyRestores counts ranks whose checkpoint was recovered from
	// durable custody at coordinator startup.
	CustodyRestores int
}

// Coordinator runs the membership/barrier/result protocol for one run.
type Coordinator struct {
	ln   net.Listener
	spec RunSpec
	cfg  CoordConfig

	mu      sync.Mutex
	ckpts   map[int][]byte // latest snapshot per rank (checkpoint custody)
	members []*coordMember // by rank, populated once gather completes
	stats   CoordStats
	closed  bool

	abort   chan struct{} // closed by Close; fails the run loop promptly
	done    chan struct{}
	reports []NodeReport
	runErr  error
}

// coordMember is one joined node from the coordinator's side. The conn and
// epoch are replaced when a respawned node reclaims the rank; gen
// disambiguates the old connection's reader from the new one's.
type coordMember struct {
	rank  int
	addr  string
	epoch int
	gen   int
	conn  net.Conn
	wmu   sync.Mutex // serializes control-frame writes

	// lastSeen is the unix-nano arrival time of the most recent frame on
	// the current connection, feeding control-plane staleness detection.
	lastSeen atomic.Int64
}

func (m *coordMember) write(f *Frame) error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	_, err := writeFrame(m.conn, nil, f)
	return err
}

// NewCoordinator starts a coordinator listening for cfg.Spec.Procs nodes
// and immediately begins the membership protocol in the background; Wait
// blocks for the outcome.
func NewCoordinator(cfg CoordConfig) (*Coordinator, error) {
	if err := cfg.Spec.Normalize(); err != nil {
		return nil, err
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.NodeTimeout == 0 {
		cfg.NodeTimeout = 10 * time.Second
	}
	if cfg.RejoinWait <= 0 {
		cfg.RejoinWait = 30 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("distnet: coordinator listener: %w", err)
	}
	c := &Coordinator{
		ln:    ln,
		spec:  cfg.Spec,
		cfg:   cfg,
		ckpts: make(map[int][]byte),
		abort: make(chan struct{}),
		done:  make(chan struct{}),
	}
	// Durable custody: a restarted coordinator resumes the previous
	// incarnation's checkpoints, so relaunched nodes restore mid-run state
	// instead of recomputing from iteration zero.
	if cfg.Custody != nil {
		for rank := 0; rank < c.spec.Procs; rank++ {
			if blob, ok := cfg.Custody.Load(rank); ok {
				c.ckpts[rank] = blob
				c.stats.CustodyRestores++
			}
		}
		if c.stats.CustodyRestores > 0 {
			c.logf("custody: restored checkpoints for %d/%d ranks from durable store",
				c.stats.CustodyRestores, c.spec.Procs)
		}
	}
	if cfg.Fleet != nil {
		cfg.Fleet.SetJob(c.spec.Job)
	}
	go c.run()
	return c, nil
}

// Addr returns the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Spec returns the normalized run configuration.
func (c *Coordinator) Spec() RunSpec { return c.spec }

// Checkpoint returns the latest snapshot in custody for rank, if any.
func (c *Coordinator) Checkpoint(rank int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.ckpts[rank]
	return b, ok
}

// Stats returns the crash-tolerance counters accumulated so far.
func (c *Coordinator) Stats() CoordStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Wait blocks until every node reported its result (returning the reports
// sorted by rank) or the run failed.
func (c *Coordinator) Wait() ([]NodeReport, error) {
	<-c.done
	return c.reports, c.runErr
}

// Close aborts the run: releases the listener and severs every member
// connection (nodes observe a dead coordinator — the shape a coordinator
// crash has from the outside).
func (c *Coordinator) Close() {
	c.mu.Lock()
	closed := c.closed
	c.closed = true
	var conns []net.Conn
	for _, m := range c.members {
		if m != nil && m.conn != nil {
			conns = append(conns, m.conn)
		}
	}
	c.mu.Unlock()
	if !closed {
		close(c.abort)
		_ = c.ln.Close()
		for _, conn := range conns {
			_ = conn.Close()
		}
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// keepCheckpoint records a checkpoint blob in custody (memory + durable
// store when configured).
func (c *Coordinator) keepCheckpoint(rank int, blob []byte) {
	c.mu.Lock()
	c.ckpts[rank] = blob
	if c.cfg.Custody != nil {
		c.stats.CustodySaves++
	}
	c.mu.Unlock()
	if c.cfg.Custody != nil {
		c.cfg.Custody.Save(rank, blob)
	}
}

// coordEvent is one frame (or read error) from one member's connection.
// gen identifies the connection incarnation, so a replaced connection's
// trailing error cannot vacate the rank its successor now holds.
type coordEvent struct {
	rank int
	gen  int
	f    Frame
	err  error
}

// vacatedRank tracks an unowned rank awaiting a rejoin.
type vacatedRank struct {
	at    time.Time
	cause error
}

// pendingHello is a rejoin hello that arrived before any rank was vacated
// (the respawned node can outrace the coordinator's detection of the old
// connection's death); it is parked until a vacancy appears.
type pendingHello struct {
	conn  net.Conn
	hello Frame
	at    time.Time
}

// run executes the protocol: accept P hellos, assign ranks in arrival
// order, distribute configs, relay the start barrier, collect checkpoints
// and results, broadcast shutdown — vacating and re-filling ranks as nodes
// crash and rejoin along the way.
func (c *Coordinator) run() {
	defer close(c.done)
	deadline := time.Now().Add(c.cfg.Timeout)
	p := c.spec.Procs

	members, err := c.gather(deadline)
	if err != nil {
		c.runErr = err
		c.teardown(members)
		return
	}
	// By-rank membership, published for Close.
	byRank := make([]*coordMember, p)
	for _, m := range members {
		byRank[m.rank] = m
	}
	c.mu.Lock()
	c.members = byRank
	c.mu.Unlock()

	peers := make([]string, p)
	for _, m := range byRank {
		peers[m.rank] = m.addr
	}
	var coordCaps uint32
	if c.cfg.Fleet != nil {
		coordCaps |= CapObs // invite metrics-snapshot pushes
	}
	for _, m := range byRank {
		c.mu.Lock()
		ckpt := c.ckpts[m.rank]
		c.mu.Unlock()
		blob := encodeJSON(wireConfig{Rank: m.rank, Peers: peers, Spec: c.spec, Checkpoint: ckpt, CoordCaps: coordCaps})
		if err := m.write(&Frame{Type: FrameConfig, Blob: blob}); err != nil {
			c.runErr = fmt.Errorf("distnet: sending config to rank %d: %w", m.rank, err)
			c.teardown(byRank)
			return
		}
	}
	c.logf("membership complete: %d nodes, spec %s/%d iters", p, c.spec.App, c.spec.MaxIter)

	// Event pump: one reader per member connection feeding a central
	// channel, stamping control-plane liveness as it goes.
	events := make(chan coordEvent, p*4)
	startReader := func(m *coordMember) {
		conn, gen := m.conn, m.gen
		m.lastSeen.Store(time.Now().UnixNano())
		go func() {
			br := bufio.NewReader(conn)
			for {
				f, err := readFrame(br)
				if err != nil {
					events <- coordEvent{rank: m.rank, gen: gen, err: err}
					return
				}
				m.lastSeen.Store(time.Now().UnixNano())
				events <- coordEvent{rank: m.rank, gen: gen, f: f}
			}
		}()
	}
	for _, m := range byRank {
		startReader(m)
	}

	// Rejoin acceptor: the listener stays open for the whole run so a
	// respawned node can come back. Every accepted hello is handed to the
	// event loop; the acceptor dies with the listener at teardown.
	helloCh := make(chan pendingHello, p)
	go func() {
		for {
			_ = setAcceptDeadline(c.ln, deadline)
			conn, err := c.ln.Accept()
			if err != nil {
				return
			}
			go func() {
				hello, err := readHello(conn, time.Until(deadline))
				if err != nil {
					conn.Close()
					return
				}
				select {
				case helloCh <- pendingHello{conn: conn, hello: hello, at: time.Now()}:
				case <-c.done:
					conn.Close()
				}
			}()
		}
	}()

	var (
		barrierArrived = make(map[int]map[int]bool) // barrier id → ranks arrived
		released       = make(map[int]bool)         // barrier ids already released
		results        = make(map[int]*resultMsg)
		vacated        = make(map[int]vacatedRank)
		parked         []pendingHello
	)

	// vacate declares rank ownerless: its connection is closed, the cause
	// retained for the eventual ErrRankLost, and any parked rejoin hello
	// gets a chance to claim it.
	vacate := func(rank int, cause error) {
		if _, dup := vacated[rank]; dup || results[rank] != nil {
			return
		}
		m := byRank[rank]
		_ = m.conn.Close()
		vacated[rank] = vacatedRank{at: time.Now(), cause: cause}
		c.mu.Lock()
		c.stats.Vacated++
		c.mu.Unlock()
		c.logf("rank %d vacated: %v (waiting %v for a rejoin)", rank, cause, c.cfg.RejoinWait)
	}

	// admit hands a vacated rank to a rejoining node: config (with the
	// custody checkpoint and the rejoin flag) goes out, a fresh reader
	// takes over, and peers learn the new listen address via the updated
	// peers slice (later rejoiners dial current addresses).
	admit := func(ph pendingHello) bool {
		rank := -1
		for r := 0; r < p; r++ {
			if _, ok := vacated[r]; ok && ph.hello.Epoch > byRank[r].epoch {
				rank = r
				break
			}
		}
		if rank < 0 {
			return false
		}
		m := byRank[rank]
		// Under c.mu: Close reads member conns from other goroutines.
		c.mu.Lock()
		m.gen++
		m.conn = ph.conn
		m.epoch = ph.hello.Epoch
		m.addr = ph.hello.Addr
		c.stats.Rejoins++
		ckpt := c.ckpts[rank]
		c.mu.Unlock()
		peers[rank] = ph.hello.Addr
		delete(vacated, rank)
		blob := encodeJSON(wireConfig{Rank: rank, Peers: append([]string(nil), peers...), Spec: c.spec,
			Checkpoint: ckpt, CoordCaps: coordCaps, Rejoin: true})
		if err := m.write(&Frame{Type: FrameConfig, Blob: blob}); err != nil {
			vacate(rank, fmt.Errorf("distnet: sending rejoin config: %w", err))
			return true // the conn was consumed either way
		}
		startReader(m)
		c.logf("rank %d reclaimed by epoch-%d incarnation at %s (%d bytes of custody restored)",
			rank, m.epoch, m.addr, len(ckpt))
		return true
	}

	// Liveness ticks drive both halves of crash detection: silent members
	// are vacated, and vacancies that outlive RejoinWait fail the run.
	tickEvery := c.cfg.RejoinWait / 4
	if c.cfg.NodeTimeout > 0 && c.cfg.NodeTimeout/4 < tickEvery {
		tickEvery = c.cfg.NodeTimeout / 4
	}
	if tickEvery < 10*time.Millisecond {
		tickEvery = 10 * time.Millisecond
	}
	liveness := time.NewTicker(tickEvery)
	defer liveness.Stop()

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()

	fail := func(err error) {
		c.runErr = err
		for _, ph := range parked {
			_ = ph.conn.Close()
		}
		c.teardown(byRank)
	}

	for len(results) < p {
		select {
		case <-c.abort:
			// Close was called: the run is being torn down on purpose.
			// Fail now instead of waiting out the rejoin window on the
			// vacancies the severed connections are about to produce.
			fail(ErrCoordClosed)
			return
		case ev := <-events:
			m := byRank[ev.rank]
			if ev.gen != m.gen {
				continue // stale connection incarnation
			}
			if ev.err != nil {
				if results[ev.rank] == nil {
					vacate(ev.rank, fmt.Errorf("connection lost before its result: %w", ev.err))
					// A parked hello may already be waiting for this vacancy.
					for i, ph := range parked {
						if admit(ph) {
							parked = append(parked[:i], parked[i+1:]...)
							break
						}
					}
				}
				continue // post-result close is expected
			}
			switch ev.f.Type {
			case FrameBarrier:
				id := ev.f.Seq
				if released[id] {
					// A rejoiner reaching a barrier the fleet already passed:
					// release it alone, instantly.
					_ = m.write(&Frame{Type: FrameBarrier, Seq: id})
					continue
				}
				if barrierArrived[id] == nil {
					barrierArrived[id] = make(map[int]bool)
				}
				barrierArrived[id][ev.rank] = true
				if len(barrierArrived[id]) == p {
					c.logf("barrier %d released", id)
					released[id] = true
					for _, mm := range byRank {
						_ = mm.write(&Frame{Type: FrameBarrier, Seq: id})
					}
					delete(barrierArrived, id)
				}
			case FrameCheckpoint:
				c.keepCheckpoint(ev.f.Rank, ev.f.Blob)
			case FrameObs:
				if c.cfg.Fleet != nil {
					c.cfg.Fleet.Update(ev.rank, ev.f.Blob)
				}
			case FrameResult:
				var rm resultMsg
				if err := json.Unmarshal(ev.f.Blob, &rm); err != nil {
					fail(fmt.Errorf("distnet: decoding rank %d result: %w", ev.rank, err))
					return
				}
				rm.Rank = ev.rank // trust the connection, not the body
				results[ev.rank] = &rm
				c.logf("rank %d done: converged=%v iters=%d epoch=%d", ev.rank, rm.Converged, rm.Iters, rm.Epoch)
			}

		case ph := <-helloCh:
			if ph.hello.Epoch <= 0 {
				// A fresh (epoch-0) hello after membership closed: not a
				// rejoin — an over-spawned or misdirected node.
				c.logf("rejecting late epoch-0 hello from %s", ph.conn.RemoteAddr())
				_ = ph.conn.Close()
				continue
			}
			if !admit(ph) {
				// No vacancy (yet): the respawn outraced our detection of the
				// old connection dying. Park it; the vacate path retries.
				parked = append(parked, ph)
			}

		case <-liveness.C:
			now := time.Now()
			if c.cfg.NodeTimeout > 0 {
				for _, m := range byRank {
					if results[m.rank] != nil {
						continue
					}
					if _, gone := vacated[m.rank]; gone {
						continue
					}
					if now.Sub(time.Unix(0, m.lastSeen.Load())) > c.cfg.NodeTimeout {
						vacate(m.rank, fmt.Errorf("no control-plane frame for %v: %w", c.cfg.NodeTimeout, ErrNodeSilent))
					}
				}
			}
			// Retry parked hellos against any vacancies, dropping expired ones.
			keep := parked[:0]
			for _, ph := range parked {
				if admit(ph) {
					continue
				}
				if now.Sub(ph.at) > c.cfg.RejoinWait {
					_ = ph.conn.Close()
					continue
				}
				keep = append(keep, ph)
			}
			parked = keep
			for rank, v := range vacated {
				if now.Sub(v.at) > c.cfg.RejoinWait {
					fail(fmt.Errorf("distnet: rank %d: %w: %w", rank, ErrRankLost, v.cause))
					return
				}
			}

		case <-timer.C:
			fail(fmt.Errorf("distnet: run timed out after %v with %d/%d results", c.cfg.Timeout, len(results), p))
			return
		}
	}

	for _, ph := range parked {
		_ = ph.conn.Close()
	}
	for _, m := range byRank {
		_ = m.write(&Frame{Type: FrameShutdown})
	}
	// Give the shutdown frames a moment on the wire before closing.
	time.Sleep(50 * time.Millisecond)
	c.teardown(byRank)

	c.reports = make([]NodeReport, 0, p)
	for rank := 0; rank < p; rank++ {
		rm := results[rank]
		c.reports = append(c.reports, NodeReport{
			Rank: rank, Addr: peers[rank], HTTP: rm.HTTP,
			Converged: rm.Converged, Iters: rm.Iters,
			SpecsMade: rm.SpecsMade, SpecsBad: rm.SpecsBad,
			Repairs: rm.Repairs, Overruns: rm.Overruns,
			WallSec: rm.WallSec, CommSec: rm.CommSec,
			MsgsSent: rm.MsgsSent, BytesSent: rm.BytesSent,
			Epoch: rm.Epoch, Restores: rm.Restores,
			MsgsRecvd: rm.MsgsRecvd, FramesSent: rm.FramesSent,
			LatP50Sec: rm.LatP50Sec, LatP99Sec: rm.LatP99Sec,
			AllocsPerMsg: rm.AllocsPerMsg,
			StartUnix:    rm.StartUnix,
			ClockOff:     rm.ClockOff,
			ClockRTT:     rm.ClockRTT,
			Journal:      rm.Journal,
			Final:        rm.Final,
		})
	}
	sort.Slice(c.reports, func(i, j int) bool { return c.reports[i].Rank < c.reports[j].Rank })
}

// gather accepts connections until every rank has said hello, assigning
// ranks in arrival order.
func (c *Coordinator) gather(deadline time.Time) ([]*coordMember, error) {
	p := c.spec.Procs
	members := make([]*coordMember, 0, p)
	for len(members) < p {
		_ = setAcceptDeadline(c.ln, deadline)
		conn, err := c.ln.Accept()
		if err != nil {
			return members, fmt.Errorf("distnet: waiting for %d more nodes: %w", p-len(members), err)
		}
		hello, err := readHello(conn, time.Until(deadline))
		if err != nil {
			conn.Close()
			return members, err
		}
		m := &coordMember{rank: len(members), addr: hello.Addr, epoch: hello.Epoch, conn: conn}
		m.lastSeen.Store(time.Now().UnixNano())
		members = append(members, m)
		c.logf("node %d joined from %s (peer addr %s, epoch %d)", m.rank, conn.RemoteAddr(), m.addr, m.epoch)
	}
	return members, nil
}

// teardown closes every member connection and the listener.
func (c *Coordinator) teardown(members []*coordMember) {
	for _, m := range members {
		if m != nil && m.conn != nil {
			_ = m.conn.Close()
		}
	}
	c.Close()
}
