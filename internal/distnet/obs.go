package distnet

// Wire-plane instrumentation: metric handles for the batching layer, the
// delta codec, per-peer links and the control plane. Everything is built on
// internal/obs's nil-safe instruments and wrapped in nil-safe methods here,
// so a transport without a registry pays one nil check per event and the
// data path keeps its zero-allocation steady state.

import (
	"strconv"
	"time"

	"specomp/internal/obs"
)

// Wire-plane metric names. All are per-node; the fleet plane adds node/job
// labels when aggregating.
const (
	// MetricBatchOccupancy histograms how many messages each flushed batch
	// carried — the direct readout of how well coalescing amortizes frames.
	MetricBatchOccupancy = "specomp_wire_batch_msgs"
	// MetricFlushes counts batch flushes by reason label
	// (msgs|bytes|recv|linger|close).
	MetricFlushes = "specomp_wire_flush_total"
	// MetricDeltaRatio histograms encoded-size/raw-size for delta-coded batch
	// entries (1 recorded for fallbacks, so the mean is the realized ratio).
	MetricDeltaRatio = "specomp_wire_delta_ratio"
	// MetricDeltaEntries counts batch entries emitted delta-coded.
	MetricDeltaEntries = "specomp_wire_delta_entries_total"
	// MetricDeltaFallback counts entries with a usable base where the delta
	// was not smaller than raw, so raw went on the wire.
	MetricDeltaFallback = "specomp_wire_delta_fallback_total"
	// MetricSendQueue gauges the per-peer writer queue depth at enqueue time.
	MetricSendQueue = "specomp_wire_sendq_depth"
	// MetricFramesSent counts frames written per peer link.
	MetricFramesSent = "specomp_wire_frames_sent_total"
	// MetricHeartbeats counts explicit heartbeat beacons sent per peer link.
	MetricHeartbeats = "specomp_wire_heartbeats_total"
	// MetricWireLatency histograms send→deliver latency per peer link (s).
	MetricWireLatency = "specomp_wire_delivery_latency_seconds"
	// MetricDialAttempts counts peer dial attempts (retries included).
	MetricDialAttempts = "specomp_wire_dial_attempts_total"
	// MetricHelloRetries counts hello handshakes redialed after truncation.
	MetricHelloRetries = "specomp_wire_hello_retries_total"
	// MetricObsPushes counts metrics snapshots pushed to the coordinator.
	MetricObsPushes = "specomp_wire_obs_pushes_total"
	// MetricClockOffset gauges the estimated peer clock offset (s, peer−local).
	MetricClockOffset = "specomp_wire_clock_offset_seconds"
	// MetricClockRTT gauges the RTT of the minimum-RTT clock sample (s).
	MetricClockRTT = "specomp_wire_clock_rtt_seconds"
	// MetricPeerReconnects counts replacement peer links accepted from
	// rejoining (higher-epoch) incarnations of crashed peers.
	MetricPeerReconnects = "specomp_wire_peer_reconnects_total"
	// MetricNodeEpoch gauges this process's incarnation epoch (0 on first
	// launch; a respawned node reports the bumped value).
	MetricNodeEpoch = "specomp_node_epoch"
)

// Batch flush reasons, the label values of MetricFlushes.
const (
	flushMsgs   = iota // batch hit MaxBatchMsgs
	flushBytes         // batch hit MaxBatchBytes
	flushRecv          // receiver entered a blocking wait
	flushLinger        // linger timer expired
	flushClose         // transport teardown
	flushReasons
)

// flushReasonNames are the exposition label values, indexed by reason.
var flushReasonNames = [flushReasons]string{"msgs", "bytes", "recv", "linger", "close"}

// linkObs is the instrument set of one peer link.
type linkObs struct {
	sendq         *obs.Gauge
	frames        *obs.Counter
	heartbeats    *obs.Counter
	latency       *obs.Histogram
	deltaRatio    *obs.Histogram
	deltaEntries  *obs.Counter
	deltaFallback *obs.Counter
	clockOffset   *obs.Gauge
	clockRTT      *obs.Gauge
}

// noteFrame counts one frame written to the socket. Nil-safe.
func (lo *linkObs) noteFrame() {
	if lo == nil {
		return
	}
	lo.frames.Inc()
}

// noteHeartbeat counts one explicit beacon. Nil-safe.
func (lo *linkObs) noteHeartbeat() {
	if lo == nil {
		return
	}
	lo.heartbeats.Inc()
}

// observeLatency records one send→deliver latency sample. Nil-safe.
func (lo *linkObs) observeLatency(d float64) {
	if lo == nil {
		return
	}
	lo.latency.Observe(d)
}

// setQueueDepth gauges the writer queue occupancy. Nil-safe.
func (lo *linkObs) setQueueDepth(n int) {
	if lo == nil {
		return
	}
	lo.sendq.Set(float64(n))
}

// setClock publishes the link's clock-offset estimate. Nil-safe.
func (lo *linkObs) setClock(offset, rtt float64) {
	if lo == nil {
		return
	}
	lo.clockOffset.Set(offset)
	lo.clockRTT.Set(rtt)
}

// wireObs is one node's wire-plane instrument set: shared batching/control
// metrics plus a per-peer linkObs. A nil *wireObs (no registry) disables
// everything through the nil-safe methods.
type wireObs struct {
	batch        *obs.Histogram
	flush        [flushReasons]*obs.Counter
	dialAttempts *obs.Counter
	helloRetries *obs.Counter
	pushes       *obs.Counter
	reconnects   *obs.Counter
	links        []*linkObs // indexed by peer rank; nil at own rank
}

// newWireObs registers the wire-plane instruments of one node on reg: shared
// series labelled proc=<rank>, per-link series additionally labelled
// peer=<rank>. A nil reg yields a nil wireObs.
func newWireObs(reg *obs.Registry, rank, procs int) *wireObs {
	if reg == nil {
		return nil
	}
	lp := obs.L("proc", strconv.Itoa(rank))
	w := &wireObs{
		batch: reg.Histogram(MetricBatchOccupancy, "Messages per flushed batch frame.",
			[]float64{1, 2, 4, 8, 16, 32}, lp),
		dialAttempts: reg.Counter(MetricDialAttempts, "Peer dial attempts, retries included.", lp),
		helloRetries: reg.Counter(MetricHelloRetries, "Hello handshakes redialed after truncation.", lp),
		pushes:       reg.Counter(MetricObsPushes, "Metrics snapshots pushed to the coordinator.", lp),
		reconnects:   reg.Counter(MetricPeerReconnects, "Replacement links accepted from rejoining peers.", lp),
		links:        make([]*linkObs, procs),
	}
	for i, name := range flushReasonNames {
		w.flush[i] = reg.Counter(MetricFlushes, "Batch flushes by reason.", lp, obs.L("reason", name))
	}
	ratioBuckets := []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1}
	latBuckets := obs.ExpBuckets(1e-5, 2, 16)
	for p := 0; p < procs; p++ {
		if p == rank {
			continue
		}
		pl := obs.L("peer", strconv.Itoa(p))
		w.links[p] = &linkObs{
			sendq:         reg.Gauge(MetricSendQueue, "Writer queue depth at enqueue time.", lp, pl),
			frames:        reg.Counter(MetricFramesSent, "Frames written per peer link.", lp, pl),
			heartbeats:    reg.Counter(MetricHeartbeats, "Explicit heartbeat beacons sent.", lp, pl),
			latency:       reg.Histogram(MetricWireLatency, "Send-to-deliver latency (s).", latBuckets, lp, pl),
			deltaRatio:    reg.Histogram(MetricDeltaRatio, "Delta-coded size over raw size per entry.", ratioBuckets, lp, pl),
			deltaEntries:  reg.Counter(MetricDeltaEntries, "Batch entries emitted delta-coded.", lp, pl),
			deltaFallback: reg.Counter(MetricDeltaFallback, "Delta attempts that fell back to raw.", lp, pl),
			clockOffset:   reg.Gauge(MetricClockOffset, "Estimated peer clock offset (s, peer minus local).", lp, pl),
			clockRTT:      reg.Gauge(MetricClockRTT, "RTT of the minimum-RTT clock sample (s).", lp, pl),
		}
	}
	return w
}

// link returns the instrument set for peer rank p (nil when uninstrumented
// or out of range). Nil-safe.
func (w *wireObs) link(p int) *linkObs {
	if w == nil || p < 0 || p >= len(w.links) {
		return nil
	}
	return w.links[p]
}

// noteFlush records one batch flush: the reason counter and, for non-empty
// batches, the occupancy histogram. Nil-safe.
func (w *wireObs) noteFlush(reason, msgs int) {
	if w == nil {
		return
	}
	if reason >= 0 && reason < flushReasons {
		w.flush[reason].Inc()
	}
	if msgs > 0 {
		w.batch.Observe(float64(msgs))
	}
}

// noteDial counts one dial attempt. Nil-safe.
func (w *wireObs) noteDial() {
	if w == nil {
		return
	}
	w.dialAttempts.Inc()
}

// noteHelloRetry counts one truncated-hello redial. Nil-safe.
func (w *wireObs) noteHelloRetry() {
	if w == nil {
		return
	}
	w.helloRetries.Inc()
}

// noteReconnect counts one accepted replacement link. Nil-safe.
func (w *wireObs) noteReconnect() {
	if w == nil {
		return
	}
	w.reconnects.Inc()
}

// notePush counts one snapshot push. Nil-safe.
func (w *wireObs) notePush() {
	if w == nil {
		return
	}
	w.pushes.Inc()
}

// unixNow returns the wall clock as unix seconds, the stamp resolution of
// the heartbeat clock tail.
func unixNow() float64 { return float64(time.Now().UnixNano()) / 1e9 }
